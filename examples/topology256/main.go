// Topology256: assemble the Figure 5b system — 256 processors in 16
// eight-node clusters joined by two permutation networks of central
// crossbars — validate the paper's three-crossbar bound, and time a
// cluster-wide exchange over the simulated wormhole network.
package main

import (
	"fmt"

	"powermanna"
)

func main() {
	t := powermanna.System256()
	fmt.Printf("%s: %d nodes (%d processors), %d crossbars\n",
		t.Name(), t.Nodes(), 2*t.Nodes(), t.Crossbars())

	max, err := t.MaxCrossbars()
	if err != nil {
		panic(err)
	}
	fmt.Printf("max crossbars between any two nodes: %d (paper: at most 3)\n\n", max)

	// A representative long route.
	path, err := t.Route(0, 127, powermanna.NetworkA)
	if err != nil {
		panic(err)
	}
	fmt.Printf("route node 0 -> node 127: %d hops, route bytes %v, %d async links\n",
		len(path.Hops), path.RouteBytes, path.AsyncLinks)

	// Time an 8-node neighbourhood exchange (every node of cluster 0
	// sends 4 KB to its ring successor) on the live network: concurrent
	// wormhole circuits through one crossbar.
	net := powermanna.NewNetwork(t)
	var last powermanna.Time
	for src := 0; src < 8; src++ {
		dst := (src + 1) % 8
		p, err := t.Route(src, dst, powermanna.NetworkA)
		if err != nil {
			panic(err)
		}
		//pmlint:allow layering example demonstrates raw wormhole transit, not the reliability protocol
		tr, err := net.Send(0, p, 4096)
		if err != nil {
			panic(err)
		}
		if tr.LastByte > last {
			last = tr.LastByte
		}
	}
	fmt.Printf("\n8-node ring exchange of 4 KB each: all delivered by %v\n", last)
	fmt.Printf("(8 x 4 KB through one 16x16 crossbar, disjoint outputs, fully concurrent)\n")

	// Crossbar 0 of cluster 0 carried all eight circuits.
	fmt.Printf("crossbar A0 circuits opened: %d, blocked: %d\n",
		net.Crossbar(0).Stats().Opened, net.Crossbar(0).Stats().Blocked)
}
