// AllReduce on the 256-processor system: the message-passing layer of
// Section 4 running over the full Figure 5b interconnect. 128 ranks sum
// their vectors through binomial trees; the collective's critical path is
// log₂(128) = 7 small-message latencies each way, every one of them under
// the paper's 4 µs bound even across three crossbars and the asynchronous
// inter-cabinet links.
package main

import (
	"fmt"

	"powermanna"
)

func main() {
	for _, build := range []func() *powermanna.Topology{
		powermanna.Cluster8,
		powermanna.System256,
	} {
		t := build()
		w := powermanna.NewWorld(t)
		p := w.Ranks()

		contrib := make([][]float64, p)
		for r := 0; r < p; r++ {
			contrib[r] = []float64{float64(r + 1), 1}
		}
		sum, err := w.AllReduce(contrib, 1)
		if err != nil {
			panic(err)
		}
		msgs, bytes := w.Stats()
		fmt.Printf("%-10s %3d ranks: sum=%6.0f count=%3.0f  depth=%d  time=%v  (%d msgs, %d payload bytes)\n",
			t.Name(), p, sum[0], sum[1], powermanna.CollectiveDepth(p), w.MaxTime(), msgs, bytes)
	}

	fmt.Println("\n(128-rank collectives ride the duplicated crossbar hierarchy;")
	fmt.Println(" the binomial tree's 7 levels dominate, each a sub-4us small message)")
}
