// Heat: a distributed-memory scientific application on PowerMANNA — the
// workload class the paper's introduction motivates. A 1D heat equation
// is domain-decomposed across 1, 8 and 128 nodes; every time step
// exchanges one-cell halos over the crossbar network and periodically
// reduces the residual. The parallel fields are bit-identical to the
// serial solve; the timing shows strong scaling and its communication-
// bound rollover.
package main

import (
	"fmt"

	"powermanna"
)

func main() {
	cfg := powermanna.HeatDefaultConfig(32768, 100)

	serial, err := powermanna.RunHeatSerial(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%8s %12s %10s %10s %12s\n", "ranks", "time", "speedup", "eff", "messages")
	var base float64
	for _, build := range []func() *powermanna.Topology{
		powermanna.SingleNode,
		powermanna.Cluster8,
		powermanna.System256,
	} {
		w := powermanna.NewWorld(build())
		res, err := powermanna.RunHeat(w, cfg)
		if err != nil {
			panic(err)
		}
		for i := range serial {
			if res.Field[i] != serial[i] {
				panic("parallel field diverged from serial reference")
			}
		}
		if base == 0 {
			base = float64(res.Makespan)
		}
		sp := base / float64(res.Makespan)
		fmt.Printf("%8d %12v %10.2f %9.0f%% %12d\n",
			res.Ranks, res.Makespan, sp, 100*sp/float64(res.Ranks), res.Messages)
	}
	fmt.Println("\n(fields are bit-identical to the serial solve at every scale;")
	fmt.Println(" at 128 ranks the per-step halo latency starts eating the gain)")
}
