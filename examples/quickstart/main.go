// Quickstart: build the PowerMANNA node, run a small workload on both
// MPC620 processors, and measure the communication headline numbers.
package main

import (
	"fmt"

	"powermanna"
)

func main() {
	// The test systems of the paper's Table 1.
	fmt.Println("The three test systems:")
	fmt.Println(powermanna.Table1())

	// A dual-MPC620 PowerMANNA node.
	nd := powermanna.NewNode(powermanna.PowerMANNA())

	// MatMult on one processor, then on both: the switched node fabric
	// gives essentially perfect SMP scaling (Figure 8).
	one := powermanna.RunMatMult(nd, 101, powermanna.Transposed, 1)
	two := powermanna.RunMatMult(nd, 101, powermanna.Transposed, 2)
	fmt.Println(one)
	fmt.Println(two)
	fmt.Printf("dual-processor speedup: %.2f\n\n", one.Time.Seconds()/two.Time.Seconds())

	// The communication headline (Figure 9): 8 bytes node-to-node.
	pm := powermanna.NewPowerMANNAComm()
	fmt.Printf("one-way latency for 8 bytes: %v (paper: 2.75us)\n", pm.OneWayLatency(8))
	fmt.Printf("unidirectional stream at 64 KB: %.1f MB/s (paper: limited to 60 MB/s)\n",
		pm.UniBandwidth(64<<10)/1e6)
}
