// MatMult across the test systems: the workload behind Figures 7 and 8.
// Shows the architectural story — the PowerMANNA node's long cache lines
// and big L2 win on sequential access (transposed), while its missing
// load pipelining loses on strided access (naive), where the Pentium's
// non-blocking loads overlap the misses.
package main

import (
	"fmt"

	"powermanna"
)

func main() {
	const n = 301
	machines := []powermanna.NodeConfig{
		powermanna.PowerMANNA(),
		powermanna.SunUltra(),
		powermanna.PentiumII(180),
	}

	fmt.Printf("%-14s %-12s %-12s %-10s\n", "machine", "naive MF", "transp MF", "speedup(2cpu)")
	for _, cfg := range machines {
		nd := powermanna.NewNode(cfg)
		naive := powermanna.RunMatMult(nd, n, powermanna.Naive, 1)
		transposed := powermanna.RunMatMult(nd, n, powermanna.Transposed, 1)
		two := powermanna.RunMatMult(nd, n, powermanna.Transposed, 2)
		speedup := transposed.Time.Seconds() / two.Time.Seconds()
		fmt.Printf("%-14s %-12.1f %-12.1f %-10.2f\n",
			cfg.Name, naive.MFLOPS(), transposed.MFLOPS(), speedup)
	}
	fmt.Println("\n(naive reads B by column: each element on its own line, TLB-hostile;")
	fmt.Println(" transposed streams rows: long lines prefetch usefully)")
}
