// HINT: the memory-hierarchy benchmark of Figure 6. Runs the DOUBLE
// variant on the PowerMANNA node and prints the QUIPS curve — flat while
// the working set is cached, dropping as it outgrows the 2 MB L2 — plus
// the functional integral bounds, which really converge on 2·ln2 − 1.
package main

import (
	"fmt"
	"math"

	"powermanna"
)

func main() {
	nd := powermanna.NewNode(powermanna.PowerMANNA())
	r := powermanna.RunHINT(nd, powermanna.HintDouble, 200_000)
	fmt.Println(r)

	fmt.Printf("\n%14s %10s %14s %12s\n", "time", "intervals", "quality", "QUIPS")
	for _, p := range r.Points {
		bar := int(40 * p.QUIPS / r.PeakQUIPS)
		fmt.Printf("%14v %10d %14.4g %12.4g %s\n",
			p.Time, p.Intervals, p.Quality, p.QUIPS, repeat('#', bar))
	}

	truth := 2*math.Log(2) - 1
	fmt.Printf("\nintegral of (1-x)/(1+x) on [0,1]: true %.8f, bounds [%.8f, %.8f]\n",
		truth, r.Lower, r.Upper)
	fmt.Printf("working set at the end: %d intervals x 64 B = %.1f MB (the curve's\n",
		r.Points[len(r.Points)-1].Intervals,
		float64(r.Points[len(r.Points)-1].Intervals)*64/1e6)
	fmt.Println("right-hand drop is the 2 MB second-level cache running out)")
}

func repeat(c byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
