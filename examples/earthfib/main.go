// EARTH-style fine-grain multithreading on the PowerMANNA cluster: the
// runtime the paper's Section 7 names as its lightweight-communication
// companion (reference [18], EARTH-MANNA). Doubly recursive Fibonacci
// decomposes into thousands of fibers; results flow home through
// DATA_SYNC tokens into sync slots, and the dual-CPU node splits into an
// Execution Unit and a Synchronization Unit exactly as on EARTH-MANNA.
package main

import (
	"fmt"

	"powermanna"
)

func main() {
	const n = 20

	single := powermanna.NewEarth(powermanna.SingleNode(), powermanna.DefaultEarthParams())
	v1, t1, err := powermanna.RunEarthFib(single, n)
	if err != nil {
		panic(err)
	}

	cluster := powermanna.NewEarth(powermanna.Cluster8(), powermanna.DefaultEarthParams())
	v8, t8, err := powermanna.RunEarthFib(cluster, n)
	if err != nil {
		panic(err)
	}

	if v1 != v8 {
		panic("results diverge")
	}
	st := cluster.Stats()
	fmt.Printf("fib(%d) = %d\n", n, v8)
	fmt.Printf("1 node:  %v\n", t1)
	fmt.Printf("8 nodes: %v  (speedup %.2f)\n", t8, float64(t1)/float64(t8))
	fmt.Printf("fibers run: %d, tokens: %d (%d remote)\n",
		st.FibersRun, st.Tokens, st.RemoteTokens)
	fmt.Println("\n(every call level is a fiber; sync slots collect child results;")
	fmt.Println(" split-phase tokens ride the crossbar network at a few us each —")
	fmt.Println(" 'low communication cost close to the hardware limits', ref [18])")
}
