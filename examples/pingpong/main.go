// Ping-pong and streaming microbenchmarks: PowerMANNA's lightweight
// CPU-driven network interface against the Myrinet user-space libraries
// BIP and FM — the contest of Figures 9 through 12.
package main

import (
	"fmt"

	"powermanna"
)

func main() {
	systems := []powermanna.CommSystem{
		powermanna.NewPowerMANNAComm(),
		powermanna.BIP(),
		powermanna.FM(),
	}

	fmt.Println("one-way latency [us]:")
	fmt.Printf("%8s", "bytes")
	for _, s := range systems {
		fmt.Printf("%12s", s.Name())
	}
	fmt.Println()
	for _, n := range powermanna.CommSizes(4, 4096) {
		fmt.Printf("%8d", n)
		for _, s := range systems {
			fmt.Printf("%12.2f", s.OneWayLatency(n).Micros())
		}
		fmt.Println()
	}

	fmt.Println("\nstream bandwidth [MB/s] (uni / bi total):")
	fmt.Printf("%8s", "bytes")
	for _, s := range systems {
		fmt.Printf("%16s", s.Name())
	}
	fmt.Println()
	for _, n := range powermanna.CommSizes(256, 256<<10) {
		fmt.Printf("%8d", n)
		for _, s := range systems {
			fmt.Printf("%9.1f /%6.1f", s.UniBandwidth(n)/1e6, s.BiBandwidth(n)/1e6)
		}
		fmt.Println()
	}

	fmt.Println("\nPowerMANNA wins the short-message race on setup cost alone;")
	fmt.Println("its 60 MB/s links lose the large-message race to Myrinet, and the")
	fmt.Println("4-line interface FIFOs keep bidirectional traffic below 2x one way.")
}
