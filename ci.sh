#!/bin/sh
# ci.sh — the pre-PR gate (see README.md "Install and run").
#
# Runs the whole verification ladder and stops at the first failure:
# formatting, vet, build, race-enabled tests, the determinism-contract
# lint (cmd/pmlint), a build of every cmd/* binary, pmfault smoke
# campaigns pinned against golden degradation tables, pmtrace smoke
# exports pinned against golden timelines, and the parallel-engine
# equivalence gate (every pinned campaign rerun with --engine par must
# match the same goldens byte for byte). A clean exit means the tree is
# safe to ship.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== pmlint =="
go run ./cmd/pmlint ./...

echo "== pmlint shard-safety report =="
# The audit that gates the parallel simulation engine: every internal/
# package classified, byte-identical across runs, pinned as a golden.
# Regenerate deliberately with:
#   go run ./cmd/pmlint --report ./... > internal/analysis/testdata/pmlint_report.golden
reportout=$(mktemp)
go run ./cmd/pmlint --report ./... > "$reportout"
if ! cmp -s internal/analysis/testdata/pmlint_report.golden "$reportout"; then
    echo "pmlint --report diverged from internal/analysis/testdata/pmlint_report.golden:" >&2
    diff internal/analysis/testdata/pmlint_report.golden "$reportout" >&2 || true
    rm -f "$reportout"
    exit 1
fi
rm -f "$reportout"

echo "== analysis race tests =="
go test -race ./internal/analysis/...

echo "== build cmd binaries =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
for d in cmd/*/; do
    go build -o "$bindir/$(basename "$d")" "./$d"
done

echo "== pmfault smoke campaigns =="
# Fixed seeds; stdout must match the checked-in goldens byte for byte
# (the campaign half of the determinism contract). One synthetic
# campaign, one application campaign over the transport layer.
for campaign in link-cut heat-linkcut central-cut; do
    "$bindir/pmfault" --campaign "$campaign" --seed 1 > "$bindir/pmfault.out"
    if ! cmp -s "testdata/pmfault_${campaign}_seed1.golden" "$bindir/pmfault.out"; then
        echo "pmfault smoke output diverged from testdata/pmfault_${campaign}_seed1.golden:" >&2
        diff "testdata/pmfault_${campaign}_seed1.golden" "$bindir/pmfault.out" >&2 || true
        exit 1
    fi
done
# An application campaign at System256 scale, and the --metrics dump
# (counters and histograms must be as reproducible as the tables).
"$bindir/pmfault" --campaign heat-linkcut --topo system256 --seed 1 > "$bindir/pmfault.out"
if ! cmp -s testdata/pmfault_heat-linkcut_system256_seed1.golden "$bindir/pmfault.out"; then
    echo "pmfault System256 output diverged from testdata/pmfault_heat-linkcut_system256_seed1.golden:" >&2
    diff testdata/pmfault_heat-linkcut_system256_seed1.golden "$bindir/pmfault.out" >&2 || true
    exit 1
fi
"$bindir/pmfault" --campaign link-cut --seed 1 --metrics > "$bindir/pmfault.out"
if ! cmp -s testdata/pmfault_link-cut_metrics_seed1.golden "$bindir/pmfault.out"; then
    echo "pmfault --metrics output diverged from testdata/pmfault_link-cut_metrics_seed1.golden:" >&2
    diff testdata/pmfault_link-cut_metrics_seed1.golden "$bindir/pmfault.out" >&2 || true
    exit 1
fi
# The app-campaign metrics dump completes the machine profile with the
# receive-wait view (mpl.recv.wait).
"$bindir/pmfault" --campaign heat-linkcut --seed 1 --metrics > "$bindir/pmfault.out"
if ! cmp -s testdata/pmfault_heat-linkcut_metrics_seed1.golden "$bindir/pmfault.out"; then
    echo "pmfault heat --metrics output diverged from testdata/pmfault_heat-linkcut_metrics_seed1.golden:" >&2
    diff testdata/pmfault_heat-linkcut_metrics_seed1.golden "$bindir/pmfault.out" >&2 || true
    exit 1
fi

echo "== parallel-engine golden equivalence =="
# The psim contract: --engine par must reproduce every golden byte for
# byte. Rerun the pinned campaigns (tables, metrics, timelines) on the
# sharded engine against the same goldens the sequential runs matched.
for campaign in link-cut heat-linkcut central-cut; do
    "$bindir/pmfault" --campaign "$campaign" --seed 1 --engine par > "$bindir/pmfault.out"
    if ! cmp -s "testdata/pmfault_${campaign}_seed1.golden" "$bindir/pmfault.out"; then
        echo "pmfault --engine par diverged from testdata/pmfault_${campaign}_seed1.golden:" >&2
        diff "testdata/pmfault_${campaign}_seed1.golden" "$bindir/pmfault.out" >&2 || true
        exit 1
    fi
done
"$bindir/pmfault" --campaign heat-linkcut --seed 1 --metrics --engine par > "$bindir/pmfault.out"
if ! cmp -s testdata/pmfault_heat-linkcut_metrics_seed1.golden "$bindir/pmfault.out"; then
    echo "pmfault --engine par metrics diverged from testdata/pmfault_heat-linkcut_metrics_seed1.golden:" >&2
    diff testdata/pmfault_heat-linkcut_metrics_seed1.golden "$bindir/pmfault.out" >&2 || true
    exit 1
fi
"$bindir/pmtrace" --campaign link-cut --seed 1 --messages 60 --engine par > "$bindir/pmtrace.out"
if ! cmp -s testdata/pmtrace_link-cut_seed1.golden "$bindir/pmtrace.out"; then
    echo "pmtrace --engine par timeline diverged from testdata/pmtrace_link-cut_seed1.golden" >&2
    exit 1
fi

echo "== node-partitioned single-workload equivalence =="
# The tentpole contract of the partitioned datapath: one System256
# application, its sends split across psim shards through cross-shard
# mailboxes, must reproduce the sequential golden byte for byte when the
# workload itself runs partitioned (--engine par --shards 4).
"$bindir/pmfault" --campaign heat-linkcut --topo system256 --seed 1 --engine par --shards 4 > "$bindir/pmfault.out"
if ! cmp -s testdata/pmfault_heat-linkcut_system256_seed1.golden "$bindir/pmfault.out"; then
    echo "pmfault --engine par --shards 4 diverged from testdata/pmfault_heat-linkcut_system256_seed1.golden:" >&2
    diff testdata/pmfault_heat-linkcut_system256_seed1.golden "$bindir/pmfault.out" >&2 || true
    exit 1
fi

echo "== multi-tenant traffic equivalence =="
# The open-loop traffic engine's contract: the System256 SLO sweep —
# four tenants of seeded arrival-process load under plane-A link and
# central-stage cuts — must reproduce the golden byte for byte on the
# sequential engine AND partitioned across 4 psim shards.
"$bindir/pmfault" --traffic --topo system256 --seed 1 > "$bindir/pmfault.out"
if ! cmp -s testdata/pmfault_traffic_system256_seed1.golden "$bindir/pmfault.out"; then
    echo "pmfault --traffic output diverged from testdata/pmfault_traffic_system256_seed1.golden:" >&2
    diff testdata/pmfault_traffic_system256_seed1.golden "$bindir/pmfault.out" >&2 || true
    exit 1
fi
"$bindir/pmfault" --traffic --topo system256 --seed 1 --engine par --shards 4 > "$bindir/pmfault.out"
if ! cmp -s testdata/pmfault_traffic_system256_seed1.golden "$bindir/pmfault.out"; then
    echo "pmfault --traffic --engine par --shards 4 diverged from testdata/pmfault_traffic_system256_seed1.golden:" >&2
    diff testdata/pmfault_traffic_system256_seed1.golden "$bindir/pmfault.out" >&2 || true
    exit 1
fi

echo "== pmtraffic metrics dump =="
# The per-tenant service registry, latency-decomposition histograms
# (netsim.send.wait.*) included: the dump must reproduce byte for byte
# on both engines.
"$bindir/pmtraffic" --mix default --seed 1 --metrics > "$bindir/pmtraffic.out"
if ! cmp -s testdata/pmtraffic_default_metrics_seed1.golden "$bindir/pmtraffic.out"; then
    echo "pmtraffic --metrics output diverged from testdata/pmtraffic_default_metrics_seed1.golden:" >&2
    diff testdata/pmtraffic_default_metrics_seed1.golden "$bindir/pmtraffic.out" >&2 || true
    exit 1
fi

echo "== pmstat windowed telemetry =="
# The tentpole contract of the telemetry layer: the System256 default
# mix under a deterministic mid-run link-cut scenario, rendered as
# per-window burn-rate and latency-decomposition tables, byte-identical
# on the sequential engine AND partitioned across 4 psim shards.
"$bindir/pmstat" --campaign link-cut --faults 8 --topo system256 --seed 1 > "$bindir/pmstat.out"
if ! cmp -s testdata/pmstat_default_system256_seed1.golden "$bindir/pmstat.out"; then
    echo "pmstat output diverged from testdata/pmstat_default_system256_seed1.golden:" >&2
    diff testdata/pmstat_default_system256_seed1.golden "$bindir/pmstat.out" >&2 || true
    exit 1
fi
"$bindir/pmstat" --campaign link-cut --faults 8 --topo system256 --seed 1 --engine par --shards 4 > "$bindir/pmstat.out"
if ! cmp -s testdata/pmstat_default_system256_seed1.golden "$bindir/pmstat.out"; then
    echo "pmstat --engine par --shards 4 diverged from testdata/pmstat_default_system256_seed1.golden:" >&2
    diff testdata/pmstat_default_system256_seed1.golden "$bindir/pmstat.out" >&2 || true
    exit 1
fi

echo "== pmtrace smoke exports =="
# A comm workload and a fault campaign, traced with a fixed seed; the
# Chrome trace_event exports must match the goldens byte for byte (the
# timeline half of the determinism contract).
"$bindir/pmtrace" --run pingpong --seed 1 > "$bindir/pmtrace.out"
if ! cmp -s "testdata/pmtrace_pingpong_seed1.golden" "$bindir/pmtrace.out"; then
    echo "pmtrace pingpong output diverged from testdata/pmtrace_pingpong_seed1.golden" >&2
    exit 1
fi
"$bindir/pmtrace" --campaign link-cut --seed 1 --messages 60 > "$bindir/pmtrace.out"
if ! cmp -s "testdata/pmtrace_link-cut_seed1.golden" "$bindir/pmtrace.out"; then
    echo "pmtrace link-cut output diverged from testdata/pmtrace_link-cut_seed1.golden" >&2
    exit 1
fi

echo "== pmtrace analytics =="
# The analysis formats share the determinism contract with the exports:
# a utilization series and a two-seed diff, pinned byte for byte.
"$bindir/pmtrace" --run pingpong --format utilization --seed 1 > "$bindir/pmtrace.out"
if ! cmp -s testdata/pmtrace_pingpong_utilization_seed1.golden "$bindir/pmtrace.out"; then
    echo "pmtrace utilization output diverged from testdata/pmtrace_pingpong_utilization_seed1.golden" >&2
    diff testdata/pmtrace_pingpong_utilization_seed1.golden "$bindir/pmtrace.out" >&2 || true
    exit 1
fi
"$bindir/pmtrace" --run pingpong --format diff --seed 1 --seed2 2 > "$bindir/pmtrace.out"
if ! cmp -s testdata/pmtrace_pingpong_diff_seed1_seed2.golden "$bindir/pmtrace.out"; then
    echo "pmtrace diff output diverged from testdata/pmtrace_pingpong_diff_seed1_seed2.golden" >&2
    diff testdata/pmtrace_pingpong_diff_seed1_seed2.golden "$bindir/pmtrace.out" >&2 || true
    exit 1
fi
# A same-seed diff must report a clean alignment.
"$bindir/pmtrace" --run pingpong --format diff --seed 1 --seed2 1 > "$bindir/pmtrace.out"
if ! grep -q "timelines identical" "$bindir/pmtrace.out"; then
    echo "pmtrace same-seed diff reported divergence:" >&2
    cat "$bindir/pmtrace.out" >&2
    exit 1
fi

echo "ci: all checks passed"
