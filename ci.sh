#!/bin/sh
# ci.sh — the pre-PR gate (see README.md "Install and run").
#
# Runs the whole verification ladder and stops at the first failure:
# formatting, vet, build, race-enabled tests, the determinism-contract
# lint (cmd/pmlint), a build of every cmd/* binary, and a pmfault smoke
# campaign pinned against a golden degradation table. A clean exit means
# the tree is safe to ship.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== pmlint =="
go run ./cmd/pmlint ./...

echo "== build cmd binaries =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
for d in cmd/*/; do
    go build -o "$bindir/$(basename "$d")" "./$d"
done

echo "== pmfault smoke campaign =="
# Fixed seed; stdout must match the checked-in golden byte for byte (the
# campaign half of the determinism contract).
"$bindir/pmfault" --campaign link-cut --seed 1 > "$bindir/pmfault.out"
if ! cmp -s testdata/pmfault_link-cut_seed1.golden "$bindir/pmfault.out"; then
    echo "pmfault smoke output diverged from testdata/pmfault_link-cut_seed1.golden:" >&2
    diff testdata/pmfault_link-cut_seed1.golden "$bindir/pmfault.out" >&2 || true
    exit 1
fi

echo "ci: all checks passed"
