#!/bin/sh
# ci.sh — the pre-PR gate (see README.md "Install and run").
#
# Runs the whole verification ladder and stops at the first failure:
# formatting, vet, build, race-enabled tests, and the determinism-contract
# lint (cmd/pmlint). A clean exit means the tree is safe to ship.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== pmlint =="
go run ./cmd/pmlint ./...

echo "ci: all checks passed"
