#!/bin/sh
# ci.sh — the pre-PR gate (see README.md "Install and run").
#
# Runs the whole verification ladder and stops at the first failure:
# formatting, vet, build, race-enabled tests, the determinism-contract
# lint (cmd/pmlint), a build of every cmd/* binary, and a pmfault smoke
# campaign pinned against a golden degradation table. A clean exit means
# the tree is safe to ship.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== pmlint =="
go run ./cmd/pmlint ./...

echo "== build cmd binaries =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
for d in cmd/*/; do
    go build -o "$bindir/$(basename "$d")" "./$d"
done

echo "== pmfault smoke campaigns =="
# Fixed seeds; stdout must match the checked-in goldens byte for byte
# (the campaign half of the determinism contract). One synthetic
# campaign, one application campaign over the transport layer.
for campaign in link-cut heat-linkcut; do
    "$bindir/pmfault" --campaign "$campaign" --seed 1 > "$bindir/pmfault.out"
    if ! cmp -s "testdata/pmfault_${campaign}_seed1.golden" "$bindir/pmfault.out"; then
        echo "pmfault smoke output diverged from testdata/pmfault_${campaign}_seed1.golden:" >&2
        diff "testdata/pmfault_${campaign}_seed1.golden" "$bindir/pmfault.out" >&2 || true
        exit 1
    fi
done

echo "ci: all checks passed"
