module powermanna

go 1.22
