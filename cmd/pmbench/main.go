// Command pmbench regenerates the tables and figures of the paper's
// evaluation section (plus the ablations) and prints them as text tables
// and ASCII plots.
//
// Usage:
//
//	pmbench                  # run everything at quick sweep sizes
//	pmbench -full            # full sweeps (the paper's plotted ranges)
//	pmbench -exp fig9,fig12  # selected experiments
//	pmbench -list            # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"powermanna"
	"powermanna/internal/psim"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		full     = flag.Bool("full", false, "run full sweeps instead of quick ones")
		listOnly = flag.Bool("list", false, "list experiment IDs and exit")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of tables and plots")
		engine   = flag.String("engine", "seq", "event engine for campaign-backed experiments: seq or par (byte-identical output)")
	)
	flag.Parse()

	if *listOnly {
		for _, id := range powermanna.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	eng, err := psim.ParseKind(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt := powermanna.ExperimentOptions{Quick: !*full, Engine: eng}
	ids := powermanna.ExperimentIDs()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		// Wall-clock harness timing goes to stderr only: stdout is the
		// results channel and must be a pure function of the model, so two
		// runs with the same flags are byte-identical (the determinism
		// contract; see DESIGN.md).
		start := time.Now()
		r, err := powermanna.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			b, err := r.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(string(b))
		} else {
			fmt.Println(r.Render())
		}
		fmt.Fprintf(os.Stderr, "(%s took %.1fs)\n", id, time.Since(start).Seconds())
	}
}
