// Command pmtopo builds and inspects PowerMANNA interconnect topologies:
// the Figure 5a eight-node cluster and the Figure 5b 256-processor
// system. It prints routes (with the route-command bytes the crossbars
// consume), validates the paper's three-crossbar bound, and times a
// message over the simulated network.
//
// Usage:
//
//	pmtopo -topo system256 -src 0 -dst 127 -net 1 -bytes 64
//	pmtopo -topo system256 -validate
package main

import (
	"flag"
	"fmt"
	"os"

	"powermanna"
)

func main() {
	var (
		topoFlag = flag.String("topo", "cluster8", "topology: cluster8 or system256")
		src      = flag.Int("src", 0, "source node")
		dst      = flag.Int("dst", 1, "destination node")
		network  = flag.Int("net", powermanna.NetworkA, "network plane: 0 (A) or 1 (B)")
		bytes    = flag.Int("bytes", 64, "payload size for transit timing")
		validate = flag.Bool("validate", false, "check the max-crossbars bound over all pairs")
	)
	flag.Parse()

	var t *powermanna.Topology
	switch *topoFlag {
	case "cluster8":
		t = powermanna.Cluster8()
	case "system256":
		t = powermanna.System256()
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoFlag)
		os.Exit(1)
	}
	fmt.Printf("topology %s: %d nodes (%d processors), %d crossbars\n",
		t.Name(), t.Nodes(), 2*t.Nodes(), t.Crossbars())

	if *validate {
		max, err := t.MaxCrossbars()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("max crossbars over all %d node pairs and both networks: %d\n",
			t.Nodes()*(t.Nodes()-1), max)
		if t.Name() == "system256" && max == 3 {
			fmt.Println("matches the paper: any two nodes within three crossbars")
		}
		return
	}

	path, err := t.Route(*src, *dst, *network)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("route %d -> %d on network %c:\n", *src, *dst, 'A'+rune(*network))
	for i, h := range path.Hops {
		async := ""
		if h.AsyncIn {
			async = " (entered via async transceiver link)"
		}
		fmt.Printf("  hop %d: crossbar %s, in %d -> out %d%s\n",
			i+1, t.CrossbarName(h.Xbar), h.In, h.Out, async)
	}
	fmt.Printf("route bytes in header: %v\n", path.RouteBytes)

	net := powermanna.NewNetwork(t)
	//pmlint:allow layering pmtopo prints raw single-message transit timing along an explicit path
	tr, err := net.Send(0, path, *bytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("transit of %d bytes: circuit up at %v, first byte %v, last byte %v (%d on the wire)\n",
		*bytes, tr.SetupDone, tr.FirstByte, tr.LastByte, tr.WireBytes)
}
