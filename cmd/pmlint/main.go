// Command pmlint runs the determinism-contract static-analysis suite
// (internal/analysis) over the module and prints file:line:col
// diagnostics.
//
// Usage:
//
//	pmlint ./...             # analyze the whole module
//	pmlint ./internal/...    # analyze a subtree
//	pmlint ./internal/sim    # analyze one package
//	pmlint -list             # list analyzers and exit
//	pmlint -only determinism ./...
//	pmlint -report ./...     # shard-safety audit of internal/ packages
//
// The -report mode emits the deterministic shard-safety audit pinned by
// internal/analysis/testdata/pmlint_report.golden: every internal/
// package classified as clean, needs-queue-mediation or violations —
// the work-list for the parallel simulation engine.
//
// Exit codes are machine-readable: 0 means the tree is clean, 1 means at
// least one diagnostic was reported (or, with -report, at least one
// package classifies as violations), 2 means the tool itself failed
// (bad usage, unparseable or untypeable source).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"powermanna/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list   = flag.Bool("list", false, "list analyzers and exit")
		only   = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		report = flag.Bool("report", false, "emit the shard-safety audit instead of diagnostics")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := analysis.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "pmlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := load(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmlint:", err)
		return 2
	}

	if *report {
		audits := analysis.AuditPackages(pkgs)
		fmt.Print(analysis.RenderReport(audits))
		for _, a := range audits {
			if a.Class == "violations" {
				return 1
			}
		}
		return 0
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pmlint: %d issue(s)\n", len(diags))
		return 1
	}
	return 0
}

// load resolves package patterns (a directory, or a directory/... tree)
// against the enclosing module and loads every matched package.
func load(patterns []string) ([]*analysis.Package, error) {
	root, modpath, err := analysis.ModuleRoot(".")
	if err != nil {
		return nil, err
	}
	rels := map[string]bool{}
	for _, pat := range patterns {
		tree := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			tree = true
			pat = rest
			if pat == "." || pat == "" {
				pat = root
			}
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %s is outside the module at %s", pat, root)
		}
		rel = filepath.ToSlash(rel)
		if !tree {
			rels[rel] = true
			continue
		}
		sub, err := analysis.PackageDirs(abs)
		if err != nil {
			return nil, err
		}
		for _, s := range sub {
			r := rel
			if s != "." {
				if r == "." {
					r = s
				} else {
					r = r + "/" + s
				}
			}
			rels[r] = true
		}
	}
	sorted := make([]string, 0, len(rels))
	for r := range rels {
		sorted = append(sorted, r)
	}
	sort.Strings(sorted)

	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	for _, rel := range sorted {
		pkg, err := loader.LoadPackage(root, modpath, rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
