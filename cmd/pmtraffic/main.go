// Command pmtraffic runs the open-loop multi-tenant traffic engine
// (internal/traffic) once, on a healthy machine, and prints the
// per-tenant service report: offered versus delivered traffic,
// delivered-latency p50/p99/p999 and each tenant's SLO verdict with the
// exact violation count. It is the multi-tenant counterpart to pmearth
// and pmheat — not "how fast does one program run" but "what service do
// concurrent workloads get from the shared fabric".
//
// Usage:
//
//	pmtraffic --mix default --seed 1
//	pmtraffic --mix bursty --topo system256 --horizon-us 400
//	pmtraffic --topo system256 --engine par --shards 4
//	pmtraffic --mix default --metrics
//	pmtraffic --list
//
// --engine selects sequential or parallel execution of the partitioned
// datapath; stdout is byte-identical across engines and aligned shard
// counts, and a pure function of the flags. For the same mix under a
// fault sweep, use pmfault --traffic.
package main

import (
	"flag"
	"fmt"
	"os"

	"powermanna/internal/metrics"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/traffic"
)

func main() {
	var (
		mixFlag     = flag.String("mix", "default", "tenant mix (see --list)")
		topoFlag    = flag.String("topo", "cluster8", "topology: cluster8 or system256")
		seed        = flag.Int64("seed", 1, "seed for every arrival process")
		horizonUS   = flag.Int64("horizon-us", int64(traffic.DefaultHorizon/sim.Microsecond), "offered-load window in microseconds")
		engineFlag  = flag.String("engine", "seq", "event engine: seq (one shard) or par (sharded; byte-identical output)")
		shardsFlag  = flag.Int("shards", 0, "psim shard count under --engine par (must align with the topology's leaf groups)")
		metricsFlag = flag.Bool("metrics", false, "append the run's full metrics dump")
		listOnly    = flag.Bool("list", false, "list mix names and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, m := range traffic.Mixes() {
			fmt.Printf("%-10s  %s\n", m.Name, m.Description)
		}
		return
	}

	mix, err := traffic.MixByName(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtraffic: %v\n", err)
		os.Exit(1)
	}
	engine, err := psim.ParseKind(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtraffic: %v\n", err)
		os.Exit(1)
	}
	var t *topo.Topology
	switch *topoFlag {
	case "cluster8":
		t = topo.Cluster8()
	case "system256":
		t = topo.System256()
	default:
		fmt.Fprintf(os.Stderr, "pmtraffic: unknown topology %q\n", *topoFlag)
		os.Exit(1)
	}

	var reg *metrics.Registry
	if *metricsFlag {
		reg = metrics.NewRegistry()
	}
	eng, err := traffic.New(mix, traffic.Options{
		Seed:     *seed,
		Topology: t,
		Horizon:  sim.Time(*horizonUS) * sim.Microsecond,
		Engine:   engine,
		Shards:   *shardsFlag,
		Metrics:  reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtraffic: %v\n", err)
		os.Exit(1)
	}
	res, err := eng.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtraffic: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
	if reg != nil {
		fmt.Println()
		fmt.Print(reg.Render())
	}
}
