// Command pmsim runs a single workload on a single simulated machine —
// the unit of the bigger figure sweeps, handy for poking at one
// configuration.
//
// Usage:
//
//	pmsim -machine pm -bench matmult -n 201 -version transposed -cpus 2
//	pmsim -machine sun -bench hint -type int -intervals 100000
//	pmsim -machine pm -bench comm -n 8
package main

import (
	"flag"
	"fmt"
	"os"

	"powermanna"
)

func main() {
	var (
		machineFlag = flag.String("machine", "pm", "pm, sun, pc180 or pc266")
		benchFlag   = flag.String("bench", "matmult", "matmult, hint or comm")
		n           = flag.Int("n", 201, "matrix size (matmult) or message bytes (comm)")
		versionFlag = flag.String("version", "transposed", "matmult version: naive or transposed")
		cpus        = flag.Int("cpus", 1, "processors to use (matmult)")
		typeFlag    = flag.String("type", "double", "hint data type: double or int")
		intervals   = flag.Int("intervals", 100000, "hint interval budget")
	)
	flag.Parse()

	cfg, ok := powermanna.MachineByName(*machineFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machineFlag)
		os.Exit(1)
	}

	switch *benchFlag {
	case "matmult":
		v := powermanna.Transposed
		if *versionFlag == "naive" {
			v = powermanna.Naive
		}
		nd := powermanna.NewNode(cfg)
		fmt.Println(powermanna.RunMatMult(nd, *n, v, *cpus))

	case "hint":
		dt := powermanna.HintDouble
		if *typeFlag == "int" {
			dt = powermanna.HintInt
		}
		nd := powermanna.NewNode(cfg)
		r := powermanna.RunHINT(nd, dt, *intervals)
		fmt.Println(r)
		for _, p := range r.Points {
			fmt.Printf("  t=%-12v intervals=%-8d quality=%-12.4g QUIPS=%.4g\n",
				p.Time, p.Intervals, p.Quality, p.QUIPS)
		}

	case "comm":
		if *machineFlag != "pm" && *machineFlag != "powermanna" {
			fmt.Fprintln(os.Stderr, "comm benchmark measures the PowerMANNA pair; use -machine pm")
			os.Exit(1)
		}
		pm := powermanna.NewPowerMANNAComm()
		fmt.Printf("%s message size %d bytes:\n", pm.Name(), *n)
		fmt.Printf("  one-way latency: %v\n", pm.OneWayLatency(*n))
		fmt.Printf("  gap at saturation: %v\n", pm.Gap(*n))
		fmt.Printf("  unidirectional: %.1f MB/s\n", pm.UniBandwidth(*n)/1e6)
		fmt.Printf("  bidirectional (total): %.1f MB/s\n", pm.BiBandwidth(*n)/1e6)

	default:
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *benchFlag)
		os.Exit(1)
	}
}
