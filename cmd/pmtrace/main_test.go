package main

import (
	"os"
	"strings"
	"testing"

	"powermanna/internal/psim"
	"powermanna/internal/trace"
)

// renderChrome runs one pmtrace workload or campaign and returns the
// Chrome trace_event export, failing the test on any error.
func renderChrome(t *testing.T, campaign, run string, seed int64, messages int) string {
	t.Helper()
	rec := trace.NewRecorder()
	var err error
	if campaign != "" {
		err = runCampaign(rec, campaign, seed, nil, messages, psim.Seq)
	} else {
		err = runWorkload(rec, run, seed, nil, messages)
	}
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := trace.WriteChrome(&b, rec); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestWorkloadTracesDeterministic runs every workload twice with the
// same seed and requires byte-identical exports — the pmtrace half of
// the determinism contract.
func TestWorkloadTracesDeterministic(t *testing.T) {
	for _, run := range []string{"pingpong", "fib", "dispatch"} {
		first := renderChrome(t, "", run, 1, 0)
		second := renderChrome(t, "", run, 1, 0)
		if first != second {
			t.Errorf("--run %s: two seed-1 runs produced different traces", run)
		}
		if strings.Count(first, "\n") < 4 {
			t.Errorf("--run %s: trace suspiciously empty:\n%s", run, first)
		}
		if first == renderChrome(t, "", run, 2, 0) {
			t.Errorf("--run %s: seeds 1 and 2 produced identical traces", run)
		}
	}
}

// TestCampaignTracesDeterministic does the same for the fault-campaign
// mode: one synthetic campaign and the System256 central-stage one.
func TestCampaignTracesDeterministic(t *testing.T) {
	for _, campaign := range []string{"link-cut", "central-cut"} {
		first := renderChrome(t, campaign, "", 1, 60)
		if first != renderChrome(t, campaign, "", 1, 60) {
			t.Errorf("--campaign %s: two seed-1 runs produced different traces", campaign)
		}
		if !strings.Contains(first, "failover") {
			t.Errorf("--campaign %s: no failover events in the trace", campaign)
		}
	}
}

// TestGoldenTraces pins the two CI-smoked exports against the
// checked-in goldens so a trace-format or schedule change is a
// deliberate golden update, never drift.
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		golden, campaign, run string
		messages              int
	}{
		{"pmtrace_pingpong_seed1.golden", "", "pingpong", 0},
		{"pmtrace_link-cut_seed1.golden", "link-cut", "", 60},
	}
	for _, c := range cases {
		want, err := os.ReadFile("../../testdata/" + c.golden)
		if err != nil {
			t.Fatalf("missing golden (regenerate with pmtrace): %v", err)
		}
		got := renderChrome(t, c.campaign, c.run, 1, c.messages)
		if got != string(want) {
			t.Errorf("%s: output diverged from golden (len %d vs %d)", c.golden, len(got), len(want))
		}
	}
}

// record runs one pmtrace workload or campaign into a fresh recorder.
func record(t *testing.T, campaign, run string, seed int64, messages int) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder()
	var err error
	if campaign != "" {
		err = runCampaign(rec, campaign, seed, nil, messages, psim.Seq)
	} else {
		err = runWorkload(rec, run, seed, nil, messages)
	}
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestAnalyticsFormatsDeterministic runs the three analytics formats
// twice on the same seed and requires byte-identical output — the
// acceptance criterion for the analysis layer.
func TestAnalyticsFormatsDeterministic(t *testing.T) {
	render := func(rec *trace.Recorder, format string) string {
		var b strings.Builder
		var err error
		switch format {
		case "utilization":
			err = trace.WriteUtilization(&b, rec, 0)
		case "critpath":
			err = trace.WriteCritPath(&b, rec)
		}
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	for _, format := range []string{"utilization", "critpath"} {
		first := render(record(t, "", "pingpong", 1, 0), format)
		second := render(record(t, "", "pingpong", 1, 0), format)
		if first != second {
			t.Errorf("--format %s: two seed-1 runs rendered differently", format)
		}
		if strings.Count(first, "\n") < 3 {
			t.Errorf("--format %s: output suspiciously empty:\n%s", format, first)
		}
	}
}

// TestDiffSameSeedIsClean pins the diff acceptance criterion: the same
// workload under the same seed diffs clean, and under a different seed
// reports a non-empty delta.
func TestDiffSameSeedIsClean(t *testing.T) {
	a := record(t, "", "pingpong", 1, 0)
	b := record(t, "", "pingpong", 1, 0)
	var out strings.Builder
	if err := trace.WriteDiff(&out, a, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "timelines identical") {
		t.Errorf("seed-1 self diff not clean:\n%s", out.String())
	}
	out.Reset()
	if err := trace.WriteDiff(&out, a, record(t, "", "pingpong", 2, 0)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "timelines identical") {
		t.Error("seed-1 vs seed-2 diff reported identical")
	}
}

// TestGoldenAnalytics pins the CI-smoked utilization and diff reports
// against the checked-in goldens.
func TestGoldenAnalytics(t *testing.T) {
	read := func(name string) string {
		t.Helper()
		want, err := os.ReadFile("../../testdata/" + name)
		if err != nil {
			t.Fatalf("missing golden (regenerate with pmtrace): %v", err)
		}
		return string(want)
	}
	var b strings.Builder
	if err := trace.WriteUtilization(&b, record(t, "", "pingpong", 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	if b.String() != read("pmtrace_pingpong_utilization_seed1.golden") {
		t.Error("utilization output diverged from golden")
	}
	b.Reset()
	if err := trace.WriteDiff(&b, record(t, "", "pingpong", 1, 0), record(t, "", "pingpong", 2, 0)); err != nil {
		t.Fatal(err)
	}
	if b.String() != read("pmtrace_pingpong_diff_seed1_seed2.golden") {
		t.Error("diff output diverged from golden")
	}
}

// TestProfileFormat checks the plain-text exporter renders a table for
// a recorded workload.
func TestProfileFormat(t *testing.T) {
	rec := trace.NewRecorder()
	if err := runWorkload(rec, "dispatch", 1, nil, 0); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := trace.WriteProfile(&b, rec, 3); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "trace profile") || !strings.Contains(out, "dispatcher addr") {
		t.Errorf("profile output missing expected sections:\n%s", out)
	}
}
