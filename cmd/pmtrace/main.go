// Command pmtrace runs a seeded workload on the simulator with the
// event recorder attached and exports the resulting timeline, either as
// Chrome trace_event JSON (load in chrome://tracing or Perfetto) or as
// a plain-text top-N span profile. It is the observability front end of
// internal/trace: every span it emits is placed on the simulated clock,
// so two runs with identical flags are byte-identical.
//
// Workloads (--run):
//
//	pingpong   seeded message ping-pong over the MPL on the duplicated
//	           interconnect, with the bursty OS stream contending on
//	           plane B
//	fib        the EARTH split-phase fib benchmark (fibers, SU service,
//	           tokens over both planes)
//	dispatch   the MPC620 split-transaction bus dispatcher under a
//	           seeded two-master load
//
// Alternatively --campaign runs a fault-injection campaign from
// internal/fault at its highest fault rate with tracing attached, so
// the timeline shows failover attempts, plane-down cache hits and
// stuck-output spans next to the traffic that felt them.
//
// Beyond export, pmtrace analyzes the recording in place (--format
// utilization, critpath) and compares two seeded runs (--format diff
// reruns the same workload under --seed2 and aligns the timelines):
// per-track busy-fraction series, the longest dependency chain bounding
// the makespan, and the shifted/added/removed events plus utilization
// deltas between the runs.
//
// Usage:
//
//	pmtrace --run pingpong --seed 1 > trace.json
//	pmtrace --run fib --format profile
//	pmtrace --run pingpong --format utilization --window-us 20
//	pmtrace --run pingpong --format critpath
//	pmtrace --run pingpong --format diff --seed 1 --seed2 2
//	pmtrace --campaign link-cut --seed 1 --messages 60 > fault.json
//	pmtrace --campaign central-cut --format profile
//	pmtrace --campaign heat-linkcut --format diff
//	pmtrace --campaign link-cut --engine par --seed 1
//
// --engine selects the event engine for --campaign runs (seq or par,
// one psim shard per degradation row); the recorded timeline is
// byte-identical either way, which CI checks against the goldens.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"powermanna/internal/dispatch"
	"powermanna/internal/earth"
	"powermanna/internal/fault"
	"powermanna/internal/mpl"
	"powermanna/internal/netsim"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// fibN is the fib argument for --run fib: big enough to spread fibers
// over every Cluster8 node, small enough to keep traces reviewable.
const fibN = 10

func main() {
	var (
		runFlag      = flag.String("run", "pingpong", "workload: pingpong, fib or dispatch")
		campaignFlag = flag.String("campaign", "", "trace a fault campaign's highest rate instead of --run (see pmfault --list)")
		formatFlag   = flag.String("format", "chrome", "output format: chrome, profile, utilization, critpath or diff")
		seed         = flag.Int64("seed", 1, "seed for workload schedule and fault placement")
		seed2        = flag.Int64("seed2", 2, "second seed for --format diff (the B run)")
		topoFlag     = flag.String("topo", "", "topology: cluster8 or system256 (default per workload)")
		messages     = flag.Int("messages", 0, "messages per campaign row or ping-pong rounds (0 = default)")
		topN         = flag.Int("top", trace.DefaultProfileTopN, "span names per track in --format profile")
		windowUS     = flag.Int64("window-us", 0, "utilization window in microseconds (0 = horizon/16)")
		engineFlag   = flag.String("engine", "seq", "event engine for --campaign runs: seq or par (byte-identical timelines)")
	)
	flag.Parse()

	t, err := pickTopology(*topoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtrace: %v\n", err)
		os.Exit(1)
	}
	engine, err := psim.ParseKind(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtrace: %v\n", err)
		os.Exit(1)
	}

	record := func(rec *trace.Recorder, seed int64) error {
		if *campaignFlag != "" {
			return runCampaign(rec, *campaignFlag, seed, t, *messages, engine)
		}
		return runWorkload(rec, *runFlag, seed, t, *messages)
	}

	rec := trace.NewRecorder()
	if err := record(rec, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "pmtrace: %v\n", err)
		os.Exit(1)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	switch *formatFlag {
	case "chrome":
		err = trace.WriteChrome(out, rec)
	case "profile":
		err = trace.WriteProfile(out, rec, *topN)
	case "utilization":
		err = trace.WriteUtilization(out, rec, sim.Time(*windowUS)*sim.Microsecond)
	case "critpath":
		err = trace.WriteCritPath(out, rec)
	case "diff":
		rec2 := trace.NewRecorder()
		if err := record(rec2, *seed2); err != nil {
			fmt.Fprintf(os.Stderr, "pmtrace: %v\n", err)
			os.Exit(1)
		}
		err = trace.WriteDiff(out, rec, rec2)
	default:
		fmt.Fprintf(os.Stderr, "pmtrace: unknown format %q\n", *formatFlag)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmtrace: %v\n", err)
		os.Exit(1)
	}
}

// pickTopology maps the --topo flag; empty means "workload default" and
// returns nil so campaigns with their own default topology keep it.
func pickTopology(name string) (*topo.Topology, error) {
	switch name {
	case "":
		return nil, nil
	case "cluster8":
		return topo.Cluster8(), nil
	case "system256":
		return topo.System256(), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

// runWorkload records one seeded workload into rec.
func runWorkload(rec *trace.Recorder, name string, seed int64, t *topo.Topology, messages int) error {
	if t == nil {
		t = topo.Cluster8()
	}
	switch name {
	case "pingpong":
		return runPingPong(rec, seed, t, messages)
	case "fib":
		return runFib(rec, seed, t)
	case "dispatch":
		return runDispatch(rec, seed)
	default:
		return fmt.Errorf("unknown workload %q", name)
	}
}

// runPingPong bounces seeded messages between random rank pairs over
// the duplicated interconnect while the bursty OS stream contends on
// plane B, so the trace shows wormhole spans interleaving with OS
// traffic on shared wires.
func runPingPong(rec *trace.Recorder, seed int64, t *topo.Topology, rounds int) error {
	if rounds <= 0 {
		rounds = 12
	}
	w := mpl.NewWorldWith(t, netsim.DefaultFailover())
	w.Network().SetRecorder(rec)
	w.Network().AttachOSStream(netsim.BurstyOSStream(seed))
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 256)
	for i := 0; i < rounds; i++ {
		a := rng.Intn(w.Ranks())
		b := rng.Intn(w.Ranks() - 1)
		if b >= a {
			b++
		}
		if err := w.Send(a, b, i, payload); err != nil {
			return err
		}
		if _, err := w.Recv(b, a, i); err != nil {
			return err
		}
		if err := w.Send(b, a, i, payload); err != nil {
			return err
		}
		if _, err := w.Recv(a, b, i); err != nil {
			return err
		}
		w.Compute(a, 2*sim.Microsecond)
	}
	return nil
}

// runFib records the EARTH fib benchmark: EU fiber spans, SU service
// spans and split-phase tokens crossing the planes.
func runFib(rec *trace.Recorder, seed int64, t *topo.Topology) error {
	s := earth.NewWithFailover(t, earth.DefaultParams(), netsim.DefaultFailover())
	s.SetRecorder(rec)
	s.Network().AttachOSStream(netsim.BurstyOSStream(seed))
	got, _, err := earth.RunFib(s, fibN)
	if err != nil {
		return err
	}
	if want := earth.FibReference(fibN); got != want {
		return fmt.Errorf("fib(%d) = %d, want %d", fibN, got, want)
	}
	return nil
}

// runDispatch drives the MPC620 bus dispatcher with a seeded two-master
// transaction mix and traces address and data tenures on the 60 MHz bus
// clock.
func runDispatch(rec *trace.Recorder, seed int64) error {
	cfg := dispatch.DefaultConfig()
	d := dispatch.New(cfg, nil)
	d.Trace(rec, sim.ClockMHz(60).Period)
	rng := rand.New(rand.NewSource(seed))
	kinds := []dispatch.Kind{dispatch.Read, dispatch.ReadExcl, dispatch.Upgrade, dispatch.Writeback}
	for i := 0; i < 24; i++ {
		d.Submit(rng.Intn(cfg.Masters), kinds[rng.Intn(len(kinds))], uint64(rng.Intn(64))<<6)
		for s := rng.Intn(4); s > 0; s-- {
			d.Step()
		}
	}
	if _, ok := d.RunUntilIdle(100_000); !ok {
		return fmt.Errorf("dispatcher did not drain within 100k cycles")
	}
	return nil
}

// runCampaign runs a fault campaign with tracing attached; the fault
// engine records only the highest-rate row, so the timeline is the
// worst-case machine state the degradation table summarises.
func runCampaign(rec *trace.Recorder, name string, seed int64, t *topo.Topology, messages int, engine psim.Kind) error {
	opt := fault.Options{Seed: seed, Topology: t, Trace: rec, Engine: engine}
	if messages > 0 {
		opt.Messages = messages
	}
	if c, ok := fault.CampaignByName(name); ok {
		_, err := fault.Run(c, opt)
		return err
	}
	if c, ok := fault.AppCampaignByName(name); ok {
		_, err := fault.RunApp(c, opt)
		return err
	}
	return fmt.Errorf("unknown campaign %q (try pmfault --list)", name)
}
