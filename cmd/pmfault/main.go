// Command pmfault runs deterministic fault-injection campaigns against
// the duplicated interconnect and prints a degradation table: delivered,
// retried (plane-B failover) and failed message counts plus latency
// inflation, per injected fault count. It is how this reproduction
// answers "what does the machine do when a link dies?" — the question
// the paper's duplicated communication system (Section 4) exists for.
//
// Besides the synthetic-traffic campaigns it runs application campaigns
// (heat-linkcut, allreduce-linkcut): a real workload SPMD-style over the
// node-partitioned message-passing layer while plane-A uplinks die,
// reporting makespan inflation. Under --engine par --shards N the
// workload itself runs partitioned across N psim shards; output stays
// byte-identical to --engine seq at every aligned shard count.
//
// Usage:
//
//	pmfault --campaign link-cut --seed 1
//	pmfault --campaign heat-linkcut --seed 1
//	pmfault --campaign heat-linkcut --topo system256 --engine par --shards 4
//	pmfault --campaign mixed --topo system256 --messages 800
//	pmfault --campaign link-cut --metrics
//	pmfault --campaign link-cut --engine par
//	pmfault --traffic --topo system256 --engine par --shards 4
//	pmfault --list
//
// --traffic swaps the campaign for the open-loop multi-tenant traffic
// sweep (internal/traffic): the named mix (--mix, default "default")
// offers seeded arrival-process load from every node while plane-A
// links die, and the table reports each tenant's delivered-latency
// p50/p99/p999 against its SLO per fault count. --window-us, when set,
// becomes the offered-load horizon.
//
// --metrics appends the highest-rate row's deterministic metrics dump
// (internal/metrics): send outcome counters, latency and detection
// histograms, receive waits, crossbar arbitration waits, and for EARTH
// workloads the runtime's token instruments.
//
// --engine selects the event engine: seq runs every degradation row on
// the sequential scheduler, par gives each row its own shard of the
// internal/psim parallel engine. The two are byte-identical by
// construction — CI runs the goldens under both.
//
// stdout is a pure function of the flags: two runs with identical flags
// are byte-identical. CI pins `--campaign link-cut --seed 1` and
// `--campaign heat-linkcut --seed 1` against golden tables in testdata/.
package main

import (
	"flag"
	"fmt"
	"os"

	"powermanna/internal/fault"
	"powermanna/internal/metrics"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/traffic"
)

// printMetrics appends the registry dump to the campaign output;
// a nil registry (no --metrics) prints nothing.
func printMetrics(reg *metrics.Registry) {
	if reg != nil {
		fmt.Println()
		fmt.Print(reg.Render())
	}
}

func main() {
	var (
		campaignFlag = flag.String("campaign", "link-cut", "campaign name (see --list)")
		seed         = flag.Int64("seed", fault.DefaultSeed, "seed for fault schedule and traffic")
		topoFlag     = flag.String("topo", "cluster8", "topology: cluster8 or system256")
		messages     = flag.Int("messages", fault.DefaultMessages, "messages per degradation row")
		payload      = flag.Int("payload", fault.DefaultPayloadBytes, "payload bytes per message")
		windowUS     = flag.Int64("window-us", int64(fault.DefaultWindow/sim.Microsecond), "simulated span in microseconds traffic spreads over")
		metricsFlag  = flag.Bool("metrics", false, "append the highest-rate row's metrics dump (latency/detection histograms, send outcomes, arb waits)")
		engineFlag   = flag.String("engine", "seq", "event engine: seq (sequential) or par (one psim shard per degradation row; byte-identical output)")
		shardsFlag   = flag.Int("shards", 0, "psim shard count for partitioned app workloads under --engine par (0 = 1; must align with the topology's leaf groups)")
		trafficFlag  = flag.Bool("traffic", false, "run the open-loop multi-tenant traffic sweep instead of a campaign (per-tenant SLO percentiles per fault count)")
		mixFlag      = flag.String("mix", "default", "tenant mix for --traffic (see pmtraffic --list)")
		listOnly     = flag.Bool("list", false, "list campaign names and exit")
	)
	flag.Parse()

	engine, err := psim.ParseKind(*engineFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmfault: %v\n", err)
		os.Exit(1)
	}

	if *listOnly {
		for _, c := range fault.Campaigns() {
			fmt.Printf("%-18s  %s\n", c.Name, c.Description)
		}
		for _, c := range fault.AppCampaigns() {
			fmt.Printf("%-18s  %s\n", c.Name, c.Description)
		}
		return
	}

	// An unset --topo stays nil so a campaign's own default topology can
	// apply (central-cut needs System256's central stage); an explicit
	// flag always wins.
	topoSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "topo" {
			topoSet = true
		}
	})
	var t *topo.Topology
	switch {
	case !topoSet:
	case *topoFlag == "cluster8":
		t = topo.Cluster8()
	case *topoFlag == "system256":
		t = topo.System256()
	default:
		fmt.Fprintf(os.Stderr, "pmfault: unknown topology %q\n", *topoFlag)
		os.Exit(1)
	}
	opt := fault.Options{
		Seed:         *seed,
		Topology:     t,
		Messages:     *messages,
		PayloadBytes: *payload,
		Window:       sim.Time(*windowUS) * sim.Microsecond,
		Engine:       engine,
		Shards:       *shardsFlag,
	}
	var reg *metrics.Registry
	if *metricsFlag {
		reg = metrics.NewRegistry()
		opt.Metrics = reg
	}

	if *trafficFlag {
		mix, err := traffic.MixByName(*mixFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmfault: %v\n", err)
			os.Exit(1)
		}
		// --window-us, when explicitly set, is the offered-load horizon;
		// otherwise the traffic engine's default applies.
		var horizon sim.Time
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "window-us" {
				horizon = opt.Window
			}
		})
		res, err := fault.RunTraffic(mix, horizon, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmfault: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		printMetrics(reg)
		return
	}

	if c, ok := fault.CampaignByName(*campaignFlag); ok {
		res, err := fault.Run(c, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmfault: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		printMetrics(reg)
		return
	}
	if c, ok := fault.AppCampaignByName(*campaignFlag); ok {
		res, err := fault.RunApp(c, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmfault: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		printMetrics(reg)
		return
	}
	fmt.Fprintf(os.Stderr, "pmfault: unknown campaign %q (try --list)\n", *campaignFlag)
	os.Exit(1)
}
