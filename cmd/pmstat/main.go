// Command pmstat renders windowed time-series telemetry for a traffic
// run: the per-tenant SLO burn-rate table (violations per window, the
// burn rate against each tenant's error budget and the cumulative
// budget consumption) and the per-tenant latency decomposition table
// (arbitration wait, wire transfer, plane-down detection and
// retry/failover overhead per window). Where pmtraffic answers "what
// service did each tenant get over the whole run", pmstat answers
// *when* it got it — the view that localizes a mid-run fault to the
// windows it degraded.
//
// Usage:
//
//	pmstat --mix default --topo system256 --seed 1
//	pmstat --mix default --run heat                   (one tenant in isolation)
//	pmstat --campaign link-cut --faults 8 --topo system256
//	pmstat --window-us 50 --engine par --shards 4
//	pmstat --format csv
//	pmstat --list
//
// --campaign puts the named deterministic mid-run fault scenario under
// the run (the same schedule the matching pmfault --traffic ladder row
// draws). Output is a pure function of the flags and byte-identical
// across --engine seq|par and aligned shard counts; CI pins the
// System256 default-mix scenario under both engines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"powermanna/internal/fault"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/traffic"
)

func main() {
	var (
		mixFlag      = flag.String("mix", "default", "tenant mix (see --list)")
		runFlag      = flag.String("run", "", "run a single tenant of the mix in isolation")
		campaignFlag = flag.String("campaign", "", "mid-run fault scenario: link-cut (empty = healthy machine)")
		faultsFlag   = flag.Int("faults", 8, "fault count for --campaign")
		topoFlag     = flag.String("topo", "cluster8", "topology: cluster8 or system256")
		seed         = flag.Int64("seed", 1, "seed for arrival processes and the fault scenario")
		horizonUS    = flag.Int64("horizon-us", int64(traffic.DefaultHorizon/sim.Microsecond), "offered-load window in microseconds")
		windowUS     = flag.Int64("window-us", 0, "telemetry window width in microseconds (0 = horizon/32, rounded up to 1us)")
		engineFlag   = flag.String("engine", "seq", "event engine: seq (one shard) or par (sharded; byte-identical output)")
		shardsFlag   = flag.Int("shards", 0, "psim shard count under --engine par (must align with the topology's leaf groups)")
		formatFlag   = flag.String("format", "table", "output format: table or csv")
		listOnly     = flag.Bool("list", false, "list mix names and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, m := range traffic.Mixes() {
			fmt.Printf("%-10s  %s\n", m.Name, m.Description)
		}
		return
	}

	mix, err := traffic.MixByName(*mixFlag)
	if err != nil {
		fail(err)
	}
	if *runFlag != "" {
		if mix, err = mix.Solo(*runFlag); err != nil {
			fail(err)
		}
	}
	engine, err := psim.ParseKind(*engineFlag)
	if err != nil {
		fail(err)
	}
	var t *topo.Topology
	switch *topoFlag {
	case "cluster8":
		t = topo.Cluster8()
	case "system256":
		t = topo.System256()
	default:
		fail(fmt.Errorf("unknown topology %q", *topoFlag))
	}
	if *campaignFlag != "" && *campaignFlag != "link-cut" {
		fail(fmt.Errorf("unknown campaign %q (want link-cut)", *campaignFlag))
	}
	if *formatFlag != "table" && *formatFlag != "csv" {
		fail(fmt.Errorf("unknown format %q (want table or csv)", *formatFlag))
	}

	horizon := sim.Time(*horizonUS) * sim.Microsecond
	eng, err := traffic.New(mix, traffic.Options{
		Seed:      *seed,
		Topology:  t,
		Horizon:   horizon,
		Engine:    engine,
		Shards:    *shardsFlag,
		Telemetry: true,
		Window:    sim.Time(*windowUS) * sim.Microsecond,
	})
	if err != nil {
		fail(err)
	}
	var events []fault.Event
	if *campaignFlag != "" {
		events = fault.ApplyTrafficScenario(eng.Network(), t, *faultsFlag, horizon, *seed)
	}
	res, err := eng.Run()
	if err != nil {
		fail(err)
	}

	if *formatFlag == "csv" {
		fmt.Print(res.SeriesCSV())
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### pmstat %s — %s\n", res.Mix.Name, res.Mix.Description)
	fmt.Fprintf(&b, "topology %s, seed %d, horizon %dus, window %dus, %d tenants\n",
		t.Name(), *seed, int64(res.Horizon/sim.Microsecond), int64(res.Window/sim.Microsecond), len(res.Mix.Tenants))
	if *campaignFlag != "" {
		fmt.Fprintf(&b, "\nfault scenario %s at %d faults:\n", *campaignFlag, *faultsFlag)
		if len(events) == 0 {
			b.WriteString("  (none)\n")
		}
		for _, e := range events {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	b.WriteByte('\n')
	b.WriteString(res.BurnTable().Render())
	b.WriteByte('\n')
	b.WriteString(res.DecompTable().Render())
	fmt.Print(b.String())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pmstat: %v\n", err)
	os.Exit(1)
}
