package powermanna_test

import (
	"fmt"

	"powermanna"
)

// The 256-processor system of Figure 5b connects any two of its 128
// nodes through at most three crossbars.
func Example() {
	max, err := powermanna.System256().MaxCrossbars()
	if err != nil {
		panic(err)
	}
	fmt.Println(max)
	// Output: 3
}

// The paper's communication headline: 8 bytes cross the cluster in
// 2.75 µs, against 6.4 µs for BIP and 9.2 µs for FM on Myrinet.
func Example_latency() {
	pm := powermanna.NewPowerMANNAComm()
	fmt.Println(pm.OneWayLatency(8))
	fmt.Println(powermanna.BIP().OneWayLatency(8))
	fmt.Println(powermanna.FM().OneWayLatency(8))
	// Output:
	// 2.79us
	// 6.404us
	// 9.194us
}

// MatMult on both MPC620 processors of a PowerMANNA node: the switched
// fabric gives essentially perfect dual-processor scaling (Figure 8).
func Example_matmult() {
	nd := powermanna.NewNode(powermanna.PowerMANNA())
	one := powermanna.RunMatMult(nd, 65, powermanna.Transposed, 1)
	two := powermanna.RunMatMult(nd, 65, powermanna.Transposed, 2)
	fmt.Printf("speedup %.1f\n", one.Time.Seconds()/two.Time.Seconds())
	// Output: speedup 1.9
}

// An EARTH fiber tree computes Fibonacci across the eight-node cluster.
func Example_earth() {
	s := powermanna.NewEarth(powermanna.Cluster8(), powermanna.DefaultEarthParams())
	v, _, _ := powermanna.RunEarthFib(s, 12)
	fmt.Println(v)
	// Output: 144
}
