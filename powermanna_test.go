package powermanna_test

import (
	"math"
	"strings"
	"testing"

	"powermanna"
)

func TestFacadeMachines(t *testing.T) {
	if len(powermanna.AllMachines()) != 4 {
		t.Error("AllMachines should return 4 configs")
	}
	if !strings.Contains(powermanna.Table1(), "PowerMANNA") {
		t.Error("Table1 missing PowerMANNA")
	}
	nd := powermanna.NewNode(powermanna.PowerMANNA())
	if len(nd.Procs()) != 2 {
		t.Error("PowerMANNA node must have two processors")
	}
}

func TestFacadeMatMult(t *testing.T) {
	nd := powermanna.NewNode(powermanna.PowerMANNA())
	r := powermanna.RunMatMult(nd, 17, powermanna.Transposed, 2)
	if r.MFLOPS() <= 0 {
		t.Error("no MFLOPS")
	}
	if r.CPUs != 2 || r.N != 17 {
		t.Errorf("result metadata wrong: %+v", r)
	}
}

func TestFacadeHINT(t *testing.T) {
	nd := powermanna.NewNode(powermanna.SunUltra())
	r := powermanna.RunHINT(nd, powermanna.HintInt, 2000)
	if r.PeakQUIPS <= 0 {
		t.Error("no QUIPS")
	}
	truth := 2*math.Log(2) - 1
	if r.Lower > truth || r.Upper < truth {
		t.Errorf("bounds [%g, %g] exclude the integral", r.Lower, r.Upper)
	}
}

func TestFacadeComm(t *testing.T) {
	pm := powermanna.NewPowerMANNAComm()
	l := pm.OneWayLatency(8)
	if l.Micros() < 2.5 || l.Micros() > 3.0 {
		t.Errorf("latency(8B) = %v", l)
	}
	if powermanna.BIP().Name() != "BIP" || powermanna.FM().Name() != "FM" {
		t.Error("baseline names wrong")
	}
	if len(powermanna.CommSizes(4, 64)) != 5 {
		t.Error("CommSizes wrong")
	}
}

func TestFacadeTopology(t *testing.T) {
	net := powermanna.NewNetwork(powermanna.System256())
	path, err := net.Topology().Route(0, 100, powermanna.NetworkB)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Hops) == 0 || len(path.Hops) > 3 {
		t.Errorf("hops = %d", len(path.Hops))
	}
	tr, err := net.Send(0, path, 64)
	if err != nil || tr.LastByte <= 0 {
		t.Errorf("transit failed: %v %v", tr, err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := powermanna.ExperimentIDs()
	if len(ids) != 19 {
		t.Errorf("experiment count = %d, want 19", len(ids))
	}
	r, err := powermanna.RunExperiment("table1", powermanna.ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "MPC620") {
		t.Error("table1 render missing MPC620")
	}
	if _, err := powermanna.RunExperiment("bogus", powermanna.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"pm", "powermanna", "sun", "pc180", "pc266"} {
		cfg, ok := powermanna.MachineByName(name)
		if !ok || cfg.CPUs != 2 {
			t.Errorf("MachineByName(%q) = %+v, %v", name, cfg.Name, ok)
		}
	}
	if _, ok := powermanna.MachineByName("cray"); ok {
		t.Error("unknown machine resolved")
	}
}

func TestFacadeDispatcherAndNIC(t *testing.T) {
	d := powermanna.NewDispatcher(powermanna.DefaultDispatcherConfig(), nil)
	d.Submit(0, 0, 0x40)
	if _, ok := d.RunUntilIdle(1000); !ok {
		t.Error("dispatcher did not drain")
	}
	m := powermanna.MyrinetPPro()
	if m.OneWayLatency(8).Micros() < 4 {
		t.Error("NIC path implausibly fast")
	}
}

func TestFacadeHeatAndEarth(t *testing.T) {
	w := powermanna.NewWorld(powermanna.Cluster8())
	res, err := powermanna.RunHeat(w, powermanna.HeatDefaultConfig(256, 10))
	if err != nil || res.Ranks != 8 {
		t.Errorf("heat: %v %v", res.Ranks, err)
	}
	es := powermanna.NewEarth(powermanna.Cluster8(), powermanna.DefaultEarthParams())
	v, _, err := powermanna.RunEarthFib(es, 10)
	if err != nil {
		t.Fatalf("fib: %v", err)
	}
	if v != 55 {
		t.Errorf("fib(10) = %d", v)
	}
}
