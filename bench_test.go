// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation section, plus the ablations. Each benchmark regenerates its
// table/figure through the experiment runners (quick sweep sizes) and
// reports the headline quantity of that figure as a custom metric, so
// `go test -bench=. -benchmem` doubles as a paper-versus-measured check.
// Full-size sweeps: `go run ./cmd/pmbench -full`.
package powermanna_test

import (
	"fmt"
	"testing"

	"powermanna"
	"powermanna/internal/comm"
	"powermanna/internal/experiments"
	"powermanna/internal/hint"
	"powermanna/internal/machine"
	"powermanna/internal/matmult"
	"powermanna/internal/node"
	"powermanna/internal/topo"
)

var quick = experiments.Options{Quick: true}

func run(b *testing.B, fn experiments.Runner) experiments.Result {
	b.Helper()
	var r experiments.Result
	for i := 0; i < b.N; i++ {
		r = fn(quick)
	}
	return r
}

func seriesMax(r experiments.Result, name string) float64 {
	if r.Figure == nil {
		return 0
	}
	for _, s := range r.Figure.Series {
		if s.Name == name {
			return s.Max()
		}
	}
	return 0
}

// BenchmarkTable1Configs regenerates Table 1.
func BenchmarkTable1Configs(b *testing.B) {
	r := run(b, experiments.Table1)
	if r.Table == nil || len(r.Table.Rows) < 8 {
		b.Fatal("table1 incomplete")
	}
}

// BenchmarkFig5Topology validates the Figure 5 structure claims.
func BenchmarkFig5Topology(b *testing.B) {
	r := run(b, experiments.Fig5Topology)
	if r.Table == nil {
		b.Fatal("no table")
	}
	s256 := topo.System256()
	max, err := s256.MaxCrossbars()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(max), "max-xbars")
}

// BenchmarkFig6HintDouble regenerates Figure 6a and reports the
// PowerMANNA peak QUIPS.
func BenchmarkFig6HintDouble(b *testing.B) {
	r := run(b, experiments.Fig6a)
	b.ReportMetric(seriesMax(r, "PowerMANNA")/1e6, "pm-peak-MQUIPS")
}

// BenchmarkFig6HintInt regenerates Figure 6b.
func BenchmarkFig6HintInt(b *testing.B) {
	r := run(b, experiments.Fig6b)
	b.ReportMetric(seriesMax(r, "PowerMANNA")/1e6, "pm-peak-MQUIPS")
	b.ReportMetric(seriesMax(r, "SUN-Ultra1")/1e6, "sun-peak-MQUIPS")
}

// BenchmarkFig7MatMultNaive regenerates Figure 7a.
func BenchmarkFig7MatMultNaive(b *testing.B) {
	r := run(b, experiments.Fig7a)
	b.ReportMetric(seriesMax(r, "PowerMANNA"), "pm-peak-MFLOPS")
	b.ReportMetric(seriesMax(r, "PC-PII-180"), "pc-peak-MFLOPS")
}

// BenchmarkFig7MatMultTransposed regenerates Figure 7b.
func BenchmarkFig7MatMultTransposed(b *testing.B) {
	r := run(b, experiments.Fig7b)
	b.ReportMetric(seriesMax(r, "PowerMANNA"), "pm-peak-MFLOPS")
}

// BenchmarkFig8SpeedupNaive regenerates Figure 8a and reports the
// PowerMANNA dual-processor speedup (paper: exactly 2).
func BenchmarkFig8SpeedupNaive(b *testing.B) {
	r := run(b, experiments.Fig8a)
	b.ReportMetric(seriesMax(r, "PowerMANNA"), "pm-speedup")
	b.ReportMetric(seriesMax(r, "PC-PII-180"), "pc-speedup")
}

// BenchmarkFig8SpeedupTransposed regenerates Figure 8b.
func BenchmarkFig8SpeedupTransposed(b *testing.B) {
	r := run(b, experiments.Fig8b)
	b.ReportMetric(seriesMax(r, "PowerMANNA"), "pm-speedup")
}

// BenchmarkFig9Latency regenerates Figure 9 and reports the 8-byte
// one-way latencies (paper: 2.75 / 6.4 / 9.2 µs).
func BenchmarkFig9Latency(b *testing.B) {
	run(b, experiments.Fig9)
	b.ReportMetric(comm.NewPowerMANNA().OneWayLatency(8).Micros(), "pm-8B-us")
	b.ReportMetric(comm.BIP().OneWayLatency(8).Micros(), "bip-8B-us")
	b.ReportMetric(comm.FM().OneWayLatency(8).Micros(), "fm-8B-us")
}

// BenchmarkFig10Gap regenerates Figure 10.
func BenchmarkFig10Gap(b *testing.B) {
	run(b, experiments.Fig10)
	b.ReportMetric(comm.NewPowerMANNA().Gap(8).Micros(), "pm-gap-8B-us")
}

// BenchmarkFig11UniBandwidth regenerates Figure 11 (paper: PowerMANNA
// saturates at 60 MB/s; BIP ~126 MB/s).
func BenchmarkFig11UniBandwidth(b *testing.B) {
	run(b, experiments.Fig11)
	b.ReportMetric(comm.NewPowerMANNA().UniBandwidth(256<<10)/1e6, "pm-MBps")
	b.ReportMetric(comm.BIP().UniBandwidth(256<<10)/1e6, "bip-MBps")
}

// BenchmarkFig12BiBandwidth regenerates Figure 12 (paper: below the
// expected 2× because of the small FIFOs).
func BenchmarkFig12BiBandwidth(b *testing.B) {
	run(b, experiments.Fig12)
	pm := comm.NewPowerMANNA()
	b.ReportMetric(pm.BiBandwidth(256<<10)/1e6, "pm-bi-MBps")
	b.ReportMetric(2*pm.UniBandwidth(256<<10)/1e6, "pm-2xuni-MBps")
}

// BenchmarkAblationNodeScalability regenerates the Section 2 claim.
func BenchmarkAblationNodeScalability(b *testing.B) {
	r := run(b, experiments.NodeScalability)
	if r.Figure != nil && len(r.Figure.Series) > 0 {
		pts := r.Figure.Series[0].Points
		b.ReportMetric(pts[3].Y, "speedup-4cpu")
		b.ReportMetric(pts[5].Y, "speedup-6cpu")
	}
}

// BenchmarkAblationFIFOSize regenerates the FIFO-depth sweep.
func BenchmarkAblationFIFOSize(b *testing.B) {
	r := run(b, experiments.FIFOSweep)
	if r.Figure != nil {
		pts := r.Figure.Series[0].Points
		b.ReportMetric(pts[1].Y, "bi-4line-MBps")
		b.ReportMetric(pts[len(pts)-1].Y, "bi-64line-MBps")
	}
}

// BenchmarkAblationDualLink regenerates the duplicated-network sweep.
func BenchmarkAblationDualLink(b *testing.B) {
	run(b, experiments.DualLink)
	p := comm.DefaultPMParams()
	p.Links = 2
	b.ReportMetric(comm.NewPowerMANNAWith(p).UniBandwidth(256<<10)/1e6, "dual-MBps")
}

// BenchmarkAblationCrossbar measures raw crossbar circuit setup
// (Section 3.1: 0.2 µs collision-free through-routing).
func BenchmarkAblationCrossbar(b *testing.B) {
	net := powermanna.NewNetwork(powermanna.Cluster8())
	path, err := net.Topology().Route(0, 1, powermanna.NetworkA)
	if err != nil {
		b.Fatal(err)
	}
	var at powermanna.Time
	for i := 0; i < b.N; i++ {
		tr, err := net.Send(at, path, 8)
		if err != nil {
			b.Fatal(err)
		}
		at = tr.LastByte
	}
	b.ReportMetric(0.2, "route-setup-us")
}

// BenchmarkKernelMatMult measures raw simulator throughput: simulated
// multiply-accumulate iterations per wall second.
func BenchmarkKernelMatMult(b *testing.B) {
	nd := node.New(machine.PowerMANNA())
	for i := 0; i < b.N; i++ {
		matmult.Run(nd, 101, matmult.Transposed, 1)
	}
	b.ReportMetric(float64(101*101*101*b.N)/b.Elapsed().Seconds()/1e6, "Msim-iters/s")
}

// BenchmarkKernelHint measures HINT simulation throughput.
func BenchmarkKernelHint(b *testing.B) {
	nd := node.New(machine.PowerMANNA())
	for i := 0; i < b.N; i++ {
		hint.Run(nd, hint.Double, 20000)
	}
	b.ReportMetric(float64(20000*b.N)/b.Elapsed().Seconds()/1e3, "ksplits/s")
}

// BenchmarkAblationDispatcher regenerates the protocol-engine sweep.
func BenchmarkAblationDispatcher(b *testing.B) {
	r := run(b, experiments.DispatcherAblation)
	if r.Figure != nil {
		ooo := r.Figure.Series[0].Points
		b.ReportMetric(ooo[0].Y, "cyc/txn-depth1")
		b.ReportMetric(ooo[2].Y, "cyc/txn-depth4")
	}
}

// BenchmarkAblationSmartNI regenerates the interface latency budget.
func BenchmarkAblationSmartNI(b *testing.B) {
	run(b, experiments.SmartNI)
	pm := comm.NewPowerMANNA().OneWayLatency(8).Micros()
	b.ReportMetric(pm, "pm-8B-us")
}

// BenchmarkAblationBlocking regenerates the mesh-vs-hierarchy traffic
// comparison (the Section 3 motivation).
func BenchmarkAblationBlocking(b *testing.B) {
	r := run(b, experiments.BlockingBehavior)
	for _, n := range r.Notes {
		var ratio float64
		if _, err := fmt.Sscanf(n, "mesh mean latency %fx", &ratio); err == nil {
			b.ReportMetric(ratio, "mesh/hier-latency")
		}
	}
}
