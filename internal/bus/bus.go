// Package bus models the node-level interconnect between processors,
// memory and the network interface.
//
// Two fabrics are provided:
//
//   - SharedBus: the classic SMP processor/memory bus of the comparison
//     machines (SUN Ultra-I, Pentium II). One set of wires carries address
//     and data phases for all devices; every transaction occupies it.
//
//   - SwitchedFabric: the PowerMANNA node's ADSP multi-master bus switch
//     driven by the central dispatcher (Section 2, Figures 2–3 of the
//     paper). Instead of a shared bus, devices get point-to-point
//     connections through a three-way 36-bit-sliced switch, so concurrent
//     data transfers proceed independently; only the address/snoop phase
//     is serialized, because the MPC620 snoop protocol requires the
//     address phases of the processors to be sequentialized.
//
// Both fabrics model split transactions (the MPC620 bus, SUN's UPA and the
// Pentium II's P6 bus all decouple the address phase from the data phase),
// so the modelled differences are exactly the architectural ones the paper
// argues about: data-path sharing, bus clock, datapath width, and the
// serialized snoop phase.
package bus

import (
	"fmt"

	"powermanna/internal/mem"
	"powermanna/internal/sim"
)

// Source says where a line fill comes from.
type Source uint8

const (
	// FromMemory: the line is read from node DRAM.
	FromMemory Source = iota
	// FromPeer: a peer cache held the line Modified and supplies it
	// directly (cache-to-cache transfer).
	FromPeer
)

// String names the transfer source for traces and tables.
func (s Source) String() string {
	if s == FromMemory {
		return "memory"
	}
	return "peer"
}

// Config describes a fabric.
type Config struct {
	// Name labels the fabric in stats output.
	Name string
	// Clock is the bus/board clock domain (60 MHz for PowerMANNA and the
	// 180 MHz PC configuration, 66 for the 266 MHz PC, 84 for the SUN).
	Clock sim.Clock
	// AddressCycles is the occupancy of one address/snoop phase in bus
	// cycles. Serialized across all devices on both fabrics.
	AddressCycles int
	// DataBeatBytes is the datapath width moved per bus cycle (8 for the
	// 64-bit P6 bus, 16 for the 128-bit UPA and the PowerMANNA node).
	DataBeatBytes int
	// LineBytes is the coherence-line length moved per data phase.
	LineBytes int
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Clock.Period <= 0:
		return fmt.Errorf("bus %q: zero clock", c.Name)
	case c.AddressCycles <= 0:
		return fmt.Errorf("bus %q: AddressCycles = %d", c.Name, c.AddressCycles)
	case c.DataBeatBytes <= 0:
		return fmt.Errorf("bus %q: DataBeatBytes = %d", c.Name, c.DataBeatBytes)
	case c.LineBytes <= 0:
		return fmt.Errorf("bus %q: LineBytes = %d", c.Name, c.LineBytes)
	}
	return nil
}

// addressTime is the duration of one address/snoop phase.
func (c Config) addressTime() sim.Time {
	return c.Clock.Cycles(int64(c.AddressCycles))
}

// lineTime is the duration of moving one full line over the datapath.
func (c Config) lineTime() sim.Time {
	beats := (c.LineBytes + c.DataBeatBytes - 1) / c.DataBeatBytes
	return c.Clock.Cycles(int64(beats))
}

// beatTime is the duration of a single-beat (PIO) transfer.
func (c Config) beatTime(bytes int) sim.Time {
	beats := (bytes + c.DataBeatBytes - 1) / c.DataBeatBytes
	if beats < 1 {
		beats = 1
	}
	return c.Clock.Cycles(int64(beats))
}

// Stats counts fabric activity.
type Stats struct {
	AddressPhases int64
	AddressWait   sim.Time // total queuing on the serialized address phase
	DataPhases    int64
	DataWait      sim.Time // total queuing on shared data resources
	LinesMoved    int64
	PIOs          int64
}

// Fabric is the timing interface the node model drives. A coherent miss is
// served in two steps so the node can apply snoop state changes at the
// grant instant:
//
//	grant := f.GrantAddress(at)        // serialized address/snoop phase
//	...snoop peer caches at grant...
//	done := f.FillLine(grant, la, src) // data phase
type Fabric interface {
	// GrantAddress wins the serialized address/snoop phase; the returned
	// grant time is when the phase completed.
	GrantAddress(at sim.Time) sim.Time
	// FillLine moves one line to the requester, from memory or a peer
	// cache, starting no earlier than at. Returns data-arrival time.
	FillLine(at sim.Time, lineAddr uint64, src Source) sim.Time
	// WritebackLine posts a dirty line to memory (including its own
	// address phase). Returns when the line has been accepted.
	WritebackLine(at sim.Time, lineAddr uint64) sim.Time
	// Upgrade performs an address-only invalidating transaction (write hit
	// on a Shared line). Returns when ownership is granted.
	Upgrade(at sim.Time) sim.Time
	// PIO performs an uncached transfer of n bytes between a CPU and a
	// memory-mapped device (the network interface). Returns completion.
	PIO(at sim.Time, bytes int) sim.Time
	// Config returns the fabric configuration.
	Config() Config
	// Stats returns accumulated counters.
	Stats() Stats
	// Reset clears timelines and counters.
	Reset()
}

// SharedBus is the baseline SMP organization of the comparison machines:
// one address bus and one data bus shared by every device. The two wire
// groups are physically separate on both the P6 bus and SUN's UPA, so
// address and data phases of different transactions overlap, but all
// devices still arbitrate for each group.
type SharedBus struct {
	cfg   Config
	mem   *mem.Memory
	addr  sim.Resource // shared address/snoop wires
	data  sim.Resource // shared data wires
	stats Stats
}

// NewShared builds a shared-bus fabric over m. Panics on invalid config.
func NewShared(cfg Config, m *mem.Memory) *SharedBus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &SharedBus{cfg: cfg, mem: m}
}

// GrantAddress implements Fabric.
func (b *SharedBus) GrantAddress(at sim.Time) sim.Time {
	b.stats.AddressPhases++
	start := b.addr.Acquire(at, b.cfg.addressTime())
	b.stats.AddressWait += start - at
	return start + b.cfg.addressTime()
}

// FillLine implements Fabric. With split transactions the bus is free
// while memory works; the data phase re-arbitrates for the wires.
func (b *SharedBus) FillLine(at sim.Time, lineAddr uint64, src Source) sim.Time {
	ready := at
	if src == FromMemory {
		ready = b.mem.ReadLine(at, lineAddr*uint64(b.cfg.LineBytes))
	}
	dur := b.cfg.lineTime()
	start := b.data.Acquire(ready, dur)
	b.stats.DataPhases++
	b.stats.DataWait += start - ready
	b.stats.LinesMoved++
	return start + dur
}

// WritebackLine implements Fabric.
func (b *SharedBus) WritebackLine(at sim.Time, lineAddr uint64) sim.Time {
	grant := b.GrantAddress(at)
	dur := b.cfg.lineTime()
	start := b.data.Acquire(grant, dur)
	b.stats.DataPhases++
	b.stats.DataWait += start - grant
	b.stats.LinesMoved++
	done := start + dur
	b.mem.WriteLine(done, lineAddr*uint64(b.cfg.LineBytes))
	return done
}

// Upgrade implements Fabric.
func (b *SharedBus) Upgrade(at sim.Time) sim.Time { return b.GrantAddress(at) }

// PIO implements Fabric.
func (b *SharedBus) PIO(at sim.Time, bytes int) sim.Time {
	b.stats.PIOs++
	grant := b.GrantAddress(at)
	dur := b.cfg.beatTime(bytes)
	start := b.data.Acquire(grant, dur)
	b.stats.DataWait += start - grant
	return start + dur
}

// Config implements Fabric.
func (b *SharedBus) Config() Config { return b.cfg }

// Stats implements Fabric.
func (b *SharedBus) Stats() Stats { return b.stats }

// Reset implements Fabric.
func (b *SharedBus) Reset() {
	b.addr.Reset()
	b.data.Reset()
	b.stats = Stats{}
}

// Utilization reports the shared data wires' busy fraction over a window.
func (b *SharedBus) Utilization(window sim.Time) float64 { return b.data.Utilization(window) }

// SwitchedFabric is the PowerMANNA node interconnect: the ADSP bus switch
// gives every device a private point-to-point data path, and the central
// dispatcher serializes only the address/snoop phases (the MPC620 snoop
// protocol's requirement). Data transfers from memory still share the
// memory's own datapath — that constraint lives in the mem model — but
// cache-to-cache transfers and PIO to the network interface proceed
// without touching other devices' paths.
type SwitchedFabric struct {
	cfg   Config
	mem   *mem.Memory
	snoop sim.Resource // dispatcher-serialized address/snoop phases
	stats Stats
}

// NewSwitched builds the switched fabric over m. Panics on invalid config.
func NewSwitched(cfg Config, m *mem.Memory) *SwitchedFabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &SwitchedFabric{cfg: cfg, mem: m}
}

// GrantAddress implements Fabric.
func (f *SwitchedFabric) GrantAddress(at sim.Time) sim.Time {
	f.stats.AddressPhases++
	start := f.snoop.Acquire(at, f.cfg.addressTime())
	f.stats.AddressWait += start - at
	return start + f.cfg.addressTime()
}

// FillLine implements Fabric. Memory fills ride the memory datapath (the
// only shared data resource); cache-to-cache fills cross the switch on a
// point-to-point path between the two processors' ports, contending with
// nothing else — the ADSP switch replaces the shared data bus with
// "multiple point-to-point connections" (Section 1).
func (f *SwitchedFabric) FillLine(at sim.Time, lineAddr uint64, src Source) sim.Time {
	f.stats.DataPhases++
	f.stats.LinesMoved++
	if src == FromMemory {
		return f.mem.ReadLine(at, lineAddr*uint64(f.cfg.LineBytes))
	}
	return at + f.cfg.lineTime()
}

// WritebackLine implements Fabric. The victim's address phase is snooped
// like any other transaction; the data rides straight into memory.
func (f *SwitchedFabric) WritebackLine(at sim.Time, lineAddr uint64) sim.Time {
	grant := f.GrantAddress(at)
	f.stats.DataPhases++
	f.stats.LinesMoved++
	return f.mem.WriteLine(grant, lineAddr*uint64(f.cfg.LineBytes))
}

// Upgrade implements Fabric.
func (f *SwitchedFabric) Upgrade(at sim.Time) sim.Time { return f.GrantAddress(at) }

// PIO implements Fabric. The CPU↔NI path is point-to-point through the
// switch; it costs switch time but contends with nothing else.
func (f *SwitchedFabric) PIO(at sim.Time, bytes int) sim.Time {
	f.stats.PIOs++
	return at + f.cfg.addressTime() + f.cfg.beatTime(bytes)
}

// Config implements Fabric.
func (f *SwitchedFabric) Config() Config { return f.cfg }

// Stats implements Fabric.
func (f *SwitchedFabric) Stats() Stats { return f.stats }

// Reset implements Fabric.
func (f *SwitchedFabric) Reset() {
	f.snoop.Reset()
	f.stats = Stats{}
}

// SnoopUtilization reports the dispatcher address-phase busy fraction —
// the quantity the paper identifies as the node's scaling limit.
func (f *SwitchedFabric) SnoopUtilization(window sim.Time) float64 {
	return f.snoop.Utilization(window)
}

var (
	_ Fabric = (*SharedBus)(nil)
	_ Fabric = (*SwitchedFabric)(nil)
)
