package bus

import (
	"testing"

	"powermanna/internal/mem"
	"powermanna/internal/sim"
)

func testMem() *mem.Memory {
	return mem.New(mem.Config{
		Banks:           4,
		InterleaveBytes: 64,
		AccessLatency:   100 * sim.Nanosecond,
		BankBusy:        160 * sim.Nanosecond,
		LineTransfer:    100 * sim.Nanosecond,
	})
}

func testCfg() Config {
	return Config{
		Name:          "test",
		Clock:         sim.ClockMHz(60),
		AddressCycles: 2,
		DataBeatBytes: 16,
		LineBytes:     64,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Clock: sim.ClockMHz(60)},
		{Clock: sim.ClockMHz(60), AddressCycles: 1},
		{Clock: sim.ClockMHz(60), AddressCycles: 1, DataBeatBytes: 8},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigDurations(t *testing.T) {
	c := testCfg()
	period := c.Clock.Period
	if got := c.addressTime(); got != 2*period {
		t.Errorf("addressTime = %v, want 2 cycles", got)
	}
	// 64B at 16B/beat = 4 beats.
	if got := c.lineTime(); got != 4*period {
		t.Errorf("lineTime = %v, want 4 cycles", got)
	}
	if got := c.beatTime(8); got != period {
		t.Errorf("beatTime(8) = %v, want 1 cycle", got)
	}
	if got := c.beatTime(0); got != period {
		t.Errorf("beatTime(0) = %v, want 1 cycle minimum", got)
	}
}

func TestSharedBusSerializesEverything(t *testing.T) {
	m := testMem()
	b := NewShared(testCfg(), m)
	// Two concurrent read misses from different CPUs: address phases
	// serialize on the wires.
	g1 := b.GrantAddress(0)
	g2 := b.GrantAddress(0)
	if g2 <= g1 {
		t.Errorf("second grant %v not after first %v", g2, g1)
	}
	addr := testCfg().addressTime()
	if g1 != addr || g2 != 2*addr {
		t.Errorf("grants = %v, %v; want %v, %v", g1, g2, addr, 2*addr)
	}
	s := b.Stats()
	if s.AddressPhases != 2 || s.AddressWait != addr {
		t.Errorf("stats = %+v", s)
	}
}

func TestSharedBusFillFromMemory(t *testing.T) {
	b := NewShared(testCfg(), testMem())
	grant := b.GrantAddress(0)
	done := b.FillLine(grant, 1, FromMemory)
	// Memory: 100ns latency + 100ns transfer; bus data phase: 4 cycles.
	min := grant + 200*sim.Nanosecond + testCfg().lineTime()
	if done != min {
		t.Errorf("fill done = %v, want %v", done, min)
	}
	if b.Stats().LinesMoved != 1 {
		t.Error("LinesMoved not counted")
	}
}

func TestSharedBusFillFromPeerSkipsMemory(t *testing.T) {
	m := testMem()
	b := NewShared(testCfg(), m)
	grant := b.GrantAddress(0)
	done := b.FillLine(grant, 1, FromPeer)
	if done != grant+testCfg().lineTime() {
		t.Errorf("peer fill done = %v, want %v", done, grant+testCfg().lineTime())
	}
	if m.Stats().Reads != 0 {
		t.Error("peer fill touched memory")
	}
}

func TestSharedBusContention(t *testing.T) {
	// Two CPUs streaming memory fills: total time must exceed one CPU's
	// time because data phases share the wires.
	run := func(cpus int) sim.Time {
		b := NewShared(testCfg(), testMem())
		var last sim.Time
		t := make([]sim.Time, cpus)
		for i := 0; i < 32; i++ {
			for c := 0; c < cpus; c++ {
				grant := b.GrantAddress(t[c])
				t[c] = b.FillLine(grant, uint64(i*cpus+c), FromMemory)
				if t[c] > last {
					last = t[c]
				}
			}
		}
		return last
	}
	one, two := run(1), run(2)
	if two <= one {
		t.Errorf("2-CPU stream (%v) not slower than 1-CPU (%v)", two, one)
	}
}

func TestSwitchedFabricConcurrentData(t *testing.T) {
	cfg := testCfg()
	// Peer-to-peer fills on the switched fabric contend only on the c2c
	// path; memory fills ride memory. Two CPUs doing PIO simultaneously
	// don't contend at all.
	f := NewSwitched(cfg, testMem())
	d1 := f.PIO(0, 8)
	d2 := f.PIO(0, 8)
	if d1 != d2 {
		t.Errorf("concurrent PIO times differ: %v vs %v (switched paths are private)", d1, d2)
	}
	b := NewShared(cfg, testMem())
	s1 := b.PIO(0, 8)
	s2 := b.PIO(0, 8)
	if s2 <= s1 {
		t.Errorf("shared-bus PIO did not serialize: %v, %v", s1, s2)
	}
}

func TestSwitchedFabricSerializesOnlyAddressPhases(t *testing.T) {
	f := NewSwitched(testCfg(), testMem())
	g1 := f.GrantAddress(0)
	g2 := f.GrantAddress(0)
	if g2 <= g1 {
		t.Error("address phases must serialize on the dispatcher")
	}
	// Data from memory for two different banks can overlap except on the
	// memory datapath; the fabric adds no extra serialization.
	done1 := f.FillLine(g1, 0, FromMemory)
	done2 := f.FillLine(g2, 1, FromMemory)
	// Bank-parallel: second fill should complete exactly one datapath slot
	// after the first, not a full memory latency later.
	gap := done2 - done1
	if gap > 150*sim.Nanosecond {
		t.Errorf("switched memory fills gap = %v, want <=~100ns (datapath only)", gap)
	}
}

func TestSwitchedWritebackAndUpgrade(t *testing.T) {
	f := NewSwitched(testCfg(), testMem())
	done := f.WritebackLine(0, 5)
	if done <= 0 {
		t.Error("writeback returned non-positive time")
	}
	up := f.Upgrade(done)
	if up <= done {
		t.Error("upgrade did not consume an address phase")
	}
	s := f.Stats()
	if s.AddressPhases != 2 { // writeback + upgrade
		t.Errorf("AddressPhases = %d, want 2", s.AddressPhases)
	}
}

func TestSnoopUtilization(t *testing.T) {
	f := NewSwitched(testCfg(), testMem())
	for i := 0; i < 10; i++ {
		f.GrantAddress(0)
	}
	window := f.GrantAddress(0)
	u := f.SnoopUtilization(window)
	if u < 0.99 || u > 1.01 {
		t.Errorf("back-to-back snoop utilization = %g, want ~1", u)
	}
}

func TestResetClearsState(t *testing.T) {
	for _, f := range []Fabric{
		NewShared(testCfg(), testMem()),
		NewSwitched(testCfg(), testMem()),
	} {
		f.GrantAddress(0)
		f.PIO(0, 8)
		f.Reset()
		s := f.Stats()
		if s.AddressPhases != 0 || s.PIOs != 0 {
			t.Errorf("%s: stats not reset: %+v", f.Config().Name, s)
		}
		if g := f.GrantAddress(0); g != f.Config().addressTime() {
			t.Errorf("%s: timeline not reset, grant = %v", f.Config().Name, g)
		}
	}
}

// Address and data phases of different transactions overlap on the
// shared bus: the P6/UPA wire groups are physically separate.
func TestSharedBusAddressDataOverlap(t *testing.T) {
	b := NewShared(testCfg(), testMem())
	// CPU0 starts a fill whose data phase will occupy the data wires.
	g0 := b.GrantAddress(0)
	done0 := b.FillLine(g0, 0, FromPeer)
	// CPU1's address phase can proceed while CPU0's data moves.
	g1 := b.GrantAddress(g0)
	if g1 >= done0 {
		t.Errorf("address phase at %v waited for data phase ending %v", g1, done0)
	}
}

// PIO serializes on both wire groups in order: address grant then data.
func TestSharedBusPIOUsesBothGroups(t *testing.T) {
	b := NewShared(testCfg(), testMem())
	done := b.PIO(0, 8)
	want := testCfg().addressTime() + testCfg().Clock.Cycles(1)
	if done != want {
		t.Errorf("PIO done = %v, want %v", done, want)
	}
	if b.Stats().AddressPhases != 1 {
		t.Error("PIO did not take an address phase")
	}
}

func TestSourceString(t *testing.T) {
	if FromMemory.String() != "memory" || FromPeer.String() != "peer" {
		t.Error("Source.String wrong")
	}
}

func TestSharedBusWritebackAndUpgrade(t *testing.T) {
	m := testMem()
	b := NewShared(testCfg(), m)
	done := b.WritebackLine(0, 3)
	if done <= 0 {
		t.Error("writeback non-positive")
	}
	if m.Stats().Writes != 1 {
		t.Error("writeback did not reach memory")
	}
	up := b.Upgrade(done)
	if up <= done {
		t.Error("upgrade did not consume an address phase")
	}
	if s := b.Stats(); s.LinesMoved != 1 || s.AddressPhases != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSharedBusUtilization(t *testing.T) {
	b := NewShared(testCfg(), testMem())
	grant := b.GrantAddress(0)
	done := b.FillLine(grant, 0, FromPeer)
	u := b.Utilization(done)
	if u <= 0 || u > 1 {
		t.Errorf("Utilization = %g", u)
	}
}

func TestConstructorsPanicOnBadConfig(t *testing.T) {
	for name, fn := range map[string]func(){
		"shared":   func() { NewShared(Config{}, testMem()) },
		"switched": func() { NewSwitched(Config{}, testMem()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad config did not panic", name)
				}
			}()
			fn()
		}()
	}
}
