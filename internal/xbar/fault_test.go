package xbar

import (
	"testing"

	"powermanna/internal/sim"
)

func TestStickOutputBlocksWindow(t *testing.T) {
	x := New("A")
	x.StickOutput(3, 1*sim.Microsecond, 5*sim.Microsecond)
	if got := x.OutputFreeAt(3); got != 5*sim.Microsecond {
		t.Errorf("OutputFreeAt = %v, want 5us", got)
	}
	// A circuit requesting the stuck channel waits out the window.
	setup := x.Connect(2*sim.Microsecond, 3, 100*sim.Nanosecond)
	if setup != 5*sim.Microsecond+RouteSetup {
		t.Errorf("setup = %v, want window end + route setup", setup)
	}
	st := x.Stats()
	if st.Stuck != 1 || st.Blocked != 1 {
		t.Errorf("Stats = %+v, want Stuck 1 Blocked 1", st)
	}
	// Other outputs are unaffected.
	if x.OutputFreeAt(4) != 0 {
		t.Error("unrelated output disturbed")
	}
}

func TestStickOutputEmptyWindowIgnored(t *testing.T) {
	x := New("A")
	x.StickOutput(0, 5*sim.Microsecond, 5*sim.Microsecond)
	if x.Stats().Stuck != 0 || x.OutputFreeAt(0) != 0 {
		t.Error("empty window took effect")
	}
}

func TestResetClearsStuck(t *testing.T) {
	x := New("A")
	x.StickOutput(0, 0, 1*sim.Microsecond)
	x.Reset()
	if x.Stats().Stuck != 0 || x.OutputFreeAt(0) != 0 {
		t.Error("Reset incomplete")
	}
}
