package xbar

import (
	"testing"
	"testing/quick"

	"powermanna/internal/sim"
)

func TestRouteSetupTime(t *testing.T) {
	if RouteSetup != 200*sim.Nanosecond {
		t.Errorf("RouteSetup = %v, want 0.2us (Section 3.1)", RouteSetup)
	}
}

func TestEncodeDecodeRoute(t *testing.T) {
	for out := 0; out < Ports; out++ {
		b := EncodeRoute(out)
		got, err := DecodeRoute(b)
		if err != nil || got != out {
			t.Errorf("round trip %d -> %d (%v)", out, got, err)
		}
	}
	if _, err := DecodeRoute(16); err == nil {
		t.Error("route byte 16 accepted")
	}
}

func TestEncodeRoutePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EncodeRoute(16) did not panic")
		}
	}()
	EncodeRoute(Ports)
}

func TestCollisionFreeSetup(t *testing.T) {
	x := New("x0")
	setup := x.Connect(0, 3, sim.Microsecond)
	if setup != RouteSetup {
		t.Errorf("collision-free setup = %v, want %v", setup, RouteSetup)
	}
	if s := x.Stats(); s.Opened != 1 || s.Blocked != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestOutputContentionSerializes(t *testing.T) {
	x := New("x0")
	hold := 2 * sim.Microsecond
	s1 := x.Connect(0, 5, hold)
	s2 := x.Connect(0, 5, hold)
	// Second circuit waits for the first's hold plus its own setup.
	want := RouteSetup + hold + RouteSetup
	if s2 != want {
		t.Errorf("contended setup = %v, want %v", s2, want)
	}
	if s2 <= s1 {
		t.Error("contended circuit not delayed")
	}
	if x.Stats().Blocked != 1 {
		t.Errorf("Blocked = %d, want 1", x.Stats().Blocked)
	}
}

func TestDistinctOutputsIndependent(t *testing.T) {
	x := New("x0")
	s1 := x.Connect(0, 1, sim.Microsecond)
	s2 := x.Connect(0, 2, sim.Microsecond)
	if s1 != s2 {
		t.Errorf("independent outputs interfered: %v vs %v", s1, s2)
	}
}

func TestOutputBusyAccounting(t *testing.T) {
	x := New("x0")
	x.Connect(0, 7, sim.Microsecond)
	want := RouteSetup + sim.Microsecond
	if got := x.OutputBusy(7); got != want {
		t.Errorf("OutputBusy = %v, want %v", got, want)
	}
	x.Reset()
	if x.OutputBusy(7) != 0 || x.Stats().Opened != 0 {
		t.Error("Reset incomplete")
	}
}

func TestConnectPanicsOutOfRange(t *testing.T) {
	x := New("x0")
	defer func() {
		if recover() == nil {
			t.Error("Connect(-1) did not panic")
		}
	}()
	x.Connect(0, -1, 0)
}

// Property: setup is never before at+RouteSetup, and circuits on one
// output never overlap.
func TestCircuitNonOverlapProperty(t *testing.T) {
	f := func(holds []uint16) bool {
		x := New("p")
		var prevEnd sim.Time
		for _, h := range holds {
			hold := sim.Time(h) * sim.Nanosecond
			setup := x.Connect(0, 0, hold)
			start := setup - RouteSetup
			if start < prevEnd {
				return false
			}
			prevEnd = setup + hold
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOutputFreeAtAndHoldOutput(t *testing.T) {
	x := New("x0")
	if x.OutputFreeAt(3) != 0 {
		t.Error("fresh output not free at 0")
	}
	// Collision-free hold: requested == start, no block counted.
	x.HoldOutput(100, 100, 2*sim.Microsecond, 3)
	if x.OutputFreeAt(3) != 2*sim.Microsecond {
		t.Errorf("FreeAt = %v", x.OutputFreeAt(3))
	}
	if s := x.Stats(); s.Opened != 1 || s.Blocked != 0 {
		t.Errorf("stats = %+v", s)
	}
	// Waited hold: start after requested counts as blocked.
	x.HoldOutput(sim.Microsecond, 2*sim.Microsecond, 3*sim.Microsecond, 3)
	if s := x.Stats(); s.Blocked != 1 {
		t.Errorf("Blocked = %d, want 1", s.Blocked)
	}
}

func TestHoldOutputPanics(t *testing.T) {
	x := New("x0")
	cases := []func(){
		func() { x.HoldOutput(0, 10, 5, 0) }, // inverted window
		func() { x.HoldOutput(0, 0, 1, 16) }, // port out of range
		func() { x.OutputFreeAt(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
