// Package xbar models the PowerMANNA crossbar ASIC (Section 3.1 of the
// paper): a 16×16 crossbar integrating per-input FIFO buffers, command and
// address decoding, and per-output arbiters on a single chip. It
// implements wormhole routing with soft flow control:
//
//   - A logical connection is opened by a one-byte route command carrying
//     the output channel address; the command is consumed by the crossbar,
//     so a path across k crossbars needs k route bytes in the header.
//   - Collision-free through-routing takes 0.2 µs.
//   - The connection holds its output channel (a wormhole circuit) until a
//     close command releases it.
//
// Unlike the CM-5's 8×8 crossbar, whose inputs route only to outputs of a
// different tree level, every input here can reach every output — the
// property that gives PowerMANNA its topology flexibility (Section 3).
package xbar

import (
	"fmt"

	"powermanna/internal/metrics"
	"powermanna/internal/sim"
	"powermanna/internal/trace"
)

// MetricArbWait is the arbitration-wait histogram every crossbar of a
// network shares: how long route commands waited on a busy output
// channel before their circuit could form (zero-wait connects are not
// observed; the opened/blocked counters carry the ratio).
const MetricArbWait = "xbar.arb-wait"

// MetricArbWaitPlanePrefix prefixes the per-plane arbitration-wait
// histograms ("xbar.arb-wait.plane-A", "xbar.arb-wait.plane-B"): the
// same waits as MetricArbWait, split by the network plane the crossbar
// serves, so a fault campaign can see plane-B arbitration heat up while
// plane-A failovers land on it.
const MetricArbWaitPlanePrefix = "xbar.arb-wait.plane-"

// Ports is the crossbar radix.
const Ports = 16

// RouteSetup is the collision-free through-routing time (Section 3.1:
// "this through-routing takes only 0.2 microseconds").
const RouteSetup = 200 * sim.Nanosecond

// InputFIFOBytes is the per-input buffering integrated on the ASIC.
// Calibrated: enough for a burst of a few lines under soft flow control.
const InputFIFOBytes = 256

// Crossbar is one 16×16 crossbar instance.
type Crossbar struct {
	name    string
	outputs [Ports]sim.Resource // circuit occupancy per output channel
	opened  int64
	blocked int64 // connections that waited on a busy output
	stuck   int64 // injected stuck-busy fault windows (internal/fault)
	// rec, when non-nil, records per-output circuit and arbitration spans
	// under XbarPortTrack(ordinal, out).
	rec     *trace.Recorder
	ordinal int
	// arbWait, when non-nil, tallies arbitration waits into the shared
	// MetricArbWait histogram (nil = metrics off, observation no-ops).
	arbWait *metrics.Histogram
	// planeWait additionally tallies the same waits into the per-plane
	// histogram when the owning network attached a plane label.
	planeWait *metrics.Histogram
}

// New builds a crossbar.
func New(name string) *Crossbar { return &Crossbar{name: name} }

// Name returns the crossbar's label.
func (x *Crossbar) Name() string { return x.name }

// Trace attaches a recorder under the given crossbar ordinal (its index
// in the owning network); a nil recorder detaches. Circuit holds,
// arbitration waits and injected stuck windows are then recorded.
func (x *Crossbar) Trace(rec *trace.Recorder, ordinal int) {
	x.rec, x.ordinal = rec, ordinal
}

// Metrics attaches a metrics registry: arbitration waits land in the
// shared MetricArbWait time histogram and, when plane is non-empty
// ("A"/"B", from the owning network's topology), also in the per-plane
// MetricArbWaitPlanePrefix histogram. A nil registry detaches.
func (x *Crossbar) Metrics(m *metrics.Registry, plane string) {
	if m == nil {
		x.arbWait, x.planeWait = nil, nil
		return
	}
	buckets := metrics.TimeBuckets(200*sim.Nanosecond, 2, 10)
	x.arbWait = m.TimeHistogram(MetricArbWait, buckets)
	x.planeWait = nil
	if plane != "" {
		x.planeWait = m.TimeHistogram(MetricArbWaitPlanePrefix+plane, buckets)
	}
}

// DecodeRoute interprets a route command byte as an output channel.
// The crossbar consumes this byte from the header.
func DecodeRoute(b byte) (int, error) {
	if int(b) >= Ports {
		return 0, fmt.Errorf("xbar: route byte %d exceeds %d ports", b, Ports)
	}
	return int(b), nil
}

// EncodeRoute builds the route command byte for an output channel.
func EncodeRoute(out int) byte {
	if out < 0 || out >= Ports {
		panic(fmt.Sprintf("xbar: output %d out of range", out))
	}
	return byte(out)
}

// Connect opens a wormhole circuit from an input to output channel out,
// starting no earlier than at, holding the output for hold (the time the
// message body needs to stream through, up to the close command).
// It returns when the circuit is established (route command decoded,
// arbitration won, crosspoint set): data bytes behind the route byte flow
// from setup onwards. Contention for a busy output delays setup.
//
//pmlint:hotpath
func (x *Crossbar) Connect(at sim.Time, out int, hold sim.Time) (setup sim.Time) {
	if out < 0 || out >= Ports {
		panic(fmt.Sprintf("xbar %s: output %d out of range", x.name, out)) //pmlint:allow hotpath cold panic guard for a routing bug, never taken per message
	}
	start := x.outputs[out].Acquire(at, RouteSetup+hold)
	if start > at {
		x.blocked++
	}
	x.opened++
	x.traceHold(at, start, start+RouteSetup+hold, out)
	return start + RouteSetup
}

// traceHold records one circuit's arbitration wait (if any) and its
// output-channel occupancy: the wait into the shared and per-plane
// metrics histograms, both spans onto the port's track when tracing.
//
//pmlint:hotpath
func (x *Crossbar) traceHold(requested, start, until sim.Time, out int) {
	if start > requested {
		x.arbWait.ObserveTime(start - requested)
		x.planeWait.ObserveTime(start - requested)
	}
	if !x.rec.Enabled() {
		return
	}
	track := trace.XbarPortTrack(x.ordinal, out)
	if start > requested {
		x.rec.Span(track, "xbar", "arb-wait", requested, start)
	}
	x.rec.Span(track, "xbar", "circuit", start, until)
}

// OutputFreeAt reports when output channel out next becomes free — used
// by the network's two-pass wormhole setup to compute a circuit's blocking
// before claiming the whole path.
func (x *Crossbar) OutputFreeAt(out int) sim.Time {
	if out < 0 || out >= Ports {
		panic(fmt.Sprintf("xbar %s: output %d out of range", x.name, out))
	}
	return x.outputs[out].FreeAt()
}

// HoldOutput claims output out from start until `until` for a wormhole
// circuit whose route command arrived at `requested`. A start after the
// request means the circuit waited on a busy channel (counted as
// blocked). Wormhole semantics: the claim covers the full window until
// the close command passes, even while the worm is stalled downstream.
//
//pmlint:hotpath
func (x *Crossbar) HoldOutput(requested, start, until sim.Time, out int) {
	if out < 0 || out >= Ports {
		panic(fmt.Sprintf("xbar %s: output %d out of range", x.name, out)) //pmlint:allow hotpath cold panic guard for a routing bug, never taken per message
	}
	if until < start {
		panic(fmt.Sprintf("xbar %s: hold window [%v, %v) inverted", x.name, start, until)) //pmlint:allow hotpath cold panic guard for a model bug, never taken per message
	}
	x.outputs[out].Acquire(start, until-start)
	if start > requested {
		x.blocked++
	}
	x.opened++
	x.traceHold(requested, start, until, out)
}

// ClaimOutput acquires output channel out for [start, until) without
// touching the crossbar's shared counters, trace recorder or metrics
// instruments. It exists for the node-partitioned send path
// (internal/netsim), where one crossbar's output channels can belong to
// different psim shards: the per-output occupancy timeline is owned by
// the output's shard and safe to claim here, while arbitration
// accounting and spans land in the claiming shard's own instruments.
//
//pmlint:hotpath
func (x *Crossbar) ClaimOutput(start, until sim.Time, out int) {
	if out < 0 || out >= Ports {
		panic(fmt.Sprintf("xbar %s: output %d out of range", x.name, out)) //pmlint:allow hotpath cold panic guard for a routing bug, never taken per message
	}
	if until < start {
		panic(fmt.Sprintf("xbar %s: hold window [%v, %v) inverted", x.name, start, until)) //pmlint:allow hotpath cold panic guard for a model bug, never taken per message
	}
	x.outputs[out].Acquire(start, until-start)
}

// StickOutput injects a stuck-busy fault: output channel out is forced
// busy for the window [from, until), as if a failed arbiter never released
// the crosspoint. Circuits requesting the channel inside the window wait
// like any contender — the fault-aware send path (netsim.SendReliable)
// gives up after its setup timeout and fails over to the other network
// plane. Like every Resource acquisition, the window must be applied in
// non-decreasing time order relative to traffic; the fault injector
// guarantees this by applying events before each send they precede.
func (x *Crossbar) StickOutput(out int, from, until sim.Time) {
	if out < 0 || out >= Ports {
		panic(fmt.Sprintf("xbar %s: output %d out of range", x.name, out))
	}
	if until <= from {
		return
	}
	x.outputs[out].Acquire(from, until-from)
	x.stuck++
	if x.rec.Enabled() {
		x.rec.Span(trace.XbarPortTrack(x.ordinal, out), "fault", "stuck", from, until)
	}
}

// Stats reports connection counts.
type Stats struct {
	Opened  int64
	Blocked int64
	// Stuck counts injected stuck-busy fault windows.
	Stuck int64
}

// Stats returns accumulated counters.
func (x *Crossbar) Stats() Stats {
	return Stats{Opened: x.opened, Blocked: x.blocked, Stuck: x.stuck}
}

// OutputBusy reports the accumulated busy time of one output channel.
func (x *Crossbar) OutputBusy(out int) sim.Time { return x.outputs[out].Busy() }

// Reset clears all circuit timelines and counters.
func (x *Crossbar) Reset() {
	for i := range x.outputs {
		x.outputs[i].Reset()
	}
	x.opened, x.blocked, x.stuck = 0, 0, 0
}
