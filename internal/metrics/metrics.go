// Package metrics is the deterministic always-on measurement registry of
// the simulator: named counters, gauges and fixed-bucket histograms the
// model layers feed whether or not tracing is enabled. Where
// internal/trace answers "where did the time go" with a full event
// timeline, this package answers "how much, how often, how spread" with
// O(1) state per instrument — cheap enough to leave wired into the hot
// send path permanently.
//
// Two properties are contractual, mirroring the trace recorder
// (DESIGN.md §8):
//
//   - Determinism. Instruments hold integer state only (int64 counts and
//     sums of simulated-time picoseconds), the dump renders instruments
//     sorted by name, and no wall clock or map-iteration order can reach
//     the output: two runs with the same seed dump byte-identical text.
//
//   - Zero overhead when off. A nil *Registry is the "metrics off" state:
//     it hands out nil instruments, and every instrument method no-ops on
//     a nil receiver. Instrumented call sites therefore resolve their
//     instruments once at attach time and call them unconditionally,
//     paying one nil check per observation and allocating nothing.
//
// Shard locality (the internal/psim contract): instruments are plain
// integers with no locks, so a Registry must only ever be observed from
// one psim shard. Campaigns attach the registry to the single observed
// (highest-rate) row, which keeps every observation shard-local; do not
// share a Registry across shards.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"powermanna/internal/sim"
)

// Counter is a monotonically accumulating count (messages sent, cache
// hits). The zero value of *Counter — nil — no-ops.
type Counter struct {
	name string
	v    int64
}

// Add accumulates d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the accumulated count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value (or high-water-mark, via Max) instrument for
// levels and configuration facts: a queue's peak depth, the fault rate a
// campaign ran at. The zero value of *Gauge — nil — no-ops.
type Gauge struct {
	name string
	v    int64
}

// Set records the current level. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// Max raises the gauge to v if v exceeds the current value — the
// high-water-mark use (peak ready-queue depth). No-op on a nil gauge.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	if v > g.v {
		g.v = v
	}
}

// Value reports the gauge level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets chosen at creation:
// counts[i] tallies observations v <= bounds[i] (and above every earlier
// bound), with one implicit overflow bucket past the last bound. Count,
// sum, min and max are tracked exactly, so the mean needs no buckets.
// Observation is allocation-free: a linear scan over the (short, fixed)
// bound slice. The zero value of *Histogram — nil — no-ops.
type Histogram struct {
	name   string
	bounds []int64
	counts []int64 // len(bounds)+1; last is overflow
	count  int64
	sum    int64
	min    int64
	max    int64
	// timeValued marks observations as sim.Time picoseconds, rendered as
	// microseconds in the dump (raw int64 otherwise).
	timeValued bool
}

// Observe tallies one value. No-op on a nil histogram.
//
//pmlint:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// ObserveTime tallies one simulated duration. No-op on a nil histogram.
//
//pmlint:hotpath
func (h *Histogram) ObserveTime(t sim.Time) { h.Observe(int64(t)) }

// Quantile reads the value at quantile q (0 < q <= 1) off the fixed
// buckets: the bound of the first bucket whose cumulative count reaches
// rank ceil(q*count), sharpened by the exact extrema — no bucket bound
// can undershoot the recorded min, and the overflow bucket (plus any
// bound past the recorded max) reports max exactly. The result is
// conservative within one bucket width, which is the deal fixed buckets
// offer: O(1) state, deterministic output, bounded error set by the
// bucket ladder. Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q > 1 {
		q = 1
	}
	// rank = ceil(q * count), clamped to [1, count]. The product of a
	// float in (0,1] and an integer count is deterministic IEEE-754
	// arithmetic: same inputs, same rank, on every platform Go targets.
	rank := int64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(h.bounds) {
			return h.max
		}
		v := h.bounds[i]
		if v > h.max {
			v = h.max
		}
		if v < h.min {
			v = h.min
		}
		return v
	}
	return h.max
}

// QuantileTime is Quantile in the simulated-time domain.
func (h *Histogram) QuantileTime(q float64) sim.Time { return sim.Time(h.Quantile(q)) }

// Count reports the observation count (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the observation sum (0 on a nil histogram).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry owns a namespace of instruments. Get-or-create by name:
// asking twice for the same name returns the same instrument, so
// independent subsystems (every crossbar of a network, every transport
// of a world) can share one tally without coordination. The zero value
// of *Registry — nil — is the "metrics off" state and hands out nil
// instruments.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything; instrumented
// layers use it to skip optional setup. Safe on a nil receiver.
func (r *Registry) Enabled() bool { return r != nil }

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending; copied) on first use. A later call
// with the same name returns the existing instrument — the first
// creation's buckets win. A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			name:   name,
			bounds: append([]int64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// TimeHistogram is Histogram over simulated-time bounds; observations
// are picoseconds and the dump renders bounds and aggregates as
// microseconds. A nil registry returns a nil (no-op) histogram.
func (r *Registry) TimeHistogram(name string, bounds []sim.Time) *Histogram {
	if r == nil {
		return nil
	}
	raw := make([]int64, len(bounds))
	for i, b := range bounds {
		raw[i] = int64(b)
	}
	h := r.Histogram(name, raw)
	h.timeValued = true
	return h
}

// ExpBuckets builds n ascending bucket bounds starting at lo, each
// factor times the previous — the shape latency distributions want.
func ExpBuckets(lo, factor int64, n int) []int64 {
	bounds := make([]int64, n)
	b := lo
	for i := 0; i < n; i++ {
		bounds[i] = b
		b *= factor
	}
	return bounds
}

// TimeBuckets is ExpBuckets over simulated time.
func TimeBuckets(lo sim.Time, factor int64, n int) []sim.Time {
	bounds := make([]sim.Time, n)
	b := lo
	for i := 0; i < n; i++ {
		bounds[i] = b
		b *= sim.Time(factor)
	}
	return bounds
}

// MergeFrom folds another registry's observations into this one:
// counters and histogram tallies add, gauges keep the maximum (the
// high-water semantics every gauge in shard registries uses). Histograms
// merge exactly — bucket counts, count, sum and the min/max envelope —
// because every aggregate is a sum or an extremum, both commutative, so
// merging per-shard registries in shard order yields the same dump
// regardless of which shard observed what first at distinct instants.
// Instruments missing on the destination are created with the source's
// shape. Merging is the single-threaded fan-in step of a partitioned
// run (internal/netsim); it must not race with observations.
func (r *Registry) MergeFrom(src *Registry) {
	if r == nil || src == nil {
		return
	}
	names := make([]string, 0, len(src.counters))
	for n := range src.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Counter(n).Add(src.counters[n].v)
	}
	names = names[:0]
	for n := range src.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Gauge(n).Max(src.gauges[n].v)
	}
	names = names[:0]
	for n := range src.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sh := src.hists[n]
		h := r.Histogram(n, sh.bounds)
		h.timeValued = h.timeValued || sh.timeValued
		if sh.count == 0 {
			continue
		}
		if len(h.bounds) != len(sh.bounds) {
			panic(fmt.Sprintf("metrics: merging histogram %q with mismatched buckets", n))
		}
		if h.count == 0 || sh.min < h.min {
			h.min = sh.min
		}
		if h.count == 0 || sh.max > h.max {
			h.max = sh.max
		}
		h.count += sh.count
		h.sum += sh.sum
		for i, c := range sh.counts {
			h.counts[i] += c
		}
	}
}

// Render produces the registry's stable text dump: one line per counter
// and gauge, a header plus one bucket line per histogram, each kind
// sorted by instrument name. The dump is a pure function of the
// recorded observations. A nil registry renders the empty string.
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("-- metrics --\n")

	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	w := nameWidth(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter    %-*s  %d\n", w, n, r.counters[n].v)
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	w = nameWidth(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge      %-*s  %d\n", w, n, r.gauges[n].v)
	}

	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.hists[n].render(&b)
	}
	return b.String()
}

// Write writes Render to w, the usual dump shape.
func (r *Registry) Write(w io.Writer) error {
	_, err := io.WriteString(w, r.Render())
	return err
}

// nameWidth is the alignment width for a name column.
func nameWidth(names []string) int {
	w := 0
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	return w
}

// render appends the histogram's dump block: an aggregate header and one
// line per non-empty bucket (empty buckets are elided to keep dumps
// readable; the header's count makes the elision visible).
func (h *Histogram) render(b *strings.Builder) {
	fmt.Fprintf(b, "histogram  %s  count=%d", h.name, h.count)
	if h.count > 0 {
		fmt.Fprintf(b, " min=%s max=%s mean=%s",
			h.renderValue(h.min), h.renderValue(h.max), h.renderValue(h.sum/h.count))
	}
	b.WriteByte('\n')
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if i < len(h.bounds) {
			fmt.Fprintf(b, "  le %s  %d\n", h.renderValue(h.bounds[i]), c)
		} else {
			fmt.Fprintf(b, "  le +inf  %d\n", c)
		}
	}
}

// renderValue formats one observation-domain value: exact decimal
// microseconds for time-valued histograms (1 ps = 1e-6 µs, so the split
// is exact and float-free), the raw integer otherwise.
func (h *Histogram) renderValue(v int64) string {
	if !h.timeValued {
		return fmt.Sprintf("%d", v)
	}
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	return fmt.Sprintf("%s%d.%06dus", neg, v/1_000_000, v%1_000_000)
}
