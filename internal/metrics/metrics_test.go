package metrics

import (
	"strings"
	"testing"

	"powermanna/internal/sim"
)

// TestNilRegistryNoOpsAndAllocatesNothing pins the "zero overhead when
// off" contract: a nil registry hands out nil instruments, and every
// instrument method no-ops without allocating — the cost an always-wired
// call site pays when metrics are off.
func TestNilRegistryNoOpsAndAllocatesNothing(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{1, 2})
	th := r.TimeHistogram("th", TimeBuckets(sim.Microsecond, 2, 4))
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(5)
		g.Set(3)
		g.Max(9)
		h.Observe(1)
		th.ObserveTime(2 * sim.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("nil instruments allocated %.1f times per run, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments hold state")
	}
	if r.Render() != "" {
		t.Error("nil registry renders non-empty dump")
	}
}

// TestGetOrCreateSharesInstruments checks that asking twice for a name
// returns the same instrument — the property that lets every crossbar of
// a network share one tally.
func TestGetOrCreateSharesInstruments(t *testing.T) {
	r := NewRegistry()
	if !r.Enabled() {
		t.Fatal("fresh registry reports disabled")
	}
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Error("two Counter(x) calls returned distinct instruments")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Errorf("shared counter = %d, want 2", a.Value())
	}
	h1 := r.Histogram("h", []int64{10, 20})
	h2 := r.Histogram("h", []int64{999}) // later buckets are ignored
	if h1 != h2 || len(h2.bounds) != 2 {
		t.Error("histogram get-or-create did not keep the first creation's buckets")
	}
}

// TestHistogramBucketsAndAggregates checks bucket assignment including
// the implicit overflow bucket, and the exact count/sum/min/max.
func TestHistogramBucketsAndAggregates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", ExpBuckets(10, 10, 3)) // 10, 100, 1000
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 0, 1} // <=10 twice, <=100 twice, <=1000 none, overflow once
	for i, c := range h.counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Count() != 5 || h.Sum() != 5126 || h.min != 5 || h.max != 5000 {
		t.Errorf("aggregates count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.min, h.max)
	}
}

// TestGaugeMaxIsHighWaterMark checks Max only raises the level.
func TestGaugeMaxIsHighWaterMark(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Max(4)
	g.Max(2)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	g.Set(1)
	if g.Value() != 1 {
		t.Errorf("gauge after Set = %d, want 1", g.Value())
	}
}

// buildDump records a fixed observation set and renders it.
func buildDump() string {
	r := NewRegistry()
	// Creation order differs from name order on purpose: the dump must
	// sort, not echo insertion.
	r.Counter("z.count").Add(7)
	r.Counter("a.count").Inc()
	r.Gauge("m.level").Set(3)
	h := r.TimeHistogram("lat", TimeBuckets(sim.Microsecond, 2, 3))
	h.ObserveTime(1500 * sim.Nanosecond)
	h.ObserveTime(9 * sim.Microsecond)
	return r.Render()
}

// TestRenderDeterministicAndSorted pins the dump shape: stable across
// runs, instruments sorted by name, time-valued histograms rendered as
// exact microseconds.
func TestRenderDeterministicAndSorted(t *testing.T) {
	out := buildDump()
	if out != buildDump() {
		t.Error("two identical recordings rendered different dumps")
	}
	if !strings.HasPrefix(out, "-- metrics --\n") {
		t.Errorf("dump missing header:\n%s", out)
	}
	if strings.Index(out, "a.count") > strings.Index(out, "z.count") {
		t.Errorf("counters not name-sorted:\n%s", out)
	}
	// 1500 ns = 1_500_000 ps renders as exactly 1.500000us.
	for _, want := range []string{
		"counter    a.count  1",
		"counter    z.count  7",
		"gauge      m.level  3",
		"count=2 min=1.500000us max=9.000000us mean=5.250000us",
		"le 2.000000us  1",
		"le +inf  1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestExpBuckets checks both bucket builders produce the ascending
// geometric ladder.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(3, 2, 4)
	for i, want := range []int64{3, 6, 12, 24} {
		if got[i] != want {
			t.Errorf("ExpBuckets[%d] = %d, want %d", i, got[i], want)
		}
	}
	tb := TimeBuckets(sim.Microsecond, 4, 3)
	for i, want := range []sim.Time{sim.Microsecond, 4 * sim.Microsecond, 16 * sim.Microsecond} {
		if tb[i] != want {
			t.Errorf("TimeBuckets[%d] = %v, want %v", i, tb[i], want)
		}
	}
}

// TestQuantile checks the fixed-bucket percentile extraction: rank
// resolution, min/max sharpening, overflow handling, and the nil/empty
// no-op contract.
func TestQuantile(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram Quantile != 0")
	}
	r := NewRegistry()
	h := r.Histogram("q", []int64{10, 20, 40, 80})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram Quantile != 0")
	}
	// 10 observations: 4 in (0,10], 3 in (10,20], 2 in (20,40], 1 overflow.
	for _, v := range []int64{3, 5, 7, 9, 12, 15, 18, 25, 33, 500} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.1, 10},   // rank 1 -> first bucket, bound 10
		{0.4, 10},   // rank 4 still inside the first bucket
		{0.5, 20},   // rank 5 -> second bucket
		{0.7, 20},   // rank 7 -> second bucket
		{0.9, 40},   // rank 9 -> third bucket
		{0.99, 500}, // rank 10 -> overflow bucket reports the exact max
		{1.0, 500},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if h.Quantile(0) != 3 {
		t.Errorf("Quantile(0) = %d, want min 3", h.Quantile(0))
	}
	if h.Quantile(2) != 500 {
		t.Errorf("Quantile(2) = %d, want max 500", h.Quantile(2))
	}

	// Min sharpening: a single observation above the first bound must not
	// report a bound below itself, and a single small observation must
	// report itself rather than its bucket's upper bound.
	one := r.Histogram("q.one", []int64{10, 20})
	one.Observe(4)
	if one.Quantile(0.5) != 4 {
		t.Errorf("single-observation Quantile = %d, want 4", one.Quantile(0.5))
	}
	hi := r.Histogram("q.hi", []int64{10, 20})
	hi.Observe(15)
	if hi.Quantile(0.01) != 15 {
		t.Errorf("min-sharpened Quantile = %d, want 15", hi.Quantile(0.01))
	}

	// Max sharpening inside a bucket: observations 11..13 live in the
	// (10,20] bucket; every quantile must clamp to max 13, not report 20.
	mid := r.Histogram("q.mid", []int64{10, 20})
	for _, v := range []int64{11, 12, 13} {
		mid.Observe(v)
	}
	if mid.Quantile(0.999) != 13 {
		t.Errorf("max-sharpened Quantile = %d, want 13", mid.Quantile(0.999))
	}

	// QuantileTime round-trips through the time domain.
	th := r.TimeHistogram("q.time", TimeBuckets(sim.Microsecond, 2, 4))
	th.ObserveTime(3 * sim.Microsecond)
	if th.QuantileTime(0.99) != 3*sim.Microsecond {
		t.Errorf("QuantileTime = %v, want 3us", th.QuantileTime(0.99))
	}
}

// TestQuantileMergeInvariance checks quantiles agree whether
// observations land in one registry or are merged from shards — the
// property per-tenant SLO percentiles rely on under partitioned runs.
func TestQuantileMergeInvariance(t *testing.T) {
	bounds := []int64{10, 100, 1000}
	whole := NewRegistry()
	wh := whole.Histogram("lat", bounds)
	shards := []*Registry{NewRegistry(), NewRegistry()}
	for i := 0; i < 40; i++ {
		v := int64((i*37)%1200 + 1)
		wh.Observe(v)
		shards[i%2].Histogram("lat", bounds).Observe(v)
	}
	folded := NewRegistry()
	for _, s := range shards {
		folded.MergeFrom(s)
	}
	fh := folded.Histogram("lat", bounds)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if wh.Quantile(q) != fh.Quantile(q) {
			t.Errorf("Quantile(%v): whole %d != folded %d", q, wh.Quantile(q), fh.Quantile(q))
		}
	}
}

// TestQuantileEmptyHistogram pins the documented empty contract
// explicitly: "Returns 0 on a nil or empty histogram". Every quantile
// reads 0 before the first observation — including q <= 0 (the min
// path) and q > 1 (the max clamp) — on both the nil receiver and an
// allocated histogram with no observations, and QuantileTime mirrors
// the contract in the time domain. Callers (traffic SLO percentiles,
// pmstat series) rely on the zero, not on a panic or a bucket bound.
func TestQuantileEmptyHistogram(t *testing.T) {
	var nilH *Histogram
	empty := NewRegistry().Histogram("empty", []int64{10, 20, 40})
	for _, q := range []float64{-1, 0, 0.001, 0.5, 0.999, 1, 2} {
		if got := nilH.Quantile(q); got != 0 {
			t.Errorf("nil.Quantile(%v) = %d, want 0", q, got)
		}
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %d, want 0", q, got)
		}
		if got := empty.QuantileTime(q); got != 0 {
			t.Errorf("empty.QuantileTime(%v) = %v, want 0", q, got)
		}
	}
	// The contract is about emptiness, not youth: observing once and
	// merging an empty histogram in leaves the quantiles live.
	empty.Observe(7)
	if got := empty.Quantile(1); got != 7 {
		t.Errorf("after one observation Quantile(1) = %d, want 7", got)
	}
}
