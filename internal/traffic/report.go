package traffic

import (
	"fmt"
	"strings"

	"powermanna/internal/metrics"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/telemetry"
	"powermanna/internal/topo"
)

// TenantStats is one tenant's service report, read off the folded
// registry after Run: offered versus delivered traffic, the delivered-
// latency percentiles and the SLO verdict.
type TenantStats struct {
	Name string
	SLO  SLO
	// Offered/Delivered/Failed count messages; the Bytes counters carry
	// the corresponding payload volume (delivered bytes are accounted
	// from the outcome's PayloadBytes, so a failed message contributes
	// offered bytes but no delivered bytes).
	Offered, OfferedBytes     int64
	Delivered, DeliveredBytes int64
	Failed                    int64
	// Violations counts failed messages plus delivered messages whose
	// individual latency exceeded the SLO bound (exact, not
	// bucket-derived).
	Violations int64
	// P50/P99/P999 are delivered-latency quantiles from the tenant's
	// folded histogram (bucket upper bounds sharpened by the min/max
	// envelope).
	P50, P99, P999 sim.Time
}

// Met reports whether the SLO percentile stayed at or under the bound.
// This is the histogram-level verdict; Violations is the per-message
// count.
func (ts TenantStats) Met() bool {
	switch ts.SLO.Quantile {
	case 0.5:
		return ts.P50 <= ts.SLO.Bound
	case 0.99:
		return ts.P99 <= ts.SLO.Bound
	case 0.999:
		return ts.P999 <= ts.SLO.Bound
	default:
		return ts.Violations == 0
	}
}

// Result is one traffic run's full report: the mix, the machine, and
// per-tenant service statistics, all derived from the folded registry
// so it is byte-identical across engines and shard counts.
type Result struct {
	Mix      Mix
	Topology *topo.Topology
	Seed     int64
	Horizon  sim.Time
	Engine   psim.Kind
	Shards   int
	Tenants  []TenantStats
	Registry *metrics.Registry
	PlaneA   stats.CounterSet
	PlaneB   stats.CounterSet
	// Telemetry is the folded windowed sampler (nil unless the run was
	// assembled with Options.Telemetry); Window is its grid width. The
	// BurnTable/DecompTable/SeriesCSV views render off it.
	Telemetry *telemetry.Sampler
	Window    sim.Time
}

// MixTable renders the tenant declarations — what was asked of the
// machine, next to ServiceTable's what it got.
func (r *Result) MixTable() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("tenant mix %s", r.Mix.Name),
		Columns: []string{"tenant", "arrival", "gap-us", "on-us", "off-us", "sizes", "pattern", "slo"},
	}
	for _, tn := range r.Mix.Tenants {
		on, off := "-", "-"
		if tn.Arrival.Kind == OnOff {
			on = fmt.Sprintf("%.0f", tn.Arrival.OnMean.Micros())
			off = fmt.Sprintf("%.0f", tn.Arrival.OffMean.Micros())
		}
		t.AddRow(
			tn.Name,
			tn.Arrival.Kind.String(),
			fmt.Sprintf("%.0f", tn.Arrival.MeanGap.Micros()),
			on, off,
			tn.Sizes.String(),
			tn.Pattern.String(),
			tn.SLO.String(),
		)
	}
	return t
}

// ServiceTable renders the per-tenant service report: offered versus
// delivered traffic, latency percentiles, and the SLO verdict with the
// exact violation count.
func (r *Result) ServiceTable() *stats.Table {
	t := &stats.Table{
		Title: "per-tenant service",
		Columns: []string{
			"tenant", "offered", "delivered", "failed", "bytes-out", "bytes-in",
			"p50-us", "p99-us", "p999-us", "slo", "ok", "viol",
		},
	}
	for _, ts := range r.Tenants {
		ok := "yes"
		if !ts.Met() {
			ok = "NO"
		}
		t.AddRow(
			ts.Name,
			fmt.Sprintf("%d", ts.Offered),
			fmt.Sprintf("%d", ts.Delivered),
			fmt.Sprintf("%d", ts.Failed),
			fmt.Sprintf("%d", ts.OfferedBytes),
			fmt.Sprintf("%d", ts.DeliveredBytes),
			fmt.Sprintf("%.3f", ts.P50.Micros()),
			fmt.Sprintf("%.3f", ts.P99.Micros()),
			fmt.Sprintf("%.3f", ts.P999.Micros()),
			ts.SLO.String(),
			ok,
			fmt.Sprintf("%d", ts.Violations),
		)
	}
	return t
}

// Render produces the full textual report: header, mix, per-tenant
// service and plane counters. Pure function of the folded registry —
// the string golden tests pin.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### traffic %s — %s\n", r.Mix.Name, r.Mix.Description)
	fmt.Fprintf(&b, "topology %s, seed %d, horizon %dus, %d tenants, open-loop over partitioned datapath\n\n",
		r.Topology.Name(), r.Seed, int64(r.Horizon/sim.Microsecond), len(r.Mix.Tenants))
	b.WriteString(r.MixTable().Render())
	b.WriteByte('\n')
	b.WriteString(r.ServiceTable().Render())
	b.WriteByte('\n')
	b.WriteString(r.PlaneA.Render())
	b.WriteByte('\n')
	b.WriteString(r.PlaneB.Render())
	return b.String()
}
