package traffic

import (
	"math"

	"powermanna/internal/sim"
)

// rng is a splitmix64 stream — the same deterministic-PRNG idiom as the
// netsim OS stream's jitter: a tiny seeded integer mixer, no global
// state, no math/rand, so every draw is a pure function of the seed and
// the draw index. Each (tenant, node) pair owns one stream, seeded from
// (campaign seed, tenant index, node index), which makes every tenant's
// schedule independent of which other tenants share the machine and of
// the shard count.
type rng struct {
	state uint64
}

// seedRNG derives a stream for one (tenant, node) pair. The three mixes
// use the splitmix64 increments as large odd multipliers so nearby
// (seed, tenant, node) triples land far apart in state space.
func seedRNG(seed int64, tenant, node int) rng {
	s := uint64(seed)*0x9E3779B97F4A7C15 ^
		uint64(tenant+1)*0xBF58476D1CE4E5B9 ^
		uint64(node+1)*0x94D049BB133111EB
	r := rng{state: s}
	r.next() // discard one output to decorrelate the raw seed
	return r
}

// next advances the stream (splitmix64 finalizer).
//
//pmlint:hotpath
func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float draws uniformly from [0, 1) with 53 bits of precision.
//
//pmlint:hotpath
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn draws uniformly from [0, n). n must be positive; the modulo bias
// over 64 bits is below 2^-40 for any realistic node count.
//
//pmlint:hotpath
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// exp draws an exponentially distributed duration with the given mean
// (inverse-CDF on (0, 1]), floored at one nanosecond so an arrival
// process can never re-arm at its own instant and spin the event loop.
//
//pmlint:hotpath
func (r *rng) exp(mean sim.Time) sim.Time {
	u := 1 - r.float() // (0, 1]: log stays finite
	d := -float64(mean) * math.Log(u)
	if d < float64(sim.Nanosecond) {
		return sim.Nanosecond
	}
	return sim.Time(d)
}
