package traffic

import (
	"math"

	"powermanna/internal/metrics"
	"powermanna/internal/netsim"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
)

// tenantCounters holds one tenant's per-shard accounting. Each stream
// writes only its own shard's set (resolved from that shard's private
// registry), so the hot path is race-free under the parallel engine and
// the fold sums the shards into the machine totals — the same pattern
// as the netsim plane counters.
type tenantCounters struct {
	offered        *metrics.Counter
	offeredBytes   *metrics.Counter
	delivered      *metrics.Counter
	deliveredBytes *metrics.Counter
	failed         *metrics.Counter
	violations     *metrics.Counter
}

// stream is one (tenant, node) arrival process: the unit of open-loop
// load generation. It lives on the source node's shard; its fire and
// completion handlers are bound once as method values so re-arming and
// sending allocate nothing per message, and all mutable state is owned
// by a single shard (sharedstate-safe by construction).
type stream struct {
	eng   *engineCore
	sh    *psim.Shard
	stats *tenantCounters
	// tel holds the shard's windowed telemetry instruments for this
	// tenant; the zero value (all nil) no-ops, so the hot paths observe
	// unconditionally.
	tel    tenantSeries
	r      rng
	tenant int // index into the mix (and the SetTenants labels)
	src    int
	nodes  int

	// at is the next arrival instant; onUntil ends the current on-period
	// (OnOff only).
	at      sim.Time
	onUntil sim.Time

	arrival Arrival
	sizes   Sizes
	pattern Pattern
	bound   sim.Time // SLO latency bound

	// negInvAlpha caches -1/Alpha for the bounded-Pareto inverse CDF.
	negInvAlpha float64
	// k is the pattern cursor (halo side, butterfly level, tree slot).
	k int
	// treeDst caches the node's binary-tree neighbours (Tree pattern).
	treeDst []int

	fireFn func()
	doneFn func(netsim.Delivery)
}

// engineCore is the slice of Engine a stream needs; split out so
// stream.go does not depend on the engine's construction machinery.
type engineCore struct {
	pn      *netsim.PartNetwork
	horizon sim.Time
}

// newStream builds and seeds one (tenant, node) stream and primes its
// first arrival. The caller schedules the first fire if it falls inside
// the horizon.
func newStream(eng *engineCore, tn Tenant, tenant, src, nodes int, seed int64, stats *tenantCounters, tel tenantSeries) *stream {
	s := &stream{
		eng: eng, sh: eng.pn.Shard(eng.pn.ShardOf(src)), stats: stats, tel: tel,
		r: seedRNG(seed, tenant, src), tenant: tenant, src: src, nodes: nodes,
		arrival: tn.Arrival, sizes: tn.Sizes, pattern: tn.Pattern, bound: tn.SLO.Bound,
	}
	if s.sizes.Kind == Pareto {
		s.negInvAlpha = -1 / s.sizes.Alpha
	}
	if s.pattern == Tree {
		s.treeDst = treeNeighbours(src, nodes)
	}
	s.fireFn = s.fire
	s.doneFn = s.done
	// Prime the first arrival: Poisson starts one gap in; on-off starts
	// at the head of the first burst, one off-period in.
	if s.arrival.Kind == OnOff {
		s.at = s.r.exp(s.arrival.OffMean)
		s.onUntil = s.at + s.r.exp(s.arrival.OnMean)
	} else {
		s.at = s.r.exp(s.arrival.MeanGap)
	}
	return s
}

// treeNeighbours lists a node's binary-tree peers (parent, then
// children), the token flow of the fork-join tree. The root has no
// parent; leaves have no children; node 0's slot list is never empty
// for nodes >= 2.
func treeNeighbours(src, nodes int) []int {
	var out []int
	if src > 0 {
		out = append(out, (src-1)/2)
	}
	if l := 2*src + 1; l < nodes {
		out = append(out, l)
	}
	if r := 2*src + 2; r < nodes {
		out = append(out, r)
	}
	if len(out) == 0 {
		out = append(out, (src+1)%nodes)
	}
	return out
}

// fire offers one message at s.at — sample a size and destination,
// count it, hand it to the split-phase datapath — then advances the
// arrival process and re-arms while still inside the horizon. Runs as
// an event on the source node's shard.
//
//pmlint:hotpath
func (s *stream) fire() {
	size := s.sampleSize()
	dst := s.sampleDst()
	s.stats.offered.Inc()
	s.stats.offeredBytes.Add(int64(size))
	// The window is indexed by the arrival's own instant, never by event
	// order — the shard-count-invariance contract of internal/telemetry.
	s.tel.offered.Inc(s.at)
	if err := s.eng.pn.SendAsyncTenant(s.tenant, s.src, dst, size, nil, s.at, s.doneFn); err != nil {
		// Arguments are validated at construction; reaching this is a
		// model bug, not a runtime condition.
		panic(err) //pmlint:allow hotpath cold panic guard for a model bug, never taken per event
	}
	s.advance()
	if s.at < s.eng.horizon {
		s.sh.At(s.at, s.fireFn)
	}
}

// done accounts one outcome on the source shard: delivered traffic and
// bytes, failures, and SLO violations (failed messages always violate;
// delivered ones violate when their latency exceeds the bound).
//
//pmlint:hotpath
func (s *stream) done(d netsim.Delivery) {
	if d.Failed {
		s.stats.failed.Inc()
		s.stats.violations.Inc()
		s.tel.failed.Inc(d.Done)
		s.tel.violations.Inc(d.Done)
		return
	}
	s.stats.delivered.Inc()
	s.stats.deliveredBytes.Add(int64(d.PayloadBytes))
	s.tel.delivered.Inc(d.Done)
	s.tel.lat.ObserveTime(d.Done, d.Latency())
	s.tel.wait[0].ObserveTime(d.Done, d.Decomp.Arb)
	s.tel.wait[1].ObserveTime(d.Done, d.Decomp.Wire)
	s.tel.wait[2].ObserveTime(d.Done, d.Decomp.Detect)
	s.tel.wait[3].ObserveTime(d.Done, d.Decomp.Retry)
	if s.bound > 0 && d.Latency() > s.bound {
		s.stats.violations.Inc()
		s.tel.violations.Inc(d.Done)
	}
}

// advance moves s.at to the next arrival. Poisson adds one exponential
// gap; on-off adds gaps while inside the burst, then jumps the
// exponential off-period and opens the next burst.
//
//pmlint:hotpath
func (s *stream) advance() {
	if s.arrival.Kind != OnOff {
		s.at += s.r.exp(s.arrival.MeanGap)
		return
	}
	next := s.at + s.r.exp(s.arrival.MeanGap)
	if next < s.onUntil {
		s.at = next
		return
	}
	start := s.onUntil + s.r.exp(s.arrival.OffMean)
	s.at = start
	s.onUntil = start + s.r.exp(s.arrival.OnMean)
}

// sampleSize draws one payload size from the tenant's law.
//
//pmlint:hotpath
func (s *stream) sampleSize() int {
	if s.sizes.Kind != Pareto {
		return s.sizes.Bytes
	}
	u := 1 - s.r.float() // (0, 1]
	v := float64(s.sizes.MinBytes) * math.Pow(u, s.negInvAlpha)
	if v >= float64(s.sizes.MaxBytes) {
		return s.sizes.MaxBytes
	}
	return int(v)
}

// sampleDst picks the next destination per the tenant's pattern; never
// the source itself.
//
//pmlint:hotpath
func (s *stream) sampleDst() int {
	switch s.pattern {
	case Halo:
		s.k++
		if s.k&1 == 1 {
			return (s.src + 1) % s.nodes
		}
		return (s.src + s.nodes - 1) % s.nodes
	case Butterfly:
		d := s.src ^ (1 << uint(s.k))
		s.k++
		if 1<<uint(s.k) >= s.nodes {
			s.k = 0
		}
		if d >= s.nodes || d == s.src {
			return (s.src + 1) % s.nodes
		}
		return d
	case Tree:
		d := s.treeDst[s.k]
		s.k++
		if s.k >= len(s.treeDst) {
			s.k = 0
		}
		return d
	case Pair:
		d := (s.src + s.nodes/2) % s.nodes
		if d == s.src {
			return (s.src + 1) % s.nodes
		}
		return d
	default: // Uniform
		d := s.r.intn(s.nodes - 1)
		if d >= s.src {
			d++
		}
		return d
	}
}
