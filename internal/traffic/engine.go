package traffic

import (
	"fmt"

	"powermanna/internal/metrics"
	"powermanna/internal/netsim"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/telemetry"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// DefaultHorizon is the default offered-load window: long enough for
// every DefaultMix tenant to cycle through several bursts, short enough
// for a golden-pinned CI run on System256.
const DefaultHorizon = 800 * sim.Microsecond

// Per-tenant accounting counter prefixes; the tenant name is the
// suffix. Offered counts messages the arrival processes injected;
// delivered/failed partition the outcomes; slo.violations counts failed
// messages plus delivered ones whose latency exceeded the tenant's
// bound.
const (
	MetricOfferedPrefix        = "traffic.offered."
	MetricOfferedBytesPrefix   = "traffic.offered.bytes."
	MetricDeliveredPrefix      = "traffic.delivered."
	MetricDeliveredBytesPrefix = "traffic.delivered.bytes."
	MetricFailedPrefix         = "traffic.failed."
	MetricViolationsPrefix     = "traffic.slo.violations."
)

// Options configures one traffic run. The zero value runs the mix on
// Cluster8, seed 1, the default horizon, sequentially.
type Options struct {
	// Seed drives every arrival process; 0 means 1.
	Seed int64
	// Topology is the machine; nil means topo.Cluster8().
	Topology *topo.Topology
	// Horizon is the offered-load window: arrivals stop at the horizon
	// and the run drains in-flight traffic to completion. 0 means
	// DefaultHorizon.
	Horizon sim.Time
	// Engine selects sequential (one shard) or parallel (Shards-wide)
	// execution; the output is byte-identical either way.
	Engine psim.Kind
	// Shards is the shard count under the parallel engine; <= 1 means 2.
	Shards int
	// Metrics optionally supplies the registry the run folds into; nil
	// means a private registry (the Result carries it either way).
	Metrics *metrics.Registry
	// Trace optionally records the send-path attempt/outcome stream.
	Trace *trace.Recorder
	// Telemetry enables the windowed time-series layer: per-tenant
	// offered/outcome/violation series, latency-decomposition series and
	// the SLO burn-rate views, folded into Result.Telemetry.
	Telemetry bool
	// Window is the telemetry grid width; <= 0 auto-sizes to
	// telemetry.AutoWindow(Horizon). Ignored unless Telemetry is set.
	Window sim.Time
}

// Engine is one assembled traffic run: a mix of tenants, their streams
// scheduled on a partitioned network, ready for fault injection and a
// single Run.
type Engine struct {
	mix     Mix
	opt     Options
	pn      *netsim.PartNetwork
	reg     *metrics.Registry
	core    engineCore
	streams []*stream
	// tels holds one sampler per shard (nil when telemetry is off);
	// streams observe only their own shard's sampler and Run folds them,
	// the same single-writer discipline as the per-shard registries.
	tels []*telemetry.Sampler
	ran  bool
}

// New validates the mix, assembles the partitioned network and seeds
// one stream per (tenant, node), scheduling every first arrival that
// falls inside the horizon. Inject faults through Network() before Run.
func New(mix Mix, opt Options) (*Engine, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Topology == nil {
		opt.Topology = topo.Cluster8()
	}
	if opt.Horizon <= 0 {
		opt.Horizon = DefaultHorizon
	}
	shards := 1
	if opt.Engine == psim.Par {
		shards = opt.Shards
		if shards <= 1 {
			shards = 2
		}
	}
	opt.Shards = shards
	pn, err := netsim.NewPartitioned(opt.Topology, shards, netsim.DefaultFailover())
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	reg := opt.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	pn.SetMetrics(reg)
	names := make([]string, len(mix.Tenants))
	for i, tn := range mix.Tenants {
		names[i] = tn.Name
	}
	pn.SetTenants(names)
	if opt.Trace != nil {
		pn.SetRecorder(opt.Trace)
	}

	e := &Engine{mix: mix, opt: opt, pn: pn, reg: reg}
	e.core = engineCore{pn: pn, horizon: opt.Horizon}

	// One counter set per (shard, tenant): streams write only their own
	// shard's set; the fold sums them. The telemetry series follow the
	// same layout — one sampler per shard, one instrument set per
	// (shard, tenant) — with nil samplers handing out no-op instruments
	// when telemetry is off.
	if opt.Telemetry {
		if opt.Window <= 0 {
			opt.Window = telemetry.AutoWindow(opt.Horizon)
		}
		e.tels = make([]*telemetry.Sampler, shards)
		for si := range e.tels {
			e.tels[si] = telemetry.NewSampler(opt.Horizon, opt.Window)
		}
		e.opt = opt
	}
	counters := make([][]tenantCounters, shards)
	series := make([][]tenantSeries, shards)
	for si := range counters {
		sreg := pn.ShardRegistry(si)
		var tel *telemetry.Sampler
		if e.tels != nil {
			tel = e.tels[si]
		}
		row := make([]tenantCounters, len(mix.Tenants))
		srow := make([]tenantSeries, len(mix.Tenants))
		for ti, tn := range mix.Tenants {
			row[ti] = tenantCounters{
				offered:        sreg.Counter(MetricOfferedPrefix + tn.Name),
				offeredBytes:   sreg.Counter(MetricOfferedBytesPrefix + tn.Name),
				delivered:      sreg.Counter(MetricDeliveredPrefix + tn.Name),
				deliveredBytes: sreg.Counter(MetricDeliveredBytesPrefix + tn.Name),
				failed:         sreg.Counter(MetricFailedPrefix + tn.Name),
				violations:     sreg.Counter(MetricViolationsPrefix + tn.Name),
			}
			srow[ti] = resolveTenantSeries(tel, tn.Name)
		}
		counters[si] = row
		series[si] = srow
	}

	// Tenant-major, node-minor creation fixes the same-time event order
	// on every shard layout: two streams on the same node keep their
	// relative order at every shard count, and streams on different
	// nodes never share mutable state.
	nodes := opt.Topology.Nodes()
	for ti, tn := range mix.Tenants {
		for node := 0; node < nodes; node++ {
			si := pn.ShardOf(node)
			st := newStream(&e.core, tn, ti, node, nodes, opt.Seed, &counters[si][ti], series[si][ti])
			e.streams = append(e.streams, st)
			if st.at < opt.Horizon {
				st.sh.At(st.at, st.fireFn)
			}
		}
	}
	return e, nil
}

// Network exposes the underlying network for fault injection (link
// cuts, corruption windows) before Run — not for sending.
func (e *Engine) Network() *netsim.Network { return e.pn.Network() }

// PartNetwork exposes the partitioned datapath — plane counters and
// shard registries, post-Run.
func (e *Engine) PartNetwork() *netsim.PartNetwork { return e.pn }

// Run drives every arrival process to the horizon, drains in-flight
// traffic, folds the per-shard metrics and reads the per-tenant service
// report off the registry. It may be called once.
func (e *Engine) Run() (*Result, error) {
	if e.ran {
		return nil, fmt.Errorf("traffic: engine already ran")
	}
	e.ran = true
	e.pn.Run()

	res := &Result{
		Mix:      e.mix,
		Topology: e.opt.Topology,
		Seed:     e.opt.Seed,
		Horizon:  e.opt.Horizon,
		Engine:   e.opt.Engine,
		Shards:   e.opt.Shards,
		Registry: e.reg,
		PlaneA:   e.pn.PlaneCounterSet(topo.NetworkA),
		PlaneB:   e.pn.PlaneCounterSet(topo.NetworkB),
	}
	if e.tels != nil {
		// Fold the per-shard samplers cell-wise; every fold is commutative,
		// so the result is independent of shard count and merge order.
		tel := e.tels[0]
		for _, src := range e.tels[1:] {
			tel.MergeFrom(src)
		}
		res.Telemetry = tel
		res.Window = e.opt.Window
	}
	for _, tn := range e.mix.Tenants {
		lat := e.reg.Histogram(netsim.MetricSendLatencyTenantPrefix+tn.Name, nil)
		res.Tenants = append(res.Tenants, TenantStats{
			Name:           tn.Name,
			SLO:            tn.SLO,
			Offered:        e.reg.Counter(MetricOfferedPrefix + tn.Name).Value(),
			OfferedBytes:   e.reg.Counter(MetricOfferedBytesPrefix + tn.Name).Value(),
			Delivered:      e.reg.Counter(MetricDeliveredPrefix + tn.Name).Value(),
			DeliveredBytes: e.reg.Counter(MetricDeliveredBytesPrefix + tn.Name).Value(),
			Failed:         e.reg.Counter(MetricFailedPrefix + tn.Name).Value(),
			Violations:     e.reg.Counter(MetricViolationsPrefix + tn.Name).Value(),
			P50:            lat.QuantileTime(0.5),
			P99:            lat.QuantileTime(0.99),
			P999:           lat.QuantileTime(0.999),
		})
	}
	return res, nil
}
