// Windowed telemetry for traffic runs: the time-resolved view over the
// end-of-run service report. Each (shard, tenant) pair owns a set of
// telemetry instruments resolved from that shard's private sampler;
// streams observe offered arrivals at their fire time and outcomes at
// their completion time — both pure functions of the model, never of
// event interleaving — and Run folds the per-shard samplers cell-wise,
// so the rendered series are byte-identical across --engine seq|par and
// every aligned shard count (the determinism contract of DESIGN.md §11).
//
// On top of the raw series sit the two derived views the ROADMAP's
// operational story needs:
//
//   - the SLO burn-rate: per window, violations over the window's error
//     budget (completed × (1−quantile)); a burn of 1.0 consumes budget
//     exactly as fast as the SLO allows, 10× means the tenant will blow
//     through its allowance in a tenth of the horizon. The cumulative
//     budget-used column is the integral — the error-budget consumption.
//   - the latency decomposition: per-window means of the exact Decomp
//     components (arbitration, wire, detection, retry) the netsim send
//     path computes per message, aggregated per tenant.
package traffic

import (
	"fmt"
	"strings"

	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/telemetry"
)

// Telemetry series name prefixes inside a run's sampler; the tenant
// name is the suffix, mirroring the registry counter naming.
const (
	SeriesOfferedPrefix    = "offered."
	SeriesDeliveredPrefix  = "delivered."
	SeriesFailedPrefix     = "failed."
	SeriesViolationsPrefix = "viol."
	SeriesLatencyPrefix    = "lat."
	SeriesWaitPrefix       = "wait."
)

// waitComponents orders the decomposition series as the wait arrays
// index them, matching netsim's component naming.
var waitComponents = [4]string{"arb", "wire", "detect", "retry"}

// tenantSeries holds one (shard, tenant)'s windowed instruments. The
// zero value (all nil) is the "telemetry off" state — every observation
// no-ops — so streams observe unconditionally.
type tenantSeries struct {
	offered    *telemetry.Series
	delivered  *telemetry.Series
	failed     *telemetry.Series
	violations *telemetry.Series
	lat        *telemetry.HistSeries
	wait       [4]*telemetry.HistSeries
}

// resolveTenantSeries resolves one tenant's instruments from a shard's
// sampler (nil sampler yields the all-nil no-op set).
func resolveTenantSeries(tel *telemetry.Sampler, name string) tenantSeries {
	ts := tenantSeries{
		offered:    tel.Series(SeriesOfferedPrefix + name),
		delivered:  tel.Series(SeriesDeliveredPrefix + name),
		failed:     tel.Series(SeriesFailedPrefix + name),
		violations: tel.Series(SeriesViolationsPrefix + name),
		lat:        tel.TimeHist(SeriesLatencyPrefix + name),
	}
	for i, comp := range waitComponents {
		ts.wait[i] = tel.TimeHist(SeriesWaitPrefix + comp + "." + name)
	}
	return ts
}

// burnRate renders one window's SLO burn: violations over the window's
// error budget completed×(1−q). Both sides are completion-indexed —
// violations are observed at the outcome's Done instant, so the
// denominator counts the outcomes of the same window, never the
// arrivals (an arrival-indexed budget would leave drain-window
// violations with no budget at all). A burn of 1.0 consumes budget
// exactly at the allowed rate. "-" when the window completed nothing;
// deterministic IEEE-754 arithmetic on integer inputs.
func burnRate(viol, completed int64, q float64) string {
	if completed == 0 {
		if viol == 0 {
			return "-"
		}
		return "inf"
	}
	budget := float64(completed) * (1 - q)
	if budget <= 0 {
		if viol == 0 {
			return "0.00"
		}
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(viol)/budget)
}

// budgetUsed renders cumulative error-budget consumption as a
// percentage: cumulative violations over the cumulative budget
// (completed outcomes so far, like burnRate's denominator).
func budgetUsed(cumViol, cumCompleted int64, q float64) string {
	budget := float64(cumCompleted) * (1 - q)
	if budget <= 0 {
		if cumViol == 0 {
			return "0.0"
		}
		return "inf"
	}
	return fmt.Sprintf("%.1f", 100*float64(cumViol)/budget)
}

// meanMicros renders a windowed histogram cell's mean as microseconds
// ("-" when the cell is empty).
func meanMicros(c telemetry.HistCell) string {
	if c.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", sim.Time(c.Mean()).Micros())
}

// telemetryRows walks the series grid window-major, tenant-minor and
// hands each non-empty (window, tenant) cell set to emit. Rows where a
// tenant neither offered nor completed anything are elided; window
// labels come from the sampler so the tail cell reads ">=<horizon>us".
func (r *Result) telemetryRows(emit func(win int, label string, tn Tenant, ts tenantSeries, cumViol, cumCompleted int64)) {
	tel := r.Telemetry
	if tel == nil {
		return
	}
	series := make([]tenantSeries, len(r.Mix.Tenants))
	cumViol := make([]int64, len(r.Mix.Tenants))
	cumCompleted := make([]int64, len(r.Mix.Tenants))
	for i, tn := range r.Mix.Tenants {
		series[i] = resolveTenantSeries(tel, tn.Name)
	}
	for w := 0; w <= tel.Windows(); w++ {
		for i, tn := range r.Mix.Tenants {
			ts := series[i]
			off, del, fail, viol := ts.offered.Cell(w), ts.delivered.Cell(w), ts.failed.Cell(w), ts.violations.Cell(w)
			cumViol[i] += viol
			cumCompleted[i] += del + fail
			if off == 0 && del == 0 && fail == 0 && viol == 0 && ts.lat.Cell(w).Count == 0 {
				continue
			}
			emit(w, tel.WindowLabel(w), tn, ts, cumViol[i], cumCompleted[i])
		}
	}
}

// BurnTable renders the per-window SLO burn-rate series: offered and
// completed traffic, violations, the window's burn rate and the
// cumulative error-budget consumption, per tenant in window order — the
// table that localizes when a fault started charging a tenant's budget.
func (r *Result) BurnTable() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("slo burn-rate (window %dus)", int64(r.Window/sim.Microsecond)),
		Columns: []string{"window", "tenant", "offered", "delivered", "failed", "viol", "burn", "budget-used%"},
	}
	r.telemetryRows(func(w int, label string, tn Tenant, ts tenantSeries, cumViol, cumCompleted int64) {
		t.AddRow(
			label, tn.Name,
			fmt.Sprintf("%d", ts.offered.Cell(w)),
			fmt.Sprintf("%d", ts.delivered.Cell(w)),
			fmt.Sprintf("%d", ts.failed.Cell(w)),
			fmt.Sprintf("%d", ts.violations.Cell(w)),
			burnRate(ts.violations.Cell(w), ts.delivered.Cell(w)+ts.failed.Cell(w), tn.SLO.Quantile),
			budgetUsed(cumViol, cumCompleted, tn.SLO.Quantile),
		)
	})
	return t
}

// DecompTable renders the per-window latency decomposition: delivered
// count, mean delivered latency and the mean of each exact Decomp
// component — where each tenant's time went, window by window.
func (r *Result) DecompTable() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("latency decomposition (window %dus, means)", int64(r.Window/sim.Microsecond)),
		Columns: []string{"window", "tenant", "count", "lat-us", "arb-us", "wire-us", "detect-us", "retry-us"},
	}
	r.telemetryRows(func(w int, label string, tn Tenant, ts tenantSeries, _, _ int64) {
		c := ts.lat.Cell(w)
		if c.Count == 0 {
			return
		}
		t.AddRow(
			label, tn.Name,
			fmt.Sprintf("%d", c.Count),
			meanMicros(c),
			meanMicros(ts.wait[0].Cell(w)),
			meanMicros(ts.wait[1].Cell(w)),
			meanMicros(ts.wait[2].Cell(w)),
			meanMicros(ts.wait[3].Cell(w)),
		)
	})
	return t
}

// SeriesCSV exports the full per-window, per-tenant series as CSV: the
// burn-rate and decomposition views joined on (window, tenant), one
// header line, deterministic row order (window-major, mix tenant
// order). Machine-readable counterpart of BurnTable and DecompTable.
func (r *Result) SeriesCSV() string {
	var b strings.Builder
	b.WriteString("window_start_us,window_end_us,tenant,offered,delivered,failed,viol,burn,budget_used_pct,lat_mean_us,arb_mean_us,wire_mean_us,detect_mean_us,retry_mean_us\n")
	tel := r.Telemetry
	if tel == nil {
		return b.String()
	}
	us := int64(tel.Window() / sim.Microsecond)
	r.telemetryRows(func(w int, label string, tn Tenant, ts tenantSeries, cumViol, cumCompleted int64) {
		start := int64(w) * us
		end := fmt.Sprintf("%d", start+us)
		if w >= tel.Windows() {
			end = "" // open-ended tail cell: drain past the horizon
		}
		csvNum := func(s string) string {
			if s == "-" {
				return ""
			}
			return s
		}
		c := ts.lat.Cell(w)
		fmt.Fprintf(&b, "%d,%s,%s,%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s\n",
			start, end, tn.Name,
			ts.offered.Cell(w), ts.delivered.Cell(w), ts.failed.Cell(w), ts.violations.Cell(w),
			csvNum(burnRate(ts.violations.Cell(w), ts.delivered.Cell(w)+ts.failed.Cell(w), tn.SLO.Quantile)),
			csvNum(budgetUsed(cumViol, cumCompleted, tn.SLO.Quantile)),
			csvNum(meanMicros(c)),
			csvNum(meanMicros(ts.wait[0].Cell(w))),
			csvNum(meanMicros(ts.wait[1].Cell(w))),
			csvNum(meanMicros(ts.wait[2].Cell(w))),
			csvNum(meanMicros(ts.wait[3].Cell(w))),
		)
	})
	return b.String()
}
