package traffic

import (
	"strings"
	"testing"

	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// telemetryRun drives one System256 run with telemetry on and returns
// the Result; faultAt > 0 cuts node 9's plane-A uplink at that instant.
func telemetryRun(t *testing.T, kind psim.Kind, shards int, seed int64, faultAt sim.Time) *Result {
	t.Helper()
	eng, err := New(DefaultMix(), Options{
		Seed: seed, Topology: topo.System256(), Horizon: 200 * sim.Microsecond,
		Engine: kind, Shards: shards, Telemetry: true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if faultAt > 0 {
		eng.Network().CutWire(9, topo.NetworkA, faultAt)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// telemetryViews joins every rendered telemetry surface into one string
// so a single comparison pins them all.
func telemetryViews(r *Result) string {
	return r.Telemetry.Render() + "\n" + r.BurnTable().Render() + "\n" +
		r.DecompTable().Render() + "\n" + r.SeriesCSV()
}

// TestTelemetryByteIdenticalAcrossShards pins the tentpole contract:
// every rendered telemetry view — raw series dump, burn-rate table,
// decomposition table, CSV — is byte-identical across the sequential
// engine and the parallel engine at shard counts 1, 2 and 4, across
// seeds. Runs under -race in CI, so it also proves the per-shard
// samplers never share cells.
func TestTelemetryByteIdenticalAcrossShards(t *testing.T) {
	cfgs := []struct {
		name   string
		kind   psim.Kind
		shards int
	}{
		{"seq", psim.Seq, 1},
		{"par2", psim.Par, 2},
		{"par4", psim.Par, 4},
	}
	for _, seed := range []int64{1, 2, 3} {
		ref := telemetryViews(telemetryRun(t, cfgs[0].kind, cfgs[0].shards, seed, 0))
		if !strings.Contains(ref, "series     offered.") {
			t.Fatalf("seed %d: reference run recorded no offered series:\n%s", seed, ref)
		}
		for _, c := range cfgs[1:] {
			got := telemetryViews(telemetryRun(t, c.kind, c.shards, seed, 0))
			if got != ref {
				t.Fatalf("seed %d: %s telemetry diverges from %s:\n--- %s\n%s\n--- %s\n%s",
					seed, c.name, cfgs[0].name, cfgs[0].name, ref, c.name, got)
			}
		}
	}
}

// TestTelemetryDecompSumsExact pins the window-level form of the
// decomposition contract: in every (window, tenant) cell the four wait
// series sum exactly to the latency series, counts matching — the
// per-message identity survives windowed aggregation because both sides
// are indexed by the same completion instant.
func TestTelemetryDecompSumsExact(t *testing.T) {
	res := telemetryRun(t, psim.Par, 4, 1, 100*sim.Microsecond)
	tel := res.Telemetry
	for _, tn := range res.Mix.Tenants {
		ts := resolveTenantSeries(tel, tn.Name)
		var delivered int64
		for w := 0; w <= tel.Windows(); w++ {
			lat := ts.lat.Cell(w)
			delivered += lat.Count
			var sum int64
			for i := range ts.wait {
				c := ts.wait[i].Cell(w)
				if c.Count != lat.Count {
					t.Errorf("%s %s: wait[%d] count %d != latency count %d",
						tn.Name, tel.WindowLabel(w), i, c.Count, lat.Count)
				}
				sum += c.Sum
			}
			if sum != lat.Sum {
				t.Errorf("%s %s: wait sums %d != latency sum %d", tn.Name, tel.WindowLabel(w), sum, lat.Sum)
			}
		}
		if delivered == 0 {
			t.Errorf("%s: no deliveries in any window", tn.Name)
		}
		// The series totals agree with the run-level registry counters:
		// the windowed layer drops nothing.
		var st TenantStats
		for _, cand := range res.Tenants {
			if cand.Name == tn.Name {
				st = cand
			}
		}
		if got := ts.offered.Total(); got != st.Offered {
			t.Errorf("%s: series offered %d != counter %d", tn.Name, got, st.Offered)
		}
		if got := ts.delivered.Total(); got != st.Delivered {
			t.Errorf("%s: series delivered %d != counter %d", tn.Name, got, st.Delivered)
		}
		if got := ts.failed.Total(); got != st.Failed {
			t.Errorf("%s: series failed %d != counter %d", tn.Name, got, st.Failed)
		}
		if got := ts.violations.Total(); got != st.Violations {
			t.Errorf("%s: series violations %d != counter %d", tn.Name, got, st.Violations)
		}
	}
}

// TestTelemetryLocalizesMidRunFault pins the operational story: a
// plane-A uplink cut halfway through the horizon shows up in the
// windowed detect component — the post-cut windows carry detection time
// the pre-cut windows do not.
func TestTelemetryLocalizesMidRunFault(t *testing.T) {
	cut := 100 * sim.Microsecond
	res := telemetryRun(t, psim.Seq, 1, 1, cut)
	tel := res.Telemetry
	cutWin := int(cut / tel.Window())
	var before, after int64
	for _, tn := range res.Mix.Tenants {
		ts := resolveTenantSeries(tel, tn.Name)
		for w := 0; w <= tel.Windows(); w++ {
			d := ts.wait[2].Cell(w).Sum
			if w < cutWin {
				before += d
			} else {
				after += d
			}
		}
	}
	if after == 0 {
		t.Fatalf("mid-run cut at window %d left no detection time in later windows", cutWin)
	}
	if before >= after {
		t.Errorf("detection time before the cut (%d) >= after (%d); series does not localize the fault", before, after)
	}
}

// TestTelemetryOffByDefault pins the off state: no sampler on the
// result, views render empty (header-only CSV), and the run itself is
// unchanged by the disabled instruments.
func TestTelemetryOffByDefault(t *testing.T) {
	eng, err := New(DefaultMix(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Telemetry != nil {
		t.Fatalf("telemetry sampler present without Options.Telemetry")
	}
	if rows := res.BurnTable().Rows; len(rows) != 0 {
		t.Errorf("burn table has %d rows with telemetry off", len(rows))
	}
	if csv := res.SeriesCSV(); strings.Count(csv, "\n") != 1 {
		t.Errorf("series CSV not header-only with telemetry off:\n%s", csv)
	}
}

// TestZeroAllocTelemetryObserve pins the fire/done hot paths with live
// telemetry instruments: observing into the windowed series must not
// allocate (the grid is pre-allocated at sampler creation).
func TestZeroAllocTelemetryObserve(t *testing.T) {
	eng, err := New(DefaultMix(), Options{Seed: 3, Telemetry: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := eng.streams[0]
	allocs := testing.AllocsPerRun(1000, func() {
		s.tel.offered.Inc(s.at)
		s.tel.delivered.Inc(s.at)
		s.tel.lat.ObserveTime(s.at, sim.Microsecond)
		for i := range s.tel.wait {
			s.tel.wait[i].ObserveTime(s.at, sim.Nanosecond)
		}
	})
	if allocs != 0 {
		t.Fatalf("telemetry observation allocates %.1f per message; the windowed hot path must not allocate", allocs)
	}
}
