package traffic

import (
	"testing"

	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// drainSchedule advances a fresh stream's arrival process n steps and
// returns the arrival instants — the pure-function-of-seed schedule the
// determinism harness pins.
func drainSchedule(t *testing.T, seed int64, tenant, node, n int) []sim.Time {
	t.Helper()
	eng, err := New(DefaultMix(), Options{Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mix := DefaultMix()
	s := newStream(&eng.core, mix.Tenants[tenant], tenant, node, eng.opt.Topology.Nodes(), seed, &tenantCounters{}, tenantSeries{})
	out := make([]sim.Time, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s.at)
		s.advance()
	}
	return out
}

func TestArrivalScheduleDeterministic(t *testing.T) {
	for tenant := 0; tenant < 4; tenant++ {
		a := drainSchedule(t, 7, tenant, 3, 200)
		b := drainSchedule(t, 7, tenant, 3, 200)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tenant %d: schedule diverged at %d: %v vs %v", tenant, i, a[i], b[i])
			}
		}
		// Strictly increasing: the 1 ns gap floor forbids same-instant
		// refires.
		for i := 1; i < len(a); i++ {
			if a[i] <= a[i-1] {
				t.Fatalf("tenant %d: non-increasing arrivals at %d: %v then %v", tenant, i, a[i-1], a[i])
			}
		}
	}
	// Different seeds, tenants and nodes draw different schedules.
	base := drainSchedule(t, 7, 0, 3, 50)
	for name, other := range map[string][]sim.Time{
		"seed":   drainSchedule(t, 8, 0, 3, 50),
		"tenant": drainSchedule(t, 7, 1, 3, 50),
		"node":   drainSchedule(t, 7, 0, 4, 50),
	} {
		same := true
		for i := range base {
			if base[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("schedule identical across %s change", name)
		}
	}
}

func TestZeroAllocSampler(t *testing.T) {
	eng, err := New(DefaultMix(), Options{Seed: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, s := range []*stream{eng.streams[0], eng.streams[len(eng.streams)-1]} {
		s := s
		allocs := testing.AllocsPerRun(1000, func() {
			_ = s.sampleSize()
			_ = s.sampleDst()
			s.advance()
		})
		if allocs != 0 {
			t.Fatalf("sampler allocates %.1f per message; the open-loop hot path must not allocate", allocs)
		}
	}
}

func TestMixValidate(t *testing.T) {
	cases := []Mix{
		{Name: "empty"},
		{Name: "unnamed", Tenants: []Tenant{{Arrival: Arrival{MeanGap: sim.Microsecond}, Sizes: Sizes{Kind: Fixed, Bytes: 1}}}},
		{Name: "dup", Tenants: []Tenant{
			{Name: "a", Arrival: Arrival{MeanGap: sim.Microsecond}, Sizes: Sizes{Kind: Fixed, Bytes: 1}},
			{Name: "a", Arrival: Arrival{MeanGap: sim.Microsecond}, Sizes: Sizes{Kind: Fixed, Bytes: 1}},
		}},
		{Name: "gap", Tenants: []Tenant{{Name: "a", Sizes: Sizes{Kind: Fixed, Bytes: 1}}}},
		{Name: "onoff", Tenants: []Tenant{{Name: "a", Arrival: Arrival{Kind: OnOff, MeanGap: sim.Microsecond}, Sizes: Sizes{Kind: Fixed, Bytes: 1}}}},
		{Name: "size", Tenants: []Tenant{{Name: "a", Arrival: Arrival{MeanGap: sim.Microsecond}}}},
		{Name: "pareto", Tenants: []Tenant{{Name: "a", Arrival: Arrival{MeanGap: sim.Microsecond}, Sizes: Sizes{Kind: Pareto, MinBytes: 8, MaxBytes: 4}}}},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %q: want validation error, got nil", m.Name)
		}
	}
	for _, m := range Mixes() {
		if err := m.Validate(); err != nil {
			t.Errorf("mix %q: %v", m.Name, err)
		}
	}
	if _, err := MixByName("default"); err != nil {
		t.Errorf("MixByName(default): %v", err)
	}
	if _, err := MixByName("nope"); err == nil {
		t.Errorf("MixByName(nope): want error")
	}
}

func TestServiceAccounting(t *testing.T) {
	eng, err := New(DefaultMix(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var offered int64
	for _, ts := range res.Tenants {
		if ts.Offered == 0 {
			t.Errorf("tenant %s offered nothing over the horizon", ts.Name)
		}
		if ts.Offered != ts.Delivered+ts.Failed {
			t.Errorf("tenant %s: offered %d != delivered %d + failed %d", ts.Name, ts.Offered, ts.Delivered, ts.Failed)
		}
		if ts.Violations < ts.Failed {
			t.Errorf("tenant %s: violations %d below failed %d", ts.Name, ts.Violations, ts.Failed)
		}
		if ts.Delivered > 0 && (ts.P50 <= 0 || ts.P99 < ts.P50 || ts.P999 < ts.P99) {
			t.Errorf("tenant %s: malformed quantiles p50=%v p99=%v p999=%v", ts.Name, ts.P50, ts.P99, ts.P999)
		}
		if ts.Failed == 0 && ts.DeliveredBytes != ts.OfferedBytes {
			t.Errorf("tenant %s: no failures but delivered bytes %d != offered bytes %d", ts.Name, ts.DeliveredBytes, ts.OfferedBytes)
		}
		offered += ts.Offered
	}
	// The datapath counts launched attempts: at least one per offered
	// message, more when open-loop FIFO stalls force a failover retry.
	if sent := eng.PartNetwork().MessagesSent(); sent < offered {
		t.Errorf("datapath launched %d attempts, below %d offered messages", sent, offered)
	}
	if _, err := eng.Run(); err == nil {
		t.Errorf("second Run: want error")
	}
}

func TestFaultedRunDegradesService(t *testing.T) {
	run := func(cut bool) *Result {
		eng, err := New(DefaultMix(), Options{Seed: 1})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if cut {
			// Sever several plane-A NI links before the run: failover
			// pushes those nodes' traffic to plane B.
			for node := 0; node < 4; node++ {
				eng.Network().CutWire(node, topo.NetworkA, 0)
			}
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	clean, faulted := run(false), run(true)
	if fo := faulted.PlaneA.Get("failed-over"); fo == 0 {
		t.Fatalf("cut plane-A links but nothing failed over:\n%s", faulted.PlaneA.Render())
	}
	var cleanViol, faultViol int64
	for i := range clean.Tenants {
		cleanViol += clean.Tenants[i].Violations
		faultViol += faulted.Tenants[i].Violations
	}
	if faultViol < cleanViol {
		t.Errorf("faulted run has fewer SLO violations (%d) than clean (%d)", faultViol, cleanViol)
	}
}

func TestRunByteIdenticalAcrossEngines(t *testing.T) {
	type cfg struct {
		name   string
		kind   psim.Kind
		shards int
	}
	run := func(c cfg, tp *topo.Topology, seed int64, horizon sim.Time) (string, string) {
		eng, err := New(DefaultMix(), Options{
			Seed: seed, Topology: tp, Horizon: horizon, Engine: c.kind, Shards: c.shards,
		})
		if err != nil {
			t.Fatalf("%s: New: %v", c.name, err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", c.name, err)
		}
		return res.Render(), res.Registry.Render()
	}
	// Cluster8 is a single leaf crossbar (unshardable); System256 is the
	// partitioned machine, exercised at shards 1, 2 and 4.
	for _, tc := range []struct {
		topo *topo.Topology
		cfgs []cfg
	}{
		{topo.System256(), []cfg{
			{"seq", psim.Seq, 1},
			{"par2", psim.Par, 2},
			{"par4", psim.Par, 4},
		}},
	} {
		horizon := 200 * sim.Microsecond
		for _, seed := range []int64{1, 7} {
			refReport, refReg := run(tc.cfgs[0], tc.topo, seed, horizon)
			for _, c := range tc.cfgs[1:] {
				rep, reg := run(c, tc.topo, seed, horizon)
				if rep != refReport {
					t.Fatalf("%s seed %d: %s report diverges from %s:\n--- %s\n%s\n--- %s\n%s",
						tc.topo.Name(), seed, c.name, tc.cfgs[0].name, tc.cfgs[0].name, refReport, c.name, rep)
				}
				if reg != refReg {
					t.Fatalf("%s seed %d: %s registry diverges from %s", tc.topo.Name(), seed, c.name, tc.cfgs[0].name)
				}
			}
		}
	}
}
