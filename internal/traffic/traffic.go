// Package traffic is the open-loop multi-tenant traffic engine: the
// layer that turns the simulator from "runs a benchmark" into "serves a
// workload". Where every campaign before it drove one closed-loop
// program, this package multiplexes several concurrent tenants — a halo
// exchange, a butterfly reduction, a task-tree token stream, a bursty
// background OS load — onto one machine through the partitioned
// split-phase datapath (netsim.SendAsync), the way the paper's Section 4
// motivates the general-purpose fabric: many simultaneously active
// communication patterns, not one benchmark at a time.
//
// Open-loop means arrivals do not wait for completions: each (tenant,
// node) pair owns a seeded arrival process (deterministic Poisson or
// bursty on-off) that keeps offering messages at its own rate whatever
// the network does with the previous ones. Under a fault campaign this
// is the harsher and more realistic regime — a failed-over plane keeps
// receiving offered load while it detects and retries — and it is what
// makes the delivered-latency tail, not the mean, the quantity of
// interest.
//
// Every tenant declares an SLO: a delivered-latency bound at a
// percentile. The engine accounts per-tenant offered/delivered/failed
// traffic and SLO violations through internal/metrics counters, and
// reads p50/p99/p999 delivered latency straight off the per-tenant
// histograms the netsim send path feeds (SendAsyncTenant labels), so
// the report is a pure function of the folded registry — byte-identical
// across --engine seq|par and every aligned shard count, by the same
// commutative-fold argument as the rest of the partitioned datapath.
package traffic

import (
	"fmt"

	"powermanna/internal/sim"
)

// ArrivalKind selects a per-(tenant, node) arrival process.
type ArrivalKind int

const (
	// Poisson offers messages with exponentially distributed
	// inter-arrival gaps of mean MeanGap — memoryless steady load.
	Poisson ArrivalKind = iota
	// OnOff alternates exponentially distributed on-periods (mean
	// OnMean), during which arrivals follow MeanGap, with off-periods
	// (mean OffMean) of silence — the classic bursty source.
	OnOff
)

// String names the kind as mix tables spell it.
func (k ArrivalKind) String() string {
	if k == OnOff {
		return "on-off"
	}
	return "poisson"
}

// Arrival describes one tenant's per-node arrival process. All
// randomness is drawn from a per-(seed, tenant, node) stream, so the
// whole schedule is a pure function of the seed.
type Arrival struct {
	Kind ArrivalKind
	// MeanGap is the mean inter-arrival gap (while on, for OnOff).
	MeanGap sim.Time
	// OnMean/OffMean are the mean burst and silence durations (OnOff).
	OnMean, OffMean sim.Time
}

// SizeKind selects a message-size distribution.
type SizeKind int

const (
	// Fixed offers constant Bytes-sized messages.
	Fixed SizeKind = iota
	// Pareto offers bounded-Pareto sizes on [MinBytes, MaxBytes] with
	// tail index Alpha — the heavy-tailed mix real networks carry: most
	// messages small, rare ones orders of magnitude larger.
	Pareto
)

// Sizes describes a tenant's message-size distribution.
type Sizes struct {
	Kind SizeKind
	// Bytes is the fixed payload size (Fixed).
	Bytes int
	// MinBytes/MaxBytes bound the Pareto support; Alpha is the tail
	// index (smaller = heavier tail; 1 < Alpha < 2 has infinite
	// variance on the unbounded law).
	MinBytes, MaxBytes int
	Alpha              float64
}

// String renders the size law for mix tables.
func (s Sizes) String() string {
	if s.Kind == Fixed {
		return fmt.Sprintf("fixed %dB", s.Bytes)
	}
	return fmt.Sprintf("pareto %d..%dB a=%.1f", s.MinBytes, s.MaxBytes, s.Alpha)
}

// Pattern selects a tenant's destination pattern — the communication
// shape of the application the tenant stands for.
type Pattern int

const (
	// Uniform picks a uniformly random peer per message.
	Uniform Pattern = iota
	// Halo alternates the two ring neighbours (±1 mod nodes) — the 1D
	// heat solver's exchange.
	Halo
	// Butterfly cycles the XOR partners (src ^ 2^k) — the recursive-
	// doubling allreduce shape.
	Butterfly
	// Tree cycles the node's binary-tree neighbours (parent and
	// children) — the fork-join task-tree token flow.
	Tree
	// Pair fixes the antipodal partner ((src + nodes/2) mod nodes) —
	// the OS stream's rotating-pair shape, pinned per node.
	Pair
)

// String names the pattern as mix tables spell it.
func (p Pattern) String() string {
	switch p {
	case Halo:
		return "halo"
	case Butterfly:
		return "butterfly"
	case Tree:
		return "tree"
	case Pair:
		return "pair"
	default:
		return "uniform"
	}
}

// SLO is a tenant's service-level objective: delivered latency at the
// given quantile must stay at or under Bound. Failed messages always
// violate; delivered messages violate when their individual latency
// exceeds Bound (the violation counter is exact, not bucket-derived).
type SLO struct {
	Quantile float64
	Bound    sim.Time
}

// String renders the objective as service tables spell it, e.g.
// "p99<=40us".
func (s SLO) String() string {
	return fmt.Sprintf("p%s<=%dus", quantileLabel(s.Quantile), int64(s.Bound/sim.Microsecond))
}

// quantileLabel renders 0.99 as "99", 0.999 as "999", 0.5 as "50".
func quantileLabel(q float64) string {
	switch q {
	case 0.5:
		return "50"
	case 0.99:
		return "99"
	case 0.999:
		return "999"
	default:
		return fmt.Sprintf("%g", q*100)
	}
}

// Tenant is one workload sharing the machine: a name (its metric
// label), an arrival process, a size distribution, a destination
// pattern and an SLO.
type Tenant struct {
	Name    string
	Arrival Arrival
	Sizes   Sizes
	Pattern Pattern
	SLO     SLO
}

// Mix is a named set of tenants multiplexed onto one machine.
type Mix struct {
	Name        string
	Description string
	Tenants     []Tenant
}

// DefaultMix is the four-tenant reference mix: the repo's three
// application shapes plus a bursty background OS stream, rates chosen
// so the machine runs busy but unsaturated at the default horizon.
func DefaultMix() Mix {
	return Mix{
		Name:        "default",
		Description: "heat halo + allreduce butterfly + fib task tree + bursty OS background",
		Tenants: []Tenant{
			{
				Name:    "heat",
				Arrival: Arrival{Kind: Poisson, MeanGap: 80 * sim.Microsecond},
				Sizes:   Sizes{Kind: Fixed, Bytes: 192},
				Pattern: Halo,
				SLO:     SLO{Quantile: 0.99, Bound: 40 * sim.Microsecond},
			},
			{
				Name:    "allreduce",
				Arrival: Arrival{Kind: Poisson, MeanGap: 160 * sim.Microsecond},
				Sizes:   Sizes{Kind: Fixed, Bytes: 64},
				Pattern: Butterfly,
				SLO:     SLO{Quantile: 0.99, Bound: 40 * sim.Microsecond},
			},
			{
				Name:    "fib",
				Arrival: Arrival{Kind: OnOff, MeanGap: 20 * sim.Microsecond, OnMean: 40 * sim.Microsecond, OffMean: 200 * sim.Microsecond},
				Sizes:   Sizes{Kind: Fixed, Bytes: 24},
				Pattern: Tree,
				SLO:     SLO{Quantile: 0.999, Bound: 100 * sim.Microsecond},
			},
			{
				Name:    "os",
				Arrival: Arrival{Kind: OnOff, MeanGap: 40 * sim.Microsecond, OnMean: 40 * sim.Microsecond, OffMean: 200 * sim.Microsecond},
				Sizes:   Sizes{Kind: Pareto, MinBytes: 128, MaxBytes: 2048, Alpha: 1.4},
				Pattern: Pair,
				SLO:     SLO{Quantile: 0.5, Bound: 25 * sim.Microsecond},
			},
		},
	}
}

// BurstyMix is an all-on-off stress variant: every tenant bursts, sizes
// run heavier-tailed, SLOs sit tighter — the mix to study tail collapse
// under faults.
func BurstyMix() Mix {
	return Mix{
		Name:        "bursty",
		Description: "three bursty heavy-tailed tenants with tight tail SLOs",
		Tenants: []Tenant{
			{
				Name:    "web",
				Arrival: Arrival{Kind: OnOff, MeanGap: 10 * sim.Microsecond, OnMean: 50 * sim.Microsecond, OffMean: 100 * sim.Microsecond},
				Sizes:   Sizes{Kind: Pareto, MinBytes: 64, MaxBytes: 8192, Alpha: 1.2},
				Pattern: Uniform,
				SLO:     SLO{Quantile: 0.99, Bound: 30 * sim.Microsecond},
			},
			{
				Name:    "shuffle",
				Arrival: Arrival{Kind: OnOff, MeanGap: 20 * sim.Microsecond, OnMean: 80 * sim.Microsecond, OffMean: 240 * sim.Microsecond},
				Sizes:   Sizes{Kind: Pareto, MinBytes: 256, MaxBytes: 16384, Alpha: 1.5},
				Pattern: Butterfly,
				SLO:     SLO{Quantile: 0.99, Bound: 60 * sim.Microsecond},
			},
			{
				Name:    "ctrl",
				Arrival: Arrival{Kind: OnOff, MeanGap: 8 * sim.Microsecond, OnMean: 24 * sim.Microsecond, OffMean: 96 * sim.Microsecond},
				Sizes:   Sizes{Kind: Fixed, Bytes: 32},
				Pattern: Pair,
				SLO:     SLO{Quantile: 0.999, Bound: 50 * sim.Microsecond},
			},
		},
	}
}

// Mixes returns the named mixes of the package, in a fixed order.
func Mixes() []Mix { return []Mix{DefaultMix(), BurstyMix()} }

// MixByName resolves a mix by its name.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("traffic: unknown mix %q", name)
}

// Solo extracts one tenant as a single-tenant mix (named
// "<mix>/<tenant>") — the isolation run: the same workload shape and
// SLO with the rest of the mix's load removed, so a telemetry series
// next to the full mix's separates self-inflicted latency from
// cross-tenant contention.
func (m Mix) Solo(tenant string) (Mix, error) {
	for _, tn := range m.Tenants {
		if tn.Name == tenant {
			return Mix{
				Name:        m.Name + "/" + tenant,
				Description: tn.Name + " in isolation (from mix " + m.Name + ")",
				Tenants:     []Tenant{tn},
			}, nil
		}
	}
	return Mix{}, fmt.Errorf("traffic: mix %q has no tenant %q", m.Name, tenant)
}

// Validate checks a mix is runnable: at least one tenant, unique
// non-empty names (they become metric labels), positive rates and
// well-formed size distributions.
func (m Mix) Validate() error {
	if len(m.Tenants) == 0 {
		return fmt.Errorf("traffic: mix %q has no tenants", m.Name)
	}
	seen := make(map[string]bool, len(m.Tenants))
	for _, tn := range m.Tenants {
		if tn.Name == "" {
			return fmt.Errorf("traffic: mix %q has an unnamed tenant", m.Name)
		}
		if seen[tn.Name] {
			return fmt.Errorf("traffic: mix %q repeats tenant %q", m.Name, tn.Name)
		}
		seen[tn.Name] = true
		if tn.Arrival.MeanGap <= 0 {
			return fmt.Errorf("traffic: tenant %q needs a positive mean gap", tn.Name)
		}
		if tn.Arrival.Kind == OnOff && (tn.Arrival.OnMean <= 0 || tn.Arrival.OffMean <= 0) {
			return fmt.Errorf("traffic: on-off tenant %q needs positive on/off means", tn.Name)
		}
		switch tn.Sizes.Kind {
		case Fixed:
			if tn.Sizes.Bytes <= 0 {
				return fmt.Errorf("traffic: tenant %q needs a positive fixed size", tn.Name)
			}
		case Pareto:
			if tn.Sizes.MinBytes <= 0 || tn.Sizes.MaxBytes < tn.Sizes.MinBytes || tn.Sizes.Alpha <= 0 {
				return fmt.Errorf("traffic: tenant %q has a malformed pareto law", tn.Name)
			}
		default:
			return fmt.Errorf("traffic: tenant %q has an unknown size kind", tn.Name)
		}
	}
	return nil
}
