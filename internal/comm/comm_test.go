package comm

import (
	"testing"

	"powermanna/internal/sim"
)

func TestAllSystemsSane(t *testing.T) {
	for _, s := range []System{NewPowerMANNA(), BIP(), FM()} {
		if err := Check(s); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestSizes(t *testing.T) {
	got := Sizes(4, 64)
	want := []int{4, 8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
}

// The paper's headline: "8 bytes are transferred in 2.75 µs, whereas BIP
// takes 6.4 µs and FM 9.2 µs."
func TestFigure9Anchors(t *testing.T) {
	pm := NewPowerMANNA().OneWayLatency(8)
	if pm < 2500*sim.Nanosecond || pm > 3000*sim.Nanosecond {
		t.Errorf("PowerMANNA latency(8B) = %v, want ~2.75us", pm)
	}
	bip := BIP().OneWayLatency(8)
	if bip < 6200*sim.Nanosecond || bip > 6600*sim.Nanosecond {
		t.Errorf("BIP latency(8B) = %v, want ~6.4us", bip)
	}
	fm := FM().OneWayLatency(8)
	if fm < 9000*sim.Nanosecond || fm > 9400*sim.Nanosecond {
		t.Errorf("FM latency(8B) = %v, want ~9.2us", fm)
	}
	// PowerMANNA clearly outperforms both for short messages.
	if !(pm < bip && bip < fm) {
		t.Errorf("short-message ordering violated: pm=%v bip=%v fm=%v", pm, bip, fm)
	}
}

// Section 1: "less than 4 µs latency for small messages" even across the
// large system — our cluster pair must be well under that.
func TestSmallMessageLatencyBound(t *testing.T) {
	pm := NewPowerMANNA()
	for _, n := range []int{4, 8, 16, 32, 64} {
		if l := pm.OneWayLatency(n); l >= 4*sim.Microsecond {
			t.Errorf("latency(%d) = %v, want < 4us", n, l)
		}
	}
}

// Figure 11: PowerMANNA unidirectional bandwidth saturates at the
// 60 MB/s single-link limit; BIP reaches ~126 MB/s on Myrinet.
func TestFigure11Shapes(t *testing.T) {
	pm := NewPowerMANNA()
	uni := pm.UniBandwidth(64 << 10)
	if uni < 50e6 || uni > 61e6 {
		t.Errorf("PowerMANNA uni(64K) = %g, want ~60 MB/s", uni)
	}
	bip := BIP().UniBandwidth(64 << 10)
	if bip < 115e6 || bip > 130e6 {
		t.Errorf("BIP uni(64K) = %g, want ~126 MB/s", bip)
	}
	// Crossover: PowerMANNA wins small, BIP wins large.
	if pm.UniBandwidth(64) <= BIP().UniBandwidth(64) {
		t.Error("PowerMANNA should beat BIP at 64 B")
	}
	if uni >= bip {
		t.Error("BIP should beat PowerMANNA at 64 KB")
	}
}

// Figure 12: bidirectional bandwidth falls short of 2× unidirectional —
// the paper blames the four-line FIFOs forcing driver turnarounds.
func TestFigure12BidirectionalShortfall(t *testing.T) {
	pm := NewPowerMANNA()
	uni := pm.UniBandwidth(64 << 10)
	bi := pm.BiBandwidth(64 << 10)
	if bi >= 2*uni*0.95 {
		t.Errorf("bi = %g vs 2*uni = %g: expected a clear shortfall", bi, 2*uni)
	}
	if bi <= uni {
		t.Errorf("bi = %g should still beat one direction (%g)", bi, uni)
	}
}

// The paper: "This overhead could be significantly reduced if larger
// FIFO buffers were implemented." Quadrupling the FIFO must recover
// most of the lost bidirectional bandwidth.
func TestFIFOSizeAblation(t *testing.T) {
	small := NewPowerMANNA().BiBandwidth(64 << 10)
	p := DefaultPMParams()
	p.FIFOBytes *= 4
	big := NewPowerMANNAWith(p).BiBandwidth(64 << 10)
	if big <= small*1.1 {
		t.Errorf("4x FIFO: bi %g vs %g, want >10%% recovery", big, small)
	}
	if big > 122e6 {
		t.Errorf("bi %g exceeds the 120 MB/s dual-direction link limit", big)
	}
}

// Dual links: the duplicated network carries twice the unidirectional
// stream (240 MB/s per the paper counts both links, both directions).
func TestDualLinkAblation(t *testing.T) {
	p := DefaultPMParams()
	p.Links = 2
	dual := NewPowerMANNAWith(p)
	uni := dual.UniBandwidth(64 << 10)
	if uni < 100e6 || uni > 122e6 {
		t.Errorf("dual-link uni = %g, want ~120 MB/s", uni)
	}
	if dual.Name() != "PowerMANNA-dual" {
		t.Errorf("name = %q", dual.Name())
	}
}

func TestGapMonotoneAndWireBound(t *testing.T) {
	pm := NewPowerMANNA()
	prev := sim.Time(0)
	for _, n := range Sizes(4, 256<<10) {
		g := pm.Gap(n)
		if g < prev {
			t.Errorf("gap(%d) = %v decreased", n, g)
		}
		prev = g
		// Gap can never beat the wire.
		wire := sim.Time(n) * 16667 / 1000 * sim.Nanosecond
		if g < wire {
			t.Errorf("gap(%d) = %v below wire time %v", n, g, wire)
		}
	}
}

func TestPMDeterminism(t *testing.T) {
	a := NewPowerMANNA().BiBandwidth(4096)
	b := NewPowerMANNA().BiBandwidth(4096)
	if a != b {
		t.Errorf("non-deterministic bi bandwidth: %g vs %g", a, b)
	}
}

func TestDriverSimPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size 0 accepted")
		}
	}()
	runDriverSim(DefaultPMParams(), 0, false)
}

func TestLatencyBreakdownSumsToLatency(t *testing.T) {
	pm := NewPowerMANNA()
	for _, n := range []int{8, 256, 4096} {
		var sum sim.Time
		for _, s := range pm.LatencyBreakdown(n) {
			sum += s.Time
		}
		if got := pm.OneWayLatency(n); sum != got {
			t.Errorf("breakdown sum %v != latency %v at %dB", sum, got, n)
		}
	}
	// The budget names the paper's path, nothing NIC-like.
	names := map[string]bool{}
	for _, s := range pm.LatencyBreakdown(8) {
		names[s.Name] = true
	}
	for _, want := range []string{"user-level send (PIO setup)", "route setup + wire (cut-through)", "user-level receive return"} {
		if !names[want] {
			t.Errorf("breakdown missing stage %q", want)
		}
	}
}
