package comm

import (
	"fmt"

	"powermanna/internal/sim"
)

// runDriverSim simulates a steady stream of n-byte messages between two
// PowerMANNA nodes at FIFO granularity and returns the achieved payload
// bandwidth per direction (bytes/second).
//
// The model has five actors: two driver CPUs (one per node, each a
// single thread doing program-controlled I/O) and two link directions,
// plus the four link-interface FIFOs between them. The link moves bytes
// whenever its upstream send FIFO holds data and its downstream receive
// FIFO has space — the stop-signal flow control of Section 3.2. The CPUs
// run the driver loop of Section 5.2: fill the send FIFO (at most its
// four lines), turn around, test the receive FIFO, drain what arrived,
// turn around again. In unidirectional mode each CPU only works its own
// side and polls instead of switching.
//
// Time advances in fixed 25 ns steps: link transfers are fluid within a
// step; CPU actions are discrete with their own durations.
func runDriverSim(p PMParams, msgBytes int, bidirectional bool) float64 {
	if msgBytes <= 0 {
		panic(fmt.Sprintf("comm: message size %d", msgBytes))
	}
	const (
		stepNs   = 25.0
		lineSize = 64
		// header bytes per message on the wire (route, length, CRC, close
		// for the one-crossbar cluster path).
		hdrBytes = 6
	)
	total := 20 * msgBytes
	if total < 256<<10 {
		total = 256 << 10
	}
	if total > 2<<20 {
		total = (2 << 20) / msgBytes * msgBytes
		if total == 0 {
			total = msgBytes
		}
	}

	// Effective payload rate of one link direction: 60 MB/s scaled by
	// payload share of the wire bytes, times the striped link count.
	wireRate := 60e6 * float64(msgBytes) / float64(msgBytes+hdrBytes) * float64(p.Links) // B/s
	ratePerStep := wireRate * stepNs * 1e-9

	cycleNs := float64(p.CPUClock.Period) / float64(sim.Nanosecond)
	pioWriteNs := float64(p.PIOWriteLine) / float64(sim.Nanosecond)
	pioReadNs := float64(p.PIOReadLine) / float64(sim.Nanosecond)
	switchNs := float64(p.DirectionSwitchCycles) * cycleNs
	pollNs := float64(p.PollCycles) * cycleNs
	sendMsgNs := float64(p.GapSendCycles) * cycleNs
	recvMsgNs := float64(p.GapRecvCycles) * cycleNs
	fifoCap := p.FIFOBytes * p.Links

	const (
		phaseFill = iota
		phaseDrain
	)
	type cpu struct {
		sendLeft  int // payload bytes not yet pushed
		recvLeft  int // payload bytes not yet drained
		sendFIFO  int // occupancy of this node's send FIFO
		recvFIFO  int // occupancy of this node's receive FIFO
		busyUntil float64
		phase     int
		sentInMsg int
		recvInMsg int
	}

	nodes := [2]*cpu{
		{sendLeft: total, recvLeft: total},
		{recvLeft: total},
	}
	if bidirectional {
		nodes[1].sendLeft = total
	} else {
		nodes[0].recvLeft = 0 // node 0 only sends, node 1 only receives
		nodes[1].recvLeft = total
		nodes[1].phase = phaseDrain
	}

	now := 0.0
	var credit [2]float64
	maxSteps := 200_000_000
	for step := 0; step < maxSteps; step++ {
		// Links: node i's send FIFO drains toward peer's receive FIFO.
		// Rate credit accrues only while the wire has work and the stop
		// signal is clear; whole bytes move.
		for i := 0; i < 2; i++ {
			src, dst := nodes[i], nodes[1-i]
			space := fifoCap - dst.recvFIFO
			if src.sendFIFO <= 0 || space <= 0 {
				credit[i] = 0 // idle or stopped wire accrues nothing
				continue
			}
			credit[i] += ratePerStep
			move := int(credit[i])
			if move > src.sendFIFO {
				move = src.sendFIFO
			}
			if move > space {
				move = space
			}
			if move > 0 {
				credit[i] -= float64(move)
				src.sendFIFO -= move
				dst.recvFIFO += move
			}
		}

		// CPUs.
		for i := 0; i < 2; i++ {
			c := nodes[i]
			if now < c.busyUntil {
				continue
			}
			switch {
			case c.phase == phaseFill && c.sendLeft > 0:
				if fifoCap-c.sendFIFO >= lineSize || (c.sendLeft < lineSize && fifoCap-c.sendFIFO >= c.sendLeft) {
					push := lineSize
					if c.sendLeft < push {
						push = c.sendLeft
					}
					cost := pioWriteNs
					if c.sentInMsg == 0 {
						cost += sendMsgNs
					}
					c.sentInMsg += push
					if c.sentInMsg >= msgBytes {
						c.sentInMsg = 0
					}
					c.sendFIFO += push
					c.sendLeft -= push
					c.busyUntil = now + cost
				} else if bidirectional && c.recvLeft > 0 {
					c.phase = phaseDrain
					c.busyUntil = now + switchNs
				} else {
					c.busyUntil = now + pollNs // wait for FIFO space
				}
			case c.phase == phaseFill: // nothing left to send
				if bidirectional && c.recvLeft > 0 {
					c.phase = phaseDrain
					c.busyUntil = now + switchNs
				} else {
					c.busyUntil = now + pollNs
				}
			case c.recvLeft > 0 && (c.recvFIFO >= lineSize || (c.recvFIFO > 0 && c.recvLeft <= c.recvFIFO)):
				drain := lineSize
				if c.recvFIFO < drain {
					drain = c.recvFIFO
				}
				if c.recvLeft < drain {
					drain = c.recvLeft
				}
				cost := pioReadNs
				if c.recvInMsg == 0 {
					cost += recvMsgNs
				}
				c.recvInMsg += drain
				if c.recvInMsg >= msgBytes {
					c.recvInMsg = 0
				}
				c.recvFIFO -= drain
				c.recvLeft -= drain
				c.busyUntil = now + cost
			default: // drain phase, nothing available
				if c.sendLeft > 0 {
					c.phase = phaseFill
					c.busyUntil = now + switchNs
				} else {
					c.busyUntil = now + pollNs
				}
			}
		}

		now += stepNs
		done := true
		for i := 0; i < 2; i++ {
			if nodes[i].sendLeft > 0 || nodes[i].recvLeft > 0 || nodes[i].sendFIFO > 0 {
				done = false
			}
		}
		if done {
			break
		}
	}
	if now <= 0 {
		return 0
	}
	return float64(total) / (now * 1e-9)
}
