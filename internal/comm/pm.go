package comm

import (
	"powermanna/internal/link"
	"powermanna/internal/netsim"
	"powermanna/internal/ni"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// PMParams are the PowerMANNA driver and interface parameters. Hardware
// geometry comes from the paper; the software costs are calibrated,
// anchored on the paper's measured 2.75 µs one-way latency for 8 bytes
// and the Figure 12 bidirectional shortfall it attributes to the
// four-line FIFOs.
type PMParams struct {
	// CPUClock is the driving processor's clock (the MPC620 at 180 MHz).
	CPUClock sim.Clock
	// SendSetupCycles is the user-level send path before the first FIFO
	// word: argument checks, route lookup, header compose. Calibrated.
	SendSetupCycles int64
	// RecvReturnCycles is the receive path after the last FIFO word:
	// CRC status check, length handling, return to user. Calibrated.
	RecvReturnCycles int64
	// PollCycles is one status-register poll (an uncached load's round
	// trip through the switch to the link interface). Calibrated.
	PollCycles int64
	// GapSendCycles is the per-message sender work at saturation (no
	// blocking receive path in the loop). Calibrated.
	GapSendCycles int64
	// GapRecvCycles is the per-message receiver work at saturation.
	GapRecvCycles int64
	// PIOWriteLine is the time to gather-write one 64-byte line into the
	// send FIFO through the node switch (burst store).
	PIOWriteLine sim.Time
	// PIOReadLine is the time to drain one 64-byte line from the receive
	// FIFO (burst load; slower than the write — loads are not pipelined).
	PIOReadLine sim.Time
	// DirectionSwitchCycles is the driver turnaround between filling the
	// send FIFO and draining the receive FIFO in bidirectional traffic:
	// synchronization barriers between cached and uncached accesses plus
	// the status read and loop turnaround. Calibrated to reproduce the
	// Figure 12 shortfall the paper attributes to the small FIFOs.
	DirectionSwitchCycles int64
	// FIFOBytes is the per-direction link-interface FIFO (4 cache lines).
	FIFOBytes int
	// Links is the number of link interfaces striped over (1 in the
	// paper's measurements; 2 for the dual-link ablation).
	Links int
}

// DefaultPMParams returns the calibrated PowerMANNA parameter set.
func DefaultPMParams() PMParams {
	return PMParams{
		CPUClock:              sim.ClockMHz(180),
		SendSetupCycles:       200, // calibrated → 1.11 µs
		RecvReturnCycles:      150, // calibrated → 0.83 µs
		PollCycles:            40,  // calibrated → 0.22 µs
		GapSendCycles:         80,
		GapRecvCycles:         60,
		PIOWriteLine:          100 * sim.Nanosecond,
		PIOReadLine:           150 * sim.Nanosecond,
		DirectionSwitchCycles: 380, // calibrated → 2.11 µs per turnaround
		FIFOBytes:             ni.FIFOBytes,
		Links:                 1,
	}
}

// PMSystem is the measured PowerMANNA pair: two nodes of a Figure 5a
// cluster communicating through one crossbar. Sends go through a
// fault-aware netsim.Transport, so the measured pair runs the same
// datapath the fault campaigns exercise; path is kept alongside for the
// wire-byte arithmetic of the gap model.
type PMSystem struct {
	params PMParams
	net    *netsim.Network
	tp     *netsim.Transport
	path   topo.Path
}

// NewPowerMANNA builds the measured configuration (nodes 0 and 1 of an
// eight-node cluster, network plane A preferred).
func NewPowerMANNA() *PMSystem { return NewPowerMANNAWith(DefaultPMParams()) }

// NewPowerMANNAWith builds a PowerMANNA pair with explicit parameters
// (used by the FIFO-size and dual-link ablations) and the default
// failover protocol.
func NewPowerMANNAWith(p PMParams) *PMSystem {
	return NewPowerMANNAFailover(p, netsim.DefaultFailover())
}

// NewPowerMANNAFailover builds a PowerMANNA pair whose transport runs
// the given failover configuration.
func NewPowerMANNAFailover(p PMParams, cfg netsim.FailoverConfig) *PMSystem {
	if p.Links < 1 {
		p.Links = 1
	}
	net := netsim.New(topo.Cluster8())
	path, err := net.Topology().Route(0, 1, topo.NetworkA)
	if err != nil {
		panic(err)
	}
	return &PMSystem{params: p, net: net, tp: net.MustTransport(0, cfg), path: path}
}

// Name implements System.
func (s *PMSystem) Name() string {
	if s.params.Links > 1 {
		return "PowerMANNA-dual"
	}
	return "PowerMANNA"
}

// Params returns the parameter set in use.
func (s *PMSystem) Params() PMParams { return s.params }

func (s *PMSystem) cycles(n int64) sim.Time { return s.params.CPUClock.Cycles(n) }

// lines reports the FIFO lines an n-byte transfer occupies.
func lines(n int) int { return (n + 63) / 64 }

// OneWayLatency implements System: send setup, first line into the FIFO,
// network transit (route setup + cut-through body), receiver poll
// residual, final line drain, receive-path return.
func (s *PMSystem) OneWayLatency(n int) sim.Time {
	s.net.Reset()
	t := s.cycles(s.params.SendSetupCycles)
	t += s.params.PIOWriteLine // first line enters the send FIFO
	d, err := s.tp.Send(t, 1, n)
	if err != nil || d.Failed {
		panic(err)
	}
	t = d.Done
	t += s.cycles(s.params.PollCycles) / 2 // average poll residual
	t += s.params.PIOReadLine              // drain the final line
	t += s.cycles(s.params.RecvReturnCycles)
	return t
}

// LatencyBreakdown decomposes the one-way latency of an n-byte message
// into its stages — the counterpart of the PCI-NIC budget in
// internal/nic, and the quantitative form of the paper's Section 3.3
// argument for the CPU-driven interface: no doorbell, no DMA setup, no
// embedded processor on the path.
func (s *PMSystem) LatencyBreakdown(n int) []Stage {
	s.net.Reset()
	var stages []Stage
	add := func(name string, t sim.Time) { stages = append(stages, Stage{name, t}) }
	t := s.cycles(s.params.SendSetupCycles)
	add("user-level send (PIO setup)", t)
	add("first line into send FIFO", s.params.PIOWriteLine)
	d, err := s.tp.Send(t+s.params.PIOWriteLine, 1, n)
	if err != nil || d.Failed {
		panic(err)
	}
	add("route setup + wire (cut-through)", d.Done-(t+s.params.PIOWriteLine))
	add("receiver poll residual", s.cycles(s.params.PollCycles)/2)
	add("drain final line", s.params.PIOReadLine)
	add("user-level receive return", s.cycles(s.params.RecvReturnCycles))
	return stages
}

// Stage is one leg of a latency budget.
type Stage struct {
	Name string
	Time sim.Time
}

// Gap implements System: the steady-state per-message time is the
// slowest pipeline stage — sender work, wire occupancy, or receiver
// work. Striped links divide the wire term.
func (s *PMSystem) Gap(n int) sim.Time {
	nLines := sim.Time(lines(n))
	sender := s.cycles(s.params.GapSendCycles) + nLines*s.params.PIOWriteLine
	wireBytes := ni.WireBytes(len(s.path.RouteBytes), n)
	wire := sim.Time(wireBytes) * link.BytePeriod / sim.Time(s.params.Links) // 60 MB/s per link
	recv := s.cycles(s.params.GapRecvCycles+s.params.PollCycles) + nLines*s.params.PIOReadLine
	return sim.Max(sender, sim.Max(wire, recv))
}

// UniBandwidth implements System: a one-directional message stream,
// simulated at FIFO granularity (fills, drains, polls, flow control).
func (s *PMSystem) UniBandwidth(n int) float64 {
	return runDriverSim(s.params, n, false)
}

// BiBandwidth implements System: both nodes stream simultaneously; the
// single driver thread on each node alternates between filling at most
// four lines of the send FIFO and draining the receive FIFO, paying the
// direction-switch cost each way (Section 5.2).
func (s *PMSystem) BiBandwidth(n int) float64 {
	return 2 * runDriverSim(s.params, n, true)
}

var _ System = (*PMSystem)(nil)
