// Package comm implements the communication microbenchmarks of Section
// 5.2 — one-way latency (Figure 9), message-sending time at the network
// saturation point, i.e. the LogP gap (Figure 10), unidirectional
// bandwidth (Figure 11) and simultaneous bidirectional bandwidth
// (Figure 12) — for PowerMANNA and for the paper's comparison systems,
// the user-space communication libraries BIP and FM on a Myrinet cluster
// of Pentium Pro 200 nodes.
//
// PowerMANNA is modelled from its parts: the PIO driver running on the
// node CPU (program-controlled FIFO fills and drains, status-register
// polls, direction turnaround), the link-interface FIFOs of
// internal/ni, and the network of internal/netsim. BIP and FM are
// parametric models: the paper itself takes their numbers from the
// literature (reference [9], measured on Pentium Pro 200 / Myrinet), and
// the constants here encode those published curves.
package comm

import (
	"fmt"

	"powermanna/internal/sim"
)

// System is a communication system under measurement. Sizes are payload
// bytes; bandwidths are payload bytes per second.
type System interface {
	// Name labels the system in figure output.
	Name() string
	// OneWayLatency is half the ping-pong time for an n-byte message.
	OneWayLatency(n int) sim.Time
	// Gap is the per-message time at the network saturation point (the
	// LogP gap): the steady-state spacing of back-to-back messages.
	Gap(n int) sim.Time
	// UniBandwidth is the achieved one-directional stream bandwidth.
	UniBandwidth(n int) float64
	// BiBandwidth is the total achieved bandwidth when both nodes send
	// and receive simultaneously (sum of both directions).
	BiBandwidth(n int) float64
}

// Sizes returns the payload sweep used by the figures: powers of two
// from lo to hi inclusive.
func Sizes(lo, hi int) []int {
	var out []int
	for n := lo; n <= hi; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Check validates a System's basic sanity (used by tests and the
// harness): positive latencies, monotone non-decreasing latency in n.
func Check(s System) error {
	prev := sim.Time(0)
	for _, n := range Sizes(4, 4096) {
		l := s.OneWayLatency(n)
		if l <= 0 {
			return fmt.Errorf("comm %s: latency(%d) = %v", s.Name(), n, l)
		}
		if l < prev {
			return fmt.Errorf("comm %s: latency(%d) = %v below latency of smaller message %v", s.Name(), n, l, prev)
		}
		prev = l
		if g := s.Gap(n); g <= 0 {
			return fmt.Errorf("comm %s: gap(%d) = %v", s.Name(), n, g)
		}
		if bw := s.UniBandwidth(n); bw <= 0 {
			return fmt.Errorf("comm %s: uni(%d) = %g", s.Name(), n, bw)
		}
		if bw := s.BiBandwidth(n); bw <= 0 {
			return fmt.Errorf("comm %s: bi(%d) = %g", s.Name(), n, bw)
		}
	}
	return nil
}
