package comm

import "powermanna/internal/sim"

// ParamModel is a closed-form communication model for the comparison
// systems. The paper takes BIP and FM numbers from reference [9]
// (Bhoedjang, Rühl, Bal, "User-Level Network Interface Protocols", IEEE
// Computer 1998), measured on a Myrinet cluster of 200 MHz Pentium Pro
// nodes; this struct encodes those published curves so the figures can
// overlay them against the simulated PowerMANNA.
type ParamModel struct {
	// SystemName labels the curve.
	SystemName string
	// Alpha is the zero-byte one-way latency.
	Alpha sim.Time
	// PerByte is the incremental per-byte time (inverse asymptotic
	// bandwidth).
	PerByte sim.Time
	// GapAlpha is the per-message occupancy at saturation.
	GapAlpha sim.Time
	// PacketBytes, if nonzero, adds PerPacket per PacketBytes chunk
	// (FM fragments messages into packets with software flow control).
	PacketBytes int
	PerPacket   sim.Time
	// BiTotalCap caps total bidirectional bandwidth (the shared 32-bit
	// PCI bus of the Myrinet interface: ~132 MB/s).
	BiTotalCap float64
}

// BIP returns the Basic Interface for Parallelism model: a minimal
// user-space library exposing raw Myrinet performance. Figure 9 of the
// paper reports 6.4 µs for 8 bytes; [9] reports ~126 MB/s streaming.
func BIP() ParamModel {
	return ParamModel{
		SystemName: "BIP",
		Alpha:      6340 * sim.Nanosecond, // 6.4 µs at 8 B minus 8 B wire time
		PerByte:    8 * sim.Nanosecond,    // ≈ 126 MB/s asymptotic
		GapAlpha:   4800 * sim.Nanosecond,
		BiTotalCap: 132e6, // PCI-bound
	}
}

// FM returns the Fast Messages model: user-space messaging with software
// flow control and per-packet processing. Figure 9 reports 9.2 µs for
// 8 bytes; streaming tops out near 70 MB/s.
func FM() ParamModel {
	return ParamModel{
		SystemName:  "FM",
		Alpha:       8590 * sim.Nanosecond, // 9.2 µs at 8 B including the first packet cost
		PerByte:     13 * sim.Nanosecond,   // ≈ 77 MB/s wire-level
		GapAlpha:    10500 * sim.Nanosecond,
		PacketBytes: 128,
		PerPacket:   500 * sim.Nanosecond, // flow-control bookkeeping per packet
		BiTotalCap:  110e6,
	}
}

// Name implements System.
func (m ParamModel) Name() string { return m.SystemName }

func (m ParamModel) packets(n int) int {
	if m.PacketBytes <= 0 {
		return 0
	}
	return (n + m.PacketBytes - 1) / m.PacketBytes
}

// OneWayLatency implements System.
func (m ParamModel) OneWayLatency(n int) sim.Time {
	return m.Alpha + sim.Time(n)*m.PerByte + sim.Time(m.packets(n))*m.PerPacket
}

// Gap implements System.
func (m ParamModel) Gap(n int) sim.Time {
	stream := sim.Time(n)*m.PerByte + sim.Time(m.packets(n))*m.PerPacket
	return sim.Max(m.GapAlpha, stream)
}

// UniBandwidth implements System.
func (m ParamModel) UniBandwidth(n int) float64 {
	g := m.Gap(n)
	if g <= 0 {
		return 0
	}
	return float64(n) / g.Seconds()
}

// BiBandwidth implements System: twice the unidirectional rate, capped
// by the shared host interface.
func (m ParamModel) BiBandwidth(n int) float64 {
	bi := 2 * m.UniBandwidth(n)
	if m.BiTotalCap > 0 && bi > m.BiTotalCap {
		return m.BiTotalCap
	}
	return bi
}

var _ System = ParamModel{}
