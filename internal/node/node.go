// Package node composes the per-node machine model: one or more processor
// cores with private L1/L2 cache stacks, the node interconnect fabric, and
// main memory. It implements the coherence choreography between them —
// snooping peers on misses, cache-to-cache supply from Modified lines,
// invalidations on writes, inclusive back-invalidation, and writebacks —
// using the state kept in internal/cache and the timing kept in
// internal/bus and internal/mem.
//
// Benchmark kernels drive a node through per-CPU Proc handles: each Proc
// keeps its own local simulated time, every memory access is classified
// against the caches and, when it escapes the private hierarchy, timed
// against the shared fabric. SMP runs interleave the per-CPU kernels in
// local-time order (RunParallel), which is how contention between the
// node's processors — the subject of Figure 8 — emerges.
package node

import (
	"fmt"

	"powermanna/internal/bus"
	"powermanna/internal/cache"
	"powermanna/internal/cpu"
	"powermanna/internal/mem"
	"powermanna/internal/sim"
)

// FabricKind selects the node interconnect organization.
type FabricKind uint8

const (
	// SharedBusFabric: one bus for address and data phases (SUN, PC).
	SharedBusFabric FabricKind = iota
	// SwitchedFabric: the PowerMANNA ADSP switch + central dispatcher.
	SwitchedFabric
)

// String names the intra-node datapath kind.
func (k FabricKind) String() string {
	if k == SharedBusFabric {
		return "shared-bus"
	}
	return "switched"
}

// Config describes a node.
type Config struct {
	// Name labels the node type, e.g. "PowerMANNA".
	Name string
	// CPUs is the number of processors installed (2 in all of Table 1;
	// the scalability ablation sweeps it).
	CPUs int
	// Core is the processor core description.
	Core cpu.Config
	// L1D and L2 describe each CPU's private data-cache stack. HitCycles
	// are in core cycles. Both levels must share a line size.
	L1D, L2 cache.Config
	// TLB describes each CPU's data TLB as a cache of page translations:
	// LineBytes is the page size, SizeBytes/LineBytes/Assoc the geometry.
	// The MPC620's on-chip MMU with demand-paged translation (Section 2)
	// is what lets PowerMANNA drive communication from user space; for the
	// node benchmarks its reach decides when large-stride access patterns
	// (naive MatMult columns) start paying translation penalties.
	TLB cache.Config
	// TLBWalkCycles is the page-table-walk penalty per TLB miss, in core
	// cycles (hardware walk on the MPC620/PII, software trap on the
	// UltraSPARC).
	TLBWalkCycles int
	// Fabric selects the interconnect organization.
	Fabric FabricKind
	// Bus is the interconnect timing.
	Bus bus.Config
	// Mem is the main-memory timing.
	Mem mem.Config
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if c.CPUs <= 0 {
		return fmt.Errorf("node %q: CPUs = %d", c.Name, c.CPUs)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.L1D.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.L1D.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("node %q: L1 line %d != L2 line %d", c.Name, c.L1D.LineBytes, c.L2.LineBytes)
	}
	if err := c.TLB.Validate(); err != nil {
		return err
	}
	if c.TLBWalkCycles < 0 {
		return fmt.Errorf("node %q: negative TLBWalkCycles", c.Name)
	}
	if c.Bus.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("node %q: bus line %d != L2 line %d", c.Name, c.Bus.LineBytes, c.L2.LineBytes)
	}
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if err := c.Mem.Validate(); err != nil {
		return err
	}
	return nil
}

// Node is one instantiated machine node.
type Node struct {
	cfg    Config
	memory *mem.Memory
	fabric bus.Fabric
	procs  []*Proc
}

// New builds a node. It panics on invalid configuration.
func New(cfg Config) *Node {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := mem.New(cfg.Mem)
	var fab bus.Fabric
	switch cfg.Fabric {
	case SwitchedFabric:
		fab = bus.NewSwitched(cfg.Bus, m)
	default:
		fab = bus.NewShared(cfg.Bus, m)
	}
	n := &Node{cfg: cfg, memory: m, fabric: fab}
	for i := 0; i < cfg.CPUs; i++ {
		l1cfg := cfg.L1D
		l1cfg.Name = fmt.Sprintf("%s/cpu%d/L1D", cfg.Name, i)
		l2cfg := cfg.L2
		l2cfg.Name = fmt.Sprintf("%s/cpu%d/L2", cfg.Name, i)
		tlbcfg := cfg.TLB
		tlbcfg.Name = fmt.Sprintf("%s/cpu%d/DTLB", cfg.Name, i)
		n.procs = append(n.procs, &Proc{
			node: n,
			id:   i,
			l1:   cache.New(l1cfg),
			l2:   cache.New(l2cfg),
			tlb:  cache.New(tlbcfg),
		})
	}
	return n
}

// Config returns the node configuration.
func (n *Node) Config() Config { return n.cfg }

// Proc returns CPU i's handle.
func (n *Node) Proc(i int) *Proc { return n.procs[i] }

// Procs returns all CPU handles.
func (n *Node) Procs() []*Proc { return n.procs }

// Fabric exposes the interconnect (for stats and the scalability ablation).
func (n *Node) Fabric() bus.Fabric { return n.fabric }

// Memory exposes the memory model (for stats).
func (n *Node) Memory() *mem.Memory { return n.memory }

// Reset restores the node to cold caches, idle fabric and zeroed local
// times, keeping the configuration.
func (n *Node) Reset() {
	n.memory.Reset()
	n.fabric.Reset()
	for _, p := range n.procs {
		p.l1.InvalidateAll()
		p.l1.ResetStats()
		p.l2.InvalidateAll()
		p.l2.ResetStats()
		p.tlb.InvalidateAll()
		p.tlb.ResetStats()
		p.storeRing = [storeBufferDepth]sim.Time{}
		p.storePos = 0
		p.now = 0
	}
}

// storeBufferDepth is the number of outstanding stores a core can hold
// before a store that needs the fabric stalls the pipeline. Era-typical.
const storeBufferDepth = 8

// Proc is one processor's view of the node.
type Proc struct {
	node *Node
	id   int
	l1   *cache.Cache
	l2   *cache.Cache
	tlb  *cache.Cache
	now  sim.Time
	// storeRing holds completion times of in-flight stores that needed a
	// fabric transaction; a full ring backpressures the next such store.
	storeRing [storeBufferDepth]sim.Time
	storePos  int
}

// ID returns the processor index within the node.
func (p *Proc) ID() int { return p.id }

// Now returns the processor's local simulated time.
func (p *Proc) Now() sim.Time { return p.now }

// SetNow sets the local time (used when a kernel starts mid-simulation).
func (p *Proc) SetNow(t sim.Time) { p.now = t }

// AdvanceCycles moves local time forward by a fractional core-cycle count.
func (p *Proc) AdvanceCycles(c float64) {
	p.now += p.node.cfg.Core.Clock.CyclesF(c)
}

// Advance moves local time forward by d.
func (p *Proc) Advance(d sim.Time) { p.now += d }

// Core returns the processor core description.
func (p *Proc) Core() *cpu.Config { return &p.node.cfg.Core }

// L1 returns the private first-level data cache (for stats and tests).
func (p *Proc) L1() *cache.Cache { return p.l1 }

// L1HitCycles is the baseline store/load hit latency; kernels subtract it
// from a store's returned latency to find the store-buffer stall they
// must charge beyond their loop template's store slot.
func (p *Proc) L1HitCycles() int64 { return int64(p.node.cfg.L1D.HitCycles) }

// L2 returns the private second-level cache (for stats and tests).
func (p *Proc) L2() *cache.Cache { return p.l2 }

// TLB returns the data TLB (for stats and tests).
func (p *Proc) TLB() *cache.Cache { return p.tlb }

// translate looks addr's page up in the data TLB, returning the
// page-table-walk penalty in core cycles (0 on a hit). The walk's own
// memory references are folded into the penalty.
func (p *Proc) translate(addr uint64) int64 {
	if p.tlb.Access(addr, false) == cache.Hit {
		return 0
	}
	p.tlb.Fill(addr, cache.Exclusive)
	return int64(p.node.cfg.TLBWalkCycles)
}

// snoop applies a bus transaction for lineByteAddr to this processor's
// caches (both levels) and reports whether it held or supplied the line.
func (p *Proc) snoop(lineByteAddr uint64, exclusive bool) cache.SnoopResult {
	r2 := p.l2.Snoop(lineByteAddr, exclusive)
	r1 := p.l1.Snoop(lineByteAddr, exclusive)
	return cache.SnoopResult{
		Had:      r1.Had || r2.Had,
		Supplied: r1.Supplied || r2.Supplied,
	}
}

// snoopPeers probes every other processor, returning whether any peer had
// the line and whether one supplied it from Modified.
func (p *Proc) snoopPeers(lineByteAddr uint64, exclusive bool) (had, supplied bool) {
	for _, q := range p.node.procs {
		if q == p {
			continue
		}
		r := q.snoop(lineByteAddr, exclusive)
		had = had || r.Had
		supplied = supplied || r.Supplied
	}
	return had, supplied
}

// Access performs one data access at the processor's current local time
// and returns its load-use latency in core cycles. The returned latency is
// what a kernel feeds the cpu.CostModel; stores return the L1 store
// latency because the store buffer hides completion, but all coherence
// work (upgrades, fills, invalidations, writebacks) still happens and is
// charged to the shared resources.
func (p *Proc) Access(addr uint64, write bool) int64 {
	cfg := &p.node.cfg
	walk := p.translate(addr)
	l1Hit := int64(cfg.L1D.HitCycles) + walk
	switch p.l1.Access(addr, write) {
	case cache.Hit:
		return l1Hit
	case cache.HitNeedsUpgrade:
		// Write hit on Shared: invalidate peers via an address-only phase.
		done := p.node.fabric.Upgrade(p.now)
		p.snoopPeers(addr, true)
		p.l1.CompleteUpgrade(addr)
		if p.l2.Lookup(addr).Valid() {
			p.l2.Fill(addr, cache.Modified)
		}
		return l1Hit + p.pushStore(done)
	}

	// L1 miss: try the private L2.
	l2Outcome := p.l2.Access(addr, write)
	switch l2Outcome {
	case cache.Hit:
		p.fillL1(addr, write)
		return int64(cfg.L2.HitCycles) + walk
	case cache.HitNeedsUpgrade:
		done := p.node.fabric.Upgrade(p.now)
		p.snoopPeers(addr, true)
		p.l2.CompleteUpgrade(addr)
		p.fillL1(addr, write)
		return int64(cfg.L2.HitCycles) + walk + p.pushStore(done)
	}

	// L2 miss: a coherent fabric transaction.
	lineBytes := uint64(cfg.L2.LineBytes)
	lineAddr := addr / lineBytes
	grant := p.node.fabric.GrantAddress(p.now)
	had, supplied := p.snoopPeers(addr, write)
	src := bus.FromMemory
	if supplied {
		src = bus.FromPeer
	}
	done := p.node.fabric.FillLine(grant, lineAddr, src)

	state := cache.Exclusive
	if write {
		state = cache.Modified
	} else if had {
		state = cache.Shared
	}
	p.installLine(addr, state, done)
	p.fillL1(addr, write)

	if write {
		return l1Hit + p.pushStore(done) // store-buffered unless the ring is full
	}
	lat := int64(cfg.L2.HitCycles) + walk + cfg.Core.Clock.ToCycles(done-p.now)
	return lat
}

// pushStore records a fabric-bound store's completion in the store
// buffer. It returns the stall in core cycles the store causes: zero
// while the buffer has room, the wait for the oldest entry otherwise.
func (p *Proc) pushStore(done sim.Time) int64 {
	var stall int64
	if oldest := p.storeRing[p.storePos]; oldest > p.now {
		stall = p.node.cfg.Core.Clock.ToCycles(oldest - p.now)
	}
	p.storeRing[p.storePos] = done
	p.storePos = (p.storePos + 1) % storeBufferDepth
	return stall
}

// installLine fills the L2 with the newly obtained line, writing back the
// dirty victim and back-invalidating the L1 copy of the victim (inclusive
// hierarchy).
func (p *Proc) installLine(addr uint64, st cache.State, at sim.Time) {
	lineBytes := uint64(p.node.cfg.L2.LineBytes)
	v := p.l2.Fill(addr, st)
	if !v.Valid {
		return
	}
	victimByte := v.LineAddr * lineBytes
	// Inclusive hierarchy: the L1 copy of the evicted line must go too.
	// A dirty L1 copy folds into the victim writeback.
	r1 := p.l1.Snoop(victimByte, true)
	if v.Dirty || r1.Supplied {
		p.node.fabric.WritebackLine(at, v.LineAddr)
	}
}

// fillL1 installs the line into the L1 after an L2 hit or fill. A dirty
// L1 victim is merged into the L2 (no bus traffic).
func (p *Proc) fillL1(addr uint64, write bool) {
	st := cache.Exclusive
	if write {
		st = cache.Modified
	} else if s := p.l2.Lookup(addr); s == cache.Shared {
		st = cache.Shared
	}
	v := p.l1.Fill(addr, st)
	if v.Valid && v.Dirty {
		victimByte := v.LineAddr * uint64(p.node.cfg.L1D.LineBytes)
		if p.l2.Lookup(victimByte).Valid() {
			p.l2.Fill(victimByte, cache.Modified)
		}
	}
}

// PIO performs an uncached transfer of n bytes to a memory-mapped device
// and advances local time to its completion. It returns the new local time.
func (p *Proc) PIO(bytes int) sim.Time {
	p.now = p.node.fabric.PIO(p.now, bytes)
	return p.now
}

// Kernel is a workload stream bound to one processor. Step advances the
// kernel by one convenient chunk (for example one inner-loop pass),
// updating the Proc's local time; it returns false when the kernel has
// finished.
type Kernel interface {
	Step() bool
	Proc() *Proc
}

// RunParallel interleaves kernels in local-time order until all finish:
// the kernel whose processor has the lowest local time steps next, so
// shared-resource contention is resolved in near-causal order. It returns
// the latest local time (the parallel makespan).
func RunParallel(kernels ...Kernel) sim.Time {
	if len(kernels) == 1 {
		k := kernels[0]
		for k.Step() {
		}
		return k.Proc().Now()
	}
	active := make([]Kernel, 0, len(kernels))
	active = append(active, kernels...)
	for len(active) > 0 {
		// Pick the stream with minimum local time.
		min := 0
		for i := 1; i < len(active); i++ {
			if active[i].Proc().Now() < active[min].Proc().Now() {
				min = i
			}
		}
		if !active[min].Step() {
			active = append(active[:min], active[min+1:]...)
		}
	}
	var makespan sim.Time
	for _, k := range kernels {
		if t := k.Proc().Now(); t > makespan {
			makespan = t
		}
	}
	return makespan
}
