package node

import (
	"testing"

	"powermanna/internal/bus"
	"powermanna/internal/cache"
	"powermanna/internal/cpu"
	"powermanna/internal/mem"
	"powermanna/internal/sim"
)

func testCore() cpu.Config {
	cfg := cpu.Config{
		Name:       "testcore",
		Clock:      sim.ClockMHz(180),
		IssueWidth: 4,
		MissQueue:  1,
		HasFMA:     true,
	}
	cfg.Units[cpu.UnitIntALU] = 2
	cfg.Units[cpu.UnitIntMul] = 1
	cfg.Units[cpu.UnitFPU] = 1
	cfg.Units[cpu.UnitLS] = 1
	cfg.Units[cpu.UnitBranch] = 1
	cfg.Timing[cpu.IntALU] = cpu.OpTiming{Unit: cpu.UnitIntALU, Latency: 1, Pipelined: true}
	cfg.Timing[cpu.IntMul] = cpu.OpTiming{Unit: cpu.UnitIntMul, Latency: 4, Pipelined: true}
	cfg.Timing[cpu.IntDiv] = cpu.OpTiming{Unit: cpu.UnitIntMul, Latency: 20, Pipelined: false}
	cfg.Timing[cpu.FPAdd] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPMul] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPMAdd] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPDiv] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 18, Pipelined: false}
	cfg.Timing[cpu.Load] = cpu.OpTiming{Unit: cpu.UnitLS, Latency: 2, Pipelined: true}
	cfg.Timing[cpu.Store] = cpu.OpTiming{Unit: cpu.UnitLS, Latency: 1, Pipelined: true}
	cfg.Timing[cpu.Branch] = cpu.OpTiming{Unit: cpu.UnitBranch, Latency: 1, Pipelined: true}
	return cfg
}

func testConfig(cpus int, kind FabricKind) Config {
	return Config{
		Name:          "testnode",
		CPUs:          cpus,
		Core:          testCore(),
		L1D:           cache.Config{Name: "L1D", SizeBytes: 512, LineBytes: 64, Assoc: 2, HitCycles: 2},
		L2:            cache.Config{Name: "L2", SizeBytes: 2048, LineBytes: 64, Assoc: 2, HitCycles: 8},
		TLB:           cache.Config{Name: "DTLB", SizeBytes: 64 * 4096, LineBytes: 4096, Assoc: 64, HitCycles: 0},
		TLBWalkCycles: 0, // keep node-level unit tests translation-free
		Fabric:        kind,
		Bus: bus.Config{
			Name:          "bus",
			Clock:         sim.ClockMHz(60),
			AddressCycles: 2,
			DataBeatBytes: 16,
			LineBytes:     64,
		},
		Mem: mem.Config{
			Banks:           4,
			InterleaveBytes: 64,
			AccessLatency:   100 * sim.Nanosecond,
			BankBusy:        160 * sim.Nanosecond,
			LineTransfer:    100 * sim.Nanosecond,
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(2, SwitchedFabric).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c := testConfig(2, SwitchedFabric)
	c.CPUs = 0
	if err := c.Validate(); err == nil {
		t.Error("zero CPUs accepted")
	}
	c = testConfig(2, SwitchedFabric)
	c.L1D.LineBytes = 32
	c.L1D.SizeBytes = 512
	if err := c.Validate(); err == nil {
		t.Error("L1/L2 line mismatch accepted")
	}
	c = testConfig(2, SwitchedFabric)
	c.Bus.LineBytes = 32
	if err := c.Validate(); err == nil {
		t.Error("bus/L2 line mismatch accepted")
	}
}

func TestFabricKindString(t *testing.T) {
	if SharedBusFabric.String() != "shared-bus" || SwitchedFabric.String() != "switched" {
		t.Error("FabricKind.String wrong")
	}
}

func TestAccessLatencyHierarchy(t *testing.T) {
	n := New(testConfig(1, SwitchedFabric))
	p := n.Proc(0)
	// Cold: memory access.
	memLat := p.Access(0x10000, false)
	// Warm L1.
	l1Lat := p.Access(0x10000, false)
	if l1Lat != 2 {
		t.Errorf("L1 hit latency = %d, want 2", l1Lat)
	}
	if memLat <= 8 {
		t.Errorf("memory latency = %d cycles, want > L2 hit", memLat)
	}
	// Evict from L1 only: lines 256 B apart share the L1 set (4 sets of
	// 64 B lines) but land in distinct L2 sets (16 sets), so three extra
	// accesses push 0x10000 out of the 2-way L1 while the L2 keeps it.
	for i := uint64(1); i <= 3; i++ {
		p.Access(0x10000+i*256, false)
	}
	l2Lat := p.Access(0x10000, false)
	if l2Lat != 8 {
		t.Errorf("L2 hit latency = %d, want 8", l2Lat)
	}
	if !(l1Lat < l2Lat && l2Lat < memLat) {
		t.Errorf("latency ordering violated: L1=%d L2=%d MEM=%d", l1Lat, l2Lat, memLat)
	}
}

func TestCacheToCacheTransfer(t *testing.T) {
	n := New(testConfig(2, SwitchedFabric))
	p0, p1 := n.Proc(0), n.Proc(1)
	// CPU0 writes a line: Modified in its caches.
	p0.Access(0x4000, true)
	if st := p0.L1().Lookup(0x4000); st != cache.Modified {
		t.Fatalf("CPU0 L1 state = %v, want M", st)
	}
	// CPU1 reads the line: CPU0 supplies, both end Shared.
	p1.Access(0x4000, false)
	if st := p0.L1().Lookup(0x4000); st != cache.Shared {
		t.Errorf("CPU0 L1 after peer read = %v, want S", st)
	}
	if st := p1.L2().Lookup(0x4000); st != cache.Shared {
		t.Errorf("CPU1 L2 after fill = %v, want S", st)
	}
	if n.Proc(0).L2().Stats().SuppliedCacheToCache+n.Proc(0).L1().Stats().SuppliedCacheToCache == 0 {
		t.Error("no cache-to-cache supply recorded")
	}
}

func TestWriteInvalidatesPeers(t *testing.T) {
	n := New(testConfig(2, SwitchedFabric))
	p0, p1 := n.Proc(0), n.Proc(1)
	// Both read: Shared everywhere.
	p0.Access(0x8000, false)
	p1.Access(0x8000, false)
	if st := p0.L2().Lookup(0x8000); st != cache.Shared {
		t.Fatalf("CPU0 L2 = %v, want S after peer read", st)
	}
	// CPU1 writes: upgrade, CPU0 invalidated.
	p1.Access(0x8000, true)
	if st := p0.L1().Lookup(0x8000); st != cache.Invalid {
		t.Errorf("CPU0 L1 after peer write = %v, want I", st)
	}
	if st := p0.L2().Lookup(0x8000); st != cache.Invalid {
		t.Errorf("CPU0 L2 after peer write = %v, want I", st)
	}
	if st := p1.L1().Lookup(0x8000); st != cache.Modified {
		t.Errorf("CPU1 L1 = %v, want M", st)
	}
}

func TestExclusiveFillWhenUnshared(t *testing.T) {
	n := New(testConfig(2, SwitchedFabric))
	p0 := n.Proc(0)
	p0.Access(0xC000, false)
	if st := p0.L2().Lookup(0xC000); st != cache.Exclusive {
		t.Errorf("unshared read fill = %v, want E", st)
	}
	// A write hit on E upgrades silently — no new address phases beyond
	// the original fill's.
	phases := n.Fabric().Stats().AddressPhases
	p0.Access(0xC000, true)
	if got := n.Fabric().Stats().AddressPhases; got != phases {
		t.Errorf("silent E->M upgrade used %d extra address phases", got-phases)
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	n := New(testConfig(1, SwitchedFabric))
	p := n.Proc(0)
	// L2 is 2 KB, 2-way, 64 B lines: 16 sets. Lines 2048 bytes apart share
	// an L2 set. Fill three such lines: the first is evicted from L2 and
	// must leave L1 as well.
	p.Access(0x0000, false)
	p.Access(0x0800, false)
	p.Access(0x1000, false)
	if st := p.L2().Lookup(0x0000); st != cache.Invalid {
		t.Fatalf("L2 did not evict: %v", st)
	}
	if st := p.L1().Lookup(0x0000); st != cache.Invalid {
		t.Errorf("L1 kept back-invalidated line: %v", st)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	n := New(testConfig(1, SwitchedFabric))
	p := n.Proc(0)
	p.Access(0x0000, true) // dirty
	p.Access(0x0800, false)
	before := n.Memory().Stats().Writes
	p.Access(0x1000, false) // evicts dirty 0x0000 from L2
	if got := n.Memory().Stats().Writes; got != before+1 {
		t.Errorf("memory writes = %d, want %d (victim writeback)", got, before+1)
	}
}

func TestStoreLatencyIsBuffered(t *testing.T) {
	n := New(testConfig(1, SwitchedFabric))
	p := n.Proc(0)
	lat := p.Access(0x2000, true) // cold write miss
	if lat != 2 {
		t.Errorf("store miss latency = %d, want 2 (store-buffered)", lat)
	}
}

func TestPIOAdvancesTime(t *testing.T) {
	n := New(testConfig(1, SwitchedFabric))
	p := n.Proc(0)
	t0 := p.Now()
	t1 := p.PIO(8)
	if t1 <= t0 {
		t.Error("PIO did not advance time")
	}
}

func TestAdvanceHelpers(t *testing.T) {
	n := New(testConfig(1, SwitchedFabric))
	p := n.Proc(0)
	p.AdvanceCycles(10)
	want := testCore().Clock.Cycles(10)
	if p.Now() < want || p.Now() > want+sim.Nanosecond {
		t.Errorf("Now = %v after 10 cycles, want ~%v", p.Now(), want)
	}
	p.SetNow(0)
	p.Advance(5 * sim.Microsecond)
	if p.Now() != 5*sim.Microsecond {
		t.Errorf("Now = %v, want 5us", p.Now())
	}
}

func TestReset(t *testing.T) {
	n := New(testConfig(2, SwitchedFabric))
	p := n.Proc(0)
	p.Access(0x123, true)
	p.AdvanceCycles(100)
	n.Reset()
	if p.Now() != 0 {
		t.Error("Reset did not zero local time")
	}
	if p.L1().Occupancy() != 0 || p.L2().Occupancy() != 0 {
		t.Error("Reset did not clear caches")
	}
	if n.Fabric().Stats().AddressPhases != 0 {
		t.Error("Reset did not clear fabric stats")
	}
}

// sumKernel touches a private range, one line per step.
type sumKernel struct {
	p     *Proc
	base  uint64
	steps int
	done  int
}

func (k *sumKernel) Proc() *Proc { return k.p }
func (k *sumKernel) Step() bool {
	if k.done >= k.steps {
		return false
	}
	lat := k.p.Access(k.base+uint64(k.done)*64, false)
	k.p.AdvanceCycles(float64(lat))
	k.done++
	return k.done < k.steps
}

func TestRunParallelMergesByTime(t *testing.T) {
	n := New(testConfig(2, SharedBusFabric))
	k0 := &sumKernel{p: n.Proc(0), base: 0x00000, steps: 50}
	k1 := &sumKernel{p: n.Proc(1), base: 0x80000, steps: 50}
	makespan := RunParallel(k0, k1)
	if makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if k0.done != 50 || k1.done != 50 {
		t.Errorf("kernels incomplete: %d, %d", k0.done, k1.done)
	}
	// Both streams hammer the shared bus: makespan must exceed a single
	// stream running alone.
	n2 := New(testConfig(2, SharedBusFabric))
	kSolo := &sumKernel{p: n2.Proc(0), base: 0x00000, steps: 50}
	solo := RunParallel(kSolo)
	if makespan <= solo {
		t.Errorf("parallel makespan %v not above solo %v on shared bus", makespan, solo)
	}
}

func TestSwitchedFabricLessContentionThanShared(t *testing.T) {
	run := func(kind FabricKind) sim.Time {
		n := New(testConfig(2, kind))
		k0 := &sumKernel{p: n.Proc(0), base: 0x00000, steps: 200}
		k1 := &sumKernel{p: n.Proc(1), base: 0x80000, steps: 200}
		return RunParallel(k0, k1)
	}
	shared := run(SharedBusFabric)
	switched := run(SwitchedFabric)
	if switched >= shared {
		t.Errorf("switched fabric (%v) not faster than shared bus (%v) under dual-stream misses", switched, shared)
	}
}

// A burst of fabric-bound stores beyond the store-buffer depth must
// stall: the returned latency of the overflowing store exceeds the L1
// hit latency by the wait for the oldest outstanding store.
func TestStoreBufferBackpressure(t *testing.T) {
	n := New(testConfig(2, SwitchedFabric))
	p0, p1 := n.Proc(0), n.Proc(1)
	// Prime: both CPUs share a set of lines so p0's writes need upgrades.
	for i := uint64(0); i < 32; i++ {
		p0.Access(0x40000+i*64, false)
		p1.Access(0x40000+i*64, false)
	}
	// p0 fires upgrade stores back-to-back without advancing time: the
	// first several are absorbed by the buffer, then stalls appear.
	sawStall := false
	for i := uint64(0); i < 32; i++ {
		lat := p0.Access(0x40000+i*64, true)
		if lat > p0.L1HitCycles() {
			sawStall = true
		}
	}
	if !sawStall {
		t.Error("no store-buffer backpressure under an upgrade burst")
	}
	// After advancing past all completions, an upgrade store on a fresh
	// L1-resident Shared line is cheap again.
	p0.Advance(sim.Millisecond)
	p0.Access(0x80000, false)
	p1.Access(0x80000, false) // makes p0's copy Shared
	if lat := p0.Access(0x80000, true); lat != p0.L1HitCycles() {
		t.Errorf("store after drain cost %d cycles, want %d", lat, p0.L1HitCycles())
	}
}

func TestL1HitCyclesAccessor(t *testing.T) {
	n := New(testConfig(1, SwitchedFabric))
	if got := n.Proc(0).L1HitCycles(); got != 2 {
		t.Errorf("L1HitCycles = %d, want 2", got)
	}
}
