package telemetry

import (
	"strings"
	"testing"

	"powermanna/internal/sim"
)

func TestAutoWindow(t *testing.T) {
	cases := []struct {
		horizon sim.Time
		want    sim.Time
	}{
		// 800us / 32 = 25us exactly.
		{800 * sim.Microsecond, 25 * sim.Microsecond},
		// 200us / 32 = 6.25us, rounds up to a whole microsecond.
		{200 * sim.Microsecond, 7 * sim.Microsecond},
		// Degenerate horizons still produce a 1us grid.
		{0, sim.Microsecond},
		{300 * sim.Nanosecond, sim.Microsecond},
	}
	for _, c := range cases {
		if got := AutoWindow(c.horizon); got != c.want {
			t.Errorf("AutoWindow(%v) = %v, want %v", c.horizon, got, c.want)
		}
	}
}

func TestWindowIndexing(t *testing.T) {
	// 100us horizon, 25us windows: 4 regular windows + tail.
	s := NewSampler(100*sim.Microsecond, 25*sim.Microsecond)
	if s.Windows() != 4 {
		t.Fatalf("Windows() = %d, want 4", s.Windows())
	}
	c := s.Series("x")
	c.Inc(0)                      // window 0 (inclusive lower edge)
	c.Inc(25*sim.Microsecond - 1) // still window 0
	c.Inc(25 * sim.Microsecond)   // window 1 (exclusive upper edge)
	c.Inc(99 * sim.Microsecond)   // window 3
	c.Inc(100 * sim.Microsecond)  // tail (at horizon)
	c.Inc(5000 * sim.Microsecond) // tail (far past horizon)
	c.Inc(-sim.Microsecond)       // clamps into window 0
	for i, want := range []int64{3, 1, 0, 1, 2} {
		if got := c.Cell(i); got != want {
			t.Errorf("cell %d = %d, want %d", i, got, want)
		}
	}
	if c.Total() != 7 {
		t.Errorf("Total() = %d, want 7", c.Total())
	}
}

func TestGaugeAndHistCells(t *testing.T) {
	s := NewSampler(50*sim.Microsecond, 25*sim.Microsecond)
	g := s.Gauge("depth")
	g.Max(0, 3)
	g.Max(sim.Microsecond, 1) // lower: window 0 keeps 3
	g.Max(30*sim.Microsecond, 0)
	if v, ok := g.Cell(0); !ok || v != 3 {
		t.Errorf("gauge cell 0 = %d,%v, want 3,true", v, ok)
	}
	// A recorded zero is distinguishable from an empty cell.
	if v, ok := g.Cell(1); !ok || v != 0 {
		t.Errorf("gauge cell 1 = %d,%v, want 0,true", v, ok)
	}
	if _, ok := g.Cell(2); ok {
		t.Error("gauge tail cell should be empty")
	}

	h := s.Hist("lat")
	h.Observe(0, 10)
	h.Observe(sim.Microsecond, 4)
	h.Observe(2*sim.Microsecond, 7)
	c := h.Cell(0)
	if c.Count != 3 || c.Sum != 21 || c.Min != 4 || c.Max != 10 || c.Mean() != 7 {
		t.Errorf("hist cell 0 = %+v, want count=3 sum=21 min=4 max=10 mean=7", c)
	}
	if (HistCell{}).Mean() != 0 {
		t.Error("empty cell mean should be 0")
	}
}

func TestNilSamplerNoOps(t *testing.T) {
	var s *Sampler
	if s.Enabled() {
		t.Error("nil sampler reports enabled")
	}
	if s.Window() != 0 || s.Windows() != 0 || s.WindowLabel(0) != "" || s.Render() != "" {
		t.Error("nil sampler accessors should be zero-valued")
	}
	// Nil instruments from a nil sampler must all no-op.
	s.Series("x").Add(0, 1)
	s.Series("x").Inc(0)
	s.Gauge("x").Max(0, 1)
	s.Hist("x").Observe(0, 1)
	s.TimeHist("x").ObserveTime(0, sim.Microsecond)
	s.MergeFrom(NewSampler(sim.Microsecond, 0))
	NewSampler(sim.Microsecond, 0).MergeFrom(s)
	if s.Series("x").Total() != 0 || s.Series("x").Cell(0) != 0 {
		t.Error("nil series should read zero")
	}
	if _, ok := s.Gauge("x").Cell(0); ok {
		t.Error("nil gauge should read empty")
	}
	if (s.Hist("x").Cell(0) != HistCell{}) {
		t.Error("nil hist should read zero cells")
	}
}

// TestMergeCommutes folds three shard samplers in both orders and
// demands identical renders — the property that makes the rendered
// series independent of shard count and merge order.
func TestMergeCommutes(t *testing.T) {
	build := func(obs ...func(*Sampler)) *Sampler {
		s := NewSampler(100*sim.Microsecond, 25*sim.Microsecond)
		for _, f := range obs {
			f(s)
		}
		return s
	}
	a := func(s *Sampler) {
		s.Series("sent").Add(10*sim.Microsecond, 5)
		s.Gauge("depth").Max(30*sim.Microsecond, 2)
		s.TimeHist("lat").ObserveTime(40*sim.Microsecond, 3*sim.Microsecond)
	}
	b := func(s *Sampler) {
		s.Series("sent").Add(10*sim.Microsecond, 7)
		s.Series("viol").Inc(60 * sim.Microsecond)
		s.Gauge("depth").Max(30*sim.Microsecond, 9)
		s.TimeHist("lat").ObserveTime(40*sim.Microsecond, sim.Microsecond)
	}
	c := func(s *Sampler) {
		s.Gauge("depth").Max(80*sim.Microsecond, 1)
		s.TimeHist("lat").ObserveTime(140*sim.Microsecond, 9*sim.Microsecond)
	}

	fold := func(parts ...func(*Sampler)) string {
		dst := NewSampler(100*sim.Microsecond, 25*sim.Microsecond)
		for _, p := range parts {
			dst.MergeFrom(build(p))
		}
		return dst.Render()
	}
	seq := build(a, b, c).Render()
	if got := fold(a, b, c); got != seq {
		t.Errorf("fold(a,b,c) != sequential:\n%s\nvs\n%s", got, seq)
	}
	if got := fold(c, b, a); got != seq {
		t.Errorf("fold(c,b,a) != sequential:\n%s\nvs\n%s", got, seq)
	}
}

func TestMergeGridMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched grids should panic")
		}
	}()
	NewSampler(100*sim.Microsecond, 25*sim.Microsecond).
		MergeFrom(NewSampler(100*sim.Microsecond, 50*sim.Microsecond))
}

func TestRenderStable(t *testing.T) {
	s := NewSampler(50*sim.Microsecond, 25*sim.Microsecond)
	s.Series("b.sent").Add(0, 2)
	s.Series("a.sent").Add(30*sim.Microsecond, 1)
	s.TimeHist("lat").ObserveTime(60*sim.Microsecond, 1500*sim.Nanosecond)
	got := s.Render()
	want := strings.Join([]string{
		"-- telemetry (window 25us, 2 windows + tail) --",
		"series     a.sent  total=1",
		"  [25,50)us  1",
		"series     b.sent  total=2",
		"  [0,25)us  2",
		"hist       lat",
		"  >=50us  count=1 mean=1.500000us min=1.500000us max=1.500000us",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Render mismatch:\n got: %q\nwant: %q", got, want)
	}
	if got2 := s.Render(); got2 != got {
		t.Error("Render not stable across calls")
	}
}

// TestZeroAllocObserve pins the window-roll hot path — counter add,
// gauge max, histogram observe — at zero allocations per operation,
// the contract the //pmlint:hotpath annotations declare.
func TestZeroAllocObserve(t *testing.T) {
	s := NewSampler(800*sim.Microsecond, 0)
	c := s.Series("sent")
	g := s.Gauge("depth")
	h := s.TimeHist("lat")
	at := sim.Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(at, 3)
		c.Inc(at + 40*sim.Microsecond)
		g.Max(at, int64(at/1000)+1)
		h.Observe(at, int64(at%977))
		h.ObserveTime(at, sim.Microsecond+at%1000)
		at += 1337 * sim.Nanosecond
	})
	if allocs != 0 {
		t.Fatalf("window-roll path allocates: %v allocs/op, want 0", allocs)
	}
}
