// Package telemetry is the windowed time-series layer over the
// deterministic metrics registry: where internal/metrics answers "how
// much, how often, how spread" for a whole run, this package answers
// *when* — per-window counts, levels and distribution snapshots on a
// fixed simulated-time grid, the view that turns "p999 blew the SLO"
// into "p999 blew the SLO in windows 11–14, right after the link cut".
//
// The design constraint is the same determinism-under-sharding contract
// as the rest of the observability stack (DESIGN.md §11): rendered
// series must be byte-identical across --engine seq|par and every
// aligned shard count. The usual snapshot-on-a-timer design cannot
// deliver that — a roll event racing same-timestamp observations would
// make the window assignment depend on event interleaving. Instead,
// every observation carries its own simulated-time stamp and the
// instrument indexes the cell directly from it:
//
//	window(t) = t / width        (clamped to the tail cell past the grid)
//
// The window an observation lands in is therefore a pure function of
// the model, never of event order, and per-shard samplers fold by
// cell-wise sums and extrema — commutative, so the fold is independent
// of shard count and merge order, the same argument as
// metrics.Registry.MergeFrom.
//
// Zero-allocation roll: the full window grid is allocated when an
// instrument is created (the horizon is known up front), so advancing
// to a new window — the "roll" — is pure index arithmetic on the hot
// observation path. A nil instrument no-ops, mirroring the
// nil-registry convention of internal/metrics.
//
// Shard locality: like a metrics.Registry, a Sampler must only ever be
// observed from one psim shard; partitioned layers hold one Sampler per
// shard and fold them after the run (internal/traffic does exactly
// this).
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"powermanna/internal/sim"
)

// AutoWindows is the window count the auto-sized grid targets: with no
// explicit width the horizon splits into this many windows, rounded up
// to a whole microsecond per window so the grid stays human-readable.
const AutoWindows = 32

// AutoWindow resolves the auto-sized window width for a horizon:
// horizon/AutoWindows, rounded up to a whole microsecond (minimum one
// microsecond, so degenerate horizons still grid).
func AutoWindow(horizon sim.Time) sim.Time {
	w := horizon / AutoWindows
	w = ((w + sim.Microsecond - 1) / sim.Microsecond) * sim.Microsecond
	if w < sim.Microsecond {
		w = sim.Microsecond
	}
	return w
}

// Sampler owns a namespace of windowed instruments sharing one grid:
// windows [i*width, (i+1)*width) for i in [0, windows), plus one
// open-ended tail cell for observations past the grid (a run drains
// in-flight work beyond its offered-load horizon; the tail keeps those
// observations visible instead of silently clipped). Get-or-create by
// name, like metrics.Registry. The zero value of *Sampler — nil — is
// the "telemetry off" state and hands out nil (no-op) instruments.
type Sampler struct {
	width   sim.Time
	windows int
	series  map[string]*Series
	gauges  map[string]*GaugeSeries
	hists   map[string]*HistSeries
}

// NewSampler builds a sampler over the grid covering [0, horizon) with
// the given window width; width <= 0 auto-sizes via AutoWindow. The
// grid always has at least one window.
func NewSampler(horizon, width sim.Time) *Sampler {
	if width <= 0 {
		width = AutoWindow(horizon)
	}
	n := int((horizon + width - 1) / width)
	if n < 1 {
		n = 1
	}
	return &Sampler{
		width:   width,
		windows: n,
		series:  make(map[string]*Series),
		gauges:  make(map[string]*GaugeSeries),
		hists:   make(map[string]*HistSeries),
	}
}

// Window reports the grid's window width (0 on a nil sampler).
func (s *Sampler) Window() sim.Time {
	if s == nil {
		return 0
	}
	return s.width
}

// Windows reports the number of regular grid windows, excluding the
// tail cell (0 on a nil sampler).
func (s *Sampler) Windows() int {
	if s == nil {
		return 0
	}
	return s.windows
}

// Enabled reports whether the sampler records anything; safe on nil.
func (s *Sampler) Enabled() bool { return s != nil }

// cellIndex maps an observation instant onto the grid: its window, or
// the tail cell (index windows) past the grid; instants before time
// zero clamp into window 0 (they cannot occur in a well-formed model,
// but a clamp keeps the hot path branch-cheap and panic-free).
//
//pmlint:hotpath
func cellIndex(at, width sim.Time, windows int) int {
	if at < 0 {
		return 0
	}
	i := int(at / width)
	if i > windows {
		return windows
	}
	return i
}

// Series is a windowed counter: one int64 accumulator per grid cell.
// The zero value of *Series — nil — no-ops.
type Series struct {
	name  string
	width sim.Time
	cells []int64
}

// Add accumulates d into the window containing at. No-op on nil. This
// is the window-roll hot path: pure index arithmetic, no allocation.
//
//pmlint:hotpath
func (c *Series) Add(at sim.Time, d int64) {
	if c == nil {
		return
	}
	c.cells[cellIndex(at, c.width, len(c.cells)-1)] += d
}

// Inc adds one at the given instant. No-op on nil.
//
//pmlint:hotpath
func (c *Series) Inc(at sim.Time) { c.Add(at, 1) }

// Cell reports window i's accumulated value (the tail cell is index
// Windows()). Returns 0 on a nil series or out-of-range index.
func (c *Series) Cell(i int) int64 {
	if c == nil || i < 0 || i >= len(c.cells) {
		return 0
	}
	return c.cells[i]
}

// Total sums every cell including the tail (0 on a nil series).
func (c *Series) Total() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for _, v := range c.cells {
		t += v
	}
	return t
}

// GaugeSeries is a windowed high-water mark: one maximum per grid cell.
// Maxima (unlike last-value gauges) fold commutatively across shards,
// which is why this is the windowed gauge shape. The zero value of
// *GaugeSeries — nil — no-ops.
type GaugeSeries struct {
	name  string
	width sim.Time
	// set marks cells that saw at least one observation, so a recorded
	// zero is distinguishable from an empty cell.
	set   []bool
	cells []int64
}

// Max raises the window containing at to v if v exceeds the cell's
// current maximum. No-op on nil.
//
//pmlint:hotpath
func (g *GaugeSeries) Max(at sim.Time, v int64) {
	if g == nil {
		return
	}
	i := cellIndex(at, g.width, len(g.cells)-1)
	if !g.set[i] || v > g.cells[i] {
		g.set[i] = true
		g.cells[i] = v
	}
}

// Cell reports window i's maximum and whether the cell saw any
// observation. Zero/false on a nil series or out-of-range index.
func (g *GaugeSeries) Cell(i int) (int64, bool) {
	if g == nil || i < 0 || i >= len(g.cells) {
		return 0, false
	}
	return g.cells[i], g.set[i]
}

// HistCell is one window's distribution snapshot: exact count, sum and
// extrema of the observations that landed in the window. Every field
// folds commutatively (sums and extrema), so merged snapshots are
// placement-independent.
type HistCell struct {
	Count, Sum, Min, Max int64
}

// Mean reports the cell's mean observation (0 when empty).
func (c HistCell) Mean() int64 {
	if c.Count == 0 {
		return 0
	}
	return c.Sum / c.Count
}

// HistSeries is a windowed distribution: one HistCell per grid cell.
// The zero value of *HistSeries — nil — no-ops.
type HistSeries struct {
	name  string
	width sim.Time
	// timeValued marks observations as sim.Time picoseconds (rendered
	// as microseconds).
	timeValued bool
	cells      []HistCell
}

// Observe tallies one value into the window containing at. No-op on
// nil. Window-roll hot path: index arithmetic only.
//
//pmlint:hotpath
func (h *HistSeries) Observe(at sim.Time, v int64) {
	if h == nil {
		return
	}
	c := &h.cells[cellIndex(at, h.width, len(h.cells)-1)]
	if c.Count == 0 || v < c.Min {
		c.Min = v
	}
	if c.Count == 0 || v > c.Max {
		c.Max = v
	}
	c.Count++
	c.Sum += v
}

// ObserveTime tallies one simulated duration. No-op on nil.
//
//pmlint:hotpath
func (h *HistSeries) ObserveTime(at sim.Time, d sim.Time) { h.Observe(at, int64(d)) }

// Cell reports window i's snapshot (zero value on a nil series or
// out-of-range index).
func (h *HistSeries) Cell(i int) HistCell {
	if h == nil || i < 0 || i >= len(h.cells) {
		return HistCell{}
	}
	return h.cells[i]
}

// Series returns the named windowed counter, creating it on first use.
// A nil sampler returns a nil (no-op) series.
func (s *Sampler) Series(name string) *Series {
	if s == nil {
		return nil
	}
	c, ok := s.series[name]
	if !ok {
		c = &Series{name: name, width: s.width, cells: make([]int64, s.windows+1)}
		s.series[name] = c
	}
	return c
}

// Gauge returns the named windowed high-water mark, creating it on
// first use. A nil sampler returns a nil (no-op) series.
func (s *Sampler) Gauge(name string) *GaugeSeries {
	if s == nil {
		return nil
	}
	g, ok := s.gauges[name]
	if !ok {
		g = &GaugeSeries{name: name, width: s.width, set: make([]bool, s.windows+1), cells: make([]int64, s.windows+1)}
		s.gauges[name] = g
	}
	return g
}

// Hist returns the named windowed distribution, creating it on first
// use. A nil sampler returns a nil (no-op) series.
func (s *Sampler) Hist(name string) *HistSeries {
	if s == nil {
		return nil
	}
	h, ok := s.hists[name]
	if !ok {
		h = &HistSeries{name: name, width: s.width, cells: make([]HistCell, s.windows+1)}
		s.hists[name] = h
	}
	return h
}

// TimeHist is Hist with simulated-time observations, rendered as
// microseconds in the dump. A nil sampler returns a nil series.
func (s *Sampler) TimeHist(name string) *HistSeries {
	if s == nil {
		return nil
	}
	h := s.Hist(name)
	h.timeValued = true
	return h
}

// MergeFrom folds another sampler's cells into this one: counters and
// histogram snapshots add, gauges keep cell-wise maxima. Both samplers
// must share the grid (width and window count) — a mismatch panics,
// because silently re-bucketing would corrupt the series. Instruments
// missing on the destination are created. Merging is the single-
// threaded fan-in step after a partitioned run; it must not race with
// observations. Every fold is commutative, so merging per-shard
// samplers in any order yields identical cells.
func (s *Sampler) MergeFrom(src *Sampler) {
	if s == nil || src == nil {
		return
	}
	if s.width != src.width || s.windows != src.windows {
		panic(fmt.Sprintf("telemetry: merging samplers with mismatched grids (%v/%d vs %v/%d)",
			s.width, s.windows, src.width, src.windows))
	}
	for _, name := range sortedKeys(src.series) {
		dst, sc := s.Series(name), src.series[name]
		for i, v := range sc.cells {
			dst.cells[i] += v
		}
	}
	for _, name := range sortedKeys(src.gauges) {
		dst, sg := s.Gauge(name), src.gauges[name]
		for i, v := range sg.cells {
			if sg.set[i] && (!dst.set[i] || v > dst.cells[i]) {
				dst.set[i] = true
				dst.cells[i] = v
			}
		}
	}
	for _, name := range sortedKeys(src.hists) {
		dst, sh := s.Hist(name), src.hists[name]
		dst.timeValued = dst.timeValued || sh.timeValued
		for i, c := range sh.cells {
			d := &dst.cells[i]
			if c.Count == 0 {
				continue
			}
			if d.Count == 0 || c.Min < d.Min {
				d.Min = c.Min
			}
			if d.Count == 0 || c.Max > d.Max {
				d.Max = c.Max
			}
			d.Count += c.Count
			d.Sum += c.Sum
		}
	}
}

// sortedKeys returns a map's keys in sorted order, so every iteration
// that can reach output or merge order is deterministic.
func sortedKeys[V any](m map[string]*V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WindowLabel renders grid cell i's range ("[0,25)us", or ">=800us"
// for the tail) — the row key every series table shares.
func (s *Sampler) WindowLabel(i int) string {
	if s == nil {
		return ""
	}
	us := int64(s.width / sim.Microsecond)
	if i >= s.windows {
		return fmt.Sprintf(">=%dus", int64(s.windows)*us)
	}
	return fmt.Sprintf("[%d,%d)us", int64(i)*us, int64(i+1)*us)
}

// Render produces the sampler's stable text dump: one block per
// instrument, sorted by name within each kind, one line per non-empty
// cell. A pure function of the recorded observations; a nil sampler
// renders the empty string. Layer-specific reports (internal/traffic's
// per-tenant series tables) render richer views off the same cells.
func (s *Sampler) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- telemetry (window %dus, %d windows + tail) --\n",
		int64(s.width/sim.Microsecond), s.windows)
	for _, name := range sortedKeys(s.series) {
		c := s.series[name]
		fmt.Fprintf(&b, "series     %s  total=%d\n", name, c.Total())
		for i, v := range c.cells {
			if v != 0 {
				fmt.Fprintf(&b, "  %s  %d\n", s.WindowLabel(i), v)
			}
		}
	}
	for _, name := range sortedKeys(s.gauges) {
		g := s.gauges[name]
		fmt.Fprintf(&b, "gauge      %s\n", name)
		for i := range g.cells {
			if g.set[i] {
				fmt.Fprintf(&b, "  %s  %d\n", s.WindowLabel(i), g.cells[i])
			}
		}
	}
	for _, name := range sortedKeys(s.hists) {
		h := s.hists[name]
		fmt.Fprintf(&b, "hist       %s\n", name)
		for i, c := range h.cells {
			if c.Count != 0 {
				fmt.Fprintf(&b, "  %s  count=%d mean=%s min=%s max=%s\n",
					s.WindowLabel(i), c.Count, h.renderValue(c.Mean()), h.renderValue(c.Min), h.renderValue(c.Max))
			}
		}
	}
	return b.String()
}

// renderValue formats one observation-domain value: exact decimal
// microseconds for time-valued series (1 ps = 1e-6 µs, float-free),
// the raw integer otherwise.
func (h *HistSeries) renderValue(v int64) string {
	if !h.timeValued {
		return fmt.Sprintf("%d", v)
	}
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	return fmt.Sprintf("%s%d.%06dus", neg, v/1_000_000, v%1_000_000)
}
