package heat

import (
	"encoding/binary"
	"fmt"
	"math"

	"powermanna/internal/mpl"
	"powermanna/internal/sim"
)

// RunPart solves the equation over a partitioned world: the same block
// decomposition, halo tags, stencil arithmetic, compute charges and
// residual reductions as Run, expressed as one SPMD function per rank
// instead of one loop over all ranks. The field is bit-identical to
// RunSerial; the makespan reflects the partitioned network's timing
// model (see the mpl.PWorld package comment for the differences from
// the legacy World).
func RunPart(w *mpl.PWorld, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	p := w.Ranks()
	if cfg.Cells < 3*p {
		return Result{}, fmt.Errorf("heat: %d cells across %d ranks leaves blocks under 3 cells", cfg.Cells, p)
	}

	encode := func(v float64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
		return b
	}
	decode := func(b []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}

	// Each rank writes only its own block; the slice is read after the
	// engine has drained.
	out := make([]float64, cfg.Cells)
	err := w.Run(func(r *mpl.PRank) error {
		rank := r.Rank()
		lo, hi := rank*cfg.Cells/p, (rank+1)*cfg.Cells/p
		n := hi - lo
		global := initial(cfg.Cells)
		cur := make([]float64, n+2)
		next := make([]float64, n+2)
		copy(cur[1:], global[lo:hi])

		for s := 0; s < cfg.Steps; s++ {
			tagL, tagR := 2*s, 2*s+1
			if rank > 0 {
				if err := r.Send(rank-1, tagR, encode(cur[1])); err != nil {
					return err
				}
			}
			if rank < p-1 {
				if err := r.Send(rank+1, tagL, encode(cur[n])); err != nil {
					return err
				}
			}
			if rank > 0 {
				b, err := r.Recv(rank-1, tagL)
				if err != nil {
					return err
				}
				cur[0] = decode(b)
			} else {
				cur[0] = 0 // physical boundary
			}
			if rank < p-1 {
				b, err := r.Recv(rank+1, tagR)
				if err != nil {
					return err
				}
				cur[n+1] = decode(b)
			} else {
				cur[n+1] = 0
			}

			step(next, cur, cfg.Alpha)
			if rank == 0 {
				next[1] = 0
			}
			if rank == p-1 {
				next[n] = 0
			}
			r.Compute(sim.ClockMHz(180).Cycles(cfg.ComputeCyclesPerCell * int64(n)))
			cur, next = next, cur

			if cfg.ReduceEvery > 0 && (s+1)%cfg.ReduceEvery == 0 && p > 1 {
				var sum float64
				for _, v := range cur[1 : n+1] {
					sum += v * v
				}
				if _, err := r.AllReduce([]float64{sum}, 1000+s); err != nil {
					return err
				}
			}
		}
		copy(out[lo:hi], cur[1:n+1])
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	out[0], out[cfg.Cells-1] = 0, 0
	msgs, bytes := w.Stats()
	return Result{
		Field:     out,
		Makespan:  w.MaxTime(),
		Ranks:     p,
		Messages:  msgs,
		MsgBytes:  bytes,
		CellsEach: cfg.Cells / p,
	}, nil
}
