package heat

import (
	"math"
	"testing"

	"powermanna/internal/mpl"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1024, 100).Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{Cells: 2, Steps: 1, Alpha: 0.25, ComputeCyclesPerCell: 1},
		{Cells: 100, Steps: 0, Alpha: 0.25, ComputeCyclesPerCell: 1},
		{Cells: 100, Steps: 1, Alpha: 0.6, ComputeCyclesPerCell: 1},
		{Cells: 100, Steps: 1, Alpha: 0.25, ComputeCyclesPerCell: 0},
		{Cells: 100, Steps: 1, Alpha: 0.25, ComputeCyclesPerCell: 1, ReduceEvery: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSerialConservesAndDiffuses(t *testing.T) {
	cfg := DefaultConfig(300, 500)
	field, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Heat diffuses outward: the spike's peak decays, the edges warm up
	// (but stay below the initial spike), and no cell goes negative.
	var peak float64
	for _, v := range field {
		if v < -1e-9 {
			t.Fatalf("negative temperature %g", v)
		}
		if v > peak {
			peak = v
		}
	}
	if peak >= 100 || peak < 10 {
		t.Errorf("peak after diffusion = %g, want decayed below 100", peak)
	}
	if field[10] <= 0 {
		t.Error("heat did not reach the near boundary region")
	}
}

func TestParallelMatchesSerialExactly(t *testing.T) {
	cfg := DefaultConfig(333, 120) // odd size: uneven blocks
	want, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []func() *topo.Topology{topo.Cluster8, topo.System256} {
		w := mpl.NewWorld(build())
		if build().Nodes() == 128 && cfg.Cells < 3*128 {
			cfg.Cells = 512
			want, _ = RunSerial(cfg)
		}
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if res.Field[i] != want[i] {
				t.Fatalf("%d ranks: cell %d = %g, want %g (must be bit-identical)",
					res.Ranks, i, res.Field[i], want[i])
			}
		}
	}
}

func TestStrongScaling(t *testing.T) {
	cfg := DefaultConfig(32768, 60)
	cfg.ReduceEvery = 0
	w1 := mpl.NewWorld(topo.New("single", 1))
	r1, err := Run(w1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w8 := mpl.NewWorld(topo.Cluster8())
	r8, err := Run(w8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(r1.Makespan) / float64(r8.Makespan)
	if speedup < 3 {
		t.Errorf("8-rank speedup = %.2f, want > 3 (compute-bound domain)", speedup)
	}
	if r8.Messages == 0 {
		t.Error("no halo messages")
	}
	// One-rank runs exchange nothing.
	if r1.Messages != 0 {
		t.Errorf("single rank sent %d messages", r1.Messages)
	}
}

func TestScalingRollsOverWhenCommBound(t *testing.T) {
	// A tiny domain across 128 ranks: halo latency dwarfs the per-rank
	// compute, so 128 ranks must NOT be ~16x faster than 8.
	cfg := DefaultConfig(512, 40)
	cfg.ReduceEvery = 0
	w8 := mpl.NewWorld(topo.Cluster8())
	r8, err := Run(w8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w128 := mpl.NewWorld(topo.System256())
	r128, err := Run(w128, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(r8.Makespan) / float64(r128.Makespan)
	if gain > 4 {
		t.Errorf("128 vs 8 ranks gained %.2fx on a comm-bound domain, expected rollover", gain)
	}
}

func TestRunErrors(t *testing.T) {
	w := mpl.NewWorld(topo.Cluster8())
	bad := DefaultConfig(10, 5) // 10 cells over 8 ranks: blocks too small
	if _, err := Run(w, bad); err == nil {
		t.Error("undersized domain accepted")
	}
	broken := DefaultConfig(100, 5)
	broken.Alpha = 0.9
	if _, err := Run(w, broken); err == nil {
		t.Error("unstable alpha accepted")
	}
	if _, err := RunSerial(broken); err == nil {
		t.Error("unstable alpha accepted by serial")
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() sim.Time {
		w := mpl.NewWorld(topo.Cluster8())
		r, err := Run(w, DefaultConfig(1024, 30))
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestEnergyDecays(t *testing.T) {
	// Total squared field (the residual the solver reduces) decreases
	// monotonically under diffusion with fixed-zero boundaries.
	cfg := DefaultConfig(200, 1)
	prev := math.Inf(1)
	for steps := 1; steps <= 256; steps *= 4 {
		cfg.Steps = steps
		f, err := RunSerial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for _, v := range f {
			e += v * v
		}
		if e > prev+1e-9 {
			t.Errorf("energy rose: %g after %d steps (prev %g)", e, steps, prev)
		}
		prev = e
	}
}
