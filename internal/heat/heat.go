// Package heat is a distributed-memory scientific application of the
// kind the paper's introduction motivates ("applications in the field of
// high-performance scientific computing are being increasingly designed
// to run [on] parallel computers with distributed-memory architectures"):
// explicit time-stepping of the 1D heat equation, domain-decomposed
// across PowerMANNA nodes with per-step halo exchanges over the
// message-passing layer and periodic residual reductions.
//
// The solver is exact twice over: the parallel run produces bit-identical
// fields to the serial reference (same stencil arithmetic per cell), and
// its simulated time composes real computation cost (cycles per cell on
// the MPC620) with the simulated network's message timing — so strong
// scaling, and the point where halo latency overtakes shrinking
// per-node work, fall out of the models.
package heat

import (
	"encoding/binary"
	"fmt"
	"math"

	"powermanna/internal/mpl"
	"powermanna/internal/sim"
)

// Config describes one solve.
type Config struct {
	// Cells is the global 1D domain size (boundary cells are fixed at 0).
	Cells int
	// Steps is the number of explicit time steps.
	Steps int
	// Alpha is the stability factor dt·k/dx² (must be ≤ 0.5).
	Alpha float64
	// ComputeCyclesPerCell is the per-cell update cost on the node CPU:
	// two loads from the halo'd row, a fused multiply-add pair, a store.
	ComputeCyclesPerCell int64
	// ReduceEvery inserts a residual AllReduce every k steps (0 = never):
	// the global synchronization real solvers use for convergence checks.
	ReduceEvery int
}

// DefaultConfig returns a solver setup calibrated for the MPC620.
func DefaultConfig(cells, steps int) Config {
	return Config{
		Cells:                cells,
		Steps:                steps,
		Alpha:                0.25,
		ComputeCyclesPerCell: 6, // calibrated: 4 flops + loads on the 4-issue core
		ReduceEvery:          50,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Cells < 3:
		return fmt.Errorf("heat: Cells = %d", c.Cells)
	case c.Steps <= 0:
		return fmt.Errorf("heat: Steps = %d", c.Steps)
	case c.Alpha <= 0 || c.Alpha > 0.5:
		return fmt.Errorf("heat: Alpha = %g violates stability", c.Alpha)
	case c.ComputeCyclesPerCell <= 0:
		return fmt.Errorf("heat: ComputeCyclesPerCell = %d", c.ComputeCyclesPerCell)
	case c.ReduceEvery < 0:
		return fmt.Errorf("heat: ReduceEvery = %d", c.ReduceEvery)
	}
	return nil
}

// initial sets the starting profile: a hot spike in the middle third.
func initial(cells int) []float64 {
	f := make([]float64, cells)
	for i := cells / 3; i < 2*cells/3; i++ {
		f[i] = 100
	}
	return f
}

// step advances one explicit Euler step on a slice with fixed-zero
// boundaries; src and dst include the boundary cells.
func step(dst, src []float64, alpha float64) {
	for i := 1; i < len(src)-1; i++ {
		dst[i] = src[i] + alpha*(src[i-1]-2*src[i]+src[i+1])
	}
}

// RunSerial computes the reference solution.
func RunSerial(cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cur := initial(cfg.Cells)
	next := make([]float64, cfg.Cells)
	for s := 0; s < cfg.Steps; s++ {
		step(next, cur, cfg.Alpha)
		next[0], next[cfg.Cells-1] = 0, 0
		cur, next = next, cur
	}
	return cur, nil
}

// Result reports a parallel solve.
type Result struct {
	Field     []float64
	Makespan  sim.Time
	Ranks     int
	Messages  int64
	MsgBytes  int64
	CellsEach int
}

// Run solves the equation across all ranks of a message-passing world,
// one contiguous block per rank, exchanging one-cell halos every step.
func Run(w *mpl.World, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	p := w.Ranks()
	if cfg.Cells < 3*p {
		return Result{}, fmt.Errorf("heat: %d cells across %d ranks leaves blocks under 3 cells", cfg.Cells, p)
	}

	// Block decomposition; each rank holds [lo, hi) plus two halo cells.
	lo := make([]int, p)
	hi := make([]int, p)
	for r := 0; r < p; r++ {
		lo[r] = r * cfg.Cells / p
		hi[r] = (r + 1) * cfg.Cells / p
	}
	global := initial(cfg.Cells)
	cur := make([][]float64, p)
	next := make([][]float64, p)
	for r := 0; r < p; r++ {
		n := hi[r] - lo[r]
		cur[r] = make([]float64, n+2)
		next[r] = make([]float64, n+2)
		copy(cur[r][1:], global[lo[r]:hi[r]])
	}

	encode := func(v float64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, math.Float64bits(v))
		return b
	}
	decode := func(b []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}

	for s := 0; s < cfg.Steps; s++ {
		// Halo exchange: post all sends, then receive. Tags encode the
		// step and direction so rounds never cross-match.
		tagL, tagR := 2*s, 2*s+1
		for r := 0; r < p; r++ {
			n := hi[r] - lo[r]
			if r > 0 {
				if err := w.Send(r, r-1, tagR, encode(cur[r][1])); err != nil {
					return Result{}, err
				}
			}
			if r < p-1 {
				if err := w.Send(r, r+1, tagL, encode(cur[r][n])); err != nil {
					return Result{}, err
				}
			}
		}
		for r := 0; r < p; r++ {
			n := hi[r] - lo[r]
			if r > 0 {
				b, err := w.Recv(r, r-1, tagL)
				if err != nil {
					return Result{}, err
				}
				cur[r][0] = decode(b)
			} else {
				cur[r][0] = 0 // physical boundary
			}
			if r < p-1 {
				b, err := w.Recv(r, r+1, tagR)
				if err != nil {
					return Result{}, err
				}
				cur[r][n+1] = decode(b)
			} else {
				cur[r][n+1] = 0
			}
		}

		// Local update, charged to each rank's clock; the physical
		// boundaries stay pinned at zero exactly as in the serial code.
		for r := 0; r < p; r++ {
			n := hi[r] - lo[r]
			step(next[r], cur[r], cfg.Alpha)
			if r == 0 {
				next[r][1] = 0
			}
			if r == p-1 {
				next[r][n] = 0
			}
			w.Compute(r, sim.ClockMHz(180).Cycles(cfg.ComputeCyclesPerCell*int64(n)))
			cur[r], next[r] = next[r], cur[r]
		}

		// Periodic residual reduction (the convergence check).
		if cfg.ReduceEvery > 0 && (s+1)%cfg.ReduceEvery == 0 && p > 1 {
			contrib := make([][]float64, p)
			for r := 0; r < p; r++ {
				var sum float64
				for _, v := range cur[r][1 : hi[r]-lo[r]+1] {
					sum += v * v
				}
				contrib[r] = []float64{sum}
			}
			if _, err := w.AllReduce(contrib, 1000+s); err != nil {
				return Result{}, err
			}
		}
	}

	// Assemble the global field.
	out := make([]float64, cfg.Cells)
	for r := 0; r < p; r++ {
		copy(out[lo[r]:hi[r]], cur[r][1:hi[r]-lo[r]+1])
	}
	out[0], out[cfg.Cells-1] = 0, 0
	msgs, bytes := w.Stats()
	return Result{
		Field:     out,
		Makespan:  w.MaxTime(),
		Ranks:     p,
		Messages:  msgs,
		MsgBytes:  bytes,
		CellsEach: cfg.Cells / p,
	}, nil
}
