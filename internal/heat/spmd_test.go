package heat

import (
	"fmt"
	"testing"

	"powermanna/internal/mpl"
	"powermanna/internal/topo"
)

// TestPartMatchesSerialExactly pins the SPMD solver's arithmetic: the
// field computed over the partitioned world is bit-identical to the
// serial reference, at every aligned shard count.
func TestPartMatchesSerialExactly(t *testing.T) {
	top := topo.System256()
	cfg := DefaultConfig(24*top.Nodes(), 60)
	want, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		w, err := mpl.NewPWorld(top, shards)
		if err != nil {
			t.Fatalf("NewPWorld(%d): %v", shards, err)
		}
		res, err := RunPart(w, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := range want {
			if res.Field[i] != want[i] {
				t.Fatalf("shards=%d: cell %d = %g, want %g", shards, i, res.Field[i], want[i])
			}
		}
		if res.Makespan <= 0 || res.Messages == 0 {
			t.Fatalf("shards=%d: trivial result %+v", shards, res)
		}
	}
}

// TestPartDeterministicAcrossShards pins the timing side: identical
// makespan and traffic at every aligned shard count, serial or
// parallel dispatch.
func TestPartDeterministicAcrossShards(t *testing.T) {
	top := topo.System256()
	cfg := DefaultConfig(8*top.Nodes(), 12)
	cfg.ReduceEvery = 6
	run := func(shards int, serial bool) Result {
		w, err := mpl.NewPWorld(top, shards)
		if err != nil {
			t.Fatalf("NewPWorld(%d): %v", shards, err)
		}
		w.PartNetwork().SetSerial(serial)
		res, err := RunPart(w, cfg)
		if err != nil {
			t.Fatalf("shards=%d serial=%v: %v", shards, serial, err)
		}
		return res
	}
	ref := run(1, false)
	for _, shards := range []int{2, 8, 16} {
		got := run(shards, false)
		if got.Makespan != ref.Makespan || got.Messages != ref.Messages || got.MsgBytes != ref.MsgBytes {
			t.Errorf("shards=%d: makespan %v msgs %d bytes %d, want %v %d %d",
				shards, got.Makespan, got.Messages, got.MsgBytes, ref.Makespan, ref.Messages, ref.MsgBytes)
		}
	}
	if got := run(4, true); got.Makespan != ref.Makespan {
		t.Errorf("serial dispatch: makespan %v, want %v", got.Makespan, ref.Makespan)
	}
}

// BenchmarkHeatSystem256 sweeps the partitioned heat solver across
// shard counts on the full machine: engine=seq is the single-heap
// serial-dispatch baseline, engine=par fans the shard heaps across
// worker goroutines. Wall-clock at shards=4 under -cpu 4 is the
// headline: the same byte-identical event program, walked in parallel.
func BenchmarkHeatSystem256(b *testing.B) {
	top := topo.System256()
	cfg := DefaultConfig(24*top.Nodes(), 30)
	run := func(b *testing.B, shards int, serial bool) {
		for i := 0; i < b.N; i++ {
			w, err := mpl.NewPWorld(top, shards)
			if err != nil {
				b.Fatal(err)
			}
			w.PartNetwork().SetSerial(serial)
			if _, err := RunPart(w, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("engine=seq/shards=1", func(b *testing.B) { run(b, 1, true) })
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("engine=par/shards=%d", shards), func(b *testing.B) { run(b, shards, false) })
	}
}
