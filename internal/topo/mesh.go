package topo

import "fmt"

// Mesh builds a w×h 2D mesh of single-node routers — the topology of the
// Intel PARAGON and Cray T3E generation that Section 3 of the paper
// argues against: "Less expensive mesh topologies, however, as used in
// the PARAGON or Cray T3E systems, exhibit a poor blocking behavior."
//
// Each node attaches through link 0 to its own router, modelled as a
// (mostly empty) crossbar with one processor port and up to four
// neighbour ports. Wormhole circuits then hold every router output along
// a path, so long mesh routes block each other exactly the way the
// paper's citation [5] describes — the behaviour the blocking experiment
// compares against the crossbar hierarchy.
//
// Router port assignment: 0 = node, 1 = east neighbour, 2 = west,
// 3 = south, 4 = north.
func Mesh(w, h int) *Topology {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("topo: mesh %dx%d", w, h))
	}
	t := New(fmt.Sprintf("mesh%dx%d", w, h), w*h)
	routers := make([]int, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			routers[i] = t.AddCrossbar(fmt.Sprintf("R%d,%d", x, y))
			mustConnect(t, i, 0, routers[i], 0, false)
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if x+1 < w {
				mustConnect(t, routers[i], 1, routers[i+1], 2, false) // east-west
			}
			if y+1 < h {
				mustConnect(t, routers[i], 3, routers[i+w], 4, false) // south-north
			}
		}
	}
	return t
}
