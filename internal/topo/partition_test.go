package topo

import (
	"strings"
	"testing"
)

// TestPartitionSystem256TwoSegment sweeps every (src, dst, network) route
// of the 256-processor system for every aligned shard count and checks
// the ownership decomposition the split-phase send path relies on: a
// source-owned prefix, a destination-owned suffix, one handoff.
func TestPartitionSystem256TwoSegment(t *testing.T) {
	top := System256()
	for _, shards := range []int{1, 2, 4, 8, 16} {
		p, err := top.Partition(shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if p.Shards() != shards {
			t.Fatalf("shards=%d: Shards()=%d", shards, p.Shards())
		}
		crossShard := 0
		for src := 0; src < top.Nodes(); src++ {
			for dst := 0; dst < top.Nodes(); dst++ {
				if src == dst {
					continue
				}
				for _, net := range []int{NetworkA, NetworkB} {
					path, err := top.Route(src, dst, net)
					if err != nil {
						t.Fatal(err)
					}
					b := p.Boundary(path)
					ss, ds := p.NodeShard(src), p.NodeShard(dst)
					if ss == ds && b != len(path.Hops) {
						t.Fatalf("shards=%d %d->%d net%d: intra-shard route has boundary %d", shards, src, dst, net, b)
					}
					if ss != ds {
						crossShard++
						if b >= len(path.Hops) {
							t.Fatalf("shards=%d %d->%d net%d: cross-shard route never hands off", shards, src, dst, net)
						}
					}
					// Prefix hops source-owned, suffix hops destination-owned:
					// exactly one ownership change along the walk.
					for i, h := range path.Hops {
						own := p.XbarOutOwner(h.Xbar, h.Out)
						want := ss
						if i >= b {
							want = ds
						}
						if own != want {
							t.Fatalf("shards=%d %d->%d net%d hop %d: owner %d, want %d (boundary %d)",
								shards, src, dst, net, i, own, want, b)
						}
					}
				}
			}
		}
		if shards > 1 && crossShard == 0 {
			t.Fatalf("shards=%d: no cross-shard routes exercised", shards)
		}
	}
}

// TestPartitionAlignment pins the rejection cases: a shard count that
// splits a leaf-crossbar group, and one that does not divide the nodes.
func TestPartitionAlignment(t *testing.T) {
	c8 := Cluster8()
	if _, err := c8.Partition(1); err != nil {
		t.Fatalf("Cluster8 shards=1: %v", err)
	}
	if _, err := c8.Partition(2); err == nil || !strings.Contains(err.Error(), "align") {
		t.Fatalf("Cluster8 shards=2: want leaf-alignment error, got %v", err)
	}
	s256 := System256()
	if _, err := s256.Partition(3); err == nil || !strings.Contains(err.Error(), "divisible") {
		t.Fatalf("System256 shards=3: want divisibility error, got %v", err)
	}
	if _, err := s256.Partition(0); err == nil {
		t.Fatal("shards=0 accepted")
	}
	// 32 shards would carve 4-node half-groups out of 8-node leaf groups.
	if _, err := s256.Partition(32); err == nil || !strings.Contains(err.Error(), "align") {
		t.Fatalf("System256 shards=32: want leaf-alignment error, got %v", err)
	}
}

// TestPartitionOwnershipTables spot-checks the wiring-derived tables on
// System256 with 16 shards (one leaf group per shard, the finest grain).
func TestPartitionOwnershipTables(t *testing.T) {
	top := System256()
	p, err := top.Partition(16)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < top.Nodes(); n++ {
		if got, want := p.NodeShard(n), n/8; got != want {
			t.Fatalf("node %d: shard %d, want %d", n, got, want)
		}
	}
	// Leaf crossbars A_c (ordinal 2c) and B_c (2c+1): every wired output
	// belongs to cluster c's shard.
	for c := 0; c < 16; c++ {
		for _, x := range []int{2 * c, 2*c + 1} {
			for out := 0; out < 16; out++ {
				if own := p.XbarOutOwner(x, out); own != c {
					t.Fatalf("leaf xbar %d out %d: owner %d, want %d", x, out, own, c)
				}
			}
		}
	}
	// Central crossbars (ordinals 32..47): output c feeds cluster c.
	for x := 32; x < 48; x++ {
		for out := 0; out < 16; out++ {
			if own := p.XbarOutOwner(x, out); own != out {
				t.Fatalf("central xbar %d out %d: owner %d, want %d", x, out, own, out)
			}
		}
	}
}
