package topo

import (
	"strings"
	"testing"
)

func TestCrossbarPlanesCluster8(t *testing.T) {
	tp := Cluster8()
	planes := tp.CrossbarPlanes()
	if len(planes) != 2 || planes[0] != NetworkA || planes[1] != NetworkB {
		t.Errorf("planes = %v, want [A B]", planes)
	}
}

func TestCrossbarPlanesSystem256(t *testing.T) {
	tp := System256()
	planes := tp.CrossbarPlanes()
	for xi, p := range planes {
		name := tp.CrossbarName(xi)
		wantA := strings.HasPrefix(name, "A") || strings.HasPrefix(name, "CA")
		if wantA && p != NetworkA {
			t.Errorf("crossbar %s on plane %d, want A", name, p)
		}
		if !wantA && p != NetworkB {
			t.Errorf("crossbar %s on plane %d, want B", name, p)
		}
	}
}

func TestCrossbarPlanesMeshSingleNetwork(t *testing.T) {
	// A topology wired only on plane A: its crossbars are all plane A.
	tp := New("one-plane", 2)
	x := tp.AddCrossbar("X")
	if err := tp.Connect(0, NetworkA, x, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := tp.Connect(1, NetworkA, x, 1, false); err != nil {
		t.Fatal(err)
	}
	planes := tp.CrossbarPlanes()
	if planes[0] != NetworkA {
		t.Errorf("planes = %v", planes)
	}
}

func TestWiredPorts(t *testing.T) {
	tp := Cluster8()
	for xi := 0; xi < tp.Crossbars(); xi++ {
		wired := tp.WiredPorts(xi)
		if len(wired) != 8 {
			t.Fatalf("crossbar %d: %d wired ports, want 8", xi, len(wired))
		}
		for i, p := range wired {
			if p != i {
				t.Errorf("crossbar %d wired ports = %v, want 0..7 ascending", xi, wired)
				break
			}
		}
		if free := tp.FreePorts(xi); free != 8 {
			t.Errorf("crossbar %d: %d free ports, want 8", xi, free)
		}
	}
}
