// Node partitioning for the parallel engine (internal/psim): carve a
// topology into contiguous node groups, one group run per shard, and
// assign every directed network resource to exactly one owning shard so
// the split-phase send path of internal/netsim touches remote state only
// through timestamped cross-shard events.
//
// The ownership rule mirrors the machine's wiring (Figure 5b): every
// resource on the *up* direction of the hierarchy — a node's uplink
// wire, its leaf crossbar's outputs, the leaf-to-central wire — belongs
// to the shard of the leaf group it originates from; every resource on
// the *down* direction — a central crossbar's output, the
// central-to-leaf wire, the leaf-to-node wire — belongs to the shard of
// the leaf group it terminates in. A route through the two-level
// hierarchy (node → leaf → central → leaf → node) therefore decomposes
// into exactly two ownership segments, with the handoff at the central
// crossbar's output channel — the one point where a message leaves its
// source group's half of the machine.
//
// The decomposition is only that clean when shard boundaries align with
// leaf-crossbar groups: splitting a leaf group would put two shards on
// one crossbar's node-facing outputs, and — worse for the conservative
// windows — the first remote resource would then sit one wire away from
// the source node, under psim.DefaultLookahead. Partition rejects
// misaligned shard counts for exactly that reason.
package topo

import (
	"fmt"

	"powermanna/internal/xbar"
)

// Partition is a deterministic assignment of nodes to shards and of
// directed network resources (directed wires, crossbar output channels)
// to owning shards. It is pure data: internal/netsim consults it on
// every partitioned send, internal/fault uses it to aim injectors at the
// owning shard.
type Partition struct {
	shards    int
	nodeShard []int
	// leafGroup maps a crossbar ordinal to its leaf group (-1 for a
	// central-stage crossbar adjacent to no node).
	leafGroup []int
	// outOwner maps (crossbar ordinal, output port) to the shard owning
	// both the output channel and the directed wire leaving it (-1 for an
	// unwired port).
	outOwner [][]int
}

// Partition carves the topology into shards contiguous node groups of
// equal size and derives the resource-ownership tables. shards must
// divide the node count, and every leaf-crossbar group (the nodes
// sharing a leaf crossbar) must land entirely inside one shard — the
// alignment that keeps every route a two-segment src/dst decomposition
// and keeps the first cross-shard event at least a crossbar route setup
// plus a link byte period in the future (psim.DefaultLookahead). A
// single-shard partition is valid for any topology.
func (t *Topology) Partition(shards int) (*Partition, error) {
	if shards < 1 {
		return nil, fmt.Errorf("topo %s: partition into %d shards", t.name, shards)
	}
	if t.nodes%shards != 0 {
		return nil, fmt.Errorf("topo %s: %d nodes not divisible into %d shards", t.name, t.nodes, shards)
	}
	per := t.nodes / shards
	nodeShard := make([]int, t.nodes)
	for n := range nodeShard {
		nodeShard[n] = n / per
	}
	return t.derivePartition(nodeShard, shards)
}

// GroupPartition partitions at the topology's natural grain: one shard
// per leaf-crossbar group (the nodes sharing a network-A leaf). This is
// the finest aligned partition — the grain the split-phase send path
// fixes its event program to, so that coarser shard counts replay the
// identical history.
func (t *Topology) GroupPartition() (*Partition, error) {
	nodeShard := make([]int, t.nodes)
	leafOf := make(map[int]int) // leaf device -> group index
	for n := 0; n < t.nodes; n++ {
		e, ok := t.adj[port{n, NetworkA}]
		if !ok {
			return nil, fmt.Errorf("topo %s: node %d link A not wired", t.name, n)
		}
		g, seen := leafOf[e.peerDev]
		if !seen {
			g = len(leafOf)
			leafOf[e.peerDev] = g
		} else if nodeShard[n-1] != g {
			return nil, fmt.Errorf("topo %s: leaf group of node %d is not contiguous", t.name, n)
		}
		nodeShard[n] = g
	}
	return t.derivePartition(nodeShard, len(leafOf))
}

// derivePartition builds the ownership tables over a node-to-shard map.
func (t *Topology) derivePartition(nodeShard []int, shards int) (*Partition, error) {
	p := &Partition{
		shards:    shards,
		nodeShard: nodeShard,
		leafGroup: make([]int, len(t.xbarName)),
		outOwner:  make([][]int, len(t.xbarName)),
	}

	// Classify crossbars: a leaf is adjacent to at least one node, and its
	// group is the shard of its attached nodes (which must agree — a leaf
	// group split across shards is a misaligned partition).
	for x := range p.leafGroup {
		p.leafGroup[x] = -1
		dev := t.nodes + x
		for o := 0; o < xbar.Ports; o++ {
			e, ok := t.adj[port{dev, o}]
			if !ok || !t.isNode(e.peerDev) {
				continue
			}
			s := p.nodeShard[e.peerDev]
			if p.leafGroup[x] == -1 {
				p.leafGroup[x] = s
			} else if p.leafGroup[x] != s && shards > 1 {
				return nil, fmt.Errorf(
					"topo %s: %d shards split leaf crossbar %s across shards %d and %d (shards must align with leaf groups)",
					t.name, shards, t.xbarName[x], p.leafGroup[x], s)
			}
		}
	}

	// Ownership of output channels and the directed wires leaving them.
	for x := range p.outOwner {
		p.outOwner[x] = make([]int, xbar.Ports)
		dev := t.nodes + x
		for o := range p.outOwner[x] {
			e, ok := t.adj[port{dev, o}]
			switch {
			case !ok:
				p.outOwner[x][o] = -1
			case p.leafGroup[x] >= 0:
				// Leaf crossbar: both node-facing and central-facing outputs
				// originate in the leaf's group.
				p.outOwner[x][o] = p.leafGroup[x]
			case t.isNode(e.peerDev):
				// A central crossbar wired straight to a node cannot happen
				// (it would be a leaf); keep the case for clarity.
				p.outOwner[x][o] = p.nodeShard[e.peerDev]
			default:
				// Central crossbar output: owned by the leaf group it feeds.
				peer := t.xbarIndex(e.peerDev)
				if p.leafGroup[peer] < 0 {
					if shards > 1 {
						return nil, fmt.Errorf(
							"topo %s: crossbar %s-%s is a central-to-central link; partitioning supports two-level hierarchies only",
							t.name, t.xbarName[x], t.xbarName[peer])
					}
					p.outOwner[x][o] = 0
					continue
				}
				p.outOwner[x][o] = p.leafGroup[peer]
			}
		}
	}
	return p, nil
}

// Shards reports the shard count.
func (p *Partition) Shards() int { return p.shards }

// NodeShard reports the shard owning node n and all its per-node devices
// (link interfaces, transports, rank state).
func (p *Partition) NodeShard(n int) int { return p.nodeShard[n] }

// XbarOutOwner reports the shard owning crossbar x's output channel out
// and the directed wire leaving it (-1 if the port is unwired).
func (p *Partition) XbarOutOwner(x, out int) int { return p.outOwner[x][out] }

// Wired reports whether device dev drives a link out of port p — the
// wire-existence query internal/netsim uses to pre-create every directed
// wire before a partitioned run (lazy wire creation would write a shared
// map from concurrent shards).
func (t *Topology) Wired(dev, p int) bool {
	_, ok := t.adj[port{dev, p}]
	return ok
}

// Boundary reports the index of the first hop of the path whose output
// channel belongs to the destination shard — where the split-phase send
// hands off. It returns len(path.Hops) when every hop is source-owned
// (an intra-shard route: the send never leaves its shard).
func (p *Partition) Boundary(path Path) int {
	src := p.nodeShard[path.Src]
	for i, h := range path.Hops {
		if p.outOwner[h.Xbar][h.Out] != src {
			return i
		}
	}
	return len(path.Hops)
}
