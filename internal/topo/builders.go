package topo

import "fmt"

// Cluster8 builds the Figure 5a configuration: eight nodes, two crossbars
// (A and B, one per network plane), assembled on one backplane. Ports
// 8–15 of each crossbar remain free for the eight asynchronous dual-links
// to other cabinets.
func Cluster8() *Topology {
	t := New("cluster8", 8)
	a := t.AddCrossbar("A")
	b := t.AddCrossbar("B")
	for i := 0; i < 8; i++ {
		mustConnect(t, i, 0, a, i, false)
		mustConnect(t, i, 1, b, i, false)
	}
	return t
}

// System256 builds the Figure 5b configuration: 256 processors as 128
// two-way nodes in 16 clusters. Each cluster is a Cluster8 backplane; its
// eight free ports per plane fan out over asynchronous links to a central
// stage of eight 16×16 crossbars per plane (one link from every cluster
// to every central crossbar). Any two nodes connect through at most three
// crossbars, and every line of the figure is a duplicated link pair
// carrying 240 Mbyte/s in total.
func System256() *Topology {
	const clusters = 16
	t := New("system256", clusters*8)
	clusterA := make([]int, clusters)
	clusterB := make([]int, clusters)
	for c := 0; c < clusters; c++ {
		clusterA[c] = t.AddCrossbar(fmt.Sprintf("A%d", c))
		clusterB[c] = t.AddCrossbar(fmt.Sprintf("B%d", c))
		for i := 0; i < 8; i++ {
			node := c*8 + i
			mustConnect(t, node, 0, clusterA[c], i, false)
			mustConnect(t, node, 1, clusterB[c], i, false)
		}
	}
	for j := 0; j < 8; j++ {
		ca := t.AddCrossbar(fmt.Sprintf("CA%d", j))
		cb := t.AddCrossbar(fmt.Sprintf("CB%d", j))
		for c := 0; c < clusters; c++ {
			mustConnect(t, clusterA[c], 8+j, ca, c, true)
			mustConnect(t, clusterB[c], 8+j, cb, c, true)
		}
	}
	return t
}

func mustConnect(t *Topology, devA, portA, devB, portB int, async bool) {
	if err := t.Connect(devA, portA, devB, portB, async); err != nil {
		panic(err)
	}
}
