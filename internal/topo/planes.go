package topo

import "powermanna/internal/xbar"

// CrossbarPlanes reports which network plane each crossbar serves, indexed
// by crossbar ordinal: NetworkA, NetworkB, or -1 for a crossbar reachable
// from no node port. In the duplicated communication system the two
// planes are disjoint hierarchies (Section 4, Figure 5), so every
// crossbar belongs to exactly one plane; in a topology where the planes
// meet, the lower-numbered plane wins. The fault-campaign engine uses
// this to aim plane-A faults at plane-A hardware.
func (t *Topology) CrossbarPlanes() []int {
	planes := make([]int, len(t.xbarName))
	for i := range planes {
		planes[i] = -1
	}
	for _, net := range []int{NetworkA, NetworkB} {
		// Seed the flood with every crossbar directly on a node's port for
		// this plane, then spread across crossbar-to-crossbar links.
		var queue []int
		claim := func(dev int) {
			xi := t.xbarIndex(dev)
			if planes[xi] == -1 {
				planes[xi] = net
				queue = append(queue, dev)
			}
		}
		for nd := 0; nd < t.nodes; nd++ {
			if e, ok := t.adj[port{nd, net}]; ok && !t.isNode(e.peerDev) {
				claim(e.peerDev)
			}
		}
		for len(queue) > 0 {
			dev := queue[0]
			queue = queue[1:]
			for out := 0; out < xbar.Ports; out++ {
				if e, ok := t.adj[port{dev, out}]; ok && !t.isNode(e.peerDev) {
					claim(e.peerDev)
				}
			}
		}
	}
	return planes
}

// CentralCrossbars lists the crossbars wired only to other crossbars —
// the central switching stage of a hierarchical topology (the middle
// 16×16 stage of System256's Clos-like fabric), in ascending ordinal
// order. A fault there hits no single node's uplink but degrades the
// routes of every cluster the stage connects; leaf crossbars and
// unwired ordinals are excluded.
func (t *Topology) CentralCrossbars() []int {
	var central []int
	for i := range t.xbarName {
		wired, node := false, false
		for p := 0; p < xbar.Ports; p++ {
			if e, ok := t.adj[port{t.nodes + i, p}]; ok {
				wired = true
				if t.isNode(e.peerDev) {
					node = true
				}
			}
		}
		if wired && !node {
			central = append(central, i)
		}
	}
	return central
}

// WiredPorts lists the wired ports of crossbar ordinal i in ascending
// order — the ports where a stuck-busy fault actually obstructs traffic.
func (t *Topology) WiredPorts(i int) []int {
	var wired []int
	for p := 0; p < xbar.Ports; p++ {
		if _, used := t.adj[port{t.nodes + i, p}]; used {
			wired = append(wired, p)
		}
	}
	return wired
}
