package topo

import (
	"testing"
)

func TestCluster8Shape(t *testing.T) {
	c := Cluster8()
	if c.Nodes() != 8 || c.Crossbars() != 2 {
		t.Fatalf("cluster8: %d nodes, %d crossbars", c.Nodes(), c.Crossbars())
	}
	// Figure 5a: eight free dual-links remain for inter-cluster cabling.
	if f := c.FreePorts(0); f != 8 {
		t.Errorf("crossbar A free ports = %d, want 8", f)
	}
	if f := c.FreePorts(1); f != 8 {
		t.Errorf("crossbar B free ports = %d, want 8", f)
	}
}

func TestCluster8SingleHopRoutes(t *testing.T) {
	c := Cluster8()
	for _, net := range []int{NetworkA, NetworkB} {
		p, err := c.Route(0, 5, net)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Hops) != 1 {
			t.Fatalf("cluster route has %d hops, want 1", len(p.Hops))
		}
		if p.Hops[0].Xbar != net { // A for network 0, B for network 1
			t.Errorf("network %d routed via crossbar %d", net, p.Hops[0].Xbar)
		}
		if p.Hops[0].In != 0 || p.Hops[0].Out != 5 {
			t.Errorf("hop ports = in %d out %d, want 0 -> 5", p.Hops[0].In, p.Hops[0].Out)
		}
		if len(p.RouteBytes) != 1 || p.RouteBytes[0] != 5 {
			t.Errorf("route bytes = %v, want [5]", p.RouteBytes)
		}
		if p.AsyncLinks != 0 {
			t.Errorf("intra-cabinet route crossed %d async links", p.AsyncLinks)
		}
	}
}

func TestRouteSelfIsEmpty(t *testing.T) {
	c := Cluster8()
	p, err := c.Route(3, 3, NetworkA)
	if err != nil || len(p.Hops) != 0 {
		t.Errorf("self route = %v hops, err %v", p.Hops, err)
	}
}

func TestRouteErrors(t *testing.T) {
	c := Cluster8()
	if _, err := c.Route(-1, 0, NetworkA); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := c.Route(0, 99, NetworkA); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := c.Route(0, 1, 7); err == nil {
		t.Error("bad network accepted")
	}
}

func TestConnectRejectsDoubleWiring(t *testing.T) {
	c := New("t", 2)
	x := c.AddCrossbar("X")
	if err := c.Connect(0, 0, x, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Connect(1, 0, x, 0, false); err == nil {
		t.Error("port double-wiring accepted")
	}
	if err := c.Connect(0, 5, x, 1, false); err == nil {
		t.Error("node port 5 accepted")
	}
	if err := c.Connect(1, 0, x, 99, false); err == nil {
		t.Error("crossbar port 99 accepted")
	}
}

func TestSystem256Shape(t *testing.T) {
	s := System256()
	if s.Nodes() != 128 {
		t.Fatalf("system256 nodes = %d, want 128 (256 processors)", s.Nodes())
	}
	if s.Crossbars() != 48 {
		t.Fatalf("system256 crossbars = %d, want 48 (32 cluster + 16 central)", s.Crossbars())
	}
}

func TestSystem256IntraClusterRoutes(t *testing.T) {
	s := System256()
	p, err := s.Route(0, 7, NetworkA)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 1 {
		t.Errorf("intra-cluster route = %d hops, want 1", len(p.Hops))
	}
}

func TestSystem256InterClusterRoutes(t *testing.T) {
	s := System256()
	// Node 0 (cluster 0) to node 127 (cluster 15).
	p, err := s.Route(0, 127, NetworkB)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 3 {
		t.Fatalf("inter-cluster route = %d hops, want 3", len(p.Hops))
	}
	if len(p.RouteBytes) != 3 {
		t.Errorf("route bytes = %d, want 3 (one consumed per crossbar)", len(p.RouteBytes))
	}
	// Exactly two asynchronous crossings: cluster→central and
	// central→cluster.
	if p.AsyncLinks != 2 {
		t.Errorf("async links = %d, want 2", p.AsyncLinks)
	}
	if !p.Hops[1].AsyncIn || p.Hops[0].AsyncIn {
		t.Errorf("async hop marking wrong: %+v", p.Hops)
	}
}

// The paper's claim: "a logical connection between any two nodes involves
// at most only three crossbars."
func TestSystem256MaxThreeCrossbars(t *testing.T) {
	if testing.Short() {
		t.Skip("full pairwise sweep")
	}
	s := System256()
	max, err := s.MaxCrossbars()
	if err != nil {
		t.Fatal(err)
	}
	if max != 3 {
		t.Errorf("max crossbars over all pairs = %d, want 3", max)
	}
}

// Both networks of the duplicated system must reach every pair
// independently.
func TestSystem256DuplicatedNetworksDisjoint(t *testing.T) {
	s := System256()
	pa, err := s.Route(3, 90, NetworkA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := s.Route(3, 90, NetworkB)
	if err != nil {
		t.Fatal(err)
	}
	// No crossbar appears in both paths: the planes are fully separate.
	seen := map[int]bool{}
	for _, h := range pa.Hops {
		seen[h.Xbar] = true
	}
	for _, h := range pb.Hops {
		if seen[h.Xbar] {
			t.Errorf("crossbar %d shared between network planes", h.Xbar)
		}
	}
}

func TestCluster8AllPairsOneCrossbar(t *testing.T) {
	c := Cluster8()
	max, err := c.MaxCrossbars()
	if err != nil {
		t.Fatal(err)
	}
	if max != 1 {
		t.Errorf("cluster8 max crossbars = %d, want 1", max)
	}
}

func TestMeshShape(t *testing.T) {
	m := Mesh(4, 2)
	if m.Nodes() != 8 || m.Crossbars() != 8 {
		t.Fatalf("mesh4x2: %d nodes, %d routers", m.Nodes(), m.Crossbars())
	}
	// Corner-to-corner route: 0 -> 7 needs 3+1 = 4 router hops minimum.
	p, err := m.Route(0, 7, NetworkA)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 5 { // enter router 0, cross 3 easts... BFS shortest device path
		// Manhattan distance (3,1) => 4 inter-router hops => 5 routers.
		t.Errorf("corner route hops = %d, want 5", len(p.Hops))
	}
}

func TestMeshNeighborsOneRouterApart(t *testing.T) {
	m := Mesh(4, 4)
	p, err := m.Route(5, 6, NetworkA)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 2 {
		t.Errorf("neighbour route = %d hops, want 2 routers", len(p.Hops))
	}
}

func TestMeshDiameterExceedsCrossbarHierarchy(t *testing.T) {
	if testing.Short() {
		t.Skip("pairwise sweep")
	}
	// 128 nodes each way: 16x8 mesh vs the Figure 5b hierarchy.
	mesh := Mesh(16, 8)
	maxMesh, err := mesh.MaxCrossbars()
	if err != nil {
		t.Fatal(err)
	}
	s256 := System256()
	maxHier, err := s256.MaxCrossbars()
	if err != nil {
		t.Fatal(err)
	}
	if maxMesh <= maxHier {
		t.Errorf("mesh max hops %d not above hierarchy %d", maxMesh, maxHier)
	}
	// 16x8 mesh diameter: (15+7) inter-router hops + source router = 23.
	if maxMesh != 23 {
		t.Errorf("mesh diameter = %d routers, want 23", maxMesh)
	}
}

func TestMeshPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mesh(0,3) did not panic")
		}
	}()
	Mesh(0, 3)
}
