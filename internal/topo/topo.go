// Package topo builds and routes PowerMANNA interconnect topologies
// (Section 3 and Figure 5 of the paper).
//
// The interconnect is a hierarchy of 16×16 crossbars. Every node carries
// two bidirectional link ports attached to two separate networks — the
// duplicated communication system that doubles bandwidth and lets system
// software claim one network while applications own the other (Section 4).
//
// Two standard configurations are provided:
//
//   - Cluster8 (Figure 5a): eight single-board nodes and two crossbars in
//     one desk-side cabinet. Node i's link 0 attaches to crossbar A port
//     i, link 1 to crossbar B port i; ports 8–15 of both crossbars remain
//     free as eight asynchronous dual-links for inter-cluster cabling.
//
//   - System256 (Figure 5b): 256 processors = 128 two-way nodes = 16
//     clusters. Each network's free cluster ports fan out to a stage of
//     eight central 16×16 crossbars (one link from every cluster to every
//     central crossbar), forming a permutation network per link plane —
//     the rows and columns of the figure. Any two nodes are connected
//     through at most three crossbars, as the paper states.
//
// Arbitrary hierarchies can be assembled with the same primitives; routes
// are found by breadth-first search over the port graph, which is valid
// because the PowerMANNA crossbar routes any input to any output (unlike
// the CM-5's level-restricted 8×8 crossbar).
package topo

import (
	"fmt"

	"powermanna/internal/xbar"
)

// NetworkA and NetworkB select which of the duplicated networks (node
// link ports) a route uses.
const (
	NetworkA = 0
	NetworkB = 1
)

// port identifies one attachment point on a device.
type port struct {
	dev  int // device index: 0..nodes-1 are nodes, then crossbars
	port int
}

// edge is one bidirectional physical link.
type edge struct {
	peerDev  int
	peerPort int
	async    bool // crosses an asynchronous transceiver pair
}

// Topology is an assembled interconnect.
type Topology struct {
	name     string
	nodes    int
	xbarName []string
	// adjacency: per device, port → edge.
	adj map[port]edge
}

// New starts an empty topology with the given number of nodes.
func New(name string, nodes int) *Topology {
	return &Topology{name: name, nodes: nodes, adj: make(map[port]edge)}
}

// Name returns the topology label.
func (t *Topology) Name() string { return t.name }

// Nodes reports the node count.
func (t *Topology) Nodes() int { return t.nodes }

// Crossbars reports the crossbar count.
func (t *Topology) Crossbars() int { return len(t.xbarName) }

// CrossbarName returns the label of crossbar i.
func (t *Topology) CrossbarName(i int) string { return t.xbarName[i] }

// AddCrossbar appends a crossbar and returns its device index (node count
// + crossbar ordinal).
func (t *Topology) AddCrossbar(name string) int {
	t.xbarName = append(t.xbarName, name)
	return t.nodes + len(t.xbarName) - 1
}

// xbarIndex converts a device index to a crossbar ordinal.
func (t *Topology) xbarIndex(dev int) int { return dev - t.nodes }

// isNode reports whether a device index is a node.
func (t *Topology) isNode(dev int) bool { return dev < t.nodes }

// Connect wires (devA, portA) to (devB, portB) as one bidirectional link.
// async marks an inter-cabinet link through transceivers. It returns an
// error if either port is already wired or out of range.
func (t *Topology) Connect(devA, portA, devB, portB int, async bool) error {
	for _, p := range []port{{devA, portA}, {devB, portB}} {
		if err := t.checkPort(p); err != nil {
			return err
		}
		if _, used := t.adj[p]; used {
			return fmt.Errorf("topo %s: port %v already wired", t.name, p)
		}
	}
	t.adj[port{devA, portA}] = edge{peerDev: devB, peerPort: portB, async: async}
	t.adj[port{devB, portB}] = edge{peerDev: devA, peerPort: portA, async: async}
	return nil
}

func (t *Topology) checkPort(p port) error {
	switch {
	case p.dev < 0 || p.dev >= t.nodes+len(t.xbarName):
		return fmt.Errorf("topo %s: device %d out of range", t.name, p.dev)
	case t.isNode(p.dev) && (p.port < 0 || p.port > 1):
		return fmt.Errorf("topo %s: node %d has ports 0 and 1, not %d", t.name, p.dev, p.port)
	case !t.isNode(p.dev) && (p.port < 0 || p.port >= xbar.Ports):
		return fmt.Errorf("topo %s: crossbar port %d out of range", t.name, p.port)
	}
	return nil
}

// Hop is one crossbar traversal of a route.
type Hop struct {
	// Xbar is the crossbar ordinal (index into Crossbars()).
	Xbar int
	// In and Out are the input and output channels used.
	In, Out int
	// AsyncIn marks that the link feeding this hop crossed transceivers.
	AsyncIn bool
}

// Path is a source-routed connection.
type Path struct {
	Src, Dst int
	Network  int
	Hops     []Hop
	// RouteBytes is the message header: one route command per crossbar,
	// consumed hop by hop (Section 3.1).
	RouteBytes []byte
	// AsyncLinks counts transceiver crossings end to end.
	AsyncLinks int
}

// Route finds the shortest path from node src to node dst leaving src on
// the given network (link port). Among equal-length paths the choice is
// deterministic per (src, dst) pair but *spread*: the crossbar output
// scan order is rotated by a pair hash, so the eight parallel central
// crossbars of the Figure 5b system share permutation traffic instead of
// funnelling through one — the load distribution the duplicated
// hierarchy is built for.
func (t *Topology) Route(src, dst, network int) (Path, error) {
	if src < 0 || src >= t.nodes || dst < 0 || dst >= t.nodes {
		return Path{}, fmt.Errorf("topo %s: node out of range (%d, %d)", t.name, src, dst)
	}
	if network != NetworkA && network != NetworkB {
		return Path{}, fmt.Errorf("topo %s: network %d invalid", t.name, network)
	}
	if src == dst {
		return Path{Src: src, Dst: dst, Network: network}, nil
	}
	first, ok := t.adj[port{src, network}]
	if !ok {
		return Path{}, fmt.Errorf("topo %s: node %d link %d not wired", t.name, src, network)
	}

	// BFS over devices, starting from the device at the end of src's link.
	type state struct {
		dev     int
		inPort  int
		asyncIn bool
	}
	prev := make(map[int]state) // dev -> how we arrived
	visited := map[int]bool{src: true, first.peerDev: true}
	queue := []state{{dev: first.peerDev, inPort: first.peerPort, asyncIn: first.async}}
	arrival := map[int]state{first.peerDev: queue[0]}
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		if cur.dev == dst {
			found = true
			break
		}
		if t.isNode(cur.dev) {
			continue // routes only pass through crossbars
		}
		// Deterministic expansion order, shuffled per (src, dst, device)
		// so equal-cost alternatives spread uniformly across parallel
		// crossbars (a rotation would bias toward the first valid port).
		order := portOrder(uint64(src)*1_000_003 + uint64(dst)*131 + uint64(network)*17 + uint64(cur.dev)*31)
		for _, out := range order {
			e, ok := t.adj[port{cur.dev, out}]
			if !ok || visited[e.peerDev] {
				continue
			}
			visited[e.peerDev] = true
			next := state{dev: e.peerDev, inPort: e.peerPort, asyncIn: e.async}
			prev[e.peerDev] = state{dev: cur.dev, inPort: out} // out port stored in inPort field
			arrival[e.peerDev] = next
			queue = append(queue, next)
		}
	}
	if !found {
		return Path{}, fmt.Errorf("topo %s: no route %d -> %d on network %d", t.name, src, dst, network)
	}

	// Reconstruct: walk back from dst collecting (crossbar, out port).
	var rev []Hop
	async := 0
	dev := dst
	for dev != first.peerDev {
		p := prev[dev]
		arr := arrival[dev]
		if arr.asyncIn {
			async++
		}
		rev = append(rev, Hop{Xbar: t.xbarIndex(p.dev), Out: p.inPort})
		dev = p.dev
	}
	if arrival[first.peerDev].asyncIn {
		async++
	}

	path := Path{Src: src, Dst: dst, Network: network, AsyncLinks: async}
	// rev is dst→src; reverse and fill input ports.
	inPort := first.peerPort
	for i := len(rev) - 1; i >= 0; i-- {
		h := rev[i]
		h.In = inPort
		// The next hop's input port is the far end of this hop's output.
		e := t.adj[port{t.nodes + h.Xbar, h.Out}]
		inPort = e.peerPort
		h.AsyncIn = false // refined below
		path.Hops = append(path.Hops, h)
		path.RouteBytes = append(path.RouteBytes, xbar.EncodeRoute(h.Out))
	}
	// Mark async inputs per hop.
	if first.async && len(path.Hops) > 0 {
		path.Hops[0].AsyncIn = true
	}
	for i := 1; i < len(path.Hops); i++ {
		e := t.adj[port{t.nodes + path.Hops[i-1].Xbar, path.Hops[i-1].Out}]
		path.Hops[i].AsyncIn = e.async
	}
	return path, nil
}

// portOrder returns a deterministic pseudo-random permutation of the
// crossbar ports for the given seed (xorshift-driven Fisher–Yates).
func portOrder(seed uint64) [xbar.Ports]int {
	var p [xbar.Ports]int
	for i := range p {
		p[i] = i
	}
	x := seed*2654435761 + 1
	for i := xbar.Ports - 1; i > 0; i-- {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		j := int(x % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// MaxCrossbars reports the maximum crossbar count over all node pairs and
// both networks — the paper's "at most three crossbars" claim for the
// 256-processor system.
func (t *Topology) MaxCrossbars() (int, error) {
	max := 0
	for s := 0; s < t.nodes; s++ {
		for d := 0; d < t.nodes; d++ {
			if s == d {
				continue
			}
			for _, net := range []int{NetworkA, NetworkB} {
				if _, wired := t.adj[port{s, net}]; !wired {
					continue // single-network topologies (e.g. meshes)
				}
				p, err := t.Route(s, d, net)
				if err != nil {
					return 0, err
				}
				if len(p.Hops) > max {
					max = len(p.Hops)
				}
			}
		}
	}
	return max, nil
}

// FreePorts reports unwired ports on crossbar ordinal i.
func (t *Topology) FreePorts(i int) int {
	free := 0
	for p := 0; p < xbar.Ports; p++ {
		if _, used := t.adj[port{t.nodes + i, p}]; !used {
			free++
		}
	}
	return free
}
