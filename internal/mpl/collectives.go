package mpl

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Collectives over binomial trees. Rounds are driven in deterministic
// order; each rank's clock advances only through its own sends, receives
// and reduction arithmetic, so the collective's critical path — O(log P)
// message latencies — emerges from the point-to-point model.

// reduceOpCyclesPerElement is the per-element cost of combining two
// float64 values during a reduction (load, add, store on the MPC620).
const reduceOpCyclesPerElement = 3

// tag bases keep collective traffic from colliding with user tags.
const (
	tagBarrier = 1 << 20
	tagBcast   = 1 << 21
	tagReduce  = 1 << 22
	tagGather  = 1 << 23
)

func encodeVec(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func decodeVec(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return v
}

// Barrier synchronizes all ranks: a binomial gather to rank 0 followed by
// a binomial broadcast of the release. On return every rank's clock is at
// least the barrier's completion point.
func (w *World) Barrier(round int) error {
	p := w.Ranks()
	// Gather phase: rank r waits for children r+2^k, then signals parent.
	for k := 0; 1<<k < p; k++ {
		for r := 0; r < p; r++ {
			if r&((1<<(k+1))-1) != 0 {
				continue
			}
			child := r + 1<<k
			if child >= p {
				continue
			}
			if err := w.Send(child, r, tagBarrier+2*round, nil); err != nil {
				return err
			}
			if _, err := w.Recv(r, child, tagBarrier+2*round); err != nil {
				return err
			}
		}
	}
	// Release phase: broadcast from 0 down the same tree.
	return w.bcastSignal(0, tagBarrier+2*round+1, nil)
}

// bcastSignal sends payload down a binomial tree rooted at root.
func (w *World) bcastSignal(root, tag int, payload []byte) error {
	p := w.Ranks()
	if root != 0 {
		return fmt.Errorf("mpl: collectives require root 0 (got %d)", root)
	}
	for k := bits(p) - 1; k >= 0; k-- {
		for r := 0; r < p; r++ {
			if r&((1<<(k+1))-1) != 0 {
				continue
			}
			child := r + 1<<k
			if child >= p {
				continue
			}
			if err := w.Send(r, child, tag, payload); err != nil {
				return err
			}
			got, err := w.Recv(child, r, tag)
			if err != nil {
				return err
			}
			_ = got
		}
	}
	return nil
}

// bits reports how many tree levels cover p ranks.
func bits(p int) int {
	n := 0
	for 1<<n < p {
		n++
	}
	return n
}

// Bcast distributes vec from rank 0 to all ranks and returns each rank's
// received copy (index by rank; rank 0 holds the original).
func (w *World) Bcast(vec []float64, tag int) ([][]float64, error) {
	p := w.Ranks()
	out := make([][]float64, p)
	out[0] = vec
	payload := encodeVec(vec)
	for k := bits(p) - 1; k >= 0; k-- {
		for r := 0; r < p; r++ {
			if r&((1<<(k+1))-1) != 0 || out[r] == nil {
				continue
			}
			child := r + 1<<k
			if child >= p {
				continue
			}
			if err := w.Send(r, child, tagBcast+tag, payload); err != nil {
				return nil, err
			}
			b, err := w.Recv(child, r, tagBcast+tag)
			if err != nil {
				return nil, err
			}
			out[child] = decodeVec(b)
		}
	}
	return out, nil
}

// AllReduce sums each rank's contribution element-wise and leaves the
// result on every rank: binomial reduction to rank 0, then broadcast.
// It returns the reduced vector.
func (w *World) AllReduce(contrib [][]float64, tag int) ([]float64, error) {
	p := w.Ranks()
	if len(contrib) != p {
		return nil, fmt.Errorf("mpl: %d contributions for %d ranks", len(contrib), p)
	}
	n := len(contrib[0])
	acc := make([][]float64, p)
	for r := range acc {
		if len(contrib[r]) != n {
			return nil, fmt.Errorf("mpl: rank %d vector length %d != %d", r, len(contrib[r]), n)
		}
		acc[r] = append([]float64(nil), contrib[r]...)
	}
	// Reduce up the tree.
	for k := 0; 1<<k < p; k++ {
		for r := 0; r < p; r++ {
			if r&((1<<(k+1))-1) != 0 {
				continue
			}
			child := r + 1<<k
			if child >= p {
				continue
			}
			if err := w.Send(child, r, tagReduce+tag+k, encodeVec(acc[child])); err != nil {
				return nil, err
			}
			b, err := w.Recv(r, child, tagReduce+tag+k)
			if err != nil {
				return nil, err
			}
			v := decodeVec(b)
			for i := range acc[r] {
				acc[r][i] += v[i]
			}
			w.Compute(r, w.cycles(int64(n*reduceOpCyclesPerElement)))
		}
	}
	// Broadcast the result.
	res, err := w.Bcast(acc[0], tag)
	if err != nil {
		return nil, err
	}
	// All ranks hold the same vector now; return rank 0's.
	_ = res
	return acc[0], nil
}

// Gather collects every rank's vector at rank 0 (direct sends; fine for
// the sizes the examples use) and returns them in rank order.
func (w *World) Gather(contrib [][]float64, tag int) ([][]float64, error) {
	p := w.Ranks()
	out := make([][]float64, p)
	out[0] = contrib[0]
	for r := 1; r < p; r++ {
		if err := w.Send(r, 0, tagGather+tag+r, encodeVec(contrib[r])); err != nil {
			return nil, err
		}
	}
	for r := 1; r < p; r++ {
		b, err := w.Recv(0, r, tagGather+tag+r)
		if err != nil {
			return nil, err
		}
		out[r] = decodeVec(b)
	}
	return out, nil
}

// CriticalDepth estimates the tree depth of a collective over p ranks —
// exported for tests asserting logarithmic scaling.
func CriticalDepth(p int) int { return bits(p) }
