package mpl

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"powermanna/internal/metrics"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

func TestSendRecvRoundTrip(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	msg := []byte("hello from node 0")
	if err := w.Send(0, 3, 7, msg); err != nil {
		t.Fatal(err)
	}
	got, err := w.Recv(3, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("payload = %q", got)
	}
	if w.Now(3) <= w.Now(1) {
		t.Error("receiver clock did not advance")
	}
	msgs, payload := w.Stats()
	if msgs != 1 || payload != int64(len(msg)) {
		t.Errorf("stats = %d msgs %d bytes", msgs, payload)
	}
}

func TestRecvWithoutMessageFails(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	if _, err := w.Recv(1, 0, 9); err == nil {
		t.Error("recv of absent message succeeded")
	}
}

func TestSelfSendRejected(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	if err := w.Send(2, 2, 0, nil); err == nil {
		t.Error("self-send accepted")
	}
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	if err := w.Send(0, 1, 10, []byte("ten")); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(0, 1, 20, []byte("twenty")); err != nil {
		t.Fatal(err)
	}
	got, err := w.Recv(1, 0, 20)
	if err != nil || string(got) != "twenty" {
		t.Errorf("tag 20 recv = %q, %v", got, err)
	}
	got, err = w.Recv(1, 0, 10)
	if err != nil || string(got) != "ten" {
		t.Errorf("tag 10 recv = %q, %v", got, err)
	}
}

func TestCausality(t *testing.T) {
	// A receive can never complete before the send started.
	w := NewWorld(topo.Cluster8())
	w.Compute(0, 100*sim.Microsecond)
	sendStart := w.Now(0)
	if err := w.Send(0, 5, 0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Recv(5, 0, 0); err != nil {
		t.Fatal(err)
	}
	if w.Now(5) <= sendStart {
		t.Errorf("receiver finished at %v before send started at %v", w.Now(5), sendStart)
	}
}

func TestLargeSendOccupiesSender(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	small := NewWorld(topo.Cluster8())
	if err := w.Send(0, 1, 0, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if err := small.Send(0, 1, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// A 64 KB eager send holds the sender roughly for the link time
	// (~1.09 ms); a 64 B send returns in microseconds.
	if w.Now(0) < 500*sim.Microsecond {
		t.Errorf("64 KB send released sender at %v, want ~1ms", w.Now(0))
	}
	if small.Now(0) > 10*sim.Microsecond {
		t.Errorf("64 B send held sender until %v", small.Now(0))
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	// Skew the ranks.
	for r := 0; r < w.Ranks(); r++ {
		w.Compute(r, sim.Time(r)*10*sim.Microsecond)
	}
	latest := w.MaxTime()
	if err := w.Barrier(0); err != nil {
		t.Fatal(err)
	}
	// Every rank's clock is now past the last entrant's entry time.
	for r := 0; r < w.Ranks(); r++ {
		if w.Now(r) < latest {
			t.Errorf("rank %d left barrier at %v before last entry %v", r, w.Now(r), latest)
		}
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	vec := []float64{1.5, -2.25, 3.125}
	out, err := w.Bcast(vec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range out {
		if len(v) != len(vec) {
			t.Fatalf("rank %d got %d elements", r, len(v))
		}
		for i := range vec {
			if v[i] != vec[i] {
				t.Errorf("rank %d element %d = %g", r, i, v[i])
			}
		}
	}
}

func TestAllReduceSums(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	p := w.Ranks()
	contrib := make([][]float64, p)
	want := make([]float64, 4)
	for r := 0; r < p; r++ {
		contrib[r] = []float64{float64(r), 1, float64(r * r), 0.5}
		for i := range want {
			want[i] += contrib[r][i]
		}
	}
	got, err := w.AllReduce(contrib, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("element %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestGatherCollects(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	p := w.Ranks()
	contrib := make([][]float64, p)
	for r := 0; r < p; r++ {
		contrib[r] = []float64{float64(r * 10)}
	}
	out, err := w.Gather(contrib, 3)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		if out[r][0] != float64(r*10) {
			t.Errorf("rank %d gathered %g", r, out[r][0])
		}
	}
}

func TestAllReduceOnSystem256(t *testing.T) {
	w := NewWorld(topo.System256())
	p := w.Ranks()
	contrib := make([][]float64, p)
	for r := 0; r < p; r++ {
		contrib[r] = []float64{1}
	}
	got, err := w.AllReduce(contrib, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != float64(p) {
		t.Errorf("sum of ones = %g, want %d", got[0], p)
	}
	// Critical path: O(log P) small-message latencies, so a 128-rank
	// allreduce of one element finishes within tens of microseconds
	// (7 levels up + 7 down at < 4 µs per hop plus overheads).
	if w.MaxTime() > 200*sim.Microsecond {
		t.Errorf("128-rank allreduce took %v, expected tens of us", w.MaxTime())
	}
	if CriticalDepth(p) != 7 {
		t.Errorf("depth = %d, want 7", CriticalDepth(p))
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() sim.Time {
		w := NewWorld(topo.System256())
		contrib := make([][]float64, w.Ranks())
		for r := range contrib {
			contrib[r] = []float64{float64(r)}
		}
		if _, err := w.AllReduce(contrib, 1); err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

func TestReset(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	if err := w.Send(0, 1, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	w.Reset()
	if w.MaxTime() != 0 {
		t.Error("clocks not reset")
	}
	if _, err := w.Recv(1, 0, 0); err == nil {
		t.Error("pending queue not reset")
	}
	if msgs, _ := w.Stats(); msgs != 0 {
		t.Error("stats not reset")
	}
}

func TestCollectiveErrorPaths(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	// AllReduce with wrong contribution count.
	if _, err := w.AllReduce([][]float64{{1}}, 0); err == nil {
		t.Error("short contribution list accepted")
	}
	// Mismatched vector lengths.
	bad := make([][]float64, w.Ranks())
	for r := range bad {
		bad[r] = []float64{1}
	}
	bad[3] = []float64{1, 2}
	if _, err := w.AllReduce(bad, 0); err == nil {
		t.Error("ragged vectors accepted")
	}
	// Non-zero collective root is rejected.
	if err := w.bcastSignal(2, 0, nil); err == nil {
		t.Error("non-zero root accepted")
	}
}

// BenchmarkSendSystem256 measures the per-message host cost of the MPL
// send path over the full 256-processor system. The per-rank Transports
// cache each (dst, plane) route after the first lookup, so steady-state
// sends do no route computation and no per-message path allocation.
func BenchmarkSendSystem256(b *testing.B) {
	w := NewWorld(topo.System256())
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % w.Ranks()
		dst := (src + 61) % w.Ranks()
		if err := w.Send(src, dst, i, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := w.Recv(dst, src, i); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBarrierRepeatedRounds(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	for round := 0; round < 3; round++ {
		if err := w.Barrier(round); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// Time strictly increases across rounds.
	if w.MaxTime() <= 0 {
		t.Error("no time elapsed")
	}
}

// TestSendTracingOffAddsNoAllocs pins the nil-Recorder contract on the
// benchmark path: with no recorder attached, the trace instrumentation
// must cost nothing — the steady-state Send/Recv pair stays at the
// pre-trace allocation budget (9 allocs/op measured on
// BenchmarkSendSystem256 before internal/trace existed, plus one for
// the failed-attempt teardown hold: this workload's lagging rank
// clocks make some sends contend with the past, and a setup-timed-out
// attempt now claims its partial circuit until the ack-timeout
// teardown, appending one hold window).
func TestSendTracingOffAddsNoAllocs(t *testing.T) {
	w := NewWorld(topo.System256())
	if w.Network().Recorder() != nil {
		t.Fatal("fresh world has a recorder attached; tracing must default to off")
	}
	payload := make([]byte, 256)
	// Warm the per-rank route caches over the full (src, dst) cycle so
	// the measured runs see only the steady-state path.
	for i := 0; i < w.Ranks(); i++ {
		src := i % w.Ranks()
		dst := (src + 61) % w.Ranks()
		if err := w.Send(src, dst, i, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Recv(dst, src, i); err != nil {
			t.Fatal(err)
		}
	}
	i := w.Ranks()
	allocs := testing.AllocsPerRun(200, func() {
		src := i % w.Ranks()
		dst := (src + 61) % w.Ranks()
		if err := w.Send(src, dst, i, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Recv(dst, src, i); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs > 10 {
		t.Errorf("Send/Recv with tracing off = %.1f allocs/op, want <= 10 (pre-trace baseline + teardown hold)", allocs)
	}
}

// TestPerRankRecvWaitViews checks the per-rank receive-wait breakout:
// every Recv lands in both the machine-wide histogram and the receiving
// rank's own view, the per-rank counts sum to the machine-wide count,
// non-receiving ranks stay empty, and a nil registry keeps everything
// off.
func TestPerRankRecvWaitViews(t *testing.T) {
	w := NewWorld(topo.Cluster8())
	reg := metrics.NewRegistry()
	w.SetMetrics(reg)
	if err := w.Send(0, 1, 0, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Recv(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(2, 3, 0, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Recv(3, 2, 0); err != nil {
		t.Fatal(err)
	}
	whole := reg.TimeHistogram(MetricRecvWait, recvWaitBuckets())
	if whole.Count() != 2 {
		t.Fatalf("machine-wide recv.wait count = %d, want 2", whole.Count())
	}
	var sum int64
	for r := 0; r < w.Ranks(); r++ {
		h := reg.TimeHistogram(recvWaitRankName(r), recvWaitBuckets())
		sum += h.Count()
		want := int64(0)
		if r == 1 || r == 3 {
			want = 1
		}
		if h.Count() != want {
			t.Errorf("rank %d recv.wait count = %d, want %d", r, h.Count(), want)
		}
	}
	if sum != whole.Count() {
		t.Errorf("per-rank counts sum to %d, machine-wide %d", sum, whole.Count())
	}
	if !strings.Contains(reg.Render(), "mpl.recv.wait.r001") {
		t.Error("dump missing the per-rank view name")
	}

	// Metrics off: a fresh world with no registry observes nothing and
	// allocates no per-rank views.
	w2 := NewWorld(topo.Cluster8())
	w2.SetMetrics(nil)
	if len(w2.met.rankWait) != 0 {
		t.Error("nil registry still allocated per-rank views")
	}
	if err := w2.Send(0, 1, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Recv(1, 0, 0); err != nil {
		t.Fatal(err)
	}
}
