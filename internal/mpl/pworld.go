// PWorld: the message-passing layer over the node-partitioned datapath.
//
// The legacy World is a virtual-time machine: one goroutine owns every
// rank clock and the whole network, and sends resolve synchronously in
// program order. That shape cannot parallelise — and it cannot even
// express a genuinely concurrent workload, because rank program order
// is the global order. PWorld keeps the same calibrated software
// overheads (comm.PMParams: PIO lines, poll cycles, setup cycles) but
// runs each rank as its own goroutine over a netsim.PartNetwork: sends
// go through the split-phase failover protocol (netsim.SendAsync),
// receives block on real arrival events, and rank execution is driven
// by the psim shard that owns the rank's node.
//
// Scheduling discipline — rank code runs only nested inside a shard
// event. Each rank goroutine and its shard hand control back and forth
// over a pair of unbuffered channels: the shard wakes the rank
// (resume), the rank runs until it must wait for the network, then
// yields. The shard goroutine is blocked in the yield receive for the
// whole time the rank runs, so rank code has exclusive, race-free
// access to everything its shard owns, and every rank step is anchored
// to a deterministic event. A rank that is still parked when the
// engine drains is deadlocked (a receive nothing will match); Run
// aborts it via runtime.Goexit and reports which ranks were stuck.
//
// Model differences from the legacy World, both inherent to losing the
// global sequential order: a rank's virtual clock may lag its shard's
// event clock (the verdict that frees the sender arrives at network
// time), so SendAsync clamps entry times forward — consecutive sends
// never enter the network before the previous verdict; and there is no
// background OS stream (the lazy injector advances on the global send
// order, which no longer exists).
package mpl

import (
	"fmt"
	"runtime"

	"powermanna/internal/comm"
	"powermanna/internal/link"
	"powermanna/internal/metrics"
	"powermanna/internal/netsim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// prState says what a parked rank is waiting for, so the shard-side
// hooks know whether an event resolves the wait.
type prState int

const (
	// prRun: the rank is runnable (executing, or not waiting on the
	// network). Hooks never wake a prRun rank.
	prRun prState = iota
	// prSendWait: parked in Send until the in-flight message's verdict.
	prSendWait
	// prRecvWait: parked in Recv until any message arrives; the rank
	// re-scans its queue on wake.
	prRecvWait
)

// ptag is the cross-shard cargo of one mpl message: the user tag plus
// the payload copy. It crosses psim mailboxes as immutable data.
type ptag struct {
	tag  int
	data []byte
}

// pmessage is one delivered message in a rank's receive queue.
type pmessage struct {
	src, tag  int
	payload   []byte
	arrival   sim.Time
	firstByte sim.Time
}

// PWorld is one SPMD program run over a partitioned network: one rank
// per node, each a goroutine scheduled by its node's shard.
type PWorld struct {
	pn     *netsim.PartNetwork
	params comm.PMParams
	ranks  []*PRank
	// sends and bytes are per-rank so each is written only from its
	// rank's shard; Stats sums them after the engine has drained.
	sends []int64
	bytes []int64
	ran   bool
}

// PRank is one rank's handle: the argument of the SPMD function. All
// methods must be called from that function (the rank's goroutine).
type PRank struct {
	w    *PWorld
	rank int
	// clock is the rank's virtual CPU time, advanced by its own sends,
	// receives and computation exactly as the legacy World advances it.
	clock sim.Time
	queue []pmessage
	state prState
	// resume and yield are the control-handoff pair: the shard side
	// sends resume (false = abort) and blocks on yield until the rank
	// parks or finishes.
	resume chan bool
	yield  chan struct{}
	done   bool
	err    error
	// recvWait is the rank's shard-local view of MetricRecvWait;
	// rankWait the rank's own labelled histogram in the same shard
	// registry (both folded into the user's registry after the run).
	recvWait *metrics.Histogram
	rankWait *metrics.Histogram
}

// NewPWorld builds a partitioned world over the topology with the
// default failover protocol, one rank per node, across the given
// number of psim shards.
func NewPWorld(t *topo.Topology, shards int) (*PWorld, error) {
	return NewPWorldWith(t, shards, netsim.DefaultFailover())
}

// NewPWorldWith builds a partitioned world with an explicit failover
// configuration.
func NewPWorldWith(t *topo.Topology, shards int, cfg netsim.FailoverConfig) (*PWorld, error) {
	pn, err := netsim.NewPartitioned(t, shards, cfg)
	if err != nil {
		return nil, err
	}
	w := &PWorld{
		pn:     pn,
		params: comm.DefaultPMParams(),
		sends:  make([]int64, t.Nodes()),
		bytes:  make([]int64, t.Nodes()),
	}
	for i := 0; i < t.Nodes(); i++ {
		w.ranks = append(w.ranks, &PRank{
			w: w, rank: i,
			resume: make(chan bool),
			yield:  make(chan struct{}),
		})
	}
	pn.OnDeliver(func(src, dst int, payload any, first, last sim.Time) {
		pt := payload.(ptag)
		r := w.ranks[dst]
		r.queue = append(r.queue, pmessage{
			src: src, tag: pt.tag, payload: pt.data,
			arrival: last, firstByte: first,
		})
		if r.state == prRecvWait {
			r.state = prRun
			r.wake()
		}
	})
	return w, nil
}

// PartNetwork exposes the partitioned datapath (for SetSerial and the
// shard accessors).
func (w *PWorld) PartNetwork() *netsim.PartNetwork { return w.pn }

// Network exposes the underlying network for fault injection. Only
// pre-run faults (wire cuts and corruption windows) are sound: the
// wire state is immutable during the run and read from many shards.
func (w *PWorld) Network() *netsim.Network { return w.pn.Network() }

// SetMetrics attaches the world to a registry: the partitioned
// network's per-shard instruments plus the receive-wait view, observed
// into each rank's own shard registry and folded after the run.
func (w *PWorld) SetMetrics(m *metrics.Registry) {
	w.pn.SetMetrics(m)
	for _, r := range w.ranks {
		reg := w.pn.ShardRegistry(w.pn.ShardOf(r.rank))
		r.recvWait = reg.TimeHistogram(MetricRecvWait, recvWaitBuckets())
		r.rankWait = reg.TimeHistogram(recvWaitRankName(r.rank), recvWaitBuckets())
	}
}

// SetRecorder attaches a trace recorder (per-shard recorders, merged
// canonically after the run).
func (w *PWorld) SetRecorder(r *trace.Recorder) { w.pn.SetRecorder(r) }

// Ranks reports the number of ranks.
func (w *PWorld) Ranks() int { return len(w.ranks) }

// MaxTime reports the latest rank clock (the makespan). Valid after
// Run has returned.
func (w *PWorld) MaxTime() sim.Time {
	var max sim.Time
	for _, r := range w.ranks {
		if r.clock > max {
			max = r.clock
		}
	}
	return max
}

// Stats reports message traffic. Valid after Run has returned.
func (w *PWorld) Stats() (messages, payloadBytes int64) {
	var m, b int64
	for i := range w.sends {
		m += w.sends[i]
		b += w.bytes[i]
	}
	return m, b
}

func (w *PWorld) cycles(n int64) sim.Time { return w.params.CPUClock.Cycles(n) }

// Run executes fn once per rank, each on its own goroutine, and drives
// them through the partitioned network until every rank returns or the
// engine drains with ranks still parked (a communication deadlock —
// reported as an error naming the stuck ranks). Run may be called
// once per world.
func (w *PWorld) Run(fn func(r *PRank) error) error {
	if w.ran {
		return fmt.Errorf("mpl: PWorld.Run called twice")
	}
	w.ran = true
	for _, r := range w.ranks {
		r := r
		go func() {
			// The final yield pairs with whichever resume ran the rank
			// last — Goexit from an aborted park runs it too.
			defer func() { r.yield <- struct{}{} }()
			if ok := <-r.resume; !ok {
				return
			}
			r.err = fn(r)
			r.done = true
		}()
		w.pn.Shard(w.pn.ShardOf(r.rank)).At(0, func() { r.wake() })
	}
	w.pn.Run()
	var stuck []int
	for _, r := range w.ranks {
		if !r.done {
			stuck = append(stuck, r.rank)
			r.resume <- false
			<-r.yield
		}
	}
	if len(stuck) > 0 {
		return fmt.Errorf("mpl: ranks %v still waiting when the network drained (communication deadlock)", stuck)
	}
	for _, r := range w.ranks {
		if r.err != nil {
			return fmt.Errorf("mpl: rank %d: %w", r.rank, r.err)
		}
	}
	return nil
}

// wake hands control to the rank goroutine and blocks until it parks
// again or finishes. Must run inside an event on the rank's shard.
func (r *PRank) wake() {
	r.resume <- true
	<-r.yield
}

// park hands control back to the shard side and blocks until a hook
// wakes the rank. A false resume aborts the rank (engine drained with
// the rank still waiting); Goexit runs the goroutine's deferred final
// yield.
func (r *PRank) park() {
	r.yield <- struct{}{}
	if ok := <-r.resume; !ok {
		runtime.Goexit()
	}
}

// Rank reports this rank's index.
func (r *PRank) Rank() int { return r.rank }

// Ranks reports the world size.
func (r *PRank) Ranks() int { return len(r.w.ranks) }

// Now reports the rank's virtual CPU time.
func (r *PRank) Now() sim.Time { return r.clock }

// Compute advances the rank's clock by local computation time.
func (r *PRank) Compute(d sim.Time) { r.clock += d }

// Send posts payload to rank dst with a tag, paying the same
// user-level send path as the legacy World (setup cycles, PIO lines,
// FIFO overlap with the link). The rank parks until the failover
// protocol renders the message's verdict; a message lost on both
// planes is an error.
func (r *PRank) Send(dst, tag int, payload []byte) error {
	w := r.w
	if dst == r.rank {
		return fmt.Errorf("mpl: self-send from rank %d", r.rank)
	}
	start := r.clock + w.cycles(w.params.SendSetupCycles)
	start += w.params.PIOWriteLine
	cp := make([]byte, len(payload))
	copy(cp, payload)
	var del netsim.Delivery
	got := false
	err := w.pn.SendAsync(r.rank, dst, len(payload), ptag{tag: tag, data: cp}, start,
		func(d netsim.Delivery) {
			del, got = d, true
			if r.state == prSendWait {
				r.state = prRun
				r.wake()
			}
		})
	if err != nil {
		return err
	}
	if !got {
		// The verdict is pending in the network; the callback above
		// runs on this shard and resumes us.
		r.state = prSendWait
		r.park()
	}
	if del.Failed {
		return fmt.Errorf("mpl: message %d->%d lost on both planes", r.rank, dst)
	}
	tail := len(payload) - w.params.FIFOBytes
	senderDone := start
	if tail > 0 {
		senderDone = del.Done - sim.Time(w.params.FIFOBytes)*link.BytePeriod
		if senderDone < start {
			senderDone = start
		}
	} else {
		lines := (len(payload) + 63) / 64
		senderDone = start + sim.Time(lines)*w.params.PIOWriteLine
	}
	r.clock = senderDone
	w.sends[r.rank]++
	w.bytes[r.rank] += int64(len(payload))
	return nil
}

// Recv blocks the rank until a message from src with the tag has fully
// arrived, drains it from the receive FIFO and returns the payload.
// Matching is FIFO within (src, tag), over the deterministic delivery
// order of the partitioned network.
func (r *PRank) Recv(src, tag int) ([]byte, error) {
	w := r.w
	for {
		for i, m := range r.queue {
			if m.src != src || m.tag != tag {
				continue
			}
			r.queue = append(r.queue[:i:i], r.queue[i+1:]...)
			t := r.clock + w.cycles(w.params.PollCycles)
			var wait sim.Time
			if m.arrival > t {
				wait = m.arrival - t
				t = m.arrival + w.cycles(w.params.PollCycles)/2
			}
			r.recvWait.ObserveTime(wait)
			r.rankWait.ObserveTime(wait)
			lines := (len(m.payload) + 63) / 64
			if lines < 1 {
				lines = 1
			}
			t += sim.Time(lines) * w.params.PIOReadLine
			t += w.cycles(w.params.RecvReturnCycles)
			r.clock = t
			return m.payload, nil
		}
		r.state = prRecvWait
		r.park()
	}
}
