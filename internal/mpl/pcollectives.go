package mpl

import "fmt"

// Per-rank collectives for the partitioned world: the same binomial
// trees, tags and reduction costs as the World collectives, rewritten
// in SPMD form. Where the World drives every rank's role from one
// loop, each PRank here derives its own role per tree level from its
// index: at level k a rank whose lowest set bit is k is a child (it
// exchanges with rank - 2^k), and a rank with all bits at or below k
// clear is a parent of rank + 2^k when that rank exists. Gather levels
// ascend, broadcast levels descend, so a rank always holds data before
// it forwards.

// Barrier synchronizes all ranks: a binomial gather to rank 0 followed
// by a binomial broadcast of the release, with the World's tags.
func (r *PRank) Barrier(round int) error {
	p, rank := r.Ranks(), r.rank
	tag := tagBarrier + 2*round
	for k := 0; 1<<k < p; k++ {
		span := 1 << (k + 1)
		switch {
		case rank%span == 1<<k:
			if err := r.Send(rank-1<<k, tag, nil); err != nil {
				return err
			}
		case rank%span == 0 && rank+1<<k < p:
			if _, err := r.Recv(rank+1<<k, tag); err != nil {
				return err
			}
		}
	}
	rel := tagBarrier + 2*round + 1
	for k := bits(p) - 1; k >= 0; k-- {
		span := 1 << (k + 1)
		switch {
		case rank%span == 1<<k:
			if _, err := r.Recv(rank-1<<k, rel); err != nil {
				return err
			}
		case rank%span == 0 && rank+1<<k < p:
			if err := r.Send(rank+1<<k, rel, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Bcast distributes vec from rank 0 to all ranks and returns this
// rank's copy (rank 0 returns vec itself). Non-root ranks may pass
// nil.
func (r *PRank) Bcast(vec []float64, tag int) ([]float64, error) {
	p, rank := r.Ranks(), r.rank
	data := vec
	has := rank == 0
	for k := bits(p) - 1; k >= 0; k-- {
		span := 1 << (k + 1)
		switch {
		case rank%span == 1<<k:
			b, err := r.Recv(rank-1<<k, tagBcast+tag)
			if err != nil {
				return nil, err
			}
			data = decodeVec(b)
			has = true
		case rank%span == 0 && rank+1<<k < p && has:
			if err := r.Send(rank+1<<k, tagBcast+tag, encodeVec(data)); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// AllReduce sums each rank's vector element-wise and returns the
// global sum on every rank: binomial reduction to rank 0 with the
// World's per-level tags and reduction cost, then broadcast.
func (r *PRank) AllReduce(vec []float64, tag int) ([]float64, error) {
	p, rank := r.Ranks(), r.rank
	n := len(vec)
	acc := append([]float64(nil), vec...)
	for k := 0; 1<<k < p; k++ {
		span := 1 << (k + 1)
		switch {
		case rank%span == 1<<k:
			if err := r.Send(rank-1<<k, tagReduce+tag+k, encodeVec(acc)); err != nil {
				return nil, err
			}
		case rank%span == 0 && rank+1<<k < p:
			b, err := r.Recv(rank+1<<k, tagReduce+tag+k)
			if err != nil {
				return nil, err
			}
			v := decodeVec(b)
			if len(v) != n {
				return nil, fmt.Errorf("mpl: rank %d reduce level %d got %d elements, want %d", rank, k, len(v), n)
			}
			for i := range acc {
				acc[i] += v[i]
			}
			r.Compute(r.w.cycles(int64(n * reduceOpCyclesPerElement)))
		}
	}
	return r.Bcast(acc, tag)
}

// Gather collects every rank's vector at rank 0 (direct sends, the
// World's scheme) and returns them in rank order at rank 0; other
// ranks return nil.
func (r *PRank) Gather(vec []float64, tag int) ([][]float64, error) {
	p, rank := r.Ranks(), r.rank
	if rank != 0 {
		if err := r.Send(0, tagGather+tag+rank, encodeVec(vec)); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]float64, p)
	out[0] = vec
	for q := 1; q < p; q++ {
		b, err := r.Recv(q, tagGather+tag+q)
		if err != nil {
			return nil, err
		}
		out[q] = decodeVec(b)
	}
	return out, nil
}
