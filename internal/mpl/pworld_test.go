package mpl

import (
	"fmt"
	"strings"
	"testing"

	"powermanna/internal/metrics"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// TestPWorldPingPong runs a two-rank exchange on Cluster8 and checks
// payload integrity, causality and clock advance.
func TestPWorldPingPong(t *testing.T) {
	w, err := NewPWorld(topo.Cluster8(), 1)
	if err != nil {
		t.Fatalf("NewPWorld: %v", err)
	}
	const rounds = 5
	err = w.Run(func(r *PRank) error {
		switch r.Rank() {
		case 0:
			for i := 0; i < rounds; i++ {
				if err := r.Send(1, i, []byte{byte(i), 0xAB}); err != nil {
					return err
				}
				b, err := r.Recv(1, 100+i)
				if err != nil {
					return err
				}
				if len(b) != 2 || b[0] != byte(i)+1 {
					return fmt.Errorf("round %d echo = %v", i, b)
				}
			}
		case 1:
			for i := 0; i < rounds; i++ {
				b, err := r.Recv(0, i)
				if err != nil {
					return err
				}
				if err := r.Send(0, 100+i, []byte{b[0] + 1, b[1]}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.MaxTime() <= 0 {
		t.Fatalf("makespan = %v", w.MaxTime())
	}
	msgs, bytes := w.Stats()
	if msgs != 2*rounds || bytes != 4*rounds {
		t.Fatalf("stats = %d msgs %d bytes", msgs, bytes)
	}
}

// TestPWorldDeadlockReported pins the abort path: a rank that receives
// a message nobody sends must surface as a deadlock error naming it,
// not hang or panic.
func TestPWorldDeadlockReported(t *testing.T) {
	w, err := NewPWorld(topo.Cluster8(), 1)
	if err != nil {
		t.Fatalf("NewPWorld: %v", err)
	}
	err = w.Run(func(r *PRank) error {
		if r.Rank() == 3 {
			_, err := r.Recv(0, 999)
			return err
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "[3]") {
		t.Fatalf("deadlock error = %v", err)
	}
}

// TestPWorldCollectives checks the SPMD collectives' arithmetic on a
// full Cluster8: AllReduce of known vectors, Bcast fan-out, Gather
// assembly, Barrier completion.
func TestPWorldCollectives(t *testing.T) {
	w, err := NewPWorld(topo.Cluster8(), 1)
	if err != nil {
		t.Fatalf("NewPWorld: %v", err)
	}
	p := w.Ranks()
	wantSum := float64(p*(p+1)) / 2
	fields := make([][]float64, p)
	err = w.Run(func(r *PRank) error {
		rank := r.Rank()
		got, err := r.AllReduce([]float64{float64(rank + 1), 2}, 7)
		if err != nil {
			return err
		}
		if got[0] != wantSum || got[1] != float64(2*p) {
			return fmt.Errorf("allreduce = %v", got)
		}
		bc, err := r.Bcast([]float64{42, float64(rank)}, 9)
		if err != nil {
			return err
		}
		if bc[0] != 42 || bc[1] != 0 {
			return fmt.Errorf("bcast = %v", bc)
		}
		if err := r.Barrier(3); err != nil {
			return err
		}
		g, err := r.Gather([]float64{float64(rank * rank)}, 11)
		if err != nil {
			return err
		}
		if rank == 0 {
			for q := range g {
				fields[q] = g[q]
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for q := 0; q < p; q++ {
		if len(fields[q]) != 1 || fields[q][0] != float64(q*q) {
			t.Fatalf("gather[%d] = %v", q, fields[q])
		}
	}
}

// pworldTrial runs a deterministic mixed workload (point-to-point ring
// plus an AllReduce) on System256 and returns the makespan, traffic
// and rendered metrics.
func pworldTrial(t *testing.T, shards int, serial bool) (sim.Time, int64, int64, string) {
	t.Helper()
	w, err := NewPWorld(topo.System256(), shards)
	if err != nil {
		t.Fatalf("NewPWorld(%d): %v", shards, err)
	}
	w.PartNetwork().SetSerial(serial)
	reg := metrics.NewRegistry()
	w.SetMetrics(reg)
	err = w.Run(func(r *PRank) error {
		p, rank := r.Ranks(), r.Rank()
		next, prev := (rank+1)%p, (rank+p-1)%p
		for round := 0; round < 3; round++ {
			if err := r.Send(next, round, []byte{byte(rank), byte(round)}); err != nil {
				return err
			}
			b, err := r.Recv(prev, round)
			if err != nil {
				return err
			}
			if b[0] != byte(prev) || b[1] != byte(round) {
				return fmt.Errorf("ring round %d got %v", round, b)
			}
		}
		got, err := r.AllReduce([]float64{1}, 0)
		if err != nil {
			return err
		}
		if got[0] != float64(p) {
			return fmt.Errorf("allreduce = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("shards=%d serial=%v: %v", shards, serial, err)
	}
	msgs, bytes := w.Stats()
	return w.MaxTime(), msgs, bytes, reg.Render()
}

// TestPWorldDeterministicAcrossShards pins the tentpole invariant at
// the message-passing layer: the same SPMD program produces identical
// makespans, traffic and metrics at every aligned shard count, serial
// or parallel dispatch.
func TestPWorldDeterministicAcrossShards(t *testing.T) {
	refT, refM, refB, refMet := pworldTrial(t, 1, false)
	if refT <= 0 || refM == 0 {
		t.Fatalf("trivial reference: makespan %v, %d msgs", refT, refM)
	}
	for _, shards := range []int{1, 2, 4, 8, 16} {
		for _, serial := range []bool{false, true} {
			if shards == 1 && !serial {
				continue
			}
			gt, gm, gb, gmet := pworldTrial(t, shards, serial)
			if gt != refT || gm != refM || gb != refB {
				t.Errorf("shards=%d serial=%v: makespan %v msgs %d bytes %d, want %v %d %d",
					shards, serial, gt, gm, gb, refT, refM, refB)
			}
			if gmet != refMet {
				t.Errorf("shards=%d serial=%v: metrics diverged", shards, serial)
			}
		}
	}
}

// BenchmarkAllreduceSystem256 sweeps repeated 128-rank AllReduce rounds
// across shard counts: engine=seq is the serial-dispatch baseline,
// engine=par walks the shard heaps concurrently. The butterfly's
// cross-group edges are exactly the traffic the partition mailboxes
// exist for, so this is the communication-bound end of the sweep.
func BenchmarkAllreduceSystem256(b *testing.B) {
	top := topo.System256()
	const rounds = 10
	run := func(b *testing.B, shards int, serial bool) {
		for i := 0; i < b.N; i++ {
			w, err := NewPWorld(top, shards)
			if err != nil {
				b.Fatal(err)
			}
			w.PartNetwork().SetSerial(serial)
			p := w.Ranks()
			wantA := float64(p) * float64(p+1) / 2
			err = w.Run(func(r *PRank) error {
				for round := 0; round < rounds; round++ {
					got, err := r.AllReduce([]float64{float64(r.Rank() + 1)}, round)
					if err != nil {
						return err
					}
					if len(got) != 1 || got[0] != wantA {
						return fmt.Errorf("round %d sum = %v, want %v", round, got, wantA)
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("engine=seq/shards=1", func(b *testing.B) { run(b, 1, true) })
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("engine=par/shards=%d", shards), func(b *testing.B) { run(b, shards, false) })
	}
}
