// Package mpl is the user-level message-passing layer of the
// reproduction — the role MPI plays on the real machine (Section 4 of
// the paper: "an optimized implementation of MPI offers user-level
// communication, which reduces the communication overhead
// significantly"). It runs entirely over the simulated interconnect of
// internal/netsim: one rank per node, PIO-driven sends with the
// calibrated PowerMANNA software overheads, wormhole transit through the
// crossbar hierarchy, and polling receives.
//
// Like every model in this repository, the layer is functional as well
// as timed: messages carry real payload bytes, collectives combine real
// vectors, and the tests verify both the arithmetic and the timing
// invariants (causality, determinism, logarithmic collective depth).
//
// Per Section 4's first implementation, user traffic prefers one network
// plane of the duplicated system (plane A), leaving plane B to the
// operating system. Every send goes through a per-rank netsim.Transport,
// so the layer inherits the driver-level failover protocol: on a faulted
// plane A the message retries over plane B (contending with any attached
// OS stream) instead of silently vanishing, and the transport's route
// cache amortises the per-message route lookup.
package mpl

import (
	"fmt"

	"powermanna/internal/comm"
	"powermanna/internal/link"
	"powermanna/internal/metrics"
	"powermanna/internal/netsim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// MetricRecvWait is the receive-side wait histogram: how long a rank
// sits polling between being ready to receive and the message's last
// byte arriving at its NI — zero when the message was already in the
// FIFO. Together with the netsim send-path instruments this completes
// the machine profile in pmfault --metrics: the send side shows what
// the network did to a message, this shows what the receiver felt.
const MetricRecvWait = "mpl.recv.wait"

// MetricRecvWaitRankPrefix prefixes the per-rank receive-wait views:
// the same observations as MetricRecvWait, broken out one histogram per
// rank as mpl.recv.wait.rNNN so a skewed receiver (one rank starved by
// a faulted plane while the rest idle) is visible instead of averaged
// away in the machine-wide histogram. Off, like every instrument, when
// no registry is attached.
const MetricRecvWaitRankPrefix = MetricRecvWait + ".r"

// recvWaitRankName is rank r's labelled histogram name, zero-padded to
// three digits so the name-sorted dump lists ranks numerically.
func recvWaitRankName(rank int) string {
	return fmt.Sprintf("%s%03d", MetricRecvWaitRankPrefix, rank)
}

// recvWaitBuckets shares the send-latency geometry (powers of two from
// 1 µs) so the two ends of the profile read side by side.
func recvWaitBuckets() []sim.Time {
	return metrics.TimeBuckets(sim.Microsecond, 2, 10)
}

// mplInstruments holds the world's instruments, resolved once at
// attach time; the zero value keeps every observation a nil-receiver
// no-op (metrics off).
type mplInstruments struct {
	recvWait *metrics.Histogram
	// rankWait holds the per-rank views, indexed by rank; empty when
	// metrics are off.
	rankWait []*metrics.Histogram
}

// observeRecvWait feeds one receive wait into the machine-wide
// histogram and the receiving rank's own view.
func (mi *mplInstruments) observeRecvWait(rank int, wait sim.Time) {
	mi.recvWait.ObserveTime(wait)
	if rank < len(mi.rankWait) {
		mi.rankWait[rank].ObserveTime(wait)
	}
}

// World is one program run: a set of ranks (one per node) over an
// assembled network, each with its own local clock.
type World struct {
	net    *netsim.Network
	params comm.PMParams
	clocks []sim.Time
	// tps holds each rank's fault-aware transport — the only send path.
	tps []*netsim.Transport
	// pending holds in-flight messages per destination rank, in arrival
	// order of posting (FIFO matching within a (src, tag) pair).
	pending [][]message
	sends   int64
	bytes   int64
	met     mplInstruments
}

type message struct {
	src, tag  int
	payload   []byte
	arrival   sim.Time // last byte at the destination NI
	firstByte sim.Time
}

// NewWorld builds a world over a topology, one rank per node, with the
// default failover protocol.
func NewWorld(t *topo.Topology) *World {
	return NewWorldWith(t, netsim.DefaultFailover())
}

// NewWorldWith builds a world whose per-rank transports run the given
// failover configuration — the knob fault campaigns turn to compare,
// say, cached against cacheless plane-down detection.
func NewWorldWith(t *topo.Topology, cfg netsim.FailoverConfig) *World {
	w := &World{
		net:     netsim.New(t),
		params:  comm.DefaultPMParams(),
		clocks:  make([]sim.Time, t.Nodes()),
		tps:     make([]*netsim.Transport, t.Nodes()),
		pending: make([][]message, t.Nodes()),
	}
	for i := range w.tps {
		w.tps[i] = w.net.MustTransport(i, cfg)
	}
	return w
}

// Network exposes the underlying network — for fault injection and the
// degraded-mode counters, not for sending (sends go through the per-rank
// transports).
func (w *World) Network() *netsim.Network { return w.net }

// SetMetrics attaches the world to a registry: the network's send-path
// instruments plus the receive-wait views observed by Recv — the
// machine-wide histogram and one labelled view per rank. A nil registry
// detaches everything.
func (w *World) SetMetrics(m *metrics.Registry) {
	w.net.SetMetrics(m)
	w.met.recvWait = m.TimeHistogram(MetricRecvWait, recvWaitBuckets())
	w.met.rankWait = nil
	if m == nil {
		return
	}
	w.met.rankWait = make([]*metrics.Histogram, w.Ranks())
	for r := range w.met.rankWait {
		w.met.rankWait[r] = m.TimeHistogram(recvWaitRankName(r), recvWaitBuckets())
	}
}

// Ranks reports the number of ranks.
func (w *World) Ranks() int { return len(w.clocks) }

// Now reports a rank's local time.
func (w *World) Now(rank int) sim.Time { return w.clocks[rank] }

// MaxTime reports the latest local time across ranks (the makespan).
func (w *World) MaxTime() sim.Time {
	var max sim.Time
	for _, t := range w.clocks {
		if t > max {
			max = t
		}
	}
	return max
}

// Stats reports message traffic.
func (w *World) Stats() (messages, payloadBytes int64) { return w.sends, w.bytes }

// Compute advances a rank's clock by local computation time.
func (w *World) Compute(rank int, d sim.Time) { w.clocks[rank] += d }

func (w *World) cycles(n int64) sim.Time { return w.params.CPUClock.Cycles(n) }

// Send posts payload from src to dst with a tag. The sender pays the
// user-level send path (setup plus PIO at line granularity, overlapped
// with the link once the FIFO pipeline is full); delivery is scheduled
// through the wormhole network. Send returns when the sender's CPU is
// free again (eager protocol — the paper's NI has no rendezvous).
func (w *World) Send(src, dst, tag int, payload []byte) error {
	if src == dst {
		return fmt.Errorf("mpl: self-send from rank %d", src)
	}
	start := w.clocks[src] + w.cycles(w.params.SendSetupCycles)
	// First line enters the FIFO before the head can leave.
	start += w.params.PIOWriteLine
	d, err := w.tps[src].Send(start, dst, len(payload))
	if err != nil {
		return err
	}
	if d.Failed {
		return fmt.Errorf("mpl: message %d->%d lost on both planes", src, dst)
	}
	// Sender occupancy: for messages beyond the FIFO, the CPU feeds lines
	// as the link drains them; the link is slower than PIO, so the CPU is
	// free once the tail fits in the FIFO.
	tail := len(payload) - w.params.FIFOBytes
	senderDone := start
	if tail > 0 {
		// CPU must stay until all but one FIFO's worth has left the node
		// (the last FIFO fill drains at the 60 MB/s link rate without it).
		senderDone = d.Done - sim.Time(w.params.FIFOBytes)*link.BytePeriod
		if senderDone < start {
			senderDone = start
		}
	} else {
		lines := (len(payload) + 63) / 64
		senderDone = start + sim.Time(lines)*w.params.PIOWriteLine
	}
	w.clocks[src] = senderDone

	cp := make([]byte, len(payload))
	copy(cp, payload)
	w.pending[dst] = append(w.pending[dst], message{
		src: src, tag: tag, payload: cp,
		arrival: d.Done, firstByte: d.Transit.FirstByte,
	})
	w.sends++
	w.bytes += int64(len(payload))
	return nil
}

// Recv blocks rank dst until a message from src with the tag has fully
// arrived, drains it from the receive FIFO and returns the payload.
// Matching is FIFO within (src, tag).
func (w *World) Recv(dst, src, tag int) ([]byte, error) {
	q := w.pending[dst]
	for i, m := range q {
		if m.src != src || m.tag != tag {
			continue
		}
		w.pending[dst] = append(q[:i:i], q[i+1:]...)
		// Poll until arrival, then drain and return to user.
		t := w.clocks[dst] + w.cycles(w.params.PollCycles)
		var wait sim.Time
		if m.arrival > t {
			wait = m.arrival - t
			t = m.arrival + w.cycles(w.params.PollCycles)/2
		}
		w.met.observeRecvWait(dst, wait)
		lines := (len(m.payload) + 63) / 64
		if lines < 1 {
			lines = 1
		}
		t += sim.Time(lines) * w.params.PIOReadLine
		t += w.cycles(w.params.RecvReturnCycles)
		w.clocks[dst] = t
		return m.payload, nil
	}
	return nil, fmt.Errorf("mpl: rank %d has no message from %d tag %d", dst, src, tag)
}

// Reset clears clocks, queues and the network.
func (w *World) Reset() {
	w.net.Reset()
	for i := range w.clocks {
		w.clocks[i] = 0
	}
	for i := range w.pending {
		w.pending[i] = nil
	}
	w.sends, w.bytes = 0, 0
}
