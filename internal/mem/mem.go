// Package mem models the node main memory: interleaved, pipelined DRAM
// built from standard modules, as in the PowerMANNA node (Section 2 of the
// paper: "The interleaved and pipelined node memory of up to 1 Gbyte uses
// cheap standard DRAM modules and provides an access bandwidth of
// 640 Mbyte/s").
//
// The model is occupancy-based: each bank is a pipelined resource with an
// initiation interval (the bank cycle time) and an access latency, and all
// banks share one datapath resource whose per-line occupancy sets the
// stream bandwidth ceiling. Interleaving spreads consecutive lines across
// banks so that sequential streams pipeline across banks while
// pathological strides collapse onto a single bank — exactly the behaviour
// that separates the two MatMult variants in Figure 7.
package mem

import (
	"fmt"

	"powermanna/internal/sim"
)

// Config describes one memory system.
type Config struct {
	// Banks is the number of interleaved DRAM banks.
	Banks int
	// InterleaveBytes is the stripe width: consecutive stripes of this many
	// bytes map to consecutive banks. Typically the cache-line size.
	InterleaveBytes int
	// AccessLatency is the time from row access start to first data.
	AccessLatency sim.Time
	// BankBusy is the bank initiation interval (cycle time): how long a
	// bank stays busy per line access.
	BankBusy sim.Time
	// LineTransfer is the datapath occupancy to move one cache line
	// between memory and the node interconnect. 64 B at 640 MB/s = 100 ns.
	LineTransfer sim.Time
	// SizeBytes is the installed capacity (informational; the timing model
	// does not bound addresses).
	SizeBytes int64
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("mem: Banks = %d, must be positive", c.Banks)
	case c.InterleaveBytes <= 0:
		return fmt.Errorf("mem: InterleaveBytes = %d, must be positive", c.InterleaveBytes)
	case c.AccessLatency < 0 || c.BankBusy < 0 || c.LineTransfer < 0:
		return fmt.Errorf("mem: negative timing parameter")
	}
	return nil
}

// StreamBandwidth reports the theoretical sequential-stream bandwidth in
// bytes/second implied by the datapath occupancy, assuming lines of the
// interleave width.
func (c Config) StreamBandwidth() float64 {
	if c.LineTransfer <= 0 {
		return 0
	}
	return float64(c.InterleaveBytes) / c.LineTransfer.Seconds()
}

// Memory is the timing model instance.
type Memory struct {
	cfg      Config
	banks    []sim.Pipelined
	datapath sim.Resource
	reads    int64
	writes   int64
}

// New builds a Memory from cfg. It panics on invalid configuration, which
// is always a programming error in a machine description.
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{cfg: cfg, banks: make([]sim.Pipelined, cfg.Banks)}
	for i := range m.banks {
		m.banks[i] = sim.Pipelined{Interval: cfg.BankBusy, Latency: cfg.AccessLatency}
	}
	return m
}

// Config returns the configuration the memory was built with.
func (m *Memory) Config() Config { return m.cfg }

func (m *Memory) bank(addr uint64) *sim.Pipelined {
	stripe := addr / uint64(m.cfg.InterleaveBytes)
	return &m.banks[stripe%uint64(m.cfg.Banks)]
}

// ReadLine models fetching the cache line containing addr, starting no
// earlier than at, and returns the completion time (data delivered to the
// requester's side of the datapath).
func (m *Memory) ReadLine(at sim.Time, addr uint64) (done sim.Time) {
	m.reads++
	bankDone := m.bank(addr).Acquire(at)
	// The datapath streams the line out after the bank produced it.
	start := m.datapath.Acquire(bankDone, m.cfg.LineTransfer)
	return start + m.cfg.LineTransfer
}

// WriteLine models a write-back of a full line. Writes occupy the bank and
// datapath but the requester does not wait for the row completion, so the
// returned time is when the datapath accepted the line.
func (m *Memory) WriteLine(at sim.Time, addr uint64) (accepted sim.Time) {
	m.writes++
	start := m.datapath.Acquire(at, m.cfg.LineTransfer)
	m.bank(addr).Acquire(start + m.cfg.LineTransfer)
	return start + m.cfg.LineTransfer
}

// Stats reports access counts and datapath busy time.
type Stats struct {
	Reads, Writes int64
	DatapathBusy  sim.Time
}

// Stats returns the accumulated counters.
func (m *Memory) Stats() Stats {
	return Stats{Reads: m.reads, Writes: m.writes, DatapathBusy: m.datapath.Busy()}
}

// Reset clears all timelines and counters, keeping the configuration.
func (m *Memory) Reset() {
	for i := range m.banks {
		m.banks[i].Reset()
	}
	m.datapath.Reset()
	m.reads, m.writes = 0, 0
}
