package mem

import (
	"testing"
	"testing/quick"

	"powermanna/internal/sim"
)

func testConfig() Config {
	return Config{
		Banks:           4,
		InterleaveBytes: 64,
		AccessLatency:   100 * sim.Nanosecond,
		BankBusy:        160 * sim.Nanosecond,
		LineTransfer:    100 * sim.Nanosecond,
		SizeBytes:       512 << 20,
	}
}

func TestValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Banks: 0, InterleaveBytes: 64},
		{Banks: 4, InterleaveBytes: 0},
		{Banks: 4, InterleaveBytes: 64, AccessLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStreamBandwidth(t *testing.T) {
	// 64 B per 100 ns = 640 MB/s, the paper's figure for the PowerMANNA node.
	bw := testConfig().StreamBandwidth()
	if bw < 639e6 || bw > 641e6 {
		t.Errorf("StreamBandwidth = %g, want ~640e6", bw)
	}
}

func TestSingleReadLatency(t *testing.T) {
	m := New(testConfig())
	done := m.ReadLine(0, 0)
	want := 200 * sim.Nanosecond // 100 access + 100 transfer
	if done != want {
		t.Errorf("ReadLine done = %v, want %v", done, want)
	}
}

func TestSequentialStreamPipelinesAcrossBanks(t *testing.T) {
	m := New(testConfig())
	// 16 consecutive lines hit banks round-robin; steady-state spacing
	// should be the datapath occupancy (100 ns), not latency+busy.
	var last sim.Time
	for i := 0; i < 16; i++ {
		last = m.ReadLine(0, uint64(i*64))
	}
	// Ideal: 100ns latency + 16*100ns transfers = 1700ns.
	ideal := 1700 * sim.Nanosecond
	if last > ideal+200*sim.Nanosecond {
		t.Errorf("streamed 16 lines in %v, want close to %v", last, ideal)
	}
	bw := float64(16*64) / last.Seconds()
	if bw < 550e6 {
		t.Errorf("stream bandwidth %g B/s, want >550 MB/s", bw)
	}
}

func TestSameBankStrideSerializes(t *testing.T) {
	m := New(testConfig())
	// Stride of Banks*Interleave keeps hitting bank 0: each access pays the
	// full bank cycle; throughput drops versus the interleaved stream.
	var last sim.Time
	for i := 0; i < 16; i++ {
		last = m.ReadLine(0, uint64(i*4*64))
	}
	mi := New(testConfig())
	var lastInterleaved sim.Time
	for i := 0; i < 16; i++ {
		lastInterleaved = mi.ReadLine(0, uint64(i*64))
	}
	if last <= lastInterleaved {
		t.Errorf("same-bank stride (%v) should be slower than interleaved (%v)", last, lastInterleaved)
	}
}

func TestWriteLineOccupiesDatapath(t *testing.T) {
	m := New(testConfig())
	acc := m.WriteLine(0, 0)
	if acc != 100*sim.Nanosecond {
		t.Errorf("write accepted at %v, want 100ns", acc)
	}
	// A read to the same bank right behind the write queues behind the
	// bank's write cycle.
	done := m.ReadLine(0, 0)
	if done <= 200*sim.Nanosecond {
		t.Errorf("read after write done at %v, should see bank contention", done)
	}
}

func TestStatsAndReset(t *testing.T) {
	m := New(testConfig())
	m.ReadLine(0, 0)
	m.ReadLine(0, 64)
	m.WriteLine(0, 128)
	s := m.Stats()
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("stats = %+v, want 2 reads 1 write", s)
	}
	if s.DatapathBusy != 300*sim.Nanosecond {
		t.Errorf("DatapathBusy = %v, want 300ns", s.DatapathBusy)
	}
	m.Reset()
	if s := m.Stats(); s.Reads != 0 || s.Writes != 0 || s.DatapathBusy != 0 {
		t.Errorf("after reset stats = %+v", s)
	}
}

// Property: completion times are non-decreasing for non-decreasing request
// times on any address pattern, and every read takes at least
// AccessLatency+LineTransfer.
func TestReadLatencyLowerBoundProperty(t *testing.T) {
	cfg := testConfig()
	minLat := cfg.AccessLatency + cfg.LineTransfer
	f := func(addrs []uint32) bool {
		m := New(cfg)
		at := sim.Time(0)
		prev := sim.Time(0)
		for _, a := range addrs {
			done := m.ReadLine(at, uint64(a))
			if done < at+minLat || done < prev {
				return false
			}
			prev = done
			at += 10 * sim.Nanosecond
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
