package link

import (
	"testing"
	"testing/quick"
)

func TestFlitConfigValidate(t *testing.T) {
	for _, c := range []FlitConfig{DefaultFlitConfig(), TransceiverFlitConfig()} {
		if err := c.Validate(); err != nil {
			t.Errorf("standard config rejected: %v", err)
		}
		if !c.SafeAgainstOverrun() {
			t.Errorf("standard config %+v not overrun-safe", c)
		}
	}
	bad := []FlitConfig{
		{},
		{FIFOBytes: 64, StopLagCycles: -1, HighWater: 32},
		{FIFOBytes: 64, HighWater: 100},
		{FIFOBytes: 64, HighWater: 32, LowWater: 40},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// Cross-validation with the fluid model: a consumer that always keeps up
// lets the link sustain one byte per cycle — exactly the 60 MB/s the
// Wire abstraction and the comm driver assume.
func TestFlitFullRateMatchesFluidModel(t *testing.T) {
	const total = 100_000
	st := SimulateStream(DefaultFlitConfig(), total, func(int64) int { return 4 }, 10*total)
	if st.Overflowed {
		t.Fatal("overflow with a fast consumer")
	}
	rate := float64(total) / float64(st.Cycles)
	if rate < 0.99 {
		t.Errorf("sustained %g bytes/cycle, want ~1 (fluid model assumption)", rate)
	}
	if st.StopToggles != 0 {
		t.Errorf("fast consumer caused %d stop toggles", st.StopToggles)
	}
}

// A stalled consumer must never overflow the FIFO: the stop signal holds
// the sender off despite its lag.
func TestFlitStalledConsumerNeverOverflows(t *testing.T) {
	for _, cfg := range []FlitConfig{DefaultFlitConfig(), TransceiverFlitConfig()} {
		st := SimulateStream(cfg, 10_000, func(int64) int { return 0 }, 50_000)
		if st.Overflowed {
			t.Fatalf("%+v overflowed under a stalled consumer", cfg)
		}
		if st.MaxFIFO > cfg.FIFOBytes {
			t.Fatalf("occupancy %d exceeded FIFO %d", st.MaxFIFO, cfg.FIFOBytes)
		}
		if st.StopCycles == 0 {
			t.Error("sender never held off")
		}
	}
}

// A slow consumer throttles the link to exactly its drain rate.
func TestFlitSlowConsumerThrottles(t *testing.T) {
	const total = 50_000
	// Half a byte per cycle: one byte every other cycle.
	st := SimulateStream(DefaultFlitConfig(), total, func(c int64) int {
		if c%2 == 0 {
			return 1
		}
		return 0
	}, 10*total)
	if st.Overflowed {
		t.Fatal("overflow")
	}
	rate := float64(total) / float64(st.Cycles)
	if rate < 0.45 || rate > 0.55 {
		t.Errorf("throughput %g bytes/cycle, want ~0.5 (consumer-bound)", rate)
	}
}

// Hysteresis keeps the stop wire quiet: a low-water mark well below the
// high-water mark toggles stop far less often than a one-byte band.
func TestFlitHysteresisReducesToggles(t *testing.T) {
	slow := func(c int64) int {
		if c%2 == 0 {
			return 1
		}
		return 0
	}
	wide := DefaultFlitConfig()
	narrow := wide
	narrow.LowWater = narrow.HighWater - 1
	stWide := SimulateStream(wide, 20_000, slow, 200_000)
	stNarrow := SimulateStream(narrow, 20_000, slow, 200_000)
	if stWide.StopToggles >= stNarrow.StopToggles {
		t.Errorf("hysteresis did not help: wide %d toggles vs narrow %d",
			stWide.StopToggles, stNarrow.StopToggles)
	}
}

// Property: no safe configuration overflows under any (bounded) drain
// pattern, and every delivered byte was sent.
func TestFlitSafetyProperty(t *testing.T) {
	f := func(seed uint32, lag uint8, drainMod uint8) bool {
		cfg := FlitConfig{
			FIFOBytes:     256,
			StopLagCycles: int(lag % 32),
			HighWater:     256 - int(lag%32) - 1,
			LowWater:      128,
		}
		if cfg.HighWater < cfg.LowWater {
			cfg.LowWater = cfg.HighWater / 2
		}
		if !cfg.SafeAgainstOverrun() {
			return true // not claimed safe
		}
		mod := int64(drainMod%7) + 2
		x := uint64(seed) | 1
		st := SimulateStream(cfg, 5000, func(c int64) int {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if c%mod == 0 {
				return int(x % 4)
			}
			return 0
		}, 1_000_000)
		return !st.Overflowed && st.Delivered <= 5000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// An unsafe configuration (headroom below the stop lag) demonstrably can
// overflow — the design rule is tight, which is why the inter-cabinet
// transceivers carry 2 KB FIFOs.
func TestFlitUnsafeConfigOverflows(t *testing.T) {
	cfg := FlitConfig{FIFOBytes: 64, StopLagCycles: 32, HighWater: 60, LowWater: 30}
	if cfg.SafeAgainstOverrun() {
		t.Fatal("config unexpectedly safe")
	}
	st := SimulateStream(cfg, 10_000, func(int64) int { return 0 }, 100_000)
	if !st.Overflowed {
		t.Error("unsafe config survived a stalled consumer")
	}
}
