package link

import (
	"testing"

	"powermanna/internal/sim"
)

func TestCutAtEarliestWins(t *testing.T) {
	w := NewWire(Default("w"))
	if _, cut := w.CutTime(); cut {
		t.Fatal("fresh wire reports a cut")
	}
	w.CutAt(5 * sim.Microsecond)
	w.CutAt(2 * sim.Microsecond)
	w.CutAt(9 * sim.Microsecond) // once dead, always dead
	at, cut := w.CutTime()
	if !cut || at != 2*sim.Microsecond {
		t.Errorf("CutTime = %v, %v; want 2us, true", at, cut)
	}
	if w.DeadAt(1 * sim.Microsecond) {
		t.Error("wire dead before the cut")
	}
	if !w.DeadAt(2 * sim.Microsecond) {
		t.Error("wire alive at the cut instant")
	}
}

func TestCorruptWindowOverlap(t *testing.T) {
	w := NewWire(Default("w"))
	w.CorruptBetween(10*sim.Microsecond, 20*sim.Microsecond)
	w.CorruptBetween(30*sim.Microsecond, 30*sim.Microsecond) // empty, ignored
	cases := []struct {
		from, until sim.Time
		want        bool
	}{
		{0, 5 * sim.Microsecond, false},
		{0, 10 * sim.Microsecond, true}, // touches window start
		{15 * sim.Microsecond, 16 * sim.Microsecond, true},
		{19 * sim.Microsecond, 25 * sim.Microsecond, true},
		{20 * sim.Microsecond, 25 * sim.Microsecond, false}, // window is half-open
		{29 * sim.Microsecond, 31 * sim.Microsecond, false},
	}
	for _, c := range cases {
		if got := w.CorruptedIn(c.from, c.until); got != c.want {
			t.Errorf("CorruptedIn(%v, %v) = %v, want %v", c.from, c.until, got, c.want)
		}
	}
}

func TestResetClearsFaults(t *testing.T) {
	w := NewWire(Default("w"))
	w.CutAt(1 * sim.Microsecond)
	w.CorruptBetween(0, 1*sim.Microsecond)
	w.Reset()
	if _, cut := w.CutTime(); cut {
		t.Error("Reset kept the cut")
	}
	if w.CorruptedIn(0, 2*sim.Microsecond) {
		t.Error("Reset kept corruption windows")
	}
}
