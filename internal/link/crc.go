package link

// CRC-16/CCITT-FALSE, the class of checksum the PowerMANNA link-interface
// ASIC generates on send and verifies on receive (Section 3.3), ensuring
// communication "is not only efficient but also reliable". Table-driven,
// initial value 0xFFFF, polynomial 0x1021, no reflection.

const crcPoly = 0x1021

var crcTable = buildCRCTable()

func buildCRCTable() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		c := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if c&0x8000 != 0 {
				c = c<<1 ^ crcPoly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}

// CRC16 computes the link checksum over data.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// CheckCRC16 verifies data against an expected checksum.
func CheckCRC16(data []byte, want uint16) bool { return CRC16(data) == want }
