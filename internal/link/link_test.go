package link

import (
	"testing"
	"testing/quick"

	"powermanna/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := Default("t").Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Clock: sim.ClockMHz(60)},
		{Clock: sim.ClockMHz(60), WidthBytes: 1, PropagationDelay: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLinkRate(t *testing.T) {
	// Section 3.2: 60 Mbyte/s per direction.
	bw := Default("t").BytesPerSecond()
	if bw < 59e6 || bw > 61e6 {
		t.Errorf("link rate = %g B/s, want ~60 MB/s", bw)
	}
	// 64 bytes take 64 cycles ≈ 1.067 µs.
	tt := Default("t").TransferTime(64)
	if tt < 1060*sim.Nanosecond || tt > 1070*sim.Nanosecond {
		t.Errorf("TransferTime(64) = %v, want ~1.067us", tt)
	}
}

func TestWireCutThrough(t *testing.T) {
	w := NewWire(Default("t"))
	first, last := w.Send(0, 64)
	if first >= last {
		t.Fatal("first byte must precede last")
	}
	// First byte lands after ~1 cycle + propagation, long before the
	// last: wormhole cut-through at the wire level.
	if first > 50*sim.Nanosecond {
		t.Errorf("first byte at %v, want tens of ns", first)
	}
	if w.BytesSent() != 64 {
		t.Errorf("BytesSent = %d", w.BytesSent())
	}
}

func TestWireSerializesTransfers(t *testing.T) {
	w := NewWire(Default("t"))
	_, last1 := w.Send(0, 64)
	first2, _ := w.Send(0, 64)
	if first2 <= last1-w.Config().TransferTime(64) {
		t.Error("second transfer overlapped the first on one wire")
	}
	if w.Busy() != 2*w.Config().TransferTime(64) {
		t.Errorf("Busy = %v", w.Busy())
	}
	w.Reset()
	if w.Busy() != 0 || w.BytesSent() != 0 {
		t.Error("Reset incomplete")
	}
}

// Property: wire times are monotone and rate-respecting for any request
// pattern.
func TestWireRateProperty(t *testing.T) {
	cfg := Default("p")
	f := func(sizes []uint8) bool {
		w := NewWire(cfg)
		var total int
		var lastEnd sim.Time
		for _, s := range sizes {
			n := int(s)%256 + 1
			_, last := w.Send(0, n)
			if last < lastEnd {
				return false
			}
			lastEnd = last
			total += n
		}
		// Total elapsed ≥ total bytes at the link rate.
		return lastEnd >= cfg.TransferTime(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 check vector = %#x, want 0x29B1", got)
	}
	if CRC16(nil) != 0xFFFF {
		t.Errorf("CRC16(empty) = %#x, want init 0xFFFF", CRC16(nil))
	}
}

func TestCheckCRC16DetectsCorruption(t *testing.T) {
	msg := []byte("powermanna link frame")
	sum := CRC16(msg)
	if !CheckCRC16(msg, sum) {
		t.Fatal("valid frame rejected")
	}
	msg[3] ^= 0x40
	if CheckCRC16(msg, sum) {
		t.Error("corrupted frame accepted")
	}
}

// Property: CRC distinguishes any single-bit flip.
func TestCRCSingleBitProperty(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		sum := CRC16(data)
		i := int(pos) % len(data)
		bit := byte(1) << (pos % 8)
		data[i] ^= bit
		ok := !CheckCRC16(data, sum)
		data[i] ^= bit
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDefaultTransceiver(t *testing.T) {
	tr := DefaultTransceiver()
	if tr.FIFOBytes != 2048 {
		t.Errorf("transceiver FIFO = %d, want 2048 (Section 3.2)", tr.FIFOBytes)
	}
	if tr.Latency <= 0 {
		t.Error("transceiver must add latency")
	}
}
