// Package link models the PowerMANNA link protocol (Section 3.2 of the
// paper): a clock-synchronous, byte-parallel, bidirectional point-to-point
// connection at 60 MHz. Each direction is a 9-bit channel (8 data bits
// plus a control flag distinguishing commands like route and close from
// payload) with a stop signal running the opposite way for soft flow
// control against the receiver-side FIFO.
//
// Each port sustains 60 Mbyte/s per direction — 120 Mbyte/s full duplex —
// and the full-duplex design excludes protocol deadlocks. For distances
// beyond the clock-synchronous reach (between cabinets, up to 30 m),
// asynchronous transceivers with 2-Kbyte FIFOs bridge the link.
//
// The package also implements the CRC the link-interface ASIC generates
// and checks (Section 3.3: "the link-interface chip performs generation
// and checking of a CRC check sum"), as a real CRC-16/CCITT over message
// bytes — messages in this reproduction carry actual payloads.
package link

import (
	"fmt"

	"powermanna/internal/sim"
	"powermanna/internal/trace"
)

// Config describes one link direction.
type Config struct {
	// Name labels the wire in diagnostics.
	Name string
	// Clock is the link clock: 60 MHz, one byte per cycle (Section 3.2).
	Clock sim.Clock
	// WidthBytes is the datapath width per cycle (1 for the byte-parallel
	// PowerMANNA link).
	WidthBytes int
	// PropagationDelay is the signal flight time plus synchronizer delay;
	// small within a cabinet.
	PropagationDelay sim.Time
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Clock.Period <= 0:
		return fmt.Errorf("link %q: zero clock", c.Name)
	case c.WidthBytes <= 0:
		return fmt.Errorf("link %q: WidthBytes = %d", c.Name, c.WidthBytes)
	case c.PropagationDelay < 0:
		return fmt.Errorf("link %q: negative propagation delay", c.Name)
	}
	return nil
}

// BytePeriod is the wire occupancy of one byte at the 60 Mbyte/s link
// rate: the 60 MHz link clock moves one byte per cycle (Section 3.2), so
// a byte holds the wire for 16667 ps. Sender-occupancy and gap models
// that reason about the link draining at line rate share this constant
// instead of re-deriving the magic number.
const BytePeriod = 16667 * sim.Picosecond

// Default returns the PowerMANNA link: 60 MHz, byte-parallel, one cycle
// of synchronizer delay.
func Default(name string) Config {
	return Config{
		Name:             name,
		Clock:            sim.ClockMHz(60),
		WidthBytes:       1,
		PropagationDelay: 17 * sim.Nanosecond, // one 60 MHz cycle
	}
}

// BytesPerSecond reports the direction's raw bandwidth.
func (c Config) BytesPerSecond() float64 {
	return float64(c.WidthBytes) / c.Clock.Period.Seconds()
}

// TransferTime reports the wire occupancy of n bytes.
func (c Config) TransferTime(n int) sim.Time {
	cycles := (n + c.WidthBytes - 1) / c.WidthBytes
	return c.Clock.Cycles(int64(cycles))
}

// Wire is one direction of a link: an occupancy timeline at the link rate
// plus propagation delay. Flow control (the stop signal) is exercised by
// the FIFO models on either side — a transfer is only scheduled when the
// receiving FIFO has space, which is exactly what the stop wire enforces.
type Wire struct {
	cfg    Config
	res    sim.Resource
	sent   int64
	faults wireFaults
	// rec, when non-nil, records occupancy spans and fault instants on
	// track (trace.WireTrack of the owning network position).
	rec   *trace.Recorder
	track trace.TrackID
}

// NewWire builds a wire. It panics on invalid configuration.
func NewWire(cfg Config) *Wire {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Wire{cfg: cfg}
}

// Config returns the wire's configuration.
func (w *Wire) Config() Config { return w.cfg }

// Trace attaches a recorder to the wire under the given track identity;
// a nil recorder detaches. Occupancy holds and injected faults are then
// recorded as trace events.
func (w *Wire) Trace(rec *trace.Recorder, track trace.TrackID) {
	w.rec, w.track = rec, track
}

// Send schedules n bytes onto the wire no earlier than at, returning when
// the first and last byte arrive at the far end.
func (w *Wire) Send(at sim.Time, n int) (first, last sim.Time) {
	dur := w.cfg.TransferTime(n)
	start := w.res.Acquire(at, dur)
	w.sent += int64(n)
	first = start + w.cfg.PropagationDelay + w.cfg.Clock.Cycles(1)
	return first, start + dur + w.cfg.PropagationDelay
}

// FreeAt reports when the wire next becomes free.
func (w *Wire) FreeAt() sim.Time { return w.res.FreeAt() }

// Hold claims the wire for a wormhole circuit from start until `until`
// (the close command passing) and accounts n bytes of traffic. Used by
// the network's two-pass circuit setup; Send remains the one-shot API.
func (w *Wire) Hold(start, until sim.Time, n int) {
	if until < start {
		panic(fmt.Sprintf("link %s: hold window [%v, %v) inverted", w.cfg.Name, start, until))
	}
	w.res.Acquire(start, until-start)
	w.sent += int64(n)
	if w.rec.Enabled() {
		w.rec.Span(w.track, "link", "hold", start, until)
	}
}

// BytesSent reports the cumulative traffic.
func (w *Wire) BytesSent() int64 { return w.sent }

// Busy reports accumulated wire occupancy.
func (w *Wire) Busy() sim.Time { return w.res.Busy() }

// Reset clears the timeline, counters and injected fault state.
func (w *Wire) Reset() {
	w.res.Reset()
	w.sent = 0
	w.faults = wireFaults{}
}

// Transceiver models the asynchronous inter-cabinet transceiver pair
// (Section 3.2): extra latency for the asynchronous crossing and a
// 2-Kbyte input FIFO that preserves soft flow control over the longer
// stop-signal round trip.
type Transceiver struct {
	// Latency is the added crossing delay per direction.
	Latency sim.Time
	// FIFOBytes is the async input FIFO (2 KB entries in the hardware).
	FIFOBytes int
}

// DefaultTransceiver returns the PowerMANNA inter-cabinet transceiver:
// 2 KB FIFOs; latency calibrated for tens-of-metres cabling plus
// synchronization.
func DefaultTransceiver() Transceiver {
	return Transceiver{Latency: 300 * sim.Nanosecond, FIFOBytes: 2048}
}
