package link

import "fmt"

// Flit-level reference model of one link direction (Section 3.2): a
// 9-bit-wide channel moving one byte (plus a command flag) per 60 MHz
// cycle toward a receiver FIFO, with the stop signal running back to the
// sender. The stop wire is physical, so it takes time to cross — the
// sender keeps emitting for StopLagCycles after the receiver asserts
// stop. Soft flow control is only safe if the FIFO's headroom above the
// high-water mark covers those in-flight bytes; the asynchronous
// inter-cabinet transceivers need their 2-Kbyte FIFOs for exactly this
// reason (the stop round trip over 30 m is long).
//
// The coarser models (Wire, the comm driver simulation) assume the link
// sustains its full rate and never overflows; this engine is the
// cycle-level justification, and the tests cross-validate the two.

// FlitConfig describes one flit-level link direction.
type FlitConfig struct {
	// FIFOBytes is the receiver-side buffer.
	FIFOBytes int
	// StopLagCycles is the stop signal's flight time back to the sender
	// (plus synchronizers). Bytes already on the wire keep arriving for
	// this many cycles after stop asserts.
	StopLagCycles int
	// HighWater asserts stop when occupancy reaches it; LowWater
	// deasserts when occupancy falls back to it (hysteresis).
	HighWater, LowWater int
}

// Validate reports a configuration error, if any.
func (c FlitConfig) Validate() error {
	switch {
	case c.FIFOBytes <= 0:
		return fmt.Errorf("link: FIFOBytes = %d", c.FIFOBytes)
	case c.StopLagCycles < 0:
		return fmt.Errorf("link: StopLagCycles = %d", c.StopLagCycles)
	case c.HighWater <= 0 || c.HighWater > c.FIFOBytes:
		return fmt.Errorf("link: HighWater = %d of %d", c.HighWater, c.FIFOBytes)
	case c.LowWater < 0 || c.LowWater > c.HighWater:
		return fmt.Errorf("link: LowWater = %d above HighWater %d", c.LowWater, c.HighWater)
	}
	return nil
}

// SafeAgainstOverrun reports whether the configuration can never
// overflow: the headroom above the high-water mark must absorb the bytes
// in flight during the stop lag (one per cycle; the signal takes
// StopLagCycles+1 cycles to take effect at the sender).
func (c FlitConfig) SafeAgainstOverrun() bool {
	return c.FIFOBytes-c.HighWater >= c.StopLagCycles+1
}

// DefaultFlitConfig returns the intra-cabinet link interface: the
// 256-byte NI FIFO with a short synchronous stop path.
func DefaultFlitConfig() FlitConfig {
	return FlitConfig{FIFOBytes: 256, StopLagCycles: 4, HighWater: 240, LowWater: 192}
}

// TransceiverFlitConfig returns the inter-cabinet configuration: 2 KB
// asynchronous FIFOs against the long stop round trip of up to 30 m of
// cable plus synchronizers.
func TransceiverFlitConfig() FlitConfig {
	return FlitConfig{FIFOBytes: 2048, StopLagCycles: 40, HighWater: 1900, LowWater: 1024}
}

// FlitStats reports a stream simulation's outcome.
type FlitStats struct {
	Cycles      int64
	Delivered   int
	MaxFIFO     int
	Overflowed  bool
	StopToggles int64
	StopCycles  int64 // cycles the sender spent held off
}

// SimulateStream pushes total bytes through the link, one byte per cycle
// when the (lagged) stop signal permits, draining the receiver FIFO by
// drain(cycle) bytes per cycle. It runs until all bytes are delivered or
// maxCycles elapse.
func SimulateStream(cfg FlitConfig, total int, drain func(cycle int64) int, maxCycles int64) FlitStats {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var st FlitStats
	fifo := 0
	sent := 0
	stopAsserted := false
	// stopPipe carries the stop signal toward the sender with lag.
	stopPipe := make([]bool, cfg.StopLagCycles+1)

	for st.Cycles = 0; st.Cycles < maxCycles; st.Cycles++ {
		c := st.Cycles
		// Sender sees the stop value from StopLagCycles ago.
		senderStopped := stopPipe[c%int64(len(stopPipe))]
		if senderStopped {
			st.StopCycles++
		}

		// One byte leaves the sender if allowed and remaining.
		if !senderStopped && sent < total {
			sent++
			fifo++
			if fifo > st.MaxFIFO {
				st.MaxFIFO = fifo
			}
			if fifo > cfg.FIFOBytes {
				st.Overflowed = true
				return st
			}
		}

		// Receiver drains.
		take := drain(c)
		if take > fifo {
			take = fifo
		}
		if take > 0 {
			fifo -= take
			st.Delivered += take
		}

		// Receiver updates the stop signal with hysteresis.
		prev := stopAsserted
		if fifo >= cfg.HighWater {
			stopAsserted = true
		} else if fifo <= cfg.LowWater {
			stopAsserted = false
		}
		if stopAsserted != prev {
			st.StopToggles++
		}
		stopPipe[c%int64(len(stopPipe))] = stopAsserted

		if st.Delivered >= total {
			st.Cycles++
			return st
		}
	}
	return st
}
