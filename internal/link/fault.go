package link

// Fault hooks for the wire model, used by the deterministic fault-campaign
// engine (internal/fault). The paper's duplicated communication system
// (Section 4) exists precisely so the machine survives a broken link; these
// hooks let the simulated wires break so that the failover path through the
// second network plane can be exercised and timed.
//
// Two fault classes live at wire level:
//
//   - a cut: the wire is severed at a point in simulated time and never
//     carries another byte. A circuit whose header would cross the wire at
//     or after the cut cannot form; a circuit already streaming when the
//     cut lands delivers a truncated message that the receiving link
//     interface rejects by CRC (Section 3.3).
//
//   - a corruption window: bytes crossing the wire inside the window are
//     delivered, but garbled — detected by the receive-side CRC check, not
//     by the sender.
//
// All fault state is plain data scheduled by the campaign engine from an
// explicit seeded generator; the wire itself stays deterministic.

import "powermanna/internal/sim"

// corruptWindow is one scheduled corruption interval [from, until).
type corruptWindow struct {
	from, until sim.Time
}

// wireFaults is the injected fault state of one wire.
type wireFaults struct {
	cut     sim.Time
	cutSet  bool
	corrupt []corruptWindow
}

// CutAt severs the wire from t onward. A second cut keeps the earlier
// time: once dead, always dead.
func (w *Wire) CutAt(t sim.Time) {
	if w.faults.cutSet && w.faults.cut <= t {
		return
	}
	w.faults.cut = t
	w.faults.cutSet = true
	if w.rec.Enabled() {
		w.rec.Instant(w.track, "fault", "cut", t)
	}
}

// CutTime reports when the wire was severed and whether it was cut at all.
func (w *Wire) CutTime() (sim.Time, bool) { return w.faults.cut, w.faults.cutSet }

// DeadAt reports whether the wire is already severed at time t.
func (w *Wire) DeadAt(t sim.Time) bool { return w.faults.cutSet && w.faults.cut <= t }

// CorruptBetween schedules a corruption window: bytes on the wire during
// [from, until) arrive garbled and fail the receive-side CRC check.
func (w *Wire) CorruptBetween(from, until sim.Time) {
	if until <= from {
		return
	}
	w.faults.corrupt = append(w.faults.corrupt, corruptWindow{from: from, until: until})
	if w.rec.Enabled() {
		w.rec.Span(w.track, "fault", "corrupt-window", from, until)
	}
}

// CorruptedIn reports whether any scheduled corruption window overlaps the
// occupancy interval [from, until].
func (w *Wire) CorruptedIn(from, until sim.Time) bool {
	for _, cw := range w.faults.corrupt {
		if cw.from <= until && from < cw.until {
			return true
		}
	}
	return false
}
