// Package hint implements the HINT benchmark (Gustafson & Snell, HICS'95)
// used in Figure 6 of the paper: hierarchical integration of
// ∫₀¹ (1−x)/(1+x) dx by adaptive interval refinement.
//
// HINT maintains a set of subintervals; at each step it splits the
// subinterval with the largest removable error into two halves, tightening
// the global lower and upper bounds. Quality is the reciprocal of the gap
// between the bounds; the reported metric is QUIPS — quality improvements
// per second — along the run time. Memory use grows linearly with quality,
// so the QUIPS-versus-time curve reads the memory hierarchy left to right:
// maximum processor performance while the working set is cached, sharp
// drops as it outgrows L1 and L2, and the memory-bandwidth floor at the
// right. The benchmark runs with DOUBLE (float64) or INT (fixed-point
// int64) arithmetic, the two variants of Figure 6a/6b.
//
// As everywhere in this reproduction, the functional computation is real —
// the bounds genuinely converge on 2·ln 2 − 1 — and drives the machine
// timing model access by access: a binary max-heap keyed on removable
// error supplies HINT's "more complex than consecutive" access pattern,
// and every heap and record access is classified by the node's caches.
package hint

import (
	"fmt"
	"math/bits"

	"powermanna/internal/sim"
)

// DataType selects the arithmetic variant of Figure 6.
type DataType uint8

const (
	// Double runs the float64 variant (Figure 6a).
	Double DataType = iota
	// Int runs the fixed-point int64 variant (Figure 6b).
	Int
)

// String renders the arithmetic variant as the paper spells it.
func (d DataType) String() string {
	if d == Double {
		return "DOUBLE"
	}
	return "INT"
}

// fixedOne is the fixed-point scale for the INT variant (Q32).
const fixedOne = int64(1) << 32

// Point is one sample of the QUIPS curve.
type Point struct {
	Time      sim.Time
	Intervals int
	Quality   float64
	QUIPS     float64
}

// Result is one HINT run on one machine.
type Result struct {
	Machine string
	Type    DataType
	Points  []Point
	// Lower and Upper are the final functional bounds on the integral.
	Lower, Upper float64
	// PeakQUIPS is the curve maximum (the paper's headline per machine).
	PeakQUIPS float64
}

// String summarizes the run: machine, variant, peak QUIPS and bounds.
func (r Result) String() string {
	return fmt.Sprintf("%s HINT(%s): peak %.3g QUIPS, %d samples, bounds [%.6f, %.6f]",
		r.Machine, r.Type, r.PeakQUIPS, len(r.Points), r.Lower, r.Upper)
}

// interval is one subinterval's functional record.
type interval struct {
	left, width   float64 // [left, left+width)
	fLeft, fRight float64
	err           float64 // removable error = (fLeft-fRight)*width
	// fixed-point mirrors for the INT variant
	ileft, iwidth, ifLeft, ifRight, ierr int64
}

// f is the HINT integrand, monotonically decreasing on [0,1].
func f(x float64) float64 { return (1 - x) / (1 + x) }

// fFixed is the Q32 fixed-point integrand: (ONE−x)·2³² / (ONE+x).
// x ∈ [0, ONE], so the numerator fits 33 bits and the 128-bit divide via
// bits.Div64 cannot overflow (hi < den always).
func fFixed(x int64) int64 {
	num := uint64(fixedOne - x)
	den := uint64(fixedOne + x)
	q, _ := bits.Div64(num>>32, num<<32, den)
	return int64(q)
}

// hintState is the functional benchmark state: a binary max-heap of
// intervals keyed on removable error, plus running bounds.
type hintState struct {
	heap           []interval
	lower, upper   float64
	ilower, iupper int64
}

func newHintState() *hintState {
	root := interval{left: 0, width: 1, fLeft: f(0), fRight: f(1)}
	root.err = (root.fLeft - root.fRight) * root.width
	root.ileft, root.iwidth = 0, fixedOne
	root.ifLeft, root.ifRight = fFixed(0), fFixed(fixedOne)
	root.ierr = mulFixed(root.ifLeft-root.ifRight, root.iwidth)
	s := &hintState{heap: []interval{root}}
	// Bounds from the single interval: lower = f(right)*w, upper = f(left)*w.
	s.lower = root.fRight * root.width
	s.upper = root.fLeft * root.width
	s.ilower = mulFixed(root.ifRight, root.iwidth)
	s.iupper = mulFixed(root.ifLeft, root.iwidth)
	return s
}

// mulFixed computes (a·b)·2⁻³² exactly via a 128-bit product.
func mulFixed(a, b int64) int64 {
	neg := false
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua, neg = uint64(-a), !neg
	}
	if b < 0 {
		ub, neg = uint64(-b), !neg
	}
	hi, lo := bits.Mul64(ua, ub)
	res := int64(hi<<32 | lo>>32)
	if neg {
		return -res
	}
	return res
}

// quality is the reciprocal of the bound gap.
func (s *hintState) quality() float64 {
	gap := s.upper - s.lower
	if gap <= 0 {
		return 0
	}
	return 1 / gap
}

// split pops the max-error interval and replaces it with its halves,
// updating the bounds. It returns the heap positions touched, which the
// timing driver charges. The traversal indexes are appended to touched.
func (s *hintState) split(touched []int32) []int32 {
	// Pop root.
	top := s.heap[0]
	n := len(s.heap)
	s.heap[0] = s.heap[n-1]
	s.heap = s.heap[:n-1]
	touched = append(touched, 0)
	touched = s.siftDown(0, touched)

	// Remove top's contribution to the bounds.
	s.lower -= top.fRight * top.width
	s.upper -= top.fLeft * top.width
	s.ilower -= mulFixed(top.ifRight, top.iwidth)
	s.iupper -= mulFixed(top.ifLeft, top.iwidth)

	// Split.
	halfW := top.width / 2
	mid := top.left + halfW
	fMid := f(mid)
	ihalfW := top.iwidth / 2
	imid := top.ileft + ihalfW
	ifMid := fFixed(imid)

	leftChild := interval{
		left: top.left, width: halfW, fLeft: top.fLeft, fRight: fMid,
		ileft: top.ileft, iwidth: ihalfW, ifLeft: top.ifLeft, ifRight: ifMid,
	}
	leftChild.err = (leftChild.fLeft - leftChild.fRight) * halfW
	leftChild.ierr = mulFixed(leftChild.ifLeft-leftChild.ifRight, ihalfW)
	rightChild := interval{
		left: mid, width: halfW, fLeft: fMid, fRight: top.fRight,
		ileft: imid, iwidth: ihalfW, ifLeft: ifMid, ifRight: top.ifRight,
	}
	rightChild.err = (rightChild.fLeft - rightChild.fRight) * halfW
	rightChild.ierr = mulFixed(rightChild.ifLeft-rightChild.ifRight, ihalfW)

	for _, ch := range []interval{leftChild, rightChild} {
		s.lower += ch.fRight * ch.width
		s.upper += ch.fLeft * ch.width
		s.ilower += mulFixed(ch.ifRight, ch.iwidth)
		s.iupper += mulFixed(ch.ifLeft, ch.iwidth)
		s.heap = append(s.heap, ch)
		touched = s.siftUp(len(s.heap)-1, touched)
	}
	return touched
}

func (s *hintState) siftDown(i int, touched []int32) []int32 {
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(s.heap) {
			return touched
		}
		big := l
		touched = append(touched, int32(l))
		if r < len(s.heap) {
			touched = append(touched, int32(r))
			if s.heap[r].err > s.heap[l].err {
				big = r
			}
		}
		if s.heap[big].err <= s.heap[i].err {
			return touched
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}

func (s *hintState) siftUp(i int, touched []int32) []int32 {
	for i > 0 {
		p := (i - 1) / 2
		touched = append(touched, int32(p))
		if s.heap[p].err >= s.heap[i].err {
			return touched
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
	return touched
}
