package hint

import (
	"math"
	"testing"
	"testing/quick"

	"powermanna/internal/machine"
	"powermanna/internal/node"
)

// trueIntegral is ∫₀¹ (1−x)/(1+x) dx = 2·ln2 − 1.
var trueIntegral = 2*math.Log(2) - 1

func TestDataTypeString(t *testing.T) {
	if Double.String() != "DOUBLE" || Int.String() != "INT" {
		t.Error("DataType.String wrong")
	}
}

func TestIntegrandEndpoints(t *testing.T) {
	if f(0) != 1 || f(1) != 0 {
		t.Error("f endpoints wrong")
	}
	if fFixed(0) != fixedOne {
		t.Errorf("fFixed(0) = %d, want %d", fFixed(0), fixedOne)
	}
	if fFixed(fixedOne) != 0 {
		t.Errorf("fFixed(ONE) = %d, want 0", fFixed(fixedOne))
	}
}

// Property: fFixed matches the float integrand within Q32 precision.
func TestFixedIntegrandMatchesFloat(t *testing.T) {
	fn := func(raw uint32) bool {
		x := int64(raw) << 0 // x in [0, 2^32) ⊂ [0, ONE]
		got := float64(fFixed(x)) / float64(fixedOne)
		want := f(float64(x) / float64(fixedOne))
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

// Property: mulFixed is (a·b)>>32 within one ULP, including signs.
func TestMulFixed(t *testing.T) {
	fn := func(a, b int32) bool {
		got := mulFixed(int64(a), int64(b))
		want := int64(a) * int64(b) >> 32
		return got-want <= 1 && want-got <= 1
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundsConvergeOnTrueIntegral(t *testing.T) {
	st := newHintState()
	var touched []int32
	for i := 0; i < 4000; i++ {
		touched = st.split(touched[:0])
	}
	if st.lower > trueIntegral || st.upper < trueIntegral {
		t.Errorf("bounds [%.8f, %.8f] exclude true integral %.8f", st.lower, st.upper, trueIntegral)
	}
	if gap := st.upper - st.lower; gap > 1e-3 {
		t.Errorf("gap after 4000 splits = %g, want < 1e-3", gap)
	}
	// Fixed-point bounds agree with the float bounds.
	il := float64(st.ilower) / float64(fixedOne)
	iu := float64(st.iupper) / float64(fixedOne)
	if math.Abs(il-st.lower) > 1e-4 || math.Abs(iu-st.upper) > 1e-4 {
		t.Errorf("fixed bounds [%.8f, %.8f] vs float [%.8f, %.8f]", il, iu, st.lower, st.upper)
	}
}

func TestQualityIncreasesMonotonically(t *testing.T) {
	st := newHintState()
	var touched []int32
	prev := st.quality()
	for i := 0; i < 1000; i++ {
		touched = st.split(touched[:0])
		q := st.quality()
		if q < prev-1e-9 {
			t.Fatalf("quality decreased at split %d: %g -> %g", i, prev, q)
		}
		prev = q
	}
}

// Heap invariant: the root always carries the maximum removable error.
func TestHeapInvariant(t *testing.T) {
	st := newHintState()
	var touched []int32
	for i := 0; i < 500; i++ {
		touched = st.split(touched[:0])
		for j := 1; j < len(st.heap); j++ {
			p := (j - 1) / 2
			if st.heap[p].err < st.heap[j].err {
				t.Fatalf("heap violated at %d after split %d", j, i)
			}
		}
	}
}

func TestRunProducesDecreasingTailQUIPS(t *testing.T) {
	nd := node.New(machine.PowerMANNA())
	r := Run(nd, Double, 60000)
	if len(r.Points) < 10 {
		t.Fatalf("only %d samples", len(r.Points))
	}
	if r.PeakQUIPS <= 0 {
		t.Fatal("no peak QUIPS")
	}
	// The curve must end below its peak: the working set (60000 × 64 B ≈
	// 3.8 MB) has outgrown the 2 MB L2 by the end.
	last := r.Points[len(r.Points)-1].QUIPS
	if last >= r.PeakQUIPS {
		t.Errorf("tail QUIPS %.3g not below peak %.3g (memory-hierarchy drop missing)", last, r.PeakQUIPS)
	}
	// Bounds still functional.
	if r.Lower > trueIntegral || r.Upper < trueIntegral {
		t.Errorf("bounds [%.8f, %.8f] exclude %.8f", r.Lower, r.Upper, trueIntegral)
	}
}

func TestRunDeterministic(t *testing.T) {
	nd := node.New(machine.PowerMANNA())
	a := Run(nd, Int, 5000)
	b := Run(nd, Int, 5000)
	if a.PeakQUIPS != b.PeakQUIPS || len(a.Points) != len(b.Points) {
		t.Error("non-deterministic run")
	}
}

// INT runs must also work on every Table 1 machine and produce positive
// QUIPS, with the SUN trailing on INT (the paper's Figure 6b finding).
func TestIntVariantMachineOrdering(t *testing.T) {
	peak := func(cfg node.Config) float64 {
		nd := node.New(cfg)
		return Run(nd, Int, 20000).PeakQUIPS
	}
	pm := peak(machine.PowerMANNA())
	sun := peak(machine.SunUltra())
	pc := peak(machine.PentiumII(180))
	if pm <= 0 || sun <= 0 || pc <= 0 {
		t.Fatalf("non-positive peaks: pm=%g sun=%g pc=%g", pm, sun, pc)
	}
	if sun >= pm || sun >= pc {
		t.Errorf("SUN INT peak %.3g should trail PowerMANNA %.3g and PC %.3g", sun, pm, pc)
	}
}

func TestResultString(t *testing.T) {
	nd := node.New(machine.PowerMANNA())
	r := Run(nd, Double, 1000)
	if r.String() == "" {
		t.Error("empty String")
	}
}
