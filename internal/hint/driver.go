package hint

import (
	"powermanna/internal/cpu"
	"powermanna/internal/node"
)

// recordBytes is the storage of one interval record: eight 8-byte fields
// (bounds, function values, error, padding) — exactly one PowerMANNA cache
// line, two lines on the 32-byte-line machines. HINT's designers sized the
// ratio of operations to storage near one to one; a 64-byte record per
// ~dozen operations per split keeps that property.
const recordBytes = 64

// heapBase places the interval array in simulated memory.
const heapBase = 0x2000_0000

func recordAddr(idx int32) uint64 { return heapBase + uint64(idx)*recordBytes }

// heapStepTemplate charges one heap traversal step: load a record's error
// field, compare, conditional exchange bookkeeping.
func heapStepTemplate() *cpu.Template {
	return &cpu.Template{
		Name:    "hint-heapstep",
		NumRegs: 3,
		Instrs: []cpu.Instr{
			{Class: cpu.Load, Src1: 2, Src2: -1, Dst: 0, MemSlot: 0},
			{Class: cpu.IntALU, Src1: 0, Src2: 1, Dst: 1, MemSlot: -1}, // compare
			{Class: cpu.Store, Src1: 1, Src2: -1, Dst: -1, MemSlot: 1}, // swap half
			{Class: cpu.IntALU, Src1: 2, Src2: -1, Dst: 2, MemSlot: -1},
			{Class: cpu.Branch, Src1: -1, Src2: -1, Dst: -1, MemSlot: -1},
		},
	}
}

// evalTemplateDouble charges one interval split's arithmetic in the
// DOUBLE variant: midpoint, one divide for f(mid), bound updates.
func evalTemplateDouble() *cpu.Template {
	return &cpu.Template{
		Name:    "hint-eval-double",
		NumRegs: 8,
		Instrs: []cpu.Instr{
			{Class: cpu.Load, Src1: 7, Src2: -1, Dst: 0, MemSlot: 0},   // top record
			{Class: cpu.FPAdd, Src1: 0, Src2: 1, Dst: 2, MemSlot: -1},  // mid
			{Class: cpu.FPAdd, Src1: 2, Src2: -1, Dst: 3, MemSlot: -1}, // 1-x
			{Class: cpu.FPAdd, Src1: 2, Src2: -1, Dst: 4, MemSlot: -1}, // 1+x
			{Class: cpu.FPDiv, Src1: 3, Src2: 4, Dst: 5, MemSlot: -1},  // f(mid)
			{Class: cpu.FPMul, Src1: 5, Src2: 1, Dst: 6, MemSlot: -1},  // bound contribution
			{Class: cpu.FPMul, Src1: 0, Src2: 1, Dst: 3, MemSlot: -1},
			{Class: cpu.FPAdd, Src1: 6, Src2: 3, Dst: 6, MemSlot: -1},
			{Class: cpu.FPAdd, Src1: 6, Src2: 5, Dst: 6, MemSlot: -1},
			{Class: cpu.Store, Src1: 6, Src2: -1, Dst: -1, MemSlot: 1}, // child record
			{Class: cpu.IntALU, Src1: 7, Src2: -1, Dst: 7, MemSlot: -1},
			{Class: cpu.Branch, Src1: -1, Src2: -1, Dst: -1, MemSlot: -1},
		},
	}
}

// evalTemplateInt is the fixed-point variant: the divide and multiplies
// run on the integer complex unit.
func evalTemplateInt() *cpu.Template {
	return &cpu.Template{
		Name:    "hint-eval-int",
		NumRegs: 8,
		Instrs: []cpu.Instr{
			{Class: cpu.Load, Src1: 7, Src2: -1, Dst: 0, MemSlot: 0},
			{Class: cpu.IntALU, Src1: 0, Src2: 1, Dst: 2, MemSlot: -1},
			{Class: cpu.IntALU, Src1: 2, Src2: -1, Dst: 3, MemSlot: -1},
			{Class: cpu.IntALU, Src1: 2, Src2: -1, Dst: 4, MemSlot: -1},
			{Class: cpu.IntDiv, Src1: 3, Src2: 4, Dst: 5, MemSlot: -1},
			{Class: cpu.IntMul, Src1: 5, Src2: 1, Dst: 6, MemSlot: -1},
			{Class: cpu.IntMul, Src1: 0, Src2: 1, Dst: 3, MemSlot: -1},
			{Class: cpu.IntALU, Src1: 6, Src2: 3, Dst: 6, MemSlot: -1},
			{Class: cpu.IntALU, Src1: 6, Src2: 5, Dst: 6, MemSlot: -1},
			{Class: cpu.Store, Src1: 6, Src2: -1, Dst: -1, MemSlot: 1},
			{Class: cpu.IntALU, Src1: 7, Src2: -1, Dst: 7, MemSlot: -1},
			{Class: cpu.Branch, Src1: -1, Src2: -1, Dst: -1, MemSlot: -1},
		},
	}
}

// Run executes HINT on processor 0 of a fresh node until the interval
// count reaches maxIntervals, sampling the QUIPS curve at geometrically
// spaced interval counts.
func Run(nd *node.Node, dt DataType, maxIntervals int) Result {
	nd.Reset()
	p := nd.Proc(0)
	core := p.Core()
	heapCost := cpu.NewCostModel(core, heapStepTemplate())
	var evalCost *cpu.CostModel
	if dt == Double {
		evalCost = cpu.NewCostModel(core, evalTemplateDouble())
	} else {
		evalCost = cpu.NewCostModel(core, evalTemplateInt())
	}

	st := newHintState()
	res := Result{Machine: nd.Config().Name, Type: dt}
	var touched []int32
	lat := [2]int64{0, 1}
	nextSample := 16

	for len(st.heap) < maxIntervals {
		// Functional split, collecting the heap indexes the run touched.
		touched = st.split(touched[:0])
		top := int32(0)

		// Timing: the eval/split arithmetic reads the top record and
		// appends two children sequentially.
		lat[0] = evalCost.Quantize(p.Access(recordAddr(top), false))
		childA := int32(len(st.heap) - 2)
		childB := childA + 1
		p.Access(recordAddr(childA), true)
		p.Access(recordAddr(childB), true)
		p.AdvanceCycles(evalCost.CyclesPerIter(lat[:]))

		// Timing: each touched heap slot is one traversal step.
		for _, idx := range touched {
			lat[0] = heapCost.Quantize(p.Access(recordAddr(idx), false))
			p.AdvanceCycles(heapCost.CyclesPerIter(lat[:]))
		}

		if len(st.heap) >= nextSample {
			res.Points = append(res.Points, sample(st, dt, p))
			nextSample = nextSample * 5 / 4
		}
	}
	res.Points = append(res.Points, sample(st, dt, p))
	res.Lower, res.Upper = st.lower, st.upper
	for _, pt := range res.Points {
		if pt.QUIPS > res.PeakQUIPS {
			res.PeakQUIPS = pt.QUIPS
		}
	}
	return res
}

func sample(st *hintState, dt DataType, p *node.Proc) Point {
	var q float64
	if dt == Double {
		q = st.quality()
	} else {
		gap := st.iupper - st.ilower
		if gap > 0 {
			q = float64(fixedOne) / float64(gap)
		}
	}
	t := p.Now()
	pt := Point{Time: t, Intervals: len(st.heap), Quality: q}
	if secs := t.Seconds(); secs > 0 {
		pt.QUIPS = q / secs
	}
	return pt
}
