package ni

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFIFOGeometry(t *testing.T) {
	// Section 3.3: 32 words of 64 bits = 256 bytes = 4 cache lines.
	if FIFOBytes != 256 {
		t.Errorf("FIFOBytes = %d, want 256", FIFOBytes)
	}
	l := NewLinkIF()
	if l.Send.Cap() != 256 || l.Recv.Cap() != 256 {
		t.Error("link interface FIFOs must be 256 bytes each")
	}
}

func TestQueueAccounting(t *testing.T) {
	q := NewQueue(256)
	if err := q.Push(100); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 100 || q.Space() != 156 {
		t.Errorf("len/space = %d/%d", q.Len(), q.Space())
	}
	if err := q.Push(157); err == nil {
		t.Error("overflow accepted")
	}
	if err := q.Pop(40); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 60 {
		t.Errorf("len = %d after pop", q.Len())
	}
	if err := q.Pop(61); err == nil {
		t.Error("underflow accepted")
	}
	if q.Pushed() != 100 || q.Popped() != 40 {
		t.Errorf("counters = %d/%d", q.Pushed(), q.Popped())
	}
	q.Reset()
	if q.Len() != 0 || q.Pushed() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestNewQueuePanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewQueue(0) did not panic")
		}
	}()
	NewQueue(0)
}

// Property: queue occupancy equals pushed minus popped and never exceeds
// capacity.
func TestQueueInvariantProperty(t *testing.T) {
	f := func(ops []int16) bool {
		q := NewQueue(256)
		for _, op := range ops {
			n := int(op)
			if n >= 0 {
				_ = q.Push(n % 300)
			} else {
				_ = q.Pop((-n) % 300)
			}
			if q.Len() < 0 || q.Len() > q.Cap() {
				return false
			}
			if int64(q.Len()) != q.Pushed()-q.Popped() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	route := []byte{5, 3, 9}
	payload := []byte("hello powermanna")
	frame := EncodeFrame(route, payload)
	if !bytes.HasPrefix(frame, route) {
		t.Fatal("route prefix missing")
	}
	// Crossbars consume the route bytes.
	body := frame[len(route):]
	got, err := DecodeBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %q", got)
	}
}

func TestAcceptFrameCountsCRCErrors(t *testing.T) {
	l := NewLinkIF()
	frame := EncodeFrame(nil, []byte("data"))
	if _, err := l.AcceptFrame(frame); err != nil {
		t.Fatal(err)
	}
	if l.FramesReceived() != 1 {
		t.Error("frame not counted")
	}
	frame[2] ^= 0xFF // corrupt payload
	if _, err := l.AcceptFrame(frame); err == nil {
		t.Error("corrupt frame accepted")
	}
	if l.CRCErrors() != 1 {
		t.Errorf("CRCErrors = %d, want 1", l.CRCErrors())
	}
}

func TestDecodeBodyErrors(t *testing.T) {
	if _, err := DecodeBody([]byte{1}); err == nil {
		t.Error("short body accepted")
	}
	frame := EncodeFrame(nil, []byte("abc"))
	if _, err := DecodeBody(frame[:len(frame)-1]); err == nil {
		t.Error("truncated body accepted")
	}
}

// Property: frame round trip for any payload.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(route []byte, payload []byte) bool {
		if len(route) > 8 {
			route = route[:8]
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		frame := EncodeFrame(route, payload)
		got, err := DecodeBody(frame[len(route):])
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatusWordRoundTrip(t *testing.T) {
	s, r := DecodeStatus(StatusWord(192, 64))
	if s != 192 || r != 64 {
		t.Errorf("status round trip = %d/%d", s, r)
	}
}

func TestWireBytes(t *testing.T) {
	// 1 route byte + 2 length + 8 payload + 2 CRC + 1 close = 14.
	if got := WireBytes(1, 8); got != 14 {
		t.Errorf("WireBytes(1,8) = %d, want 14", got)
	}
}

func TestNIReset(t *testing.T) {
	n := New()
	if len(n.Links) != 2 {
		t.Fatal("node NI must have two link interfaces (duplicated network)")
	}
	if err := n.Links[0].Send.Push(10); err != nil {
		t.Fatal(err)
	}
	n.Reset()
	if n.Links[0].Send.Len() != 0 {
		t.Error("Reset incomplete")
	}
}
