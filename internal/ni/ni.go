// Package ni models the PowerMANNA network interface (Section 3.3 of the
// paper): deliberately not a network interface controller. Instead of an
// embedded processor with DMA, the interface ASIC holds, per link and per
// direction, a FIFO of 32 64-bit words that decouples the CPU/memory bus
// from the link, plus memory-mapped control registers; the node CPUs
// provide "all the functionality of a powerful NIC by directly accessing
// the link interface" with program-controlled I/O. The ASIC also
// generates and checks a CRC per message.
//
// Each PowerMANNA node carries two such link interfaces — one per network
// plane of the duplicated communication system.
//
// The 32×64-bit FIFO is exactly four 64-byte cache lines. That number is
// load-bearing: Section 5.2 traces the disappointing bidirectional
// bandwidth (Figure 12) to the driver having to turn around between
// filling at most four lines of the send FIFO and draining at most four
// lines of the receive FIFO.
package ni

import (
	"encoding/binary"
	"fmt"

	"powermanna/internal/link"
	"powermanna/internal/sim"
)

// Default geometry from Section 3.3.
const (
	// FIFOWords is the per-direction FIFO depth in 64-bit words.
	FIFOWords = 32
	// WordBytes is the FIFO word size.
	WordBytes = 8
	// FIFOBytes is the per-direction capacity: four 64-byte cache lines.
	FIFOBytes = FIFOWords * WordBytes
	// LinksPerNode is the number of link interfaces on a node.
	LinksPerNode = 2
)

// Queue is a byte-counted FIFO with fixed capacity. The bandwidth
// simulations track occupancy only; functional payloads travel in Frames.
type Queue struct {
	capBytes       int
	used           int
	pushed, popped int64
}

// NewQueue builds a queue of the given capacity.
func NewQueue(capBytes int) *Queue {
	if capBytes <= 0 {
		panic(fmt.Sprintf("ni: queue capacity %d", capBytes))
	}
	return &Queue{capBytes: capBytes}
}

// Cap reports the capacity in bytes.
func (q *Queue) Cap() int { return q.capBytes }

// Len reports current occupancy in bytes.
func (q *Queue) Len() int { return q.used }

// Space reports free bytes.
func (q *Queue) Space() int { return q.capBytes - q.used }

// Push adds n bytes; it returns an error on overflow — the hardware's
// stop-signal flow control makes overflow impossible, so hitting this in
// simulation means a model bug.
func (q *Queue) Push(n int) error {
	if n < 0 || n > q.Space() {
		return fmt.Errorf("ni: push %d into %d free bytes", n, q.Space())
	}
	q.used += n
	q.pushed += int64(n)
	return nil
}

// Pop removes n bytes; errors on underflow.
func (q *Queue) Pop(n int) error {
	if n < 0 || n > q.used {
		return fmt.Errorf("ni: pop %d of %d bytes", n, q.used)
	}
	q.used -= n
	q.popped += int64(n)
	return nil
}

// Pushed reports the cumulative words enqueued.
func (q *Queue) Pushed() int64 { return q.pushed }

// Popped reports the cumulative words dequeued.
func (q *Queue) Popped() int64 { return q.popped }

// Reset empties the queue and clears counters.
func (q *Queue) Reset() { q.used, q.pushed, q.popped = 0, 0, 0 }

// stallWindow is one injected interval [from, until) during which the
// link interface accepts no new sends (internal/fault's NI-stall fault).
type stallWindow struct {
	from, until sim.Time
}

// LinkIF is one link interface: a send and a receive FIFO. Sending and
// receiving operate simultaneously (Section 3.3).
type LinkIF struct {
	Send, Recv *Queue
	crcErrors  int64
	received   int64
	stalls     []stallWindow
}

// NewLinkIF builds a link interface with the default FIFO geometry.
func NewLinkIF() *LinkIF {
	return &LinkIF{Send: NewQueue(FIFOBytes), Recv: NewQueue(FIFOBytes)}
}

// CRCErrors reports how many received frames failed the check.
func (l *LinkIF) CRCErrors() int64 { return l.crcErrors }

// FramesReceived reports delivered frames.
func (l *LinkIF) FramesReceived() int64 { return l.received }

// AcceptFrame runs the receive-side CRC check on a decoded frame,
// returning the payload. Corrupt frames are counted and rejected.
func (l *LinkIF) AcceptFrame(body []byte) ([]byte, error) {
	payload, err := DecodeBody(body)
	if err != nil {
		l.crcErrors++
		return nil, err
	}
	l.received++
	return payload, nil
}

// RecordCRCError counts a receive-side CRC failure observed on the
// timing-level path (internal/netsim), where messages carry sizes rather
// than functional bytes; the functional path counts through AcceptFrame.
func (l *LinkIF) RecordCRCError() { l.crcErrors++ }

// RecordFrame counts a message delivered intact on the timing-level path,
// mirroring what AcceptFrame does for functional frames.
func (l *LinkIF) RecordFrame() { l.received++ }

// Stall injects a fault window [from, until) during which the interface
// accepts no new sends — a wedged interface ASIC or a driver that stopped
// draining the send FIFO. Sends presented inside the window are deferred
// to the window's end; the fault-aware send path fails over to the other
// plane when the deferral exceeds its patience.
func (l *LinkIF) Stall(from, until sim.Time) {
	if until <= from {
		return
	}
	l.stalls = append(l.stalls, stallWindow{from: from, until: until})
}

// ReadyAt reports when a send presented at `at` can actually enter the
// interface, deferring past every stall window covering that instant.
func (l *LinkIF) ReadyAt(at sim.Time) sim.Time {
	// Windows may abut or nest; iterate to a fixpoint. The list is tiny
	// (faults per campaign, not per message).
	for moved := true; moved; {
		moved = false
		for _, w := range l.stalls {
			if w.from <= at && at < w.until {
				at = w.until
				moved = true
			}
		}
	}
	return at
}

// Reset clears FIFOs, counters and injected stall windows.
func (l *LinkIF) Reset() {
	l.Send.Reset()
	l.Recv.Reset()
	l.crcErrors, l.received = 0, 0
	l.stalls = nil
}

// NI is a node's full network interface: two link interfaces, one per
// network plane.
type NI struct {
	Links [LinksPerNode]*LinkIF
}

// New builds a node NI.
func New() *NI {
	n := &NI{}
	for i := range n.Links {
		n.Links[i] = NewLinkIF()
	}
	return n
}

// Reset clears both link interfaces.
func (n *NI) Reset() {
	for _, l := range n.Links {
		l.Reset()
	}
}

// StatusWord encodes the memory-mapped status register a polling CPU
// reads: send-FIFO free bytes in the low half, receive-FIFO available
// bytes in the high half.
func StatusWord(sendSpace, recvAvail int) uint64 {
	return uint64(uint32(sendSpace)) | uint64(uint32(recvAvail))<<32
}

// DecodeStatus splits a status word.
func DecodeStatus(w uint64) (sendSpace, recvAvail int) {
	return int(uint32(w)), int(uint32(w >> 32))
}

// Frame layout after the route bytes (which the crossbars consume):
// 2-byte big-endian payload length, payload, 2-byte CRC-16 over the
// payload. The route prefix varies per path; WireBytes accounts for it.
const frameOverhead = 4 // length + CRC

// EncodeFrame builds the on-wire message: route prefix, length, payload,
// CRC. The CRC is the real link checksum over the payload.
func EncodeFrame(route, payload []byte) []byte {
	out := make([]byte, 0, len(route)+2+len(payload)+2)
	out = append(out, route...)
	var lenB [2]byte
	binary.BigEndian.PutUint16(lenB[:], uint16(len(payload)))
	out = append(out, lenB[:]...)
	out = append(out, payload...)
	var crcB [2]byte
	binary.BigEndian.PutUint16(crcB[:], link.CRC16(payload))
	return append(out, crcB[:]...)
}

// DecodeBody parses a frame body (after the crossbars consumed the route
// bytes) and verifies the CRC.
func DecodeBody(body []byte) ([]byte, error) {
	if len(body) < frameOverhead {
		return nil, fmt.Errorf("ni: frame body %d bytes too short", len(body))
	}
	n := int(binary.BigEndian.Uint16(body[:2]))
	if len(body) != frameOverhead+n {
		return nil, fmt.Errorf("ni: frame body %d bytes, want %d", len(body), frameOverhead+n)
	}
	payload := body[2 : 2+n]
	want := binary.BigEndian.Uint16(body[2+n:])
	if !link.CheckCRC16(payload, want) {
		return nil, fmt.Errorf("ni: CRC mismatch")
	}
	return payload, nil
}

// WireBytes reports the total on-wire length of a message with the given
// route prefix and payload sizes, including the close command byte that
// tears the circuit down.
func WireBytes(routeLen, payloadLen int) int {
	return routeLen + frameOverhead + payloadLen + 1
}
