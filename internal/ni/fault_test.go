package ni

import (
	"testing"

	"powermanna/internal/sim"
)

func TestStallDefersSends(t *testing.T) {
	l := NewLinkIF()
	l.Stall(10*sim.Microsecond, 20*sim.Microsecond)
	if got := l.ReadyAt(5 * sim.Microsecond); got != 5*sim.Microsecond {
		t.Errorf("ReadyAt before window = %v, want unchanged", got)
	}
	if got := l.ReadyAt(10 * sim.Microsecond); got != 20*sim.Microsecond {
		t.Errorf("ReadyAt at window start = %v, want window end", got)
	}
	if got := l.ReadyAt(20 * sim.Microsecond); got != 20*sim.Microsecond {
		t.Errorf("ReadyAt at window end = %v, want unchanged (half-open)", got)
	}
}

func TestStallAbuttingWindowsChain(t *testing.T) {
	l := NewLinkIF()
	// Deliberately out of order: ReadyAt must chain across both.
	l.Stall(20*sim.Microsecond, 30*sim.Microsecond)
	l.Stall(10*sim.Microsecond, 20*sim.Microsecond)
	if got := l.ReadyAt(15 * sim.Microsecond); got != 30*sim.Microsecond {
		t.Errorf("ReadyAt = %v, want 30us across abutting windows", got)
	}
}

func TestTimingLevelCounters(t *testing.T) {
	l := NewLinkIF()
	l.RecordFrame()
	l.RecordCRCError()
	l.RecordCRCError()
	if l.FramesReceived() != 1 || l.CRCErrors() != 2 {
		t.Errorf("counters = %d frames, %d crc errors; want 1, 2",
			l.FramesReceived(), l.CRCErrors())
	}
	l.Reset()
	if l.ReadyAt(0) != 0 || l.CRCErrors() != 0 || l.FramesReceived() != 0 {
		t.Error("Reset incomplete")
	}
	l.Stall(0, 1*sim.Microsecond)
	l.Reset()
	if l.ReadyAt(0) != 0 {
		t.Error("Reset kept stall windows")
	}
}
