// Package trace is the deterministic event recorder behind cmd/pmtrace:
// a per-run timeline of typed events — spans and instants — keyed
// exclusively on simulated time. The paper's architectural arguments are
// timeline arguments (wormhole setup versus teardown, plane contention
// under failover, dispatcher occupancy, the 12 µs detection window), and
// aggregate counters cannot show *where* such a window goes; a trace can.
//
// Three properties are contractual:
//
//   - Determinism. Events carry sim.Time only, never wall clocks, and the
//     exporters (chrome.go, profile.go) emit bytes in insertion or
//     explicitly sorted order — two runs with the same seed produce
//     byte-identical output. pmlint's determinism analyzer enforces the
//     wall-clock ban mechanically.
//
//   - Zero overhead when off. Every Recorder method no-ops on a nil
//     receiver, so instrumented hot paths pay one nil check per event
//     site and allocate nothing. Call sites that build event labels guard
//     with Enabled() first, so label formatting is also skipped.
//
//   - Stable track identity. A TrackID is a pure function of topology
//     coordinates (node, CPU, plane, crossbar port, directed wire,
//     dispatcher unit), not of event order, so traces from different runs
//     and seeds line up track for track.
package trace

import "powermanna/internal/sim"

// TrackID identifies one resource timeline. The class (node, CPU, plane,
// crossbar port, wire, dispatcher, OS stream) lives in the high bits and
// an index derived from topology coordinates in the low bits; the Chrome
// exporter maps class to pid and index to tid.
type TrackID int64

// Track classes, the pid axis of the exported trace.
const (
	// ClassNode groups per-node message timelines.
	ClassNode = 1 + iota
	// ClassCPU groups per-CPU timelines: EU and SU of the dual-CPU node.
	ClassCPU
	// ClassPlane groups per-network-plane timelines.
	ClassPlane
	// ClassXbarPort groups crossbar output-channel timelines.
	ClassXbarPort
	// ClassWire groups directed-wire occupancy timelines.
	ClassWire
	// ClassDispatch groups dispatcher address/data-path timelines.
	ClassDispatch
	// ClassOS is the background operating-system stream's timeline.
	ClassOS
)

const (
	// classShift positions the class above any realistic index.
	classShift = 32
	// portStride spaces per-device port indices; it exceeds the 16-port
	// crossbar radix so (device, port) packs without collision.
	portStride = 32
	// CPUsPerNode indexes the dual-CPU node's EU (0) and SU (1).
	CPUsPerNode = 2
	// wireDirs counts the two directions of a bidirectional link.
	wireDirs = 2
)

func tid(class, index int) TrackID {
	return TrackID(int64(class)<<classShift | int64(index))
}

// Class reports the track's class (ClassNode, ClassCPU, ...).
func (t TrackID) Class() int { return int(int64(t) >> classShift) }

// Index reports the track's index within its class.
func (t TrackID) Index() int { return int(int64(t) & (1<<classShift - 1)) }

// NodeTrack is the message timeline of one node.
func NodeTrack(node int) TrackID { return tid(ClassNode, node) }

// CPUTrack is one CPU of a node: cpu 0 is the Execution Unit, cpu 1 the
// Synchronization Unit of the EARTH split.
func CPUTrack(node, cpu int) TrackID { return tid(ClassCPU, node*CPUsPerNode+cpu) }

// PlaneTrack is one network plane of the duplicated interconnect.
func PlaneTrack(plane int) TrackID { return tid(ClassPlane, plane) }

// XbarPortTrack is one output channel of one crossbar.
func XbarPortTrack(xbar, out int) TrackID {
	return tid(ClassXbarPort, xbar*portStride+out)
}

// WireTrack is one direction of the wire at (dev, port); dir follows
// netsim's convention (0 = out of the port, 1 = into it).
func WireTrack(dev, port, dir int) TrackID {
	return tid(ClassWire, (dev*portStride+port)*wireDirs+dir)
}

// DispatchTrack is one dispatcher unit: 0 is the serialized address/snoop
// path, 1+m the point-to-point data path of master m.
func DispatchTrack(unit int) TrackID { return tid(ClassDispatch, unit) }

// OSTrack is the background OS stream's timeline.
func OSTrack() TrackID { return tid(ClassOS, 0) }

// EventKind distinguishes spans from instants.
type EventKind uint8

// The event kinds.
const (
	// SpanEvent covers an interval [Start, End].
	SpanEvent EventKind = iota
	// InstantEvent marks a single point (Start == End).
	InstantEvent
)

// Event is one recorded trace event. Name is the aggregation key of the
// text profile (keep it a small closed vocabulary); per-event detail goes
// in Arg.
type Event struct {
	// Track is the timeline the event belongs to.
	Track TrackID
	// Kind is SpanEvent or InstantEvent.
	Kind EventKind
	// Start and End bound the event in simulated time (End == Start for
	// instants).
	Start, End sim.Time
	// Cat names the emitting subsystem ("netsim", "link", "xbar",
	// "failover", "dispatch", "earth", "os").
	Cat string
	// Name is the event label, shared across events of one shape.
	Name string
	// Arg is optional per-event detail ("" for none).
	Arg string
}

// Recorder accumulates events for one run. The zero value of *Recorder —
// nil — is the "tracing off" state: every method no-ops, costing the
// caller one nil check. Recorders are not safe for concurrent use, which
// is moot in the single-threaded simulation core (pmlint bans goroutines
// there anyway).
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty, enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether events are being recorded; callers use it to
// skip label formatting when tracing is off. Safe on a nil receiver.
func (r *Recorder) Enabled() bool { return r != nil }

// Span records an interval event on a track. End is clamped to Start so
// a defensively-inverted window cannot corrupt the timeline. No-op when
// the recorder is nil.
func (r *Recorder) Span(track TrackID, cat, name string, start, end sim.Time) {
	if r == nil {
		return
	}
	if end < start {
		end = start
	}
	r.events = append(r.events, Event{Track: track, Kind: SpanEvent, Start: start, End: end, Cat: cat, Name: name})
}

// SpanArg is Span with per-event detail. No-op when the recorder is nil.
func (r *Recorder) SpanArg(track TrackID, cat, name string, start, end sim.Time, arg string) {
	if r == nil {
		return
	}
	if end < start {
		end = start
	}
	r.events = append(r.events, Event{Track: track, Kind: SpanEvent, Start: start, End: end, Cat: cat, Name: name, Arg: arg})
}

// Instant records a point event on a track. No-op when the recorder is
// nil.
func (r *Recorder) Instant(track TrackID, cat, name string, at sim.Time) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Track: track, Kind: InstantEvent, Start: at, End: at, Cat: cat, Name: name})
}

// InstantArg is Instant with per-event detail. No-op when the recorder is
// nil.
func (r *Recorder) InstantArg(track TrackID, cat, name string, at sim.Time, arg string) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{Track: track, Kind: InstantEvent, Start: at, End: at, Cat: cat, Name: name, Arg: arg})
}

// Len reports the recorded event count (0 on a nil recorder).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Events returns a defensive copy of the recorded events in insertion
// order, so analyzers (utilization windows, critical-path extraction,
// diff alignment) can sort and slice freely without perturbing the
// recorder's canonical order. Insertion order is deterministic because
// the simulation core is single-threaded and seeded. Nil (not an empty
// slice) when nothing is recorded.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.events) == 0 {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset drops all recorded events, keeping capacity. No-op when nil.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
}
