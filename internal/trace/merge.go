// Canonical recorder merging for partitioned runs. A node-partitioned
// simulation (internal/netsim over internal/psim) records each shard's
// events into its own recorder — appending to one recorder from
// concurrent shard workers would race and would order events by
// goroutine timing. Merge fans the per-shard timelines back into one
// recorder under a total order that is a pure function of the events
// themselves, so a sequential run and any sharded run of the same model
// produce byte-identical merged timelines.
package trace

import "sort"

// Merge appends every event of the source recorders into dst in the
// canonical order: ascending (Start, End, Track, Kind, Cat, Name, Arg).
// The key covers every event field, so any two distinct events order
// deterministically and identical duplicates are interchangeable. Nil
// recorders (tracing off) contribute nothing; a nil dst no-ops.
func Merge(dst *Recorder, srcs ...*Recorder) {
	if dst == nil {
		return
	}
	var all []Event
	for _, s := range srcs {
		if s == nil {
			continue
		}
		all = append(all, s.events...)
	}
	sort.SliceStable(all, func(i, j int) bool { return eventLess(all[i], all[j]) })
	dst.events = append(dst.events, all...)
}

// eventLess is the canonical total order over events.
func eventLess(a, b Event) bool {
	switch {
	case a.Start != b.Start:
		return a.Start < b.Start
	case a.End != b.End:
		return a.End < b.End
	case a.Track != b.Track:
		return a.Track < b.Track
	case a.Kind != b.Kind:
		return a.Kind < b.Kind
	case a.Cat != b.Cat:
		return a.Cat < b.Cat
	case a.Name != b.Name:
		return a.Name < b.Name
	default:
		return a.Arg < b.Arg
	}
}
