// Plain-text profile export: the recorded spans aggregated per track and
// name into total and self time, rendered as a fixed-width table — the
// "where did the time go" view for a terminal, complementing the Chrome
// timeline. Self time subtracts the durations of spans strictly nested
// inside a span on the same track (flame-graph accounting), so a "msg"
// span's self time excludes its "setup" child.

package trace

import (
	"fmt"
	"io"
	"sort"

	"powermanna/internal/sim"
	"powermanna/internal/stats"
)

// DefaultProfileTopN bounds the per-track rows of the text profile.
const DefaultProfileTopN = 5

// profLine is one (track, name) aggregate of the profile.
type profLine struct {
	track       TrackID
	name        string
	count       int
	total, self sim.Time
}

// WriteProfile writes a per-track top-N profile of the recorder's spans:
// for every track, the topN span names by total time, with count, total,
// self and mean columns. topN <= 0 selects DefaultProfileTopN. Output is
// a pure function of the recorded events.
func WriteProfile(w io.Writer, r *Recorder, topN int) error {
	if topN <= 0 {
		topN = DefaultProfileTopN
	}
	events := r.Events()

	// Group span indices per track, keeping insertion order.
	byTrack := map[TrackID][]int{}
	spans, instants := 0, 0
	for i, e := range events {
		if e.Kind != SpanEvent {
			instants++
			continue
		}
		spans++
		byTrack[e.Track] = append(byTrack[e.Track], i)
	}
	tracks := make([]TrackID, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })

	tbl := &stats.Table{
		Title:   fmt.Sprintf("trace profile — top %d span names per track (%d spans, %d instants)", topN, spans, instants),
		Columns: []string{"track", "name", "count", "total-us", "self-us", "mean-us"},
	}
	for _, t := range tracks {
		for _, ln := range topLines(events, byTrack[t], topN) {
			tbl.AddRow(
				ln.track.Name(),
				ln.name,
				fmt.Sprintf("%d", ln.count),
				fmt.Sprintf("%.3f", ln.total.Micros()),
				fmt.Sprintf("%.3f", ln.self.Micros()),
				fmt.Sprintf("%.3f", (ln.total/sim.Time(ln.count)).Micros()),
			)
		}
	}
	_, err := io.WriteString(w, tbl.Render())
	return err
}

// topLines aggregates one track's spans by name with flame-graph self
// time, returning the topN lines by total time (ties broken by name).
func topLines(events []Event, idxs []int, topN int) []profLine {
	// Sort spans by (start asc, end desc, insertion asc): a parent sorts
	// before the spans it contains, so a stack walk finds nesting.
	sorted := make([]int, len(idxs))
	copy(sorted, idxs)
	sort.SliceStable(sorted, func(a, b int) bool {
		ea, eb := events[sorted[a]], events[sorted[b]]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		return ea.End > eb.End
	})

	self := map[int]sim.Time{}
	var stack []int
	for _, i := range sorted {
		e := events[i]
		for len(stack) > 0 && events[stack[len(stack)-1]].End <= e.Start {
			stack = stack[:len(stack)-1]
		}
		self[i] = e.End - e.Start
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			if e.End <= events[p].End {
				// Strictly nested: the child's time is not the parent's own.
				self[p] -= e.End - e.Start
			}
		}
		stack = append(stack, i)
	}

	agg := map[string]*profLine{}
	var names []string
	for _, i := range idxs {
		e := events[i]
		ln, ok := agg[e.Name]
		if !ok {
			ln = &profLine{track: e.Track, name: e.Name}
			agg[e.Name] = ln
			names = append(names, e.Name)
		}
		ln.count++
		ln.total += e.End - e.Start
		ln.self += self[i]
	}
	lines := make([]profLine, 0, len(names))
	for _, n := range names {
		lines = append(lines, *agg[n])
	}
	sort.SliceStable(lines, func(a, b int) bool {
		if lines[a].total != lines[b].total {
			return lines[a].total > lines[b].total
		}
		return lines[a].name < lines[b].name
	})
	if len(lines) > topN {
		lines = lines[:topN]
	}
	return lines
}
