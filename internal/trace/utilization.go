// Utilization export: each track's busy fraction over fixed-size
// windows of simulated time — the "which resource saturated, and when"
// view the paper argues from (link occupancy under the OS stream,
// dispatcher occupancy under mixed masters, plane load under failover).
// A track's busy time in a window is the union of its span intervals
// clipped to the window, so nested spans (a "setup" inside its "msg")
// and overlapping circuit holds never double-count.

package trace

import (
	"fmt"
	"io"
	"sort"

	"powermanna/internal/sim"
	"powermanna/internal/stats"
)

// UtilizationWindows caps the auto-sized window count: with no explicit
// window the horizon is split into this many equal windows (rounded up
// to a whole microsecond so the grid stays human-readable).
const UtilizationWindows = 16

// TrackUtil is one track's busy-time series.
type TrackUtil struct {
	// Track is the timeline measured.
	Track TrackID
	// Busy is the union busy time over the whole horizon.
	Busy sim.Time
	// Windows holds the busy time inside each fixed window, in window
	// order; every TrackUtil of one Utilization has the same length.
	Windows []sim.Time
}

// Utilization is the per-track busy-fraction series of one recording.
type Utilization struct {
	// Window is the fixed window size the horizon was cut into.
	Window sim.Time
	// Horizon is the end of the measured range (the latest span end).
	Horizon sim.Time
	// Tracks lists every track with at least one span, sorted by TrackID
	// — class-major, so tracks of one class are contiguous.
	Tracks []TrackUtil
}

// Utilize computes the busy-fraction series of every track with spans.
// window <= 0 auto-sizes to Horizon/UtilizationWindows rounded up to a
// whole microsecond. The result is a pure function of the recorded
// events.
func Utilize(r *Recorder, window sim.Time) *Utilization {
	events := r.Events()
	byTrack := map[TrackID][]interval{}
	var horizon sim.Time
	for _, e := range events {
		if e.Kind != SpanEvent {
			continue
		}
		byTrack[e.Track] = append(byTrack[e.Track], interval{e.Start, e.End})
		if e.End > horizon {
			horizon = e.End
		}
	}
	if window <= 0 {
		window = horizon / UtilizationWindows
		window = (window/sim.Microsecond + 1) * sim.Microsecond
	}
	windows := 0
	if horizon > 0 {
		windows = int((horizon + window - 1) / window)
	}

	u := &Utilization{Window: window, Horizon: horizon}
	tracks := make([]TrackID, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	for _, t := range tracks {
		merged := mergeIntervals(byTrack[t])
		tu := TrackUtil{Track: t, Windows: make([]sim.Time, windows)}
		for _, iv := range merged {
			tu.Busy += iv.end - iv.start
			for w := int(iv.start / window); w < windows; w++ {
				ws, we := sim.Time(w)*window, sim.Time(w+1)*window
				if ws >= iv.end {
					break
				}
				tu.Windows[w] += sim.Min(we, iv.end) - sim.Max(ws, iv.start)
			}
		}
		u.Tracks = append(u.Tracks, tu)
	}
	return u
}

// interval is one half-open-ish busy range [start, end].
type interval struct {
	start, end sim.Time
}

// mergeIntervals unions possibly nested or overlapping intervals into a
// disjoint ascending list. Zero-length intervals contribute nothing.
func mergeIntervals(ivs []interval) []interval {
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].end < ivs[j].end
	})
	merged := ivs[:0]
	for _, iv := range ivs {
		if iv.end <= iv.start {
			continue
		}
		if n := len(merged); n > 0 && iv.start <= merged[n-1].end {
			if iv.end > merged[n-1].end {
				merged[n-1].end = iv.end
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// BusyFraction reports a track's whole-horizon busy fraction in percent.
func (u *Utilization) BusyFraction(tu TrackUtil) float64 {
	if u.Horizon <= 0 {
		return 0
	}
	return 100 * float64(tu.Busy) / float64(u.Horizon)
}

// WriteUtilization writes the per-track utilization series as a
// fixed-width table: one aggregate row per track class, then one row per
// track, with the whole-run busy percentage and one column per window.
// window <= 0 auto-sizes (see Utilize). Output is a pure function of the
// recorded events.
func WriteUtilization(w io.Writer, r *Recorder, window sim.Time) error {
	u := Utilize(r, window)
	windows := 0
	if len(u.Tracks) > 0 {
		windows = len(u.Tracks[0].Windows)
	}
	cols := []string{"track", "busy%"}
	for i := 0; i < windows; i++ {
		cols = append(cols, fmt.Sprintf("w%d", i))
	}
	tbl := &stats.Table{
		Title: fmt.Sprintf("utilization — %d tracks, horizon %s, window %s (busy%% per window)",
			len(u.Tracks), u.Horizon, u.Window),
		Columns: cols,
	}
	pct := func(busy, span sim.Time) string {
		if span <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", 100*float64(busy)/float64(span))
	}
	flush := func(class int, tus []TrackUtil) {
		if len(tus) == 0 {
			return
		}
		// Class aggregate: mean busy fraction over the class's tracks.
		agg := make([]string, 0, 2+windows)
		agg = append(agg, fmt.Sprintf("[%s x%d]", classNames[class], len(tus)))
		var busy sim.Time
		winBusy := make([]sim.Time, windows)
		for _, tu := range tus {
			busy += tu.Busy
			for i, b := range tu.Windows {
				winBusy[i] += b
			}
		}
		n := sim.Time(len(tus))
		agg = append(agg, pct(busy, u.Horizon*n))
		for i := 0; i < windows; i++ {
			agg = append(agg, pct(winBusy[i], u.windowSpan(i)*n))
		}
		tbl.AddRow(agg...)
		for _, tu := range tus {
			row := make([]string, 0, 2+windows)
			row = append(row, tu.Track.Name(), pct(tu.Busy, u.Horizon))
			for i, b := range tu.Windows {
				row = append(row, pct(b, u.windowSpan(i)))
			}
			tbl.AddRow(row...)
		}
	}
	var pending []TrackUtil
	for _, tu := range u.Tracks {
		if len(pending) > 0 && pending[0].Track.Class() != tu.Track.Class() {
			flush(pending[0].Track.Class(), pending)
			pending = pending[:0]
		}
		pending = append(pending, tu)
	}
	if len(pending) > 0 {
		flush(pending[0].Track.Class(), pending)
	}
	_, err := io.WriteString(w, tbl.Render())
	return err
}

// windowSpan is window i's covered span: full windows everywhere except
// the last, which the horizon may truncate.
func (u *Utilization) windowSpan(i int) sim.Time {
	ws := sim.Time(i) * u.Window
	return sim.Min(u.Horizon, ws+u.Window) - ws
}
