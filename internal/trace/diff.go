// Timeline diff: two runs' recordings aligned event by event, the "what
// changed between these seeds" view. Alignment is structural, not
// positional: events are grouped by (track, cat, name) shape — so a
// "msg" span on node 4's track only ever pairs with another "msg" span
// on node 4's track, even when unrelated traffic reordered the global
// event stream — and within a shape the two runs' occurrence sequences
// are paired by a minimum-cost edit distance. Pairing two occurrences
// with identical timing is free, pairing ones that moved costs more
// than it saves over dropping one of them, and leaving an occurrence
// unpaired costs a gap; ties prefer pairing. The effect: an event
// missing early in one run costs exactly one gap and the tail still
// pairs exactly, where the old per-shape ordinal alignment cascaded
// one dropped message into a tail of spurious shifts. Paired events
// that moved or changed length are reported as shifted; unpaired
// events as added or removed; and a per-track utilization table shows
// where busy time migrated.

package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"powermanna/internal/sim"
	"powermanna/internal/stats"
)

// DiffMaxRows bounds each listed section of the diff report (shifted,
// added, removed, utilization deltas); the summary always carries the
// full counts, so truncation is visible, never silent.
const DiffMaxRows = 20

// diffKey aligns one event across runs.
type diffKey struct {
	track   TrackID
	cat     string
	name    string
	ordinal int
}

// String renders the key for report rows.
func (k diffKey) String() string {
	return fmt.Sprintf("%s %s/%s #%d", k.track.Name(), k.cat, k.name, k.ordinal+1)
}

// Shift is one aligned event pair whose timing differs between runs.
type Shift struct {
	// Key identifies the aligned pair.
	Key diffKey
	// StartDelta and DurDelta are B minus A.
	StartDelta, DurDelta sim.Time
}

// UtilDelta is one track's busy-fraction change between runs, each
// fraction measured against its own run's horizon.
type UtilDelta struct {
	// Track is the timeline compared.
	Track TrackID
	// A and B are the busy percentages in each run.
	A, B float64
}

// Diff is the aligned comparison of two recordings.
type Diff struct {
	// EventsA and EventsB are the runs' event counts.
	EventsA, EventsB int
	// MakespanA and MakespanB are the runs' last span ends.
	MakespanA, MakespanB sim.Time
	// Matched counts aligned pairs with identical timing; Shifts the
	// pairs that moved, sorted by |start delta| descending.
	Matched int
	Shifts  []Shift
	// Removed lists keys present only in A, Added only in B, both in
	// deterministic key order.
	Removed, Added []diffKey
	// UtilDeltas lists tracks whose busy fraction changed, sorted by
	// |delta| descending.
	UtilDeltas []UtilDelta
}

// Identical reports whether the runs' timelines aligned with no shifted,
// added or removed events.
func (d *Diff) Identical() bool {
	return len(d.Shifts) == 0 && len(d.Added) == 0 && len(d.Removed) == 0
}

// shapeKey is the (track, cat, name) identity events align within.
type shapeKey struct {
	track TrackID
	cat   string
	name  string
}

// occurrence is one event of a shape: its timing plus its position in
// the run's global stream (for deterministic tie-breaking) and its
// ordinal within the shape (for report keys).
type occurrence struct {
	start, dur sim.Time
	global     int
	ordinal    int
}

// groupByShape indexes a recording's events by shape in insertion
// order; shapes lists each shape once, in first-occurrence order.
func groupByShape(r *Recorder) (map[shapeKey][]occurrence, []shapeKey) {
	groups := map[shapeKey][]occurrence{}
	var shapes []shapeKey
	for i, e := range r.Events() {
		k := shapeKey{track: e.Track, cat: e.Cat, name: e.Name}
		occ := occurrence{start: e.Start, dur: e.End - e.Start, global: i}
		if prev, ok := groups[k]; ok {
			occ.ordinal = len(prev)
		} else {
			shapes = append(shapes, k)
		}
		groups[k] = append(groups[k], occ)
	}
	return groups, shapes
}

// Edit-distance costs for aligning one shape's occurrence sequences.
// The ratios encode the report's preferences: exact pairs are free; a
// moved pair (cost 2) beats dropping and re-adding it (two gaps, cost
// 2, lost on the tie to pairing) but loses to one gap plus an exact
// tail — which is what stops a single dropped event from cascading.
const (
	alignShiftCost = 2
	alignGapCost   = 1
)

// alignShape pairs run A's and run B's occurrences of one shape by
// minimum edit cost, calling matched for each pair and gapA/gapB for
// occurrences only one run has. Needleman-Wunsch over the two
// sequences; on equal cost the backtrack prefers pairing, then the gap
// in A — a fixed rule, so the alignment is a pure function of the two
// sequences.
func alignShape(as, bs []occurrence, matched func(a, b occurrence), gapA, gapB func(occurrence)) {
	n, m := len(as), len(bs)
	// dp[i][j] is the cheapest alignment of as[i:] with bs[j:].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for j := m - 1; j >= 0; j-- {
		dp[n][j] = (m - j) * alignGapCost
	}
	for i := n - 1; i >= 0; i-- {
		dp[i][m] = (n - i) * alignGapCost
		for j := m - 1; j >= 0; j-- {
			pair := dp[i+1][j+1]
			if as[i].start != bs[j].start || as[i].dur != bs[j].dur {
				pair += alignShiftCost
			}
			best := pair
			if c := alignGapCost + dp[i+1][j]; c < best {
				best = c
			}
			if c := alignGapCost + dp[i][j+1]; c < best {
				best = c
			}
			dp[i][j] = best
		}
	}
	i, j := 0, 0
	for i < n || j < m {
		switch {
		case i < n && j < m && func() bool {
			pair := dp[i+1][j+1]
			if as[i].start != bs[j].start || as[i].dur != bs[j].dur {
				pair += alignShiftCost
			}
			return dp[i][j] == pair
		}():
			matched(as[i], bs[j])
			i++
			j++
		case i < n && dp[i][j] == alignGapCost+dp[i+1][j]:
			gapA(as[i])
			i++
		default:
			gapB(bs[j])
			j++
		}
	}
}

// sortKeys orders keys deterministically: track, cat, name, ordinal.
func sortKeys(keys []diffKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.track != b.track {
			return a.track < b.track
		}
		if a.cat != b.cat {
			return a.cat < b.cat
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return a.ordinal < b.ordinal
	})
}

// DiffRecordings aligns two recordings and reports every divergence.
// The result is a pure function of the two event sequences.
func DiffRecordings(a, b *Recorder) *Diff {
	aGroups, aShapes := groupByShape(a)
	bGroups, bShapes := groupByShape(b)
	d := &Diff{EventsA: a.Len(), EventsB: b.Len()}
	for _, e := range a.Events() {
		if e.End > d.MakespanA {
			d.MakespanA = e.End
		}
	}
	for _, e := range b.Events() {
		if e.End > d.MakespanB {
			d.MakespanB = e.End
		}
	}

	// Every shape in either run, A's first-occurrence order first, then
	// shapes only B has; the per-section sorts below make the report
	// order independent of this traversal.
	shapes := make([]shapeKey, 0, len(aShapes))
	shapes = append(shapes, aShapes...)
	for _, k := range bShapes {
		if _, ok := aGroups[k]; !ok {
			shapes = append(shapes, k)
		}
	}
	shiftOrder := map[diffKey]int{} // run-A global order, the stable tie-break
	for _, sk := range shapes {
		key := func(ordinal int) diffKey {
			return diffKey{track: sk.track, cat: sk.cat, name: sk.name, ordinal: ordinal}
		}
		alignShape(aGroups[sk], bGroups[sk],
			func(ea, eb occurrence) {
				if ea.start == eb.start && ea.dur == eb.dur {
					d.Matched++
					return
				}
				k := key(ea.ordinal)
				shiftOrder[k] = ea.global
				d.Shifts = append(d.Shifts, Shift{
					Key:        k,
					StartDelta: eb.start - ea.start,
					DurDelta:   eb.dur - ea.dur,
				})
			},
			func(ea occurrence) { d.Removed = append(d.Removed, key(ea.ordinal)) },
			func(eb occurrence) { d.Added = append(d.Added, key(eb.ordinal)) },
		)
	}
	sortKeys(d.Removed)
	sortKeys(d.Added)
	sort.SliceStable(d.Shifts, func(i, j int) bool {
		ai, aj := absTime(d.Shifts[i].StartDelta), absTime(d.Shifts[j].StartDelta)
		if ai != aj {
			return ai > aj
		}
		return shiftOrder[d.Shifts[i].Key] < shiftOrder[d.Shifts[j].Key]
	})

	// Per-track utilization deltas, each run against its own horizon.
	ua, ub := Utilize(a, 0), Utilize(b, 0)
	busy := map[TrackID][2]float64{}
	for _, tu := range ua.Tracks {
		e := busy[tu.Track]
		e[0] = ua.BusyFraction(tu)
		busy[tu.Track] = e
	}
	for _, tu := range ub.Tracks {
		e := busy[tu.Track]
		e[1] = ub.BusyFraction(tu)
		busy[tu.Track] = e
	}
	tracks := make([]TrackID, 0, len(busy))
	for t := range busy {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	for _, t := range tracks {
		e := busy[t]
		if e[0] == e[1] {
			continue
		}
		d.UtilDeltas = append(d.UtilDeltas, UtilDelta{Track: t, A: e[0], B: e[1]})
	}
	sort.SliceStable(d.UtilDeltas, func(i, j int) bool {
		return absF(d.UtilDeltas[i].B-d.UtilDeltas[i].A) > absF(d.UtilDeltas[j].B-d.UtilDeltas[j].A)
	})
	return d
}

func absTime(t sim.Time) sim.Time {
	if t < 0 {
		return -t
	}
	return t
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// WriteDiff writes the aligned comparison of two recordings as a text
// report: a summary header, the largest timing shifts, added and
// removed events, and per-track utilization deltas, each section capped
// at DiffMaxRows with the truncation stated. Output is a pure function
// of the two event sequences.
func WriteDiff(w io.Writer, a, b *Recorder) error {
	d := DiffRecordings(a, b)
	var out strings.Builder
	fmt.Fprintf(&out, "== timeline diff (A -> B) ==\n")
	fmt.Fprintf(&out, "events    A %d, B %d\n", d.EventsA, d.EventsB)
	fmt.Fprintf(&out, "makespan  A %.3f us, B %.3f us (delta %+.3f us)\n",
		d.MakespanA.Micros(), d.MakespanB.Micros(), (d.MakespanB - d.MakespanA).Micros())
	fmt.Fprintf(&out, "aligned   %d matched, %d shifted, %d removed, %d added\n",
		d.Matched, len(d.Shifts), len(d.Removed), len(d.Added))
	if d.Identical() {
		out.WriteString("timelines identical: every event matched exactly\n")
		_, err := io.WriteString(w, out.String())
		return err
	}

	if len(d.Shifts) > 0 {
		tbl := &stats.Table{
			Title:   fmt.Sprintf("largest shifts (%d of %d)", capRows(len(d.Shifts)), len(d.Shifts)),
			Columns: []string{"event", "start-delta-us", "dur-delta-us"},
		}
		for _, s := range d.Shifts[:capRows(len(d.Shifts))] {
			tbl.AddRow(s.Key.String(),
				fmt.Sprintf("%+.3f", s.StartDelta.Micros()),
				fmt.Sprintf("%+.3f", s.DurDelta.Micros()))
		}
		out.WriteByte('\n')
		out.WriteString(tbl.Render())
	}
	writeKeyList(&out, "removed (only in A)", d.Removed)
	writeKeyList(&out, "added (only in B)", d.Added)
	if len(d.UtilDeltas) > 0 {
		tbl := &stats.Table{
			Title:   fmt.Sprintf("utilization deltas (%d of %d tracks)", capRows(len(d.UtilDeltas)), len(d.UtilDeltas)),
			Columns: []string{"track", "busy%-A", "busy%-B", "delta-pp"},
		}
		for _, ud := range d.UtilDeltas[:capRows(len(d.UtilDeltas))] {
			tbl.AddRow(ud.Track.Name(),
				fmt.Sprintf("%.2f", ud.A),
				fmt.Sprintf("%.2f", ud.B),
				fmt.Sprintf("%+.2f", ud.B-ud.A))
		}
		out.WriteByte('\n')
		out.WriteString(tbl.Render())
	}
	_, err := io.WriteString(w, out.String())
	return err
}

// capRows bounds a section's row count at DiffMaxRows.
func capRows(n int) int {
	if n > DiffMaxRows {
		return DiffMaxRows
	}
	return n
}

// writeKeyList renders one added/removed section, capped and counted.
func writeKeyList(out *strings.Builder, title string, keys []diffKey) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(out, "\n-- %s (%d of %d) --\n", title, capRows(len(keys)), len(keys))
	for _, k := range keys[:capRows(len(keys))] {
		fmt.Fprintf(out, "  %s\n", k.String())
	}
}
