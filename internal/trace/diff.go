// Timeline diff: two runs' recordings aligned event by event, the "what
// changed between these seeds" view. Alignment is structural, not
// positional: each event is keyed by (track, cat, name, ordinal), where
// the ordinal counts that (track, cat, name) shape's occurrences in
// insertion order — so the third "msg" span on node 4's track in run A
// pairs with the third in run B even when unrelated traffic reordered
// the global event stream. Paired events that moved or changed length
// are reported as shifted; unpaired events as added or removed; and a
// per-track utilization table shows where busy time migrated. One
// caveat follows from ordinal alignment: an event missing early in one
// run shifts the pairing of every later same-shape event, so a single
// dropped message typically reports as one removed event plus a tail of
// shifts — read the first divergence, not the count.

package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"powermanna/internal/sim"
	"powermanna/internal/stats"
)

// DiffMaxRows bounds each listed section of the diff report (shifted,
// added, removed, utilization deltas); the summary always carries the
// full counts, so truncation is visible, never silent.
const DiffMaxRows = 20

// diffKey aligns one event across runs.
type diffKey struct {
	track   TrackID
	cat     string
	name    string
	ordinal int
}

// String renders the key for report rows.
func (k diffKey) String() string {
	return fmt.Sprintf("%s %s/%s #%d", k.track.Name(), k.cat, k.name, k.ordinal+1)
}

// Shift is one aligned event pair whose timing differs between runs.
type Shift struct {
	// Key identifies the aligned pair.
	Key diffKey
	// StartDelta and DurDelta are B minus A.
	StartDelta, DurDelta sim.Time
}

// UtilDelta is one track's busy-fraction change between runs, each
// fraction measured against its own run's horizon.
type UtilDelta struct {
	// Track is the timeline compared.
	Track TrackID
	// A and B are the busy percentages in each run.
	A, B float64
}

// Diff is the aligned comparison of two recordings.
type Diff struct {
	// EventsA and EventsB are the runs' event counts.
	EventsA, EventsB int
	// MakespanA and MakespanB are the runs' last span ends.
	MakespanA, MakespanB sim.Time
	// Matched counts aligned pairs with identical timing; Shifts the
	// pairs that moved, sorted by |start delta| descending.
	Matched int
	Shifts  []Shift
	// Removed lists keys present only in A, Added only in B, both in
	// deterministic key order.
	Removed, Added []diffKey
	// UtilDeltas lists tracks whose busy fraction changed, sorted by
	// |delta| descending.
	UtilDeltas []UtilDelta
}

// Identical reports whether the runs' timelines aligned with no shifted,
// added or removed events.
func (d *Diff) Identical() bool {
	return len(d.Shifts) == 0 && len(d.Added) == 0 && len(d.Removed) == 0
}

// keyEvents indexes a recording by alignment key.
func keyEvents(r *Recorder) (map[diffKey]Event, []diffKey) {
	byKey := map[diffKey]Event{}
	ordinals := map[diffKey]int{}
	keys := make([]diffKey, 0, r.Len())
	for _, e := range r.Events() {
		shape := diffKey{track: e.Track, cat: e.Cat, name: e.Name}
		k := shape
		k.ordinal = ordinals[shape]
		ordinals[shape]++
		byKey[k] = e
		keys = append(keys, k)
	}
	return byKey, keys
}

// sortKeys orders keys deterministically: track, cat, name, ordinal.
func sortKeys(keys []diffKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.track != b.track {
			return a.track < b.track
		}
		if a.cat != b.cat {
			return a.cat < b.cat
		}
		if a.name != b.name {
			return a.name < b.name
		}
		return a.ordinal < b.ordinal
	})
}

// DiffRecordings aligns two recordings and reports every divergence.
// The result is a pure function of the two event sequences.
func DiffRecordings(a, b *Recorder) *Diff {
	aEvents, aKeys := keyEvents(a)
	bEvents, bKeys := keyEvents(b)
	d := &Diff{EventsA: a.Len(), EventsB: b.Len()}
	for _, e := range a.Events() {
		if e.End > d.MakespanA {
			d.MakespanA = e.End
		}
	}
	for _, e := range b.Events() {
		if e.End > d.MakespanB {
			d.MakespanB = e.End
		}
	}

	for _, k := range aKeys {
		ea := aEvents[k]
		eb, ok := bEvents[k]
		if !ok {
			d.Removed = append(d.Removed, k)
			continue
		}
		startDelta := eb.Start - ea.Start
		durDelta := (eb.End - eb.Start) - (ea.End - ea.Start)
		if startDelta == 0 && durDelta == 0 {
			d.Matched++
			continue
		}
		d.Shifts = append(d.Shifts, Shift{Key: k, StartDelta: startDelta, DurDelta: durDelta})
	}
	for _, k := range bKeys {
		if _, ok := aEvents[k]; !ok {
			d.Added = append(d.Added, k)
		}
	}
	sortKeys(d.Removed)
	sortKeys(d.Added)
	sort.SliceStable(d.Shifts, func(i, j int) bool {
		ai, aj := absTime(d.Shifts[i].StartDelta), absTime(d.Shifts[j].StartDelta)
		if ai != aj {
			return ai > aj
		}
		return false // stable: insertion (run-A) order breaks ties
	})

	// Per-track utilization deltas, each run against its own horizon.
	ua, ub := Utilize(a, 0), Utilize(b, 0)
	busy := map[TrackID][2]float64{}
	for _, tu := range ua.Tracks {
		e := busy[tu.Track]
		e[0] = ua.BusyFraction(tu)
		busy[tu.Track] = e
	}
	for _, tu := range ub.Tracks {
		e := busy[tu.Track]
		e[1] = ub.BusyFraction(tu)
		busy[tu.Track] = e
	}
	tracks := make([]TrackID, 0, len(busy))
	for t := range busy {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	for _, t := range tracks {
		e := busy[t]
		if e[0] == e[1] {
			continue
		}
		d.UtilDeltas = append(d.UtilDeltas, UtilDelta{Track: t, A: e[0], B: e[1]})
	}
	sort.SliceStable(d.UtilDeltas, func(i, j int) bool {
		return absF(d.UtilDeltas[i].B-d.UtilDeltas[i].A) > absF(d.UtilDeltas[j].B-d.UtilDeltas[j].A)
	})
	return d
}

func absTime(t sim.Time) sim.Time {
	if t < 0 {
		return -t
	}
	return t
}

func absF(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// WriteDiff writes the aligned comparison of two recordings as a text
// report: a summary header, the largest timing shifts, added and
// removed events, and per-track utilization deltas, each section capped
// at DiffMaxRows with the truncation stated. Output is a pure function
// of the two event sequences.
func WriteDiff(w io.Writer, a, b *Recorder) error {
	d := DiffRecordings(a, b)
	var out strings.Builder
	fmt.Fprintf(&out, "== timeline diff (A -> B) ==\n")
	fmt.Fprintf(&out, "events    A %d, B %d\n", d.EventsA, d.EventsB)
	fmt.Fprintf(&out, "makespan  A %.3f us, B %.3f us (delta %+.3f us)\n",
		d.MakespanA.Micros(), d.MakespanB.Micros(), (d.MakespanB - d.MakespanA).Micros())
	fmt.Fprintf(&out, "aligned   %d matched, %d shifted, %d removed, %d added\n",
		d.Matched, len(d.Shifts), len(d.Removed), len(d.Added))
	if d.Identical() {
		out.WriteString("timelines identical: every event matched exactly\n")
		_, err := io.WriteString(w, out.String())
		return err
	}

	if len(d.Shifts) > 0 {
		tbl := &stats.Table{
			Title:   fmt.Sprintf("largest shifts (%d of %d)", capRows(len(d.Shifts)), len(d.Shifts)),
			Columns: []string{"event", "start-delta-us", "dur-delta-us"},
		}
		for _, s := range d.Shifts[:capRows(len(d.Shifts))] {
			tbl.AddRow(s.Key.String(),
				fmt.Sprintf("%+.3f", s.StartDelta.Micros()),
				fmt.Sprintf("%+.3f", s.DurDelta.Micros()))
		}
		out.WriteByte('\n')
		out.WriteString(tbl.Render())
	}
	writeKeyList(&out, "removed (only in A)", d.Removed)
	writeKeyList(&out, "added (only in B)", d.Added)
	if len(d.UtilDeltas) > 0 {
		tbl := &stats.Table{
			Title:   fmt.Sprintf("utilization deltas (%d of %d tracks)", capRows(len(d.UtilDeltas)), len(d.UtilDeltas)),
			Columns: []string{"track", "busy%-A", "busy%-B", "delta-pp"},
		}
		for _, ud := range d.UtilDeltas[:capRows(len(d.UtilDeltas))] {
			tbl.AddRow(ud.Track.Name(),
				fmt.Sprintf("%.2f", ud.A),
				fmt.Sprintf("%.2f", ud.B),
				fmt.Sprintf("%+.2f", ud.B-ud.A))
		}
		out.WriteByte('\n')
		out.WriteString(tbl.Render())
	}
	_, err := io.WriteString(w, out.String())
	return err
}

// capRows bounds a section's row count at DiffMaxRows.
func capRows(n int) int {
	if n > DiffMaxRows {
		return DiffMaxRows
	}
	return n
}

// writeKeyList renders one added/removed section, capped and counted.
func writeKeyList(out *strings.Builder, title string, keys []diffKey) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(out, "\n-- %s (%d of %d) --\n", title, capRows(len(keys)), len(keys))
	for _, k := range keys[:capRows(len(keys))] {
		fmt.Fprintf(out, "  %s\n", k.String())
	}
}
