// Critical-path extraction: the chain of spans that bounds the
// makespan. The recorded timeline is rebuilt into a dependency DAG in
// which span v can follow span u whenever u ends no later than v starts
// (on any track — a message span completing enables the fiber it wakes;
// a fiber span completing enables the token it posts), while spans that
// overlap in time — a parent and the children nested inside it on the
// same track, two circuits held concurrently — are parallel, never
// chained. The critical path is the chain with the greatest total span
// duration that ends at the run's final event; the gap each hop leaves
// to its predecessor is reported as slack (idle time a faster resource
// could not have recovered anyway unless the chain itself changed).

package trace

import (
	"fmt"
	"io"
	"sort"

	"powermanna/internal/sim"
	"powermanna/internal/stats"
)

// Hop is one span of the critical path.
type Hop struct {
	// Span is the recorded event (always a SpanEvent).
	Span Event
	// Slack is the idle gap between the predecessor's end and this
	// span's start (for the first hop: the gap from time zero).
	Slack sim.Time
}

// CritPath is the longest dependency chain ending at the final event.
type CritPath struct {
	// Makespan is the recording's last span end.
	Makespan sim.Time
	// Hops is the chain in time order, first to last.
	Hops []Hop
	// ChainTime is the summed duration of the chain's spans; SlackTime
	// the summed gaps. ChainTime + SlackTime == Makespan.
	ChainTime, SlackTime sim.Time
}

// CriticalPath extracts the longest chain of non-overlapping spans
// ending at the recording's final event. Chain length is total span
// duration; ties are broken deterministically (earlier-recorded
// predecessors win), and the terminal span is the one with the latest
// end, then the latest start — the innermost leaf when nesting puts
// several span ends at the makespan. The result is a pure function of
// the recorded events.
func CriticalPath(r *Recorder) *CritPath {
	var spans []Event
	for _, e := range r.Events() {
		if e.Kind == SpanEvent {
			spans = append(spans, e)
		}
	}
	cp := &CritPath{}
	if len(spans) == 0 {
		return cp
	}

	// Process spans in ascending end order so every legal predecessor of
	// a span (end <= this start <= this end) is processed first. The
	// prefix arrays then answer "best chain ending at or before t" with
	// one binary search: ends is the processed spans' (nondecreasing)
	// end times, prefixBest[i] the best chain total among the first i+1,
	// prefixIdx[i] which span achieves it (first achiever wins ties —
	// deterministic because the processing order is).
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := spans[order[a]], spans[order[b]]
		if ea.End != eb.End {
			return ea.End < eb.End
		}
		return ea.Start < eb.Start
	})

	best := make([]sim.Time, len(spans))
	pred := make([]int, len(spans))
	ends := make([]sim.Time, 0, len(spans))
	prefixBest := make([]sim.Time, 0, len(spans))
	prefixIdx := make([]int, 0, len(spans))
	for _, i := range order {
		e := spans[i]
		pred[i] = -1
		best[i] = e.End - e.Start
		// Latest processed position with end <= e.Start.
		lo, hi := 0, len(ends)
		for lo < hi {
			mid := (lo + hi) / 2
			if ends[mid] <= e.Start {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 {
			best[i] += prefixBest[lo-1]
			pred[i] = prefixIdx[lo-1]
		}
		ends = append(ends, e.End)
		if n := len(prefixBest); n > 0 && prefixBest[n-1] >= best[i] {
			prefixBest = append(prefixBest, prefixBest[n-1])
			prefixIdx = append(prefixIdx, prefixIdx[n-1])
		} else {
			prefixBest = append(prefixBest, best[i])
			prefixIdx = append(prefixIdx, i)
		}
	}

	// Terminal: latest end, then latest start (the innermost leaf), then
	// last recorded.
	term := -1
	for i, e := range spans {
		if term < 0 {
			term = i
			continue
		}
		t := spans[term]
		if e.End > t.End || (e.End == t.End && e.Start >= t.Start) {
			term = i
		}
	}
	cp.Makespan = spans[term].End

	var chain []int
	for i := term; i >= 0; i = pred[i] {
		chain = append(chain, i)
	}
	prevEnd := sim.Time(0)
	for k := len(chain) - 1; k >= 0; k-- {
		e := spans[chain[k]]
		hop := Hop{Span: e, Slack: e.Start - prevEnd}
		cp.Hops = append(cp.Hops, hop)
		cp.ChainTime += e.End - e.Start
		cp.SlackTime += hop.Slack
		prevEnd = e.End
	}
	return cp
}

// WriteCritPath writes the critical path as a fixed-width table, one
// hop per row with track, category, name, start, duration and slack,
// plus a chain/slack/makespan summary. Output is a pure function of the
// recorded events.
func WriteCritPath(w io.Writer, r *Recorder) error {
	cp := CriticalPath(r)
	tbl := &stats.Table{
		Title: fmt.Sprintf("critical path — %d hops, chain %.3f us + slack %.3f us = makespan %.3f us (%.1f%% accounted)",
			len(cp.Hops), cp.ChainTime.Micros(), cp.SlackTime.Micros(), cp.Makespan.Micros(),
			chainPct(cp)),
		Columns: []string{"#", "track", "cat", "name", "start-us", "dur-us", "slack-us", "detail"},
	}
	for i, h := range cp.Hops {
		e := h.Span
		tbl.AddRow(
			fmt.Sprintf("%d", i+1),
			e.Track.Name(),
			e.Cat,
			e.Name,
			fmt.Sprintf("%.3f", e.Start.Micros()),
			fmt.Sprintf("%.3f", (e.End-e.Start).Micros()),
			fmt.Sprintf("%.3f", h.Slack.Micros()),
			e.Arg,
		)
	}
	_, err := io.WriteString(w, tbl.Render())
	return err
}

// chainPct is the chain's share of the makespan in percent.
func chainPct(cp *CritPath) float64 {
	if cp.Makespan <= 0 {
		return 0
	}
	return 100 * float64(cp.ChainTime) / float64(cp.Makespan)
}
