// Chrome trace_event export: the recorded timeline as the JSON array
// format chrome://tracing and Perfetto load. Track classes become
// processes, tracks become threads, spans become complete ("X") events
// and instants "i" events.
//
// The writer is hand-rolled instead of encoding/json so the byte stream
// is deterministic by construction: fixed key order, fixed number
// formatting (microseconds with six decimals — exact, since simulated
// time is integer picoseconds), events in insertion order, and metadata
// sorted by (pid, tid). No wall clock is ever read.

package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"powermanna/internal/sim"
)

// class labels for the process_name metadata, indexed by class constant.
var classNames = map[int]string{
	ClassNode:     "nodes",
	ClassCPU:      "cpus",
	ClassPlane:    "planes",
	ClassXbarPort: "crossbar ports",
	ClassWire:     "wires",
	ClassDispatch: "dispatcher",
	ClassOS:       "os stream",
}

// planeLetters names the two planes of the duplicated network.
var planeLetters = [...]string{"A", "B"}

// Name renders a stable human-readable label for the track, derived from
// the same topology coordinates as the ID itself.
func (t TrackID) Name() string {
	idx := t.Index()
	switch t.Class() {
	case ClassNode:
		return fmt.Sprintf("node %d", idx)
	case ClassCPU:
		unit := "EU"
		if idx%CPUsPerNode == 1 {
			unit = "SU"
		}
		return fmt.Sprintf("node %d %s", idx/CPUsPerNode, unit)
	case ClassPlane:
		if idx >= 0 && idx < len(planeLetters) {
			return "plane " + planeLetters[idx]
		}
		return fmt.Sprintf("plane %d", idx)
	case ClassXbarPort:
		return fmt.Sprintf("xbar %d out %d", idx/portStride, idx%portStride)
	case ClassWire:
		dir := "out"
		if idx%wireDirs == 1 {
			dir = "in"
		}
		dp := idx / wireDirs
		return fmt.Sprintf("wire %d.%d %s", dp/portStride, dp%portStride, dir)
	case ClassDispatch:
		if idx == 0 {
			return "dispatcher addr"
		}
		return fmt.Sprintf("dispatcher data m%d", idx-1)
	case ClassOS:
		return "os stream"
	}
	return fmt.Sprintf("track %d", int64(t))
}

// WriteChrome writes the recorder's events as Chrome trace_event JSON.
// The output is a pure function of the recorded events: same events,
// identical bytes.
func WriteChrome(w io.Writer, r *Recorder) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	events := r.Events()
	tracks := distinctTracks(events)
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}

	// Metadata: process names per class, thread names per track.
	seenClass := map[int]bool{}
	for _, t := range tracks {
		if c := t.Class(); !seenClass[c] {
			seenClass[c] = true
			emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":%s}}",
				c, jsonString(classNames[c])))
		}
		emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}",
			t.Class(), t.Index(), jsonString(t.Name())))
	}

	for _, e := range events {
		var line strings.Builder
		if e.Kind == InstantEvent {
			fmt.Fprintf(&line, "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"s\":\"t\"",
				e.Track.Class(), e.Track.Index(), micros(e.Start))
		} else {
			fmt.Fprintf(&line, "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s",
				e.Track.Class(), e.Track.Index(), micros(e.Start), micros(e.End-e.Start))
		}
		fmt.Fprintf(&line, ",\"cat\":%s,\"name\":%s", jsonString(e.Cat), jsonString(e.Name))
		if e.Arg != "" {
			fmt.Fprintf(&line, ",\"args\":{\"detail\":%s}", jsonString(e.Arg))
		}
		line.WriteString("}")
		emit(line.String())
	}

	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// distinctTracks lists every track the events touch, sorted by
// (class, index) for deterministic metadata order.
func distinctTracks(events []Event) []TrackID {
	seen := map[TrackID]bool{}
	var tracks []TrackID
	for _, e := range events {
		if !seen[e.Track] {
			seen[e.Track] = true
			tracks = append(tracks, e.Track)
		}
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i] < tracks[j] })
	return tracks
}

// micros renders a picosecond time as decimal microseconds with six
// digits of fraction — exact (1 ps = 1e-6 µs), so formatting cannot
// introduce platform float drift.
func micros(t sim.Time) string {
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	return fmt.Sprintf("%s%d.%06d", neg, int64(t)/1_000_000, int64(t)%1_000_000)
}

// jsonString escapes a label for embedding in the hand-rolled JSON.
// Labels are ASCII by construction; the escaper covers the general case
// anyway.
func jsonString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString("\\\"")
		case '\\':
			b.WriteString("\\\\")
		case '\n':
			b.WriteString("\\n")
		case '\t':
			b.WriteString("\\t")
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, "\\u%04x", r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
