package trace

import (
	"strings"
	"testing"

	"powermanna/internal/sim"
)

const us = sim.Microsecond

// TestCriticalPathKnownChain hand-builds a timeline whose longest chain
// is known and checks the extractor recovers exactly it: decoy spans
// that overlap the chain (parallel work, nested children) must not
// appear, and the chain/slack accounting must cover the makespan.
func TestCriticalPathKnownChain(t *testing.T) {
	r := NewRecorder()
	// The intended chain: a [0,10) -> b [12,30) -> c [30,40).
	r.Span(NodeTrack(0), "w", "a", 0, 10*us)
	r.Span(NodeTrack(1), "w", "b", 12*us, 30*us)
	r.Span(NodeTrack(2), "w", "c", 30*us, 40*us)
	// Decoys: d could precede c but yields a shorter chain (25 < 10+18);
	// child nests inside b (overlapping, so never chained with it).
	r.Span(NodeTrack(3), "w", "d", 0, 25*us)
	r.Span(NodeTrack(1), "w", "child", 14*us, 20*us)

	cp := CriticalPath(r)
	if cp.Makespan != 40*us {
		t.Fatalf("makespan = %v, want 40us", cp.Makespan)
	}
	var names []string
	for _, h := range cp.Hops {
		names = append(names, h.Span.Name)
	}
	if got := strings.Join(names, ","); got != "a,b,c" {
		t.Fatalf("chain = %s, want a,b,c", got)
	}
	if cp.ChainTime != 38*us || cp.SlackTime != 2*us {
		t.Errorf("chain %v + slack %v, want 38us + 2us", cp.ChainTime, cp.SlackTime)
	}
	if cp.ChainTime+cp.SlackTime != cp.Makespan {
		t.Errorf("chain %v + slack %v != makespan %v", cp.ChainTime, cp.SlackTime, cp.Makespan)
	}
	if cp.Hops[1].Slack != 2*us || cp.Hops[0].Slack != 0 || cp.Hops[2].Slack != 0 {
		t.Errorf("per-hop slack wrong: %+v", cp.Hops)
	}
}

// TestCriticalPathEndsAtInnermostLeaf checks terminal selection under
// nesting: when a parent and its nested child both end at the makespan,
// the chain ends at the child (latest start), and the parent — which
// overlaps everything — is not on the path.
func TestCriticalPathEndsAtInnermostLeaf(t *testing.T) {
	r := NewRecorder()
	r.Span(NodeTrack(0), "w", "parent", 0, 40*us)
	r.Span(NodeTrack(0), "w", "early-child", 5*us, 15*us)
	r.Span(NodeTrack(0), "w", "leaf", 20*us, 40*us)
	r.Span(NodeTrack(1), "w", "feeder", 0, 18*us)

	cp := CriticalPath(r)
	var names []string
	for _, h := range cp.Hops {
		names = append(names, h.Span.Name)
	}
	if got := strings.Join(names, ","); got != "feeder,leaf" {
		t.Fatalf("chain = %s, want feeder,leaf", got)
	}
	if cp.ChainTime != 38*us || cp.SlackTime != 2*us || cp.Makespan != 40*us {
		t.Errorf("chain %v slack %v makespan %v", cp.ChainTime, cp.SlackTime, cp.Makespan)
	}
}

// TestCriticalPathEmptyRecorder checks the degenerate cases.
func TestCriticalPathEmptyRecorder(t *testing.T) {
	var nilRec *Recorder
	for _, r := range []*Recorder{nilRec, NewRecorder()} {
		cp := CriticalPath(r)
		if cp.Makespan != 0 || len(cp.Hops) != 0 {
			t.Errorf("empty recording produced a path: %+v", cp)
		}
	}
	var b strings.Builder
	if err := WriteCritPath(&b, nilRec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0 hops") {
		t.Errorf("empty critpath render: %q", b.String())
	}
}

// TestUtilizationWindowsAndMerge checks window clipping and that nested
// or overlapping spans never double-count busy time.
func TestUtilizationWindowsAndMerge(t *testing.T) {
	r := NewRecorder()
	// Overlapping pair on one track: union is [0,10), not 12 us of busy.
	r.Span(NodeTrack(0), "w", "x", 0, 6*us)
	r.Span(NodeTrack(0), "w", "y", 4*us, 10*us)
	// Second track fixes the horizon at 12 us and owns [10,12) alone.
	r.Span(NodeTrack(1), "w", "z", 10*us, 12*us)

	u := Utilize(r, 4*us)
	if u.Horizon != 12*us || u.Window != 4*us || len(u.Tracks) != 2 {
		t.Fatalf("horizon %v window %v tracks %d", u.Horizon, u.Window, len(u.Tracks))
	}
	t0 := u.Tracks[0]
	if t0.Track != NodeTrack(0) || t0.Busy != 10*us {
		t.Errorf("track0 busy = %v, want 10us (union, not sum)", t0.Busy)
	}
	wantWin := []sim.Time{4 * us, 4 * us, 2 * us}
	for i, w := range t0.Windows {
		if w != wantWin[i] {
			t.Errorf("track0 window %d = %v, want %v", i, w, wantWin[i])
		}
	}
	t1 := u.Tracks[1]
	if t1.Busy != 2*us || t1.Windows[0] != 0 || t1.Windows[2] != 2*us {
		t.Errorf("track1 = %+v", t1)
	}
	if got := u.BusyFraction(t1); got < 16.6 || got > 16.7 {
		t.Errorf("track1 busy fraction = %.2f%%, want ~16.67%%", got)
	}
}

// TestUtilizationAutoWindow checks the auto-sizing: horizon/16 rounded
// up to a whole microsecond.
func TestUtilizationAutoWindow(t *testing.T) {
	r := NewRecorder()
	r.Span(NodeTrack(0), "w", "x", 0, 100*us)
	u := Utilize(r, 0)
	if u.Window != 7*us {
		t.Errorf("auto window = %v, want 7us (ceil(100/16) rounded up)", u.Window)
	}
	if n := len(u.Tracks[0].Windows); n != 15 {
		t.Errorf("window count = %d, want 15", n)
	}
}

// TestDiffShiftAndRemoval is the satellite fixture: two recordings that
// differ by one shifted span and one missing span must report exactly
// that — and nothing else.
func TestDiffShiftAndRemoval(t *testing.T) {
	build := func(shift sim.Time, dropThird bool) *Recorder {
		r := NewRecorder()
		r.Span(NodeTrack(0), "net", "msg", 0, 5*us)
		r.Span(NodeTrack(0), "net", "msg", 10*us+shift, 15*us+shift)
		if !dropThird {
			r.Span(NodeTrack(1), "net", "msg", 20*us, 25*us)
		}
		r.Span(NodeTrack(2), "cpu", "fiber", 30*us, 42*us)
		return r
	}
	a := build(0, false)
	b := build(3*us, true)

	d := DiffRecordings(a, b)
	if d.Identical() {
		t.Fatal("differing runs reported identical")
	}
	if d.Matched != 2 || len(d.Shifts) != 1 || len(d.Removed) != 1 || len(d.Added) != 0 {
		t.Fatalf("matched=%d shifts=%d removed=%d added=%d, want 2/1/1/0",
			d.Matched, len(d.Shifts), len(d.Removed), len(d.Added))
	}
	s := d.Shifts[0]
	if s.Key.name != "msg" || s.Key.ordinal != 1 || s.StartDelta != 3*us || s.DurDelta != 0 {
		t.Errorf("shift = %+v", s)
	}
	rm := d.Removed[0]
	if rm.track != NodeTrack(1) || rm.name != "msg" || rm.ordinal != 0 {
		t.Errorf("removed = %+v", rm)
	}
	if d.MakespanA != 42*us || d.MakespanB != 42*us {
		t.Errorf("makespans %v / %v", d.MakespanA, d.MakespanB)
	}

	var out strings.Builder
	if err := WriteDiff(&out, a, b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"1 shifted, 1 removed, 0 added",
		"node 0 net/msg #2",
		"removed (only in A)",
		"node 1 net/msg #1",
		"utilization deltas",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff report missing %q:\n%s", want, out.String())
		}
	}
}

// TestDiffDroppedEventDoesNotCascade is the alignment satellite: one
// event dropped early in a long same-shape run must report exactly one
// removal, with the surviving tail re-paired exactly — not a cascade of
// spurious per-ordinal shifts.
func TestDiffDroppedEventDoesNotCascade(t *testing.T) {
	build := func(dropSecond bool) *Recorder {
		r := NewRecorder()
		for i := 0; i < 10; i++ {
			if dropSecond && i == 1 {
				continue
			}
			at := sim.Time(i) * 10 * us
			r.Span(NodeTrack(0), "net", "msg", at, at+5*us)
		}
		return r
	}
	a := build(false)
	b := build(true)

	d := DiffRecordings(a, b)
	if d.Matched != 9 || len(d.Shifts) != 0 || len(d.Removed) != 1 || len(d.Added) != 0 {
		t.Fatalf("matched=%d shifts=%d removed=%d added=%d, want 9/0/1/0",
			d.Matched, len(d.Shifts), len(d.Removed), len(d.Added))
	}
	if rm := d.Removed[0]; rm.ordinal != 1 {
		t.Errorf("removed ordinal = %d, want 1 (the dropped event)", rm.ordinal)
	}

	// The reverse direction is symmetric: the extra event reports as
	// one addition.
	rd := DiffRecordings(b, a)
	if rd.Matched != 9 || len(rd.Shifts) != 0 || len(rd.Added) != 1 || len(rd.Removed) != 0 {
		t.Fatalf("reverse: matched=%d shifts=%d removed=%d added=%d, want 9/0/0/1",
			rd.Matched, len(rd.Shifts), len(rd.Removed), len(rd.Added))
	}
}

// TestDiffPrefersShiftOverChurn checks the cost model's other face: an
// event that merely moved pairs up as one shift (cost 2) rather than a
// removal plus an addition (cost 2, but alignment prefers pairing on
// the tie).
func TestDiffPrefersShiftOverChurn(t *testing.T) {
	a := NewRecorder()
	a.Span(NodeTrack(0), "net", "msg", 0, 5*us)
	b := NewRecorder()
	b.Span(NodeTrack(0), "net", "msg", 2*us, 7*us)

	d := DiffRecordings(a, b)
	if d.Matched != 0 || len(d.Shifts) != 1 || len(d.Removed) != 0 || len(d.Added) != 0 {
		t.Fatalf("matched=%d shifts=%d removed=%d added=%d, want 0/1/0/0",
			d.Matched, len(d.Shifts), len(d.Removed), len(d.Added))
	}
	if s := d.Shifts[0]; s.StartDelta != 2*us || s.DurDelta != 0 {
		t.Errorf("shift = %+v", s)
	}
}

// TestDiffSelfIsIdentical checks the zero-diff direction: a recording
// diffed against an identical one reports no divergence.
func TestDiffSelfIsIdentical(t *testing.T) {
	r := sample()
	d := DiffRecordings(r, r)
	if !d.Identical() || d.Matched != r.Len() {
		t.Fatalf("self-diff: identical=%v matched=%d of %d", d.Identical(), d.Matched, r.Len())
	}
	var out strings.Builder
	if err := WriteDiff(&out, r, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "timelines identical") {
		t.Errorf("self-diff report:\n%s", out.String())
	}
}

// TestEventsReturnsDefensiveCopy checks analyzers can mutate (sort,
// truncate) the returned slice without corrupting the recording.
func TestEventsReturnsDefensiveCopy(t *testing.T) {
	r := NewRecorder()
	r.Span(NodeTrack(0), "w", "first", 0, 10*us)
	r.Span(NodeTrack(0), "w", "second", 10*us, 20*us)
	ev := r.Events()
	ev[0].Name = "clobbered"
	ev[0], ev[1] = ev[1], ev[0]
	if got := r.Events()[0].Name; got != "first" {
		t.Errorf("recording mutated through Events(): first event is %q", got)
	}
}
