package trace

import (
	"strings"
	"testing"

	"powermanna/internal/sim"
)

func TestNilRecorderNoOpsAndAllocatesNothing(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Span(NodeTrack(3), "netsim", "msg", 0, 10)
		r.SpanArg(NodeTrack(3), "netsim", "msg", 0, 10, "detail")
		r.Instant(PlaneTrack(0), "failover", "hit", 5)
		r.InstantArg(PlaneTrack(0), "failover", "hit", 5, "detail")
		r.Reset()
	})
	if allocs != 0 {
		t.Errorf("nil recorder allocated %.1f times per run, want 0", allocs)
	}
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder holds events")
	}
}

func TestTrackIDsStableAndDisjoint(t *testing.T) {
	ids := []TrackID{
		NodeTrack(0), NodeTrack(127),
		CPUTrack(0, 0), CPUTrack(0, 1), CPUTrack(127, 1),
		PlaneTrack(0), PlaneTrack(1),
		XbarPortTrack(0, 0), XbarPortTrack(47, 15),
		WireTrack(0, 0, 0), WireTrack(0, 0, 1), WireTrack(175, 15, 0),
		DispatchTrack(0), DispatchTrack(2),
		OSTrack(),
	}
	seen := map[TrackID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("track id collision at %d (%s)", int64(id), id.Name())
		}
		seen[id] = true
	}
	// Round trips: class and index survive packing.
	if x := XbarPortTrack(7, 11); x.Class() != ClassXbarPort || x.Index() != 7*portStride+11 {
		t.Errorf("xbar track round trip: class %d index %d", x.Class(), x.Index())
	}
	// Names are topology-derived and stable.
	for id, want := range map[TrackID]string{
		NodeTrack(5):        "node 5",
		CPUTrack(3, 0):      "node 3 EU",
		CPUTrack(3, 1):      "node 3 SU",
		PlaneTrack(1):       "plane B",
		XbarPortTrack(2, 9): "xbar 2 out 9",
		WireTrack(10, 1, 0): "wire 10.1 out",
		WireTrack(10, 1, 1): "wire 10.1 in",
		DispatchTrack(0):    "dispatcher addr",
		DispatchTrack(2):    "dispatcher data m1",
		OSTrack():           "os stream",
	} {
		if got := id.Name(); got != want {
			t.Errorf("Name(%d) = %q, want %q", int64(id), got, want)
		}
	}
}

func TestSpanClampsInvertedWindow(t *testing.T) {
	r := NewRecorder()
	r.Span(NodeTrack(0), "t", "x", 10, 5)
	if e := r.Events()[0]; e.End != e.Start {
		t.Errorf("inverted span not clamped: [%v, %v]", e.Start, e.End)
	}
}

func sample() *Recorder {
	r := NewRecorder()
	r.SpanArg(NodeTrack(0), "netsim", "msg", 0, 10*sim.Microsecond, "0->5 plane A")
	r.Span(NodeTrack(0), "netsim", "setup", 0, 2*sim.Microsecond)
	r.Span(WireTrack(0, 0, 0), "link", "hold", 0, 10*sim.Microsecond)
	r.Instant(NodeTrack(0), "netsim", "close", 10*sim.Microsecond)
	r.Span(NodeTrack(0), "netsim", "msg", 20*sim.Microsecond, 24*sim.Microsecond)
	return r
}

func TestWriteChromeDeterministicAndWellFormed(t *testing.T) {
	var a, b strings.Builder
	if err := WriteChrome(&a, sample()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, sample()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two exports of identical events differ")
	}
	out := a.String()
	for _, want := range []string{
		`{"displayTimeUnit":"ms","traceEvents":[`,
		`"name":"process_name","args":{"name":"nodes"}`,
		`"name":"thread_name","args":{"name":"node 0"}`,
		`"ph":"X"`, `"ts":0.000000`, `"dur":10.000000`,
		`"ph":"i"`, `"s":"t"`,
		`"args":{"detail":"0->5 plane A"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome output missing %q", want)
		}
	}
	if !strings.HasSuffix(out, "\n]}\n") {
		t.Error("chrome output not terminated")
	}
}

func TestMicrosExact(t *testing.T) {
	for in, want := range map[sim.Time]string{
		0:                                       "0.000000",
		1:                                       "0.000001",
		999_999:                                 "0.999999",
		sim.Microsecond:                         "1.000000",
		12*sim.Microsecond + 345*sim.Nanosecond: "12.345000",
	} {
		if got := micros(in); got != want {
			t.Errorf("micros(%d) = %q, want %q", int64(in), got, want)
		}
	}
}

func TestProfileSelfTimeSubtractsNestedChildren(t *testing.T) {
	var b strings.Builder
	if err := WriteProfile(&b, sample(), 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// "msg" totals 14 µs over two spans; "setup" (2 µs) nests inside the
	// first, so msg self = 12 µs.
	for _, want := range []string{
		"node 0", "msg", "14.000", "12.000", "setup", "2.000",
		"wire 0.0 out", "hold", "10.000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q in:\n%s", want, out)
		}
	}
}

func TestEnabledRecorderRecords(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("fresh recorder disabled")
	}
	r.Span(NodeTrack(0), "c", "n", 1, 2)
	r.Instant(NodeTrack(0), "c", "i", 3)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear events")
	}
}
