// Package fault is the deterministic fault-injection engine for the
// duplicated interconnect. The paper's defining network feature is that
// every node owns two link ports on two separate crossbar hierarchies
// (Section 4) — a redundancy argument that only means something if the
// simulated machine can actually lose a link and keep running. This
// package injects faults at simulated cycle times and measures what the
// failover protocol (netsim.SendReliable) makes of them.
//
// Four fault classes map onto the hardware the paper describes:
//
//   - link cut: a wire of the byte-parallel link (Section 3.2) is
//     severed and never carries another byte;
//   - crossbar stuck-busy: an output channel of the 16×16 crossbar ASIC
//     (Section 3.1) is held by a wedged arbiter, so circuits wanting it
//     wait forever;
//   - flit corruption: bytes crossing a wire inside a window arrive
//     garbled, caught by the link interface's CRC (Section 3.3);
//   - NI stall: a node's link interface stops accepting sends, as a
//     driver that quit draining the send FIFO would look (Section 3.3).
//
// Everything is a pure function of (campaign, seed): fault times and
// targets come from an explicit *rand.Rand threaded through Options,
// never from wall clocks or the global source, and schedules are applied
// in sorted simulated-time order. Two runs with the same seed are
// byte-identical; that property is tested and enforced in CI.
package fault

import (
	"fmt"
	"sort"

	"powermanna/internal/netsim"
	"powermanna/internal/sim"
)

// Kind enumerates the injectable fault classes.
type Kind int

// The fault classes, in the order the campaign engine names them.
const (
	// LinkCut severs a node's uplink wire on one plane.
	LinkCut Kind = iota
	// XbarStuck holds a crossbar output channel busy for a window.
	XbarStuck
	// FlitCorrupt garbles bytes crossing a wire during a window.
	FlitCorrupt
	// NIStall blocks a node's link interface from accepting sends.
	NIStall
	// CentralCut severs a wire leaving a central-stage crossbar — a
	// fault that hits no single node's uplink but degrades the routes of
	// every cluster behind the stage.
	CentralCut
)

// String names the kind as campaigns spell it.
func (k Kind) String() string {
	switch k {
	case LinkCut:
		return "link-cut"
	case XbarStuck:
		return "xbar-stuck"
	case FlitCorrupt:
		return "flit-corrupt"
	case NIStall:
		return "ni-stall"
	case CentralCut:
		return "central-cut"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// Kind selects the fault class.
	Kind Kind
	// At is the injection time; Until ends the window for the windowed
	// kinds (XbarStuck, FlitCorrupt, NIStall) and is ignored for LinkCut.
	At, Until sim.Time
	// Plane is the network plane under attack (topo.NetworkA/B).
	Plane int
	// Node targets LinkCut, FlitCorrupt and NIStall: the node whose
	// uplink wire or link interface is hit.
	Node int
	// Xbar and Out target XbarStuck: crossbar ordinal and output channel.
	Xbar, Out int
}

// String renders the event for schedule listings.
func (e Event) String() string {
	switch e.Kind {
	case LinkCut:
		return fmt.Sprintf("%-12s at=%-14v plane=%d node=%d", e.Kind, e.At, e.Plane, e.Node)
	case XbarStuck:
		return fmt.Sprintf("%-12s at=%-14v until=%v plane=%d xbar=%d out=%d", e.Kind, e.At, e.Until, e.Plane, e.Xbar, e.Out)
	case CentralCut:
		return fmt.Sprintf("%-12s at=%-14v plane=%d xbar=%d out=%d", e.Kind, e.At, e.Plane, e.Xbar, e.Out)
	default:
		return fmt.Sprintf("%-12s at=%-14v until=%v plane=%d node=%d", e.Kind, e.At, e.Until, e.Plane, e.Node)
	}
}

// Injector applies a fault schedule to a network in simulated-time order.
// Stuck-busy windows acquire crossbar resources, which demand
// non-decreasing times like every Resource timeline — so the campaign
// loop calls ApplyUntil before each message it posts, never after.
type Injector struct {
	net    *netsim.Network
	events []Event
	next   int
}

// NewInjector sorts the schedule by injection time (stable, so equal
// times keep their generation order) and binds it to a network.
func NewInjector(net *netsim.Network, events []Event) *Injector {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	return &Injector{net: net, events: sorted}
}

// ApplyUntil injects every not-yet-applied event with At <= now and
// reports how many fired.
func (in *Injector) ApplyUntil(now sim.Time) int {
	fired := 0
	for in.next < len(in.events) && in.events[in.next].At <= now {
		in.apply(in.events[in.next])
		in.next++
		fired++
	}
	return fired
}

// Pending reports how many events have not fired yet.
func (in *Injector) Pending() int { return len(in.events) - in.next }

// Events returns the sorted schedule (shared slice; do not mutate).
func (in *Injector) Events() []Event { return in.events }

func (in *Injector) apply(e Event) {
	switch e.Kind {
	case LinkCut:
		in.net.CutWire(e.Node, e.Plane, e.At)
	case CentralCut:
		// Crossbar devices follow the nodes in the topology's device
		// numbering; the cut severs the wire leaving (crossbar, out).
		in.net.CutWire(in.net.Topology().Nodes()+e.Xbar, e.Out, e.At)
	case FlitCorrupt:
		in.net.CorruptWire(e.Node, e.Plane, e.At, e.Until)
	case XbarStuck:
		in.net.Crossbar(e.Xbar).StickOutput(e.Out, e.At, e.Until)
	case NIStall:
		in.net.NI(e.Node).Links[e.Plane].Stall(e.At, e.Until)
	default:
		panic(fmt.Sprintf("fault: unknown kind %d", int(e.Kind)))
	}
}
