package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"powermanna/internal/metrics"
	"powermanna/internal/netsim"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// Campaign run defaults. A campaign is a pure function of (spec, Options),
// so these are part of the reproducible surface: the CI golden table pins
// them.
const (
	// DefaultSeed drives schedule and traffic generation when Options.Seed
	// is zero.
	DefaultSeed = 1
	// DefaultMessages is the traffic volume per degradation row.
	DefaultMessages = 400
	// DefaultPayloadBytes is the per-message payload.
	DefaultPayloadBytes = 256
	// DefaultWindow is the simulated span traffic is spread over.
	DefaultWindow = 2 * sim.Millisecond
	// faultSpan limits injection times to the window's first half, so
	// traffic after the fault exists to feel it.
	faultSpanDiv = 2
	// corruptDiv sizes a corruption or stall window as window/corruptDiv.
	corruptDiv = 8
	// stuckOutlast makes stuck-busy windows outlast the whole run: stuck
	// means stuck.
	stuckOutlast = 2
	// faultSeedStride separates the fault-schedule stream of each
	// degradation row from the (shared) traffic stream.
	faultSeedStride = 1_000_003
)

// Campaign is a named fault-injection experiment: which fault kinds to
// inject and a sweep of fault counts, each count producing one row of the
// degradation table.
type Campaign struct {
	// Name is the CLI key (pmfault --campaign <name>).
	Name string
	// Description says what the campaign demonstrates.
	Description string
	// Kinds are the fault classes drawn from when scheduling.
	Kinds []Kind
	// Rates is the fault-count sweep; a leading 0 row is the
	// latency-inflation baseline.
	Rates []int
	// BothPlanes lets faults land on plane B too; single-plane campaigns
	// attack only plane A, so failover always has a healthy plane and no
	// message may be lost.
	BothPlanes bool
	// PerXbar adds a per-crossbar breakdown table (opened/blocked/stuck
	// counters of every crossbar with activity) to the highest-rate row —
	// the view that shows a central-stage fault radiating across clusters.
	PerXbar bool
	// DefaultTopology overrides the Options default (Cluster8) when the
	// caller leaves Options.Topology nil — campaigns whose fault class
	// needs structure Cluster8 lacks (a central stage) set it.
	DefaultTopology func() *topo.Topology
}

// Campaigns lists the named campaigns in CLI order.
func Campaigns() []Campaign {
	return []Campaign{
		{
			Name:        "link-cut",
			Description: "sever plane-A uplink wires; every affected message must fail over to plane B",
			Kinds:       []Kind{LinkCut},
			Rates:       []int{0, 1, 2, 4},
		},
		{
			Name:        "xbar-stuck",
			Description: "wedge plane-A crossbar output arbiters; circuits time out and fail over",
			Kinds:       []Kind{XbarStuck},
			Rates:       []int{0, 1, 2, 4},
		},
		{
			Name:        "flit-corrupt",
			Description: "garble bytes on plane-A wires; the NI's CRC catches it and the NACK path retries",
			Kinds:       []Kind{FlitCorrupt},
			Rates:       []int{0, 1, 2, 4},
		},
		{
			Name:        "ni-stall",
			Description: "wedge plane-A link interfaces; the driver abandons the FIFO and fails over",
			Kinds:       []Kind{NIStall},
			Rates:       []int{0, 1, 2, 4},
		},
		{
			Name:            "central-cut",
			Description:     "sever central-stage crossbar wires on plane A; one cut degrades the routes of a whole 16-node cluster (System256)",
			Kinds:           []Kind{CentralCut},
			Rates:           []int{0, 2, 4, 8},
			PerXbar:         true,
			DefaultTopology: topo.System256,
		},
		{
			Name:        "mixed",
			Description: "all fault classes on both planes; messages may fail when both planes are hit",
			Kinds:       []Kind{LinkCut, XbarStuck, FlitCorrupt, NIStall},
			Rates:       []int{0, 2, 4, 8},
			BothPlanes:  true,
		},
	}
}

// CampaignByName finds a campaign by its CLI key.
func CampaignByName(name string) (Campaign, bool) {
	for _, c := range Campaigns() {
		if c.Name == name {
			return c, true
		}
	}
	return Campaign{}, false
}

// Options configures a campaign run. The zero value is a full default
// run: seed 1, Cluster8, 400 messages of 256 bytes over 2 ms.
type Options struct {
	// Seed drives fault scheduling and traffic; zero means DefaultSeed.
	Seed int64
	// Topology is the interconnect under test; nil means topo.Cluster8().
	Topology *topo.Topology
	// Messages and PayloadBytes shape the traffic; zero means the
	// defaults above.
	Messages, PayloadBytes int
	// Window is the simulated span traffic spreads over; zero means
	// DefaultWindow.
	Window sim.Time
	// Trace, when non-nil, records the highest-rate row's run (network
	// sends, circuit holds, failover attempts) into the recorder — the
	// hook cmd/pmtrace uses to turn a campaign into a timeline.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives the highest-rate row's instrument
	// readings (send outcomes, latency and detection histograms,
	// arbitration waits; receive waits and runtime token stats for
	// application workloads) — the hook behind pmfault --metrics.
	Metrics *metrics.Registry
	// Engine selects the execution engine (pmfault --engine). psim.Seq,
	// the default, runs the sweep row by row on sequential event queues;
	// psim.Par gives every rate row its own psim shard and runs them
	// concurrently — rows share no mutable state, so the merged result
	// is byte-identical to the sequential run.
	Engine psim.Kind
	// Shards partitions application workloads that run over the
	// node-partitioned datapath (mpl.PWorld campaigns): under Engine ==
	// psim.Par each row's world spreads its nodes across this many psim
	// shards. Zero means 1. The partitioned determinism contract keeps
	// the result byte-identical at every aligned shard count, so Shards
	// changes wall-clock, never output.
	Shards int
}

func (o Options) resolved() Options {
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.Topology == nil {
		o.Topology = topo.Cluster8()
	}
	if o.Messages == 0 {
		o.Messages = DefaultMessages
	}
	if o.PayloadBytes == 0 {
		o.PayloadBytes = DefaultPayloadBytes
	}
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	return o
}

// Row is one line of the degradation table: the outcome of one traffic
// run under a fixed number of injected faults.
type Row struct {
	// Faults is the injected fault count.
	Faults int
	// Delivered, Retried and Failed partition the messages: Retried ⊆
	// Delivered arrived via plane-B failover; Failed found no plane.
	Delivered, Retried, Failed int
	// Skipped counts plane attempts short-circuited by the senders'
	// plane-down caches — each one traded a full detection window for a
	// cached status check.
	Skipped int
	// MeanLatency averages sender-observed latency over delivered
	// messages, detection and retry costs included.
	MeanLatency sim.Time
	// Inflation is MeanLatency over the fault-free row's mean.
	Inflation float64
}

// Result is one campaign's full outcome.
type Result struct {
	// Campaign is the spec that ran.
	Campaign Campaign
	// Options are the resolved run parameters.
	Options Options
	// Rows is the degradation table, one row per Rates entry.
	Rows []Row
	// Schedule is the highest-rate row's fault schedule, sorted by time.
	Schedule []Event
	// PlaneA and PlaneB are the highest-rate row's degraded-mode
	// counters.
	PlaneA, PlaneB stats.CounterSet
	// Xbars is the highest-rate row's per-crossbar breakdown (campaigns
	// with PerXbar set; nil otherwise).
	Xbars *stats.Table
}

// message is one unit of generated traffic.
type message struct {
	at       sim.Time
	src, dst int
}

// genTraffic spreads opt.Messages across the window with seeded jitter,
// random distinct endpoints, ascending in time. The stream depends only
// on the rng, so every degradation row sees identical traffic. (Named
// to keep the identifier free for the internal/traffic import.)
func genTraffic(t *topo.Topology, opt Options, rng *rand.Rand) []message {
	msgs := make([]message, 0, opt.Messages)
	spacing := opt.Window / sim.Time(opt.Messages)
	if spacing <= 0 {
		spacing = 1
	}
	for i := 0; i < opt.Messages; i++ {
		jitter := sim.Time(rng.Int63n(int64(spacing/faultSpanDiv) + 1))
		src := rng.Intn(t.Nodes())
		dst := rng.Intn(t.Nodes() - 1)
		if dst >= src {
			dst++
		}
		msgs = append(msgs, message{at: spacing*sim.Time(i) + jitter, src: src, dst: dst})
	}
	return msgs
}

// schedule draws count faults for the campaign from the rng: kind, plane,
// time in the window's first half, and a target that exists in the
// topology (a node's uplink, a wired output port of a plane's crossbar).
func schedule(c Campaign, t *topo.Topology, count int, window sim.Time, rng *rand.Rand) []Event {
	planes := t.CrossbarPlanes()
	// Crossbar ordinals per plane, ascending — deterministic target pools.
	// central holds the same split restricted to central-stage crossbars.
	var pool, central [2][]int
	isCentral := map[int]bool{}
	for _, xi := range t.CentralCrossbars() {
		isCentral[xi] = true
	}
	for xi, p := range planes {
		if p == topo.NetworkA || p == topo.NetworkB {
			pool[p] = append(pool[p], xi)
			if isCentral[xi] {
				central[p] = append(central[p], xi)
			}
		}
	}
	events := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		kind := c.Kinds[rng.Intn(len(c.Kinds))]
		plane := topo.NetworkA
		if c.BothPlanes && rng.Intn(2) == 1 {
			plane = topo.NetworkB
		}
		at := sim.Time(rng.Int63n(int64(window / faultSpanDiv)))
		e := Event{Kind: kind, At: at, Plane: plane}
		switch kind {
		case LinkCut:
			e.Node = rng.Intn(t.Nodes())
		case FlitCorrupt:
			e.Node = rng.Intn(t.Nodes())
			e.Until = at + window/corruptDiv
		case NIStall:
			e.Node = rng.Intn(t.Nodes())
			e.Until = at + window/corruptDiv
		case XbarStuck:
			if len(pool[plane]) == 0 {
				continue // no crossbar serves this plane; drop the event
			}
			e.Xbar = pool[plane][rng.Intn(len(pool[plane]))]
			wired := t.WiredPorts(e.Xbar)
			e.Out = wired[rng.Intn(len(wired))]
			e.Until = window * stuckOutlast
		case CentralCut:
			if len(central[plane]) == 0 {
				continue // no central stage on this plane; drop the event
			}
			e.Xbar = central[plane][rng.Intn(len(central[plane]))]
			wired := t.WiredPorts(e.Xbar)
			e.Out = wired[rng.Intn(len(wired))]
		}
		events = append(events, e)
	}
	return events
}

// rateOutcome is one degradation row's full result, produced by the
// row's event stream and read back only after its engine has drained —
// the assembly step is the single synchronization point between rows.
type rateOutcome struct {
	row      Row
	err      error
	schedule []Event
	planeA   stats.CounterSet
	planeB   stats.CounterSet
	xbars    *stats.Table
}

// runRate schedules one degradation row onto an event engine: a setup
// event at time zero builds the row's private machine (network,
// per-source transports, injector) and schedules every generated
// message at its send time, followed by a finalize event that closes
// the accounting. Everything the row's events touch — network, RNG
// streams, the outcome — is confined to the row, which is exactly what
// makes a row a valid psim shard: the parallel sweep runs one row per
// shard with no cross-shard events at all.
func runRate(c Campaign, opt Options, cfg netsim.FailoverConfig, rate int, observed bool, eng sim.Engine, out *rateOutcome) {
	eng.At(0, func() {
		net := netsim.New(opt.Topology)
		if observed {
			// Only the highest-rate (most interesting) row is observed; the
			// earlier sweep rows would bury it in identical fault-free
			// readings.
			if opt.Trace != nil {
				net.SetRecorder(opt.Trace)
			}
			if opt.Metrics != nil {
				net.SetMetrics(opt.Metrics)
			}
		}
		tps := make([]*netsim.Transport, opt.Topology.Nodes())
		for i := range tps {
			tps[i] = net.MustTransport(i, cfg)
		}
		msgs := genTraffic(opt.Topology, opt, rand.New(rand.NewSource(opt.Seed)))
		events := schedule(c, opt.Topology, rate,
			opt.Window, rand.New(rand.NewSource(opt.Seed+faultSeedStride*int64(rate))))
		inj := NewInjector(net, events)
		//pmlint:allow sharedstate row-confined: every handler writing out runs on this row's own shard
		out.row = Row{Faults: rate}
		var latSum sim.Time
		var last sim.Time
		for _, m := range msgs {
			m := m
			if m.at > last {
				last = m.at
			}
			eng.At(m.at, func() {
				if out.err != nil {
					return
				}
				inj.ApplyUntil(m.at)
				d, err := tps[m.src].Send(m.at, m.dst, opt.PayloadBytes)
				if err != nil {
					out.err = fmt.Errorf("fault: campaign %q: %w", c.Name, err)
					return
				}
				out.row.Skipped += d.SkippedDown
				switch {
				case d.Failed:
					out.row.Failed++
				default:
					out.row.Delivered++
					//pmlint:allow sharedstate row-confined: send and finalize handlers share this row's shard
					latSum += d.Latency()
					if d.Retried {
						out.row.Retried++
					}
				}
			})
		}
		// Finalize shares the last message's time; the (time, seq) order
		// runs it after every send.
		eng.At(last, func() {
			if out.row.Delivered > 0 {
				out.row.MeanLatency = latSum / sim.Time(out.row.Delivered)
			}
			out.schedule = inj.Events()
			out.planeA = net.PlaneCounterSet(topo.NetworkA)
			out.planeB = net.PlaneCounterSet(topo.NetworkB)
			if c.PerXbar {
				out.xbars = xbarTable(net, opt.Topology)
			}
			if observed && opt.Metrics != nil {
				publishDispatchOccupancy(opt.Metrics, net.Plane(topo.NetworkA).Delivered+net.Plane(topo.NetworkB).Delivered)
			}
		})
	})
}

// Run executes the campaign: for each fault count in the sweep it builds
// a fresh network over the topology, generates the (rate-independent)
// traffic and a (rate-dependent) fault schedule from the seed, posts
// every message through a per-source Transport (failover protocol plus
// plane-down cache) with faults applied in time order, and collects a
// degradation row. Under Options.Engine == psim.Par the rows run
// concurrently, one psim shard each. Deterministic either way: same
// spec and options, byte-identical Result.
func Run(c Campaign, opt Options) (*Result, error) {
	if opt.Topology == nil && c.DefaultTopology != nil {
		opt.Topology = c.DefaultTopology()
	}
	opt = opt.resolved()
	if len(c.Rates) == 0 || len(c.Kinds) == 0 {
		return nil, fmt.Errorf("fault: campaign %q has no rates or kinds", c.Name)
	}
	res := &Result{Campaign: c, Options: opt}
	cfg := netsim.DefaultFailover()
	outs := make([]rateOutcome, len(c.Rates))
	if opt.Engine == psim.Par {
		// One shard per rate row, unbounded window: the rows exchange no
		// events, so the whole sweep is a single barrier-free round.
		eng := psim.NewEngine(len(c.Rates), 0)
		for i, rate := range c.Rates {
			runRate(c, opt, cfg, rate, i == len(c.Rates)-1, eng.Shard(i), &outs[i])
		}
		eng.Run()
	} else {
		for i, rate := range c.Rates {
			sch := sim.NewScheduler()
			runRate(c, opt, cfg, rate, i == len(c.Rates)-1, sch, &outs[i])
			sch.Run()
		}
	}
	// Assemble in sweep order. Inflation replicates the sequential
	// incremental semantics exactly: the baseline is looked up against
	// the rows assembled so far, so the 0-rate row itself takes the
	// Inflation=1 branch.
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		row := outs[i].row
		if base := res.baseline(); base > 0 && row.MeanLatency > 0 {
			row.Inflation = float64(row.MeanLatency) / float64(base)
		} else if row.Faults == 0 {
			row.Inflation = 1
		}
		res.Rows = append(res.Rows, row)
	}
	// The sweep's last (highest-rate) run provides the detailed view.
	last := &outs[len(outs)-1]
	res.Schedule = last.schedule
	res.PlaneA = last.planeA
	res.PlaneB = last.planeB
	res.Xbars = last.xbars
	return res, nil
}

// xbarTable builds the per-crossbar breakdown of one run: every crossbar
// that saw activity, with its plane and opened/blocked/stuck counters.
func xbarTable(net *netsim.Network, t *topo.Topology) *stats.Table {
	planes := t.CrossbarPlanes()
	tbl := &stats.Table{
		Title:   "per-crossbar breakdown (highest-rate row)",
		Columns: []string{"xbar", "name", "plane", "opened", "blocked", "stuck"},
	}
	for i := 0; i < t.Crossbars(); i++ {
		st := net.Crossbar(i).Stats()
		if st.Opened == 0 && st.Blocked == 0 && st.Stuck == 0 {
			continue
		}
		plane := "-"
		switch planes[i] {
		case topo.NetworkA:
			plane = "A"
		case topo.NetworkB:
			plane = "B"
		}
		tbl.AddRow(
			fmt.Sprintf("%d", i),
			t.CrossbarName(i),
			plane,
			fmt.Sprintf("%d", st.Opened),
			fmt.Sprintf("%d", st.Blocked),
			fmt.Sprintf("%d", st.Stuck),
		)
	}
	return tbl
}

// baseline returns the fault-free mean latency once its row exists.
func (r *Result) baseline() sim.Time {
	for _, row := range r.Rows {
		if row.Faults == 0 {
			return row.MeanLatency
		}
	}
	return 0
}

// Table renders the degradation table.
func (r *Result) Table() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("degradation — %s", r.Campaign.Name),
		Columns: []string{"faults", "delivered", "retried", "skipped", "failed", "mean-lat-us", "inflation"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Faults),
			fmt.Sprintf("%d", row.Delivered),
			fmt.Sprintf("%d", row.Retried),
			fmt.Sprintf("%d", row.Skipped),
			fmt.Sprintf("%d", row.Failed),
			fmt.Sprintf("%.3f", row.MeanLatency.Seconds()*1e6),
			fmt.Sprintf("%.3f", row.Inflation),
		)
	}
	return t
}

// Render produces the campaign's full deterministic text block: header,
// degradation table, the highest-rate fault schedule, and per-plane
// degraded-mode counters.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### campaign %s — %s\n", r.Campaign.Name, r.Campaign.Description)
	fmt.Fprintf(&b, "topology %s, seed %d, %d messages x %d B over %v\n\n",
		r.Options.Topology.Name(), r.Options.Seed, r.Options.Messages,
		r.Options.PayloadBytes, r.Options.Window)
	b.WriteString(r.Table().Render())
	fmt.Fprintf(&b, "\nfault schedule at %d faults:\n", r.Rows[len(r.Rows)-1].Faults)
	if len(r.Schedule) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, e := range r.Schedule {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	b.WriteByte('\n')
	b.WriteString(r.PlaneA.Render())
	b.WriteString(r.PlaneB.Render())
	if r.Xbars != nil {
		b.WriteByte('\n')
		b.WriteString(r.Xbars.Render())
	}
	return b.String()
}
