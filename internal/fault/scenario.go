// Single-run fault scenarios: the campaign fault schedules exposed for
// one observed run instead of a rate ladder. cmd/pmstat uses this to
// put a deterministic mid-run link-cut scenario under the windowed
// telemetry views — the "when did the burn start" story needs one run
// with a known fault schedule, not a sweep.
package fault

import (
	"math/rand"

	"powermanna/internal/netsim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// ApplyTrafficScenario draws the traffic campaign's plane-A fault
// schedule for the given count — node uplink cuts alternating with
// central-stage wire cuts, times in the first half of the horizon —
// applies it to the network up front (sound on the partitioned
// datapath: every fault reduces to time-parameterized CutWire) and
// returns the applied events for display. The schedule is the same
// pure function of (seed, count, topology, horizon) RunTraffic uses
// for its ladder rows, so a pmstat scenario run is the windowed view
// of the matching pmfault --traffic row.
func ApplyTrafficScenario(net *netsim.Network, t *topo.Topology, count int, horizon sim.Time, seed int64) []Event {
	events := trafficSchedule(t, count, horizon,
		rand.New(rand.NewSource(seed+faultSeedStride*int64(count))))
	inj := NewInjector(net, events)
	var lastAt sim.Time
	for _, e := range inj.Events() {
		lastAt = e.At
	}
	inj.ApplyUntil(lastAt)
	return inj.Events()
}
