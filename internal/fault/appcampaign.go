// Application fault campaigns: real workloads over the message-passing
// layer while the interconnect degrades underneath them.
//
// The synthetic campaigns (campaign.go) measure the failover protocol on
// a generated message stream; these campaigns answer the system-level
// question the paper's duplicated network poses: what happens to an
// actual application — the heat solver's halo exchanges, a collective's
// butterfly — when plane-A uplinks die mid-run? The message-passing
// workloads run SPMD-style over the node-partitioned datapath
// (mpl.PWorld), whose split-phase sends cross psim shards through
// mailboxes; severed plane-A wires push traffic onto plane B. EARTH
// workloads keep the legacy single-heap path and additionally contend
// with the background operating-system stream (netsim's OS stream, per
// Section 4's software separation; partitioned rows carry none — see
// AppCampaign.PartWorkload). The table reports makespan inflation
// instead of per-message latency, because for an application that is
// the number that matters.
//
// App campaigns inject only LinkCut faults, applied to the network up
// front: a cut wire's state is parameterized by time (dead from At
// onward), so applying it early changes nothing — unlike XbarStuck,
// which acquires resource timelines and must be applied in simulated
// order. That keeps the injection sound even though the workload's send
// times are not known in advance. Fault times are drawn from the first
// half of the fault-free makespan, so post-fault traffic exists to feel
// the degradation; the rate-0 row therefore always runs first.
package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"powermanna/internal/earth"
	"powermanna/internal/heat"
	"powermanna/internal/metrics"
	"powermanna/internal/mpl"
	"powermanna/internal/netsim"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
)

// Workload shapes for the app campaigns: small enough to sweep quickly,
// large enough that every rank sends on every step.
const (
	// heatCellsPerRank sizes the heat solver's domain per rank.
	heatCellsPerRank = 24
	// heatSteps is the heat solver's step count (crosses one residual
	// reduction at the default ReduceEvery of 50).
	heatSteps = 60
	// allreduceRounds is the collective campaign's round count.
	allreduceRounds = 30
	// fibN is the EARTH campaign's Fibonacci argument: deep enough that
	// the fiber tree spreads across the cluster.
	fibN = 16
)

// AppCampaign is a named application-level fault experiment: a workload
// over the message-passing layer and a sweep of plane-A link-cut counts.
type AppCampaign struct {
	// Name is the CLI key (pmfault --campaign <name>).
	Name string
	// Description says what the campaign demonstrates.
	Description string
	// Rates is the fault-count sweep; the leading 0 row sizes the fault
	// window and the inflation baseline.
	Rates []int
	// Workload runs the application over a fresh world and returns its
	// makespan. It must also verify the computation's result — a fault
	// campaign that silently returns wrong numbers proves nothing.
	Workload func(w *mpl.World) (sim.Time, error)
	// PartWorkload runs the application over the node-partitioned
	// datapath (mpl.PWorld) instead of the legacy virtual-time world:
	// rank goroutines, split-phase sends through psim mailboxes, and —
	// under Options.Shards > 1 with the parallel engine — real
	// single-workload parallelism. Output is byte-identical at every
	// aligned shard count. Partitioned rows carry no background OS
	// stream (the lazy injector needs the global send order the
	// partitioned path dissolves), so their os-msgs column reads 0.
	PartWorkload func(w *mpl.PWorld) (sim.Time, error)
	// EarthWorkload runs an EARTH-runtime program instead of a
	// message-passing one; exactly one of Workload, PartWorkload and
	// EarthWorkload is set. Like Workload it must verify its result, and
	// it must surface a lost token as an error (System.Err), never a
	// panic.
	EarthWorkload func(s *earth.System) (sim.Time, error)
}

// AppCampaigns lists the application campaigns in CLI order.
func AppCampaigns() []AppCampaign {
	return []AppCampaign{
		{
			Name:         "heat-linkcut",
			Description:  "run the 1D heat solver over the partitioned datapath while plane-A uplinks die; halo traffic fails over to plane B",
			Rates:        []int{0, 1, 2, 4},
			PartWorkload: heatWorkload,
		},
		{
			Name:         "allreduce-linkcut",
			Description:  "sweep AllReduce rounds over the partitioned datapath while plane-A uplinks die; the butterfly's edges fail over to plane B",
			Rates:        []int{0, 1, 2, 4},
			PartWorkload: allreduceWorkload,
		},
		{
			Name:          "fib-linkcut",
			Description:   "run the EARTH fib fiber tree while plane-A uplinks die; control tokens fail over, and a token lost on both planes degrades to an error",
			Rates:         []int{0, 1, 2, 4},
			EarthWorkload: fibWorkload,
		},
	}
}

// AppCampaignByName finds an application campaign by its CLI key.
func AppCampaignByName(name string) (AppCampaign, bool) {
	for _, c := range AppCampaigns() {
		if c.Name == name {
			return c, true
		}
	}
	return AppCampaign{}, false
}

// heatWorkload solves the 1D heat equation SPMD-style over the
// partitioned world and checks the field bit-identically against the
// serial reference — delivery over a degraded network must not change
// the arithmetic.
func heatWorkload(pw *mpl.PWorld) (sim.Time, error) {
	cfg := heat.DefaultConfig(heatCellsPerRank*pw.Ranks(), heatSteps)
	res, err := heat.RunPart(pw, cfg)
	if err != nil {
		return 0, err
	}
	want, err := heat.RunSerial(cfg)
	if err != nil {
		return 0, err
	}
	for i := range want {
		if res.Field[i] != want[i] {
			return 0, fmt.Errorf("fault: heat field diverges from serial at cell %d", i)
		}
	}
	return res.Makespan, nil
}

// allreduceWorkload sweeps AllReduce rounds with per-rank contributions
// whose global sums are known in closed form, verifying each round on
// every rank.
func allreduceWorkload(pw *mpl.PWorld) (sim.Time, error) {
	p := pw.Ranks()
	wantA := float64(p) * float64(p+1) / 2
	err := pw.Run(func(r *mpl.PRank) error {
		for round := 0; round < allreduceRounds; round++ {
			contrib := []float64{float64(r.Rank() + 1), float64(round) * float64(r.Rank()+1)}
			got, err := r.AllReduce(contrib, round)
			if err != nil {
				return err
			}
			wantB := float64(round) * wantA
			if len(got) != 2 || got[0] != wantA || got[1] != wantB {
				return fmt.Errorf("fault: allreduce round %d = %v, want [%v %v]", round, got, wantA, wantB)
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return pw.MaxTime(), nil
}

// fibWorkload runs the EARTH Fibonacci fiber tree and verifies the
// result against the closed-form reference. A token lost on both planes
// surfaces as RunFib's error — the graceful-degradation path that lets
// this workload run under link-cut sweeps at all.
func fibWorkload(s *earth.System) (sim.Time, error) {
	v, makespan, err := earth.RunFib(s, fibN)
	if err != nil {
		return 0, err
	}
	if want := earth.FibReference(fibN); v != want {
		return 0, fmt.Errorf("fault: fib(%d) = %d, want %d", fibN, v, want)
	}
	return makespan, nil
}

// AppRow is one line of the application degradation table.
type AppRow struct {
	// Faults is the injected plane-A link-cut count.
	Faults int
	// Makespan is the workload's completion time under those faults.
	Makespan sim.Time
	// Inflation is Makespan over the fault-free row's makespan.
	Inflation float64
	// FailedOver counts plane-A attempts abandoned to plane B.
	FailedOver int64
	// Skipped counts plane attempts short-circuited by the senders'
	// plane-down caches — the cached-fast-path replacing full detection
	// windows after the first failure.
	Skipped int64
	// OSMessages counts background OS-stream messages the application's
	// failover traffic contended with on plane B.
	OSMessages int64
}

// AppResult is one application campaign's full outcome.
type AppResult struct {
	// Campaign is the spec that ran.
	Campaign AppCampaign
	// Options are the resolved run parameters (only Seed and Topology
	// apply to app campaigns; traffic shape comes from the workload).
	Options Options
	// Rows is the degradation table, one row per Rates entry.
	Rows []AppRow
	// Schedule is the highest-rate row's fault schedule, sorted by time.
	Schedule []Event
	// PlaneA and PlaneB are the highest-rate row's degraded-mode
	// counters.
	PlaneA, PlaneB stats.CounterSet
}

// appOutcome is one application row's full result, written by the
// row's event stream and read back only after its engine has drained.
type appOutcome struct {
	row      AppRow
	err      error
	schedule []Event
	planeA   stats.CounterSet
	planeB   stats.CounterSet
}

// runAppRate schedules one application row onto an event engine: a
// single setup event builds the workload's runtime over a fresh
// fault-aware network, applies the seeded link-cut schedule up front,
// runs the workload and closes the accounting. EARTH workloads take
// the row's engine as their own event queue (earth.NewWithEngine), so
// under the parallel sweep the runtime's events live on the row's
// shard heap; message-passing workloads advance rank clocks directly
// and use the engine only as the row's execution slot. Partitioned
// workloads own a nested psim engine (the PWorld's shards), so their
// rows must run on a plain scheduler — RunApp keeps them off the
// parallel-row path and lets the PWorld supply the parallelism.
func runAppRate(c AppCampaign, opt Options, rate int, observed bool, baseline sim.Time, eng sim.Engine, out *appOutcome) {
	eng.At(0, func() {
		var runW func() (sim.Time, error)
		var net *netsim.Network
		var setMetrics func(*metrics.Registry)
		var setRecorder func()
		plane := func(p int) netsim.PlaneCounters { return net.Plane(p) }
		counters := func(p int) stats.CounterSet { return net.PlaneCounterSet(p) }
		osStream := true
		switch {
		case c.EarthWorkload != nil:
			s := earth.NewWithEngine(opt.Topology, earth.DefaultParams(), netsim.DefaultFailover(), eng)
			net = s.Network()
			runW = func() (sim.Time, error) { return c.EarthWorkload(s) }
			// EARTH workloads attach through the runtime so the earth.*
			// instruments come along with the network's.
			setMetrics = func(m *metrics.Registry) { s.SetMetrics(m) }
			setRecorder = func() { net.SetRecorder(opt.Trace) }
		case c.PartWorkload != nil:
			shards := 1
			if opt.Engine == psim.Par {
				shards = opt.Shards
			}
			pw, err := mpl.NewPWorldWith(opt.Topology, shards, netsim.DefaultFailover())
			if err != nil {
				out.err = fmt.Errorf("fault: app campaign %q at rate %d: %w", c.Name, rate, err)
				return
			}
			// The injector cuts wires on the underlying network; the
			// partitioned datapath reads the same wire state, so LinkCut
			// schedules apply unchanged. Delivery accounting, however,
			// lives in the PartNetwork's folded per-shard counters.
			net = pw.Network()
			pn := pw.PartNetwork()
			runW = func() (sim.Time, error) { return c.PartWorkload(pw) }
			setMetrics = func(m *metrics.Registry) { pw.SetMetrics(m) }
			setRecorder = func() { pw.SetRecorder(opt.Trace) }
			plane = func(p int) netsim.PlaneCounters { return pn.Plane(p) }
			counters = func(p int) stats.CounterSet { return pn.PlaneCounterSet(p) }
			// No background OS stream: the lazy injector needs the global
			// send order, which the partitioned split-phase path dissolves.
			osStream = false
		default:
			w := mpl.NewWorldWith(opt.Topology, netsim.DefaultFailover())
			net = w.Network()
			runW = func() (sim.Time, error) { return c.Workload(w) }
			// Message-passing workloads attach through the world so the
			// mpl.* receive-wait view comes along with the network's.
			setMetrics = func(m *metrics.Registry) { w.SetMetrics(m) }
			setRecorder = func() { net.SetRecorder(opt.Trace) }
		}
		if osStream {
			net.AttachOSStream(netsim.DefaultOSStream())
		}
		if observed {
			if opt.Trace != nil {
				setRecorder()
			}
			if opt.Metrics != nil {
				setMetrics(opt.Metrics)
			}
		}
		var events []Event
		if rate > 0 {
			rng := rand.New(rand.NewSource(opt.Seed + faultSeedStride*int64(rate)))
			span := int64(baseline / faultSpanDiv)
			if span < 1 {
				span = 1
			}
			for i := 0; i < rate; i++ {
				events = append(events, Event{
					Kind:  LinkCut,
					At:    sim.Time(rng.Int63n(span)),
					Plane: topo.NetworkA,
					Node:  rng.Intn(opt.Topology.Nodes()),
				})
			}
		}
		inj := NewInjector(net, events)
		// Apply the whole schedule before the run: sound for LinkCut
		// (see the package comment), and the only option when the
		// workload, not the campaign, decides the send times.
		var last sim.Time
		for _, e := range inj.Events() {
			last = e.At
		}
		inj.ApplyUntil(last)
		makespan, err := runW()
		if err != nil {
			out.err = fmt.Errorf("fault: app campaign %q at rate %d: %w", c.Name, rate, err)
			return
		}
		pa, pb := plane(topo.NetworkA), plane(topo.NetworkB)
		out.row = AppRow{
			Faults:     rate,
			Makespan:   makespan,
			Inflation:  1,
			FailedOver: pa.FailedOver + pb.FailedOver,
			Skipped:    pa.SkippedDown + pb.SkippedDown,
			OSMessages: pb.OSMessages,
		}
		if rate > 0 && baseline > 0 {
			out.row.Inflation = float64(makespan) / float64(baseline)
		}
		out.schedule = inj.Events()
		out.planeA = counters(topo.NetworkA)
		out.planeB = counters(topo.NetworkB)
		if observed && opt.Metrics != nil {
			publishDispatchOccupancy(opt.Metrics, pa.Delivered+pb.Delivered)
		}
	})
}

// RunApp executes the application campaign: for each fault count it
// builds a fresh world, applies a seeded plane-A link-cut schedule up
// front, runs the workload, and collects a makespan row. The 0-rate
// row always runs first and alone — its makespan sizes the fault
// window every later row draws from; under Options.Engine == psim.Par
// the remaining rows then run concurrently, one psim shard each —
// except for partitioned workloads, whose rows always run
// sequentially because each row's PWorld owns its own psim engine
// (Options.Shards wide) and supplies the parallelism itself.
// Deterministic either way: same spec and options, byte-identical
// AppResult.
func RunApp(c AppCampaign, opt Options) (*AppResult, error) {
	opt = opt.resolved()
	if len(c.Rates) == 0 || c.Rates[0] != 0 {
		return nil, fmt.Errorf("fault: app campaign %q must lead with a 0 rate (it sizes the fault window)", c.Name)
	}
	res := &AppResult{Campaign: c, Options: opt}
	outs := make([]appOutcome, len(c.Rates))

	sch := sim.NewScheduler()
	runAppRate(c, opt, 0, len(c.Rates) == 1, 0, sch, &outs[0])
	sch.Run()
	if outs[0].err != nil {
		return nil, outs[0].err
	}
	baseline := outs[0].row.Makespan

	rest := c.Rates[1:]
	if opt.Engine == psim.Par && len(rest) > 0 && c.PartWorkload == nil {
		eng := psim.NewEngine(len(rest), 0)
		for i, rate := range rest {
			runAppRate(c, opt, rate, i == len(rest)-1, baseline, eng.Shard(i), &outs[i+1])
		}
		eng.Run()
	} else {
		for i, rate := range rest {
			sch := sim.NewScheduler()
			runAppRate(c, opt, rate, i == len(rest)-1, baseline, sch, &outs[i+1])
			sch.Run()
		}
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		res.Rows = append(res.Rows, outs[i].row)
	}
	// The sweep's last (highest-rate) run provides the detailed view.
	last := &outs[len(outs)-1]
	res.Schedule = last.schedule
	res.PlaneA = last.planeA
	res.PlaneB = last.planeB
	return res, nil
}

// Table renders the application degradation table.
func (r *AppResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("degradation — %s", r.Campaign.Name),
		Columns: []string{"faults", "makespan-us", "inflation", "failed-over", "skipped", "os-msgs"},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Faults),
			fmt.Sprintf("%.3f", row.Makespan.Seconds()*1e6),
			fmt.Sprintf("%.3f", row.Inflation),
			fmt.Sprintf("%d", row.FailedOver),
			fmt.Sprintf("%d", row.Skipped),
			fmt.Sprintf("%d", row.OSMessages),
		)
	}
	return t
}

// Render produces the campaign's full deterministic text block: header,
// makespan table, the highest-rate fault schedule, and per-plane
// degraded-mode counters.
func (r *AppResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### campaign %s — %s\n", r.Campaign.Name, r.Campaign.Description)
	workload := "application workload with plane-B OS stream"
	if r.Campaign.PartWorkload != nil {
		workload = "partitioned application workload, no OS stream"
	}
	fmt.Fprintf(&b, "topology %s, seed %d, %s\n\n",
		r.Options.Topology.Name(), r.Options.Seed, workload)
	b.WriteString(r.Table().Render())
	fmt.Fprintf(&b, "\nfault schedule at %d faults:\n", r.Rows[len(r.Rows)-1].Faults)
	if len(r.Schedule) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, e := range r.Schedule {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	b.WriteByte('\n')
	b.WriteString(r.PlaneA.Render())
	b.WriteString(r.PlaneB.Render())
	return b.String()
}
