package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powermanna/internal/netsim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// TestCampaignDeterminism is the campaign half of the determinism
// contract: a campaign is a pure function of (spec, Options). The same
// seed must render byte-identically; a different seed must not.
func TestCampaignDeterminism(t *testing.T) {
	for _, c := range Campaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			a, err := Run(c, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(c, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if a.Render() != b.Render() {
				t.Fatal("same seed rendered differently")
			}
			d, err := Run(c, Options{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if a.Render() == d.Render() {
				t.Fatal("seeds 1 and 2 rendered identically")
			}
		})
	}
}

// TestGoldenTable pins the default link-cut campaign against the same
// golden file ci.sh compares cmd/pmfault stdout to — cmd/pmfault prints
// exactly Result.Render(), so drift is caught by `go test` alone.
func TestGoldenTable(t *testing.T) {
	golden := filepath.Join("..", "..", "testdata", "pmfault_link-cut_seed1.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: go run ./cmd/pmfault --campaign link-cut --seed 1 > %s)", err, golden)
	}
	c, _ := CampaignByName("link-cut")
	r, err := Run(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Render(); got != string(want) {
		t.Errorf("campaign output diverged from %s;\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestSinglePlaneCampaignsNeverLoseMessages checks the redundancy claim
// the campaigns exist to reproduce (Section 4): while plane B is healthy,
// every message completes — faults convert deliveries into failovers,
// never into losses — and nonzero fault rates actually exercise plane B.
func TestSinglePlaneCampaignsNeverLoseMessages(t *testing.T) {
	for _, c := range Campaigns() {
		if c.BothPlanes {
			continue
		}
		c := c
		t.Run(c.Name, func(t *testing.T) {
			r, err := Run(c, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			sawRetry := false
			for _, row := range r.Rows {
				if row.Failed != 0 {
					t.Errorf("rate %d: %d messages lost with plane B healthy", row.Faults, row.Failed)
				}
				if row.Delivered+row.Failed != r.Options.Messages {
					t.Errorf("rate %d: %d+%d messages, want %d", row.Faults, row.Delivered, row.Failed, r.Options.Messages)
				}
				if row.Faults == 0 && row.Retried != 0 {
					t.Errorf("fault-free row retried %d messages", row.Retried)
				}
				if row.Faults > 0 && row.Retried > 0 {
					sawRetry = true
				}
			}
			if !sawRetry {
				t.Error("no row exercised plane-B failover")
			}
			if r.PlaneB.Get("delivered") == 0 {
				t.Error("plane B delivered nothing at the highest rate")
			}
		})
	}
}

func TestLatencyInflationMonotoneForLinkCut(t *testing.T) {
	c, _ := CampaignByName("link-cut")
	r, err := Run(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Inflation < r.Rows[i-1].Inflation {
			t.Errorf("inflation not monotone: row %d = %.3f after %.3f",
				i, r.Rows[i].Inflation, r.Rows[i-1].Inflation)
		}
	}
	if r.Rows[0].Inflation != 1 {
		t.Errorf("baseline inflation = %.3f, want 1", r.Rows[0].Inflation)
	}
}

// TestAppCampaignDeterminism extends the campaign determinism contract
// to the application campaigns: same seed, byte-identical render;
// different seed, different fault schedule.
func TestAppCampaignDeterminism(t *testing.T) {
	for _, c := range AppCampaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			a, err := RunApp(c, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunApp(c, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if a.Render() != b.Render() {
				t.Fatal("same seed rendered differently")
			}
			d, err := RunApp(c, Options{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if a.Render() == d.Render() {
				t.Fatal("seeds 1 and 2 rendered identically")
			}
		})
	}
}

// TestAppCampaignDegradation checks the shape the app campaigns exist to
// show: a clean baseline, growing makespan inflation under faults, the
// plane-down caches short-circuiting most of the failover overhead, and
// plane-B contention with the OS stream actually present.
func TestAppCampaignDegradation(t *testing.T) {
	for _, c := range AppCampaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			r, err := RunApp(c, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			base := r.Rows[0]
			if base.Faults != 0 || base.Inflation != 1 || base.FailedOver != 0 || base.Skipped != 0 {
				t.Errorf("baseline row = %+v, want fault-free", base)
			}
			last := r.Rows[len(r.Rows)-1]
			if c.EarthWorkload == nil {
				// Message-passing workloads block on every receive, so
				// detection windows land on the critical path.
				if last.Inflation <= 1 {
					t.Errorf("highest rate inflation = %.3f, want > 1", last.Inflation)
				}
			} else if last.Inflation < 1 {
				// EARTH's split-phase tokens overlap communication with the
				// EU's fiber backlog: failover windows are absorbed off the
				// critical path, so the makespan may not inflate at all —
				// the latency-tolerance property of [18]. The failover
				// counters below still prove the faults were felt.
				t.Errorf("highest rate inflation = %.3f, below baseline", last.Inflation)
			}
			for i, row := range r.Rows {
				if row.Inflation < 1 {
					t.Errorf("row %d inflation = %.3f, below baseline", i, row.Inflation)
				}
				if row.Faults > 0 && row.FailedOver == 0 {
					t.Errorf("row %d: faults injected but nothing failed over", i)
				}
				if c.PartWorkload != nil {
					// Partitioned rows carry no background OS stream (the
					// lazy injector needs the global send order).
					if row.OSMessages != 0 {
						t.Errorf("row %d: partitioned row reports %d OS messages", i, row.OSMessages)
					}
				} else if row.OSMessages == 0 {
					t.Errorf("row %d: OS stream injected nothing", i)
				}
			}
			// The cache is what bends the curve: after the first detection
			// per (sender, plane), messages skip the dead plane at the
			// cached status-check cost, so cached skips must far outnumber
			// full detection windows.
			if last.Skipped <= last.FailedOver {
				t.Errorf("skipped %d vs failed-over %d: plane-down cache not carrying the load",
					last.Skipped, last.FailedOver)
			}
		})
	}
}

// TestAppCampaignGolden pins heat-linkcut at seed 1 against the golden
// ci.sh compares cmd/pmfault stdout to.
func TestAppCampaignGolden(t *testing.T) {
	golden := filepath.Join("..", "..", "testdata", "pmfault_heat-linkcut_seed1.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: go run ./cmd/pmfault --campaign heat-linkcut --seed 1 > %s)", err, golden)
	}
	c, _ := AppCampaignByName("heat-linkcut")
	r, err := RunApp(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Render(); got != string(want) {
		t.Errorf("campaign output diverged from %s;\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestAppCampaignValidation pins the rate-0-first requirement and name
// resolution.
func TestAppCampaignValidation(t *testing.T) {
	bad := AppCampaign{Name: "bad", Rates: []int{1}, PartWorkload: allreduceWorkload}
	if _, err := RunApp(bad, Options{Seed: 1}); err == nil {
		t.Error("campaign without a leading 0 rate accepted")
	}
	if _, ok := AppCampaignByName("no-such-campaign"); ok {
		t.Error("unknown app campaign resolved")
	}
	for _, c := range AppCampaigns() {
		got, ok := AppCampaignByName(c.Name)
		if !ok || got.Name != c.Name {
			t.Errorf("AppCampaignByName(%q) failed", c.Name)
		}
	}
}

func TestInjectorAppliesInTimeOrder(t *testing.T) {
	net := netsim.New(topo.Cluster8())
	events := []Event{
		{Kind: LinkCut, At: 30 * sim.Microsecond, Plane: topo.NetworkA, Node: 1},
		{Kind: LinkCut, At: 10 * sim.Microsecond, Plane: topo.NetworkA, Node: 0},
		{Kind: NIStall, At: 20 * sim.Microsecond, Until: 25 * sim.Microsecond, Plane: topo.NetworkA, Node: 2},
	}
	inj := NewInjector(net, events)
	if inj.Pending() != 3 {
		t.Fatalf("Pending = %d", inj.Pending())
	}
	if got := inj.Events()[0].Node; got != 0 {
		t.Errorf("schedule not sorted by time: first event node %d", got)
	}
	if fired := inj.ApplyUntil(15 * sim.Microsecond); fired != 1 {
		t.Errorf("ApplyUntil(15us) fired %d, want 1", fired)
	}
	// Node 0's uplink is now cut; node 1's is not yet.
	d, err := net.SendReliable(16*sim.Microsecond, 0, 3, 64, netsim.DefaultFailover())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Retried {
		t.Error("applied cut had no effect")
	}
	d, err = net.SendReliable(17*sim.Microsecond, 1, 3, 64, netsim.DefaultFailover())
	if err != nil {
		t.Fatal(err)
	}
	if d.Retried {
		t.Error("unapplied future cut already in effect")
	}
	if fired := inj.ApplyUntil(1 * sim.Millisecond); fired != 2 {
		t.Errorf("second ApplyUntil fired %d, want 2", fired)
	}
	if inj.Pending() != 0 {
		t.Errorf("Pending = %d after full apply", inj.Pending())
	}
}

func TestScheduleTargetsRightPlane(t *testing.T) {
	c, _ := CampaignByName("xbar-stuck")
	tp := topo.System256()
	planes := tp.CrossbarPlanes()
	r, err := Run(c, Options{Seed: 1, Topology: tp, Messages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Schedule) == 0 {
		t.Fatal("empty schedule at highest rate")
	}
	for _, e := range r.Schedule {
		if e.Kind != XbarStuck {
			t.Fatalf("wrong kind scheduled: %v", e)
		}
		if e.Plane != topo.NetworkA {
			t.Errorf("single-plane campaign scheduled plane %d", e.Plane)
		}
		if planes[e.Xbar] != topo.NetworkA {
			t.Errorf("plane-A fault aimed at crossbar %s on plane %d",
				tp.CrossbarName(e.Xbar), planes[e.Xbar])
		}
	}
}

func TestMixedCampaignOnSystem256(t *testing.T) {
	c, _ := CampaignByName("mixed")
	r, err := Run(c, Options{Seed: 1, Topology: topo.System256(), Messages: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Delivered+row.Failed != 128 {
			t.Errorf("rate %d: messages unaccounted: %+v", row.Faults, row)
		}
	}
}

func TestCampaignByName(t *testing.T) {
	if _, ok := CampaignByName("no-such-campaign"); ok {
		t.Error("unknown campaign resolved")
	}
	for _, c := range Campaigns() {
		got, ok := CampaignByName(c.Name)
		if !ok || got.Name != c.Name {
			t.Errorf("CampaignByName(%q) = %v, %v", c.Name, got.Name, ok)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{LinkCut: "link-cut", XbarStuck: "xbar-stuck", FlitCorrupt: "flit-corrupt", NIStall: "ni-stall"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind string unhelpful")
	}
}
