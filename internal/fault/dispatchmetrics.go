package fault

import (
	"powermanna/internal/dispatch"
	"powermanna/internal/metrics"
)

// publishDispatchOccupancy replays the metrics row's delivered traffic
// through the reference dispatcher (internal/dispatch) and publishes its
// tenure-occupancy gauges. The campaign's network models stop at the NI;
// inside the node, every delivered message is absorbed by a coherent
// read of the landed line over the MPC620 bus (the NI masters the
// transfer, the CPU snoops), so the replay submits one Read per
// delivered message, alternating the node's two masters. The replay is
// a pure function of the delivery count — deterministic, and it touches
// no network state, so the netsim instruments and goldens are unchanged.
func publishDispatchOccupancy(m *metrics.Registry, delivered int64) {
	if m == nil || delivered == 0 {
		return
	}
	cfg := dispatch.DefaultConfig()
	d := dispatch.New(cfg, nil)
	const lineBytes = 64
	for i := int64(0); i < delivered; i++ {
		d.Submit(int(i)%cfg.Masters, dispatch.Read, uint64(i)*lineBytes)
	}
	// Generous drain budget: a transaction's full serial cost per message
	// plus slack; the engine stops at idle long before.
	budget := delivered*int64(cfg.AddressCycles+cfg.SnoopLagCycles+cfg.MemoryCycles+cfg.DataCycles) + int64(cfg.MaxOutstanding*cfg.DataCycles)
	d.RunUntilIdle(budget)
	d.PublishMetrics(m)
}
