package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powermanna/internal/earth"
	"powermanna/internal/metrics"
	"powermanna/internal/netsim"
	"powermanna/internal/topo"
	"powermanna/internal/xbar"
)

// TestAppCampaignsOnSystem256 runs every application campaign over the
// full 16x16-cluster machine: the workloads must still verify their
// results while plane-A uplinks die, and the failover counters must show
// plane B carried the displaced traffic. This is the scale the paper's
// duplicated-network argument is about — Cluster8 exercises the
// protocol, System256 exercises it across the central stage.
func TestAppCampaignsOnSystem256(t *testing.T) {
	for _, c := range AppCampaigns() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			r, err := RunApp(c, Options{Seed: 1, Topology: topo.System256()})
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Options.Topology.Name(); got != "system256" {
				t.Fatalf("ran on %s", got)
			}
			last := r.Rows[len(r.Rows)-1]
			if last.FailedOver == 0 {
				t.Error("highest rate: nothing failed over to plane B")
			}
			for i, row := range r.Rows {
				if row.Inflation < 1 {
					t.Errorf("row %d inflation = %.3f, below baseline", i, row.Inflation)
				}
				if c.PartWorkload != nil {
					// Partitioned rows carry no background OS stream (the
					// lazy injector needs the global send order).
					if row.OSMessages != 0 {
						t.Errorf("row %d: partitioned row reports %d OS messages", i, row.OSMessages)
					}
				} else if row.OSMessages == 0 {
					t.Errorf("row %d: OS stream absent", i)
				}
			}
			// Same contract as Cluster8: byte-identical rerun.
			again, err := RunApp(c, Options{Seed: 1, Topology: topo.System256()})
			if err != nil {
				t.Fatal(err)
			}
			if r.Render() != again.Render() {
				t.Error("System256 rerun rendered differently")
			}
		})
	}
}

// TestAppCampaignSystem256Golden pins heat-linkcut over System256
// against the golden ci.sh compares cmd/pmfault stdout to.
func TestAppCampaignSystem256Golden(t *testing.T) {
	golden := filepath.Join("..", "..", "testdata", "pmfault_heat-linkcut_system256_seed1.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: go run ./cmd/pmfault --campaign heat-linkcut --topo system256 --seed 1 > %s)", err, golden)
	}
	c, _ := AppCampaignByName("heat-linkcut")
	r, err := RunApp(c, Options{Seed: 1, Topology: topo.System256()})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Render(); got != string(want) {
		t.Errorf("campaign output diverged from %s;\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestCampaignMetricsHook checks Options.Metrics: the registry receives
// the highest-rate row's readings, they agree with the degradation row,
// and the dump is deterministic.
func TestCampaignMetricsHook(t *testing.T) {
	c, _ := CampaignByName("link-cut")
	reg := metrics.NewRegistry()
	r, err := Run(c, Options{Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1]
	if got := reg.Counter(netsim.MetricSends).Value(); got != int64(r.Options.Messages) {
		t.Errorf("send counter = %d, want %d (highest-rate row only)", got, r.Options.Messages)
	}
	if got := reg.Counter(netsim.MetricDelivered).Value(); got != int64(last.Delivered) {
		t.Errorf("delivered counter = %d, row says %d", got, last.Delivered)
	}
	if got := reg.Counter(netsim.MetricRetried).Value(); got != int64(last.Retried) {
		t.Errorf("retried counter = %d, row says %d", got, last.Retried)
	}
	if got := reg.Counter(netsim.MetricPlaneDownHits).Value(); got != int64(last.Skipped) {
		t.Errorf("plane-down counter = %d, row says %d", got, last.Skipped)
	}
	lat := reg.TimeHistogram(netsim.MetricSendLatency, nil)
	if lat.Count() != int64(last.Delivered) {
		t.Errorf("latency histogram holds %d observations, want %d", lat.Count(), last.Delivered)
	}
	if reg.TimeHistogram(netsim.MetricDetection, nil).Count() == 0 {
		t.Error("no detection windows observed despite failovers")
	}
	if reg.TimeHistogram(xbar.MetricArbWait, nil).Count() == 0 {
		t.Error("no arbitration waits observed")
	}
	dump := reg.Render()
	if !strings.Contains(dump, netsim.MetricSendLatency) {
		t.Errorf("dump missing %s:\n%s", netsim.MetricSendLatency, dump)
	}

	reg2 := metrics.NewRegistry()
	if _, err := Run(c, Options{Seed: 1, Metrics: reg2}); err != nil {
		t.Fatal(err)
	}
	if dump != reg2.Render() {
		t.Error("two seed-1 runs dumped different metrics")
	}
}

// TestAppCampaignMetricsHook checks the EARTH branch of the hook: a
// fib-linkcut run must feed the runtime's earth.* instruments alongside
// the network's.
func TestAppCampaignMetricsHook(t *testing.T) {
	c, _ := AppCampaignByName("fib-linkcut")
	reg := metrics.NewRegistry()
	if _, err := RunApp(c, Options{Seed: 1, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter(earth.MetricTokensRemote).Value() == 0 {
		t.Error("no remote tokens counted")
	}
	if reg.TimeHistogram(earth.MetricTokenLatency, nil).Count() == 0 {
		t.Error("no token latencies observed")
	}
	if reg.Gauge(earth.MetricReadyPeak).Value() == 0 {
		t.Error("ready-queue peak never raised")
	}
	if reg.TimeHistogram(earth.MetricFiberDwell, nil).Count() == 0 {
		t.Error("no fiber dwell times observed")
	}
	if reg.Counter(netsim.MetricSends).Value() == 0 {
		t.Error("network instruments not attached through the runtime")
	}
}
