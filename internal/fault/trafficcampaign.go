// Traffic fault campaigns: the open-loop multi-tenant traffic engine
// (internal/traffic) under a plane-A link-cut sweep. The synthetic
// campaigns measure the failover protocol on one generated stream and
// the app campaigns measure one program's makespan; this campaign asks
// the multi-tenant question — when links die under a machine serving
// several concurrent workloads, whose SLO breaks first, and at which
// percentile? Because the load is open-loop, arrivals keep coming at
// the offered rate while failover detection and retries eat link time,
// so the damage shows up in the delivered-latency tail (p99/p999) and
// the per-tenant violation counts long before mean throughput moves.
//
// Like the app campaigns, only pre-run LinkCut faults are injected —
// sound on the partitioned datapath because a cut wire's state is
// parameterized by time. Fault times are drawn from the first half of
// the horizon so post-fault arrivals exist to feel the degradation.
package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"powermanna/internal/metrics"
	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
	"powermanna/internal/traffic"
)

// trafficRates is the plane-A fault sweep every traffic campaign runs.
var trafficRates = []int{0, 4, 8, 16}

// TrafficResult is one traffic campaign's outcome: the per-rate traffic
// results plus the highest-rate fault schedule and plane counters.
type TrafficResult struct {
	// Mix is the tenant mix that ran.
	Mix traffic.Mix
	// Options are the resolved run parameters (Seed, Topology, Engine
	// and Shards apply; traffic shape comes from the mix).
	Options Options
	// Horizon is the offered-load window each rate ran.
	Horizon sim.Time
	// Rates is the fault-count ladder, Results its per-rate outcomes.
	Rates   []int
	Results []*traffic.Result
	// Schedule is the highest-rate row's fault schedule.
	Schedule []Event
	// PlaneA and PlaneB are the highest-rate row's degraded-mode
	// counters.
	PlaneA, PlaneB stats.CounterSet
}

// RunTraffic sweeps the mix over the plane-A link-cut ladder: for each
// fault count it assembles a fresh traffic engine, applies a seeded
// link-cut schedule up front, runs the open-loop load to the horizon
// and keeps the full per-tenant service report. Rows run sequentially —
// each row's engine supplies its own parallelism under Options.Engine
// == psim.Par — and the output is byte-identical across engines and
// aligned shard counts. A zero horizon means traffic.DefaultHorizon.
func RunTraffic(mix traffic.Mix, horizon sim.Time, opt Options) (*TrafficResult, error) {
	opt = opt.resolved()
	if horizon <= 0 {
		horizon = traffic.DefaultHorizon
	}
	res := &TrafficResult{Mix: mix, Options: opt, Horizon: horizon, Rates: trafficRates}
	last := len(trafficRates) - 1
	for i, rate := range trafficRates {
		eng, err := traffic.New(mix, traffic.Options{
			Seed:     opt.Seed,
			Topology: opt.Topology,
			Horizon:  horizon,
			Engine:   opt.Engine,
			Shards:   opt.Shards,
			Metrics:  observedRegistry(opt, i == last),
			Trace:    opt.Trace,
		})
		if err != nil {
			return nil, fmt.Errorf("fault: traffic campaign %q at rate %d: %w", mix.Name, rate, err)
		}
		events := trafficSchedule(opt.Topology, rate, horizon,
			rand.New(rand.NewSource(opt.Seed+faultSeedStride*int64(rate))))
		inj := NewInjector(eng.Network(), events)
		var lastAt sim.Time
		for _, e := range inj.Events() {
			lastAt = e.At
		}
		inj.ApplyUntil(lastAt)
		out, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("fault: traffic campaign %q at rate %d: %w", mix.Name, rate, err)
		}
		res.Results = append(res.Results, out)
		if i == last {
			res.Schedule = inj.Events()
			res.PlaneA = out.PlaneA
			res.PlaneB = out.PlaneB
		}
	}
	return res, nil
}

// trafficSchedule draws the rate's plane-A fault schedule: node uplink
// cuts alternating with central-stage crossbar cuts where the topology
// has a central stage (System256). The central cuts are what make the
// sweep bite on the big machine — a severed node uplink degrades one
// node's sends, a severed central-stage wire degrades the plane-A
// routes of a whole cluster's cross-cluster traffic. Both kinds reduce
// to time-parameterized CutWire, so applying them before the run is
// sound on the partitioned datapath.
func trafficSchedule(t *topo.Topology, count int, horizon sim.Time, rng *rand.Rand) []Event {
	if count == 0 {
		return nil
	}
	var central []int
	planes := t.CrossbarPlanes()
	for _, xi := range t.CentralCrossbars() {
		if planes[xi] == topo.NetworkA {
			central = append(central, xi)
		}
	}
	span := int64(horizon / faultSpanDiv)
	if span < 1 {
		span = 1
	}
	events := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		at := sim.Time(rng.Int63n(span))
		node := rng.Intn(t.Nodes())
		e := Event{Kind: LinkCut, At: at, Plane: topo.NetworkA, Node: node}
		if i%2 == 1 && len(central) > 0 {
			e = Event{Kind: CentralCut, At: at, Plane: topo.NetworkA}
			e.Xbar = central[rng.Intn(len(central))]
			wired := t.WiredPorts(e.Xbar)
			e.Out = wired[rng.Intn(len(wired))]
		}
		events = append(events, e)
	}
	return events
}

// observedRegistry hands the caller's registry only to the observed
// (highest-rate) row, mirroring the other campaigns' --metrics
// semantics; every other row folds into a private registry.
func observedRegistry(opt Options, observed bool) *metrics.Registry {
	if observed {
		return opt.Metrics
	}
	return nil
}

// Table renders the SLO degradation ladder: one row per (fault count,
// tenant), the delivered-latency percentiles next to the declared SLO
// and the exact violation count.
func (r *TrafficResult) Table() *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("slo degradation — %s", r.Mix.Name),
		Columns: []string{"faults", "tenant", "offered", "delivered", "failed", "p50-us", "p99-us", "p999-us", "slo", "ok", "viol"},
	}
	for i, rate := range r.Rates {
		for _, ts := range r.Results[i].Tenants {
			ok := "yes"
			if !ts.Met() {
				ok = "NO"
			}
			t.AddRow(
				fmt.Sprintf("%d", rate),
				ts.Name,
				fmt.Sprintf("%d", ts.Offered),
				fmt.Sprintf("%d", ts.Delivered),
				fmt.Sprintf("%d", ts.Failed),
				fmt.Sprintf("%.3f", ts.P50.Micros()),
				fmt.Sprintf("%.3f", ts.P99.Micros()),
				fmt.Sprintf("%.3f", ts.P999.Micros()),
				ts.SLO.String(),
				ok,
				fmt.Sprintf("%d", ts.Violations),
			)
		}
	}
	return t
}

// Render produces the campaign's full deterministic text block: header,
// tenant mix, the SLO degradation ladder, the highest-rate fault
// schedule and its plane counters.
func (r *TrafficResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### traffic campaign %s — %s\n", r.Mix.Name, r.Mix.Description)
	fmt.Fprintf(&b, "topology %s, seed %d, horizon %dus, %d tenants, open-loop over partitioned datapath\n\n",
		r.Options.Topology.Name(), r.Options.Seed, int64(r.Horizon/sim.Microsecond), len(r.Mix.Tenants))
	b.WriteString(r.Results[0].MixTable().Render())
	b.WriteByte('\n')
	b.WriteString(r.Table().Render())
	fmt.Fprintf(&b, "\nfault schedule at %d faults:\n", r.Rates[len(r.Rates)-1])
	if len(r.Schedule) == 0 {
		b.WriteString("  (none)\n")
	}
	for _, e := range r.Schedule {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	b.WriteByte('\n')
	b.WriteString(r.PlaneA.Render())
	b.WriteString(r.PlaneB.Render())
	return b.String()
}
