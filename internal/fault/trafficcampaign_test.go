package fault

import (
	"os"
	"path/filepath"
	"testing"

	"powermanna/internal/psim"
	"powermanna/internal/topo"
	"powermanna/internal/traffic"
)

// TestTrafficCampaignGolden pins the System256 traffic sweep against
// the same golden ci.sh compares `pmfault --traffic` stdout to.
func TestTrafficCampaignGolden(t *testing.T) {
	golden := filepath.Join("..", "..", "testdata", "pmfault_traffic_system256_seed1.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: go run ./cmd/pmfault --traffic --topo system256 --seed 1 > %s)", err, golden)
	}
	r, err := RunTraffic(traffic.DefaultMix(), 0, Options{Seed: 1, Topology: topo.System256()})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Render(); got != string(want) {
		t.Errorf("traffic campaign output diverged from %s;\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestTrafficCampaignEngineEquivalence checks the sweep's full render is
// byte-identical between the sequential engine and the parallel engine
// at 2 and 4 shards — the traffic engine's determinism contract
// composed through the campaign layer.
func TestTrafficCampaignEngineEquivalence(t *testing.T) {
	run := func(kind psim.Kind, shards int) string {
		r, err := RunTraffic(traffic.DefaultMix(), 0, Options{
			Seed: 1, Topology: topo.System256(), Engine: kind, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	seq := run(psim.Seq, 0)
	for _, shards := range []int{2, 4} {
		if par := run(psim.Par, shards); par != seq {
			t.Errorf("par --shards %d diverges from seq:\n--- seq\n%s\n--- par\n%s", shards, seq, par)
		}
	}
}

// TestTrafficCampaignNeverLosesMessages checks the redundancy claim at
// the traffic layer: with plane B healthy, plane-A faults convert
// deliveries into failovers, never into losses — offered equals
// delivered for every tenant at every rate, and the highest-rate row
// actually exercised the failover path.
func TestTrafficCampaignNeverLosesMessages(t *testing.T) {
	r, err := RunTraffic(traffic.DefaultMix(), 0, Options{Seed: 1, Topology: topo.System256()})
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range r.Rates {
		for _, ts := range r.Results[i].Tenants {
			if ts.Failed != 0 {
				t.Errorf("rate %d tenant %s: %d messages lost with plane B healthy", rate, ts.Name, ts.Failed)
			}
			if ts.Offered != ts.Delivered {
				t.Errorf("rate %d tenant %s: offered %d != delivered %d", rate, ts.Name, ts.Offered, ts.Delivered)
			}
		}
	}
	if down := r.PlaneA.Get("link-down"); down == 0 {
		t.Errorf("highest-rate row never hit a dead plane-A wire:\n%s", r.PlaneA.Render())
	}
	if fo := r.PlaneA.Get("failed-over"); fo == 0 {
		t.Errorf("highest-rate row never failed over:\n%s", r.PlaneA.Render())
	}
}
