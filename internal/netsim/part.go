// Node-partitioned datapath: the split-phase send machinery that routes
// every inter-node message through psim cross-shard mailboxes.
//
// The legacy path (Network.send) computes a whole wormhole transit in
// one synchronous call, which is only sound when one goroutine owns the
// entire network. A PartNetwork carves the same network across psim
// shards — contiguous node groups, resource ownership per
// topo.Partition — and splits each send into a local and a remote
// phase: the source shard walks the source-owned prefix of the route
// (its own uplink, its leaf crossbar's outputs, the leaf-to-central
// wire) and posts the remainder as a cross-shard event at the time the
// header reaches the central crossbar; the destination shard walks the
// destination-owned suffix, renders the delivery or failure verdict
// (CRC check included), and posts the outcome back. Every cross-shard
// hop rides a psim mailbox as plain data (psim.Handler payloads), never
// a closure over source-shard state.
//
// Determinism contract — the event program is independent of the shard
// count. Two mechanisms enforce it:
//
//   - Sends split at the topology's grain (topo.GroupPartition: one
//     group per leaf crossbar), not at the user's shard boundary. A
//     cross-group send always splits at the central crossbar's output,
//     whether both groups share a shard (the remote leg is a local
//     event) or not (it crosses a mailbox); an intra-group send never
//     splits. Shard count then only decides event placement, and psim's
//     deterministic mailbox merge makes placement unobservable.
//   - All walk attempts are buffered and processed by a canonical drain
//     event one picosecond after they were produced, sorted by message
//     id. Same-timestamp walkers therefore claim resources in an order
//     that is a pure function of the model (issue time, then message
//     id), not of event sequence interleavings. Walk arithmetic uses
//     the walker's carried model times, so the picosecond offset never
//     distorts a transit.
//
// Resource discipline: a completed walk claims its whole segment
// atomically (the same two-pass peek-then-claim as the legacy path). A
// source leg of a split send cannot know its release time until the
// destination's verdict, so it marks its resources open-held; walkers
// hitting an open hold park without claiming anything (no hold-and-wait,
// hence no deadlock) and are re-buffered into a canonical drain when the
// hold resolves into a real timed claim.
package netsim

import (
	"fmt"
	"sort"

	"powermanna/internal/link"
	"powermanna/internal/metrics"
	"powermanna/internal/ni"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
	"powermanna/internal/xbar"
)

// canonStep is the offset of the canonical drain event: walk attempts
// produced at simulated time T are processed at T + 1 ps, sorted by
// message id. One picosecond is below every hardware constant in the
// model, so the offset is unobservable in any transit time, while
// keeping the drain strictly after every same-time producer event.
const canonStep = sim.Picosecond

// DeliverFunc receives one delivered message on the destination node's
// shard: the hook a partitioned message-passing layer registers to feed
// its receive queues. It runs inside a destination-shard event at the
// message's last-byte arrival time.
type DeliverFunc func(src, dst int, payload any, firstByte, lastByte sim.Time)

// PartNetwork is a network partitioned across psim shards: the
// split-phase, mailbox-routed counterpart of Network + Transport.
type PartNetwork struct {
	net *Network
	// part is the user's placement: which shard owns each node and
	// directed resource. grain is the finest aligned partition (one group
	// per leaf crossbar) — the boundary the event program is fixed to, so
	// every shard count replays the identical history.
	part, grain *topo.Partition
	eng         *psim.Engine
	shards      []*partShard
	tps         []*Transport
	// msgSeq numbers each source node's sends; msgID = src<<32|seq is the
	// canonical drain sort key. Each entry is written only by its node's
	// shard.
	msgSeq []uint32
	// deliver, when non-nil, receives every delivered payload on the
	// destination shard. Registered before Run; immutable during it.
	deliver DeliverFunc
	// tenants are the labels SetTenants declared, kept so a re-attached
	// registry re-resolves the per-tenant histograms.
	tenants []string
	// userReg/userRec are the caller's registry and recorder; per-shard
	// instances absorb the run and fold back at Finish.
	userReg *metrics.Registry
	userRec *trace.Recorder
	folded  bool
}

// partShard is one shard's slice of the partitioned network: its drain
// buffer, open-hold table, in-flight protocol drivers and private
// observability instruments.
type partShard struct {
	pn *PartNetwork
	id int
	sh *psim.Shard
	// pending holds walk attempts awaiting their canonical drain; armed
	// marks drain times already scheduled.
	pending []*pleg
	armed   map[sim.Time]bool
	// open maps a resource to the open hold of a split send's source leg
	// (claim window end unknown until the destination's verdict).
	open map[resKey]*openHold
	// inflight maps msgID to the protocol driver awaiting a verdict.
	inflight map[uint64]*psend
	// planes/sent are this shard's slice of the degraded-mode counters;
	// summed across shards at Finish (commutative, so placement-free).
	planes [ni.LinksPerNode]PlaneCounters
	sent   int64
	reg    *metrics.Registry
	met    netInstruments
	// arbWait and planeWait mirror the crossbar's arbitration instruments
	// for partitioned claims: one crossbar's outputs can belong to
	// different shards, so the wait accounting lands in the claiming
	// shard's own histograms instead of the crossbar's shared ones.
	arbWait   *metrics.Histogram
	planeWait [ni.LinksPerNode]*metrics.Histogram
	rec       *trace.Recorder
}

// resKey identifies one claimable resource: a directed wire (kind 0,
// keyed by its upstream dev/port) or a crossbar output channel (kind 1).
type resKey struct {
	kind    uint8
	dev, at int
}

func wireRes(dev, port int) resKey { return resKey{0, dev, port} }
func hopRes(ord, out int) resKey   { return resKey{1, ord, out} }

// openHold marks a resource held by an in-flight split send whose claim
// window is not yet known. Walkers that hit it park here and are
// re-buffered when the hold resolves.
type openHold struct {
	msgID   uint64
	waiters []*pleg
}

// NewPartitioned assembles a partitioned network over the topology:
// shards contiguous node groups (topo.Partition), one psim shard each,
// with every directed wire pre-created (lazy creation would write the
// shared wire map from concurrent shards) and one fault-aware transport
// per node for route and plane-down caching on the node's shard.
func NewPartitioned(t *topo.Topology, shards int, cfg FailoverConfig) (*PartNetwork, error) {
	part, err := t.Partition(shards)
	if err != nil {
		return nil, err
	}
	grain, err := t.GroupPartition()
	if err != nil {
		return nil, err
	}
	n := New(t)
	devs := t.Nodes() + t.Crossbars()
	for dev := 0; dev < devs; dev++ {
		ports := ni.LinksPerNode
		if dev >= t.Nodes() {
			ports = xbar.Ports
		}
		for p := 0; p < ports; p++ {
			if t.Wired(dev, p) {
				n.wire(dev, p, 0)
			}
		}
	}
	pn := &PartNetwork{
		net:    n,
		part:   part,
		grain:  grain,
		eng:    psim.NewEngine(shards, psim.DefaultLookahead()),
		tps:    make([]*Transport, t.Nodes()),
		msgSeq: make([]uint32, t.Nodes()),
	}
	for i := 0; i < shards; i++ {
		pn.shards = append(pn.shards, &partShard{
			pn:       pn,
			id:       i,
			sh:       pn.eng.Shard(i),
			armed:    make(map[sim.Time]bool),
			open:     make(map[resKey]*openHold),
			inflight: make(map[uint64]*psend),
		})
	}
	for node := range pn.tps {
		pn.tps[node] = n.MustTransport(node, cfg)
	}
	return pn, nil
}

// Network exposes the underlying network for pre-run fault injection
// (CutWire, CorruptWire — wire fault windows are immutable during a
// partitioned run, which is what makes reading them cross-shard safe).
func (pn *PartNetwork) Network() *Network { return pn.net }

// Partition reports the placement partition (node and resource
// ownership per shard).
func (pn *PartNetwork) Partition() *topo.Partition { return pn.part }

// Engine exposes the psim engine driving the shards.
func (pn *PartNetwork) Engine() *psim.Engine { return pn.eng }

// Shard returns shard i's event scheduler.
func (pn *PartNetwork) Shard(i int) *psim.Shard { return pn.shards[i].sh }

// ShardOf reports the shard owning node n.
func (pn *PartNetwork) ShardOf(node int) int { return pn.part.NodeShard(node) }

// OnDeliver registers the delivery hook. Call before Run.
func (pn *PartNetwork) OnDeliver(fn DeliverFunc) { pn.deliver = fn }

// SetSerial switches the engine between parallel and serial dispatch —
// byte-identical histories either way (psim's contract); serial is the
// --engine seq execution and the only safe mode nested inside another
// engine's event.
func (pn *PartNetwork) SetSerial(on bool) { pn.eng.SetSerial(on) }

// SetMetrics attaches a registry: each shard resolves its own private
// instruments (send-path counters, latency and detection histograms,
// arbitration waits) and Finish merges them into m in shard order. The
// merged result is independent of the shard count because every merge
// is commutative (sums and extrema).
func (pn *PartNetwork) SetMetrics(m *metrics.Registry) {
	pn.userReg = m
	for _, ps := range pn.shards {
		if m == nil {
			ps.reg, ps.met = nil, netInstruments{}
			ps.arbWait = nil
			ps.planeWait = [ni.LinksPerNode]*metrics.Histogram{}
			continue
		}
		ps.reg = metrics.NewRegistry()
		ps.met = netInstruments{
			sends:         ps.reg.Counter(MetricSends),
			delivered:     ps.reg.Counter(MetricDelivered),
			failed:        ps.reg.Counter(MetricFailed),
			retried:       ps.reg.Counter(MetricRetried),
			planeDownHits: ps.reg.Counter(MetricPlaneDownHits),
			sendLatency:   ps.reg.TimeHistogram(MetricSendLatency, latencyBuckets()),
			detection:     ps.reg.TimeHistogram(MetricDetection, latencyBuckets()),
			wait:          waitHistograms(ps.reg),
		}
		buckets := metrics.TimeBuckets(200*sim.Nanosecond, 2, 10)
		ps.arbWait = ps.reg.TimeHistogram(xbar.MetricArbWait, buckets)
		for p := range ps.planeWait {
			ps.planeWait[p] = ps.reg.TimeHistogram(xbar.MetricArbWaitPlanePrefix+planeName(p), buckets)
		}
	}
	pn.SetTenants(pn.tenants)
}

// SetTenants declares the tenant labels of SendAsyncTenant: tenant i's
// delivered latencies land in the histogram named
// MetricSendLatencyTenantPrefix + names[i], resolved per shard and
// folded with the rest at Finish. Off (like everything else) when no
// registry is attached; call order with SetMetrics does not matter.
func (pn *PartNetwork) SetTenants(names []string) {
	pn.tenants = names
	for _, ps := range pn.shards {
		if ps.reg == nil || len(names) == 0 {
			ps.met.tenantLat = nil
			ps.met.tenantWait = nil
			continue
		}
		ps.met.tenantLat = make([]*metrics.Histogram, len(names))
		ps.met.tenantWait = make([][4]*metrics.Histogram, len(names))
		for i, name := range names {
			ps.met.tenantLat[i] = ps.reg.TimeHistogram(MetricSendLatencyTenantPrefix+name, tenantLatencyBuckets())
			ps.met.tenantWait[i] = tenantWaitHistograms(ps.reg, name)
		}
	}
}

// ShardRegistry exposes shard i's private registry so co-partitioned
// layers (internal/mpl) can resolve their own per-shard instruments and
// have them folded with the network's. Nil when metrics are off.
func (pn *PartNetwork) ShardRegistry(i int) *metrics.Registry { return pn.shards[i].reg }

// SetRecorder attaches a recorder: each shard records into a private
// recorder, every pre-created wire records into its owning shard's, and
// Finish merges all of them into r under trace.Merge's canonical order.
func (pn *PartNetwork) SetRecorder(r *trace.Recorder) {
	pn.userRec = r
	for _, ps := range pn.shards {
		if r == nil {
			ps.rec = nil
		} else {
			ps.rec = trace.NewRecorder()
		}
	}
	t := pn.net.topo
	for k, w := range pn.net.wires {
		owner := 0
		if k.dev < t.Nodes() {
			owner = pn.part.NodeShard(k.dev)
		} else if o := pn.part.XbarOutOwner(k.dev-t.Nodes(), k.port); o >= 0 {
			owner = o
		}
		if r == nil {
			w.Trace(nil, 0)
		} else {
			w.Trace(pn.shards[owner].rec, trace.WireTrack(k.dev, k.port, k.dir))
		}
	}
}

// ShardRecorder exposes shard i's private recorder (nil when off).
func (pn *PartNetwork) ShardRecorder(i int) *trace.Recorder { return pn.shards[i].rec }

// Run drives the engine until every shard drains, then folds the
// per-shard observability state into the attached registry/recorder.
func (pn *PartNetwork) Run() {
	pn.eng.Run()
	pn.fold()
}

// fold merges per-shard metrics and traces into the user's instruments;
// idempotent via the folded latch.
func (pn *PartNetwork) fold() {
	if pn.folded {
		return
	}
	pn.folded = true
	if pn.userReg != nil {
		for _, ps := range pn.shards {
			pn.userReg.MergeFrom(ps.reg)
		}
	}
	if pn.userRec != nil {
		recs := make([]*trace.Recorder, len(pn.shards))
		for i, ps := range pn.shards {
			recs[i] = ps.rec
		}
		trace.Merge(pn.userRec, recs...)
	}
}

// Plane sums plane p's degraded-mode counters across shards.
func (pn *PartNetwork) Plane(p int) PlaneCounters {
	var sum PlaneCounters
	for _, ps := range pn.shards {
		c := ps.planes[p]
		sum.Attempts += c.Attempts
		sum.Delivered += c.Delivered
		sum.Stalled += c.Stalled
		sum.LinkDown += c.LinkDown
		sum.SetupTimeouts += c.SetupTimeouts
		sum.CRCErrors += c.CRCErrors
		sum.CRCRetries += c.CRCRetries
		sum.FailedOver += c.FailedOver
		sum.SkippedDown += c.SkippedDown
	}
	return sum
}

// PlaneCounterSet renders plane p's shard-summed counters as the same
// ordered stats.CounterSet the legacy Network renders — the degraded-
// mode report of cmd/pmfault. The OS-stream rows are always zero: the
// partitioned datapath carries no background OS stream.
func (pn *PartNetwork) PlaneCounterSet(p int) stats.CounterSet {
	c := pn.Plane(p)
	set := stats.CounterSet{Title: fmt.Sprintf("plane %s", planeName(p))}
	set.Add("attempts", c.Attempts)
	set.Add("delivered", c.Delivered)
	set.Add("stalled", c.Stalled)
	set.Add("link-down", c.LinkDown)
	set.Add("setup-timeouts", c.SetupTimeouts)
	set.Add("crc-errors", c.CRCErrors)
	set.Add("crc-retries", c.CRCRetries)
	set.Add("failed-over", c.FailedOver)
	set.Add("skipped-down", c.SkippedDown)
	set.Add("os-messages", c.OSMessages)
	set.Add("os-dropped", c.OSDropped)
	return set
}

// MessagesSent reports network attempts across all shards.
func (pn *PartNetwork) MessagesSent() int64 {
	var n int64
	for _, ps := range pn.shards {
		n += ps.sent
	}
	return n
}

// OnPost implements psim.Handler: cross-shard payloads are remote legs
// (header reached this shard's half of a route) or finalize verdicts
// (the destination's outcome returning to the source).
func (ps *partShard) OnPost(_ *psim.Shard, payload any) {
	switch m := payload.(type) {
	case *remoteLeg:
		ps.acceptRemote(m)
	case *finalizeMsg:
		ps.finalize(m)
	default:
		panic(fmt.Sprintf("netsim: shard %d received unknown payload %T", ps.id, payload))
	}
}

// buffer queues a walk attempt for the canonical drain one canonStep
// after the current event.
//
//pmlint:hotpath
func (ps *partShard) buffer(l *pleg) {
	wd := ps.sh.Now() + canonStep
	l.wd = wd
	ps.pending = append(ps.pending, l)
	if !ps.armed[wd] {
		ps.armed[wd] = true
		ps.sh.At(wd, func() { ps.drain(wd) }) //pmlint:allow hotpath one closure per armed drain time, amortized over every leg it drains
	}
}

// drain processes every buffered walk attempt due at this drain time in
// canonical message-id order — the step that makes same-timestamp
// resource claims a pure function of the model.
func (ps *partShard) drain(at sim.Time) {
	delete(ps.armed, at)
	var due []*pleg
	rest := ps.pending[:0]
	for _, l := range ps.pending {
		if l.wd <= at {
			due = append(due, l)
		} else {
			rest = append(rest, l)
		}
	}
	ps.pending = rest
	sort.Slice(due, func(i, j int) bool { return due[i].msgID < due[j].msgID })
	for _, l := range due {
		ps.process(l)
	}
}

// pleg is one walk attempt over a contiguous same-shard segment of a
// message's route: the whole path of an intra-group send, or the
// source- or destination-owned half of a split one. A pleg crossing a
// mailbox travels inside a remoteLeg as plain data.
type pleg struct {
	msgID uint64
	wd    sim.Time // canonical drain deadline
	// p is the protocol driver — source-shard legs only; nil on a
	// destination leg (the verdict returns through a finalizeMsg).
	p *psend
	// rl is the remote-leg payload — destination legs only.
	rl *remoteLeg
}

// wireCheck carries one source-leg wire claim to the destination shard
// for the CRC verdict. The wire pointer is read-only there: fault
// windows are immutable during a run.
type wireCheck struct {
	w     *link.Wire
	start sim.Time
}

// remoteLeg is the cross-shard continuation of a split send: everything
// the destination shard needs to finish the walk, render the verdict
// and deliver the payload — pure data, no source-shard captures.
type remoteLeg struct {
	msgID        uint64
	src, dst     int
	plane        int
	path         topo.Path
	split        int      // first destination-owned hop
	head         sim.Time // header arrival at the boundary crossbar
	entry        sim.Time // network entry time (for the message spans)
	wireBytes    int
	payloadBytes int
	setupTimeout sim.Time
	ackTimeout   sim.Time
	nackLatency  sim.Time
	srcChecks    []wireCheck
	payload      any
}

// finalizeMsg is the destination's verdict returning to the source
// shard: the outcome of the destination half of a split send.
type finalizeMsg struct {
	msgID uint64
	kind  uint8 // finOK, finCRC, finCut, finTimeout
	// last/firstByte/setupDone describe the completed circuit (finOK and
	// finCRC); detected is when the source learns of a failure (ack
	// timeout for cut/timeout, NACK return for CRC).
	last, firstByte, setupDone sim.Time
	detected                   sim.Time
}

const (
	finOK uint8 = iota
	finCRC
	finCut
	finTimeout
)

// walkRes is the outcome of one segment walk.
type walkRes struct {
	outcome walkOutcome
	at      sim.Time // failure time (cut/timeout)
	cut     bool
	wires   []partWireClaim
	hops    []partHopClaim
	head    sim.Time // header time after the segment
	first   sim.Time // body arrival (complete walks only)
	last    sim.Time
}

type walkOutcome int

const (
	walkOK walkOutcome = iota
	walkParked
	walkFailed
)

type partWireClaim struct {
	w     *link.Wire
	key   resKey
	start sim.Time
	bytes int
}

type partHopClaim struct {
	ord, out         int
	key              resKey
	requested, start sim.Time
}

// process runs one drained walk attempt to its next state: parked on an
// open hold, failed (severed wire / setup timeout), or walked — in
// which case the claim/split/finalize logic of the leg's side applies.
func (ps *partShard) process(l *pleg) {
	if l.p != nil {
		ps.processSrc(l)
	} else {
		ps.processDst(l)
	}
}

// walk mirrors Network.send's pass-1 header walk over one segment of
// the path, peeking at free times and honouring open holds. All times
// are the walker's carried model times — never the drain event's clock.
func (ps *partShard) walk(l *pleg, path topo.Path, split int, dstLeg bool, entry sim.Time,
	wireBytes int, setupTimeout sim.Time) walkRes {

	n := ps.pn.net
	byteTime := n.linkCfg.TransferTime(1)
	k := len(path.Hops)
	lo, hi := 0, split
	if dstLeg {
		lo, hi = split, k
	}
	head := entry
	fromDev, fromPort := path.Src, path.Network
	if dstLeg {
		// The source leg already crossed the wire into the boundary
		// crossbar; this leg starts at its output arbitration.
		fromDev, fromPort = n.topo.Nodes()+path.Hops[split].Xbar, path.Hops[split].Out
	}
	remaining := wireBytes - lo
	res := walkRes{outcome: walkOK}

	walkWire := func(dev, port int, first bool) (*link.Wire, sim.Time, bool) {
		w := n.wire(dev, port, 0)
		key := wireRes(dev, port)
		if hold, ok := ps.open[key]; ok {
			hold.waiters = append(hold.waiters, l)
			res.outcome = walkParked
			return nil, 0, false
		}
		wStart := sim.Max(head, w.FreeAt())
		if w.DeadAt(wStart) {
			res.outcome, res.at, res.cut = walkFailed, wStart, true
			return nil, 0, false
		}
		if setupTimeout > 0 && !first && wStart-head > setupTimeout {
			res.outcome, res.at = walkFailed, head+setupTimeout
			return nil, 0, false
		}
		res.wires = append(res.wires, partWireClaim{w: w, key: key, start: wStart, bytes: remaining})
		return w, wStart, true
	}

	for i := lo; i < hi; i++ {
		hop := path.Hops[i]
		if !(dstLeg && i == lo) {
			_, wStart, ok := walkWire(fromDev, fromPort, i == 0)
			if !ok {
				return res
			}
			lat := n.linkCfg.PropagationDelay + byteTime
			if hop.AsyncIn {
				lat += n.trans.Latency
			}
			head = wStart + lat
		}
		key := hopRes(hop.Xbar, hop.Out)
		if hold, ok := ps.open[key]; ok {
			hold.waiters = append(hold.waiters, l)
			res.outcome = walkParked
			return res
		}
		setupStart := sim.Max(head, n.xbars[hop.Xbar].OutputFreeAt(hop.Out))
		if setupTimeout > 0 && setupStart-head > setupTimeout {
			res.outcome, res.at = walkFailed, head+setupTimeout
			return res
		}
		res.hops = append(res.hops, partHopClaim{ord: hop.Xbar, out: hop.Out, key: key, requested: head, start: setupStart})
		head = setupStart + xbar.RouteSetup
		fromDev, fromPort = n.topo.Nodes()+hop.Xbar, hop.Out
		remaining--
	}

	if !dstLeg && split < k {
		// Source leg of a split send: walk the wire into the boundary
		// crossbar (source-owned, per the up/down ownership rule) and stop
		// with the header's arrival there.
		_, wStart, ok := walkWire(fromDev, fromPort, false)
		if !ok {
			return res
		}
		lat := n.linkCfg.PropagationDelay + byteTime
		if path.Hops[split].AsyncIn {
			lat += n.trans.Latency
		}
		res.head = wStart + lat
		return res
	}

	// Complete walk (full path or destination leg): the last wire to the
	// destination node.
	_, lwStart, ok := walkWire(fromDev, fromPort, false)
	if !ok {
		return res
	}
	res.head = head
	res.first = lwStart + n.linkCfg.PropagationDelay + byteTime
	res.last = res.first + n.linkCfg.TransferTime(wireBytes-len(path.RouteBytes))
	return res
}

// claimWires applies real wire holds for a walked segment.
func (ps *partShard) claimWires(claims []partWireClaim, until sim.Time) {
	for _, c := range claims {
		c.w.Hold(c.start, until, c.bytes)
	}
}

// claimPartial applies the claims of a failed attempt's partial circuit
// up to its teardown time. Resources the header would only have reached
// after the teardown are skipped — the header never got there — and the
// rest hold until the teardown, never shorter than their own start.
func (ps *partShard) claimPartial(wires []partWireClaim, hops []partHopClaim, teardown sim.Time, plane int) {
	for _, c := range wires {
		if c.start < teardown {
			c.w.Hold(c.start, teardown, c.bytes)
		}
	}
	kept := hops[:0]
	for _, c := range hops {
		if c.start < teardown {
			kept = append(kept, c)
		}
	}
	ps.claimHops(kept, teardown, plane)
}

// claimHops applies real output-channel claims, with arbitration waits
// and circuit spans landing in the claiming shard's own instruments
// (the crossbar's shared counters can belong to several shards).
func (ps *partShard) claimHops(claims []partHopClaim, until sim.Time, plane int) {
	for _, c := range claims {
		ps.pn.net.xbars[c.ord].ClaimOutput(c.start, until, c.out)
		if c.start > c.requested {
			ps.arbWait.ObserveTime(c.start - c.requested)
			ps.planeWait[plane].ObserveTime(c.start - c.requested)
		}
		if ps.rec.Enabled() {
			track := trace.XbarPortTrack(c.ord, c.out)
			if c.start > c.requested {
				ps.rec.Span(track, "xbar", "arb-wait", c.requested, c.start)
			}
			ps.rec.Span(track, "xbar", "circuit", c.start, until)
		}
	}
}

// holdOpen marks a source leg's resources open-held until its verdict.
func (ps *partShard) holdOpen(msgID uint64, res *walkRes) []resKey {
	keys := make([]resKey, 0, len(res.wires)+len(res.hops))
	for _, c := range res.wires {
		ps.open[c.key] = &openHold{msgID: msgID}
		keys = append(keys, c.key)
	}
	for _, c := range res.hops {
		ps.open[c.key] = &openHold{msgID: msgID}
		keys = append(keys, c.key)
	}
	return keys
}

// releaseOpen clears a message's open holds and re-buffers every parked
// walker into the next canonical drain (which re-sorts them by message
// id, keeping wake order model-determined).
func (ps *partShard) releaseOpen(keys []resKey) {
	for _, k := range keys {
		hold, ok := ps.open[k]
		if !ok {
			continue
		}
		delete(ps.open, k)
		for _, w := range hold.waiters {
			ps.buffer(w)
		}
	}
}

// corrupted renders the CRC verdict over every wire the circuit
// crossed: severed mid-stream or inside a corruption window.
func corrupted(checks []wireCheck, last sim.Time) bool {
	bad := false
	for _, c := range checks {
		if cut, ok := c.w.CutTime(); ok && cut > c.start && cut <= last {
			bad = true
		}
		if c.w.CorruptedIn(c.start, last) {
			bad = true
		}
	}
	return bad
}

// acceptRemote turns an arriving remote leg into a buffered destination
// walk attempt — the same canonical path whether the leg crossed a
// mailbox or was scheduled locally (same-shard groups).
func (ps *partShard) acceptRemote(rl *remoteLeg) {
	ps.buffer(&pleg{msgID: rl.msgID, rl: rl})
}

// processDst runs a destination leg: walk the destination-owned suffix,
// claim it, and render the verdict.
func (ps *partShard) processDst(l *pleg) {
	rl := l.rl
	res := ps.walk(l, rl.path, rl.split, true, rl.head, rl.wireBytes, rl.setupTimeout)
	switch res.outcome {
	case walkParked:
		return
	case walkFailed:
		// The suffix could not form. The partial circuit on this side
		// holds until the teardown at the source's detection time; the
		// counters for the failure land here, where it was discovered.
		// The ack timeout anchors at the entry time, but when the circuit
		// formation itself outlasted the ack window (a first-wire stall is
		// exempt from the setup timeout), teardown cannot precede the
		// header's arrival at the failure point — floor it there plus the
		// NACK return, which also keeps the verdict beyond the engine's
		// conservative lookahead.
		detected := rl.entry + rl.ackTimeout
		if fl := res.at + rl.nackLatency; detected < fl {
			detected = fl
		}
		pc := &ps.planes[rl.plane]
		if res.cut {
			pc.LinkDown++
		} else {
			pc.SetupTimeouts++
		}
		pc.FailedOver++
		ps.claimPartial(res.wires, res.hops, detected, rl.plane)
		kind := finTimeout
		if res.cut {
			kind = finCut
		}
		ps.sendVerdict(rl, &finalizeMsg{msgID: rl.msgID, kind: kind, detected: detected})
		return
	}

	checks := append(append([]wireCheck(nil), rl.srcChecks...), wireChecksOf(res.wires)...)
	ps.claimWires(res.wires, res.last)
	ps.claimHops(res.hops, res.last, rl.plane)
	lif := ps.pn.net.nis[rl.dst].Links[rl.plane]
	pc := &ps.planes[rl.plane]
	if corrupted(checks, res.last) {
		// The CRC error is discovered (and counted) here; whether the
		// sender spends a same-plane retry or fails over is decided on the
		// source shard, which owns the send's budget — the failed-over and
		// crc-retries counters land there (psend.finish).
		lif.RecordCRCError()
		pc.CRCErrors++
		ps.sendVerdict(rl, &finalizeMsg{
			msgID: rl.msgID, kind: finCRC,
			last: res.last, firstByte: res.first, setupDone: res.head,
			detected: res.last + rl.nackLatency,
		})
		return
	}
	lif.RecordFrame()
	pc.Delivered++
	if fn := ps.pn.deliver; fn != nil {
		src, dst, payload := rl.src, rl.dst, rl.payload
		first, last := res.first, res.last
		ps.sh.At(res.last, func() { fn(src, dst, payload, first, last) })
	}
	ps.sendVerdict(rl, &finalizeMsg{
		msgID: rl.msgID, kind: finOK,
		last: res.last, firstByte: res.first, setupDone: res.head,
	})
}

func wireChecksOf(claims []partWireClaim) []wireCheck {
	out := make([]wireCheck, len(claims))
	for i, c := range claims {
		out[i] = wireCheck{w: c.w, start: c.start}
	}
	return out
}

// sendVerdict routes a finalize verdict back to the source shard at its
// effect time: the delivery (or NACK-visible) time for completed
// circuits, the ack-timeout detection time for silent failures. Both
// exceed the engine's lookahead past the current event by at least a
// wire propagation delay.
func (ps *partShard) sendVerdict(rl *remoteLeg, fm *finalizeMsg) {
	at := fm.last
	if fm.kind == finCut || fm.kind == finTimeout {
		at = fm.detected
	}
	srcShard := ps.pn.part.NodeShard(rl.src)
	if srcShard == ps.id {
		ps.sh.At(at, func() { ps.finalize(fm) })
		return
	}
	ps.pn.eng.PostPayload(ps.id, srcShard, at, ps.pn.shards[srcShard], fm)
}

// finalize applies a verdict on the source shard: claim or tear down
// the source half of the circuit, wake parked walkers, and hand the
// outcome to the protocol driver.
func (ps *partShard) finalize(fm *finalizeMsg) {
	p, ok := ps.inflight[fm.msgID]
	if !ok {
		panic(fmt.Sprintf("netsim: shard %d finalizing unknown message %d", ps.id, fm.msgID))
	}
	delete(ps.inflight, fm.msgID)
	p.finish(fm)
}
