// Plane-failover routing over the duplicated communication system.
//
// The paper's Section 4 motivates the two network planes with bandwidth
// and with software separation (system software on one network,
// applications on the other), and Section 3.3 gives every message a CRC
// "so communication is not only efficient but also reliable". This file
// supplies the missing piece between the two: a driver-level reliability
// protocol that detects a dead or degraded plane A and re-sends over
// plane B, with every detection and retry cost accounted in simulated
// time. It is the mechanism the fault campaigns (internal/fault,
// cmd/pmfault) exercise.
//
// The protocol is deliberately simple — the PowerMANNA link interface has
// no hardware retry, so reliability is the driver's job, exactly like the
// PIO-driven send path of Section 3.3:
//
//   - the sender posts the message on the preferred plane and arms an
//     acknowledgment timeout; silence (cut wire, circuit that never
//     forms) is detected at entry + AckTimeout.
//   - a receiver whose CRC check fails returns a NACK, detected at
//     LastByte + NackLatency — much sooner than the timeout.
//   - either way the sender backs off RetryBackoff and retries on the
//     other plane. Soft failures (timeouts, NACKs) allow re-cycling the
//     planes up to MaxAttempts, since congestion and death look alike
//     from the sender; a severed wire is hard evidence that rules its
//     plane out. A message exhausting every option is reported failed,
//     never silently dropped.
//   - a send FIFO stalled beyond SetupTimeout is abandoned without ever
//     entering the network — the driver polls the status register
//     (Section 3.3) and can tell the interface is wedged.
package netsim

import (
	"fmt"

	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
)

// Calibrated failover-protocol constants. The paper's system-level bound
// is "less than 4 µs latency for small messages" (Section 1); detection
// windows are sized a small multiple above it so a healthy-but-contended
// plane is not abandoned prematurely.
const (
	// DefaultSetupTimeout bounds the wait at any single busy resource —
	// twice the paper's small-message latency bound.
	DefaultSetupTimeout = 8 * sim.Microsecond
	// DefaultAckTimeout is the sender's wait for the delivery
	// acknowledgment — three times the latency bound, covering the ack's
	// own return trip.
	DefaultAckTimeout = 12 * sim.Microsecond
	// DefaultNackLatency is the receiver's CRC-fail NACK return time: a
	// small message back across the (healthy) plane plus driver handling.
	DefaultNackLatency = 1 * sim.Microsecond
	// DefaultRetryBackoff is the driver pause between detecting a failed
	// attempt and re-posting on the other plane (status-register polls
	// and send-FIFO refill, Section 3.3).
	DefaultRetryBackoff = 500 * sim.Nanosecond
	// DefaultReprobeInterval is how long a Transport's plane-down cache
	// keeps routing around a plane that failed an attempt before risking
	// a fresh probe — long enough that a steady message stream stops
	// paying the ack timeout per message, short enough that a healed
	// plane (a stall window ending, a stuck arbiter resetting) is picked
	// back up within a campaign.
	DefaultReprobeInterval = 200 * sim.Microsecond
	// DefaultPlaneDownCheck is the cached-fast-path cost: the driver
	// consulting its own plane-down state (a handful of loads and a
	// branch, no uncached I/O) before skipping straight to the other
	// plane.
	DefaultPlaneDownCheck = 50 * sim.Nanosecond
	// DefaultMaxAttempts bounds the real send attempts per message.
	// Soft failures (setup timeout, NACK) are ambiguous between a dead
	// plane and pathological congestion, so the driver re-cycles the
	// planes a few times before declaring the message lost; hard
	// evidence (a severed wire) rules a plane out immediately.
	DefaultMaxAttempts = 6
	// DefaultCRCRetries is the same-plane re-send budget on a CRC NACK.
	// A NACK is proof the plane carried the frame end to end — the
	// circuit formed and the body arrived, merely damaged — so one
	// re-send on the same plane is cheaper than charging the failover
	// path and poisoning the plane-down cache for a transient bit error.
	DefaultCRCRetries = 1
)

// FailoverConfig calibrates the driver-level reliability protocol.
type FailoverConfig struct {
	// SetupTimeout bounds the wait at any single busy resource before
	// the plane is declared down (catches stuck-busy crossbar outputs
	// and wedged send FIFOs).
	SetupTimeout sim.Time
	// AckTimeout is how long the sender waits for the delivery
	// acknowledgment before assuming the plane swallowed the message.
	AckTimeout sim.Time
	// NackLatency is the return time of a receiver's CRC-fail NACK.
	NackLatency sim.Time
	// RetryBackoff is the pause between detection and the retry.
	RetryBackoff sim.Time
	// ReprobeInterval is how long a Transport's plane-down cache routes
	// around a failed plane before the next real probe. Zero disables
	// the cache (every send pays the full detection window again —
	// the pre-Transport behaviour, and what Network.SendReliable does).
	ReprobeInterval sim.Time
	// PlaneDownCheck is the per-message cost of consulting the plane-
	// down cache and skipping a known-dead plane.
	PlaneDownCheck sim.Time
	// MaxAttempts bounds real attempts per message across all planes;
	// zero means one attempt per wired plane (no soft-failure retries).
	// Planes with hard evidence of death (severed wire) are never
	// retried within a send.
	MaxAttempts int
	// CRCRetries is the per-message budget of same-plane re-sends on a
	// corrupt verdict before the driver charges the failover path. Zero
	// disables the retry (every NACK fails over immediately — the
	// pre-retry behaviour). Retries count against MaxAttempts.
	CRCRetries int
}

// DefaultFailover returns the calibrated protocol constants.
func DefaultFailover() FailoverConfig {
	return FailoverConfig{
		SetupTimeout:    DefaultSetupTimeout,
		AckTimeout:      DefaultAckTimeout,
		NackLatency:     DefaultNackLatency,
		RetryBackoff:    DefaultRetryBackoff,
		ReprobeInterval: DefaultReprobeInterval,
		PlaneDownCheck:  DefaultPlaneDownCheck,
		MaxAttempts:     DefaultMaxAttempts,
		CRCRetries:      DefaultCRCRetries,
	}
}

// PlaneCounters accumulates one network plane's degraded-mode statistics
// across SendReliable calls.
type PlaneCounters struct {
	// Attempts counts sends attempted on this plane.
	Attempts int64
	// Delivered counts messages that arrived intact via this plane.
	Delivered int64
	// Stalled counts attempts whose entry was deferred by an NI stall.
	Stalled int64
	// LinkDown counts attempts aborted by a severed wire.
	LinkDown int64
	// SetupTimeouts counts attempts aborted waiting on a busy resource
	// (stuck-busy output, wedged FIFO, or pathological congestion).
	SetupTimeouts int64
	// CRCErrors counts attempts delivered corrupt and NACKed.
	CRCErrors int64
	// CRCRetries counts NACKed attempts re-sent on the same plane under
	// the CRCRetries budget instead of failing over.
	CRCRetries int64
	// FailedOver counts attempts abandoned to the other plane.
	FailedOver int64
	// SkippedDown counts sends that skipped this plane on a plane-down
	// cache hit, paying only the cached status check instead of the full
	// detection window (Transport only; SendReliable is cacheless).
	SkippedDown int64
	// OSMessages counts background OS-stream messages injected on this
	// plane (osstream.go; only plane B carries the stream).
	OSMessages int64
	// OSDropped counts OS-stream messages the plane failed to carry
	// (severed wire, unrouted pair).
	OSDropped int64
}

// PlaneCounterSet renders plane p's counters as an ordered
// stats.CounterSet — the degraded-mode report of cmd/pmfault.
func (n *Network) PlaneCounterSet(p int) stats.CounterSet {
	c := n.planes[p]
	set := stats.CounterSet{Title: fmt.Sprintf("plane %s", planeName(p))}
	set.Add("attempts", c.Attempts)
	set.Add("delivered", c.Delivered)
	set.Add("stalled", c.Stalled)
	set.Add("link-down", c.LinkDown)
	set.Add("setup-timeouts", c.SetupTimeouts)
	set.Add("crc-errors", c.CRCErrors)
	set.Add("crc-retries", c.CRCRetries)
	set.Add("failed-over", c.FailedOver)
	set.Add("skipped-down", c.SkippedDown)
	set.Add("os-messages", c.OSMessages)
	set.Add("os-dropped", c.OSDropped)
	return set
}

// Plane returns plane p's raw counters.
func (n *Network) Plane(p int) PlaneCounters { return n.planes[p] }

func planeName(p int) string {
	if p == topo.NetworkA {
		return "A"
	}
	return "B"
}

// Decomp splits a send's sender-observed latency into the four places
// the time can go, the per-message decomposition the telemetry layer
// aggregates per tenant (DESIGN.md §11):
//
//   - Arb: contention — send-FIFO drain at the source NI, busy wires,
//     crossbar output arbitration — on the attempt that delivered. The
//     residual of the attempt's span over its ideal transit, so every
//     wait the wormhole walk absorbed lands here.
//   - Wire: the zero-contention transit of the delivering attempt —
//     propagation, route setup and body streaming on an idle path. A
//     pure function of the route and payload.
//   - Detect: time spent learning that attempts failed — ack-timeout
//     windows, NACK returns, FIFO-stall abandons, and the cached
//     plane-down status checks (a failed CRC attempt's whole window,
//     its wire time included, is detection: the transfer bought no
//     progress, only the NACK's evidence).
//   - Retry: the driver's backoff pauses between a detection and the
//     re-post on the next plane.
//
// The components are exact, not sampled: for every delivered message
// Arb + Wire + Detect + Retry == Latency(), and for a failed one
// Detect + Retry == Latency() with Arb and Wire zero (the message
// never completed a transit). Unit-tested in decomp_test.go.
type Decomp struct {
	Arb, Wire, Detect, Retry sim.Time
}

// Total is the decomposition's sum — equal to Delivery.Latency().
func (c Decomp) Total() sim.Time { return c.Arb + c.Wire + c.Detect + c.Retry }

// Delivery describes the outcome of one reliable send.
type Delivery struct {
	// Transit is the successful attempt's timing (zero if Failed).
	Transit Transit
	// Plane is the plane that delivered the message.
	Plane int
	// Attempts counts real send attempts (1 = delivered first try; more
	// means failovers and soft-failure retries preceded it).
	Attempts int
	// SkippedDown counts planes skipped on a plane-down cache hit before
	// this delivery (Transport sends only).
	SkippedDown int
	// Retried marks a delivery that did not land on the first-choice
	// plane — either a real failed attempt preceded it or the plane-down
	// cache skipped plane A outright.
	Retried bool
	// Failed marks a message both planes failed to carry.
	Failed bool
	// PayloadBytes is the message's payload length as requested — echoed
	// on every outcome so open-loop senders with many messages in flight
	// can account delivered bytes from the callback alone.
	PayloadBytes int
	// Sent is the requested entry time; Done is delivery (intact
	// LastByte) or, for failed messages, when the sender gave up.
	Sent, Done sim.Time
	// Decomp splits Latency() exactly into arbitration, wire, detection
	// and retry time (see Decomp).
	Decomp Decomp
}

// Latency is the end-to-end time the sender observed, including every
// detection window, backoff and retry.
func (d Delivery) Latency() sim.Time { return d.Done - d.Sent }

// SendReliable sends payloadBytes from node src to node dst under the
// failover protocol: plane A first (applications own plane A, Section 4),
// then plane B on timeout or NACK. All protocol costs — stall deferral,
// ack timeout, NACK return, backoff — land in the returned Delivery's
// times. A message failing on both planes returns with Failed set (not an
// error: degraded operation is a modelled outcome, and the campaign
// tables count it).
//
// SendReliable is the cacheless entry point: every call pays the full
// detection window on a dead plane, and no route cache amortises the
// lookup. Long-lived senders should hold a Transport (transport.go)
// instead — it runs the identical protocol with the plane-down and route
// caches on top.
func (n *Network) SendReliable(at sim.Time, src, dst, payloadBytes int, cfg FailoverConfig) (Delivery, error) {
	if src < 0 || src >= n.topo.Nodes() {
		return Delivery{}, fmt.Errorf("netsim: node out of range (%d, %d)", src, dst)
	}
	// An ephemeral transport shares the protocol body; its nil route
	// cache falls through to direct topology lookups, and the zeroed
	// ReprobeInterval disables the plane-down cache.
	eph := Transport{net: n, src: src}
	cfg.ReprobeInterval = 0
	return eph.sendWith(at, dst, payloadBytes, cfg)
}

// errorsAs is errors.As specialised to *DownError; spelled out to keep
// the hot send path free of reflection.
func errorsAs(err error, target **DownError) bool {
	d, ok := err.(*DownError)
	if ok {
		*target = d
	}
	return ok
}
