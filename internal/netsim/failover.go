// Plane-failover routing over the duplicated communication system.
//
// The paper's Section 4 motivates the two network planes with bandwidth
// and with software separation (system software on one network,
// applications on the other), and Section 3.3 gives every message a CRC
// "so communication is not only efficient but also reliable". This file
// supplies the missing piece between the two: a driver-level reliability
// protocol that detects a dead or degraded plane A and re-sends over
// plane B, with every detection and retry cost accounted in simulated
// time. It is the mechanism the fault campaigns (internal/fault,
// cmd/pmfault) exercise.
//
// The protocol is deliberately simple — the PowerMANNA link interface has
// no hardware retry, so reliability is the driver's job, exactly like the
// PIO-driven send path of Section 3.3:
//
//   - the sender posts the message on the preferred plane and arms an
//     acknowledgment timeout; silence (cut wire, circuit that never
//     forms) is detected at entry + AckTimeout.
//   - a receiver whose CRC check fails returns a NACK, detected at
//     LastByte + NackLatency — much sooner than the timeout.
//   - either way the sender backs off RetryBackoff and retries once on
//     the other plane. Two planes, two attempts; a message failing both
//     is reported failed, never silently dropped.
//   - a send FIFO stalled beyond SetupTimeout is abandoned without ever
//     entering the network — the driver polls the status register
//     (Section 3.3) and can tell the interface is wedged.
package netsim

import (
	"fmt"

	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
)

// Calibrated failover-protocol constants. The paper's system-level bound
// is "less than 4 µs latency for small messages" (Section 1); detection
// windows are sized a small multiple above it so a healthy-but-contended
// plane is not abandoned prematurely.
const (
	// DefaultSetupTimeout bounds the wait at any single busy resource —
	// twice the paper's small-message latency bound.
	DefaultSetupTimeout = 8 * sim.Microsecond
	// DefaultAckTimeout is the sender's wait for the delivery
	// acknowledgment — three times the latency bound, covering the ack's
	// own return trip.
	DefaultAckTimeout = 12 * sim.Microsecond
	// DefaultNackLatency is the receiver's CRC-fail NACK return time: a
	// small message back across the (healthy) plane plus driver handling.
	DefaultNackLatency = 1 * sim.Microsecond
	// DefaultRetryBackoff is the driver pause between detecting a failed
	// attempt and re-posting on the other plane (status-register polls
	// and send-FIFO refill, Section 3.3).
	DefaultRetryBackoff = 500 * sim.Nanosecond
)

// FailoverConfig calibrates the driver-level reliability protocol.
type FailoverConfig struct {
	// SetupTimeout bounds the wait at any single busy resource before
	// the plane is declared down (catches stuck-busy crossbar outputs
	// and wedged send FIFOs).
	SetupTimeout sim.Time
	// AckTimeout is how long the sender waits for the delivery
	// acknowledgment before assuming the plane swallowed the message.
	AckTimeout sim.Time
	// NackLatency is the return time of a receiver's CRC-fail NACK.
	NackLatency sim.Time
	// RetryBackoff is the pause between detection and the retry.
	RetryBackoff sim.Time
}

// DefaultFailover returns the calibrated protocol constants.
func DefaultFailover() FailoverConfig {
	return FailoverConfig{
		SetupTimeout: DefaultSetupTimeout,
		AckTimeout:   DefaultAckTimeout,
		NackLatency:  DefaultNackLatency,
		RetryBackoff: DefaultRetryBackoff,
	}
}

// PlaneCounters accumulates one network plane's degraded-mode statistics
// across SendReliable calls.
type PlaneCounters struct {
	// Attempts counts sends attempted on this plane.
	Attempts int64
	// Delivered counts messages that arrived intact via this plane.
	Delivered int64
	// Stalled counts attempts whose entry was deferred by an NI stall.
	Stalled int64
	// LinkDown counts attempts aborted by a severed wire.
	LinkDown int64
	// SetupTimeouts counts attempts aborted waiting on a busy resource
	// (stuck-busy output, wedged FIFO, or pathological congestion).
	SetupTimeouts int64
	// CRCErrors counts attempts delivered corrupt and NACKed.
	CRCErrors int64
	// FailedOver counts attempts abandoned to the other plane.
	FailedOver int64
}

// PlaneCounterSet renders plane p's counters as an ordered
// stats.CounterSet — the degraded-mode report of cmd/pmfault.
func (n *Network) PlaneCounterSet(p int) stats.CounterSet {
	c := n.planes[p]
	set := stats.CounterSet{Title: fmt.Sprintf("plane %s", planeName(p))}
	set.Add("attempts", c.Attempts)
	set.Add("delivered", c.Delivered)
	set.Add("stalled", c.Stalled)
	set.Add("link-down", c.LinkDown)
	set.Add("setup-timeouts", c.SetupTimeouts)
	set.Add("crc-errors", c.CRCErrors)
	set.Add("failed-over", c.FailedOver)
	return set
}

// Plane returns plane p's raw counters.
func (n *Network) Plane(p int) PlaneCounters { return n.planes[p] }

func planeName(p int) string {
	if p == topo.NetworkA {
		return "A"
	}
	return "B"
}

// Delivery describes the outcome of one reliable send.
type Delivery struct {
	// Transit is the successful attempt's timing (zero if Failed).
	Transit Transit
	// Plane is the plane that delivered the message.
	Plane int
	// Attempts counts planes tried (1 = first try, 2 = failover).
	Attempts int
	// Retried marks a delivery that needed the second plane.
	Retried bool
	// Failed marks a message both planes failed to carry.
	Failed bool
	// Sent is the requested entry time; Done is delivery (intact
	// LastByte) or, for failed messages, when the sender gave up.
	Sent, Done sim.Time
}

// Latency is the end-to-end time the sender observed, including every
// detection window, backoff and retry.
func (d Delivery) Latency() sim.Time { return d.Done - d.Sent }

// SendReliable sends payloadBytes from node src to node dst under the
// failover protocol: plane A first (applications own plane A, Section 4),
// then plane B on timeout or NACK. All protocol costs — stall deferral,
// ack timeout, NACK return, backoff — land in the returned Delivery's
// times. A message failing on both planes returns with Failed set (not an
// error: degraded operation is a modelled outcome, and the campaign
// tables count it).
func (n *Network) SendReliable(at sim.Time, src, dst, payloadBytes int, cfg FailoverConfig) (Delivery, error) {
	if src < 0 || src >= n.topo.Nodes() || dst < 0 || dst >= n.topo.Nodes() {
		return Delivery{}, fmt.Errorf("netsim: node out of range (%d, %d)", src, dst)
	}
	if payloadBytes < 0 {
		return Delivery{}, fmt.Errorf("netsim: negative payload")
	}
	attemptAt := at
	attempts := 0
	for _, plane := range []int{topo.NetworkA, topo.NetworkB} {
		pc := &n.planes[plane]
		path, err := n.topo.Route(src, dst, plane)
		if err != nil {
			// The plane is not wired at all (single-network topologies):
			// software knows immediately, no detection cost.
			continue
		}
		attempts++
		pc.Attempts++
		entry := n.nis[src].Links[plane].ReadyAt(attemptAt)
		if entry > attemptAt {
			pc.Stalled++
		}
		if cfg.SetupTimeout > 0 && entry > attemptAt+cfg.SetupTimeout {
			// The send FIFO never drained: abandon the plane without
			// entering the network.
			pc.SetupTimeouts++
			pc.FailedOver++
			attemptAt += cfg.SetupTimeout + cfg.RetryBackoff
			continue
		}
		tr, err := n.send(entry, path, payloadBytes, cfg.SetupTimeout)
		if err != nil {
			var down *DownError
			if !errorsAs(err, &down) {
				return Delivery{}, err
			}
			if down.Cut {
				pc.LinkDown++
			} else {
				pc.SetupTimeouts++
			}
			pc.FailedOver++
			// Silence on the wire: the sender learns only via the
			// acknowledgment timeout, wherever the fault sits.
			attemptAt = entry + cfg.AckTimeout + cfg.RetryBackoff
			continue
		}
		if tr.Corrupted {
			n.nis[dst].Links[plane].RecordCRCError()
			pc.CRCErrors++
			pc.FailedOver++
			attemptAt = tr.LastByte + cfg.NackLatency + cfg.RetryBackoff
			continue
		}
		n.nis[dst].Links[plane].RecordFrame()
		pc.Delivered++
		return Delivery{
			Transit:  tr,
			Plane:    plane,
			Attempts: attempts,
			Retried:  attempts > 1,
			Sent:     at,
			Done:     tr.LastByte,
		}, nil
	}
	return Delivery{Attempts: attempts, Failed: true, Sent: at, Done: attemptAt}, nil
}

// errorsAs is errors.As specialised to *DownError; spelled out to keep
// the hot send path free of reflection.
func errorsAs(err error, target **DownError) bool {
	d, ok := err.(*DownError)
	if ok {
		*target = d
	}
	return ok
}
