package netsim

import (
	"fmt"
	"testing"

	"powermanna/internal/metrics"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// system256Shards are the shard counts that align with System256's
// 16 leaf groups of 8 nodes.
var system256Shards = []int{1, 2, 4, 8, 16}

// partSend runs one message through a fresh partitioned System256 and
// returns its Delivery. fault applies wire faults to both the
// partitioned and the legacy network identically.
func partSend(t *testing.T, shards int, serial bool, src, dst, bytes int, fault func(*Network)) Delivery {
	t.Helper()
	pn, err := NewPartitioned(topo.System256(), shards, DefaultFailover())
	if err != nil {
		t.Fatalf("NewPartitioned(%d): %v", shards, err)
	}
	pn.SetSerial(serial)
	if fault != nil {
		fault(pn.Network())
	}
	var got Delivery
	done := false
	sh := pn.Shard(pn.ShardOf(src))
	sh.At(0, func() {
		if err := pn.SendAsync(src, dst, bytes, nil, 0, func(d Delivery) { got = d; done = true }); err != nil {
			t.Errorf("SendAsync: %v", err)
		}
	})
	pn.Run()
	if !done {
		t.Fatalf("shards=%d serial=%v: send %d->%d never completed", shards, serial, src, dst)
	}
	return got
}

// legacySend runs the same message through the synchronous path.
func legacySend(t *testing.T, src, dst, bytes int, fault func(*Network)) Delivery {
	t.Helper()
	n := New(topo.System256())
	if fault != nil {
		fault(n)
	}
	d, err := n.MustTransport(src, DefaultFailover()).Send(0, dst, bytes)
	if err != nil {
		t.Fatalf("legacy send %d->%d: %v", src, dst, err)
	}
	return d
}

// TestPartitionedSendMatchesLegacy pins the partitioned split-phase
// send to the synchronous protocol, message by message: with no
// contention the two paths must produce identical Delivery records —
// same transit times, same plane, same attempt and failover accounting
// — for intra-group, cross-group and faulted routes, at every aligned
// shard count and under both dispatch modes.
func TestPartitionedSendMatchesLegacy(t *testing.T) {
	cutUplink := func(n *Network) {
		// Sever the source's plane-A uplink just after the header passes
		// its entry check: failover to plane B after one ack timeout.
		n.CutWire(0, topo.NetworkA, 100*sim.Nanosecond)
	}
	cutFarSide := func(n *Network) {
		// Sever the destination-side leaf-to-node wire of 0->13 plane A
		// before the run: the walk fails on the destination half.
		path, err := n.Topology().Route(0, 13, topo.NetworkA)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		last := path.Hops[len(path.Hops)-1]
		n.CutWire(n.Topology().Nodes()+last.Xbar, last.Out, 0)
	}
	corruptFarSide := func(n *Network) {
		path, err := n.Topology().Route(0, 13, topo.NetworkA)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		last := path.Hops[len(path.Hops)-1]
		n.CorruptWire(n.Topology().Nodes()+last.Xbar, last.Out, 0, 20*sim.Microsecond)
	}
	cases := []struct {
		name     string
		src, dst int
		bytes    int
		fault    func(*Network)
	}{
		{"intra-group", 0, 5, 256, nil},
		{"cross-group", 0, 13, 256, nil},
		{"far-cross-shard", 3, 120, 4096, nil},
		{"uplink-cut-failover", 0, 13, 256, cutUplink},
		{"dst-cut-failover", 0, 13, 256, cutFarSide},
		{"dst-crc-retry", 0, 13, 256, corruptFarSide},
	}
	for _, tc := range cases {
		want := legacySend(t, tc.src, tc.dst, tc.bytes, tc.fault)
		for _, shards := range system256Shards {
			for _, serial := range []bool{false, true} {
				got := partSend(t, shards, serial, tc.src, tc.dst, tc.bytes, tc.fault)
				if got != want {
					t.Errorf("%s shards=%d serial=%v:\n got %+v\nwant %+v",
						tc.name, shards, serial, got, want)
				}
			}
		}
	}
}

// partBurst is a contended workload: every node sends a first wave to a
// fixed permutation target at t=0 and a second wave back to its group
// neighbourhood at 2 µs — enough same-time cross-group traffic to
// exercise canonical drains, open holds and parked walkers.
func partBurst(t *testing.T, shards int, serial bool) (deliveries []Delivery, arrivals []sim.Time, planes [2]PlaneCounters, mets string, events []trace.Event) {
	t.Helper()
	top := topo.System256()
	pn, err := NewPartitioned(top, shards, DefaultFailover())
	if err != nil {
		t.Fatalf("NewPartitioned(%d): %v", shards, err)
	}
	pn.SetSerial(serial)
	reg := metrics.NewRegistry()
	pn.SetMetrics(reg)
	rec := trace.NewRecorder()
	pn.SetRecorder(rec)
	// A couple of wire faults so failover and CRC paths run contended.
	pn.Network().CutWire(9, topo.NetworkA, 500*sim.Nanosecond)
	pn.Network().CorruptWire(40, topo.NetworkA, 0, 10*sim.Microsecond)

	nodes := top.Nodes()
	deliveries = make([]Delivery, 2*nodes)
	arrivals = make([]sim.Time, nodes)
	pn.OnDeliver(func(src, dst int, payload any, first, last sim.Time) {
		if last > arrivals[dst] {
			arrivals[dst] = last
		}
	})
	for n := 0; n < nodes; n++ {
		n := n
		dst1 := (n*37 + 13) % nodes
		if dst1 == n {
			dst1 = (dst1 + 1) % nodes
		}
		dst2 := (n + 9) % nodes
		sh := pn.Shard(pn.ShardOf(n))
		sh.At(0, func() {
			if err := pn.SendAsync(n, dst1, 512, nil, 0, func(d Delivery) { deliveries[n] = d }); err != nil {
				t.Errorf("SendAsync: %v", err)
			}
		})
		sh.At(2*sim.Microsecond, func() {
			if err := pn.SendAsync(n, dst2, 128, nil, 2*sim.Microsecond, func(d Delivery) { deliveries[nodes+n] = d }); err != nil {
				t.Errorf("SendAsync: %v", err)
			}
		})
	}
	pn.Run()
	return deliveries, arrivals, [2]PlaneCounters{pn.Plane(0), pn.Plane(1)}, reg.Render(), rec.Events()
}

// TestPartitionedBurstDeterministicAcrossShards pins the load-bearing
// invariant of the partitioned datapath: the event program is a pure
// function of the model, so every aligned shard count — and serial vs
// parallel dispatch — produces identical deliveries, arrival times,
// plane counters, metrics and merged traces for the same contended
// workload.
func TestPartitionedBurstDeterministicAcrossShards(t *testing.T) {
	refD, refA, refP, refM, refE := partBurst(t, 1, false)
	for _, d := range refD {
		if d.Done == 0 && !d.Failed {
			t.Fatalf("burst left an unfinished send: %+v", d)
		}
	}
	if refP[0].Delivered+refP[1].Delivered == 0 {
		t.Fatalf("burst delivered nothing")
	}
	if refP[1].FailedOver == 0 && refP[0].FailedOver == 0 {
		t.Fatalf("burst faults caused no failovers")
	}
	for _, shards := range system256Shards {
		for _, serial := range []bool{false, true} {
			if shards == 1 && !serial {
				continue
			}
			name := fmt.Sprintf("shards=%d serial=%v", shards, serial)
			d, a, p, m, e := partBurst(t, shards, serial)
			for i := range refD {
				if d[i] != refD[i] {
					t.Fatalf("%s: delivery %d diverged:\n got %+v\nwant %+v", name, i, d[i], refD[i])
				}
			}
			for i := range refA {
				if a[i] != refA[i] {
					t.Errorf("%s: arrival at node %d diverged: got %v want %v", name, i, a[i], refA[i])
				}
			}
			if p != refP {
				t.Errorf("%s: plane counters diverged:\n got %+v\nwant %+v", name, p, refP)
			}
			if m != refM {
				t.Errorf("%s: metrics diverged", name)
			}
			if len(e) != len(refE) {
				t.Fatalf("%s: trace length diverged: got %d want %d", name, len(e), len(refE))
			}
			for i := range e {
				if e[i] != refE[i] {
					t.Fatalf("%s: trace event %d diverged:\n got %+v\nwant %+v", name, i, e[i], refE[i])
				}
			}
		}
	}
}
