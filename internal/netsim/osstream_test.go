package netsim

import (
	"strings"
	"testing"

	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// osWindow is long enough for ~100 timer ticks and ~10 bursts.
const osWindow = 1 * sim.Millisecond

// TestBurstyOSStreamAddsBurstTraffic checks the bursty schedule is the
// fixed train plus page-daemon bursts: strictly more messages over the
// same window, with the extra count matching the burst arithmetic.
func TestBurstyOSStreamAddsBurstTraffic(t *testing.T) {
	fixed := New(topo.Cluster8())
	fixed.AttachOSStream(DefaultOSStream())
	fixed.advanceOS(osWindow)
	fixedMsgs := fixed.Plane(topo.NetworkB).OSMessages

	bursty := New(topo.Cluster8())
	bursty.AttachOSStream(BurstyOSStream(1))
	bursty.advanceOS(osWindow)
	burstyMsgs := bursty.Plane(topo.NetworkB).OSMessages

	if fixedMsgs == 0 {
		t.Fatal("fixed train injected nothing")
	}
	if burstyMsgs <= fixedMsgs {
		t.Errorf("bursty schedule injected %d messages, fixed train %d — no bursts seen",
			burstyMsgs, fixedMsgs)
	}
	// ~10 bursts of DefaultBurstMessages ride on top of the tick train.
	extra := burstyMsgs - fixedMsgs
	if extra < DefaultBurstMessages || extra > 20*DefaultBurstMessages {
		t.Errorf("burst surplus = %d messages, want a few bursts' worth", extra)
	}
}

// TestBurstyOSStreamDeterministicPerSeed pins the determinism contract
// at the strongest level available: the full recorded timeline of the
// injected stream, exported to bytes, is identical for identical seeds
// and differs across seeds.
func TestBurstyOSStreamDeterministicPerSeed(t *testing.T) {
	render := func(seed int64) string {
		n := New(topo.Cluster8())
		rec := trace.NewRecorder()
		n.SetRecorder(rec)
		n.AttachOSStream(BurstyOSStream(seed))
		n.advanceOS(osWindow)
		var b strings.Builder
		if err := trace.WriteChrome(&b, rec); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render(1) != render(1) {
		t.Error("same seed produced different OS-stream timelines")
	}
	if render(1) == render(2) {
		t.Error("seeds 1 and 2 produced identical OS-stream timelines")
	}
}

// TestBurstyOSStreamResetRearms checks Network.Reset rewinds the burst
// state too: a reset network re-renders the identical stream.
func TestBurstyOSStreamResetRearms(t *testing.T) {
	n := New(topo.Cluster8())
	n.AttachOSStream(BurstyOSStream(7))
	n.advanceOS(osWindow)
	first := n.Plane(topo.NetworkB).OSMessages
	n.Reset()
	n.advanceOS(osWindow)
	second := n.Plane(topo.NetworkB).OSMessages
	if first == 0 || first != second {
		t.Errorf("OS messages before/after Reset = %d/%d, want equal and nonzero", first, second)
	}
}

// TestSendRecordsTraceSpans checks the network-level instrumentation:
// a traced transport send produces message, setup and stream spans on
// the source node's track plus circuit and wire occupancy spans.
func TestSendRecordsTraceSpans(t *testing.T) {
	n := New(topo.Cluster8())
	rec := trace.NewRecorder()
	n.SetRecorder(rec)
	tp := n.MustTransport(0, DefaultFailover())
	if _, err := tp.Send(0, 5, 256); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, e := range rec.Events() {
		names[e.Cat+"/"+e.Name]++
	}
	for _, want := range []string{"netsim/msg", "netsim/setup", "netsim/stream", "xbar/circuit", "link/hold"} {
		if names[want] == 0 {
			t.Errorf("no %q event recorded; got %v", want, names)
		}
	}
}

// TestFailoverRecordsAttemptSpans checks a cut plane A leaves a labelled
// failed-attempt span and, on the second send, a plane-down cache-hit
// instant.
func TestFailoverRecordsAttemptSpans(t *testing.T) {
	n := New(topo.Cluster8())
	rec := trace.NewRecorder()
	n.SetRecorder(rec)
	n.CutWire(0, topo.NetworkA, 0)
	tp := n.MustTransport(0, DefaultFailover())
	if _, err := tp.Send(0, 5, 256); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Send(100*sim.Microsecond, 5, 256); err != nil {
		t.Fatal(err)
	}
	var sawAttempt, sawHit bool
	for _, e := range rec.Events() {
		if e.Cat == "failover" && e.Name == "attempt A" && e.Arg == "link-down" {
			sawAttempt = true
		}
		if e.Cat == "failover" && e.Name == "plane-down-hit" {
			sawHit = true
		}
	}
	if !sawAttempt {
		t.Error("no link-down attempt span on plane A")
	}
	if !sawHit {
		t.Error("no plane-down cache-hit instant on the second send")
	}
}
