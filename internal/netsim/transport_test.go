package netsim

import (
	"fmt"
	"strings"
	"testing"

	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// TestTransportRouteCache verifies the per-(dst, plane) route cache
// returns the same path the topology computes, on both planes, and keeps
// returning it on repeated lookups.
func TestTransportRouteCache(t *testing.T) {
	n := New(topo.Cluster8())
	tp := n.MustTransport(2, DefaultFailover())
	for _, plane := range []int{topo.NetworkA, topo.NetworkB} {
		want, err := n.Topology().Route(2, 6, plane)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			got, err := tp.Route(6, plane)
			if err != nil {
				t.Fatal(err)
			}
			if got.Network != want.Network || got.Dst != want.Dst || len(got.Hops) != len(want.Hops) {
				t.Errorf("cached route differs from topo.Route: %+v vs %+v", got, want)
			}
		}
	}
}

// TestTransportOutOfRange pins the constructor's validation.
func TestTransportOutOfRange(t *testing.T) {
	n := New(topo.Cluster8())
	if _, err := n.Transport(-1, DefaultFailover()); err == nil {
		t.Error("Transport(-1) succeeded")
	}
	if _, err := n.Transport(8, DefaultFailover()); err == nil {
		t.Error("Transport(nodes) succeeded")
	}
}

// TestPlaneDownCacheSkipsDetection is the tentpole's core claim: the
// first message to a dead plane pays the full acknowledgment timeout to
// learn of the death, and every following message pays only the cached
// status check until the reprobe interval expires.
func TestPlaneDownCacheSkipsDetection(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	tp := n.MustTransport(0, cfg)
	n.CutWire(0, topo.NetworkA, 0)

	first, err := tp.Send(0, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if first.Failed || first.Plane != topo.NetworkB || !first.Retried || first.SkippedDown != 0 {
		t.Fatalf("first delivery = %+v, want real plane-A detection then failover", first)
	}
	if first.Latency() < cfg.AckTimeout {
		t.Errorf("first latency %v did not pay the ack timeout %v", first.Latency(), cfg.AckTimeout)
	}
	if down, until := tp.PlaneDown(topo.NetworkA); !down || until <= 0 {
		t.Fatalf("plane A not cached down after detection (down=%v until=%v)", down, until)
	}

	// Well inside the reprobe window: the cache short-circuits plane A.
	at := 60 * sim.Microsecond
	second, err := tp.Send(at, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if second.Failed || second.Plane != topo.NetworkB || second.SkippedDown != 1 || second.Attempts != 1 {
		t.Fatalf("second delivery = %+v, want one cached skip then plane B", second)
	}
	if !second.Retried {
		t.Error("cached-skip delivery not marked Retried (it missed its first-choice plane)")
	}
	// The per-message overhead dropped from the full detection window to
	// the cached status check: the plane-B circuit starts forming
	// PlaneDownCheck after the requested entry, not AckTimeout+backoff.
	if gap := second.Transit.SetupDone - at; gap >= cfg.AckTimeout {
		t.Errorf("cached send still waited %v before plane B, want ~%v", gap, cfg.PlaneDownCheck)
	}
	if second.Latency() >= first.Latency() {
		t.Errorf("cached latency %v not below detection latency %v", second.Latency(), first.Latency())
	}
	if got := n.Plane(topo.NetworkA).SkippedDown; got != 1 {
		t.Errorf("plane-A skipped-down counter = %d, want 1", got)
	}
}

// TestPlaneDownReprobe verifies the deterministic reprobe: once the
// interval expires the driver risks a real plane-A attempt again (and
// re-pays the detection window when the plane is still dead).
func TestPlaneDownReprobe(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	tp := n.MustTransport(0, cfg)
	n.CutWire(0, topo.NetworkA, 0)

	if _, err := tp.Send(0, 1, 64); err != nil {
		t.Fatal(err)
	}
	_, reprobeAt := tp.PlaneDown(topo.NetworkA)
	d, err := tp.Send(reprobeAt, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.SkippedDown != 0 || d.Attempts != 2 {
		t.Fatalf("reprobe delivery = %+v, want a real plane-A attempt again", d)
	}
	if d.Latency() < cfg.AckTimeout {
		t.Errorf("reprobe latency %v did not re-pay the detection window", d.Latency())
	}
	if down, until := tp.PlaneDown(topo.NetworkA); !down || until <= reprobeAt {
		t.Errorf("failed reprobe did not re-arm the cache (down=%v until=%v)", down, until)
	}
}

// TestPlaneDownRecovery verifies a healed plane is picked back up: an NI
// stall window ends, the reprobe succeeds, and the cache clears.
func TestPlaneDownRecovery(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	tp := n.MustTransport(0, cfg)
	stallEnd := 4 * cfg.SetupTimeout
	n.NI(0).Links[topo.NetworkA].Stall(0, stallEnd)

	d, err := tp.Send(0, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Plane != topo.NetworkB {
		t.Fatalf("stalled plane A still delivered: %+v", d)
	}
	_, reprobeAt := tp.PlaneDown(topo.NetworkA)
	after, err := tp.Send(reprobeAt+stallEnd, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if after.Plane != topo.NetworkA || after.Retried {
		t.Fatalf("healed plane A not reused: %+v", after)
	}
	if down, _ := tp.PlaneDown(topo.NetworkA); down {
		t.Error("successful delivery did not clear the plane-down cache")
	}
}

// TestPlaneDownCacheNeverLosesMessages pins the invariant behind the
// cache: a message is reported failed only after a real attempt on every
// wired plane. Even with both planes cached down over a perfectly
// healthy network, the second pass probes the skipped planes for real
// and the message delivers — the cache is a latency optimisation, not an
// availability decision.
func TestPlaneDownCacheNeverLosesMessages(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	tp := n.MustTransport(0, cfg)
	tp.markDown(topo.NetworkA, 0, cfg)
	tp.markDown(topo.NetworkB, 0, cfg)

	d, err := tp.Send(1*sim.Microsecond, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed {
		t.Fatalf("message lost behind stale cache entries: %+v", d)
	}
	if d.SkippedDown != 2 || d.Attempts != 1 || d.Plane != topo.NetworkA {
		t.Errorf("delivery = %+v, want both planes skipped then a real plane-A probe", d)
	}
	if down, _ := tp.PlaneDown(topo.NetworkA); down {
		t.Error("successful probe did not clear the stale plane-A entry")
	}
}

// TestSendReliableStaysCacheless pins that the ephemeral SendReliable
// path never uses the plane-down cache: every call to a dead plane pays
// the full detection window (the pre-Transport behaviour the failover
// tests rely on).
func TestSendReliableStaysCacheless(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	n.CutWire(0, topo.NetworkA, 0)
	for i := 0; i < 3; i++ {
		d, err := n.SendReliable(sim.Time(i)*40*sim.Microsecond, 0, 1, 64, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d.SkippedDown != 0 || d.Latency() < cfg.AckTimeout {
			t.Fatalf("SendReliable call %d used a cache: %+v", i, d)
		}
	}
	if got := n.Plane(topo.NetworkA).SkippedDown; got != 0 {
		t.Errorf("SendReliable incremented skipped-down: %d", got)
	}
}

// TestFailoverContendsWithOSStream verifies the plane-B background load
// is felt exactly where the hardware would impose it: a failover retry
// whose plane-B entry lands during an OS message from the same node
// queues behind it on the shared uplink, arriving later than over an
// idle plane B.
func TestFailoverContendsWithOSStream(t *testing.T) {
	// The stream rotates sources every DefaultOSInterval, so node 0 sends
	// OS messages at 0, 80 us, 160 us, ... A reliable send posted at
	// 68 us detects the cut plane A at 80 us and retries on plane B at
	// 80.5 us — mid-way through node 0's 80 us OS message.
	at := 68 * sim.Microsecond
	run := func(withStream bool) (Delivery, PlaneCounters) {
		n := New(topo.Cluster8())
		if withStream {
			n.AttachOSStream(DefaultOSStream())
		}
		tp := n.MustTransport(0, DefaultFailover())
		n.CutWire(0, topo.NetworkA, 0)
		d, err := tp.Send(at, 1, 64)
		if err != nil {
			t.Fatal(err)
		}
		if d.Failed || d.Plane != topo.NetworkB {
			t.Fatalf("delivery (stream=%v) = %+v, want plane-B failover", withStream, d)
		}
		return d, n.Plane(topo.NetworkB)
	}
	idle, _ := run(false)
	loaded, pb := run(true)
	if pb.OSMessages == 0 {
		t.Fatal("no OS messages injected before the retry")
	}
	if loaded.Done <= idle.Done {
		t.Errorf("retry with OS stream done at %v, idle plane B at %v: no contention felt", loaded.Done, idle.Done)
	}
}

// TestResetRestoresByteIdenticalRun is the Reset contract of the
// transport layer: after a faulted run with an OS stream, Reset must
// clear the plane counters, the plane-down caches and the OS stream so
// an identical re-run renders byte-identically.
func TestResetRestoresByteIdenticalRun(t *testing.T) {
	n := New(topo.Cluster8())
	n.AttachOSStream(DefaultOSStream())
	cfg := DefaultFailover()
	tp := n.MustTransport(0, cfg)

	run := func() string {
		n.CutWire(0, topo.NetworkA, 0)
		var out strings.Builder
		for i := 0; i < 6; i++ {
			d, err := tp.Send(sim.Time(i)*25*sim.Microsecond, 1+i%7, 256)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&out, "msg %d: plane=%d attempts=%d skipped=%d done=%v failed=%v\n",
				i, d.Plane, d.Attempts, d.SkippedDown, d.Done, d.Failed)
		}
		for _, p := range []int{topo.NetworkA, topo.NetworkB} {
			set := n.PlaneCounterSet(p)
			out.WriteString(set.Render())
		}
		return out.String()
	}

	first := run()
	if !strings.Contains(first, "skipped=1") {
		t.Fatalf("faulted run never hit the plane-down cache:\n%s", first)
	}

	n.Reset()
	if down, _ := tp.PlaneDown(topo.NetworkA); down {
		t.Error("Reset kept the plane-down cache")
	}
	for _, p := range []int{topo.NetworkA, topo.NetworkB} {
		if c := n.Plane(p); c != (PlaneCounters{}) {
			t.Errorf("Reset kept plane %s counters: %+v", planeName(p), c)
		}
	}

	second := run()
	if first != second {
		t.Errorf("re-run after Reset not byte-identical\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
