// Metrics wiring for the network and its transports: the deterministic
// registry instruments (internal/metrics) the send path feeds whether
// or not tracing is enabled. Instruments are resolved once at attach
// time and held as nil-safe pointers, so the hot path pays one nil
// check per observation — the same always-on contract as the nil trace
// recorder.

package netsim

import (
	"powermanna/internal/metrics"
	"powermanna/internal/sim"
)

// Metric names the network feeds; pmfault --metrics dumps them.
const (
	// MetricSends counts reliable sends entering the failover protocol.
	MetricSends = "netsim.send.total"
	// MetricDelivered counts sends that delivered on some plane.
	MetricDelivered = "netsim.send.delivered"
	// MetricFailed counts sends both planes failed to carry.
	MetricFailed = "netsim.send.failed"
	// MetricRetried counts deliveries that missed their first-choice
	// plane.
	MetricRetried = "netsim.send.retried"
	// MetricPlaneDownHits counts plane attempts short-circuited by the
	// plane-down cache; MetricPlaneDownHits over MetricSends is the cache
	// hit ratio the degradation curve bends on.
	MetricPlaneDownHits = "netsim.plane-down.hits"
	// MetricSendLatency is the sender-observed latency histogram of
	// delivered messages, detection windows and retries included.
	MetricSendLatency = "netsim.send.latency"
	// MetricDetection is the per-failed-attempt detection-window
	// histogram: how long the driver took to learn an attempt died
	// (ack timeout, NACK return or FIFO-stall abandon).
	MetricDetection = "netsim.failover.detection"
	// MetricSendLatencyTenantPrefix prefixes the per-tenant delivered-
	// latency histograms: one histogram per label declared via
	// Transport.SetTenant or PartNetwork.SetTenants, on finer buckets
	// than the machine-wide MetricSendLatency so tail percentiles
	// (internal/traffic SLOs) resolve within a quasi-√2 step.
	MetricSendLatencyTenantPrefix = MetricSendLatency + "."
)

// latencyBuckets spans the send-latency range of interest: from the
// paper's sub-4 µs happy path up past several stacked 12 µs detection
// windows.
func latencyBuckets() []sim.Time {
	return metrics.TimeBuckets(sim.Microsecond, 2, 10) // 1 µs .. 512 µs
}

// tenantLatencyBuckets is the per-tenant latency ladder: a quasi-√2
// geometric sequence (1, 1.5, 2, 3, 4, 6, ... µs) spanning the same
// range as latencyBuckets with twice the resolution, because SLO
// percentiles are read off these buckets and a factor-2 ladder would
// round a p999 up to double its true value.
func tenantLatencyBuckets() []sim.Time {
	out := make([]sim.Time, 0, 20)
	for b := sim.Microsecond; b <= 512*sim.Microsecond; b *= 2 {
		out = append(out, b, b+b/2)
	}
	return out
}

// netInstruments holds the network's resolved instruments; the zero
// value (all nil) is the "metrics off" state.
type netInstruments struct {
	sends, delivered, failed, retried, planeDownHits *metrics.Counter
	sendLatency, detection                           *metrics.Histogram
	// tenantLat holds the per-tenant delivered-latency histograms of a
	// partitioned shard, indexed by the tenant id SendAsyncTenant carries
	// (PartNetwork.SetTenants); nil when unlabelled.
	tenantLat []*metrics.Histogram
}

// SetMetrics attaches a metrics registry: the failover send path feeds
// send outcome counters and latency/detection histograms, and every
// crossbar feeds the shared arbitration instruments plus the per-plane
// arbitration-wait histogram of the plane it serves (per the topology's
// CrossbarPlanes flood; unreachable crossbars feed only the shared
// instrument). A nil registry detaches everything — the default state,
// costing the instrumented paths one nil check per observation.
func (n *Network) SetMetrics(m *metrics.Registry) {
	n.mreg = m
	if m == nil {
		n.met = netInstruments{}
	} else {
		n.met = netInstruments{
			sends:         m.Counter(MetricSends),
			delivered:     m.Counter(MetricDelivered),
			failed:        m.Counter(MetricFailed),
			retried:       m.Counter(MetricRetried),
			planeDownHits: m.Counter(MetricPlaneDownHits),
			sendLatency:   m.TimeHistogram(MetricSendLatency, latencyBuckets()),
			detection:     m.TimeHistogram(MetricDetection, latencyBuckets()),
		}
	}
	planes := n.topo.CrossbarPlanes()
	for i, x := range n.xbars {
		label := ""
		if planes[i] >= 0 {
			label = planeName(planes[i])
		}
		x.Metrics(m, label)
	}
}

// observeSend tallies one completed reliable send.
func (mi *netInstruments) observeSend(d Delivery) {
	mi.sends.Inc()
	mi.planeDownHits.Add(int64(d.SkippedDown))
	if d.Failed {
		mi.failed.Inc()
		return
	}
	mi.delivered.Inc()
	mi.sendLatency.ObserveTime(d.Latency())
	if d.Retried {
		mi.retried.Inc()
	}
}
