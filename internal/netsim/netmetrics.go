// Metrics wiring for the network and its transports: the deterministic
// registry instruments (internal/metrics) the send path feeds whether
// or not tracing is enabled. Instruments are resolved once at attach
// time and held as nil-safe pointers, so the hot path pays one nil
// check per observation — the same always-on contract as the nil trace
// recorder.

package netsim

import (
	"powermanna/internal/metrics"
	"powermanna/internal/sim"
)

// Metric names the network feeds; pmfault --metrics dumps them.
const (
	// MetricSends counts reliable sends entering the failover protocol.
	MetricSends = "netsim.send.total"
	// MetricDelivered counts sends that delivered on some plane.
	MetricDelivered = "netsim.send.delivered"
	// MetricFailed counts sends both planes failed to carry.
	MetricFailed = "netsim.send.failed"
	// MetricRetried counts deliveries that missed their first-choice
	// plane.
	MetricRetried = "netsim.send.retried"
	// MetricPlaneDownHits counts plane attempts short-circuited by the
	// plane-down cache; MetricPlaneDownHits over MetricSends is the cache
	// hit ratio the degradation curve bends on.
	MetricPlaneDownHits = "netsim.plane-down.hits"
	// MetricSendLatency is the sender-observed latency histogram of
	// delivered messages, detection windows and retries included.
	MetricSendLatency = "netsim.send.latency"
	// MetricDetection is the per-failed-attempt detection-window
	// histogram: how long the driver took to learn an attempt died
	// (ack timeout, NACK return or FIFO-stall abandon).
	MetricDetection = "netsim.failover.detection"
	// MetricSendLatencyTenantPrefix prefixes the per-tenant delivered-
	// latency histograms: one histogram per label declared via
	// Transport.SetTenant or PartNetwork.SetTenants, on finer buckets
	// than the machine-wide MetricSendLatency so tail percentiles
	// (internal/traffic SLOs) resolve within a quasi-√2 step.
	MetricSendLatencyTenantPrefix = MetricSendLatency + "."
	// MetricSendWaitPrefix prefixes the latency-decomposition histograms:
	// every delivered message's latency split exactly into the Decomp
	// components, machine-wide as netsim.send.wait.<component> and — for
	// labelled sends — per tenant as netsim.send.wait.<component>.<name>.
	// The sums are exact: across any set of delivered messages the four
	// component histogram sums add up to the latency histogram's sum.
	MetricSendWaitPrefix = "netsim.send.wait."
)

// waitComponents orders the Decomp components as the wait histogram
// arrays index them; the names complete MetricSendWaitPrefix.
var waitComponents = [4]string{"arb", "wire", "detect", "retry"}

// latencyBuckets spans the send-latency range of interest: from the
// paper's sub-4 µs happy path up past several stacked 12 µs detection
// windows.
func latencyBuckets() []sim.Time {
	return metrics.TimeBuckets(sim.Microsecond, 2, 10) // 1 µs .. 512 µs
}

// tenantLatencyBuckets is the per-tenant latency ladder: a quasi-√2
// geometric sequence (1, 1.5, 2, 3, 4, 6, ... µs) spanning the same
// range as latencyBuckets with twice the resolution, because SLO
// percentiles are read off these buckets and a factor-2 ladder would
// round a p999 up to double its true value.
func tenantLatencyBuckets() []sim.Time {
	out := make([]sim.Time, 0, 20)
	for b := sim.Microsecond; b <= 512*sim.Microsecond; b *= 2 {
		out = append(out, b, b+b/2)
	}
	return out
}

// waitBuckets spans the component-wait range: from a single cached
// plane-down check (50 ns) up past several stacked detection windows.
// Finer at the bottom than latencyBuckets because the wire component of
// a small message is a few hundred nanoseconds.
func waitBuckets() []sim.Time {
	return metrics.TimeBuckets(50*sim.Nanosecond, 2, 14) // 50 ns .. 409.6 µs
}

// waitHistograms resolves the four decomposition histograms under a
// name prefix ending at the component (machine-wide instruments).
func waitHistograms(m *metrics.Registry) [4]*metrics.Histogram {
	var out [4]*metrics.Histogram
	for i, comp := range waitComponents {
		out[i] = m.TimeHistogram(MetricSendWaitPrefix+comp, waitBuckets())
	}
	return out
}

// tenantWaitHistograms resolves one tenant's four decomposition
// histograms (netsim.send.wait.<component>.<name>).
func tenantWaitHistograms(m *metrics.Registry, name string) [4]*metrics.Histogram {
	var out [4]*metrics.Histogram
	for i, comp := range waitComponents {
		out[i] = m.TimeHistogram(MetricSendWaitPrefix+comp+"."+name, waitBuckets())
	}
	return out
}

// observeDecomp feeds one delivered message's decomposition into a
// component histogram array (no-ops when unresolved).
//
//pmlint:hotpath
func observeDecomp(w *[4]*metrics.Histogram, c Decomp) {
	w[0].ObserveTime(c.Arb)
	w[1].ObserveTime(c.Wire)
	w[2].ObserveTime(c.Detect)
	w[3].ObserveTime(c.Retry)
}

// netInstruments holds the network's resolved instruments; the zero
// value (all nil) is the "metrics off" state.
type netInstruments struct {
	sends, delivered, failed, retried, planeDownHits *metrics.Counter
	sendLatency, detection                           *metrics.Histogram
	// wait holds the machine-wide latency-decomposition histograms in
	// waitComponents order; every delivered send feeds them.
	wait [4]*metrics.Histogram
	// tenantLat holds the per-tenant delivered-latency histograms of a
	// partitioned shard, indexed by the tenant id SendAsyncTenant carries
	// (PartNetwork.SetTenants); nil when unlabelled. tenantWait holds the
	// matching per-tenant decomposition histograms.
	tenantLat  []*metrics.Histogram
	tenantWait [][4]*metrics.Histogram
}

// SetMetrics attaches a metrics registry: the failover send path feeds
// send outcome counters and latency/detection histograms, and every
// crossbar feeds the shared arbitration instruments plus the per-plane
// arbitration-wait histogram of the plane it serves (per the topology's
// CrossbarPlanes flood; unreachable crossbars feed only the shared
// instrument). A nil registry detaches everything — the default state,
// costing the instrumented paths one nil check per observation.
func (n *Network) SetMetrics(m *metrics.Registry) {
	n.mreg = m
	if m == nil {
		n.met = netInstruments{}
	} else {
		n.met = netInstruments{
			sends:         m.Counter(MetricSends),
			delivered:     m.Counter(MetricDelivered),
			failed:        m.Counter(MetricFailed),
			retried:       m.Counter(MetricRetried),
			planeDownHits: m.Counter(MetricPlaneDownHits),
			sendLatency:   m.TimeHistogram(MetricSendLatency, latencyBuckets()),
			detection:     m.TimeHistogram(MetricDetection, latencyBuckets()),
			wait:          waitHistograms(m),
		}
	}
	planes := n.topo.CrossbarPlanes()
	for i, x := range n.xbars {
		label := ""
		if planes[i] >= 0 {
			label = planeName(planes[i])
		}
		x.Metrics(m, label)
	}
}

// observeSend tallies one completed reliable send.
func (mi *netInstruments) observeSend(d Delivery) {
	mi.sends.Inc()
	mi.planeDownHits.Add(int64(d.SkippedDown))
	if d.Failed {
		mi.failed.Inc()
		return
	}
	mi.delivered.Inc()
	mi.sendLatency.ObserveTime(d.Latency())
	observeDecomp(&mi.wait, d.Decomp)
	if d.Retried {
		mi.retried.Inc()
	}
}
