package netsim

import (
	"testing"

	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// TestPlaneBTransit sends a message end to end over plane B — the
// duplicated network the paper reserves for system software (Section 4).
// Until this test, plane B was only ever route-tested in internal/topo;
// no message had actually traversed it.
func TestPlaneBTransit(t *testing.T) {
	n := New(topo.Cluster8())
	path, err := n.Topology().Route(2, 6, topo.NetworkB)
	if err != nil {
		t.Fatal(err)
	}
	if path.Network != topo.NetworkB || len(path.Hops) != 1 {
		t.Fatalf("unexpected plane-B path: %+v", path)
	}
	tr, err := n.Send(0, path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.LastByte <= tr.FirstByte || tr.Corrupted {
		t.Errorf("plane-B transit broken: %+v", tr)
	}
	// Cluster8 crossbar ordinals: 0 = A, 1 = B. Traffic must have flowed
	// through B and only B.
	if got := n.Crossbar(1).Stats().Opened; got != 1 {
		t.Errorf("plane-B crossbar opened %d circuits, want 1", got)
	}
	if got := n.Crossbar(0).Stats().Opened; got != 0 {
		t.Errorf("plane-A crossbar opened %d circuits, want 0", got)
	}
	// Timing must match the same transit on plane A: the planes are
	// identical hardware.
	n2 := New(topo.Cluster8())
	pa, _ := n2.Topology().Route(2, 6, topo.NetworkA)
	tra, err := n2.Send(0, pa, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tra.LastByte != tr.LastByte {
		t.Errorf("plane timing differs: A %v, B %v", tra.LastByte, tr.LastByte)
	}
}

func TestSendReliableHealthyUsesPlaneA(t *testing.T) {
	n := New(topo.Cluster8())
	d, err := n.SendReliable(0, 0, 1, 64, DefaultFailover())
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed || d.Retried || d.Plane != topo.NetworkA || d.Attempts != 1 {
		t.Errorf("healthy delivery = %+v", d)
	}
	if d.Done != d.Transit.LastByte || d.Latency() <= 0 {
		t.Errorf("timing = %+v", d)
	}
	if a := n.Plane(topo.NetworkA); a.Delivered != 1 || a.Attempts != 1 || a.FailedOver != 0 {
		t.Errorf("plane A counters = %+v", a)
	}
	if b := n.Plane(topo.NetworkB); b.Attempts != 0 {
		t.Errorf("plane B counters = %+v", b)
	}
}

func TestFailoverOnLinkCut(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	n.CutWire(0, topo.NetworkA, 0) // node 0's plane-A uplink dead from t=0
	d, err := n.SendReliable(0, 0, 1, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed || !d.Retried || d.Plane != topo.NetworkB || d.Attempts != 2 {
		t.Errorf("delivery = %+v, want retried plane-B success", d)
	}
	// The retry cannot begin before the ack timeout and backoff elapse.
	if d.Done < cfg.AckTimeout+cfg.RetryBackoff {
		t.Errorf("Done = %v, must include detection %v", d.Done, cfg.AckTimeout+cfg.RetryBackoff)
	}
	a, b := n.Plane(topo.NetworkA), n.Plane(topo.NetworkB)
	if a.LinkDown != 1 || a.FailedOver != 1 || a.Delivered != 0 {
		t.Errorf("plane A counters = %+v", a)
	}
	if b.Delivered != 1 {
		t.Errorf("plane B counters = %+v", b)
	}
	// Other sources are untouched by node 0's cut uplink.
	d2, err := n.SendReliable(d.Done, 2, 3, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Retried || d2.Plane != topo.NetworkA {
		t.Errorf("unaffected pair rerouted: %+v", d2)
	}
}

func TestFailoverOnCorruption(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	n.CorruptWire(0, topo.NetworkA, 0, 1*sim.Millisecond)
	d, err := n.SendReliable(0, 0, 1, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed || !d.Retried || d.Plane != topo.NetworkB {
		t.Errorf("delivery = %+v, want retried plane-B success", d)
	}
	// The corruption window outlasts the send, so the same-plane CRC
	// retry (CRCRetries budget) is NACKed too before the failover: two
	// CRC errors on plane A, one spent retry, one real failover.
	if n.NI(1).Links[topo.NetworkA].CRCErrors() != 2 {
		t.Error("destination NI did not count both CRC failures")
	}
	a := n.Plane(topo.NetworkA)
	if a.CRCErrors != 2 || a.CRCRetries != 1 || a.FailedOver != 1 {
		t.Errorf("plane A counters = %+v", a)
	}
	// Two NACK returns still detect much faster than one ack timeout.
	if d.Done >= cfg.AckTimeout {
		t.Errorf("NACK path took %v, want under the ack timeout %v", d.Done, cfg.AckTimeout)
	}
}

// TestCRCRetrySamePlane pins the same-plane re-send: when the
// corruption window has passed by the time the retry crosses the wire,
// the message is delivered on its preferred plane — no failover, no
// plane-down poisoning — at the cost of one NACK return plus backoff.
func TestCRCRetrySamePlane(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	tp := n.MustTransport(0, cfg)
	// A corruption window so short only the first crossing is hit.
	n.CorruptWire(0, topo.NetworkA, 0, 1*sim.Nanosecond)
	d, err := tp.Send(0, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed || d.Plane != topo.NetworkA || d.Attempts != 2 {
		t.Errorf("delivery = %+v, want second-attempt plane-A success", d)
	}
	a, b := n.Plane(topo.NetworkA), n.Plane(topo.NetworkB)
	if a.CRCErrors != 1 || a.CRCRetries != 1 || a.FailedOver != 0 || a.Delivered != 1 {
		t.Errorf("plane A counters = %+v", a)
	}
	if b.Attempts != 0 {
		t.Errorf("plane B counters = %+v, want untouched", b)
	}
	if down, _ := tp.PlaneDown(topo.NetworkA); down {
		t.Error("CRC retry poisoned the plane-down cache")
	}
	// A zero budget restores the old immediate-failover behaviour.
	n.Reset()
	n.CorruptWire(0, topo.NetworkA, 0, 1*sim.Nanosecond)
	cfg.CRCRetries = 0
	d, err = n.SendReliable(0, 0, 1, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed || d.Plane != topo.NetworkB {
		t.Errorf("zero-budget delivery = %+v, want plane-B failover", d)
	}
}

func TestFailoverOnStuckOutput(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	// Cluster8 crossbar 0 is plane A; output 1 feeds node 1.
	n.Crossbar(0).StickOutput(1, 0, 1*sim.Second)
	d, err := n.SendReliable(0, 0, 1, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed || !d.Retried || d.Plane != topo.NetworkB {
		t.Errorf("delivery = %+v, want retried plane-B success", d)
	}
	if a := n.Plane(topo.NetworkA); a.SetupTimeouts != 1 {
		t.Errorf("plane A counters = %+v", a)
	}
}

func TestFailoverOnNIStall(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	n.NI(0).Links[topo.NetworkA].Stall(0, 1*sim.Millisecond)
	d, err := n.SendReliable(0, 0, 1, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed || !d.Retried || d.Plane != topo.NetworkB {
		t.Errorf("delivery = %+v, want retried plane-B success", d)
	}
	a := n.Plane(topo.NetworkA)
	if a.Stalled != 1 || a.SetupTimeouts != 1 {
		t.Errorf("plane A counters = %+v", a)
	}
	// The wedged FIFO is abandoned at the setup timeout, not ridden out.
	if d.Done >= 1*sim.Millisecond {
		t.Errorf("Done = %v, want failover well before the stall ends", d.Done)
	}
}

func TestBothPlanesDownFails(t *testing.T) {
	n := New(topo.Cluster8())
	cfg := DefaultFailover()
	n.CutWire(0, topo.NetworkA, 0)
	n.CutWire(0, topo.NetworkB, 0)
	d, err := n.SendReliable(0, 0, 1, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Failed || d.Attempts != 2 {
		t.Errorf("delivery = %+v, want failed after both planes", d)
	}
	perAttempt := cfg.AckTimeout + cfg.RetryBackoff
	if d.Done != 2*perAttempt {
		t.Errorf("give-up time = %v, want %v", d.Done, 2*perAttempt)
	}
}

func TestMidStreamCutCorrupts(t *testing.T) {
	n := New(topo.Cluster8())
	path, _ := n.Topology().Route(0, 1, topo.NetworkA)
	// 64 KB streams for ~1.1 ms; sever the uplink halfway through.
	n.CutWire(0, topo.NetworkA, 500*sim.Microsecond)
	tr, err := n.Send(0, path, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Corrupted {
		t.Error("message truncated mid-stream not marked corrupted")
	}
	// A later send on the dead wire cannot form a circuit at all.
	if _, err := n.Send(600*sim.Microsecond, path, 64); err == nil {
		t.Error("send over severed wire succeeded")
	}
}

func TestResetClearsPlaneCounters(t *testing.T) {
	n := New(topo.Cluster8())
	n.CutWire(0, topo.NetworkA, 0)
	if _, err := n.SendReliable(0, 0, 1, 64, DefaultFailover()); err != nil {
		t.Fatal(err)
	}
	n.Reset()
	if n.Plane(topo.NetworkA).Attempts != 0 || n.Plane(topo.NetworkB).Delivered != 0 {
		t.Error("Reset kept plane counters")
	}
	// Reset also heals wires (Wire.Reset clears fault state).
	d, err := n.SendReliable(0, 0, 1, 64, DefaultFailover())
	if err != nil {
		t.Fatal(err)
	}
	if d.Retried {
		t.Errorf("cut survived Reset: %+v", d)
	}
}

func TestPlaneCounterSetOrdering(t *testing.T) {
	n := New(topo.Cluster8())
	if _, err := n.SendReliable(0, 0, 1, 64, DefaultFailover()); err != nil {
		t.Fatal(err)
	}
	set := n.PlaneCounterSet(topo.NetworkA)
	if set.Get("attempts") != 1 || set.Get("delivered") != 1 {
		t.Errorf("counter set = %+v", set)
	}
	want := []string{"attempts", "delivered", "stalled", "link-down", "setup-timeouts", "crc-errors", "crc-retries", "failed-over", "skipped-down", "os-messages", "os-dropped"}
	for i, name := range want {
		if set.Counters[i].Name != name {
			t.Fatalf("counter %d = %q, want %q (render order is the contract)", i, set.Counters[i].Name, name)
		}
	}
}

// TestFailedAttemptHoldsPartialCircuit pins the wormhole teardown
// discipline on the failover path: an attempt that times out at setup
// does not vanish — its partially opened circuit (here the source
// uplink wire on plane A) stays claimed until the ack-timeout teardown,
// so a second message from the same source contends with the wreckage
// of the first. Before this hold, failed attempts released their claims
// retroactively and the follow-up send was impossibly unobstructed.
func TestFailedAttemptHoldsPartialCircuit(t *testing.T) {
	cfg := DefaultFailover()

	// Reference: node 0 -> 2 on a network whose only defect is the stuck
	// output feeding node 1. Output 2 is clean, so the send is fast.
	ref := New(topo.Cluster8())
	ref.Crossbar(0).StickOutput(1, 0, 1*sim.Second)
	d0, err := ref.SendReliable(0, 0, 2, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Retried || d0.Plane != topo.NetworkA {
		t.Fatalf("reference delivery = %+v, want clean plane-A success", d0)
	}
	if d0.Done >= cfg.AckTimeout {
		t.Fatalf("reference Done = %v, expected well under the ack timeout %v", d0.Done, cfg.AckTimeout)
	}

	// Same machine, but node 0 first sends toward the stuck output: that
	// attempt claims the node-0 uplink wire, times out at setup, and
	// holds the partial circuit until its teardown at entry+AckTimeout.
	n := New(topo.Cluster8())
	n.Crossbar(0).StickOutput(1, 0, 1*sim.Second)
	d1, err := n.SendReliable(0, 0, 1, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Failed || !d1.Retried || d1.Plane != topo.NetworkB {
		t.Fatalf("first delivery = %+v, want retried plane-B success", d1)
	}
	d2, err := n.SendReliable(0, 0, 2, 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Retried || d2.Plane != topo.NetworkA {
		t.Errorf("second delivery = %+v, want delayed plane-A success", d2)
	}
	// The second send enters at t=0 too, so the held uplink pins its
	// first byte behind the failed attempt's teardown.
	if d2.Done < cfg.AckTimeout {
		t.Errorf("second Done = %v, want at least the first attempt's teardown %v", d2.Done, cfg.AckTimeout)
	}
	if d2.Done <= d0.Done {
		t.Errorf("held circuit added no delay: %v vs unobstructed %v", d2.Done, d0.Done)
	}
}
