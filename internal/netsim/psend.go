// psend: the asynchronous, shard-resident form of the driver-level
// failover protocol (Transport.sendProtocol). One psend drives one
// reliable send through the same decision sequence as the synchronous
// protocol — preferred plane order with plane-down cache skips, a probe
// pass over skipped planes, then alternation until the attempt budget
// runs out — but each real attempt is a split-phase walk through the
// partitioned network instead of a synchronous Network.send call. The
// timing formulas (entry stalls, setup timeouts, ack-timeout detection,
// NACK return, backoff) are identical; only the execution is event-
// driven, so attempts from many nodes interleave deterministically
// across psim shards instead of serialising in program order.
package netsim

import (
	"fmt"

	"powermanna/internal/ni"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// psend is one in-flight reliable send's protocol driver. It lives on
// the source node's shard; only finalize verdicts (plain data through
// psim mailboxes) reach it from other shards.
type psend struct {
	pn           *PartNetwork
	ps           *partShard
	tp           *Transport
	src, dst     int
	payloadBytes int
	payload      any
	cfg          FailoverConfig
	st           sendState
	msgID        uint64
	// tenant indexes the shard's per-tenant latency histograms
	// (SetTenants); -1 on unlabelled sends.
	tenant int
	onDone func(Delivery)

	// Protocol cursor: which pass and plane the driver will try next.
	phase         int
	idx           int
	pass3Progress bool

	// Current attempt, valid while a walk or verdict is pending.
	curPlane     int
	curPath      topo.Path
	curSplit     int
	curEntry     sim.Time
	curAttemptAt sim.Time
	curWireBytes int
	// Source-half claims of a split attempt, held open until the verdict.
	openKeys []resKey
	srcWires []partWireClaim
	srcHops  []partHopClaim
}

// SendAsync runs the failover protocol for one message from src to dst,
// entering the network no earlier than at (clamped to the source
// shard's clock — a cross-shard send cannot start in its shard's past).
// It must be called from an event on src's shard. onDone receives the
// outcome — delivered or Failed, never an error — inside the source-
// shard event where the outcome became known; the delivered payload
// reaches the destination through the OnDeliver hook at its arrival
// time. The returned error covers only malformed arguments.
func (pn *PartNetwork) SendAsync(src, dst, payloadBytes int, payload any, at sim.Time, onDone func(Delivery)) error {
	return pn.sendAsync(-1, src, dst, payloadBytes, payload, at, onDone)
}

// SendAsyncTenant is SendAsync with a tenant label: the delivered
// latency additionally lands in the tenant's labelled histogram
// (SetTenants declares the labels; the index is into that slice).
// Everything else — protocol, timing, determinism — is identical.
func (pn *PartNetwork) SendAsyncTenant(tenant, src, dst, payloadBytes int, payload any, at sim.Time, onDone func(Delivery)) error {
	return pn.sendAsync(tenant, src, dst, payloadBytes, payload, at, onDone)
}

func (pn *PartNetwork) sendAsync(tenant, src, dst, payloadBytes int, payload any, at sim.Time, onDone func(Delivery)) error {
	nodes := pn.net.topo.Nodes()
	if src < 0 || src >= nodes || dst < 0 || dst >= nodes {
		return fmt.Errorf("netsim: node out of range (%d, %d)", src, dst)
	}
	if src == dst {
		return fmt.Errorf("netsim: partitioned self-send on node %d", src)
	}
	if payloadBytes < 0 {
		return fmt.Errorf("netsim: negative payload")
	}
	ps := pn.shards[pn.part.NodeShard(src)]
	if t := ps.sh.Now(); t > at {
		at = t
	}
	pn.msgSeq[src]++
	p := &psend{
		pn: pn, ps: ps, tp: pn.tps[src],
		src: src, dst: dst,
		payloadBytes: payloadBytes, payload: payload,
		cfg:    pn.tps[src].cfg,
		msgID:  uint64(src)<<32 | uint64(pn.msgSeq[src]),
		tenant: tenant,
		onDone: onDone,
		phase:  1,
	}
	p.st = newSendState(at, p.cfg)
	p.step()
	return nil
}

// step advances the protocol cursor to the next attempt (or the final
// failure), mirroring sendProtocol's three passes. It returns when an
// attempt's walk is buffered — its completion re-enters step — or when
// the protocol is over.
func (p *psend) step() {
	planes := [2]int{topo.NetworkA, topo.NetworkB}
	for {
		switch p.phase {
		case 1: // preferred order, plane-down cache skips
			if p.idx >= len(planes) {
				p.phase, p.idx = 2, 0
				continue
			}
			plane := planes[p.idx]
			p.idx++
			if p.st.attempts >= p.st.maxAttempts {
				p.phase = 4
				continue
			}
			if pd := &p.tp.down[plane]; pd.down && p.cfg.ReprobeInterval > 0 && p.st.attemptAt() < pd.reprobeAt {
				if _, err := p.tp.Route(p.dst, plane); err != nil {
					continue // not wired: nothing to skip
				}
				p.ps.planes[plane].SkippedDown++
				p.st.skipped = append(p.st.skipped, plane)
				if p.ps.rec.Enabled() {
					p.ps.rec.InstantArg(trace.NodeTrack(p.src), "failover", "plane-down-hit",
						p.st.attemptAt(), "plane "+planeName(plane))
				}
				p.st.elapsed += p.cfg.PlaneDownCheck
				p.st.detect += p.cfg.PlaneDownCheck
				continue
			}
			if p.launch(plane) {
				return
			}
		case 2: // probe the skipped planes before burning retries
			if p.idx >= len(p.st.skipped) {
				p.phase, p.idx, p.pass3Progress = 3, 0, false
				continue
			}
			plane := p.st.skipped[p.idx]
			p.idx++
			if p.st.attempts >= p.st.maxAttempts {
				p.phase = 4
				continue
			}
			if p.launch(plane) {
				return
			}
		case 3: // alternate soft-failed planes until the budget runs out
			if p.st.attempts >= p.st.maxAttempts {
				p.phase = 4
				continue
			}
			if p.idx >= len(planes) {
				if !p.pass3Progress {
					p.phase = 4
					continue
				}
				p.idx, p.pass3Progress = 0, false
				continue
			}
			plane := planes[p.idx]
			p.idx++
			if p.st.hard[plane] {
				continue
			}
			if p.launch(plane) {
				return
			}
		default: // exhausted: every option failed
			if p.ps.rec.Enabled() {
				p.ps.rec.InstantArg(trace.NodeTrack(p.src), "failover", "send-failed", p.st.attemptAt(),
					fmt.Sprintf("%d->%d after %d attempts", p.src, p.dst, p.st.attempts))
			}
			d := Delivery{
				Attempts: p.st.attempts, SkippedDown: len(p.st.skipped),
				Failed: true, PayloadBytes: p.payloadBytes,
				Sent: p.st.at, Done: p.st.attemptAt(),
				Decomp: Decomp{Detect: p.st.detect, Retry: p.st.retry},
			}
			p.ps.met.observeSend(d)
			p.onDone(d)
			return
		}
	}
}

// launch starts one real attempt on a plane. It returns true when the
// attempt's walk is buffered (the protocol resumes from its completion
// events) and false when the protocol should move on now: the plane is
// unwired, or the send FIFO never drained and the attempt was abandoned
// before entering the network.
func (p *psend) launch(plane int) bool {
	attemptAt := p.st.attemptAt()
	path, err := p.tp.Route(p.dst, plane)
	if err != nil {
		return false
	}
	pc := &p.ps.planes[plane]
	p.st.attempts++
	if p.phase == 3 {
		p.pass3Progress = true
	}
	pc.Attempts++
	entry := p.pn.net.nis[p.src].Links[plane].ReadyAt(attemptAt)
	if entry > attemptAt {
		pc.Stalled++
	}
	if p.cfg.SetupTimeout > 0 && entry > attemptAt+p.cfg.SetupTimeout {
		pc.SetupTimeouts++
		pc.FailedOver++
		p.tp.markDown(plane, attemptAt+p.cfg.SetupTimeout, p.cfg)
		p.traceAttempt(plane, attemptAt, attemptAt+p.cfg.SetupTimeout, "fifo-stall")
		p.st.elapsed += p.cfg.SetupTimeout + p.cfg.RetryBackoff
		p.st.detect += p.cfg.SetupTimeout
		p.st.retry += p.cfg.RetryBackoff
		return false
	}
	p.ps.sent++
	p.curPlane, p.curPath = plane, path
	p.curSplit = p.pn.grain.Boundary(path)
	p.curEntry, p.curAttemptAt = entry, attemptAt
	p.curWireBytes = wireBytesFor(path, p.payloadBytes)
	p.ps.buffer(&pleg{msgID: p.msgID, p: p})
	return true
}

// processSrc runs the source half of the current attempt's walk when
// its canonical drain fires.
func (ps *partShard) processSrc(l *pleg) {
	p := l.p
	res := ps.walk(l, p.curPath, p.curSplit, false, p.curEntry, p.curWireBytes, p.cfg.SetupTimeout)
	switch res.outcome {
	case walkParked:
		return
	case walkFailed:
		p.srcFailed(res)
	default:
		if p.curSplit < len(p.curPath.Hops) {
			p.srcSplit(res)
		} else {
			p.srcComplete(res)
		}
	}
}

// srcFailed handles a failure discovered on the source half: a severed
// wire or a setup timeout before the boundary. The sender learns only
// through the ack timeout; the partial circuit the header built holds
// until that teardown — the contention a failed wormhole really causes.
func (p *psend) srcFailed(res walkRes) {
	pc := &p.ps.planes[p.curPlane]
	cause := "setup-timeout"
	if res.cut {
		pc.LinkDown++
		p.st.hard[p.curPlane] = true
		cause = "link-down"
	} else {
		pc.SetupTimeouts++
	}
	pc.FailedOver++
	detected := p.curEntry + p.cfg.AckTimeout
	if now := p.ps.sh.Now(); detected < now {
		// The attempt parked behind an open circuit past its own ack
		// timeout: the failure is established only once the blocking
		// circuit's fate is known (the wake time — itself a pure function
		// of the model, so the floor is shard-count independent). Without
		// it the retry's model clock would lag the shard's event clock and
		// its split legs would post into other shards' pasts.
		detected = now
	}
	p.ps.claimPartial(res.wires, res.hops, detected, p.curPlane)
	p.tp.markDown(p.curPlane, detected, p.cfg)
	p.traceAttempt(p.curPlane, p.curAttemptAt, detected, cause)
	p.st.elapsed = detected + p.cfg.RetryBackoff - p.st.at
	p.st.detect += detected - p.curAttemptAt
	p.st.retry += p.cfg.RetryBackoff
	p.step()
}

// srcSplit hands a cross-group attempt to the destination's half: the
// source segment goes open-held, and the remote leg travels to the
// boundary crossbar's shard as plain data at the header's arrival time
// there (at least a route setup plus a wire crossing past the walk —
// beyond the engine's lookahead by construction).
func (p *psend) srcSplit(res walkRes) {
	ps := p.ps
	p.srcWires, p.srcHops = res.wires, res.hops
	p.openKeys = ps.holdOpen(p.msgID, &res)
	ps.inflight[p.msgID] = p
	rl := &remoteLeg{
		msgID: p.msgID, src: p.src, dst: p.dst, plane: p.curPlane,
		path: p.curPath, split: p.curSplit,
		head: res.head, entry: p.curEntry,
		wireBytes: p.curWireBytes, payloadBytes: p.payloadBytes,
		setupTimeout: p.cfg.SetupTimeout, ackTimeout: p.cfg.AckTimeout,
		nackLatency: p.cfg.NackLatency,
		srcChecks:   wireChecksOf(res.wires),
		payload:     p.payload,
	}
	dstShard := p.pn.part.NodeShard(p.dst)
	if dstShard == ps.id {
		ps.sh.At(res.head, func() { ps.acceptRemote(rl) })
		return
	}
	p.pn.eng.PostPayload(ps.id, dstShard, res.head, p.pn.shards[dstShard], rl)
}

// srcComplete finishes an intra-group attempt whose whole circuit lives
// on one shard: claim it, render the CRC verdict, and either deliver or
// retry — the legacy path's semantics, under canonical-drain ordering.
func (p *psend) srcComplete(res walkRes) {
	ps := p.ps
	bad := corrupted(wireChecksOf(res.wires), res.last)
	ps.claimWires(res.wires, res.last)
	ps.claimHops(res.hops, res.last, p.curPlane)
	p.recordMsgSpans(p.curEntry, res.head, res.last, bad)
	lif := p.pn.net.nis[p.dst].Links[p.curPlane]
	pc := &ps.planes[p.curPlane]
	if bad {
		lif.RecordCRCError()
		pc.CRCErrors++
		detected := res.last + p.cfg.NackLatency
		p.st.elapsed = detected + p.cfg.RetryBackoff - p.st.at
		// The whole corrupt attempt counts as detection (see tryPlane).
		p.st.detect += detected - p.curAttemptAt
		p.st.retry += p.cfg.RetryBackoff
		if p.retryCRC(detected) {
			return
		}
		pc.FailedOver++
		p.tp.markDown(p.curPlane, detected, p.cfg)
		p.traceAttempt(p.curPlane, p.curAttemptAt, detected, "crc-nack")
		p.step()
		return
	}
	lif.RecordFrame()
	pc.Delivered++
	if fn := p.pn.deliver; fn != nil {
		src, dst, payload := p.src, p.dst, p.payload
		first, last := res.first, res.last
		ps.sh.At(res.last, func() { fn(src, dst, payload, first, last) })
	}
	p.deliverOutcome(Transit{
		SetupDone: res.head, FirstByte: res.first, LastByte: res.last,
		WireBytes: p.curWireBytes,
	}, res.last)
}

// finish applies the destination's verdict on the source shard.
func (p *psend) finish(fm *finalizeMsg) {
	ps := p.ps
	switch fm.kind {
	case finOK:
		ps.claimWires(p.srcWires, fm.last)
		ps.claimHops(p.srcHops, fm.last, p.curPlane)
		ps.releaseOpen(p.openKeys)
		p.recordMsgSpans(p.curEntry, fm.setupDone, fm.last, false)
		p.deliverOutcome(Transit{
			SetupDone: fm.setupDone, FirstByte: fm.firstByte, LastByte: fm.last,
			WireBytes: p.curWireBytes,
		}, fm.last)
	case finCRC:
		// The circuit completed and the body crossed it — the claims run
		// to the last byte — but the destination NACKed the frame. The
		// retry-or-failover decision is the sender's: only this shard
		// holds the send's budget, so the destination counted the CRC
		// error and the failed-over/retried split is charged here.
		ps.claimWires(p.srcWires, fm.last)
		ps.claimHops(p.srcHops, fm.last, p.curPlane)
		ps.releaseOpen(p.openKeys)
		p.recordMsgSpans(p.curEntry, fm.setupDone, fm.last, true)
		p.st.elapsed = fm.detected + p.cfg.RetryBackoff - p.st.at
		p.st.detect += fm.detected - p.curAttemptAt
		p.st.retry += p.cfg.RetryBackoff
		if p.retryCRC(fm.detected) {
			return
		}
		ps.planes[p.curPlane].FailedOver++
		p.tp.markDown(p.curPlane, fm.detected, p.cfg)
		p.traceAttempt(p.curPlane, p.curAttemptAt, fm.detected, "crc-nack")
		p.step()
	default: // finCut, finTimeout: the suffix never formed
		ps.claimWires(p.srcWires, fm.detected)
		ps.claimHops(p.srcHops, fm.detected, p.curPlane)
		ps.releaseOpen(p.openKeys)
		cause := "setup-timeout"
		if fm.kind == finCut {
			p.st.hard[p.curPlane] = true
			cause = "link-down"
		}
		p.tp.markDown(p.curPlane, fm.detected, p.cfg)
		p.traceAttempt(p.curPlane, p.curAttemptAt, fm.detected, cause)
		p.st.elapsed = fm.detected + p.cfg.RetryBackoff - p.st.at
		p.st.detect += fm.detected - p.curAttemptAt
		p.st.retry += p.cfg.RetryBackoff
		p.step()
	}
}

// retryCRC spends one same-plane re-send from the CRCRetries budget on
// a corrupt verdict, mirroring Transport.tryPlane's branch: the caller
// has already advanced the sender clock (st.elapsed) past the NACK
// return and backoff. It reports whether a retry was launched or the
// protocol resumed — false means the budget is spent and the caller
// charges the failover path.
func (p *psend) retryCRC(detected sim.Time) bool {
	if p.st.crcLeft <= 0 || p.st.attempts >= p.st.maxAttempts {
		return false
	}
	p.st.crcLeft--
	p.ps.planes[p.curPlane].CRCRetries++
	p.traceAttempt(p.curPlane, p.curAttemptAt, detected, "crc-retry")
	if !p.launch(p.curPlane) {
		p.step()
	}
	return true
}

// deliverOutcome completes the protocol with a successful delivery.
func (p *psend) deliverOutcome(tr Transit, done sim.Time) {
	p.tp.down[p.curPlane] = planeDown{}
	wire := p.pn.net.idealTransit(p.curPath, p.payloadBytes)
	d := Delivery{
		Transit: tr, Plane: p.curPlane,
		Attempts:     p.st.attempts,
		Retried:      p.st.attempts > 1 || len(p.st.skipped) > 0,
		SkippedDown:  len(p.st.skipped),
		PayloadBytes: p.payloadBytes,
		Sent:         p.st.at, Done: done,
		Decomp: Decomp{
			Arb:    done - p.curAttemptAt - wire,
			Wire:   wire,
			Detect: p.st.detect,
			Retry:  p.st.retry,
		},
	}
	p.ps.met.observeSend(d)
	if p.tenant >= 0 && p.tenant < len(p.ps.met.tenantLat) {
		p.ps.met.tenantLat[p.tenant].ObserveTime(d.Latency())
		observeDecomp(&p.ps.met.tenantWait[p.tenant], d.Decomp)
	}
	p.onDone(d)
}

// recordMsgSpans records the per-message spans the legacy send path
// records for every completed circuit: the message envelope, the setup
// walk and the body stream, plus the CRC-corrupt marker.
func (p *psend) recordMsgSpans(entry, setupDone, last sim.Time, bad bool) {
	rec := p.ps.rec
	if !rec.Enabled() {
		return
	}
	track := trace.NodeTrack(p.src)
	rec.SpanArg(track, "netsim", "msg", entry, last,
		fmt.Sprintf("%d->%d plane %s, %dB", p.src, p.dst, planeName(p.curPlane), p.payloadBytes))
	rec.Span(track, "netsim", "setup", entry, setupDone)
	rec.Span(track, "netsim", "stream", setupDone, last)
	if bad {
		rec.Instant(track, "netsim", "crc-corrupt", last)
	}
}

// traceAttempt mirrors Transport.traceAttempt into the shard's own
// instruments: the detection window histogram and the failover span.
func (p *psend) traceAttempt(plane int, from, detected sim.Time, cause string) {
	p.ps.met.detection.ObserveTime(detected - from)
	if p.ps.rec.Enabled() {
		p.ps.rec.SpanArg(trace.NodeTrack(p.src), "failover", "attempt "+planeName(plane),
			from, detected, cause)
	}
}

// wireBytesFor is the on-wire length of a payload along a path.
func wireBytesFor(path topo.Path, payloadBytes int) int {
	return ni.WireBytes(len(path.RouteBytes), payloadBytes)
}
