package netsim

import (
	"testing"

	"powermanna/internal/metrics"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// checkDecomp asserts the decomposition contract on one outcome: every
// component non-negative, the sum exactly the sender-observed latency,
// and failed sends all detection and backoff (no transit completed).
func checkDecomp(t *testing.T, name string, d Delivery) {
	t.Helper()
	c := d.Decomp
	if c.Arb < 0 || c.Wire < 0 || c.Detect < 0 || c.Retry < 0 {
		t.Errorf("%s: negative component: %+v", name, c)
	}
	if c.Total() != d.Latency() {
		t.Errorf("%s: decomposition sum %v != latency %v (%+v)", name, c.Total(), d.Latency(), c)
	}
	if d.Failed && (c.Arb != 0 || c.Wire != 0) {
		t.Errorf("%s: failed send carries transit components: %+v", name, c)
	}
	if !d.Failed && d.Transit.WireBytes > 0 && c.Wire <= 0 {
		t.Errorf("%s: delivered over the network with zero wire time: %+v", name, c)
	}
}

// TestDecompExactLegacy drives the synchronous protocol through its
// branches — clean delivery, ack-timeout failover, CRC retry, plane-down
// cache hits, total failure — and checks the exact-sum contract on each.
func TestDecompExactLegacy(t *testing.T) {
	cases := []struct {
		name   string
		fault  func(*Network)
		failed bool
	}{
		{"clean", nil, false},
		{"uplink-cut-failover", func(n *Network) {
			n.CutWire(0, topo.NetworkA, 100*sim.Nanosecond)
		}, false},
		{"crc-retry", func(n *Network) {
			path, err := n.Topology().Route(0, 13, topo.NetworkA)
			if err != nil {
				t.Fatalf("route: %v", err)
			}
			last := path.Hops[len(path.Hops)-1]
			n.CorruptWire(n.Topology().Nodes()+last.Xbar, last.Out, 0, 20*sim.Microsecond)
		}, false},
		{"both-planes-cut", func(n *Network) {
			n.CutWire(0, topo.NetworkA, 0)
			n.CutWire(0, topo.NetworkB, 0)
		}, true},
	}
	for _, tc := range cases {
		n := New(topo.System256())
		if tc.fault != nil {
			tc.fault(n)
		}
		tp := n.MustTransport(0, DefaultFailover())
		d, err := tp.Send(0, 13, 256)
		if err != nil {
			t.Fatalf("%s: send: %v", tc.name, err)
		}
		if d.Failed != tc.failed {
			t.Fatalf("%s: failed=%v, want %v", tc.name, d.Failed, tc.failed)
		}
		checkDecomp(t, tc.name, d)
		if tc.name == "uplink-cut-failover" && d.Decomp.Detect < DefaultAckTimeout {
			t.Errorf("failover delivery detect %v < one ack timeout", d.Decomp.Detect)
		}
		// A second send right after a failure hits the plane-down cache:
		// the cached status check must land in Detect.
		if tc.name == "uplink-cut-failover" {
			d2, err := tp.Send(d.Done, 13, 256)
			if err != nil || d2.Failed {
				t.Fatalf("cached-skip send: %v failed=%v", err, d2.Failed)
			}
			checkDecomp(t, "cached-skip", d2)
			if d2.SkippedDown != 1 || d2.Decomp.Detect != DefaultPlaneDownCheck {
				t.Errorf("cached-skip: skipped=%d detect=%v, want 1 skip at %v",
					d2.SkippedDown, d2.Decomp.Detect, DefaultPlaneDownCheck)
			}
		}
	}
}

// TestDecompCleanSendIsAllWire pins the taxonomy's base case: an
// uncontended delivery on a healthy machine is pure wire time.
func TestDecompCleanSendIsAllWire(t *testing.T) {
	n := New(topo.System256())
	d, err := n.MustTransport(0, DefaultFailover()).Send(0, 13, 256)
	if err != nil || d.Failed {
		t.Fatalf("send: %v failed=%v", err, d.Failed)
	}
	c := d.Decomp
	if c.Arb != 0 || c.Detect != 0 || c.Retry != 0 {
		t.Errorf("uncontended send not pure wire: %+v", c)
	}
	if c.Wire != d.Latency() {
		t.Errorf("wire %v != latency %v", c.Wire, d.Latency())
	}
}

// TestDecompExactPartitioned runs the contended, faulted burst through
// the split-phase path at several shard counts and checks every
// delivery's decomposition; contention makes Arb non-zero somewhere,
// faults make Detect and Retry non-zero somewhere.
func TestDecompExactPartitioned(t *testing.T) {
	for _, shards := range []int{1, 4} {
		deliveries, _, _, _, _ := partBurst(t, shards, shards == 1)
		var sawArb, sawDetect, sawRetry bool
		for i, d := range deliveries {
			checkDecomp(t, "burst", d)
			if d.Decomp.Arb > 0 {
				sawArb = true
			}
			if d.Decomp.Detect > 0 {
				sawDetect = true
			}
			if d.Decomp.Retry > 0 {
				sawRetry = true
			}
			_ = i
		}
		if !sawArb || !sawDetect || !sawRetry {
			t.Errorf("shards=%d: burst exercised arb=%v detect=%v retry=%v, want all",
				shards, sawArb, sawDetect, sawRetry)
		}
	}
}

// TestDecompRegistrySumsExact pins the aggregate form of the contract:
// over any run, the four machine-wide wait histograms sum exactly to
// the delivered-latency histogram's sum, with matching counts.
func TestDecompRegistrySumsExact(t *testing.T) {
	top := topo.System256()
	pn, err := NewPartitioned(top, 4, DefaultFailover())
	if err != nil {
		t.Fatalf("NewPartitioned: %v", err)
	}
	pn.SetSerial(true)
	reg := metrics.NewRegistry()
	pn.SetMetrics(reg)
	pn.Network().CutWire(9, topo.NetworkA, 500*sim.Nanosecond)
	for n := 0; n < top.Nodes(); n++ {
		n := n
		dst := (n*37 + 13) % top.Nodes()
		if dst == n {
			dst = (dst + 1) % top.Nodes()
		}
		pn.Shard(pn.ShardOf(n)).At(0, func() {
			if err := pn.SendAsync(n, dst, 512, nil, 0, func(Delivery) {}); err != nil {
				t.Errorf("SendAsync: %v", err)
			}
		})
	}
	pn.Run()
	lat := reg.TimeHistogram(MetricSendLatency, latencyBuckets())
	var sum, count int64
	for _, comp := range waitComponents {
		h := reg.TimeHistogram(MetricSendWaitPrefix+comp, waitBuckets())
		sum += h.Sum()
		if h.Count() != lat.Count() {
			t.Errorf("wait.%s count %d != latency count %d", comp, h.Count(), lat.Count())
		}
		count = h.Count()
	}
	if count == 0 {
		t.Fatal("no deliveries observed")
	}
	if sum != lat.Sum() {
		t.Errorf("wait sums %d != latency sum %d", sum, lat.Sum())
	}
}
