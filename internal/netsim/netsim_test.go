package netsim

import (
	"testing"

	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/xbar"
)

func TestClusterTransitTiming(t *testing.T) {
	n := New(topo.Cluster8())
	path, err := n.Topology().Route(0, 1, topo.NetworkA)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := n.Send(0, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Wire bytes: 1 route + 2 len + 8 payload + 2 CRC + 1 close = 14.
	if tr.WireBytes != 14 {
		t.Errorf("WireBytes = %d, want 14", tr.WireBytes)
	}
	// Setup: ~1 byte time + propagation + 0.2us route setup.
	if tr.SetupDone < xbar.RouteSetup || tr.SetupDone > xbar.RouteSetup+100*sim.Nanosecond {
		t.Errorf("SetupDone = %v, want ~0.2us + wire entry", tr.SetupDone)
	}
	if tr.FirstByte <= tr.SetupDone || tr.LastByte <= tr.FirstByte {
		t.Errorf("ordering violated: %+v", tr)
	}
	// Body streams 13 bytes at 60 MB/s ≈ 217 ns.
	body := tr.LastByte - tr.FirstByte
	if body < 200*sim.Nanosecond || body > 240*sim.Nanosecond {
		t.Errorf("body time = %v, want ~217ns", body)
	}
}

func TestLargeMessageRate(t *testing.T) {
	n := New(topo.Cluster8())
	path, _ := n.Topology().Route(0, 1, topo.NetworkA)
	const size = 65536
	tr, err := n.Send(0, path, size)
	if err != nil {
		t.Fatal(err)
	}
	// 64 KB at 60 MB/s ≈ 1.092 ms end to end.
	rate := float64(size) / tr.LastByte.Seconds()
	if rate < 55e6 || rate > 61e6 {
		t.Errorf("achieved rate = %g B/s, want ~60 MB/s", rate)
	}
}

func TestOutputContentionDelaysSecondMessage(t *testing.T) {
	n := New(topo.Cluster8())
	// Nodes 0 and 2 both send to node 1: same crossbar output channel.
	p0, _ := n.Topology().Route(0, 1, topo.NetworkA)
	p2, _ := n.Topology().Route(2, 1, topo.NetworkA)
	tr0, _ := n.Send(0, p0, 1024)
	tr2, _ := n.Send(0, p2, 1024)
	if tr2.SetupDone <= tr0.LastByte-n.linkCfg.PropagationDelay-n.linkCfg.TransferTime(1) {
		t.Errorf("second circuit set up at %v before first released (%v)", tr2.SetupDone, tr0.LastByte)
	}
	if n.Crossbar(0).Stats().Blocked != 1 {
		t.Errorf("Blocked = %d, want 1", n.Crossbar(0).Stats().Blocked)
	}
}

func TestDistinctDestinationsDoNotContend(t *testing.T) {
	n := New(topo.Cluster8())
	p01, _ := n.Topology().Route(0, 1, topo.NetworkA)
	p23, _ := n.Topology().Route(2, 3, topo.NetworkA)
	tr1, _ := n.Send(0, p01, 1024)
	tr2, _ := n.Send(0, p23, 1024)
	if tr1.SetupDone != tr2.SetupDone {
		t.Errorf("independent circuits interfered: %v vs %v", tr1.SetupDone, tr2.SetupDone)
	}
}

func TestSystem256ThreeHopTransit(t *testing.T) {
	n := New(topo.System256())
	path, err := n.Topology().Route(0, 127, topo.NetworkA)
	if err != nil {
		t.Fatal(err)
	}
	if len(path.Hops) != 3 {
		t.Fatalf("hops = %d", len(path.Hops))
	}
	tr, err := n.Send(0, path, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Setup must include 3 route setups and 2 transceiver crossings.
	min := 3*xbar.RouteSetup + 2*300*sim.Nanosecond
	if tr.SetupDone < min {
		t.Errorf("SetupDone = %v, want >= %v", tr.SetupDone, min)
	}
	// Still comfortably under 4 µs for a small message, the paper's
	// system-level latency bound ("less than 4 µs latency for small
	// messages", Section 1).
	if tr.LastByte > 4*sim.Microsecond {
		t.Errorf("small-message network time = %v, want < 4us", tr.LastByte)
	}
}

func TestSelfDelivery(t *testing.T) {
	n := New(topo.Cluster8())
	path, _ := n.Topology().Route(4, 4, topo.NetworkA)
	tr, err := n.Send(100, path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.LastByte != 100 || tr.WireBytes != 0 {
		t.Errorf("self delivery = %+v", tr)
	}
}

func TestNegativePayloadRejected(t *testing.T) {
	n := New(topo.Cluster8())
	path, _ := n.Topology().Route(0, 1, topo.NetworkA)
	if _, err := n.Send(0, path, -1); err == nil {
		t.Error("negative payload accepted")
	}
}

func TestReset(t *testing.T) {
	n := New(topo.Cluster8())
	path, _ := n.Topology().Route(0, 1, topo.NetworkA)
	n.Send(0, path, 64)
	n.Reset()
	if n.MessagesSent() != 0 {
		t.Error("Reset incomplete")
	}
	tr, _ := n.Send(0, path, 64)
	if tr.SetupDone > xbar.RouteSetup+100*sim.Nanosecond {
		t.Error("timelines not reset")
	}
}
