// The background operating-system stream on plane B.
//
// Section 4 of the paper motivates the duplicated communication system
// partly with software separation: "the operating system can use its own
// network" while applications own the other. For fault campaigns this
// matters because a failover retry lands on plane B — and a realistic
// plane B is not idle, it carries OS traffic. The OS stream models that
// load as a deterministic message train: every Interval, a CtrlBytes-
// sized message between a rotating node pair enters plane B and claims
// its circuits like any other send, so application retries queue behind
// it exactly where the hardware would make them queue.
//
// Two schedules exist:
//
//   - the fixed train: one small message every Interval — steady kernel
//     bookkeeping traffic;
//   - the bursty schedule (Bursty): the same timer-tick train plus a
//     periodic page-daemon burst — every BurstEvery, a run of
//     BurstMessages back-to-back BurstBytes-sized messages from a
//     seed-chosen node, jittered within one tick interval. The burst
//     start and source are a pure function of (Seed, burst ordinal), so
//     the schedule is deterministic per seed with no math/rand in the
//     simulation core.
//
// The stream is advanced lazily: before each reliable-send attempt the
// transport injects every OS message whose entry time has passed. The
// injection order is therefore a pure function of the send sequence, and
// two identical runs stay byte-identical.
package netsim

import (
	"powermanna/internal/link"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// Default OS-stream parameters: a steady control-message load that
// occupies plane B a few percent of the time — enough to be felt by
// failover retries without starving them.
const (
	// DefaultOSInterval spaces the OS messages.
	DefaultOSInterval = 10 * sim.Microsecond
	// DefaultOSBytes is the OS message payload (kernel bookkeeping
	// traffic: scheduling tokens, page metadata — small messages).
	DefaultOSBytes = 128
	// DefaultBurstEvery spaces the page-daemon bursts of the bursty
	// schedule.
	DefaultBurstEvery = 100 * sim.Microsecond
	// DefaultBurstMessages is the burst length in messages.
	DefaultBurstMessages = 6
	// DefaultBurstBytes is the payload of each burst message (page-sized
	// transfers, much larger than the timer ticks).
	DefaultBurstBytes = 1024
)

// OSStreamConfig describes the background system-software load on plane
// B of the duplicated network.
type OSStreamConfig struct {
	// Interval is the simulated time between OS messages.
	Interval sim.Time
	// Bytes is the payload size of each OS message.
	Bytes int
	// Start delays the first OS message.
	Start sim.Time
	// Bursty layers periodic page-daemon bursts over the timer-tick
	// train. The remaining fields apply only when set.
	Bursty bool
	// Seed positions each burst (start jitter and source node)
	// deterministically; same seed, same schedule.
	Seed int64
	// BurstEvery spaces the bursts.
	BurstEvery sim.Time
	// BurstMessages is the number of back-to-back messages per burst.
	BurstMessages int
	// BurstBytes is the payload of each burst message.
	BurstBytes int
}

// DefaultOSStream returns the calibrated background load.
func DefaultOSStream() OSStreamConfig {
	return OSStreamConfig{Interval: DefaultOSInterval, Bytes: DefaultOSBytes}
}

// BurstyOSStream returns the bursty schedule: the default timer-tick
// train plus seed-positioned page-daemon bursts.
func BurstyOSStream(seed int64) OSStreamConfig {
	cfg := DefaultOSStream()
	cfg.Bursty = true
	cfg.Seed = seed
	cfg.BurstEvery = DefaultBurstEvery
	cfg.BurstMessages = DefaultBurstMessages
	cfg.BurstBytes = DefaultBurstBytes
	return cfg
}

// osStream is the lazily-advanced injection state.
type osStream struct {
	cfg  OSStreamConfig
	next sim.Time
	idx  int64
	// Burst state: the current burst's next message time, messages left,
	// chosen source, and the ordinal of the next burst to arm.
	burstAt   sim.Time
	burstLeft int
	burstSrc  int
	burstK    int64
}

// AttachOSStream starts a background OS stream on plane B. Attaching
// replaces any previous stream; Reset re-arms the stream to its start.
// On topologies without a plane-B route between the chosen pair the
// message is dropped and counted, not silently ignored.
func (n *Network) AttachOSStream(cfg OSStreamConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultOSInterval
	}
	if cfg.Bytes <= 0 {
		cfg.Bytes = DefaultOSBytes
	}
	if cfg.Bursty {
		if cfg.BurstEvery <= 0 {
			cfg.BurstEvery = DefaultBurstEvery
		}
		if cfg.BurstMessages <= 0 {
			cfg.BurstMessages = DefaultBurstMessages
		}
		if cfg.BurstBytes <= 0 {
			cfg.BurstBytes = DefaultBurstBytes
		}
	}
	n.os = &osStream{cfg: cfg}
	n.os.rearm()
}

// OSStreamAttached reports whether a background OS stream is active.
func (n *Network) OSStreamAttached() bool { return n.os != nil }

// rearm resets the stream to its start: tick train at Start, first burst
// armed from ordinal zero.
func (os *osStream) rearm() {
	os.next = os.cfg.Start
	os.idx = 0
	os.burstK = 0
	os.burstLeft = 0
	if os.cfg.Bursty {
		os.armBurst()
	}
}

// armBurst positions burst number burstK: its start jitters within one
// tick interval of the nominal k*BurstEvery mark and its source node
// follows the seed, both via the same multiplicative xorshift mix the
// topology uses for deterministic port shuffling (no math/rand in the
// simulation core).
func (os *osStream) armBurst() {
	j := osJitter(os.cfg.Seed, os.burstK)
	os.burstAt = os.cfg.Start + sim.Time(os.burstK)*os.cfg.BurstEvery + sim.Time(j%int64(os.cfg.Interval))
	os.burstSrc = int(osJitter(os.cfg.Seed, os.burstK+1) >> 8)
	os.burstLeft = os.cfg.BurstMessages
	os.burstK++
}

// osJitter mixes (seed, k) into a non-negative pseudo-random value —
// xorshift over a multiplicative hash, the same idiom as topo's port
// shuffling.
func osJitter(seed, k int64) int64 {
	x := seed*2654435761 + k*1_000_003 + 1
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	if x < 0 {
		x = -x
	}
	return x
}

// advanceOS injects every OS message whose entry time is at or before
// now — timer ticks and, under the bursty schedule, page-daemon burst
// messages, merged in time order. Calls with a non-monotone now are
// no-ops for the earlier time, so the injection sequence is a pure
// function of the reliable-send sequence. Each message claims plane-B
// circuits through the ordinary wormhole send; severed plane-B wires
// turn messages into drops.
func (n *Network) advanceOS(now sim.Time) {
	os := n.os
	if os == nil {
		return
	}
	nodes := n.topo.Nodes()
	if nodes < 2 {
		return
	}
	pc := &n.planes[topo.NetworkB]
	for {
		// The earliest pending event: the next timer tick, or the next
		// burst message if it comes first.
		at, bytes := os.next, os.cfg.Bytes
		src := int(os.idx % int64(nodes))
		burst := os.cfg.Bursty && os.burstLeft > 0 && os.burstAt < at
		if burst {
			at, bytes = os.burstAt, os.cfg.BurstBytes
			src = os.burstSrc % nodes
		}
		if at > now {
			return
		}
		if burst {
			// Burst messages chain back-to-back at line rate; the next
			// burst is armed once this one drains.
			os.burstAt = at + sim.Time(bytes)*link.BytePeriod
			os.burstLeft--
			if os.burstLeft == 0 {
				os.armBurst()
			}
		} else {
			os.idx++
			os.next += os.cfg.Interval
		}
		dst := (src + nodes/2) % nodes
		if dst == src {
			dst = (src + 1) % nodes
		}
		path, err := n.topo.Route(src, dst, topo.NetworkB)
		if err != nil {
			n.traceOSDrop(at)
			pc.OSDropped++
			continue
		}
		n.osSending = true
		_, err = n.send(at, path, bytes, 0, 0)
		n.osSending = false
		if err != nil {
			n.traceOSDrop(at)
			pc.OSDropped++
			continue
		}
		pc.OSMessages++
	}
}

// traceOSDrop records a dropped OS message on the OS track.
func (n *Network) traceOSDrop(at sim.Time) {
	if n.rec.Enabled() {
		n.rec.Instant(trace.OSTrack(), "os", "drop", at)
	}
}
