// The background operating-system stream on plane B.
//
// Section 4 of the paper motivates the duplicated communication system
// partly with software separation: "the operating system can use its own
// network" while applications own the other. For fault campaigns this
// matters because a failover retry lands on plane B — and a realistic
// plane B is not idle, it carries OS traffic. The OS stream models that
// load as a deterministic message train: every Interval, a CtrlBytes-
// sized message between a rotating node pair enters plane B and claims
// its circuits like any other send, so application retries queue behind
// it exactly where the hardware would make them queue.
//
// The stream is advanced lazily: before each reliable-send attempt the
// transport injects every OS message whose entry time has passed. The
// injection order is therefore a pure function of the send sequence, and
// two identical runs stay byte-identical.
package netsim

import (
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// Default OS-stream parameters: a steady control-message load that
// occupies plane B a few percent of the time — enough to be felt by
// failover retries without starving them.
const (
	// DefaultOSInterval spaces the OS messages.
	DefaultOSInterval = 10 * sim.Microsecond
	// DefaultOSBytes is the OS message payload (kernel bookkeeping
	// traffic: scheduling tokens, page metadata — small messages).
	DefaultOSBytes = 128
)

// OSStreamConfig describes the background system-software load on plane
// B of the duplicated network.
type OSStreamConfig struct {
	// Interval is the simulated time between OS messages.
	Interval sim.Time
	// Bytes is the payload size of each OS message.
	Bytes int
	// Start delays the first OS message.
	Start sim.Time
}

// DefaultOSStream returns the calibrated background load.
func DefaultOSStream() OSStreamConfig {
	return OSStreamConfig{Interval: DefaultOSInterval, Bytes: DefaultOSBytes}
}

// osStream is the lazily-advanced injection state.
type osStream struct {
	cfg  OSStreamConfig
	next sim.Time
	idx  int64
}

// AttachOSStream starts a background OS stream on plane B. Attaching
// replaces any previous stream; Reset re-arms the stream to its start.
// On topologies without a plane-B route between the chosen pair the
// message is dropped and counted, not silently ignored.
func (n *Network) AttachOSStream(cfg OSStreamConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultOSInterval
	}
	if cfg.Bytes <= 0 {
		cfg.Bytes = DefaultOSBytes
	}
	n.os = &osStream{cfg: cfg, next: cfg.Start}
}

// OSStreamAttached reports whether a background OS stream is active.
func (n *Network) OSStreamAttached() bool { return n.os != nil }

// advanceOS injects every OS message whose entry time is at or before
// now. Calls with a non-monotone now are no-ops for the earlier time, so
// the injection sequence is a pure function of the reliable-send
// sequence. Each message claims plane-B circuits through the ordinary
// wormhole send; severed plane-B wires turn messages into drops.
func (n *Network) advanceOS(now sim.Time) {
	os := n.os
	if os == nil {
		return
	}
	nodes := n.topo.Nodes()
	if nodes < 2 {
		return
	}
	pc := &n.planes[topo.NetworkB]
	for os.next <= now {
		src := int(os.idx % int64(nodes))
		dst := (src + nodes/2) % nodes
		if dst == src {
			dst = (src + 1) % nodes
		}
		at := os.next
		os.idx++
		os.next += os.cfg.Interval
		path, err := n.topo.Route(src, dst, topo.NetworkB)
		if err != nil {
			pc.OSDropped++
			continue
		}
		if _, err := n.send(at, path, os.cfg.Bytes, 0); err != nil {
			pc.OSDropped++
			continue
		}
		pc.OSMessages++
	}
}
