// Transport: the one fault-aware send path every software layer uses.
//
// Before this layer existed, internal/comm, internal/mpl and
// internal/earth each hand-rolled their own sends over raw Network.Send
// on plane A — so no application benchmark could run under a fault
// campaign, and every layer repeated the route lookup per message. A
// Transport is a per-source handle over the network that owns:
//
//   - route lookup, with a per-(dst, plane) route cache (routes are a
//     pure function of the immutable topology, so the cache survives
//     Reset);
//   - plane selection under the driver-level failover protocol of
//     failover.go;
//   - a per-plane "plane down" cache: after a failed attempt the driver
//     remembers the plane is dead and routes around it at a cheap
//     status-check cost instead of re-paying the full acknowledgment
//     timeout per message, reprobing the plane at a deterministic
//     interval (the cache is what bends the degradation curve from
//     "every message pays 12 µs" to "the first message pays 12 µs");
//   - advancing the optional background OS stream (osstream.go) so
//     failover retries contend with system-software traffic on plane B
//     instead of finding it idle.
//
// The layering rule is enforced by pmlint's `layering` analyzer: outside
// this package, nothing calls Network.Send directly without an audited
// //pmlint:allow directive.
package netsim

import (
	"fmt"

	"powermanna/internal/metrics"
	"powermanna/internal/ni"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// routeEntry caches one (dst, plane) route lookup outcome.
type routeEntry struct {
	// state is routeUnknown until the first lookup, then routeOK or
	// routeNone.
	state [2]uint8
	path  [2]topo.Path
}

const (
	routeUnknown uint8 = iota
	routeOK
	routeNone
)

// planeDown is the per-plane entry of the driver's plane-down cache.
type planeDown struct {
	// down marks the plane as known-dead from the sender's viewpoint.
	down bool
	// reprobeAt is when the driver will next risk a real attempt on the
	// plane (detection time + FailoverConfig.ReprobeInterval).
	reprobeAt sim.Time
}

// Transport is one node's fault-aware handle over the network: the send
// path internal/comm, internal/mpl and internal/earth go through. Create
// one per source node with Network.Transport. A Transport is bound to
// its network's lifetime; Network.Reset clears its fault state (plane-
// down cache) but keeps the route cache, which depends only on the
// immutable topology.
type Transport struct {
	net *Network
	src int
	cfg FailoverConfig
	// routes is the per-destination route cache (nil on the ephemeral
	// transports behind Network.SendReliable).
	routes []routeEntry
	// down is the plane-down cache, one entry per link interface of the
	// node (one per network plane of the duplicated system).
	down [ni.LinksPerNode]planeDown
	// tenantLat, when labelled via SetTenant, additionally receives every
	// delivered send's latency under the tenant's histogram name.
	tenantLat *metrics.Histogram
	// tenantWait receives the delivered latency's decomposition under the
	// tenant's per-component histogram names (waitComponents order).
	tenantWait [4]*metrics.Histogram
}

// Transport returns a new fault-aware per-source send handle using the
// given failover configuration, registered with the network so Reset
// clears its plane-down cache.
func (n *Network) Transport(src int, cfg FailoverConfig) (*Transport, error) {
	if src < 0 || src >= n.topo.Nodes() {
		return nil, fmt.Errorf("netsim: transport source %d out of range", src)
	}
	t := &Transport{
		net:    n,
		src:    src,
		cfg:    cfg,
		routes: make([]routeEntry, n.topo.Nodes()),
	}
	n.transports = append(n.transports, t)
	return t, nil
}

// MustTransport is Transport for callers that construct over a validated
// topology; it panics on an out-of-range source.
func (n *Network) MustTransport(src int, cfg FailoverConfig) *Transport {
	t, err := n.Transport(src, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Src reports the node this transport sends from.
func (t *Transport) Src() int { return t.src }

// Config returns the failover configuration the transport applies.
func (t *Transport) Config() FailoverConfig { return t.cfg }

// SetTenant labels this transport's delivered sends: latencies
// additionally land in the tenant's own histogram
// (MetricSendLatencyTenantPrefix + name), resolved from the registry the
// network holds — call after Network.SetMetrics. An empty name, or
// metrics off, clears the label.
func (t *Transport) SetTenant(name string) {
	if name == "" || t.net.mreg == nil {
		t.tenantLat = nil
		t.tenantWait = [4]*metrics.Histogram{}
		return
	}
	t.tenantLat = t.net.mreg.TimeHistogram(MetricSendLatencyTenantPrefix+name, tenantLatencyBuckets())
	t.tenantWait = tenantWaitHistograms(t.net.mreg, name)
}

// PlaneDown reports whether the driver's plane-down cache currently
// marks the plane dead, and until when sends skip it.
func (t *Transport) PlaneDown(plane int) (down bool, reprobeAt sim.Time) {
	if plane < 0 || plane >= len(t.down) {
		return false, 0
	}
	return t.down[plane].down, t.down[plane].reprobeAt
}

// Route returns the cached route from the transport's source to dst on
// the given plane, computing and caching it on first use.
//
//pmlint:hotpath
func (t *Transport) Route(dst, plane int) (topo.Path, error) {
	if t.routes == nil || dst < 0 || dst >= len(t.routes) {
		return t.net.topo.Route(t.src, dst, plane)
	}
	e := &t.routes[dst]
	if e.state[plane] == routeUnknown {
		p, err := t.net.topo.Route(t.src, dst, plane)
		if err != nil {
			e.state[plane] = routeNone
		} else {
			e.state[plane] = routeOK
			e.path[plane] = p
		}
	}
	if e.state[plane] == routeNone {
		return topo.Path{}, fmt.Errorf("netsim: no plane-%s route %d->%d", planeName(plane), t.src, dst) //pmlint:allow hotpath cold unwired-plane path, cached after the first lookup
	}
	return e.path[plane], nil
}

// Send posts payloadBytes to dst under the failover protocol with the
// transport's configuration: plane A first, then plane B, with the
// plane-down cache short-circuiting attempts to a known-dead plane. See
// Network.SendReliable for the protocol's timing accounting; Send adds
// the cache on top.
//
//pmlint:hotpath
func (t *Transport) Send(at sim.Time, dst, payloadBytes int) (Delivery, error) {
	return t.sendWith(at, dst, payloadBytes, t.cfg)
}

// resetFaultState clears the plane-down cache (Network.Reset); the route
// cache depends only on the immutable topology and survives.
func (t *Transport) resetFaultState() {
	t.down = [ni.LinksPerNode]planeDown{}
}

// markDown records a failed attempt on a plane: the driver treats the
// plane as dead until detectedAt + ReprobeInterval. A zero interval
// disables the cache.
func (t *Transport) markDown(plane int, detectedAt sim.Time, cfg FailoverConfig) {
	if cfg.ReprobeInterval <= 0 || plane < 0 || plane >= len(t.down) {
		return
	}
	t.down[plane] = planeDown{down: true, reprobeAt: detectedAt + cfg.ReprobeInterval}
}

// sendWith runs the failover protocol and tallies the outcome into the
// network's metrics instruments (no-ops when no registry is attached).
//
//pmlint:hotpath
func (t *Transport) sendWith(at sim.Time, dst, payloadBytes int, cfg FailoverConfig) (Delivery, error) {
	d, err := t.sendProtocol(at, dst, payloadBytes, cfg)
	if err == nil {
		t.net.met.observeSend(d)
		if !d.Failed {
			t.tenantLat.ObserveTime(d.Latency())
			observeDecomp(&t.tenantWait, d.Decomp)
		}
	}
	return d, err
}

// sendProtocol is the shared failover protocol: the body of both
// Transport.Send and the cacheless Network.SendReliable. All protocol
// costs — stall deferral, ack timeout, NACK return, backoff, plane-down
// status checks — land in the returned Delivery's times.
//
// The plane-down cache never loses a message on its own: a send is
// reported failed only after a real attempt on every wired plane, so if
// the first pass skipped cached-down planes without delivering, a second
// pass probes them for real (the cache is a latency optimisation, not an
// availability decision).
//
//pmlint:hotpath
func (t *Transport) sendProtocol(at sim.Time, dst, payloadBytes int, cfg FailoverConfig) (Delivery, error) {
	n := t.net
	if dst < 0 || dst >= n.topo.Nodes() {
		return Delivery{}, fmt.Errorf("netsim: node out of range (%d, %d)", t.src, dst) //pmlint:allow hotpath cold bad-argument path, never taken per message
	}
	if payloadBytes < 0 {
		return Delivery{}, fmt.Errorf("netsim: negative payload")
	}
	st := newSendState(at, cfg)
	// Pass 1, preferred order: plane A, then plane B, with the plane-down
	// cache short-circuiting planes the driver already knows are dead.
	for _, plane := range [2]int{topo.NetworkA, topo.NetworkB} {
		if st.attempts >= st.maxAttempts {
			break
		}
		if pd := &t.down[plane]; pd.down && cfg.ReprobeInterval > 0 && st.attemptAt() < pd.reprobeAt {
			if _, err := t.Route(dst, plane); err != nil {
				continue // not wired: nothing to skip
			}
			// Plane-down cache hit: the driver already knows this plane
			// is dead and pays only a cached status check, not the full
			// detection window.
			n.planes[plane].SkippedDown++
			st.skipped = append(st.skipped, plane)
			if n.rec.Enabled() {
				n.rec.InstantArg(trace.NodeTrack(t.src), "failover", "plane-down-hit",
					st.attemptAt(), "plane "+planeName(plane))
			}
			st.elapsed += cfg.PlaneDownCheck
			st.detect += cfg.PlaneDownCheck
			continue
		}
		d, final, err := t.tryPlane(plane, dst, payloadBytes, cfg, &st)
		if final {
			return d, err
		}
	}
	// Pass 2: nothing delivered yet, so probe the planes the cache
	// skipped before burning budget on retries.
	for _, plane := range st.skipped {
		if st.attempts >= st.maxAttempts {
			break
		}
		d, final, err := t.tryPlane(plane, dst, payloadBytes, cfg, &st)
		if final {
			return d, err
		}
	}
	// Pass 3: every wired plane soft-failed at least once. Congestion and
	// death are indistinguishable from the sender, so keep alternating
	// planes that lack hard evidence of death until the budget runs out.
	for st.attempts < st.maxAttempts {
		before := st.attempts
		for _, plane := range [2]int{topo.NetworkA, topo.NetworkB} {
			if st.hard[plane] || st.attempts >= st.maxAttempts {
				continue
			}
			d, final, err := t.tryPlane(plane, dst, payloadBytes, cfg, &st)
			if final {
				return d, err
			}
		}
		if st.attempts == before {
			break // only hard-down or unwired planes remain
		}
	}
	if n.rec.Enabled() {
		n.rec.InstantArg(trace.NodeTrack(t.src), "failover", "send-failed", st.attemptAt(),
			fmt.Sprintf("%d->%d after %d attempts", t.src, dst, st.attempts)) //pmlint:allow hotpath trace-gated formatting on the all-planes-failed path
	}
	return Delivery{Attempts: st.attempts, SkippedDown: len(st.skipped), Failed: true,
		PayloadBytes: payloadBytes, Sent: at, Done: st.attemptAt(),
		Decomp: Decomp{Detect: st.detect, Retry: st.retry}}, nil
}

// sendState threads one reliable send's accounting through its plane
// attempts: the sender-observed clock and the attempt/skip tallies.
type sendState struct {
	// at is the requested entry time; elapsed accumulates every
	// detection window, status check and backoff since.
	at, elapsed sim.Time
	// detect and retry split elapsed for the latency decomposition:
	// detection windows (ack timeouts, NACK returns, stall abandons,
	// plane-down status checks) versus backoff pauses. Every update to
	// elapsed maintains elapsed == detect + retry, which is what makes
	// Decomp sum to Latency() exactly.
	detect, retry sim.Time
	attempts      int
	// maxAttempts is the resolved real-attempt budget; crcLeft the
	// remaining same-plane re-sends the CRCRetries budget allows.
	maxAttempts int
	crcLeft     int
	skipped     []int
	// hard marks planes ruled out by hard evidence (severed wire) —
	// never worth a retry within this send.
	hard [ni.LinksPerNode]bool
}

// newSendState seeds one reliable send's accounting from its config:
// the resolved attempt budget (zero MaxAttempts means one real attempt
// per wired plane, the legacy shape) and the same-plane CRC re-send
// budget.
func newSendState(at sim.Time, cfg FailoverConfig) sendState {
	ma := cfg.MaxAttempts
	if ma <= 0 {
		ma = ni.LinksPerNode
	}
	return sendState{at: at, maxAttempts: ma, crcLeft: cfg.CRCRetries}
}

// attemptAt is the sender's clock for the next attempt.
//
//pmlint:hotpath
func (st *sendState) attemptAt() sim.Time { return st.at + st.elapsed }

// traceAttempt records one failed plane attempt: the detection window
// (entry to failure detection) into the metrics histogram, and — when
// tracing — a span labelled with the cause ("fifo-stall", "link-down",
// "setup-timeout", "crc-nack").
//
//pmlint:hotpath
func (t *Transport) traceAttempt(plane int, from, detected sim.Time, cause string) {
	t.net.met.detection.ObserveTime(detected - from)
	if !t.net.rec.Enabled() {
		return
	}
	t.net.rec.SpanArg(trace.NodeTrack(t.src), "failover", "attempt "+planeName(plane),
		from, detected, cause)
}

// tryPlane runs one real attempt on a plane. final reports that the
// protocol is over: delivery, or a non-protocol error. A false final
// means the attempt failed and the clock advanced past its detection
// window — the caller moves on to the next plane.
//
//pmlint:hotpath
func (t *Transport) tryPlane(plane, dst, payloadBytes int, cfg FailoverConfig, st *sendState) (Delivery, bool, error) {
	n := t.net
	// System-software traffic that accumulated up to this attempt's
	// entry time claims its plane-B circuits first, so a failover retry
	// contends with the OS stream instead of finding plane B idle
	// (Section 4: system software owns its own network).
	attemptAt := st.attemptAt()
	n.advanceOS(attemptAt)
	path, err := t.Route(dst, plane)
	if err != nil {
		// The plane is not wired at all (single-network topologies):
		// software knows immediately, no detection cost.
		return Delivery{}, false, nil
	}
	pc := &n.planes[plane]
	st.attempts++
	pc.Attempts++
	entry := n.nis[t.src].Links[plane].ReadyAt(attemptAt)
	if entry > attemptAt {
		pc.Stalled++
	}
	if cfg.SetupTimeout > 0 && entry > attemptAt+cfg.SetupTimeout {
		// The send FIFO never drained: abandon the plane without
		// entering the network.
		pc.SetupTimeouts++
		pc.FailedOver++
		t.markDown(plane, attemptAt+cfg.SetupTimeout, cfg)
		t.traceAttempt(plane, attemptAt, attemptAt+cfg.SetupTimeout, "fifo-stall")
		st.elapsed += cfg.SetupTimeout + cfg.RetryBackoff
		st.detect += cfg.SetupTimeout
		st.retry += cfg.RetryBackoff
		return Delivery{}, false, nil
	}
	tr, err := n.send(entry, path, payloadBytes, cfg.SetupTimeout, cfg.AckTimeout)
	if err != nil {
		var down *DownError
		if !errorsAs(err, &down) {
			return Delivery{}, true, err
		}
		cause := "setup-timeout"
		if down.Cut {
			pc.LinkDown++
			st.hard[plane] = true
			cause = "link-down"
		} else {
			pc.SetupTimeouts++
		}
		pc.FailedOver++
		// Silence on the wire: the sender learns only via the
		// acknowledgment timeout, wherever the fault sits.
		detected := entry + cfg.AckTimeout
		t.markDown(plane, detected, cfg)
		t.traceAttempt(plane, attemptAt, detected, cause)
		st.elapsed = detected + cfg.RetryBackoff - st.at
		st.detect += detected - attemptAt
		st.retry += cfg.RetryBackoff
		return Delivery{}, false, nil
	}
	if tr.Corrupted {
		n.nis[dst].Links[plane].RecordCRCError()
		pc.CRCErrors++
		detected := tr.LastByte + cfg.NackLatency
		st.elapsed = detected + cfg.RetryBackoff - st.at
		// The whole corrupt attempt — wire time included — is detection:
		// the transfer bought no progress, only the NACK's evidence.
		st.detect += detected - attemptAt
		st.retry += cfg.RetryBackoff
		if st.crcLeft > 0 && st.attempts < st.maxAttempts {
			// A NACK proves the plane carried the frame end to end —
			// transient corruption, not a dead plane. Spend the bounded
			// same-plane budget before charging the failover path.
			st.crcLeft--
			pc.CRCRetries++
			t.traceAttempt(plane, attemptAt, detected, "crc-retry")
			return t.tryPlane(plane, dst, payloadBytes, cfg, st)
		}
		pc.FailedOver++
		t.markDown(plane, detected, cfg)
		t.traceAttempt(plane, attemptAt, detected, "crc-nack")
		return Delivery{}, false, nil
	}
	n.nis[dst].Links[plane].RecordFrame()
	pc.Delivered++
	t.down[plane] = planeDown{}
	wire := n.idealTransit(path, payloadBytes)
	return Delivery{
		Transit:      tr,
		Plane:        plane,
		Attempts:     st.attempts,
		Retried:      st.attempts > 1 || len(st.skipped) > 0,
		SkippedDown:  len(st.skipped),
		PayloadBytes: payloadBytes,
		Sent:         st.at,
		Done:         tr.LastByte,
		Decomp: Decomp{
			Arb:    tr.LastByte - attemptAt - wire,
			Wire:   wire,
			Detect: st.detect,
			Retry:  st.retry,
		},
	}, true, nil
}
