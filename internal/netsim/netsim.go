// Package netsim assembles a runnable network from a topology: one
// crossbar instance per topology crossbar, one wire pair per physical
// link, asynchronous transceivers on inter-cabinet links. It computes
// message transit times under wormhole circuit switching:
//
//   - the header advances hop by hop, each crossbar consuming one route
//     byte and spending the 0.2 µs through-routing time (plus any wait
//     for a busy output channel),
//   - once the circuit stands, the body streams at the link rate with
//     cut-through (the first byte arrives long before the last),
//   - every traversed output channel and wire stays claimed until the
//     message's close command passes, so concurrent messages contend
//     exactly where the hardware would make them contend.
//
// Endpoint FIFO effects (the four-line send/receive FIFOs of the link
// interface) belong to the driver model in internal/comm; Transit assumes
// the endpoints keep up, which holds for latency measurements and routed
// examples.
//
// Shard locality (the internal/psim contract): a Network and everything
// hanging off it — crossbars, wires, transports, the attached recorder
// and registry — is single-shard state. All events touching one Network
// must run on the same psim shard (fault campaigns ensure this by
// building one Network per degradation row); nothing in this package
// synchronizes, and the shard-safety analyzers hold it to that.
package netsim

import (
	"fmt"

	"powermanna/internal/link"
	"powermanna/internal/metrics"
	"powermanna/internal/ni"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
	"powermanna/internal/xbar"
)

// Network is an instantiated interconnect.
type Network struct {
	topo    *topo.Topology
	xbars   []*xbar.Crossbar
	linkCfg link.Config
	trans   link.Transceiver
	// wires are directed, keyed by the upstream end: for hop i the wire
	// is the one leaving the previous device toward this crossbar.
	wires map[wireKey]*link.Wire
	nis   []*ni.NI
	sent  int64
	// planes accumulates per-plane degraded-mode counters for the
	// failover protocol (failover.go).
	planes [ni.LinksPerNode]PlaneCounters
	// transports are the registered per-source send handles
	// (transport.go); Reset clears their plane-down caches.
	transports []*Transport
	// os is the optional background system-software stream on plane B
	// (osstream.go); nil when no stream is attached.
	os *osStream
	// rec, when non-nil, records the timeline of every send: message
	// spans per source node, circuit holds per crossbar output and wire,
	// failover attempts per transport. Attached via SetRecorder.
	rec *trace.Recorder
	// met holds the resolved metrics instruments the reliable-send path
	// feeds (netmetrics.go); the zero value is the "metrics off" state.
	met netInstruments
	// mreg is the attached registry itself, kept so late labelling
	// (Transport.SetTenant) can resolve additional instruments.
	mreg *metrics.Registry
	// osSending marks sends issued by the background OS stream so their
	// message spans land on the OS track instead of a node track.
	osSending bool
}

type wireKey struct {
	dev, port int
	// dir disambiguates the two directions of a bidirectional link:
	// 0 = out of (dev,port), 1 = into it.
	dir int
}

// New assembles a network over a topology with default PowerMANNA link
// and transceiver parameters.
func New(t *topo.Topology) *Network {
	n := &Network{
		topo:    t,
		linkCfg: link.Default("wire"),
		trans:   link.DefaultTransceiver(),
		wires:   make(map[wireKey]*link.Wire),
	}
	for i := 0; i < t.Crossbars(); i++ {
		n.xbars = append(n.xbars, xbar.New(t.CrossbarName(i)))
	}
	for i := 0; i < t.Nodes(); i++ {
		n.nis = append(n.nis, ni.New())
	}
	return n
}

// Topology returns the underlying topology.
func (n *Network) Topology() *topo.Topology { return n.topo }

// Crossbar returns crossbar ordinal i (for stats).
func (n *Network) Crossbar(i int) *xbar.Crossbar { return n.xbars[i] }

// NI returns node i's network interface.
func (n *Network) NI(i int) *ni.NI { return n.nis[i] }

// MessagesSent reports how many transits have been computed.
func (n *Network) MessagesSent() int64 { return n.sent }

func (n *Network) wire(dev, port, dir int) *link.Wire {
	k := wireKey{dev, port, dir}
	w, ok := n.wires[k]
	if !ok {
		w = link.NewWire(n.linkCfg)
		if n.rec.Enabled() {
			w.Trace(n.rec, trace.WireTrack(k.dev, k.port, k.dir))
		}
		n.wires[k] = w
	}
	return w
}

// SetRecorder attaches a trace recorder to the network: every crossbar
// and wire (existing and lazily created) records circuit occupancy, and
// Send records per-message spans. A nil recorder detaches everything —
// the default state, costing instrumented paths one nil check.
func (n *Network) SetRecorder(r *trace.Recorder) {
	n.rec = r
	for i, x := range n.xbars {
		x.Trace(r, i)
	}
	for k, w := range n.wires {
		w.Trace(r, trace.WireTrack(k.dev, k.port, k.dir))
	}
}

// Recorder returns the attached trace recorder (nil when tracing is off).
func (n *Network) Recorder() *trace.Recorder { return n.rec }

// Transit describes the timing of one message.
type Transit struct {
	// SetupDone is when the full wormhole circuit stands.
	SetupDone sim.Time
	// FirstByte and LastByte are body arrival times at the destination NI.
	FirstByte, LastByte sim.Time
	// WireBytes is the on-wire message length including header, CRC and
	// close command.
	WireBytes int
	// Corrupted marks a message that arrived but fails the receive-side
	// CRC check (Section 3.3): it crossed a wire inside an injected
	// corruption window, or a wire was severed mid-stream and the tail
	// never arrived. The sender does not see this; the receiver does.
	Corrupted bool
}

// DownError reports a send whose wormhole circuit could not form on the
// chosen plane: the header reached a severed wire, or waiting for a busy
// resource exceeded the caller's setup timeout (a stuck-busy crossbar
// output holds its channel forever). The sender itself learns of the
// failure only through the reliability protocol's acknowledgment timeout;
// At records when the condition arose inside the network.
type DownError struct {
	// Plane is the network plane (topo.NetworkA/B) the send was on.
	Plane int
	// Cut distinguishes a severed wire from a setup timeout.
	Cut bool
	// At is when the failure condition was met on the path walk.
	At sim.Time
}

// Error implements error.
func (e *DownError) Error() string {
	if e.Cut {
		return fmt.Sprintf("netsim: plane %d down: severed wire at %v", e.Plane, e.At)
	}
	return fmt.Sprintf("netsim: plane %d down: circuit setup timed out at %v", e.Plane, e.At)
}

// CutWire severs the directed wire leaving (dev, port) from t onward —
// the link-cut fault. Device indexing follows the topology: 0..Nodes()-1
// are nodes (port = network plane), then crossbars (port = output
// channel).
func (n *Network) CutWire(dev, port int, t sim.Time) {
	n.wire(dev, port, 0).CutAt(t)
}

// CorruptWire schedules a corruption window on the directed wire leaving
// (dev, port): messages crossing it during [from, until) arrive garbled
// and fail the destination NI's CRC check.
func (n *Network) CorruptWire(dev, port int, from, until sim.Time) {
	n.wire(dev, port, 0).CorruptBetween(from, until)
}

// Send computes the transit of a payload of the given size along path,
// entering the network no earlier than at, under wormhole circuit
// semantics: the header advances as far as it can, waits at busy output
// channels, and the whole path — every wire and crossbar output the worm
// occupies — stays claimed until the close command passes. Blocking
// therefore cascades: a worm stalled downstream keeps its upstream links
// busy, which is exactly the behaviour that separates mesh topologies
// from the crossbar hierarchy in the blocking experiment.
//
// The claim is computed in two passes. First the header walk peeks at
// each resource's free time to find the true setup schedule; then every
// resource is claimed from its setup until the message has fully passed.
// Sends are processed one at a time, so the peeked times stay valid.
func (n *Network) Send(at sim.Time, path topo.Path, payloadBytes int) (Transit, error) {
	return n.send(at, path, payloadBytes, 0, 0)
}

// send is Send with fault awareness: a positive setupTimeout bounds the
// wait at any single busy resource (wire entry or crossbar output) before
// the attempt is abandoned with a DownError, and severed wires on the
// path abort the attempt outright.
//
// A positive failHold models the teardown of a failed attempt: the
// partial circuit the header built stays claimed until at+failHold (the
// sender's ack-timeout detection, when the driver gives up and the
// switches reclaim the channels). Resources the header would only have
// reached after that teardown are not claimed — the header never got
// there. A zero failHold keeps the old behaviour: failed attempts claim
// nothing (the raw Send API and the OS stream, which retries on its own
// cadence).
//
//pmlint:hotpath
func (n *Network) send(at sim.Time, path topo.Path, payloadBytes int, setupTimeout, failHold sim.Time) (Transit, error) {
	if payloadBytes < 0 {
		return Transit{}, fmt.Errorf("netsim: negative payload")
	}
	n.sent++
	wireBytes := ni.WireBytes(len(path.RouteBytes), payloadBytes)
	if len(path.Hops) == 0 {
		// Self-delivery: no network involved.
		return Transit{SetupDone: at, FirstByte: at, LastByte: at, WireBytes: 0}, nil
	}

	byteTime := n.linkCfg.TransferTime(1)
	bodyTime := n.linkCfg.TransferTime(wireBytes - len(path.RouteBytes))

	wireClaims := make([]sendWireClaim, 0, len(path.Hops)+1)
	hopClaims := make([]sendHopClaim, 0, len(path.Hops))

	// Pass 1: header walk, peeking at free times.
	head := at
	fromDev, fromPort := path.Src, path.Network
	remaining := wireBytes
	for _, hop := range path.Hops {
		w := n.wire(fromDev, fromPort, 0)
		wStart := sim.Max(head, w.FreeAt())
		if w.DeadAt(wStart) {
			n.teardownPartial(wireClaims, hopClaims, at, failHold)
			return Transit{}, &DownError{Plane: path.Network, Cut: true, At: wStart}
		}
		// The setup timeout does not cover the first wire: a wait there is
		// the sender's own uplink draining earlier traffic, and the driver
		// watches that progress through the status register (Section 3.3)
		// instead of declaring the plane dead. A severed uplink is still
		// caught by DeadAt above, a wedged NI by ReadyAt's stall windows.
		if setupTimeout > 0 && len(wireClaims) > 0 && wStart-head > setupTimeout {
			n.teardownPartial(wireClaims, hopClaims, at, failHold)
			return Transit{}, &DownError{Plane: path.Network, At: head + setupTimeout}
		}
		wireClaims = append(wireClaims, sendWireClaim{w: w, start: wStart, bytes: remaining})
		lat := n.linkCfg.PropagationDelay + byteTime
		if hop.AsyncIn {
			lat += n.trans.Latency
		}
		headArrive := wStart + lat
		x := n.xbars[hop.Xbar]
		setupStart := sim.Max(headArrive, x.OutputFreeAt(hop.Out))
		if setupTimeout > 0 && setupStart-headArrive > setupTimeout {
			n.teardownPartial(wireClaims, hopClaims, at, failHold)
			return Transit{}, &DownError{Plane: path.Network, At: headArrive + setupTimeout}
		}
		hopClaims = append(hopClaims, sendHopClaim{x: x, out: hop.Out, requested: headArrive, start: setupStart})
		head = setupStart + xbar.RouteSetup
		fromDev, fromPort = n.topo.Nodes()+hop.Xbar, hop.Out
		remaining-- // the crossbar consumed one route byte
	}
	lastWire := n.wire(fromDev, fromPort, 0)
	lwStart := sim.Max(head, lastWire.FreeAt())
	if lastWire.DeadAt(lwStart) {
		n.teardownPartial(wireClaims, hopClaims, at, failHold)
		return Transit{}, &DownError{Plane: path.Network, Cut: true, At: lwStart}
	}
	if setupTimeout > 0 && lwStart-head > setupTimeout {
		n.teardownPartial(wireClaims, hopClaims, at, failHold)
		return Transit{}, &DownError{Plane: path.Network, At: head + setupTimeout}
	}
	wireClaims = append(wireClaims, sendWireClaim{w: lastWire, start: lwStart, bytes: remaining})
	first := lwStart + n.linkCfg.PropagationDelay + byteTime
	last := first + bodyTime

	// The circuit forms. A wire severed while the body streams truncates
	// the message; a corruption window garbles it. Both surface only at
	// the destination's CRC check, so the transit still claims the path.
	corrupted := false
	for _, c := range wireClaims {
		if cut, ok := c.w.CutTime(); ok && cut > c.start && cut <= last {
			corrupted = true
		}
		if c.w.CorruptedIn(c.start, last) {
			corrupted = true
		}
	}

	// Pass 2: claim the full circuit until the close command passes.
	for _, c := range wireClaims {
		c.w.Hold(c.start, last, c.bytes)
	}
	for _, c := range hopClaims {
		c.x.HoldOutput(c.requested, c.start, last, c.out)
	}
	if n.rec.Enabled() {
		track, cat := trace.NodeTrack(path.Src), "netsim"
		if n.osSending {
			track, cat = trace.OSTrack(), "os"
		}
		n.rec.SpanArg(track, cat, "msg", at, last,
			fmt.Sprintf("%d->%d plane %s, %dB", path.Src, path.Dst, planeName(path.Network), payloadBytes)) //pmlint:allow hotpath trace-gated formatting, tracing runs pay for the labels
		n.rec.Span(track, cat, "setup", at, head)
		n.rec.Span(track, cat, "stream", head, last)
		if corrupted {
			n.rec.Instant(track, cat, "crc-corrupt", last)
		}
	}
	return Transit{SetupDone: head, FirstByte: first, LastByte: last, WireBytes: wireBytes, Corrupted: corrupted}, nil
}

// idealTransit is the zero-contention sender-observed transit time of a
// payload along path: the same walk as send with every wait removed —
// entry at the requested time, every wire free, every crossbar output
// granted on arrival. A pure function of the route and the payload,
// which is what makes it the Wire component of the latency
// decomposition: the delivering attempt's span minus this is exactly
// the contention it absorbed (Decomp.Arb), never negative because every
// wait in the real walk is a max() against the unloaded schedule.
//
//pmlint:hotpath
func (n *Network) idealTransit(path topo.Path, payloadBytes int) sim.Time {
	if len(path.Hops) == 0 {
		return 0 // self-delivery: no network involved
	}
	wireBytes := ni.WireBytes(len(path.RouteBytes), payloadBytes)
	byteTime := n.linkCfg.TransferTime(1)
	var t sim.Time
	for _, hop := range path.Hops {
		t += n.linkCfg.PropagationDelay + byteTime
		if hop.AsyncIn {
			t += n.trans.Latency
		}
		t += xbar.RouteSetup
	}
	t += n.linkCfg.PropagationDelay + byteTime
	return t + n.linkCfg.TransferTime(wireBytes-len(path.RouteBytes))
}

// sendWireClaim and sendHopClaim are the peeked pass-1 reservations of
// one send attempt, applied in pass 2 (or held to a failed attempt's
// teardown).
type sendWireClaim struct {
	w     *link.Wire
	start sim.Time
	bytes int
}

type sendHopClaim struct {
	x                *xbar.Crossbar
	out              int
	requested, start sim.Time
}

// teardownPartial claims a failed attempt's partial circuit until the
// teardown at entry+failHold — the sender's detection time, when the
// driver gives up and the switches reclaim the channels. Resources the
// header would only have reached after the teardown are skipped; a zero
// failHold claims nothing (the unguarded Send path).
func (n *Network) teardownPartial(wires []sendWireClaim, hops []sendHopClaim, entry, failHold sim.Time) {
	if failHold <= 0 {
		return
	}
	until := entry + failHold
	for _, c := range wires {
		if c.start < until {
			c.w.Hold(c.start, until, c.bytes)
		}
	}
	for _, c := range hops {
		if c.start < until {
			c.x.HoldOutput(c.requested, c.start, until, c.out)
		}
	}
}

// Reset clears all crossbar and wire timelines, NI state, per-plane
// counters, the plane-down cache of every registered transport, and
// re-arms the attached OS stream (if any) to its start — a reset network
// re-renders byte-identically for the same send sequence, faulted
// history or not.
func (n *Network) Reset() {
	for _, x := range n.xbars {
		x.Reset()
	}
	for _, w := range n.wires {
		w.Reset()
	}
	for _, d := range n.nis {
		d.Reset()
	}
	n.sent = 0
	n.planes = [ni.LinksPerNode]PlaneCounters{}
	for _, t := range n.transports {
		t.resetFaultState()
	}
	if n.os != nil {
		n.os.rearm()
	}
}
