package cpu

import (
	"fmt"
	"math"
)

// CostModel memoizes the steady-state per-iteration cost of a template on
// a core for homogeneous memory-latency tuples.
//
// Kernels with billions of iterations (MatMult at large N) cannot afford a
// scoreboard pass per iteration. But within a kernel the latency tuple of
// an iteration takes only a handful of distinct values (L1 hit, L2 hit,
// memory, memory-with-contention buckets), and for a loop whose iterations
// all see the same tuple the scoreboard reaches a steady state after a few
// iterations. CostModel runs the scoreboard once per distinct tuple —
// warming it up and measuring the per-iteration increment — and serves
// every later iteration from the memo. Cross-tuple pipeline overlap is the
// one effect this approximation drops; it is second-order for the paper's
// kernels, whose miss patterns come in long homogeneous runs.
type CostModel struct {
	cfg  *Config
	tmpl *Template
	memo map[uint64]float64
	// small is an array fast path for two-slot tuples with latencies under
	// 256 cycles (the overwhelmingly common case); NaN means unset.
	small []float64
	// lastKey/lastCost fast-path long runs of identical tuples.
	lastKey  uint64
	lastCost float64
	hasLast  bool
}

const (
	costWarmup  = 48
	costMeasure = 48
	// maxMemSlots bounds the tuple so it packs into a uint64 memo key.
	maxMemSlots = 4
	// latQuantum buckets contended latencies so the memo stays small.
	latQuantum = 4
)

// NewCostModel builds a memoizing cost model. It panics if the template
// has more than four memory slots (pack limit) or fails validation.
func NewCostModel(cfg *Config, tmpl *Template) *CostModel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if err := tmpl.Validate(); err != nil {
		panic(err)
	}
	if tmpl.MemSlots() > maxMemSlots {
		panic(fmt.Sprintf("cpu: template %q has %d memory slots, max %d", tmpl.Name, tmpl.MemSlots(), maxMemSlots))
	}
	m := &CostModel{cfg: cfg, tmpl: tmpl, memo: make(map[uint64]float64)}
	m.small = make([]float64, 1<<16)
	nan := math.NaN()
	for i := range m.small {
		m.small[i] = nan
	}
	return m
}

// Quantize buckets a latency to the memo quantum, preserving the L1-hit
// latency exactly so hits are never confused with near-hits.
func (m *CostModel) Quantize(lat int64) int64 {
	hit := int64(m.cfg.Timing[Load].Latency)
	if lat <= hit {
		return hit
	}
	q := (lat + latQuantum - 1) / latQuantum * latQuantum
	return q
}

func packKey(memLat []int64) uint64 {
	var k uint64
	for _, l := range memLat {
		if l < 0 {
			l = 0
		}
		if l > 0xFFFF {
			l = 0xFFFF
		}
		k = k<<16 | uint64(l)
	}
	return k
}

// CyclesPerIter returns the steady-state cycles per iteration for the
// given (already quantized, or exact) memory-latency tuple.
func (m *CostModel) CyclesPerIter(memLat []int64) float64 {
	// Array fast path: two slots, both latencies under 256 cycles.
	if len(memLat) == 2 &&
		memLat[0] >= 0 && memLat[0] < 256 && memLat[1] >= 0 && memLat[1] < 256 {
		idx := memLat[0]<<8 | memLat[1]
		if c := m.small[idx]; c == c { // not NaN
			return c
		}
		c := m.compute(memLat)
		m.small[idx] = c
		return c
	}
	key := packKey(memLat)
	if m.hasLast && key == m.lastKey {
		return m.lastCost
	}
	if c, ok := m.memo[key]; ok {
		m.lastKey, m.lastCost, m.hasLast = key, c, true
		return c
	}
	c := m.compute(memLat)
	m.memo[key] = c
	m.lastKey, m.lastCost, m.hasLast = key, c, true
	return c
}

// compute measures the steady-state per-iteration cost with a fresh
// scoreboard.
func (m *CostModel) compute(memLat []int64) float64 {
	r := NewRunner(m.cfg, m.tmpl)
	for i := 0; i < costWarmup; i++ {
		r.Iterate(memLat)
	}
	before := r.Cycles()
	for i := 0; i < costMeasure; i++ {
		r.Iterate(memLat)
	}
	return float64(r.Cycles()-before) / costMeasure
}

// Entries reports how many distinct tuples have been evaluated.
func (m *CostModel) Entries() int {
	n := len(m.memo)
	for _, c := range m.small {
		if c == c {
			n++
		}
	}
	return n
}
