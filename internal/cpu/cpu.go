// Package cpu models superscalar processor cores at the timing level
// needed to reproduce the paper's node benchmarks: issue width, execution
// units, operation latencies and pipelining, fused multiply-add, and —
// decisive for Figure 7 — whether the load/store unit pipelines misses.
//
// The paper (Section 5.1): "the PowerPC MPC620 is specially designed to
// support floating-point pipelining, but it does not support load
// pipelining (the follow-up processor Power3, however, incorporates this).
// Thus, the available memory bandwidth of PowerMANNA cannot be fully
// exploited."
//
// The model is a dispatch scoreboard over loop templates: a template is a
// loop body with explicit virtual-register dependencies; the scoreboard
// issues instructions in program order (bounded by issue width), lets them
// wait for operands at their unit (reservation-station style, unless the
// core is configured in-order), and retires results after the unit
// latency. Memory operations take per-iteration latencies supplied by the
// caller (the cache/fabric models), and outstanding misses are bounded by
// the core's miss-queue depth — depth 1 is exactly "no load pipelining".
package cpu

import (
	"fmt"

	"powermanna/internal/sim"
)

// Class identifies an instruction kind in a loop template.
type Class uint8

// Instruction classes. FPMAdd is the fused multiply-add the MPC620's FPU
// executes as one operation (two flops).
const (
	IntALU Class = iota
	IntMul
	IntDiv
	FPAdd
	FPMul
	FPMAdd
	FPDiv
	Load
	Store
	Branch
	numClasses
)

// String names the instruction class.
func (c Class) String() string {
	names := [...]string{"IntALU", "IntMul", "IntDiv", "FPAdd", "FPMul", "FPMAdd", "FPDiv", "Load", "Store", "Branch"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Flops reports how many floating-point operations the class performs.
func (c Class) Flops() int {
	switch c {
	case FPAdd, FPMul, FPDiv:
		return 1
	case FPMAdd:
		return 2
	default:
		return 0
	}
}

// Unit identifies an execution-unit kind.
type Unit uint8

// Execution unit kinds.
const (
	UnitIntALU Unit = iota
	UnitIntMul
	UnitFPU
	UnitLS
	UnitBranch
	numUnits
)

// String names the functional unit.
func (u Unit) String() string {
	names := [...]string{"IntALU", "IntMul", "FPU", "LS", "Branch"}
	if int(u) < len(names) {
		return names[u]
	}
	return fmt.Sprintf("Unit(%d)", uint8(u))
}

// OpTiming describes how one instruction class executes.
type OpTiming struct {
	// Unit is the execution unit kind the class dispatches to.
	Unit Unit
	// Latency is cycles from execution start to result availability.
	Latency int
	// Pipelined units accept a new operation every cycle; non-pipelined
	// units are busy for the full latency.
	Pipelined bool
}

// Config describes one core.
type Config struct {
	// Name labels the core, e.g. "MPC620".
	Name string
	// Clock is the core clock domain.
	Clock sim.Clock
	// IssueWidth is instructions dispatched per cycle (MPC620: 4).
	IssueWidth int
	// Units is the number of instances of each unit kind.
	Units [numUnits]int
	// Timing gives per-class unit binding and latency. Load latency here
	// is the L1-hit load-use latency; larger per-access latencies are
	// supplied by the caller per iteration.
	Timing [numClasses]OpTiming
	// MissQueue is the number of outstanding load misses the core
	// sustains. 1 models the MPC620's missing load pipelining: a load
	// miss blocks the next miss until it completes. Larger values model
	// the non-blocking load queues of the comparison machines.
	MissQueue int
	// InOrderExec forces execution starts to be program-ordered, as on
	// the UltraSPARC-I. Cores with reservation stations (MPC620, P6)
	// leave this false: dispatched operations wait for operands at their
	// unit without blocking younger independent work.
	InOrderExec bool
	// HasFMA reports whether FPMAdd executes as one operation. Kernels
	// expand multiply-adds into FPMul+FPAdd on cores without it.
	HasFMA bool
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Clock.Period <= 0:
		return fmt.Errorf("cpu %q: zero clock", c.Name)
	case c.IssueWidth <= 0:
		return fmt.Errorf("cpu %q: IssueWidth = %d", c.Name, c.IssueWidth)
	case c.MissQueue <= 0:
		return fmt.Errorf("cpu %q: MissQueue = %d (use 1 for blocking misses)", c.Name, c.MissQueue)
	}
	for cl := Class(0); cl < numClasses; cl++ {
		t := c.Timing[cl]
		if t.Latency <= 0 {
			return fmt.Errorf("cpu %q: class %v has latency %d", c.Name, cl, t.Latency)
		}
		if c.Units[t.Unit] <= 0 {
			return fmt.Errorf("cpu %q: class %v bound to unit %v with no instances", c.Name, cl, t.Unit)
		}
	}
	return nil
}

// Instr is one instruction in a loop template. Register indices refer to
// the template's virtual registers; -1 means unused. Loads and stores name
// a memory slot whose latency the caller supplies per iteration.
type Instr struct {
	Class      Class
	Src1, Src2 int
	Dst        int
	MemSlot    int // -1 for non-memory instructions
}

// Template is a loop body. Register values written in one iteration and
// read in the next (loop-carried dependencies, e.g. a running sum) work
// naturally because register ready-times persist across iterations.
type Template struct {
	Name    string
	Instrs  []Instr
	NumRegs int
}

// Validate reports a template error, if any.
func (t *Template) Validate() error {
	memSlots := t.MemSlots()
	for i, in := range t.Instrs {
		if in.Dst >= t.NumRegs || in.Src1 >= t.NumRegs || in.Src2 >= t.NumRegs {
			return fmt.Errorf("template %q: instr %d references register beyond NumRegs", t.Name, i)
		}
		isMem := in.Class == Load || in.Class == Store
		if isMem && (in.MemSlot < 0 || in.MemSlot >= memSlots) {
			return fmt.Errorf("template %q: instr %d memory slot %d invalid", t.Name, i, in.MemSlot)
		}
		if !isMem && in.MemSlot != -1 {
			return fmt.Errorf("template %q: instr %d non-memory with MemSlot %d", t.Name, i, in.MemSlot)
		}
	}
	return nil
}

// MemSlots reports the number of distinct memory slots (max slot + 1).
func (t *Template) MemSlots() int {
	n := 0
	for _, in := range t.Instrs {
		if in.MemSlot >= n {
			n = in.MemSlot + 1
		}
	}
	return n
}

// Flops reports floating-point operations per iteration.
func (t *Template) Flops() int {
	n := 0
	for _, in := range t.Instrs {
		n += in.Class.Flops()
	}
	return n
}

// Runner executes a template iteration-by-iteration on a core,
// maintaining scoreboard state across iterations so that independent work
// from successive iterations overlaps exactly as far as the core's issue
// width, units and miss queue allow.
type Runner struct {
	cfg      *Config
	tmpl     *Template
	regReady []int64   // cycle each virtual register's value is available
	unitFree [][]int64 // per unit kind, per instance: next free cycle
	missRing []int64   // completion cycles of outstanding misses (size MissQueue)
	missPos  int
	issueCyc int64 // current dispatch cycle
	issuedIn int   // instructions dispatched in issueCyc
	lastExec int64 // last execution start (for InOrderExec)
	now      int64 // high-water completion cycle
	iters    int64
}

// NewRunner builds a runner. It panics on invalid config or template —
// both are machine-description bugs.
func NewRunner(cfg *Config, tmpl *Template) *Runner {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if err := tmpl.Validate(); err != nil {
		panic(err)
	}
	r := &Runner{
		cfg:      cfg,
		tmpl:     tmpl,
		regReady: make([]int64, tmpl.NumRegs),
		missRing: make([]int64, cfg.MissQueue),
	}
	r.unitFree = make([][]int64, numUnits)
	for u := range r.unitFree {
		r.unitFree[u] = make([]int64, cfg.Units[u])
	}
	return r
}

// dispatch finds the next dispatch cycle honoring issue width.
func (r *Runner) dispatch() int64 {
	if r.issuedIn >= r.cfg.IssueWidth {
		r.issueCyc++
		r.issuedIn = 0
	}
	r.issuedIn++
	return r.issueCyc
}

// earliestUnit picks the unit instance free soonest.
func earliestUnit(frees []int64) int {
	best := 0
	for i := 1; i < len(frees); i++ {
		if frees[i] < frees[best] {
			best = i
		}
	}
	return best
}

// Iterate runs one template iteration. memLat[slot] is the load-use (or
// store-accept) latency in core cycles for each memory slot this
// iteration; slots at the L1-hit latency are hits, anything larger is
// treated as a miss and bounded by the miss queue. It returns the
// completion high-water cycle after this iteration.
func (r *Runner) Iterate(memLat []int64) int64 {
	cfg := r.cfg
	hitLat := int64(cfg.Timing[Load].Latency)
	for _, in := range r.tmpl.Instrs {
		timing := cfg.Timing[in.Class]
		disp := r.dispatch()

		// Operand availability.
		ready := disp
		if in.Src1 >= 0 && r.regReady[in.Src1] > ready {
			ready = r.regReady[in.Src1]
		}
		if in.Src2 >= 0 && r.regReady[in.Src2] > ready {
			ready = r.regReady[in.Src2]
		}

		// Unit availability.
		frees := r.unitFree[timing.Unit]
		ui := earliestUnit(frees)
		start := ready
		if frees[ui] > start {
			start = frees[ui]
		}
		if cfg.InOrderExec && r.lastExec > start {
			start = r.lastExec
		}

		lat := int64(timing.Latency)
		isLoad := in.Class == Load
		if (isLoad || in.Class == Store) && in.MemSlot >= 0 && in.MemSlot < len(memLat) {
			lat = memLat[in.MemSlot]
		}
		if in.Class == Store {
			// Stores retire through the store buffer: the unit is occupied
			// for one cycle and the CPU does not wait for completion. The
			// caller accounts any bus occupancy separately.
			lat = int64(timing.Latency)
		}

		// A load miss must win a miss-queue slot: with MissQueue == 1
		// (no load pipelining) the previous miss must have completed.
		if isLoad && lat > hitLat {
			slot := r.missRing[r.missPos]
			if slot > start {
				start = slot
			}
			r.missRing[r.missPos] = start + lat
			r.missPos = (r.missPos + 1) % len(r.missRing)
		}

		done := start + lat
		if timing.Pipelined {
			frees[ui] = start + 1
		} else {
			frees[ui] = done
		}
		if isLoad && lat > hitLat && !timing.Pipelined {
			// Non-pipelined LS with a miss holds the unit until data
			// returns — the MPC620 behaviour.
			frees[ui] = done
		}
		if cfg.InOrderExec {
			r.lastExec = start
		}
		if in.Dst >= 0 {
			r.regReady[in.Dst] = done
		}
		if done > r.now {
			r.now = done
		}
	}
	r.iters++
	return r.now
}

// Cycles reports the completion high-water mark.
func (r *Runner) Cycles() int64 { return r.now }

// Iterations reports how many iterations have run.
func (r *Runner) Iterations() int64 { return r.iters }

// Reset clears all scoreboard state.
func (r *Runner) Reset() {
	for i := range r.regReady {
		r.regReady[i] = 0
	}
	for _, u := range r.unitFree {
		for i := range u {
			u[i] = 0
		}
	}
	for i := range r.missRing {
		r.missRing[i] = 0
	}
	r.missPos, r.issuedIn = 0, 0
	r.issueCyc, r.lastExec, r.now, r.iters = 0, 0, 0, 0
}

// RunLoop runs iters iterations with constant memory latencies and
// returns total cycles. Convenience for tests and calibration.
func RunLoop(cfg *Config, tmpl *Template, memLat []int64, iters int) int64 {
	r := NewRunner(cfg, tmpl)
	var last int64
	for i := 0; i < iters; i++ {
		last = r.Iterate(memLat)
	}
	return last
}
