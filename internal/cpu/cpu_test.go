package cpu

import (
	"testing"

	"powermanna/internal/sim"
)

// core620like builds a 4-issue core in the MPC620's image: pipelined FPU
// with fused multiply-add, two integer ALUs, and a load/store unit whose
// miss behaviour is set by missQueue (1 = blocking, as on the MPC620).
func core620like(missQueue int) *Config {
	cfg := &Config{
		Name:       "test620",
		Clock:      sim.ClockMHz(180),
		IssueWidth: 4,
		MissQueue:  missQueue,
		HasFMA:     true,
	}
	cfg.Units[UnitIntALU] = 2
	cfg.Units[UnitIntMul] = 1
	cfg.Units[UnitFPU] = 1
	cfg.Units[UnitLS] = 1
	cfg.Units[UnitBranch] = 1
	cfg.Timing[IntALU] = OpTiming{Unit: UnitIntALU, Latency: 1, Pipelined: true}
	cfg.Timing[IntMul] = OpTiming{Unit: UnitIntMul, Latency: 4, Pipelined: true}
	cfg.Timing[IntDiv] = OpTiming{Unit: UnitIntMul, Latency: 20, Pipelined: false}
	cfg.Timing[FPAdd] = OpTiming{Unit: UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[FPMul] = OpTiming{Unit: UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[FPMAdd] = OpTiming{Unit: UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[FPDiv] = OpTiming{Unit: UnitFPU, Latency: 18, Pipelined: false}
	cfg.Timing[Load] = OpTiming{Unit: UnitLS, Latency: 2, Pipelined: true}
	cfg.Timing[Store] = OpTiming{Unit: UnitLS, Latency: 1, Pipelined: true}
	cfg.Timing[Branch] = OpTiming{Unit: UnitBranch, Latency: 1, Pipelined: true}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := core620like(1).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c := core620like(1)
	c.IssueWidth = 0
	if err := c.Validate(); err == nil {
		t.Error("zero issue width accepted")
	}
	c = core620like(1)
	c.MissQueue = 0
	if err := c.Validate(); err == nil {
		t.Error("zero miss queue accepted")
	}
	c = core620like(1)
	c.Units[UnitFPU] = 0
	if err := c.Validate(); err == nil {
		t.Error("class bound to absent unit accepted")
	}
	c = core620like(1)
	c.Timing[Load].Latency = 0
	if err := c.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestTemplateValidate(t *testing.T) {
	good := &Template{
		Name:    "ok",
		NumRegs: 2,
		Instrs: []Instr{
			{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: 0},
			{Class: FPAdd, Src1: 0, Src2: 1, Dst: 1, MemSlot: -1},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid template rejected: %v", err)
	}
	if good.MemSlots() != 1 {
		t.Errorf("MemSlots = %d, want 1", good.MemSlots())
	}
	if good.Flops() != 1 {
		t.Errorf("Flops = %d, want 1", good.Flops())
	}
	bad := &Template{
		Name:    "bad",
		NumRegs: 1,
		Instrs:  []Instr{{Class: IntALU, Src1: 5, Src2: -1, Dst: 0, MemSlot: -1}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("register out of range accepted")
	}
	badMem := &Template{
		Name:    "badmem",
		NumRegs: 1,
		Instrs:  []Instr{{Class: IntALU, Src1: -1, Src2: -1, Dst: 0, MemSlot: 2}},
	}
	if err := badMem.Validate(); err == nil {
		t.Error("non-memory instruction with MemSlot accepted")
	}
}

func TestClassFlops(t *testing.T) {
	if FPMAdd.Flops() != 2 || FPAdd.Flops() != 1 || Load.Flops() != 0 {
		t.Error("Class.Flops wrong")
	}
}

// fmaTemplate: an FMA stream with no loop-carried dependency (distinct
// accumulators) should sustain 1 FMA/cycle on a pipelined FPU.
func TestPipelinedFPUThroughput(t *testing.T) {
	tmpl := &Template{
		Name:    "fma4",
		NumRegs: 8,
		Instrs: []Instr{
			{Class: FPMAdd, Src1: 0, Src2: 1, Dst: 4, MemSlot: -1},
			{Class: FPMAdd, Src1: 0, Src2: 1, Dst: 5, MemSlot: -1},
			{Class: FPMAdd, Src1: 0, Src2: 1, Dst: 6, MemSlot: -1},
			{Class: FPMAdd, Src1: 0, Src2: 1, Dst: 7, MemSlot: -1},
		},
	}
	cycles := RunLoop(core620like(1), tmpl, nil, 256)
	// 1024 FMAs on one pipelined FPU: ~1024 cycles (+pipeline fill).
	perFMA := float64(cycles) / 1024
	if perFMA < 0.99 || perFMA > 1.1 {
		t.Errorf("cycles/FMA = %g, want ~1 (pipelined FPU)", perFMA)
	}
}

// A single loop-carried accumulator serializes on the FPU latency.
func TestLoopCarriedDependency(t *testing.T) {
	tmpl := &Template{
		Name:    "acc",
		NumRegs: 2,
		Instrs:  []Instr{{Class: FPAdd, Src1: 0, Src2: 1, Dst: 0, MemSlot: -1}},
	}
	cycles := RunLoop(core620like(1), tmpl, nil, 200)
	perIter := float64(cycles) / 200
	// FPAdd latency 3: the chain forces ~3 cycles/iteration.
	if perIter < 2.9 || perIter > 3.1 {
		t.Errorf("cycles/iter = %g, want ~3 (latency-bound chain)", perIter)
	}
}

// Issue width and unit count bound independent integer work.
func TestIssueAndUnitBound(t *testing.T) {
	// 8 independent single-cycle ALU ops; 2 ALUs → 4 cycles/iter.
	instrs := make([]Instr, 8)
	for i := range instrs {
		instrs[i] = Instr{Class: IntALU, Src1: -1, Src2: -1, Dst: i, MemSlot: -1}
	}
	tmpl := &Template{Name: "alu8", NumRegs: 8, Instrs: instrs}
	cycles := RunLoop(core620like(1), tmpl, nil, 100)
	perIter := float64(cycles) / 100
	if perIter < 3.9 || perIter > 4.2 {
		t.Errorf("cycles/iter = %g, want ~4 (2 ALUs, 8 ops)", perIter)
	}
}

// Blocking loads (MissQueue=1) serialize misses; a deeper queue overlaps
// them. This is the paper's load-pipelining distinction.
func TestMissQueueSerializesOrOverlaps(t *testing.T) {
	tmpl := &Template{
		Name:    "ld2",
		NumRegs: 4,
		Instrs: []Instr{
			{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: 0},
			{Class: Load, Src1: -1, Src2: -1, Dst: 1, MemSlot: 1},
			{Class: FPMAdd, Src1: 0, Src2: 1, Dst: 2, MemSlot: -1},
		},
	}
	miss := []int64{40, 40}
	blocking := RunLoop(core620like(1), tmpl, miss, 100)
	overlapped := RunLoop(core620like(8), tmpl, miss, 100)
	perBlock := float64(blocking) / 100
	perOver := float64(overlapped) / 100
	// Blocking: two serialized 40-cycle misses ≈ 80 cycles/iter.
	if perBlock < 75 || perBlock > 85 {
		t.Errorf("blocking cycles/iter = %g, want ~80", perBlock)
	}
	// Deep queue: the LS unit still pipelines, so misses from successive
	// iterations overlap; expect a large speedup.
	if perOver > perBlock/3 {
		t.Errorf("overlapped cycles/iter = %g vs blocking %g; want >3x overlap", perOver, perBlock)
	}
}

// Hits never consult the miss queue.
func TestHitsIgnoreMissQueue(t *testing.T) {
	tmpl := &Template{
		Name:    "ldhit",
		NumRegs: 2,
		Instrs:  []Instr{{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: 0}},
	}
	hit := []int64{2} // == L1 hit latency
	cycles := RunLoop(core620like(1), tmpl, hit, 100)
	perIter := float64(cycles) / 100
	if perIter > 1.2 {
		t.Errorf("hit loads = %g cycles/iter, want ~1 (pipelined LS)", perIter)
	}
}

// Stores never wait for the supplied latency (store buffer).
func TestStoresDoNotBlock(t *testing.T) {
	tmpl := &Template{
		Name:    "st",
		NumRegs: 1,
		Instrs:  []Instr{{Class: Store, Src1: 0, Src2: -1, Dst: -1, MemSlot: 0}},
	}
	cycles := RunLoop(core620like(1), tmpl, []int64{500}, 100)
	perIter := float64(cycles) / 100
	if perIter > 1.5 {
		t.Errorf("stores = %g cycles/iter, want ~1 (buffered)", perIter)
	}
}

// In-order execution forces monotone execution starts.
func TestInOrderExec(t *testing.T) {
	tmpl := &Template{
		Name:    "mixed",
		NumRegs: 4,
		Instrs: []Instr{
			{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: 0}, // miss
			{Class: IntALU, Src1: -1, Src2: -1, Dst: 1, MemSlot: -1},
			{Class: IntALU, Src1: -1, Src2: -1, Dst: 2, MemSlot: -1},
		},
	}
	ooo := core620like(4)
	ino := core620like(4)
	ino.InOrderExec = true
	miss := []int64{40}
	oooCycles := RunLoop(ooo, tmpl, miss, 50)
	inoCycles := RunLoop(ino, tmpl, miss, 50)
	if inoCycles < oooCycles {
		t.Errorf("in-order (%d) beat out-of-order (%d)", inoCycles, oooCycles)
	}
}

func TestRunnerResetAndCounters(t *testing.T) {
	tmpl := &Template{
		Name:    "one",
		NumRegs: 1,
		Instrs:  []Instr{{Class: IntALU, Src1: -1, Src2: -1, Dst: 0, MemSlot: -1}},
	}
	r := NewRunner(core620like(1), tmpl)
	r.Iterate(nil)
	r.Iterate(nil)
	if r.Iterations() != 2 {
		t.Errorf("Iterations = %d, want 2", r.Iterations())
	}
	if r.Cycles() <= 0 {
		t.Error("Cycles not advancing")
	}
	r.Reset()
	if r.Iterations() != 0 || r.Cycles() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestCostModelMemoizes(t *testing.T) {
	tmpl := &Template{
		Name:    "ld1",
		NumRegs: 2,
		Instrs: []Instr{
			{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: 0},
			{Class: FPAdd, Src1: 0, Src2: 1, Dst: 1, MemSlot: -1},
		},
	}
	m := NewCostModel(core620like(1), tmpl)
	c1 := m.CyclesPerIter([]int64{2})
	c2 := m.CyclesPerIter([]int64{2})
	if c1 != c2 {
		t.Error("memoized result differs")
	}
	if m.Entries() != 1 {
		t.Errorf("Entries = %d, want 1", m.Entries())
	}
	cMiss := m.CyclesPerIter([]int64{40})
	if cMiss <= c1 {
		t.Errorf("miss cost %g not above hit cost %g", cMiss, c1)
	}
	if m.Entries() != 2 {
		t.Errorf("Entries = %d, want 2", m.Entries())
	}
}

func TestCostModelMatchesRunner(t *testing.T) {
	tmpl := &Template{
		Name:    "chain",
		NumRegs: 2,
		Instrs:  []Instr{{Class: FPAdd, Src1: 0, Src2: 1, Dst: 0, MemSlot: -1}},
	}
	m := NewCostModel(core620like(1), tmpl)
	per := m.CyclesPerIter(nil)
	if per < 2.9 || per > 3.1 {
		t.Errorf("steady cost = %g, want ~3", per)
	}
}

func TestQuantize(t *testing.T) {
	tmpl := &Template{
		Name:    "q",
		NumRegs: 1,
		Instrs:  []Instr{{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: 0}},
	}
	m := NewCostModel(core620like(1), tmpl)
	if got := m.Quantize(1); got != 2 {
		t.Errorf("Quantize(1) = %d, want hit latency 2", got)
	}
	if got := m.Quantize(2); got != 2 {
		t.Errorf("Quantize(2) = %d, want 2", got)
	}
	if got := m.Quantize(3); got != 4 {
		t.Errorf("Quantize(3) = %d, want 4", got)
	}
	if got := m.Quantize(41); got != 44 {
		t.Errorf("Quantize(41) = %d, want 44", got)
	}
}

func TestCostModelTooManySlotsPanics(t *testing.T) {
	instrs := make([]Instr, 5)
	for i := range instrs {
		instrs[i] = Instr{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: i}
	}
	tmpl := &Template{Name: "wide", NumRegs: 1, Instrs: instrs}
	defer func() {
		if recover() == nil {
			t.Error("5-slot template did not panic")
		}
	}()
	NewCostModel(core620like(1), tmpl)
}

func TestStringers(t *testing.T) {
	if IntDiv.String() != "IntDiv" || FPDiv.String() != "FPDiv" {
		t.Error("Class.String wrong for divides")
	}
	if Class(200).String() == "" {
		t.Error("unknown class String empty")
	}
	if UnitFPU.String() != "FPU" || Unit(99).String() == "" {
		t.Error("Unit.String wrong")
	}
}

func TestNewRunnerPanicsOnBadInput(t *testing.T) {
	good := &Template{Name: "t", NumRegs: 1,
		Instrs: []Instr{{Class: IntALU, Src1: -1, Src2: -1, Dst: 0, MemSlot: -1}}}
	bad := &Template{Name: "b", NumRegs: 0,
		Instrs: []Instr{{Class: IntALU, Src1: 5, Src2: -1, Dst: 0, MemSlot: -1}}}
	cfg := core620like(1)
	broken := core620like(1)
	broken.IssueWidth = 0
	cases := []func(){
		func() { NewRunner(broken, good) },
		func() { NewRunner(cfg, bad) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// The memo must distinguish tuples, clamp huge latencies, and handle
// one-, three- and four-slot templates through the map path.
func TestCostModelWideTuples(t *testing.T) {
	instrs := make([]Instr, 3)
	for i := range instrs {
		instrs[i] = Instr{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: i}
	}
	tmpl := &Template{Name: "ld3", NumRegs: 1, Instrs: instrs}
	m := NewCostModel(core620like(2), tmpl)
	a := m.CyclesPerIter([]int64{2, 2, 2})
	bb := m.CyclesPerIter([]int64{40, 40, 40})
	if bb <= a {
		t.Errorf("miss tuple %g not above hit tuple %g", bb, a)
	}
	// Repeated lookups hit the lastKey fast path.
	if got := m.CyclesPerIter([]int64{40, 40, 40}); got != bb {
		t.Error("fast path changed the answer")
	}
	// Huge latencies clamp in packKey without collision against zero.
	big := m.CyclesPerIter([]int64{1 << 40, 2, 2})
	if big <= a {
		t.Error("clamped huge latency lost")
	}
	if m.Entries() != 3 {
		t.Errorf("Entries = %d, want 3", m.Entries())
	}
	// Negative latencies clamp to zero rather than corrupting the key.
	_ = m.CyclesPerIter([]int64{-5, 2, 2})
}

// Two-slot tuples beyond the array range fall back to the map.
func TestCostModelLargeTwoSlotTuple(t *testing.T) {
	tmpl := &Template{Name: "ld2", NumRegs: 2, Instrs: []Instr{
		{Class: Load, Src1: -1, Src2: -1, Dst: 0, MemSlot: 0},
		{Class: Load, Src1: -1, Src2: -1, Dst: 1, MemSlot: 1},
	}}
	m := NewCostModel(core620like(1), tmpl)
	small := m.CyclesPerIter([]int64{2, 2})
	huge := m.CyclesPerIter([]int64{400, 400})
	if huge <= small {
		t.Error("map-path tuple lost ordering")
	}
	if m.Entries() != 2 {
		t.Errorf("Entries = %d, want 2", m.Entries())
	}
}
