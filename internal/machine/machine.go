// Package machine defines the three test systems of the paper's Table 1 —
// the PowerMANNA node (2× PowerPC MPC620 @ 180 MHz), the SUN ULTRA-I
// (2× UltraSPARC-I @ 168 MHz) and the Myrinet-cluster PC node
// (2× Pentium II @ 180 or 266 MHz) — as node.Config values.
//
// Every constant is either taken from the paper (cited by section/table)
// or an era-typical value marked "calibrated". The calibrated values set
// absolute scale; the paper-derived ones (clock rates, cache geometries,
// line lengths, issue widths, the missing load pipelining) set the shapes
// the experiments reproduce.
package machine

import (
	"fmt"
	"strings"

	"powermanna/internal/bus"
	"powermanna/internal/cache"
	"powermanna/internal/cpu"
	"powermanna/internal/mem"
	"powermanna/internal/node"
	"powermanna/internal/sim"
)

// mpc620Core describes the MPC620: 4-issue superscalar, six execution
// units, pipelined FPU with fused multiply-add, and no load pipelining
// (MissQueue 1) — Section 2 and Section 5.1 of the paper.
func mpc620Core() cpu.Config {
	cfg := cpu.Config{
		Name:       "MPC620",
		Clock:      sim.ClockMHz(180), // Table 1
		IssueWidth: 4,                 // Section 2: "issuing four instructions simultaneously"
		MissQueue:  1,                 // Section 5.1: "does not support load pipelining"
		HasFMA:     true,              // PowerPC fused multiply-add
	}
	cfg.Units[cpu.UnitIntALU] = 2 // two simple integer units
	cfg.Units[cpu.UnitIntMul] = 1 // one complex integer unit
	cfg.Units[cpu.UnitFPU] = 1
	cfg.Units[cpu.UnitLS] = 1
	cfg.Units[cpu.UnitBranch] = 1
	cfg.Timing[cpu.IntALU] = cpu.OpTiming{Unit: cpu.UnitIntALU, Latency: 1, Pipelined: true}
	cfg.Timing[cpu.IntMul] = cpu.OpTiming{Unit: cpu.UnitIntMul, Latency: 5, Pipelined: true}   // calibrated
	cfg.Timing[cpu.IntDiv] = cpu.OpTiming{Unit: cpu.UnitIntMul, Latency: 22, Pipelined: false} // calibrated
	cfg.Timing[cpu.FPAdd] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPMul] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPMAdd] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPDiv] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 18, Pipelined: false} // calibrated
	cfg.Timing[cpu.Load] = cpu.OpTiming{Unit: cpu.UnitLS, Latency: 2, Pipelined: true}
	cfg.Timing[cpu.Store] = cpu.OpTiming{Unit: cpu.UnitLS, Latency: 1, Pipelined: true}
	cfg.Timing[cpu.Branch] = cpu.OpTiming{Unit: cpu.UnitBranch, Latency: 1, Pipelined: true}
	return cfg
}

// ultraSparcCore describes the UltraSPARC-I: 4-issue but in-order, no
// fused multiply-add, a modest non-blocking load queue, and a slow
// integer multiply (the V9 integer multiplier shares the FGU; calibrated
// to the paper's observation that the SUN trails on INT workloads).
func ultraSparcCore() cpu.Config {
	cfg := cpu.Config{
		Name:        "UltraSPARC-I",
		Clock:       sim.ClockMHz(168), // Table 1
		IssueWidth:  4,
		MissQueue:   2, // calibrated: load buffer allows limited overlap
		InOrderExec: true,
		HasFMA:      false,
	}
	cfg.Units[cpu.UnitIntALU] = 2
	cfg.Units[cpu.UnitIntMul] = 1
	cfg.Units[cpu.UnitFPU] = 2 // separate FP add and FP multiply pipes
	cfg.Units[cpu.UnitLS] = 1
	cfg.Units[cpu.UnitBranch] = 1
	cfg.Timing[cpu.IntALU] = cpu.OpTiming{Unit: cpu.UnitIntALU, Latency: 1, Pipelined: true}
	cfg.Timing[cpu.IntMul] = cpu.OpTiming{Unit: cpu.UnitIntMul, Latency: 12, Pipelined: false} // calibrated: slow MULX
	cfg.Timing[cpu.IntDiv] = cpu.OpTiming{Unit: cpu.UnitIntMul, Latency: 36, Pipelined: false} // calibrated: slow UDIVX
	cfg.Timing[cpu.FPAdd] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPMul] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPMAdd] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}  // unused: HasFMA=false
	cfg.Timing[cpu.FPDiv] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 22, Pipelined: false} // calibrated
	cfg.Timing[cpu.Load] = cpu.OpTiming{Unit: cpu.UnitLS, Latency: 2, Pipelined: true}
	cfg.Timing[cpu.Store] = cpu.OpTiming{Unit: cpu.UnitLS, Latency: 1, Pipelined: true}
	cfg.Timing[cpu.Branch] = cpu.OpTiming{Unit: cpu.UnitBranch, Latency: 1, Pipelined: true}
	return cfg
}

// pentiumIICore describes the Pentium II: 3-wide out-of-order core with a
// deep non-blocking load queue (4 fill buffers) and no fused multiply-add.
// The multiply pipe accepts an operation every other cycle; modelled as a
// pipelined 5-cycle unit, which is close enough at this altitude.
func pentiumIICore(mhz float64) cpu.Config {
	cfg := cpu.Config{
		Name:       fmt.Sprintf("PentiumII-%.0f", mhz),
		Clock:      sim.ClockMHz(mhz), // Table 1: 180 (downclocked) or 266
		IssueWidth: 3,
		MissQueue:  4, // calibrated: 4 fill buffers (non-blocking loads)
		HasFMA:     false,
	}
	cfg.Units[cpu.UnitIntALU] = 2
	cfg.Units[cpu.UnitIntMul] = 1
	cfg.Units[cpu.UnitFPU] = 1
	cfg.Units[cpu.UnitLS] = 1
	cfg.Units[cpu.UnitBranch] = 1
	cfg.Timing[cpu.IntALU] = cpu.OpTiming{Unit: cpu.UnitIntALU, Latency: 1, Pipelined: true}
	cfg.Timing[cpu.IntMul] = cpu.OpTiming{Unit: cpu.UnitIntMul, Latency: 4, Pipelined: true}
	cfg.Timing[cpu.IntDiv] = cpu.OpTiming{Unit: cpu.UnitIntMul, Latency: 30, Pipelined: false} // calibrated
	cfg.Timing[cpu.FPAdd] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.FPMul] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 5, Pipelined: true}
	cfg.Timing[cpu.FPMAdd] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 5, Pipelined: true}  // unused: HasFMA=false
	cfg.Timing[cpu.FPDiv] = cpu.OpTiming{Unit: cpu.UnitFPU, Latency: 33, Pipelined: false} // calibrated
	cfg.Timing[cpu.Load] = cpu.OpTiming{Unit: cpu.UnitLS, Latency: 3, Pipelined: true}
	cfg.Timing[cpu.Store] = cpu.OpTiming{Unit: cpu.UnitLS, Latency: 1, Pipelined: true}
	cfg.Timing[cpu.Branch] = cpu.OpTiming{Unit: cpu.UnitBranch, Latency: 1, Pipelined: true}
	return cfg
}

// PowerMANNA returns the PowerMANNA node of Table 1: two MPC620s, 32 KB
// L1s with 64-byte lines, 2 MB L2 per processor at processor clock, the
// ADSP switched fabric with the central dispatcher, and the interleaved
// 640 MB/s node memory.
func PowerMANNA() node.Config { return PowerMANNAWithCPUs(2) }

// PowerMANNAWithCPUs returns a PowerMANNA node with n processors, for the
// Section 2 scalability ablation ("the actual node design would support up
// to four processors").
func PowerMANNAWithCPUs(n int) node.Config {
	return node.Config{
		Name:          "PowerMANNA",
		CPUs:          n,
		Core:          mpc620Core(),
		L1D:           cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, HitCycles: 2},     // Table 1; assoc per MPC620 spec
		L2:            cache.Config{Name: "L2", SizeBytes: 2 << 20, LineBytes: 64, Assoc: 1, HitCycles: 8},       // Table 1: 2 MB at 180 MHz; latency calibrated
		TLB:           cache.Config{Name: "DTLB", SizeBytes: 64 * 4096, LineBytes: 4096, Assoc: 2, HitCycles: 0}, // 64-entry MPC620 DTLB
		TLBWalkCycles: 25,                                                                                        // calibrated: hardware tablewalk
		Fabric:        node.SwitchedFabric,
		Bus: bus.Config{
			Name:          "ADSP",
			Clock:         sim.ClockMHz(60), // Table 1: bus clock 60 MHz
			AddressCycles: 2,                // calibrated: snoop phase 2 bus cycles
			DataBeatBytes: 16,               // 128-bit MPC620 data bus option
			LineBytes:     64,
		},
		Mem: mem.Config{
			Banks:           4,                    // calibrated: interleave degree
			InterleaveBytes: 64,                   // one line per bank stripe
			AccessLatency:   200 * sim.Nanosecond, // calibrated DRAM row access over the 60 MHz board
			BankBusy:        180 * sim.Nanosecond, // calibrated bank cycle time
			LineTransfer:    100 * sim.Nanosecond, // 64 B / 100 ns = 640 MB/s (Section 2)
			SizeBytes:       512 << 20,            // Table 1: 512 MB installed
		},
	}
}

// SunUltra returns the SUN ULTRA-I node of Table 1: two UltraSPARC-I
// @168 MHz, 16 KB L1s and 512 KB L2s with 32-byte lines, on an 84 MHz
// 128-bit UPA interconnect (modelled as a split-transaction shared bus).
func SunUltra() node.Config {
	return node.Config{
		Name:          "SUN-Ultra1",
		CPUs:          2,
		Core:          ultraSparcCore(),
		L1D:           cache.Config{Name: "L1D", SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1, HitCycles: 2},      // Table 1; US-I L1 direct-mapped
		L2:            cache.Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 32, Assoc: 1, HitCycles: 8},      // Table 1; latency calibrated
		TLB:           cache.Config{Name: "DTLB", SizeBytes: 64 * 4096, LineBytes: 4096, Assoc: 64, HitCycles: 0}, // 64-entry fully-associative US-I TLB
		TLBWalkCycles: 45,                                                                                         // calibrated: software trap handler refill
		Fabric:        node.SharedBusFabric,
		Bus: bus.Config{
			Name:          "UPA",
			Clock:         sim.ClockMHz(84), // Table 1: bus clock 84 MHz
			AddressCycles: 2,                // calibrated
			DataBeatBytes: 16,               // 128-bit UPA datapath
			LineBytes:     32,
		},
		Mem: mem.Config{
			Banks:           2, // calibrated
			InterleaveBytes: 32,
			AccessLatency:   170 * sim.Nanosecond, // calibrated
			BankBusy:        220 * sim.Nanosecond, // calibrated
			LineTransfer:    110 * sim.Nanosecond, // 32 B / 110 ns ≈ 290 MB/s sustained (calibrated, era-typical)
			SizeBytes:       576 << 20,            // Table 1
		},
	}
}

// PentiumII returns the PC-cluster node of Table 1 at the given core
// clock: 266 MHz (native, 66 MHz bus) or 180 MHz (downclocked to match
// PowerMANNA, 60 MHz bus — Section 5: "we configured the PC board to run
// at the same clock speed as the PowerMANNA node").
func PentiumII(mhz int) node.Config {
	if mhz != 180 && mhz != 266 {
		panic(fmt.Sprintf("machine: PentiumII clock %d MHz not in Table 1 (180 or 266)", mhz))
	}
	busMHz := 60.0
	if mhz == 266 {
		busMHz = 66.0
	}
	return node.Config{
		Name:          fmt.Sprintf("PC-PII-%d", mhz),
		CPUs:          2,
		Core:          pentiumIICore(float64(mhz)),
		L1D:           cache.Config{Name: "L1D", SizeBytes: 16 << 10, LineBytes: 32, Assoc: 4, HitCycles: 3},     // Table 1
		L2:            cache.Config{Name: "L2", SizeBytes: 512 << 10, LineBytes: 32, Assoc: 4, HitCycles: 12},    // Table 1; half-speed L2, latency calibrated
		TLB:           cache.Config{Name: "DTLB", SizeBytes: 64 * 4096, LineBytes: 4096, Assoc: 4, HitCycles: 0}, // 64-entry PII DTLB
		TLBWalkCycles: 20,                                                                                        // calibrated: hardware tablewalk
		Fabric:        node.SharedBusFabric,
		Bus: bus.Config{
			Name:          "P6-bus",
			Clock:         sim.ClockMHz(busMHz), // Table 1: 60/66 MHz
			AddressCycles: 3,                    // calibrated: P6 snoop phase
			DataBeatBytes: 8,                    // 64-bit GTL+ data bus
			LineBytes:     32,
		},
		Mem: mem.Config{
			Banks:           2, // calibrated
			InterleaveBytes: 32,
			AccessLatency:   150 * sim.Nanosecond, // calibrated
			BankBusy:        200 * sim.Nanosecond, // calibrated
			LineTransfer:    130 * sim.Nanosecond, // 32 B / 130 ns ≈ 246 MB/s sustained (calibrated, era-typical EDO/SDRAM)
			SizeBytes:       128 << 20,            // Table 1
		},
	}
}

// All returns the test-system set of Table 1, in the paper's column order,
// with the PC at both clock rates as used in Figure 6.
func All() []node.Config {
	return []node.Config{SunUltra(), PowerMANNA(), PentiumII(180), PentiumII(266)}
}

// Table1 renders the configuration comparison corresponding to the
// paper's Table 1.
func Table1() string {
	cfgs := []node.Config{SunUltra(), PowerMANNA(), PentiumII(266)}
	var b strings.Builder
	row := func(label string, f func(node.Config) string) {
		fmt.Fprintf(&b, "%-18s", label)
		for _, c := range cfgs {
			fmt.Fprintf(&b, "%-18s", f(c))
		}
		b.WriteByte('\n')
	}
	row("System Type", func(c node.Config) string { return c.Name })
	row("Processor Type", func(c node.Config) string { return c.Core.Name })
	row("Processor Clock", func(c node.Config) string { return fmt.Sprintf("%.0f MHz", c.Core.Clock.MHz()) })
	row("Bus Clock", func(c node.Config) string { return fmt.Sprintf("%.0f MHz", c.Bus.Clock.MHz()) })
	row("Processors", func(c node.Config) string { return fmt.Sprintf("%d", c.CPUs) })
	row("Primary Cache", func(c node.Config) string { return fmt.Sprintf("%d Kbyte", c.L1D.SizeBytes>>10) })
	row("Secondary Cache", func(c node.Config) string { return fmt.Sprintf("%d Kbyte", c.L2.SizeBytes>>10) })
	row("Cache line", func(c node.Config) string { return fmt.Sprintf("%d byte", c.L2.LineBytes) })
	row("Node Memory", func(c node.Config) string { return fmt.Sprintf("%d Mbyte", c.Mem.SizeBytes>>20) })
	row("Fabric", func(c node.Config) string { return c.Fabric.String() })
	return b.String()
}
