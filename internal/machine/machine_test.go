package machine

import (
	"strings"
	"testing"

	"powermanna/internal/node"
)

func TestAllConfigsValidate(t *testing.T) {
	for _, cfg := range All() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	for _, n := range []int{1, 2, 3, 4, 6} {
		cfg := PowerMANNAWithCPUs(n)
		if err := cfg.Validate(); err != nil {
			t.Errorf("PowerMANNA(%d cpus): %v", n, err)
		}
		if cfg.CPUs != n {
			t.Errorf("CPUs = %d, want %d", cfg.CPUs, n)
		}
	}
}

func TestTable1Parameters(t *testing.T) {
	pm := PowerMANNA()
	if pm.Core.Clock.MHz() < 179 || pm.Core.Clock.MHz() > 181 {
		t.Errorf("PowerMANNA clock = %g", pm.Core.Clock.MHz())
	}
	if pm.L1D.SizeBytes != 32<<10 || pm.L2.SizeBytes != 2<<20 {
		t.Error("PowerMANNA cache sizes wrong")
	}
	if pm.L2.LineBytes != 64 {
		t.Error("PowerMANNA line must be 64 bytes (Table 1)")
	}
	if pm.Fabric != node.SwitchedFabric {
		t.Error("PowerMANNA must use the switched fabric")
	}
	if pm.Core.MissQueue != 1 {
		t.Error("MPC620 must have no load pipelining (MissQueue 1)")
	}
	if !pm.Core.HasFMA {
		t.Error("MPC620 must have fused multiply-add")
	}

	sun := SunUltra()
	if sun.L2.LineBytes != 32 || sun.L1D.SizeBytes != 16<<10 {
		t.Error("SUN cache geometry wrong")
	}
	if !sun.Core.InOrderExec {
		t.Error("UltraSPARC-I is in-order")
	}
	if sun.Bus.Clock.MHz() < 83 || sun.Bus.Clock.MHz() > 85 {
		t.Errorf("SUN bus clock = %g, want 84", sun.Bus.Clock.MHz())
	}

	pc180, pc266 := PentiumII(180), PentiumII(266)
	if pc180.Bus.Clock.MHz() > 61 && pc180.Bus.Clock.MHz() < 59 {
		t.Error("downclocked PC must use 60 MHz bus")
	}
	if pc266.Bus.Clock.MHz() < 65 || pc266.Bus.Clock.MHz() > 67 {
		t.Error("native PC must use 66 MHz bus")
	}
	if pc180.Core.MissQueue <= 1 {
		t.Error("Pentium II must have non-blocking loads")
	}
	if pc180.Core.HasFMA {
		t.Error("Pentium II has no fused multiply-add")
	}
}

func TestPowerMANNAMemoryBandwidth(t *testing.T) {
	// Section 2: 640 MB/s node memory.
	bw := PowerMANNA().Mem.StreamBandwidth()
	if bw < 630e6 || bw > 650e6 {
		t.Errorf("PowerMANNA memory bandwidth = %g B/s, want ~640 MB/s", bw)
	}
}

func TestPentiumIIRejectsOtherClocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PentiumII(200) did not panic")
		}
	}()
	PentiumII(200)
}

func TestTable1Rendering(t *testing.T) {
	tbl := Table1()
	for _, want := range []string{
		"PowerMANNA", "UltraSPARC-I", "PentiumII-266",
		"180 MHz", "168 MHz", "84 MHz",
		"32 Kbyte", "2048 Kbyte", "64 byte", "32 byte",
		"512 Mbyte", "switched", "shared-bus",
	} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Table1 missing %q:\n%s", want, tbl)
		}
	}
}

func TestNodesBuild(t *testing.T) {
	for _, cfg := range All() {
		n := node.New(cfg)
		// Smoke: a cold access then a warm one.
		p := n.Proc(0)
		cold := p.Access(0x100000, false)
		warm := p.Access(0x100000, false)
		if warm >= cold {
			t.Errorf("%s: warm latency %d >= cold %d", cfg.Name, warm, cold)
		}
	}
}
