package sim

// Resource is a single-server busy timeline: the building block for every
// contended hardware unit that the node-level models track analytically
// (bus address phases, data paths, memory banks, execution units).
//
// A Resource answers the question "if a request arrives at time t and needs
// the unit for d, when does it actually start?" while accumulating total
// busy time for utilization accounting. Requests must be presented in
// non-decreasing arrival order per timeline, which the node models
// guarantee by merging CPU streams by local time.
type Resource struct {
	free Time // earliest time the next request can start
	busy Time // accumulated busy time
	uses int64
}

// Acquire reserves the resource for dur starting no earlier than at,
// returning the actual start time. The wait (start − at) is the queuing
// delay caused by contention.
//
//pmlint:hotpath
func (r *Resource) Acquire(at, dur Time) (start Time) {
	start = Max(at, r.free)
	r.free = start + dur
	r.busy += dur
	r.uses++
	return start
}

// AcquireWait is Acquire returning the queuing delay instead of the start.
func (r *Resource) AcquireWait(at, dur Time) (wait Time) {
	return r.Acquire(at, dur) - at
}

// FreeAt reports when the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.free }

// Busy reports total accumulated busy time.
func (r *Resource) Busy() Time { return r.busy }

// Uses reports how many acquisitions have been made.
func (r *Resource) Uses() int64 { return r.uses }

// Utilization reports busy time as a fraction of the elapsed window.
// A window of zero yields zero.
func (r *Resource) Utilization(window Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(r.busy) / float64(window)
}

// Reset clears the timeline.
func (r *Resource) Reset() { *r = Resource{} }

// Pipelined is a resource with distinct occupancy (initiation interval) and
// latency: a new request may start every Interval, but its result is only
// available Latency after start. It models pipelined memory banks and
// pipelined execution units.
type Pipelined struct {
	Interval Time
	Latency  Time
	res      Resource
}

// Acquire reserves an initiation slot at or after at and returns the time
// the result is available.
func (p *Pipelined) Acquire(at Time) (done Time) {
	start := p.res.Acquire(at, p.Interval)
	return start + p.Latency
}

// Busy reports accumulated initiation-slot time.
func (p *Pipelined) Busy() Time { return p.res.Busy() }

// Uses reports how many acquisitions have been made.
func (p *Pipelined) Uses() int64 { return p.res.Uses() }

// Reset clears the timeline, keeping the configuration.
func (p *Pipelined) Reset() { p.res.Reset() }
