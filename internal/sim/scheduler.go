package sim

import "fmt"

// event is a scheduled callback. Events at equal times fire in scheduling
// order (seq breaks ties), which keeps every simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap over (at, seq). It replaces
// container/heap, whose interface{} Push/Pop boxed one event per schedule
// on the hot path; the ordering is total (seq breaks every at tie), so
// sift order — and therefore pop order — is identical to the old code.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends e and restores the heap invariant.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = event{} // release the callback so the GC can collect it
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// Scheduler is a discrete-event simulation loop: a time-ordered queue of
// callbacks and a current simulated time. It is the engine behind the
// communication-system models (links, crossbars, network interfaces); the
// node-level CPU/cache models use the cheaper Resource timelines instead
// and only meet the Scheduler at transaction boundaries.
type Scheduler struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nsteps uint64
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Steps reports how many events have been dispatched, a cheap progress and
// regression metric for tests.
func (s *Scheduler) Steps() uint64 { return s.nsteps }

// Pending reports the number of events still queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is a model bug and panics.
//
//pmlint:hotpath
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now)) //pmlint:allow hotpath cold panic guard for a model bug, never taken per event
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
//
//pmlint:hotpath
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step dispatches the next event, advancing time to it. It reports whether
// an event was dispatched.
//
//pmlint:hotpath
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.pop()
	s.now = e.at
	s.nsteps++
	e.fn()
	return true
}

// Run dispatches events until the queue is empty.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil dispatches all events scheduled at or before t, then advances
// time to exactly t.
func (s *Scheduler) RunUntil(t Time) {
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunWhile dispatches events until cond reports false or the queue drains.
// It reports whether the queue still has events (i.e. the condition, not
// exhaustion, stopped the run).
func (s *Scheduler) RunWhile(cond func() bool) bool {
	for cond() {
		if !s.Step() {
			return false
		}
	}
	return true
}
