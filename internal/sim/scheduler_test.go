package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("dispatch order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v after run, want 30", s.Now())
	}
	if s.Steps() != 3 {
		t.Errorf("Steps() = %d, want 3", s.Steps())
	}
}

func TestSchedulerFIFOAtEqualTimes(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of scheduling order: %v", order)
		}
	}
}

func TestSchedulerAfterAndNesting(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.At(10, func() {
		fired = append(fired, s.Now())
		s.After(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var n int
	s.At(10, func() { n++ })
	s.At(20, func() { n++ })
	s.At(30, func() { n++ })
	s.RunUntil(20)
	if n != 2 {
		t.Errorf("RunUntil(20) dispatched %d events, want 2", n)
	}
	if s.Now() != 20 {
		t.Errorf("Now() = %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	// RunUntil advances time even past the last event.
	s.RunUntil(100)
	if s.Now() != 100 || n != 3 {
		t.Errorf("after RunUntil(100): now=%v n=%d", s.Now(), n)
	}
}

func TestSchedulerRunWhile(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.At(i, func() { count++ })
	}
	alive := s.RunWhile(func() bool { return count < 4 })
	if !alive {
		t.Error("RunWhile reported queue exhausted")
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	// Draining the rest.
	if s.RunWhile(func() bool { return true }) {
		t.Error("RunWhile should report exhaustion")
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

// Property: any batch of events dispatches in nondecreasing time order.
func TestSchedulerMonotoneProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := NewScheduler()
		var seen []Time
		for _, raw := range times {
			at := Time(raw)
			s.At(at, func() { seen = append(seen, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceQueuing(t *testing.T) {
	var r Resource
	// Back-to-back acquisitions queue up.
	if start := r.Acquire(0, 10); start != 0 {
		t.Errorf("first start = %v, want 0", start)
	}
	if start := r.Acquire(0, 10); start != 10 {
		t.Errorf("second start = %v, want 10", start)
	}
	// A later arrival with idle gap starts immediately.
	if start := r.Acquire(100, 10); start != 100 {
		t.Errorf("idle-gap start = %v, want 100", start)
	}
	if r.Busy() != 30 {
		t.Errorf("Busy() = %v, want 30", r.Busy())
	}
	if r.Uses() != 3 {
		t.Errorf("Uses() = %d, want 3", r.Uses())
	}
	if got := r.Utilization(110); got < 0.272 || got > 0.273 {
		t.Errorf("Utilization = %g, want ~0.2727", got)
	}
	if w := r.AcquireWait(100, 5); w != 10 {
		t.Errorf("AcquireWait = %v, want 10 (resource busy until 110)", w)
	}
	r.Reset()
	if r.Busy() != 0 || r.FreeAt() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestPipelinedOverlap(t *testing.T) {
	p := Pipelined{Interval: 2, Latency: 20}
	// Three requests at t=0 complete at 20, 22, 24: initiation staggers by
	// the interval, latency overlaps.
	d1 := p.Acquire(0)
	d2 := p.Acquire(0)
	d3 := p.Acquire(0)
	if d1 != 20 || d2 != 22 || d3 != 24 {
		t.Errorf("pipelined completions = %v %v %v, want 20 22 24", d1, d2, d3)
	}
	if p.Uses() != 3 {
		t.Errorf("Uses = %d", p.Uses())
	}
	p.Reset()
	if got := p.Acquire(100); got != 120 {
		t.Errorf("after reset Acquire(100) = %v, want 120", got)
	}
}

// Property: resource never starts a request before its arrival, and
// utilization never exceeds 1 when requests arrive in order.
func TestResourceProperty(t *testing.T) {
	f := func(durs []uint8) bool {
		var r Resource
		at := Time(0)
		for _, d := range durs {
			start := r.Acquire(at, Time(d))
			if start < at {
				return false
			}
			at = start // arrivals non-decreasing
		}
		window := r.FreeAt()
		return window == 0 || r.Utilization(window) <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
