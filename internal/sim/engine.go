package sim

// Engine is the event-queue surface a simulation model schedules
// against: the sequential Scheduler below and the sharded parallel
// engine in internal/psim both satisfy it. Models written against
// Engine instead of *Scheduler run unchanged on either — the contract
// every implementation must honor is the (time, seq) total order:
// events fire in ascending time, and events at equal times fire in
// scheduling order. That order is what makes every simulation in this
// repository a pure function of its configuration, so an Engine
// implementation that reorders equal-time events is broken even if no
// test catches it directly.
type Engine interface {
	// Now reports the current simulated time.
	Now() Time
	// Steps reports how many events have been dispatched.
	Steps() uint64
	// Pending reports the number of events still queued.
	Pending() int
	// At schedules fn at absolute simulated time t; scheduling in the
	// past is a model bug and panics.
	At(t Time, fn func())
	// After schedules fn to run d after the current time.
	After(d Time, fn func())
	// Step dispatches the next event, advancing time to it, and reports
	// whether an event was dispatched.
	Step() bool
	// Run dispatches events until the queue is empty.
	Run()
	// RunUntil dispatches all events at or before t, then advances time
	// to exactly t.
	RunUntil(t Time)
	// RunWhile dispatches events until cond reports false or the queue
	// drains, reporting whether events remain.
	RunWhile(cond func() bool) bool
}

// The sequential scheduler is the reference Engine implementation.
var _ Engine = (*Scheduler)(nil)
