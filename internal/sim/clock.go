package sim

import "fmt"

// Clock describes a clock domain by its period. The PowerMANNA node has two
// primary domains — the 180 MHz processor clock and the 60 MHz board/link
// clock — and the comparison machines add their own (SUN: 168/84 MHz,
// Pentium II: 180 or 266 / 60 or 66 MHz).
type Clock struct {
	// Period is the duration of one cycle in picoseconds.
	Period Time
}

// ClockMHz builds a clock domain from a frequency in MHz.
// It panics for non-positive frequencies: a zero clock is always a
// configuration bug, never a usable model.
func ClockMHz(mhz float64) Clock {
	if mhz <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock frequency %g MHz", mhz))
	}
	return Clock{Period: Time(1e6/mhz + 0.5)}
}

// MHz reports the clock frequency in MHz.
func (c Clock) MHz() float64 { return 1e6 / float64(c.Period) }

// Cycles converts a cycle count to simulated time.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// CyclesF converts a fractional cycle count to simulated time, rounding up
// to a whole picosecond.
func (c Clock) CyclesF(n float64) Time { return Time(n*float64(c.Period) + 0.9999) }

// ToCycles converts a duration to a whole number of cycles, rounding up —
// the convention for synchronous hardware, where an operation occupying any
// part of a cycle occupies all of it.
func (c Clock) ToCycles(t Time) int64 {
	if t <= 0 {
		return 0
	}
	return int64((t + c.Period - 1) / c.Period)
}

// Align rounds t up to the next cycle boundary of this clock.
func (c Clock) Align(t Time) Time { return c.Cycles(c.ToCycles(t)) }

// String renders the clock's frequency.
func (c Clock) String() string { return fmt.Sprintf("%.4gMHz", c.MHz()) }
