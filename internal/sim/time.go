// Package sim provides the discrete-event simulation kernel used by every
// timing model in the PowerMANNA reproduction: simulated time, clock
// domains, an event scheduler, and busy-timeline resources.
//
// Simulated time is an integer picosecond count. Picoseconds are fine
// enough to express every clock domain in the paper exactly enough for
// shape reproduction (a 180 MHz CPU cycle is 5555 ps, a 60 MHz bus/link
// cycle is 16666 ps) while keeping all arithmetic in int64 — a simulation
// can cover more than one hundred simulated days before overflow.
//
// All models in this repository are deterministic: no wall-clock reads, no
// map-iteration-order dependence in any timing path, and any randomness is
// seeded explicitly.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in (or duration of) simulated time, in picoseconds.
type Time int64

// Duration constants in simulated time.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos converts t to floating-point nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// FromSeconds converts floating-point seconds to simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMicros converts floating-point microseconds to simulated Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// Std converts simulated time to a time.Duration for display purposes.
// Sub-nanosecond precision is truncated.
func (t Time) Std() time.Duration { return time.Duration(t / Nanosecond) }

// String renders the time with an adaptive unit, e.g. "2.75us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanos())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// MaxTime is the largest representable simulated time — "never" for
// horizon comparisons; the parallel engine uses it as the unbounded
// window end.
const MaxTime = Time(1<<63 - 1)

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
