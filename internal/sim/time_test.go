package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in   Time
		secs float64
	}{
		{0, 0},
		{Second, 1},
		{Millisecond, 1e-3},
		{Microsecond, 1e-6},
		{Nanosecond, 1e-9},
		{Picosecond, 1e-12},
		{2750 * Nanosecond, 2.75e-6},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.secs {
			t.Errorf("(%d).Seconds() = %g, want %g", int64(c.in), got, c.secs)
		}
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := FromMicros(2.75); got != 2750*Nanosecond {
		t.Errorf("FromMicros(2.75) = %v, want 2.75us", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{5 * Nanosecond, "5ns"},
		{2750 * Nanosecond, "2.75us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-5 * Nanosecond, "-5ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
}

func TestClockMHz(t *testing.T) {
	c := ClockMHz(180)
	if c.Period != 5556 {
		t.Errorf("180MHz period = %d ps, want 5556", c.Period)
	}
	c60 := ClockMHz(60)
	if c60.Period != 16667 {
		t.Errorf("60MHz period = %d ps, want 16667", c60.Period)
	}
	if got := c60.Cycles(3); got != 3*16667 {
		t.Errorf("Cycles(3) = %d", got)
	}
	// Round-trip frequency within 0.01%.
	if mhz := c.MHz(); mhz < 179.98 || mhz > 180.02 {
		t.Errorf("MHz round trip = %g", mhz)
	}
}

func TestClockToCyclesRoundsUp(t *testing.T) {
	c := ClockMHz(100) // 10000 ps period
	cases := []struct {
		t    Time
		want int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {9999, 1}, {10000, 1}, {10001, 2}, {30000, 3},
	}
	for _, cse := range cases {
		if got := c.ToCycles(cse.t); got != cse.want {
			t.Errorf("ToCycles(%d) = %d, want %d", cse.t, got, cse.want)
		}
	}
}

func TestClockAlign(t *testing.T) {
	c := ClockMHz(100)
	if got := c.Align(10001); got != 20000 {
		t.Errorf("Align(10001) = %d, want 20000", got)
	}
	if got := c.Align(20000); got != 20000 {
		t.Errorf("Align(20000) = %d, want 20000", got)
	}
}

func TestClockPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ClockMHz(0) did not panic")
		}
	}()
	ClockMHz(0)
}

// Property: ToCycles never undercounts — the cycles always cover the time.
func TestClockToCyclesCoversProperty(t *testing.T) {
	c := ClockMHz(60)
	f := func(raw int32) bool {
		t := Time(raw)
		if t < 0 {
			t = -t
		}
		n := c.ToCycles(t)
		return c.Cycles(n) >= t && (n == 0 || c.Cycles(n-1) < t)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
