// Sequential-equivalence harness: the parallel engine's whole contract
// is that --engine par changes wall-clock time and nothing else. Every
// test here runs the same workload under the sequential scheduler and
// the sharded engine across several seeds and demands byte-identical
// observable output — the rendered degradation tables, the Chrome trace
// export, and the metrics dump. These are the same artifacts the CI
// goldens pin, so a regression here is a regression of the goldens.
package psim_test

import (
	"fmt"
	"strings"
	"testing"

	"powermanna/internal/earth"
	"powermanna/internal/fault"
	"powermanna/internal/heat"
	"powermanna/internal/metrics"
	"powermanna/internal/mpl"
	"powermanna/internal/netsim"
	"powermanna/internal/psim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
	"powermanna/internal/trace"
)

// seeds are the equivalence sweep: enough variety to move fault
// placement, traffic pairing and failover timing between runs.
var seeds = []int64{1, 2, 3}

// campaignArtifacts runs one synthetic campaign and returns everything
// a user can observe: the rendered table, the trace export and the
// metrics dump.
func campaignArtifacts(t *testing.T, name string, seed int64, engine psim.Kind) (table, chrome, mets string) {
	t.Helper()
	c, ok := fault.CampaignByName(name)
	if !ok {
		t.Fatalf("no campaign %q", name)
	}
	rec := trace.NewRecorder()
	reg := metrics.NewRegistry()
	res, err := fault.Run(c, fault.Options{Seed: seed, Engine: engine, Trace: rec, Metrics: reg})
	if err != nil {
		t.Fatalf("%s seed %d engine %v: %v", name, seed, engine, err)
	}
	var b strings.Builder
	if err := trace.WriteChrome(&b, rec); err != nil {
		t.Fatal(err)
	}
	return res.Render(), b.String(), reg.Render()
}

// appArtifacts is campaignArtifacts for application campaigns (real
// workloads over the MPL or the EARTH runtime).
func appArtifacts(t *testing.T, name string, seed int64, engine psim.Kind) (table, chrome, mets string) {
	t.Helper()
	c, ok := fault.AppCampaignByName(name)
	if !ok {
		t.Fatalf("no app campaign %q", name)
	}
	rec := trace.NewRecorder()
	reg := metrics.NewRegistry()
	res, err := fault.RunApp(c, fault.Options{Seed: seed, Engine: engine, Trace: rec, Metrics: reg})
	if err != nil {
		t.Fatalf("%s seed %d engine %v: %v", name, seed, engine, err)
	}
	var b strings.Builder
	if err := trace.WriteChrome(&b, rec); err != nil {
		t.Fatal(err)
	}
	return res.Render(), b.String(), reg.Render()
}

// requireIdentical compares one artifact across engines.
func requireIdentical(t *testing.T, what string, seq, par string) {
	t.Helper()
	if seq == par {
		return
	}
	line := 1
	for i := 0; i < len(seq) && i < len(par); i++ {
		if seq[i] != par[i] {
			t.Fatalf("%s diverges at byte %d (line %d): seq %q vs par %q",
				what, i, line, excerpt(seq, i), excerpt(par, i))
		}
		if seq[i] == '\n' {
			line++
		}
	}
	t.Fatalf("%s diverges in length: seq %d bytes, par %d bytes", what, len(seq), len(par))
}

func excerpt(s string, at int) string {
	end := at + 40
	if end > len(s) {
		end = len(s)
	}
	return s[at:end]
}

// TestLinkCutEquivalence sweeps the synthetic link-cut campaign: every
// observable artifact must be byte-identical across engines and seeds.
func TestLinkCutEquivalence(t *testing.T) {
	for _, seed := range seeds {
		st, sc, sm := campaignArtifacts(t, "link-cut", seed, psim.Seq)
		pt, pc, pm := campaignArtifacts(t, "link-cut", seed, psim.Par)
		requireIdentical(t, "link-cut table", st, pt)
		requireIdentical(t, "link-cut trace", sc, pc)
		requireIdentical(t, "link-cut metrics", sm, pm)
	}
}

// TestHeatLinkCutEquivalence sweeps the heat-diffusion app campaign —
// a real MPL workload with failover traffic contending against the OS
// stream, including the receive-wait histogram in the metrics dump.
func TestHeatLinkCutEquivalence(t *testing.T) {
	for _, seed := range seeds {
		st, sc, sm := appArtifacts(t, "heat-linkcut", seed, psim.Seq)
		pt, pc, pm := appArtifacts(t, "heat-linkcut", seed, psim.Par)
		requireIdentical(t, "heat-linkcut table", st, pt)
		requireIdentical(t, "heat-linkcut trace", sc, pc)
		requireIdentical(t, "heat-linkcut metrics", sm, pm)
		if !strings.Contains(sm, "mpl.recv.wait") {
			t.Fatalf("metrics dump misses the receive-wait view:\n%s", sm)
		}
	}
}

// TestFibLinkCutEquivalence sweeps the EARTH app campaign: the runtime
// runs with a psim shard as its event queue, exercising reentrant
// Shard.Run inside an executing event.
func TestFibLinkCutEquivalence(t *testing.T) {
	for _, seed := range seeds {
		st, _, sm := appArtifacts(t, "fib-linkcut", seed, psim.Seq)
		pt, _, pm := appArtifacts(t, "fib-linkcut", seed, psim.Par)
		requireIdentical(t, "fib-linkcut table", st, pt)
		requireIdentical(t, "fib-linkcut metrics", sm, pm)
	}
}

// TestPingPongDiffEquivalence pins the pmtrace diff path: the timeline
// divergence between two seeds must itself be engine-independent —
// diffing seq-recorded runs and par-recorded runs of the link-cut
// campaign yields the same report.
func TestPingPongDiffEquivalence(t *testing.T) {
	record := func(seed int64, engine psim.Kind) *trace.Recorder {
		c, _ := fault.CampaignByName("link-cut")
		rec := trace.NewRecorder()
		if _, err := fault.Run(c, fault.Options{Seed: seed, Engine: engine, Trace: rec}); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	render := func(engine psim.Kind) string {
		var b strings.Builder
		if err := trace.WriteDiff(&b, record(1, engine), record(2, engine)); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	requireIdentical(t, "link-cut diff report", render(psim.Seq), render(psim.Par))
}

// TestEarthOnShardMatchesScheduler runs the EARTH fib benchmark
// directly on a single-shard engine against the stock scheduler: same
// answer, same makespan, byte-identical timeline.
func TestEarthOnShardMatchesScheduler(t *testing.T) {
	run := func(eng sim.Engine) (int64, sim.Time, string) {
		tp := topo.Cluster8()
		var s *earth.System
		if eng != nil {
			s = earth.NewWithEngine(tp, earth.DefaultParams(), netsim.DefaultFailover(), eng)
		} else {
			s = earth.NewWithFailover(tp, earth.DefaultParams(), netsim.DefaultFailover())
		}
		rec := trace.NewRecorder()
		s.SetRecorder(rec)
		got, makespan, err := earth.RunFib(s, 10)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := trace.WriteChrome(&b, rec); err != nil {
			t.Fatal(err)
		}
		return got, makespan, b.String()
	}
	sg, sm, st := run(nil)
	pg, pm, pt := run(psim.NewEngine(1, 0).Shard(0))
	if sg != pg || sm != pm {
		t.Fatalf("fib on shard: got %d in %v, scheduler got %d in %v", pg, pm, sg, sm)
	}
	requireIdentical(t, "fib timeline", st, pt)
}

// partArtifacts runs one partitioned SPMD workload over a PWorld with
// the given shard count and returns everything observable: a summary
// line (makespan, message and byte counts) and the metrics dump. The
// seed parameterizes the workload shape — payload sizes and round
// counts — so the sweep moves contention and failover timing around.
func partArtifacts(t *testing.T, shards int, seed int64, body func(w *mpl.PWorld, seed int64) error) (summary, mets string) {
	t.Helper()
	w, err := mpl.NewPWorld(topo.System256(), shards)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	reg := metrics.NewRegistry()
	w.SetMetrics(reg)
	if err := body(w, seed); err != nil {
		t.Fatalf("shards=%d seed=%d: %v", shards, seed, err)
	}
	msgs, bytes := w.Stats()
	return fmt.Sprintf("makespan=%v msgs=%d bytes=%d", w.MaxTime(), msgs, bytes), reg.Render()
}

// TestPartitionedWorkloadEquivalence is the single-workload face of the
// equivalence contract: one application, partitioned across psim shards
// through the cross-shard mailboxes, must produce byte-identical
// summaries and metrics dumps at every aligned shard count. This is the
// property the ci.sh --engine par --shards 4 golden gate rests on,
// swept here across three workload shapes and three seeds.
func TestPartitionedWorkloadEquivalence(t *testing.T) {
	pingpong := func(w *mpl.PWorld, seed int64) error {
		// Pair rank r with r+p/2 so every exchange crosses the central
		// stage — and every shard boundary at any aligned shard count.
		return w.Run(func(r *mpl.PRank) error {
			p := r.Ranks()
			peer := (r.Rank() + p/2) % p
			payload := make([]byte, 32*seed+int64(r.Rank()%7)*16)
			for round := 0; round < 4+int(seed); round++ {
				if r.Rank() < p/2 {
					if err := r.Send(peer, round, payload); err != nil {
						return err
					}
					if _, err := r.Recv(peer, round); err != nil {
						return err
					}
				} else {
					if _, err := r.Recv(peer, round); err != nil {
						return err
					}
					if err := r.Send(peer, round, payload); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	heatBody := func(w *mpl.PWorld, seed int64) error {
		cfg := heat.DefaultConfig((6+2*int(seed))*w.Ranks(), 8)
		cfg.ReduceEvery = 4
		_, err := heat.RunPart(w, cfg)
		return err
	}
	allreduce := func(w *mpl.PWorld, seed int64) error {
		p := w.Ranks()
		wantA := float64(p) * float64(p+1) / 2
		return w.Run(func(r *mpl.PRank) error {
			for round := 0; round < 3+int(seed); round++ {
				got, err := r.AllReduce([]float64{float64(r.Rank() + 1)}, round)
				if err != nil {
					return err
				}
				if len(got) != 1 || got[0] != wantA {
					return fmt.Errorf("round %d sum = %v, want %v", round, got, wantA)
				}
			}
			return nil
		})
	}
	workloads := []struct {
		name string
		body func(w *mpl.PWorld, seed int64) error
	}{
		{"pingpong", pingpong},
		{"heat", heatBody},
		{"allreduce", allreduce},
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			for _, seed := range seeds {
				refSummary, refMets := partArtifacts(t, 1, seed, wl.body)
				for _, shards := range []int{2, 4, 8} {
					summary, mets := partArtifacts(t, shards, seed, wl.body)
					requireIdentical(t, fmt.Sprintf("%s seed %d shards %d summary", wl.name, seed, shards), refSummary, summary)
					requireIdentical(t, fmt.Sprintf("%s seed %d shards %d metrics", wl.name, seed, shards), refMets, mets)
				}
			}
		})
	}
}
