// Engine benchmarks: the same System256 campaigns under the sequential
// scheduler and the sharded engine. Run with -cpu 1,2,4,8 to see the
// parallel sweep scale — each degradation row is one shard, so the
// ceiling is the row count.
package psim_test

import (
	"testing"

	"powermanna/internal/fault"
	"powermanna/internal/psim"
	"powermanna/internal/topo"
)

// benchCampaign runs the link-cut sweep on the 256-processor system —
// the configuration the acceptance speedup is measured on.
func benchCampaign(b *testing.B, engine psim.Kind) {
	b.Helper()
	c, ok := fault.CampaignByName("link-cut")
	if !ok {
		b.Fatal("no link-cut campaign")
	}
	opt := fault.Options{Seed: 1, Topology: topo.System256(), Engine: engine}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.Run(c, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSendSystem256(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchCampaign(b, psim.Seq) })
	b.Run("par", func(b *testing.B) { benchCampaign(b, psim.Par) })
}

// benchAppCampaign runs the heat-diffusion app campaign on the default
// cluster: a real MPL workload per row, so the rows are heavier and the
// sweep amortises the barrier better.
func benchAppCampaign(b *testing.B, engine psim.Kind) {
	b.Helper()
	c, ok := fault.AppCampaignByName("heat-linkcut")
	if !ok {
		b.Fatal("no heat-linkcut campaign")
	}
	opt := fault.Options{Seed: 1, Engine: engine}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fault.RunApp(c, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeatCampaign(b *testing.B) {
	b.Run("seq", func(b *testing.B) { benchAppCampaign(b, psim.Seq) })
	b.Run("par", func(b *testing.B) { benchAppCampaign(b, psim.Par) })
}
