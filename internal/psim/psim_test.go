package psim

import (
	"fmt"
	"testing"

	"powermanna/internal/sim"
)

// TestShardMatchesSchedulerOrder drives the same event program — ties,
// reentrant scheduling, After chains — through a sim.Scheduler and a
// single psim shard and requires identical dispatch order.
func TestShardMatchesSchedulerOrder(t *testing.T) {
	program := func(e sim.Engine) []string {
		var log []string
		emit := func(tag string) func() {
			return func() { log = append(log, fmt.Sprintf("%s@%v", tag, e.Now())) }
		}
		e.At(30*sim.Nanosecond, emit("c"))
		e.At(10*sim.Nanosecond, emit("a"))
		e.At(10*sim.Nanosecond, func() {
			log = append(log, fmt.Sprintf("b@%v", e.Now()))
			e.After(5*sim.Nanosecond, emit("b2"))
			e.At(e.Now(), emit("b-tie")) // same-time reschedule runs after queued ties
		})
		e.At(30*sim.Nanosecond, emit("c2"))
		e.Run()
		return log
	}

	want := program(sim.NewScheduler())
	got := program(NewEngine(1, 0).Shard(0))
	if len(want) == 0 {
		t.Fatal("reference program dispatched nothing")
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("shard order %v, scheduler order %v", got, want)
	}
}

// ringLog runs a token-passing ring — each node a shard, each hop a
// cross-shard post at hopLat — and returns the per-node logs merged in
// (time, node) order. The same model on one shard (everything local)
// is the sequential reference.
func ringLog(shards, nodes, laps int, hopLat, lookahead sim.Time) []string {
	eng := NewEngine(shards, lookahead)
	logs := make([][]string, nodes)
	var hop func(node, count int) func()
	hop = func(node, count int) func() {
		return func() {
			sh := eng.Shard(node % shards)
			logs[node] = append(logs[node], fmt.Sprintf("n%d#%d@%v", node, count, sh.Now()))
			if count+1 >= laps*nodes {
				return
			}
			next := (node + 1) % nodes
			at := sh.Now() + hopLat
			if next%shards == node%shards {
				sh.At(at, hop(next, count+1))
			} else {
				eng.Post(node%shards, next%shards, at, hop(next, count+1))
			}
		}
	}
	eng.Shard(0).At(0, hop(0, 0))
	eng.Run()
	var merged []string
	for i := 0; i < laps*nodes; i++ {
		// One log entry lands per step in global time order; the ring has
		// one token, so concatenating per-hop is already time-ordered.
		merged = append(merged, logs[i%nodes][i/nodes])
	}
	return merged
}

// TestRingCrossShardEquivalence checks the conservative rounds end to
// end: a 6-node ring on 1, 2, 3 and 6 shards produces the identical
// event log, with the hop latency exactly at the lookahead floor.
func TestRingCrossShardEquivalence(t *testing.T) {
	const nodes, laps = 6, 5
	hop := DefaultLookahead()
	want := ringLog(1, nodes, laps, hop, 0)
	if len(want) != nodes*laps {
		t.Fatalf("reference ring dispatched %d hops, want %d", len(want), nodes*laps)
	}
	for _, shards := range []int{2, 3, 6} {
		got := ringLog(shards, nodes, laps, hop, hop)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%d shards: log %v, want %v", shards, got, want)
		}
	}
}

// TestMailboxMergeTieBreak posts same-time events from several source
// shards and checks they dispatch in (time, source shard, post order).
func TestMailboxMergeTieBreak(t *testing.T) {
	eng := NewEngine(4, sim.Microsecond)
	var got []string
	at := 2 * sim.Microsecond // beyond the first window [0, 1us)
	for src := 1; src < 4; src++ {
		src := src
		eng.Shard(src).At(0, func() {
			for k := 0; k < 2; k++ {
				tag := fmt.Sprintf("s%d.%d", src, k)
				eng.Post(src, 0, at, func() { got = append(got, tag) })
			}
		})
	}
	eng.Run()
	want := "[s1.0 s1.1 s2.0 s2.1 s3.0 s3.1]"
	if fmt.Sprint(got) != want {
		t.Fatalf("merge order %v, want %v", got, want)
	}
}

// TestPostInsideWindowPanics pins the conservative guard: posting below
// the current window end is a lookahead violation and must panic, not
// silently corrupt the order.
func TestPostInsideWindowPanics(t *testing.T) {
	eng := NewEngine(2, sim.Microsecond)
	eng.Shard(0).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("post inside the window did not panic")
			}
		}()
		eng.Post(0, 1, 500*sim.Nanosecond, func() {})
	})
	eng.Run()
}

// TestShardAtPastPanics mirrors the sequential scheduler's guard.
func TestShardAtPastPanics(t *testing.T) {
	sh := NewEngine(1, 0).Shard(0)
	sh.At(10*sim.Nanosecond, func() {})
	sh.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	sh.At(5*sim.Nanosecond, func() {})
}

// TestEngineStepsAndAccessors covers the bookkeeping surface.
func TestEngineStepsAndAccessors(t *testing.T) {
	eng := NewEngine(3, 0)
	if eng.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", eng.Shards())
	}
	for i := 0; i < 3; i++ {
		sh := eng.Shard(i)
		if sh.ID() != i {
			t.Fatalf("shard %d reports ID %d", i, sh.ID())
		}
		sh.At(sim.Time(i+1)*sim.Nanosecond, func() {})
	}
	if eng.Shard(0).Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", eng.Shard(0).Pending())
	}
	eng.Run()
	if eng.Steps() != 3 {
		t.Fatalf("Steps() = %d, want 3", eng.Steps())
	}
}

// TestRunUntilRunWhile covers the remaining sim.Engine methods on a
// shard against the scheduler's documented semantics.
func TestRunUntilRunWhile(t *testing.T) {
	sh := NewEngine(1, 0).Shard(0)
	var fired int
	for i := 1; i <= 4; i++ {
		sh.At(sim.Time(i)*sim.Microsecond, func() { fired++ })
	}
	sh.RunUntil(2 * sim.Microsecond)
	if fired != 2 || sh.Now() != 2*sim.Microsecond {
		t.Fatalf("after RunUntil: fired %d at %v, want 2 at 2us", fired, sh.Now())
	}
	if more := sh.RunWhile(func() bool { return fired < 3 }); !more {
		t.Fatal("RunWhile drained the queue; one event should remain")
	}
	if more := sh.RunWhile(func() bool { return true }); more {
		t.Fatal("RunWhile reported events remaining on an empty queue")
	}
	if fired != 4 {
		t.Fatalf("fired %d, want 4", fired)
	}
}

// TestParseKind pins the flag surface.
func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		ok   bool
	}{{"seq", Seq, true}, {"", Seq, true}, {"par", Par, true}, {"bogus", Seq, false}} {
		got, err := ParseKind(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if Seq.String() != "seq" || Par.String() != "par" {
		t.Errorf("Kind strings = %q/%q", Seq.String(), Par.String())
	}
}
