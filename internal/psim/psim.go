// Package psim is the parallel discrete-event engine: the event space
// is split into shards, each with its own heap, clock and sequence
// counter, driven by worker goroutines and synchronized through
// conservative lookahead windows (null-message-free barrier rounds).
// Cross-shard events travel through per-pair mailboxes and are merged
// at each barrier with a deterministic (time, source shard, post
// order) tie-break, so a sharded run dispatches exactly the events a
// sequential run would — trace, metrics and stdout stay byte-identical
// to internal/sim's single queue. CI pins that equivalence by running
// the pmfault/pmtrace goldens through both engines.
//
// The conservative contract: during a barrier round every shard may
// freely execute events before the round's window end, because no
// other shard can inject an event below it — the lookahead is the
// minimum latency of any cross-shard interaction. For the simulated
// interconnect that floor comes from the hardware constants: a message
// crossing a shard boundary pays at least one crossbar route setup
// plus one link byte period before it can touch another shard's state
// (DefaultLookahead). Partitions that exchange no events at all — the
// fault campaigns' independent rate rows — run with an unbounded
// window (lookahead 0), which degenerates to one round with no
// barriers: the embarrassingly-parallel fast path.
//
// Each Shard implements sim.Engine, so models written against the
// sequential scheduler (EARTH, the campaign drivers) run unchanged on
// a shard. Everything a shard's events touch must be shard-local; the
// pmlint --report audit (sharedstate and friends) is the static gate
// on that, and the per-row construction in internal/fault is the
// dynamic pattern: one network, one injector, one accounting row per
// shard.
package psim

import (
	"fmt"
	"sort"
	"sync"

	"powermanna/internal/link"
	"powermanna/internal/sim"
	"powermanna/internal/xbar"
)

// Kind selects the execution engine behind a campaign or tool run:
// the --engine=seq|par flag of pmfault, pmtrace and pmbench.
type Kind int

const (
	// Seq is the sequential engine: one event queue, today's default.
	Seq Kind = iota
	// Par is the sharded parallel engine in this package.
	Par
)

// String renders the CLI spelling.
func (k Kind) String() string {
	if k == Par {
		return "par"
	}
	return "seq"
}

// ParseKind maps the --engine flag value to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "seq", "":
		return Seq, nil
	case "par":
		return Par, nil
	}
	return Seq, fmt.Errorf("psim: unknown engine %q (want seq or par)", s)
}

// DefaultLookahead is the conservative window width for node-sharded
// models: the minimum simulated latency of any cross-shard message.
// Before a message started in one window can perturb another shard it
// must at least claim a crossbar route (RouteSetup) and put its first
// byte on a wire (BytePeriod), so events inside the window are safe to
// dispatch without hearing from other shards.
func DefaultLookahead() sim.Time {
	return xbar.RouteSetup + link.BytePeriod
}

// event is a scheduled callback; same total order as internal/sim:
// (at, seq), seq breaking every time tie in scheduling order.
type event struct {
	at  sim.Time
	seq uint64
	fn  func()
}

// eventHeap is the hand-rolled binary min-heap over (at, seq), the
// same layout as internal/sim's: no interface boxing per schedule.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends e and restores the heap invariant.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q[n] = event{} // release the callback so the GC can collect it
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// Shard is one partition of the event space: a private heap, clock,
// sequence counter and step count. It implements sim.Engine, so model
// code written against the sequential scheduler runs unchanged on a
// shard. A shard's state — and everything its events touch — belongs
// to exactly one worker goroutine per barrier round; the engine is the
// only cross-shard channel.
type Shard struct {
	eng    *Engine
	id     int
	now    sim.Time
	seq    uint64
	queue  eventHeap
	nsteps uint64
}

// ID reports the shard's index within its engine.
func (s *Shard) ID() int { return s.id }

// Now reports the shard's current simulated time.
func (s *Shard) Now() sim.Time { return s.now }

// Steps reports how many events this shard has dispatched.
func (s *Shard) Steps() uint64 { return s.nsteps }

// Pending reports the number of events still queued on this shard.
func (s *Shard) Pending() int { return len(s.queue) }

// At schedules fn on this shard at absolute simulated time t.
// Scheduling in the past is a model bug and panics.
//
//pmlint:hotpath
func (s *Shard) At(t sim.Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("psim: shard %d scheduling at %v before now %v", s.id, t, s.now)) //pmlint:allow hotpath cold panic guard for a model bug, never taken per event
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the shard's current time.
//
//pmlint:hotpath
func (s *Shard) After(d sim.Time, fn func()) { s.At(s.now+d, fn) }

// Step dispatches the shard's next event, advancing its clock to it.
// It reports whether an event was dispatched.
//
//pmlint:hotpath
func (s *Shard) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.pop()
	s.now = e.at
	s.nsteps++
	e.fn()
	return true
}

// Run dispatches the shard's events until its queue is empty. Model
// code may call it reentrantly from inside an event (EARTH's runtime
// does); with cross-shard traffic it is only safe on an unbounded
// window, because it ignores the engine's window end.
func (s *Shard) Run() {
	for s.Step() {
	}
}

// RunUntil dispatches all shard events at or before t, then advances
// the shard clock to exactly t.
func (s *Shard) RunUntil(t sim.Time) {
	for len(s.queue) > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunWhile dispatches shard events until cond reports false or the
// queue drains, reporting whether events remain.
func (s *Shard) RunWhile(cond func() bool) bool {
	for cond() {
		if !s.Step() {
			return false
		}
	}
	return true
}

// runWindow is the worker loop of one barrier round: it dispatches
// every queued callback strictly below the window end. It is the
// parallel engine's event-handler root — each callback it invokes was
// scheduled through At/After or posted through a mailbox — and runs on
// at most one goroutine per shard per round.
//
//pmlint:root
func (s *Shard) runWindow(end sim.Time) {
	for len(s.queue) > 0 && s.queue[0].at < end {
		e := s.queue.pop()
		s.now = e.at
		s.nsteps++
		e.fn()
	}
}

// Shards cannot exist outside an engine, so the interface check lives
// here: every shard is a drop-in sequential scheduler.
var _ sim.Engine = (*Shard)(nil)

// post is one cross-shard event waiting in a mailbox: either a plain
// callback (fn) or a data payload bound for a destination-owned
// Handler. Mailbox order within a (src, dst) pair extends the
// (time, seq) tie-break across shards.
type post struct {
	at      sim.Time
	fn      func()
	h       Handler
	payload any
}

// Handler consumes cross-shard payloads on the destination shard: the
// data-not-closures discipline for models whose cross-shard messages
// carry state (the split-phase send continuations of internal/netsim).
// A Handler is owned by the destination shard; the payload it receives
// crossed the mailbox as plain data, so the static shard-safety audit
// (pmlint sharedstate) sees no source-shard captures travelling with
// it. OnPost runs on the destination shard's worker with the shard
// clock at the posted time.
type Handler interface {
	OnPost(s *Shard, payload any)
}

// Engine coordinates shards through conservative barrier rounds. One
// round: pick the globally earliest pending event, extend it by the
// lookahead into a window, let every shard dispatch its sub-window
// events concurrently, then merge the mailboxes deterministically and
// repeat. With lookahead 0 the window is unbounded — a single round
// with no barriers, the right mode for partitions that exchange no
// events (campaign rate rows).
type Engine struct {
	shards    []*Shard
	lookahead sim.Time
	// serial dispatches every round on the calling goroutine, shard 0
	// first — the --engine seq execution of a partitioned model. The
	// event program (window ends, mailbox merges, sequence numbers) is
	// identical to the parallel dispatch, so serial and parallel runs of
	// a shard-confined model produce byte-identical histories; serial is
	// also safe to drive from inside another engine's event (nested
	// engines), where spawning workers would not be.
	serial bool
	// horizon is the current round's window end (sim.MaxTime when the
	// window is unbounded); Post enforces the conservative contract
	// against it.
	horizon sim.Time
	// mail[src*len(shards)+dst] buffers the posts src made for dst
	// during the current round; only src's worker appends to it, so
	// rounds need no locks — the barrier is the synchronization.
	mail [][]post
}

// NewEngine builds an engine with n shards. A lookahead > 0 sets the
// conservative window width for models with cross-shard traffic
// (DefaultLookahead derives the interconnect's floor); lookahead 0
// means the shards are independent partitions and the whole run is one
// unbounded window.
func NewEngine(n int, lookahead sim.Time) *Engine {
	if n < 1 {
		panic("psim: engine needs at least one shard")
	}
	e := &Engine{
		shards:    make([]*Shard, n),
		lookahead: lookahead,
		horizon:   sim.MaxTime,
		mail:      make([][]post, n*n),
	}
	for i := range e.shards {
		e.shards[i] = &Shard{eng: e, id: i}
	}
	return e
}

// SetSerial switches the engine between parallel dispatch (one worker
// goroutine per shard per round, the default) and serial dispatch
// (every shard's window run on the calling goroutine, shard order).
// Both produce the same history; serial is the sequential execution of
// a partitioned model and the only safe mode inside another engine's
// event.
func (e *Engine) SetSerial(on bool) { e.serial = on }

// Lookahead reports the engine's conservative window width.
func (e *Engine) Lookahead() sim.Time { return e.lookahead }

// Shards reports the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns shard i.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Steps reports the total events dispatched across all shards.
func (e *Engine) Steps() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.nsteps
	}
	return n
}

// Post schedules fn on shard dst at absolute time t, from model code
// running on shard src during a round. The conservative contract: t
// must lie at or beyond the current window's end, because dst may
// already have dispatched past any earlier time — violating it is a
// lookahead bug in the model (its cross-shard latency is smaller than
// the engine's lookahead) and panics.
//
//pmlint:hotpath
func (e *Engine) Post(src, dst int, t sim.Time, fn func()) {
	if t < e.horizon {
		panic(fmt.Sprintf("psim: shard %d posting to shard %d at %v inside the window ending %v: model latency below the configured lookahead", src, dst, t, e.horizon)) //pmlint:allow hotpath cold panic guard for a lookahead violation, never taken per event
	}
	box := &e.mail[src*len(e.shards)+dst]
	*box = append(*box, post{at: t, fn: fn})
}

// PostPayload schedules payload for delivery to the destination-owned
// handler h on shard dst at absolute time t — the data-not-closures
// variant of Post for cross-shard messages that carry model state. The
// same conservative contract applies: t at or beyond the window end.
//
//pmlint:hotpath
func (e *Engine) PostPayload(src, dst int, t sim.Time, h Handler, payload any) {
	if t < e.horizon {
		panic(fmt.Sprintf("psim: shard %d posting payload to shard %d at %v inside the window ending %v: model latency below the configured lookahead", src, dst, t, e.horizon)) //pmlint:allow hotpath cold panic guard for a lookahead violation, never taken per event
	}
	box := &e.mail[src*len(e.shards)+dst]
	*box = append(*box, post{at: t, h: h, payload: payload})
}

// nextEventTime reports the earliest pending event across shards.
func (e *Engine) nextEventTime() (sim.Time, bool) {
	var min sim.Time
	found := false
	for _, s := range e.shards {
		if len(s.queue) == 0 {
			continue
		}
		if !found || s.queue[0].at < min {
			min = s.queue[0].at
		}
		found = true
	}
	return min, found
}

// Run drives barrier rounds until every heap and mailbox is empty.
// Each round dispatches shards concurrently — one worker goroutine per
// shard with work — and merges the mailboxes single-threaded at the
// barrier, so the only cross-goroutine data flow is fork at the round
// start and join at the barrier.
func (e *Engine) Run() {
	for {
		next, ok := e.nextEventTime()
		if !ok {
			return
		}
		end := sim.MaxTime
		if e.lookahead > 0 {
			end = next + e.lookahead
		}
		e.horizon = end
		e.round(end)
		e.horizon = sim.MaxTime
		e.deliver()
	}
}

// round runs one window: every shard with an event below end dispatches
// it on its own worker goroutine, and the round ends when all workers
// reach the barrier. A single-shard engine runs on the calling
// goroutine — no goroutines, so the sequential configuration of a
// parallel tool run stays literally sequential.
func (e *Engine) round(end sim.Time) {
	if len(e.shards) == 1 || e.serial {
		for _, s := range e.shards {
			s.runWindow(end)
		}
		return
	}
	var wg sync.WaitGroup
	for _, s := range e.shards {
		if len(s.queue) == 0 || s.queue[0].at >= end {
			continue
		}
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			s.runWindow(end)
		}(s)
	}
	wg.Wait()
}

// deliver merges the round's mailboxes into the destination heaps with
// the deterministic cross-shard tie-break: ascending (time, source
// shard, post order). Destination sequence numbers are assigned in
// that merged order, so the (at, seq) heap order downstream — and with
// it every simulated outcome — is a pure function of the model, never
// of goroutine timing.
func (e *Engine) deliver() {
	n := len(e.shards)
	type delivery struct {
		at  sim.Time
		src int
		fn  func()
	}
	for dst := 0; dst < n; dst++ {
		var merged []delivery
		s := e.shards[dst]
		for src := 0; src < n; src++ {
			box := &e.mail[src*n+dst]
			for _, p := range *box {
				fn := p.fn
				if fn == nil {
					h, payload := p.h, p.payload
					fn = func() { h.OnPost(s, payload) }
				}
				merged = append(merged, delivery{at: p.at, src: src, fn: fn})
			}
			*box = (*box)[:0]
		}
		if len(merged) == 0 {
			continue
		}
		// Stable sort: posts from one source stay in posting order, the
		// third key of the tie-break.
		sort.SliceStable(merged, func(i, j int) bool {
			if merged[i].at != merged[j].at {
				return merged[i].at < merged[j].at
			}
			return merged[i].src < merged[j].src
		})
		for _, p := range merged {
			s.seq++
			s.queue.push(event{at: p.at, seq: s.seq, fn: p.fn})
		}
	}
}
