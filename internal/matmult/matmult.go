// Package matmult implements the paper's MatMult benchmark (Section 5.1):
// C = A×B on N×N float64 matrices, in the two variants of Figure 7:
//
//   - Naive: both matrices in row order; the inner loop reads B by column,
//     a large stride that defeats spatial locality. The PowerMANNA node's
//     long 64-byte lines prefetch superfluous data here, and its missing
//     load pipelining serializes the misses — the paper's explanation for
//     its factor 2.5–6 drop versus the transposed variant.
//
//   - Transposed: B is first transposed (the measured runtime includes the
//     transposition) and the inner loop then runs down two rows, where the
//     long lines and large L2 of the PowerMANNA node pay off.
//
// The kernel computes the real product (checksums are validated in tests)
// while driving the machine timing model: every element access is
// classified by the node's caches and, on a miss, timed against the
// fabric; per-iteration pipeline cost comes from the core's scoreboard
// via the memoized cpu.CostModel.
package matmult

import (
	"fmt"

	"powermanna/internal/cpu"
	"powermanna/internal/node"
	"powermanna/internal/sim"
)

// Version selects the benchmark variant.
type Version uint8

const (
	// Naive multiplies with B in row order (column-strided inner reads).
	Naive Version = iota
	// Transposed transposes B first and multiplies rows by rows.
	Transposed
)

// String names the kernel variant as the paper's figures label it.
func (v Version) String() string {
	if v == Naive {
		return "naive"
	}
	return "transposed"
}

// Result reports one benchmark run.
type Result struct {
	Machine  string
	N        int
	Version  Version
	CPUs     int
	Time     sim.Time
	Flops    int64
	Checksum float64
}

// MFLOPS reports achieved millions of floating-point operations/second.
func (r Result) MFLOPS() float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(r.Flops) / r.Time.Seconds() / 1e6
}

// String summarizes the run: machine, variant, size and MFLOPS.
func (r Result) String() string {
	return fmt.Sprintf("%s MatMult(%s) N=%d cpus=%d: %.1f MFLOPS in %v",
		r.Machine, r.Version, r.N, r.CPUs, r.MFLOPS(), r.Time)
}

// perCellOverheadCycles charges loop bookkeeping (index updates, branch,
// store setup) once per output element. Calibrated.
const perCellOverheadCycles = 6

// layout places the four arrays the way a heap allocator would: contiguous
// with page-aligned starts and a guard page between them. Power-of-two
// spacing (e.g. all arrays 256 MB apart) would alias every array onto the
// same sets of a direct-mapped L2 — a pathology real allocations avoid.
type layout struct {
	a, b, bt, c uint64
}

func newLayout(n int) layout {
	const page = 4096
	sz := uint64(n*n) * 8
	round := func(x uint64) uint64 { return (x + page - 1) / page * page }
	a := uint64(0x1000_0000)
	b := round(a+sz) + page
	bt := round(b+sz) + page
	c := round(bt+sz) + page
	return layout{a: a, b: b, bt: bt, c: c}
}

// innerTemplate is the multiply inner-loop body: two loads feeding a
// multiply-accumulate with a genuine loop-carried dependency on the
// accumulator, plus index update and branch — the code a late-90s
// compiler emitted for `sum += a[i][k]*b[k][j]`.
func innerTemplate(core *cpu.Config) *cpu.Template {
	// Registers: 0=a, 1=b, 2=acc (loop-carried), 3=tmp, 4=index.
	if core.HasFMA {
		return &cpu.Template{
			Name:    "matmult-fma",
			NumRegs: 5,
			Instrs: []cpu.Instr{
				{Class: cpu.Load, Src1: 4, Src2: -1, Dst: 0, MemSlot: 0},
				{Class: cpu.Load, Src1: 4, Src2: -1, Dst: 1, MemSlot: 1},
				{Class: cpu.FPMAdd, Src1: 0, Src2: 1, Dst: 2, MemSlot: -1},
				{Class: cpu.IntALU, Src1: 4, Src2: -1, Dst: 4, MemSlot: -1},
				{Class: cpu.Branch, Src1: -1, Src2: -1, Dst: -1, MemSlot: -1},
			},
		}
	}
	return &cpu.Template{
		Name:    "matmult-muladd",
		NumRegs: 5,
		Instrs: []cpu.Instr{
			{Class: cpu.Load, Src1: 4, Src2: -1, Dst: 0, MemSlot: 0},
			{Class: cpu.Load, Src1: 4, Src2: -1, Dst: 1, MemSlot: 1},
			{Class: cpu.FPMul, Src1: 0, Src2: 1, Dst: 3, MemSlot: -1},
			{Class: cpu.FPAdd, Src1: 3, Src2: 2, Dst: 2, MemSlot: -1},
			{Class: cpu.IntALU, Src1: 4, Src2: -1, Dst: 4, MemSlot: -1},
			{Class: cpu.Branch, Src1: -1, Src2: -1, Dst: -1, MemSlot: -1},
		},
	}
}

// transposeTemplate is the transposition loop body: strided load,
// sequential store, bookkeeping.
func transposeTemplate() *cpu.Template {
	return &cpu.Template{
		Name:    "transpose",
		NumRegs: 2,
		Instrs: []cpu.Instr{
			{Class: cpu.Load, Src1: 1, Src2: -1, Dst: 0, MemSlot: 0},
			{Class: cpu.Store, Src1: 0, Src2: -1, Dst: -1, MemSlot: 1},
			{Class: cpu.IntALU, Src1: 1, Src2: -1, Dst: 1, MemSlot: -1},
			{Class: cpu.Branch, Src1: -1, Src2: -1, Dst: -1, MemSlot: -1},
		},
	}
}

// Matrices holds the functional data shared by all CPUs of a run.
type Matrices struct {
	N           int
	A, B, BT, C []float64
}

// NewMatrices builds deterministic input matrices: A[i][j] and B[i][j]
// are small rationals so checksums are exactly reproducible.
func NewMatrices(n int) *Matrices {
	m := &Matrices{
		N:  n,
		A:  make([]float64, n*n),
		B:  make([]float64, n*n),
		BT: make([]float64, n*n),
		C:  make([]float64, n*n),
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.A[i*n+j] = float64((i+j)%7) * 0.25
			m.B[i*n+j] = float64((i*3+j)%5) * 0.5
		}
	}
	return m
}

// Checksum folds C into one value for functional validation.
func (m *Matrices) Checksum() float64 {
	var s float64
	for _, v := range m.C {
		s += v
	}
	return s
}

// Reference computes the product directly (for tests).
func Reference(n int) float64 {
	m := NewMatrices(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += m.A[i*n+k] * m.B[k*n+j]
			}
			m.C[i*n+j] = sum
		}
	}
	return m.Checksum()
}

// kernel is one CPU's share of the benchmark: a row range of C and (for
// the transposed variant) a column range of the transposition. Step
// advances one element at a time so that SMP runs interleave at fine
// grain: shared-resource queueing is then resolved at close to true
// arrival order (see node.RunParallel).
type kernel struct {
	p     *node.Proc
	m     *Matrices
	lay   layout
	v     Version
	cost  *cpu.CostModel
	costT *cpu.CostModel
	lat   [2]int64

	rowStart, rowEnd int // C rows
	colStart, colEnd int // transposition columns
	phase            int // 0 = transpose (if any), 1 = multiply
	i, j, kk         int
	sum              float64
}

func newKernel(p *node.Proc, m *Matrices, lay layout, v Version, rows, cols [2]int) *kernel {
	core := p.Core()
	k := &kernel{
		p:        p,
		m:        m,
		lay:      lay,
		v:        v,
		cost:     cpu.NewCostModel(core, innerTemplate(core)),
		rowStart: rows[0], rowEnd: rows[1],
		colStart: cols[0], colEnd: cols[1],
		i: rows[0],
	}
	if v == Transposed {
		k.costT = cpu.NewCostModel(core, transposeTemplate())
		k.j = cols[0]
	} else {
		k.phase = 1
	}
	return k
}

func (k *kernel) Proc() *node.Proc { return k.p }

// Step advances one transposition element or one multiply-accumulate.
func (k *kernel) Step() bool {
	n := k.m.N
	if k.phase == 0 {
		// Transpose element BT[j][kk] = B[kk][j].
		j := k.j
		src := k.lay.b + uint64(k.kk*n+j)*8
		dst := k.lay.bt + uint64(j*n+k.kk)*8
		k.lat[0] = k.cost.Quantize(k.p.Access(src, false))
		k.lat[1] = 1 // store-buffered
		k.m.BT[j*n+k.kk] = k.m.B[k.kk*n+j]
		if stall := k.p.Access(dst, true) - k.p.L1HitCycles(); stall > 0 {
			k.p.AdvanceCycles(float64(stall))
		}
		k.p.AdvanceCycles(k.costT.CyclesPerIter(k.lat[:]))
		k.kk++
		if k.kk >= n {
			k.kk = 0
			k.j++
			if k.j >= k.colEnd {
				k.phase = 1
				k.i = k.rowStart
				k.j = 0
			}
		}
		return k.phase == 0 || k.i < k.rowEnd
	}

	// Multiply element: sum += A[i][kk] * B[kk][j].
	if k.i >= k.rowEnd {
		return false
	}
	i, j := k.i, k.j
	aAddr := k.lay.a + uint64(i*n+k.kk)*8
	var bAddr uint64
	var bVal float64
	if k.v == Transposed {
		bAddr = k.lay.bt + uint64(j*n+k.kk)*8
		bVal = k.m.BT[j*n+k.kk]
	} else {
		bAddr = k.lay.b + uint64(k.kk*n+j)*8
		bVal = k.m.B[k.kk*n+j]
	}
	k.lat[0] = k.cost.Quantize(k.p.Access(aAddr, false))
	k.lat[1] = k.cost.Quantize(k.p.Access(bAddr, false))
	k.sum += k.m.A[i*n+k.kk] * bVal
	k.p.AdvanceCycles(k.cost.CyclesPerIter(k.lat[:]))
	k.kk++
	if k.kk >= n {
		// Cell complete: store C[i][j], pay loop bookkeeping.
		k.m.C[i*n+j] = k.sum
		if stall := k.p.Access(k.lay.c+uint64(i*n+j)*8, true) - k.p.L1HitCycles(); stall > 0 {
			k.p.AdvanceCycles(float64(stall))
		}
		k.p.AdvanceCycles(perCellOverheadCycles)
		k.sum = 0
		k.kk = 0
		k.j++
		if k.j >= n {
			k.j = 0
			k.i++
		}
	}
	return k.i < k.rowEnd
}

// Run executes the benchmark on the first `cpus` processors of a fresh
// (reset) node, splitting C rows — and, in the transposed variant, the
// transposition columns — evenly. It returns timing and checksum.
func Run(nd *node.Node, n int, v Version, cpus int) Result {
	if cpus <= 0 || cpus > len(nd.Procs()) {
		panic(fmt.Sprintf("matmult: cpus = %d with %d installed", cpus, len(nd.Procs())))
	}
	nd.Reset()
	m := NewMatrices(n)
	lay := newLayout(n)
	kernels := make([]node.Kernel, cpus)
	for c := 0; c < cpus; c++ {
		rows := [2]int{c * n / cpus, (c + 1) * n / cpus}
		cols := [2]int{c * n / cpus, (c + 1) * n / cpus}
		kernels[c] = newKernel(nd.Proc(c), m, lay, v, rows, cols)
	}
	makespan := node.RunParallel(kernels...)
	return Result{
		Machine:  nd.Config().Name,
		N:        n,
		Version:  v,
		CPUs:     cpus,
		Time:     makespan,
		Flops:    2 * int64(n) * int64(n) * int64(n),
		Checksum: m.Checksum(),
	}
}
