package matmult

import (
	"math"
	"testing"

	"powermanna/internal/machine"
	"powermanna/internal/node"
)

func TestVersionString(t *testing.T) {
	if Naive.String() != "naive" || Transposed.String() != "transposed" {
		t.Error("Version.String wrong")
	}
}

// The timing-driven kernel must compute the same product as the direct
// triple loop, in both variants, on every machine.
func TestFunctionalCorrectness(t *testing.T) {
	const n = 17 // odd, small
	want := Reference(n)
	for _, cfg := range machine.All() {
		nd := node.New(cfg)
		for _, v := range []Version{Naive, Transposed} {
			r := Run(nd, n, v, 1)
			if math.Abs(r.Checksum-want) > 1e-9 {
				t.Errorf("%s/%s: checksum %g, want %g", cfg.Name, v, r.Checksum, want)
			}
			if r.Flops != 2*17*17*17 {
				t.Errorf("%s/%s: flops = %d", cfg.Name, v, r.Flops)
			}
			if r.Time <= 0 {
				t.Errorf("%s/%s: non-positive time", cfg.Name, v)
			}
		}
	}
}

func TestSMPFunctionalCorrectness(t *testing.T) {
	const n = 21
	want := Reference(n)
	nd := node.New(machine.PowerMANNA())
	for _, v := range []Version{Naive, Transposed} {
		r := Run(nd, n, v, 2)
		if math.Abs(r.Checksum-want) > 1e-9 {
			t.Errorf("SMP %s: checksum %g, want %g", v, r.Checksum, want)
		}
		if r.CPUs != 2 {
			t.Errorf("CPUs = %d", r.CPUs)
		}
	}
}

func TestDeterminism(t *testing.T) {
	nd := node.New(machine.PowerMANNA())
	a := Run(nd, 15, Naive, 1)
	b := Run(nd, 15, Naive, 1)
	if a.Time != b.Time || a.Checksum != b.Checksum {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

// Transposed must beat naive on PowerMANNA once the column stride
// defeats the TLB reach and the 64-byte lines (the core claim behind
// Figure 7; at N=301 the naive column pass touches ~177 pages against a
// 128-entry TLB and every B element sits on its own line).
func TestTransposedBeatsNaiveOnPowerMANNA(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	nd := node.New(machine.PowerMANNA())
	const n = 301
	naive := Run(nd, n, Naive, 1)
	transposed := Run(nd, n, Transposed, 1)
	// The paper reports a factor ~2.5 for cache-resident sizes, growing
	// to ~6 once the matrices exceed the L2.
	ratio := transposed.MFLOPS() / naive.MFLOPS()
	if ratio < 2 {
		t.Errorf("transposed/naive ratio = %.2f (%.1f vs %.1f MFLOPS), want >= 2",
			ratio, transposed.MFLOPS(), naive.MFLOPS())
	}
}

// Dual-processor PowerMANNA must scale essentially perfectly (Figure 8:
// "performance for PowerMANNA exactly doubles").
func TestPowerMANNASMPSpeedup(t *testing.T) {
	nd := node.New(machine.PowerMANNA())
	const n = 101
	for _, v := range []Version{Naive, Transposed} {
		one := Run(nd, n, v, 1)
		two := Run(nd, n, v, 2)
		speedup := one.Time.Seconds() / two.Time.Seconds()
		if speedup < 1.9 || speedup > 2.1 {
			t.Errorf("%s: PowerMANNA speedup = %.3f, want ~2.0", v, speedup)
		}
	}
}

func TestRunPanicsOnBadCPUCount(t *testing.T) {
	nd := node.New(machine.PowerMANNA())
	defer func() {
		if recover() == nil {
			t.Error("Run with 3 cpus on 2-cpu node did not panic")
		}
	}()
	Run(nd, 8, Naive, 3)
}

func TestMFLOPSZeroTime(t *testing.T) {
	r := Result{Flops: 100}
	if r.MFLOPS() != 0 {
		t.Error("zero-time MFLOPS should be 0")
	}
}

func TestResultString(t *testing.T) {
	nd := node.New(machine.PowerMANNA())
	r := Run(nd, 9, Naive, 1)
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}
