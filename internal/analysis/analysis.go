// Package analysis is the stdlib-only static-analysis suite behind
// cmd/pmlint. It enforces the simulator's determinism contract: every
// table and figure the module regenerates must be a pure function of the
// model and its configuration, bit-identical across machines and runs.
//
// The suite walks the module with go/build, parses with go/parser and
// type-checks with go/types (source importer) — no third-party analysis
// framework — and ships nine analyzers:
//
//   - determinism: wall-clock reads, global math/rand, order-dependent
//     map iteration, and concurrency in the single-threaded sim core
//   - cycleaccount: magic integer literals added to cycle/latency values
//   - errcheck: silently discarded error returns
//   - docexport: undocumented exported identifiers in internal packages
//   - layering: direct netsim.Network.Send calls outside internal/netsim
//     (every layer sends through the fault-aware Transport)
//
// plus the shard-safety family built on the package call graph
// (callgraph.go), which proves the runway for the parallel PDES engine:
//
//   - sharedstate: mutable state reachable from two event-handler roots
//     without queue mediation
//   - purity: event-ordering functions (Less/Compare/Cmp/Hash, sort
//     closures) must be pure
//   - timeflow: sim.Time advances monotonically and never lives in
//     package-level state
//   - hotpath: allocation lint for //pmlint:hotpath send-path functions
//     (interface boxing, map iteration, capturing closures)
//
// A diagnostic can be suppressed with a directive on the same line or the
// line directly above:
//
//	//pmlint:allow <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, addressed by file position.
type Diagnostic struct {
	// Pos locates the offending node.
	Pos token.Position
	// Analyzer names the rule that fired (e.g. "determinism").
	Analyzer string
	// Message says what is wrong and how to fix it.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one rule set run over a loaded package.
type Analyzer interface {
	// Name is the key used in reports and //pmlint:allow directives.
	Name() string
	// Doc is a one-line description for pmlint -list.
	Doc() string
	// Check reports all findings in pkg (suppressions are filtered by
	// the driver, not the analyzer).
	Check(pkg *Package) []Diagnostic
}

// All returns the full suite in reporting order.
func All() []Analyzer {
	return []Analyzer{
		Determinism{},
		CycleAccount{},
		ErrCheck{},
		DocExport{},
		Layering{},
		SharedState{},
		Purity{},
		Timeflow{},
		Hotpath{},
	}
}

// ByName resolves an analyzer from the suite, for pmlint -only.
func ByName(name string) (Analyzer, bool) {
	for _, a := range All() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Run applies the analyzers to every package, filters //pmlint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup, supDiags := suppressions(pkg, known)
		out = append(out, supDiags...)
		for _, a := range analyzers {
			for _, d := range a.Check(pkg) {
				if sup.allows(a.Name(), d.Pos) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}
