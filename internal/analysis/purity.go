package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// orderingNames are the declared-function names treated as event-ordering
// functions: comparators, tie-breaks and hashes whose result feeds a
// sort, a heap or a dedup decision. The parallel engine merges shard
// streams with exactly these functions; an impure one makes the merge
// order depend on evaluation order, which differs between the sequential
// and the sharded engine.
var orderingNames = map[string]bool{
	"Less":    true,
	"less":    true,
	"Compare": true,
	"compare": true,
	"Cmp":     true,
	"cmp":     true,
	"Hash":    true,
	"hash":    true,
}

// Purity is the second shard-safety analyzer: ordering functions —
// comparison/tie-break/hash functions used for event ordering — must be
// pure. It checks every declared function whose name is an ordering name
// (Less/Compare/Cmp/Hash, either case) and every function literal passed
// to a sort call (package sort or slices), and reports:
//
//   - stores to anything declared outside the function (the comparison
//     must not move state);
//   - channel operations or goroutine launches;
//   - map iteration (order-random, so the comparison result could be);
//   - reads of package-level mutable variables (a global the merge order
//     would silently depend on).
type Purity struct{}

// Name implements Analyzer.
func (Purity) Name() string { return "purity" }

// Doc implements Analyzer.
func (Purity) Doc() string {
	return "require event-ordering functions (Less/Compare/Cmp/Hash, sort closures) to be pure"
}

// Check implements Analyzer.
func (Purity) Check(pkg *Package) []Diagnostic {
	if !strings.HasPrefix(pkg.Rel, "internal/") {
		return nil
	}
	// mutable is the set of package-level variables written anywhere in
	// the package: reading one inside a comparator is a hidden input.
	mutable := map[*types.Var]bool{}
	g := BuildCallGraph(pkg)
	for _, v := range g.MutableVars() {
		mutable[v] = true
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if orderingNames[fd.Name.Name] {
				diags = append(diags, checkPure(pkg, declName(fd), fd.Body, mutable)...)
			}
			// Sort closures nested anywhere in the function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSortCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						pos := pkg.Fset.Position(lit.Pos())
						name := fmt.Sprintf("sort closure at line %d", pos.Line)
						diags = append(diags, checkPure(pkg, name, lit.Body, mutable)...)
					}
				}
				return true
			})
		}
	}
	return diags
}

// isSortCall reports whether the call is into package sort or slices —
// the places an ordering closure is handed to.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sort" || path == "slices"
}

// checkPure walks one ordering-function body and reports every impurity.
func checkPure(pkg *Package, name string, body *ast.BlockStmt, mutable map[*types.Var]bool) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "purity",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	// localVar reports whether e's base identifier is declared inside
	// body (a scratch local — writing those is fine).
	localVar := func(e ast.Expr) bool {
		id := baseIdent(e)
		if id == nil {
			return false
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			obj = pkg.Info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return v.Pos() >= body.Pos() && v.Pos() < body.End()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id := baseIdent(lhs); id != nil && id.Name == "_" {
					continue
				}
				if !localVar(lhs) {
					report(n.Pos(), "ordering function %s writes to %s: event-ordering comparisons must be pure so shard merges reproduce the sequential order", name, exprString(lhs))
				}
			}
		case *ast.IncDecStmt:
			if !localVar(n.X) {
				report(n.Pos(), "ordering function %s writes to %s: event-ordering comparisons must be pure so shard merges reproduce the sequential order", name, exprString(n.X))
			}
		case *ast.GoStmt:
			report(n.Pos(), "ordering function %s launches a goroutine: event ordering must be pure and single-threaded", name)
		case *ast.SendStmt:
			report(n.Pos(), "ordering function %s sends on a channel: event ordering must be pure", name)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "ordering function %s receives from a channel: event ordering must be pure", name)
			}
		case *ast.SelectStmt:
			report(n.Pos(), "ordering function %s selects on channels: event ordering must be pure", name)
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(n.For, "ordering function %s iterates a map: map order is random per run, so the comparison result would be too", name)
				}
			}
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[n].(*types.Var); ok && mutable[v] {
				report(n.Pos(), "ordering function %s reads package-level mutable var %s: a hidden input the shard merge order would depend on", name, v.Name())
			}
		}
		return true
	})
	return diags
}
