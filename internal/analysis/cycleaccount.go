package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// cycleName matches identifiers that carry cycle or latency accounting.
var cycleName = regexp.MustCompile(`(?i)(cycle|laten|delay|penalt|overhead|\blat\b|lat$)`)

// CycleAccount keeps the timing model auditable against the paper: every
// cycle or latency contribution must be a named, documented constant
// (like the tables in internal/cpu/cost.go), not a magic number.
//
// It flags integer literals of two or more added to (or subtracted from)
// cycle/latency-carrying expressions — recognized by a sim.Time-style
// named type called Time, or by an identifier whose name mentions cycles,
// latency, delay, penalty or overhead. Adding 1 is structural (counting
// an event) and is allowed. When a package-level constant with the same
// value exists, the diagnostic names it.
type CycleAccount struct{}

// Name implements Analyzer.
func (CycleAccount) Name() string { return "cycleaccount" }

// Doc implements Analyzer.
func (CycleAccount) Doc() string {
	return "require named constants for cycle/latency contributions (no magic numbers)"
}

// Check implements Analyzer.
func (CycleAccount) Check(pkg *Package) []Diagnostic {
	if !strings.HasPrefix(pkg.Rel, "internal/") && !strings.HasPrefix(pkg.Rel, "examples/") {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos, lit *ast.BasicLit, target string) {
		msg := fmt.Sprintf("raw literal %s added to cycle/latency value %s: name it as a package-level const so timing stays auditable against the paper", lit.Value, target)
		if c := constWithValue(pkg, lit); c != "" {
			msg += fmt.Sprintf(" (existing const %s has this value)", c)
		}
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "cycleaccount",
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
						return true
					}
					if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
						return true
					}
					lit := bareIntLiteral(n.Rhs[0])
					if lit == nil || !isCycleExpr(pkg, n.Lhs[0]) {
						return true
					}
					report(n.Pos(), lit, exprString(n.Lhs[0]))
				case *ast.BinaryExpr:
					if n.Op != token.ADD && n.Op != token.SUB {
						return true
					}
					if lit := bareIntLiteral(n.Y); lit != nil && isCycleExpr(pkg, n.X) {
						report(n.Pos(), lit, exprString(n.X))
					} else if lit := bareIntLiteral(n.X); lit != nil && isCycleExpr(pkg, n.Y) {
						report(n.Pos(), lit, exprString(n.Y))
					}
				}
				return true
			})
		}
	}
	return diags
}

// bareIntLiteral returns e as an integer literal with value >= 2, or nil.
func bareIntLiteral(e ast.Expr) *ast.BasicLit {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return nil
	}
	if lit.Value == "0" || lit.Value == "1" {
		return nil
	}
	return lit
}

// isCycleExpr reports whether e carries cycle/latency accounting: its
// type is a named type called Time (the simulator's clock), or its
// identifier path mentions cycle/latency vocabulary.
func isCycleExpr(pkg *Package, e ast.Expr) bool {
	if t := pkg.Info.TypeOf(e); t != nil {
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Time" {
			return true
		}
	}
	switch t := e.(type) {
	case *ast.Ident:
		return cycleName.MatchString(t.Name)
	case *ast.SelectorExpr:
		return cycleName.MatchString(t.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := t.Fun.(*ast.SelectorExpr); ok {
			return cycleName.MatchString(sel.Sel.Name)
		}
		if id, ok := t.Fun.(*ast.Ident); ok {
			return cycleName.MatchString(id.Name)
		}
	}
	return false
}

// constWithValue finds a package-level integer constant equal to lit, to
// suggest in the diagnostic. Ties resolve to the lexically first name.
func constWithValue(pkg *Package, lit *ast.BasicLit) string {
	want := constant.MakeFromLiteral(lit.Value, token.INT, 0)
	best := ""
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.Int {
			continue
		}
		if constant.Compare(c.Val(), token.EQL, want) && (best == "" || name < best) {
			best = name
		}
	}
	return best
}

// exprString renders a short source form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		if base := exprString(t.X); base != "" {
			return base + "." + t.Sel.Name
		}
		return t.Sel.Name
	case *ast.IndexExpr:
		return exprString(t.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(t.X)
	case *ast.CallExpr:
		return exprString(t.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(t.X)
	}
	return "expression"
}
