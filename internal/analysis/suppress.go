package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// allowPrefix is the suppression directive. Usage, on the offending line
// or the line directly above:
//
//	//pmlint:allow <analyzer> <reason>
//
// Directives stack: a run of consecutive directive-only lines acts as
// one block, and every directive in the run covers the line directly
// below the run. A blank or code line breaks the run.
const allowPrefix = "//pmlint:allow"

// suppressSet records which analyzer is allowed on which line of which
// file.
type suppressSet map[string]map[int]map[string]bool // file -> line -> analyzer

// allows reports whether a diagnostic from analyzer at pos is covered by
// a directive on the same line or the line directly above.
func (s suppressSet) allows(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

// suppressions scans a package's comments for //pmlint:allow directives.
// It returns the set of valid suppressions plus diagnostics for malformed
// directives: a missing analyzer name, an unknown analyzer, or a missing
// reason (the reason is mandatory — suppressions must be auditable).
func suppressions(pkg *Package, known map[string]bool) (suppressSet, []Diagnostic) {
	set := suppressSet{}
	var diags []Diagnostic
	bad := func(pos token.Position, msg string) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: "pmlint", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				// A second "//" starts commentary about the directive (test
				// fixtures use it for expectations); it is not the reason.
				rest, _, _ = strings.Cut(rest, "//")
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(pos, "malformed directive: want //pmlint:allow <analyzer> <reason>")
					continue
				}
				name := fields[0]
				if !known[name] {
					bad(pos, "directive names unknown analyzer "+name)
					continue
				}
				if len(fields) < 2 {
					bad(pos, "directive for "+name+" is missing the mandatory reason")
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][name] = true
			}
		}
	}
	// Stack runs of consecutive directive lines: propagate each line's
	// analyzers onto the next directive line, so the run's last line
	// carries the whole block and allows() sees it one line above the
	// diagnostic.
	for _, lines := range set {
		nums := make([]int, 0, len(lines))
		for l := range lines {
			nums = append(nums, l)
		}
		sort.Ints(nums)
		for _, l := range nums {
			if next := lines[l+1]; next != nil {
				for name := range lines[l] {
					next[name] = true
				}
			}
		}
	}
	return set, diags
}
