// Package pqueue exercises the schedule-site matcher's parallel-engine
// cases: callbacks scheduled through the sim.Engine interface, through
// a psim shard, through the cross-shard Post mailbox, and a worker loop
// promoted to handler root by directive. The lookalike type at the
// bottom must stay invisible.
package pqueue

import (
	"powermanna/internal/psim"
	"powermanna/internal/sim"
)

// viaInterface schedules through the sim.Engine interface — the callback
// must root even though the static type is not *sim.Scheduler.
func viaInterface(eng sim.Engine) {
	eng.At(0, ifaceHandler)
}

func ifaceHandler() {}

// viaShard schedules on a psim shard and posts across shards.
func viaShard(e *psim.Engine) {
	e.Shard(0).After(sim.Time(5), shardHandler)
	e.Post(0, 1, sim.Time(10), postHandler)
}

func shardHandler() {}

func postHandler() {}

// drain is the directive case: never passed to At/After, yet it runs
// handler bodies directly and must be audited as a root.
//
//pmlint:root
func drain() {
	ifaceHandler()
}

// lookalike has an At method with the right shape but is not an event
// queue; its callback must not root.
type lookalike struct{}

func (lookalike) At(t sim.Time, fn func()) {}

func viaLookalike() {
	lookalike{}.At(0, notAHandler)
}

func notAHandler() {}
