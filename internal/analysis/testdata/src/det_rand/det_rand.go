// Package det_rand exercises the determinism analyzer's math/rand rule.
package det_rand

import "math/rand"

func global() int {
	n := rand.Intn(4) // want `global math/rand source via rand\.Intn`
	rand.Seed(7)      // want `global math/rand source via rand\.Seed`
	p := rand.Perm(3) // want `global math/rand source via rand\.Perm`
	return n + p[0]
}

func explicit(seed int64) int {
	// The sanctioned idiom: an explicit generator with a config-derived
	// seed. Constructors and methods are allowed.
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4) + r.Perm(3)[0]
}
