// Package tflow exercises the timeflow analyzer: sim.Time advances
// monotonically and never lives in package-level state.
package tflow

import "powermanna/internal/sim"

var lastSeen sim.Time // want `package-level var lastSeen holds sim\.Time`

var deadlines = map[int]sim.Time{} // want `package-level var deadlines holds sim\.Time`

// count carries no timestamp: fine at package level (as far as timeflow
// is concerned; sharedstate polices whether handlers share it).
var count int

type span struct{ start, end sim.Time }

var spans []span // want `package-level var spans holds sim\.Time`

func rewind(now sim.Time) sim.Time {
	now -= sim.Nanosecond // want `now -= moves a simulation clock backwards`
	return now
}

type clockbox struct{ clock sim.Time }

func (c *clockbox) tickBack() {
	c.clock-- // want `c\.clock-- moves a simulation clock backwards`
}

// fine only advances time, and a deadline named for what it is may be
// decremented without looking like a clock.
func fine(at sim.Time, budget sim.Time) sim.Time {
	at += sim.Nanosecond
	budget -= sim.Nanosecond
	_ = budget
	return at
}

func use() {
	lastSeen = 0
	deadlines[0] = 0
	count++
	spans = nil
	var c clockbox
	c.tickBack()
	_ = rewind(0)
	_ = fine(0, 0)
}
