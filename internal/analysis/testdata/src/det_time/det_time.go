// Package det_time exercises the determinism analyzer's wall-clock rule.
package det_time

import "time"

func clocks() time.Duration {
	start := time.Now()         // want `wall-clock read time\.Now`
	d := time.Since(start)      // want `wall-clock read time\.Since`
	d += time.Until(start)      // want `wall-clock read time\.Until`
	time.Sleep(time.Nanosecond) // sleeping is not a results-path clock read
	return d
}

func simulated() time.Duration {
	// Pure arithmetic on time.Duration is fine; only host-clock reads are
	// banned.
	return 3 * time.Microsecond
}
