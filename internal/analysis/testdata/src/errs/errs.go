// Package errs exercises the errcheck analyzer.
package errs

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func two() (int, error) { return 0, errors.New("boom") }

func discards() {
	mayFail() // want `error returned by errs\.mayFail is silently discarded`
	two()     // want `error returned by errs\.two is silently discarded`
}

func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // explicit discard is a visible decision: allowed
	n, _ := two() // explicit discard: allowed
	_ = n
	return nil
}

func exemptions() string {
	fmt.Println("fmt is exempt")
	var b strings.Builder
	b.WriteString("builder writes never fail")
	return b.String()
}
