// Package allow exercises the //pmlint:allow suppression directive.
package allow

import "time"

func suppressedSameLine() time.Time {
	return time.Now() //pmlint:allow determinism harness-only timestamp, not in a results path
}

func suppressedLineAbove() time.Time {
	//pmlint:allow determinism harness-only timestamp, not in a results path
	return time.Now()
}

func missingReason() time.Time {
	return time.Now() //pmlint:allow determinism   // want `wall-clock read time\.Now` `missing the mandatory reason`
}

func unknownAnalyzer() time.Time {
	return time.Now() //pmlint:allow nosuchrule because reasons   // want `wall-clock read time\.Now` `unknown analyzer nosuchrule`
}

func wrongAnalyzer() time.Time {
	//pmlint:allow errcheck suppressing the wrong analyzer does not help
	return time.Now() // want `wall-clock read time\.Now`
}
