// Package cycle exercises the cycleaccount analyzer.
package cycle

// Time mirrors the simulator's clock type.
type Time int64

// busPenalty is a named timing constant the diagnostic should suggest.
const busPenalty = 3

func account(t Time, latency int) (Time, int) {
	t += 3                // want `raw literal 3 added to cycle/latency value t.*existing const busPenalty`
	t = t + busPenalty    // named constants are the sanctioned idiom
	t += 1                // counting one event is structural, not a timing magic number
	latency = latency + 7 // want `raw literal 7 added to cycle/latency value latency`
	return t, latency
}

func unrelated(count int) int {
	count += 5 // not a cycle/latency carrier: allowed
	return count
}
