// Package sim impersonates a simulation-core package to exercise the
// determinism analyzer's concurrency rules.
package sim

func spawn(done chan int) {
	go func() { done <- 1 }() // want `goroutine launched in sim core` `channel send in sim core`
}

func pump(ch chan int) int {
	ch <- 4     // want `channel send in sim core`
	return <-ch // want `channel receive in sim core`
}

func pick(a, b chan int) int {
	select { // want `select statement in sim core`
	case v := <-a: // want `channel receive in sim core`
		return v
	case v := <-b: // want `channel receive in sim core`
		return v
	}
}

func build() chan int {
	return make(chan int, 8) // want `channel created in sim core`
}

func sequential() int {
	// Ordinary sequential code is untouched.
	total := 0
	for i := 0; i < 4; i++ {
		total += i
	}
	return total
}
