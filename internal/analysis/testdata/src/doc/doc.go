// Package doc exercises the docexport analyzer.
package doc

// Documented carries a doc comment, as every exported type must.
type Documented struct{}

type Bare struct{} // want `exported type Bare is missing a doc comment`

// Describe is documented.
func (Documented) Describe() string { return "ok" }

func (Documented) Opaque() string { return "?" } // want `exported method \(Documented\)\.Opaque is missing a doc comment`

// Good is documented.
func Good() {}

func Naked() {} // want `exported function Naked is missing a doc comment`

// Grouped constants are covered by the group comment.
const (
	GroupedA = 1
	GroupedB = 2
)

var Loose = 3 // want `exported var Loose is missing a doc comment`

type hidden struct{}

func (hidden) Whatever() {} // methods on unexported types are not API

func internalHelper() {}
