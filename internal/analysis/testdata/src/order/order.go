// Package order exercises the purity analyzer: event-ordering functions
// (Less/Compare/Cmp/Hash and sort closures) must be pure.
package order

import "sort"

// tick is package-level and written by advance, so it is mutable state:
// an ordering function reading it has a hidden input.
var tick int

func advance() { tick++ }

type ev struct{ at, seq int }

type byAt struct {
	evs  []ev
	hits int
}

func (b *byAt) Len() int      { return len(b.evs) }
func (b *byAt) Swap(i, j int) { b.evs[i], b.evs[j] = b.evs[j], b.evs[i] }

func (b *byAt) Less(i, j int) bool {
	b.hits++ // want `ordering function \(byAt\)\.Less writes to b\.hits`
	return b.evs[i].at < b.evs[j].at
}

func compare(a, b ev) int {
	if tick > 0 { // want `ordering function compare reads package-level mutable var tick`
		return 0
	}
	return a.at - b.at
}

type weighted struct{ weights map[int]int }

func (w *weighted) Hash(e ev) int {
	sum := 0
	for k := range w.weights { // want `ordering function \(weighted\)\.Hash iterates a map` `map iteration accumulates into sum`
		sum += k
	}
	return sum + e.at
}

type chanCmp struct{ done chan int }

func (c *chanCmp) Compare(a, b ev) int {
	c.done <- a.at // want `ordering function \(chanCmp\)\.Compare sends on a channel`
	return a.at - b.at
}

func (b *byAt) Cmp(x, y ev) int {
	go advance() // want `ordering function \(byAt\)\.Cmp launches a goroutine`
	return x.at - y.at
}

func sortEvents(evs []ev) {
	calls := 0
	sort.Slice(evs, func(i, j int) bool {
		calls++ // want `ordering function sort closure at line \d+ writes to calls`
		return evs[i].at < evs[j].at
	})
	_ = calls
}

// less is pure: local scratch writes and reads of its arguments only.
func less(a, b ev) bool {
	d := a.at - b.at
	if d == 0 {
		d = a.seq - b.seq
	}
	return d < 0
}
