// Package shard exercises the sharedstate analyzer: mutable state
// reachable from two event-handler roots without queue mediation.
package shard

import "powermanna/internal/sim"

// inflight is written by two scheduled handlers via bump — the canonical
// shard-unsafe shared counter.
var inflight int

// table is only ever read: not state the shard refactor must mediate.
var table = []int{1, 2, 3}

func setup(s *sim.Scheduler) {
	pending := 0
	s.At(0, func() {
		bump()
	})
	s.After(sim.Time(10), func() {
		bump()
	})
	s.At(sim.Time(5), func() {
		pending++ // want `local pending is captured and written by 2 scheduled handlers`
	})
	s.At(sim.Time(6), func() {
		pending++
	})
	_ = pending
}

func bump() {
	inflight++ // want `package-level var inflight is mutable and reachable from 2 event-handler roots`
	_ = table[0]
}

// lone is the only handler touching solo: one root cannot share.
var solo int

func lone(s *sim.Scheduler) {
	s.At(0, func() { solo++ })
}
