// Package scope impersonates a cmd/ package: the determinism, doc and
// cycle rules only bind internal/... and examples/..., so a command may
// time its own harness on the wall clock. errcheck applies everywhere.
package scope

import (
	"errors"
	"time"
)

func mayFail() error { return errors.New("boom") }

func HarnessTiming() time.Duration {
	start := time.Now() // out of determinism scope: commands may time themselves
	mayFail()           // want `error returned by scope\.mayFail is silently discarded`
	return time.Since(start)
}
