// Package layering exercises the layering analyzer.
package layering

import (
	"powermanna/internal/netsim"
	"powermanna/internal/sim"
	"powermanna/internal/topo"
)

// Network is a local type whose Send must not be confused with netsim's.
type Network struct{}

// Send is a decoy method on the local Network.
func (Network) Send(n int) int { return n }

func direct(n *netsim.Network, path topo.Path) {
	_, _ = n.Send(0, path, 64) // want `direct netsim.Network.Send call outside internal/netsim`
}

func allowed(n *netsim.Network, path topo.Path) {
	//pmlint:allow layering raw-datapath experiment measures the wormhole itself
	_, _ = n.Send(0, path, 64)
}

func throughTransport(n *netsim.Network, at sim.Time) {
	tp := n.MustTransport(0, netsim.DefaultFailover())
	_, _ = tp.Send(at, 1, 64) // the sanctioned datapath
}

func decoy(local Network) int {
	return local.Send(3) // same method name, unrelated type: allowed
}
