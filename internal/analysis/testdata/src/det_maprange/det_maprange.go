// Package det_maprange exercises the determinism analyzer's map-order
// rule.
package det_maprange

import (
	"fmt"
	"sort"
)

func accumulate(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `map iteration accumulates into sum`
		sum += v
	}
	return sum
}

func printing(m map[string]int) {
	for k, v := range m { // want `map iteration calls fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func sortedKeys(m map[string]int) []string {
	// The sanctioned idiom: collect, then sort before anything ordered
	// happens.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func invert(m map[string]int) map[int]string {
	// Building a map from a map is order-independent.
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func loopLocal(m map[string]int) {
	// Writes to variables declared inside the loop body do not accumulate
	// across iterations.
	for _, v := range m {
		double := v * 2
		_ = double
	}
}
