// Package hot exercises the hotpath allocation lint: functions carrying
// the //pmlint:hotpath directive must not box, iterate maps, or capture.
package hot

import "fmt"

type msg struct {
	id   int
	tags map[string]int
}

//pmlint:hotpath
func send(m *msg, sink func(interface{})) {
	sink(m.id)                // want `call boxes 1 concrete value\(s\) into interface parameters`
	for tag := range m.tags { // want `map iteration allocates a hash iterator`
		_ = tag
	}
	n := 0
	cb := func() { n++ } // want `closure captures 1 outer variable\(s\)`
	cb()
}

//pmlint:hotpath
func format(m *msg) string {
	return fmt.Sprintf("msg %d tag %d", m.id, len(m.tags)) // want `call boxes 2 concrete value\(s\) into interface parameters`
}

//pmlint:hotpath
func stash(m *msg) {
	var v interface{}
	v = m.id // want `assignment boxes 1 concrete value\(s\) into interface variables`
	_ = v
}

//pmlint:hotpath
func declare(m *msg) {
	var v interface{} = m.id // want `var declaration boxes 1 concrete value\(s\) into interface variables`
	var p interface{} = m    // pointer-shaped: stored in the interface word, no box
	var q = m.id             // adopts the value's type, no interface involved
	_, _, _ = v, p, q
}

//pmlint:hotpath
func box(m *msg) interface{} {
	return m.id // want `return boxes 1 concrete value\(s\) into interface results`
}

//pmlint:hotpath
func guarded(m *msg) {
	if m.id < 0 {
		panic(fmt.Sprintf("bad id %d", m.id)) //pmlint:allow hotpath cold panic guard, never taken per message
	}
}

//pmlint:hotpath
func clean(m *msg, out []int) []int {
	return append(out, m.id)
}

// coldPath has no directive: boxing here is not budgeted.
func coldPath(m *msg) string {
	return fmt.Sprintf("msg %d", m.id)
}
