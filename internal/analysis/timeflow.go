package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Timeflow is the third shard-safety analyzer: sim.Time must only move
// monotonically and never be stored in non-handler-owned state. The
// conservative lookahead the parallel engine depends on assumes each
// shard's clock only advances and that no stale timestamp can leak in
// from state outside the handler. It reports:
//
//   - a package-level variable whose type contains sim.Time — a
//     timestamp parked where every shard could see it is exactly the
//     stale-clock hazard lookahead cannot tolerate;
//   - `-=` or `--` applied to a sim.Time lvalue whose name says it is a
//     clock (now/clock): a clock that moves backwards breaks the
//     monotone-time invariant outright.
type Timeflow struct{}

// Name implements Analyzer.
func (Timeflow) Name() string { return "timeflow" }

// Doc implements Analyzer.
func (Timeflow) Doc() string {
	return "require sim.Time to advance monotonically and never live in package-level state"
}

// clockName matches lvalue names that denote a current-time clock.
var clockName = regexp.MustCompile(`(?i)(now|clock)$`)

// Check implements Analyzer.
func (Timeflow) Check(pkg *Package) []Diagnostic {
	if !strings.HasPrefix(pkg.Rel, "internal/") {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "timeflow",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok || v.Parent() != pkg.Types.Scope() {
						continue
					}
					if containsSimTime(v.Type(), nil) {
						report(name.Pos(),
							"package-level var %s holds sim.Time: timestamps must live in handler-owned state or event payloads, never in package state a stale shard could read",
							name.Name)
					}
				}
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.SUB_ASSIGN {
					return true
				}
				for _, lhs := range n.Lhs {
					if isClockLvalue(pkg, lhs) {
						report(n.Pos(),
							"%s -= moves a simulation clock backwards: sim.Time must advance monotonically (conservative lookahead depends on it)",
							exprString(lhs))
					}
				}
			case *ast.IncDecStmt:
				if n.Tok == token.DEC && isClockLvalue(pkg, n.X) {
					report(n.Pos(),
						"%s-- moves a simulation clock backwards: sim.Time must advance monotonically (conservative lookahead depends on it)",
						exprString(n.X))
				}
			}
			return true
		})
	}
	return diags
}

// isClockLvalue reports whether e has type sim.Time and a name that says
// it is a clock (…now, …clock, any case).
func isClockLvalue(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil || !isSimTime(t) {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		return clockName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return clockName.MatchString(e.Sel.Name)
	}
	return false
}

// isSimTime reports whether t is the named type sim.Time.
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/sim")
}

// containsSimTime reports whether t contains sim.Time anywhere in its
// structure (fields, elements, map keys/values). seen guards against
// recursive types.
func containsSimTime(t types.Type, seen map[types.Type]bool) bool {
	if isSimTime(t) {
		return true
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSimTime(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSimTime(u.Elem(), seen)
	case *types.Slice:
		return containsSimTime(u.Elem(), seen)
	case *types.Pointer:
		return containsSimTime(u.Elem(), seen)
	case *types.Map:
		return containsSimTime(u.Key(), seen) || containsSimTime(u.Elem(), seen)
	case *types.Chan:
		return containsSimTime(u.Elem(), seen)
	}
	return false
}
