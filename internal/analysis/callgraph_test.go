package analysis

import (
	"strings"
	"testing"
)

// loadShardFixture loads the sharedstate fixture, which doubles as the
// call-graph test bed: five scheduled handlers, one shared counter.
func loadShardFixture(t *testing.T) *Package {
	t.Helper()
	pkg, err := NewLoader().LoadDir("testdata/src/shard", "powermanna/internal/shard", "internal/shard")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg
}

// TestCallGraphRoots checks that every callback scheduled through
// sim.Scheduler becomes a handler root, and nothing else does.
func TestCallGraphRoots(t *testing.T) {
	g := BuildCallGraph(loadShardFixture(t))
	roots := g.HandlerRoots()
	if len(roots) != 5 {
		var names []string
		for _, r := range roots {
			names = append(names, r.Name)
		}
		t.Fatalf("got %d handler roots (%s), want 5", len(roots), strings.Join(names, ", "))
	}
	for _, r := range roots {
		if r.Lit == nil {
			t.Errorf("root %s is not a literal; all scheduled callbacks in the fixture are closures", r.Name)
		}
	}
	for _, n := range g.Nodes() {
		if n.Fn != nil && n.HandlerRoot {
			t.Errorf("declared function %s marked as root; only scheduled callbacks should be", n.Name)
		}
	}
}

// TestCallGraphEngineRoots checks the parallel-engine schedule sites:
// callbacks scheduled through the sim.Engine interface, a psim shard
// and the cross-shard Post mailbox all root; the //pmlint:root
// directive promotes a declared worker loop; a lookalike At method on
// an unrelated type roots nothing.
func TestCallGraphEngineRoots(t *testing.T) {
	pkg, err := NewLoader().LoadDir("testdata/src/pqueue", "powermanna/internal/pqueue", "internal/pqueue")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	g := BuildCallGraph(pkg)
	roots := map[string]bool{}
	for _, r := range g.HandlerRoots() {
		roots[r.Name] = true
	}
	for _, want := range []string{"ifaceHandler", "shardHandler", "postHandler", "drain"} {
		if !roots[want] {
			t.Errorf("%s is not a handler root; roots = %v", want, roots)
		}
	}
	if roots["notAHandler"] {
		t.Errorf("lookalike At callback notAHandler rooted; the matcher must check the receiver's package")
	}
	if len(roots) != 4 {
		t.Errorf("got %d roots (%v), want 4", len(roots), roots)
	}
}

// TestCallGraphReachability checks that queue edges are omitted: the
// scheduling function does not reach the handlers it schedules, while a
// handler reaches its callees.
func TestCallGraphReachability(t *testing.T) {
	g := BuildCallGraph(loadShardFixture(t))
	var setup *CGNode
	for _, n := range g.Nodes() {
		if n.Name == "setup" {
			setup = n
		}
	}
	if setup == nil {
		t.Fatal("no node named setup")
	}
	for _, n := range g.Reachable(setup) {
		if n.HandlerRoot {
			t.Errorf("setup reaches scheduled handler %s: the queue edge must be omitted", n.Name)
		}
	}
	root := g.HandlerRoots()[0]
	found := false
	for _, n := range g.Reachable(root) {
		if n.Name == "bump" {
			found = true
		}
	}
	if !found {
		t.Errorf("handler %s does not reach bump over call edges", root.Name)
	}
}

// TestCallGraphMutableVars checks the mutable package-state inventory:
// written vars in declaration order, read-only tables excluded.
func TestCallGraphMutableVars(t *testing.T) {
	g := BuildCallGraph(loadShardFixture(t))
	var names []string
	for _, v := range g.MutableVars() {
		names = append(names, v.Name())
	}
	if got, want := strings.Join(names, ","), "inflight,solo"; got != want {
		t.Errorf("MutableVars = %s, want %s", got, want)
	}
}

// TestCallGraphDeterministic pins the ordering contract: two builds of
// the same package produce identical node, edge and root sequences.
func TestCallGraphDeterministic(t *testing.T) {
	pkg := loadShardFixture(t)
	render := func(g *CallGraph) string {
		var b strings.Builder
		for _, n := range g.Nodes() {
			b.WriteString(n.Name)
			for _, c := range n.Calls() {
				b.WriteString(" ->" + c.Name)
			}
			if n.HandlerRoot {
				b.WriteString(" [root]")
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	a, b := render(BuildCallGraph(pkg)), render(BuildCallGraph(pkg))
	if a != b {
		t.Errorf("two builds differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "bump") {
		t.Errorf("graph misses bump:\n%s", a)
	}
}
