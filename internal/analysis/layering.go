package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// layeringHome is the one package allowed to touch the raw wormhole send:
// it owns the Transport that every software layer sends through.
const layeringHome = "internal/netsim"

// Layering enforces the unified messaging datapath: outside
// internal/netsim, nothing calls Network.Send directly. Raw sends bypass
// the failover protocol, the plane-down cache and the per-plane
// counters, so a layer using one silently opts its traffic out of every
// fault campaign. Sends go through a netsim.Transport (or
// Network.SendReliable); deliberate raw-datapath experiments carry a
// //pmlint:allow layering directive with a reason.
type Layering struct{}

// Name implements Analyzer.
func (Layering) Name() string { return "layering" }

// Doc implements Analyzer.
func (Layering) Doc() string {
	return "forbid direct netsim.Network.Send calls outside internal/netsim (use a Transport)"
}

// Check implements Analyzer.
func (Layering) Check(pkg *Package) []Diagnostic {
	if pkg.Rel == layeringHome {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "Send" {
				return true
			}
			if !isNetsimNetwork(fn) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "layering",
				Message: fmt.Sprintf("direct netsim.Network.Send call outside %s: "+
					"send through a Transport so the failover protocol and fault campaigns see the traffic", layeringHome),
			})
			return true
		})
	}
	return diags
}

// isNetsimNetwork reports whether fn is a method whose receiver is the
// Network type of the netsim package (matched by import-path suffix, so
// fixtures impersonating other module spots resolve the real type).
func isNetsimNetwork(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Network" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), layeringHome)
}
