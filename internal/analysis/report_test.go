package analysis

import (
	"os"
	"testing"
)

// TestReportMatchesGolden pins the shard-safety audit of this repository.
// The golden is the gate for the parallel simulation engine: a package may
// only change class here deliberately, with the golden regenerated via
//
//	go run ./cmd/pmlint --report ./... > internal/analysis/testdata/pmlint_report.golden
//
// and the diff reviewed in the same commit.
func TestReportMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short")
	}
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	got := RenderReport(AuditPackages(pkgs))
	want, err := os.ReadFile("testdata/pmlint_report.golden")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from testdata/pmlint_report.golden;\nregenerate with: go run ./cmd/pmlint --report ./...\ngot:\n%s", got)
	}
}

// TestReportDeterministic renders the audit twice from independent loads
// and requires byte-identical output: the report is pinned in CI, so any
// map-order or position nondeterminism would make the golden flaky.
func TestReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short")
	}
	render := func() string {
		pkgs, err := LoadModule(".")
		if err != nil {
			t.Fatalf("loading module: %v", err)
		}
		return RenderReport(AuditPackages(pkgs))
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("two renders differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestAuditClassification exercises the class ladder on the shard fixture,
// which has real sharedstate violations and mutable package state.
func TestAuditClassification(t *testing.T) {
	pkg := loadShardFixture(t)
	audits := AuditPackages([]*Package{pkg})
	if len(audits) != 1 {
		t.Fatalf("got %d audits, want 1", len(audits))
	}
	a := audits[0]
	if a.Class != "violations" {
		t.Errorf("shard fixture classified %q, want violations", a.Class)
	}
	if a.Roots != 5 {
		t.Errorf("shard fixture has %d roots, want 5", a.Roots)
	}
	if a.MutableVars == 0 {
		t.Errorf("shard fixture reports no mutable package vars")
	}
	if len(a.Violations) == 0 {
		t.Errorf("shard fixture reports no violations")
	}
}
