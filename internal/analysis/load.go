package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis. Only non-test files are loaded: tests may legitimately use
// wall clocks and ad-hoc randomness for harness purposes.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// ImportPath is the module-qualified import path.
	ImportPath string
	// Rel is the module-relative path ("" for the module root package,
	// "internal/sim", "examples/heat", ...). Analyzers use it for scoping.
	Rel string
	// Fset maps AST positions back to file coordinates.
	Fset *token.FileSet
	// Files holds the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the resolved type and object information.
	Info *types.Info
}

// Loader parses and type-checks packages of one module. A single Loader
// shares its file set and source importer across packages so common
// dependencies are checked once.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader backed by the stdlib source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir loads the single package in dir. importPath and rel label the
// package for reporting and analyzer scoping; they are passed explicitly
// so fixtures can impersonate any spot of the module tree.
func (l *Loader) LoadDir(dir, importPath, rel string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: importing %s: %w", dir, err)
	}
	var files []*ast.File
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Rel:        rel,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// ModuleRoot walks upward from dir to the enclosing go.mod and returns
// the module root directory and module path.
func ModuleRoot(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// PackageDirs lists every directory under root (inclusive) that contains
// buildable non-test Go files, skipping testdata, vendor, hidden and
// underscore-prefixed directories. Results are sorted and relative to
// root ("." for root itself).
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return err
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		dirs = append(dirs, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadModule loads every package of the module rooted at (or above) dir.
func LoadModule(dir string) ([]*Package, error) {
	root, modpath, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	rels, err := PackageDirs(root)
	if err != nil {
		return nil, err
	}
	l := NewLoader()
	var pkgs []*Package
	for _, rel := range rels {
		pkg, err := l.LoadPackage(root, modpath, rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadPackage loads one module package by its root-relative path ("." or
// "" for the root package itself).
func (l *Loader) LoadPackage(root, modpath, rel string) (*Package, error) {
	if rel == "." {
		rel = ""
	}
	ip := modpath
	if rel != "" {
		ip = modpath + "/" + rel
	}
	return l.LoadDir(filepath.Join(root, filepath.FromSlash(rel)), ip, rel)
}
