package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// simCorePackages are the single-threaded simulation-core packages in
// which any concurrency primitive breaks the event-ordering guarantee:
// the scheduler assumes exactly one goroutine mutates model state.
var simCorePackages = map[string]bool{
	"internal/sim":      true,
	"internal/cpu":      true,
	"internal/cache":    true,
	"internal/bus":      true,
	"internal/xbar":     true,
	"internal/netsim":   true,
	"internal/dispatch": true,
}

// randAllowed are the math/rand package-level functions that construct
// explicit generators rather than touching the global source.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Determinism enforces the simulator's determinism contract in
// internal/... and examples/...: results must be a pure function of the
// model and its configuration.
//
// It reports wall-clock reads (time.Now, time.Since, time.Until), uses of
// the global math/rand source (package-level funcs other than the
// explicit-generator constructors New/NewSource/NewZipf), iteration over
// maps whose loop body has order-dependent effects (writes to variables
// declared outside the loop, or fmt/stats output) without a later sort of
// the accumulated data, and — inside the single-threaded sim core — any
// goroutine launch or channel operation.
type Determinism struct{}

// Name implements Analyzer.
func (Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (Determinism) Doc() string {
	return "forbid wall clocks, global math/rand, unordered map iteration, and sim-core concurrency"
}

// Check implements Analyzer.
func (Determinism) Check(pkg *Package) []Diagnostic {
	if !strings.HasPrefix(pkg.Rel, "internal/") && !strings.HasPrefix(pkg.Rel, "examples/") {
		return nil
	}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "determinism",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	core := simCorePackages[pkg.Rel]
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pkg.Info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					switch obj.Name() {
					case "Now", "Since", "Until":
						report(n.Pos(), "wall-clock read time.%s: simulated results must not depend on host time (use sim.Time)", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					fn, isFunc := obj.(*types.Func)
					if !isFunc || randAllowed[obj.Name()] {
						return true
					}
					// Methods on an explicit *rand.Rand are the sanctioned
					// idiom; only package-level funcs touch the global source.
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
						report(n.Pos(), "global math/rand source via rand.%s: thread an explicit *rand.Rand seeded from config", obj.Name())
					}
				}
			case *ast.GoStmt:
				if core {
					report(n.Pos(), "goroutine launched in sim core package %s: the simulation core is single-threaded by contract", pkg.Rel)
				}
			case *ast.SendStmt:
				if core {
					report(n.Pos(), "channel send in sim core package %s: the simulation core is single-threaded by contract", pkg.Rel)
				}
			case *ast.UnaryExpr:
				if core && n.Op == token.ARROW {
					report(n.Pos(), "channel receive in sim core package %s: the simulation core is single-threaded by contract", pkg.Rel)
				}
			case *ast.SelectStmt:
				if core {
					report(n.Pos(), "select statement in sim core package %s: the simulation core is single-threaded by contract", pkg.Rel)
				}
			case *ast.CallExpr:
				if core {
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
						if t := pkg.Info.TypeOf(n.Args[0]); t != nil {
							if _, isChan := t.Underlying().(*types.Chan); isChan {
								report(n.Pos(), "channel created in sim core package %s: the simulation core is single-threaded by contract", pkg.Rel)
							}
						}
					}
				}
			}
			return true
		})
		diags = append(diags, checkMapRanges(pkg, f)...)
	}
	return diags
}

// checkMapRanges flags `for ... range m` over a map whose body writes to
// variables declared outside the loop or emits fmt/stats output, unless
// each accumulated variable is later passed to a sort call in the same
// function. Writes that index into a map are exempt (building a map from
// a map is order-independent).
func checkMapRanges(pkg *Package, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, body := range functionBodies(f) {
		forEachShallow(body, func(n ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pkg.Info.TypeOf(rs.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			written, output := mapRangeEffects(pkg, rs)
			if output != "" {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(rs.For),
					Analyzer: "determinism",
					Message: fmt.Sprintf("map iteration calls %s: map order is random per run; iterate sorted keys instead",
						output),
				})
				return
			}
			var unsorted []string
			for _, v := range written {
				if !sortedAfter(pkg, body, rs, v) {
					unsorted = append(unsorted, v.Name())
				}
			}
			if len(unsorted) > 0 {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(rs.For),
					Analyzer: "determinism",
					Message: fmt.Sprintf("map iteration accumulates into %s in map order: iterate sorted keys or sort the result afterwards",
						strings.Join(unsorted, ", ")),
				})
			}
		})
	}
	return diags
}

// functionBodies returns every function body in the file: declarations
// plus literals, each exactly once.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

// forEachShallow visits nodes under body without descending into nested
// function literals (their statements belong to the literal's own body).
func forEachShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil && n != body {
			fn(n)
		}
		return true
	})
}

// mapRangeEffects scans a map-range body for order-dependent effects. It
// returns the distinct outside-declared variables the body writes to, and
// a description of the first ordered-output call (fmt or internal/stats),
// if any.
func mapRangeEffects(pkg *Package, rs *ast.RangeStmt) (written []*types.Var, output string) {
	seen := map[*types.Var]bool{}
	addWrite := func(e ast.Expr) {
		// Writes through a map index are order-independent.
		if ix, ok := e.(*ast.IndexExpr); ok {
			if t := pkg.Info.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return
				}
			}
		}
		id := baseIdent(e)
		if id == nil || id.Name == "_" {
			return
		}
		obj, _ := pkg.Info.Uses[id].(*types.Var)
		if obj == nil {
			return
		}
		// Only variables declared outside the loop accumulate across
		// iterations.
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return
		}
		if !seen[obj] {
			seen[obj] = true
			written = append(written, obj)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				addWrite(lhs)
			}
		case *ast.IncDecStmt:
			addWrite(n.X)
		case *ast.CallExpr:
			if output == "" {
				if name := orderedOutputCall(pkg, n); name != "" {
					output = name
				}
			}
		}
		return true
	})
	return written, output
}

// orderedOutputCall reports a non-empty description if the call emits
// ordered output: anything from package fmt, or from the stats reporting
// package (tables and figures render rows in insertion order).
func orderedOutputCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if path == "fmt" || strings.HasSuffix(path, "/internal/stats") {
		short := path[strings.LastIndex(path, "/")+1:]
		return short + "." + obj.Name()
	}
	return ""
}

// sortedAfter reports whether v is passed to a sort-like call (callee
// name containing "sort", e.g. sort.Strings, slices.Sort, sortFloats)
// after the range statement within the same function body.
func sortedAfter(pkg *Package, body *ast.BlockStmt, rs *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		var callee string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = fun.Name
		case *ast.SelectorExpr:
			callee = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				callee = id.Name + "." + callee
			}
		}
		if !strings.Contains(strings.ToLower(callee), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pkg.Info.Uses[id] == v {
				found = true
			}
		}
		return true
	})
	return found
}

// baseIdent unwraps selectors, indexing and dereferences down to the
// root identifier of an assignable expression (x, x.f, x[i], *x, ...).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}
