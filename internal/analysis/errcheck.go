package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck is an errcheck-lite: it flags call statements that discard an
// error return. Silently dropped errors hide model misconfiguration (a
// route that failed to build, a malformed experiment ID) and turn what
// should be a loud failure into silently wrong tables.
//
// Scope is deliberately lite: only bare expression statements are
// flagged. Assigning to _ is an explicit, visible decision and is
// allowed; deferred calls are idiomatic teardown and are allowed.
// Calls into package fmt and writes to strings.Builder and bytes.Buffer
// (which are documented never to fail) are exempt.
type ErrCheck struct{}

// Name implements Analyzer.
func (ErrCheck) Name() string { return "errcheck" }

// Doc implements Analyzer.
func (ErrCheck) Doc() string {
	return "flag call statements that silently discard an error return"
}

// Check implements Analyzer.
func (ErrCheck) Check(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[call]
			if !ok || tv.Type == nil {
				return true
			}
			if !returnsError(tv.Type, errType) {
				return true
			}
			name, exempt := calleeName(pkg, call)
			if exempt {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "errcheck",
				Message:  fmt.Sprintf("error returned by %s is silently discarded: handle it or assign it to _ explicitly", name),
			})
			return true
		})
	}
	return diags
}

// returnsError reports whether a call result type contains an error:
// either the sole result or any element of the result tuple.
func returnsError(t types.Type, errType types.Type) bool {
	if types.Identical(t, errType) {
		return true
	}
	tuple, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tuple.Len(); i++ {
		if types.Identical(tuple.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// calleeName resolves a printable name for the called function and
// whether it is exempt from the check (package fmt, and the never-failing
// writers of strings.Builder / bytes.Buffer).
func calleeName(pkg *Package, call *ast.CallExpr) (name string, exempt bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	if obj == nil {
		return "call", false
	}
	name = obj.Name()
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	if fn, ok := obj.(*types.Func); ok {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			return name, true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			recv := sig.Recv().Type().String()
			if strings.Contains(recv, "strings.Builder") || strings.Contains(recv, "bytes.Buffer") {
				return name, true
			}
		}
	}
	return name, false
}
