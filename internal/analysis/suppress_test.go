package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSnippet type-checks one source file in a temp dir so the
// suppression scanner can be exercised on exact line layouts.
func loadSnippet(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "powermanna/internal/snip", "internal/snip")
	if err != nil {
		t.Fatalf("loading snippet: %v", err)
	}
	return pkg
}

func snippetKnown() map[string]bool {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name()] = true
	}
	return known
}

// pos builds the position allows() would receive for a diagnostic on the
// given 1-based line of the snippet.
func snippetPos(pkg *Package, line int) token.Position {
	return token.Position{Filename: filepath.Join(pkg.Dir, "p.go"), Line: line}
}

func TestAllowEndOfLine(t *testing.T) {
	pkg := loadSnippet(t, `package snip

var x int //pmlint:allow hotpath end-of-line form
`)
	set, diags := suppressions(pkg, snippetKnown())
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	if !set.allows("hotpath", snippetPos(pkg, 3)) {
		t.Errorf("end-of-line directive does not cover its own line")
	}
	if set.allows("hotpath", snippetPos(pkg, 5)) {
		t.Errorf("directive leaks two lines down")
	}
	if set.allows("sharedstate", snippetPos(pkg, 3)) {
		t.Errorf("directive covers an analyzer it does not name")
	}
}

func TestAllowLineAbove(t *testing.T) {
	pkg := loadSnippet(t, `package snip

//pmlint:allow hotpath line-above form
var x int
`)
	set, diags := suppressions(pkg, snippetKnown())
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	if !set.allows("hotpath", snippetPos(pkg, 4)) {
		t.Errorf("line-above directive does not cover the next line")
	}
}

func TestAllowStackedDirectives(t *testing.T) {
	pkg := loadSnippet(t, `package snip

//pmlint:allow hotpath first of a stacked pair
//pmlint:allow sharedstate second of a stacked pair
var x int
`)
	set, diags := suppressions(pkg, snippetKnown())
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	for _, name := range []string{"hotpath", "sharedstate"} {
		if !set.allows(name, snippetPos(pkg, 5)) {
			t.Errorf("stacked directive for %s does not cover the line below the run", name)
		}
	}
}

func TestAllowGapBreaksStack(t *testing.T) {
	pkg := loadSnippet(t, `package snip

//pmlint:allow hotpath stranded above a gap

var x int
`)
	set, diags := suppressions(pkg, snippetKnown())
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	if set.allows("hotpath", snippetPos(pkg, 5)) {
		t.Errorf("directive covers across a blank line; runs must be consecutive")
	}
}

func TestAllowUnknownAnalyzer(t *testing.T) {
	pkg := loadSnippet(t, `package snip

//pmlint:allow hotpaths typo in the analyzer name
var x int
`)
	set, diags := suppressions(pkg, snippetKnown())
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown analyzer hotpaths") {
		t.Fatalf("want one unknown-analyzer diagnostic, got %v", diags)
	}
	if set.allows("hotpath", snippetPos(pkg, 4)) {
		t.Errorf("misspelled directive still suppresses")
	}
}

func TestAllowMissingReason(t *testing.T) {
	pkg := loadSnippet(t, `package snip

//pmlint:allow hotpath
var x int
`)
	set, diags := suppressions(pkg, snippetKnown())
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "missing the mandatory reason") {
		t.Fatalf("want one missing-reason diagnostic, got %v", diags)
	}
	if set.allows("hotpath", snippetPos(pkg, 4)) {
		t.Errorf("reasonless directive still suppresses")
	}
}

func TestAllowMissingAnalyzer(t *testing.T) {
	pkg := loadSnippet(t, `package snip

//pmlint:allow
var x int
`)
	_, diags := suppressions(pkg, snippetKnown())
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "malformed directive") {
		t.Fatalf("want one malformed-directive diagnostic, got %v", diags)
	}
}

// TestHotpathDirectiveIsNotAllow pins that the //pmlint:hotpath marker is
// a separate directive family and never parsed as a malformed allow.
func TestHotpathDirectiveIsNotAllow(t *testing.T) {
	pkg := loadSnippet(t, `package snip

//pmlint:hotpath
func f() {}
`)
	set, diags := suppressions(pkg, snippetKnown())
	if len(diags) != 0 {
		t.Fatalf("//pmlint:hotpath reported as a bad allow directive: %v", diags)
	}
	if len(set) != 0 {
		t.Fatalf("//pmlint:hotpath recorded as a suppression: %v", set)
	}
}
