package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureCases maps each testdata/src fixture package to the
// module-relative path it impersonates, which controls analyzer scoping.
var fixtureCases = []struct {
	dir string
	rel string
}{
	{"det_time", "internal/det_time"},
	{"det_rand", "internal/det_rand"},
	{"det_maprange", "internal/det_maprange"},
	{"det_core", "internal/sim"},
	{"cycle", "internal/cycle"},
	{"errs", "internal/errs"},
	{"doc", "internal/doc"},
	{"allow", "internal/allow"},
	{"scope", "cmd/scope"},
	{"layering", "internal/layering"},
	{"shard", "internal/shard"},
	{"order", "internal/order"},
	{"tflow", "internal/tflow"},
	{"hot", "internal/hot"},
}

// TestFixtures checks every analyzer against the fixture packages: each
// diagnostic must be announced by a `// want` comment on its line, and
// each want must be matched by a diagnostic.
func TestFixtures(t *testing.T) {
	loader := NewLoader()
	for _, c := range fixtureCases {
		t.Run(c.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", c.dir)
			pkg, err := loader.LoadDir(dir, "powermanna/"+c.rel, c.rel)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			diags := Run([]*Package{pkg}, All())
			checkExpectations(t, pkg, diags)
		})
	}
}

// expectation is one `// want` pattern with a match flag.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkExpectations compares diagnostics against the fixture's want
// comments, line by line.
func checkExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[string]map[int][]*expectation{} // file -> line -> wants
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if wants[pos.Filename] == nil {
					wants[pos.Filename] = map[int][]*expectation{}
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{re: re, raw: p})
				}
			}
		}
	}
	for _, d := range diags {
		found := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: want %q matched no diagnostic", file, line, w.raw)
				}
			}
		}
	}
}

// parseWant extracts the backquoted or double-quoted patterns of a
// `// want` comment. It reports ok=false for ordinary comments.
func parseWant(comment string) ([]string, bool) {
	idx := strings.Index(comment, "// want ")
	if idx < 0 {
		return nil, false
	}
	rest := comment[idx+len("// want "):]
	var patterns []string
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		switch rest[0] {
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				return patterns, len(patterns) > 0
			}
			patterns = append(patterns, rest[1:1+end])
			rest = rest[end+2:]
		case '"':
			var s string
			var err error
			// Find the closing quote respecting escapes via Unquote on
			// growing prefixes.
			closing := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '"' && rest[i-1] != '\\' {
					closing = i
					break
				}
			}
			if closing < 0 {
				return patterns, len(patterns) > 0
			}
			s, err = strconv.Unquote(rest[:closing+1])
			if err != nil {
				return patterns, len(patterns) > 0
			}
			patterns = append(patterns, s)
			rest = rest[closing+1:]
		default:
			return patterns, len(patterns) > 0
		}
	}
	return patterns, len(patterns) > 0
}

// TestRepositoryIsClean runs the full suite over this repository itself:
// any new violation of the determinism contract fails tier-1 tests, not
// just the optional pmlint run.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short")
	}
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module walk looks broken", len(pkgs))
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("the determinism contract is documented in DESIGN.md; suppress only with //pmlint:allow <analyzer> <reason>")
	}
}

// TestSuiteNames pins the analyzer names the allow directive refers to.
func TestSuiteNames(t *testing.T) {
	want := []string{"determinism", "cycleaccount", "errcheck", "docexport", "layering", "sharedstate", "purity", "timeflow", "hotpath"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name() != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name(), want[i])
		}
		if a.Doc() == "" {
			t.Errorf("analyzer %q has no doc", a.Name())
		}
		if got, ok := ByName(want[i]); !ok || got.Name() != want[i] {
			t.Errorf("ByName(%q) failed", want[i])
		}
	}
}

// TestDiagnosticString pins the machine-readable report format.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", Message: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: determinism: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestModuleRoot checks go.mod discovery from a nested directory.
func TestModuleRoot(t *testing.T) {
	root, modpath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if modpath != "powermanna" {
		t.Errorf("module path = %q, want powermanna", modpath)
	}
	if filepath.Base(root) == "analysis" {
		t.Errorf("root %q should be the module root, not the package dir", root)
	}
}

// TestInjectedViolationIsCaught rebuilds the acceptance scenario of the
// contract: introducing a wall-clock read into a sim-core package must
// produce a determinism diagnostic.
func TestInjectedViolationIsCaught(t *testing.T) {
	dir := t.TempDir()
	src := `package netsim

import "time"

func stamp() time.Time { return time.Now() }

func launch(ch chan int) { go func() { ch <- 1 }() }
`
	if err := writeFile(filepath.Join(dir, "netsim.go"), src); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "powermanna/internal/netsim", "internal/netsim")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, All())
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"wall-clock read time.Now", "goroutine launched in sim core", "channel send in sim core"} {
		if !strings.Contains(joined, want) {
			t.Errorf("injected violation not caught: want %q in:\n%s", want, joined)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
