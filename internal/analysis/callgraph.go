package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the reachability engine behind the shard-safety analyzer
// family (sharedstate, purity, timeflow) and the pmlint --report audit.
// It builds a per-package static call graph whose distinguished roots are
// the sim event-handler entry points: every function or function literal
// scheduled through a sim event queue — internal/sim's Scheduler.At /
// After (directly or via the sim.Engine interface), internal/psim's
// per-shard At / After and cross-shard Engine.Post — plus any declared
// function carrying the //pmlint:root directive.
// The edge from the scheduling site to the scheduled callback is
// deliberately *not* in the graph — crossing the event queue is the one
// sanctioned way for state to flow between handlers, so reachability
// from a root describes exactly what that handler can touch without
// queue mediation.

// rootDirective marks a declared function as an event-handler entry
// point the schedule-site matcher cannot see. The parallel engine's
// per-shard worker loop is the motivating case: it drains its shard's
// queue directly inside a barrier round rather than being passed to
// At/After, yet everything it calls runs in event-handler context and
// must obey the same shard-safety rules. Usage, in the doc group:
//
//	//pmlint:root
const rootDirective = "//pmlint:root"

// hasRootDirective reports whether the function's doc group carries the
// //pmlint:root directive.
func hasRootDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == rootDirective {
			return true
		}
	}
	return false
}

// CGNode is one function in a package's call graph: a declared function
// or method, or a function literal.
type CGNode struct {
	// Fn is the declared function or method (nil for a literal).
	Fn *types.Func
	// Lit is the function literal (nil for a declaration).
	Lit *ast.FuncLit
	// Name is a stable human-readable label: "F", "(T).M" or
	// "func@file.go:12".
	Name string
	// Pos locates the function for diagnostics and ordering.
	Pos token.Position
	// HandlerRoot marks a function scheduled through the sim event queue.
	HandlerRoot bool

	// calls are the outgoing static edges, deduplicated, in source order.
	calls []*CGNode
	// reads and writes are the package-level variables the body touches
	// directly (not via callees), each deduplicated in source order.
	reads, writes []*VarAccess
	// captures are, for a literal, the non-package-level variables the
	// body references but does not declare (free variables).
	captures []*VarAccess
}

// VarAccess is one variable access recorded on a call-graph node.
type VarAccess struct {
	// Var is the accessed variable.
	Var *types.Var
	// Written marks a store (assignment, ++/--, or address taken).
	Written bool
	// Pos locates the first access.
	Pos token.Position
}

// Calls returns the node's outgoing edges in source order.
func (n *CGNode) Calls() []*CGNode { return n.calls }

// Reads returns the package-level variables the body reads directly.
func (n *CGNode) Reads() []*VarAccess { return n.reads }

// Writes returns the package-level variables the body writes directly.
func (n *CGNode) Writes() []*VarAccess { return n.writes }

// Captures returns, for a literal, its free (captured) variables.
func (n *CGNode) Captures() []*VarAccess { return n.captures }

// CallGraph is the static call graph of one package.
type CallGraph struct {
	pkg   *Package
	nodes []*CGNode // position order
	byFn  map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode
}

// Nodes returns every function of the package in source-position order.
func (g *CallGraph) Nodes() []*CGNode { return g.nodes }

// HandlerRoots returns the event-handler entry points in source order:
// everything scheduled through internal/sim's queue.
func (g *CallGraph) HandlerRoots() []*CGNode {
	var roots []*CGNode
	for _, n := range g.nodes {
		if n.HandlerRoot {
			roots = append(roots, n)
		}
	}
	return roots
}

// Reachable returns root plus every node reachable from it over call
// edges (the event queue is not an edge), in source-position order.
func (g *CallGraph) Reachable(root *CGNode) []*CGNode {
	seen := map[*CGNode]bool{root: true}
	stack := []*CGNode{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.calls {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	var out []*CGNode
	for _, n := range g.nodes {
		if seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// MutableVars returns the package-level variables written anywhere in
// the package's non-test code, sorted by declaration position. Variables
// only ever read (lookup tables, interface-compliance assertions) are
// not state the shard refactor has to mediate.
func (g *CallGraph) MutableVars() []*types.Var {
	seen := map[*types.Var]bool{}
	var vars []*types.Var
	for _, n := range g.nodes {
		for _, w := range n.writes {
			if !seen[w.Var] {
				seen[w.Var] = true
				vars = append(vars, w.Var)
			}
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	return vars
}

// BuildCallGraph constructs the package's call graph. The result is
// deterministic: node order, edge order and access order all follow
// source position.
func BuildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		pkg:   pkg,
		byFn:  map[*types.Func]*CGNode{},
		byLit: map[*ast.FuncLit]*CGNode{},
	}
	// Pass 1: one node per function declaration and literal.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.Info.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				node := &CGNode{Fn: fn, Name: declName(n), Pos: pkg.Fset.Position(n.Pos())}
				node.HandlerRoot = hasRootDirective(n)
				g.byFn[fn] = node
				g.nodes = append(g.nodes, node)
			case *ast.FuncLit:
				pos := pkg.Fset.Position(n.Pos())
				node := &CGNode{
					Lit:  n,
					Name: fmt.Sprintf("func@%s:%d", filepath.Base(pos.Filename), pos.Line),
					Pos:  pos,
				}
				g.byLit[n] = node
				g.nodes = append(g.nodes, node)
			}
			return true
		})
	}
	sort.Slice(g.nodes, func(i, j int) bool { return less(g.nodes[i].Pos, g.nodes[j].Pos) })
	// Pass 2: edges, roots and variable accesses, one shallow body walk
	// per node.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if node := g.byFn[pkg.Info.Defs[fd.Name].(*types.Func)]; node != nil {
				g.walkBody(node, fd.Body)
			}
		}
	}
	return g
}

// less orders two positions file-then-offset.
func less(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Offset < b.Offset
}

// declName labels a function declaration: "F" or "(T).M".
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return d.Name.Name
	}
	return "(" + receiverTypeName(d.Recv) + ")." + d.Name.Name
}

// walkBody records node's edges and accesses from body, attributing each
// nested literal's body to the literal's own node (recursively).
func (g *CallGraph) walkBody(node *CGNode, body *ast.BlockStmt) {
	pkg := g.pkg
	// queued collects callback arguments of schedule calls seen in this
	// body: the edge to them crosses the event queue and is omitted.
	queuedLits := map[*ast.FuncLit]bool{}
	queuedIdents := map[*ast.Ident]bool{}
	// writes collects identifiers in store position.
	writeIdents := map[*ast.Ident]bool{}
	markWrite := func(e ast.Expr) {
		if id := baseIdent(e); id != nil {
			writeIdents[id] = true
		}
	}
	addEdge := func(callee *CGNode) {
		for _, c := range node.calls {
			if c == callee {
				return
			}
		}
		node.calls = append(node.calls, callee)
	}
	addAccess := func(list *[]*VarAccess, v *types.Var, written bool, pos token.Pos) {
		for _, a := range *list {
			if a.Var == v {
				return
			}
		}
		*list = append(*list, &VarAccess{Var: v, Written: written, Pos: pkg.Fset.Position(pos)})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := g.byLit[n]
			if lit == nil {
				return false
			}
			if !queuedLits[n] {
				// The enclosing function may invoke or pass the literal;
				// scheduled literals are reachable only through the queue.
				addEdge(lit)
			}
			g.walkBody(lit, n.Body)
			g.collectCaptures(lit, n)
			return false
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					markWrite(lhs)
				}
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markWrite(n.X)
			}
		case *ast.CallExpr:
			if cb := scheduleCallback(pkg, n); cb != nil {
				switch cb := cb.(type) {
				case *ast.FuncLit:
					queuedLits[cb] = true
					if root := g.byLit[cb]; root != nil {
						root.HandlerRoot = true
					}
				case *ast.Ident:
					queuedIdents[cb] = true
					if fn, ok := pkg.Info.Uses[cb].(*types.Func); ok {
						if root := g.byFn[fn]; root != nil {
							root.HandlerRoot = true
						}
					}
				case *ast.SelectorExpr:
					queuedIdents[cb.Sel] = true
					if fn, ok := pkg.Info.Uses[cb.Sel].(*types.Func); ok {
						if root := g.byFn[fn]; root != nil {
							root.HandlerRoot = true
						}
					}
				}
			}
		case *ast.Ident:
			obj := pkg.Info.Uses[n]
			switch obj := obj.(type) {
			case *types.Func:
				// Any reference to an in-package function — call position
				// or function value — is a potential invocation, except
				// through the event queue.
				if callee := g.byFn[obj]; callee != nil && !queuedIdents[n] {
					addEdge(callee)
				}
			case *types.Var:
				if obj.Parent() == pkg.Types.Scope() {
					if writeIdents[n] {
						addAccess(&node.writes, obj, true, n.Pos())
					} else {
						addAccess(&node.reads, obj, false, n.Pos())
					}
				}
			}
		}
		return true
	})
}

// collectCaptures records the literal's free variables: identifiers that
// resolve to a variable declared outside the literal that is neither
// package-level nor a struct field.
func (g *CallGraph) collectCaptures(node *CGNode, lit *ast.FuncLit) {
	pkg := g.pkg
	written := map[*ast.Ident]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					if id := baseIdent(lhs); id != nil {
						written[id] = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id := baseIdent(n.X); id != nil {
				written[id] = true
			}
		}
		return true
	})
	seen := map[*types.Var]*VarAccess{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Parent() == pkg.Types.Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if a := seen[v]; a != nil {
			a.Written = a.Written || written[id]
			return true
		}
		a := &VarAccess{Var: v, Written: written[id], Pos: pkg.Fset.Position(id.Pos())}
		seen[v] = a
		node.captures = append(node.captures, a)
		return true
	})
}

// scheduleQueues lists the event-queue owners whose At / After / Post
// methods enqueue work: the sequential scheduler and the Engine
// interface it satisfies in internal/sim, and the parallel engine's
// shard plus its cross-shard mailbox in internal/psim.
var scheduleQueues = []struct {
	pkgSuffix string
	typeName  string
}{
	{"internal/sim", "Scheduler"},
	{"internal/sim", "Engine"},
	{"internal/psim", "Shard"},
	{"internal/psim", "Engine"},
}

// scheduleCallback returns the callback argument of a call that enqueues
// work on a sim event queue (Scheduler/Engine/Shard At and After, plus
// the parallel engine's cross-shard Post), or nil for any other call.
// The callback is the final func() argument.
func scheduleCallback(pkg *Package, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || (fn.Name() != "At" && fn.Name() != "After" && fn.Name() != "Post") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	queue := false
	for _, q := range scheduleQueues {
		if obj.Name() == q.typeName && strings.HasSuffix(obj.Pkg().Path(), q.pkgSuffix) {
			queue = true
		}
	}
	if !queue {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	return call.Args[len(call.Args)-1]
}
