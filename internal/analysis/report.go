package analysis

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// This file renders the shard-safety audit behind `pmlint --report`: a
// deterministic classification of every internal/ package against the
// requirements of the parallel (conservative-PDES) engine. The report is
// golden-pinned in ci.sh (testdata/pmlint_report.golden), so it doubles
// as the literal work-list for the PDES refactor: a package may only
// move from clean to needs-queue-mediation or violations through a
// reviewed golden update.

// shardAnalyzers is the shard-safety family the audit runs.
func shardAnalyzers() []Analyzer {
	return []Analyzer{SharedState{}, Purity{}, Timeflow{}, Hotpath{}}
}

// PackageAudit is the shard-safety classification of one internal/
// package.
type PackageAudit struct {
	// Rel is the module-relative import path (e.g. "internal/sim").
	Rel string
	// Class is "clean", "needs-queue-mediation" or "violations".
	Class string
	// Roots counts event-handler entry points (callbacks scheduled
	// through internal/sim's queue).
	Roots int
	// MutableVars counts package-level variables written somewhere in the
	// package: the state inventory the PDES refactor must queue-mediate
	// or localize.
	MutableVars int
	// HotpathFuncs counts //pmlint:hotpath-annotated functions.
	HotpathFuncs int
	// Allowed counts shard-safety diagnostics suppressed by an audited
	// //pmlint:allow directive.
	Allowed int
	// Violations are the unsuppressed shard-safety diagnostics, with
	// module-relative file paths.
	Violations []Diagnostic
}

// AuditPackages classifies every internal/ package in pkgs for shard
// safety. The result is deterministic: packages sort by Rel, violations
// by position, and all paths are module-relative.
func AuditPackages(pkgs []*Package) []PackageAudit {
	family := shardAnalyzers()
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name()] = true
	}
	var audits []PackageAudit
	for _, pkg := range pkgs {
		if !strings.HasPrefix(pkg.Rel, "internal/") {
			continue
		}
		a := PackageAudit{Rel: pkg.Rel}
		g := BuildCallGraph(pkg)
		a.Roots = len(g.HandlerRoots())
		a.MutableVars = len(g.MutableVars())
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && hasHotpathDirective(fd) {
					a.HotpathFuncs++
				}
			}
		}
		sup, _ := suppressions(pkg, known)
		for _, an := range family {
			for _, d := range an.Check(pkg) {
				if sup.allows(an.Name(), d.Pos) {
					a.Allowed++
					continue
				}
				d.Pos.Filename = pkg.Rel + "/" + filepath.Base(d.Pos.Filename)
				a.Violations = append(a.Violations, d)
			}
		}
		sort.Slice(a.Violations, func(i, j int) bool {
			x, y := a.Violations[i], a.Violations[j]
			if x.Pos.Filename != y.Pos.Filename {
				return x.Pos.Filename < y.Pos.Filename
			}
			if x.Pos.Line != y.Pos.Line {
				return x.Pos.Line < y.Pos.Line
			}
			return x.Message < y.Message
		})
		switch {
		case len(a.Violations) > 0:
			a.Class = "violations"
		case a.MutableVars > 0:
			a.Class = "needs-queue-mediation"
		default:
			a.Class = "clean"
		}
		audits = append(audits, a)
	}
	sort.Slice(audits, func(i, j int) bool { return audits[i].Rel < audits[j].Rel })
	return audits
}

// RenderReport renders the audit as the stable text format pinned by
// testdata/pmlint_report.golden.
func RenderReport(audits []PackageAudit) string {
	var b strings.Builder
	b.WriteString("pmlint shard-safety audit\n")
	b.WriteString("analyzers: sharedstate purity timeflow hotpath\n")
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s %-22s %6s %8s %8s %8s\n",
		"package", "class", "roots", "mutable", "hotpath", "allowed")
	total := map[string]int{}
	for _, a := range audits {
		fmt.Fprintf(&b, "%-28s %-22s %6d %8d %8d %8d\n",
			a.Rel, a.Class, a.Roots, a.MutableVars, a.HotpathFuncs, a.Allowed)
		total[a.Class]++
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "packages: %d clean, %d needs-queue-mediation, %d violations\n",
		total["clean"], total["needs-queue-mediation"], total["violations"])
	var violations []Diagnostic
	for _, a := range audits {
		violations = append(violations, a.Violations...)
	}
	if len(violations) == 0 {
		b.WriteString("violations: none\n")
	} else {
		b.WriteString("violations:\n")
		for _, d := range violations {
			fmt.Fprintf(&b, "  %s\n", d.String())
		}
	}
	return b.String()
}
