package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// DocExport requires a doc comment on every exported identifier in
// internal packages: the internal API is the contract between the model
// layers, and the doc comment is where a parameter's correspondence to
// the paper (a table entry, a section, a measured constant) is recorded.
//
// Convention follows go/doc: a function, method or type needs its own doc
// comment; names in a const/var/type group are covered by either a
// per-spec comment or the group's comment.
type DocExport struct{}

// Name implements Analyzer.
func (DocExport) Name() string { return "docexport" }

// Doc implements Analyzer.
func (DocExport) Doc() string {
	return "require doc comments on exported identifiers in internal packages"
}

// Check implements Analyzer.
func (DocExport) Check(pkg *Package) []Diagnostic {
	if !strings.HasPrefix(pkg.Rel, "internal/") {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "docexport",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil || !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					recv := receiverTypeName(d.Recv)
					if !ast.IsExported(recv) {
						continue
					}
					report(d.Name, "exported method (%s).%s is missing a doc comment", recv, d.Name.Name)
				} else {
					report(d.Name, "exported function %s is missing a doc comment", d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() || s.Doc != nil || d.Doc != nil {
							continue
						}
						report(s.Name, "exported type %s is missing a doc comment", s.Name.Name)
					case *ast.ValueSpec:
						if s.Doc != nil || d.Doc != nil {
							continue
						}
						for _, name := range s.Names {
							if name.IsExported() {
								report(name, "exported %s %s is missing a doc comment", d.Tok, name.Name)
								break
							}
						}
					}
				}
			}
		}
	}
	return diags
}

// receiverTypeName extracts the receiver's base type name ("" if odd).
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
