package analysis

import (
	"fmt"
	"strings"
)

// SharedState is the first shard-safety analyzer: it proves (or
// disproves) that the package's event handlers share no mutable state
// outside the event queue. The parallel (conservative-PDES) engine the
// ROADMAP targets runs handler roots on different shards; any state two
// roots can reach off the queue is a data race there and a hidden
// ordering dependency already in the sequential engine.
//
// It reports:
//
//   - a package-level variable that is written somewhere in the package
//     and reachable (over the static call graph, which excludes queue
//     edges) from two or more event-handler roots, with at least one
//     reachable write;
//   - a local variable captured by two or more scheduled handler
//     literals where at least one of them writes it (captured loop or
//     setup state smuggled between handlers).
type SharedState struct{}

// Name implements Analyzer.
func (SharedState) Name() string { return "sharedstate" }

// Doc implements Analyzer.
func (SharedState) Doc() string {
	return "forbid mutable state reachable from two event-handler roots without queue mediation"
}

// Check implements Analyzer.
func (SharedState) Check(pkg *Package) []Diagnostic {
	if !strings.HasPrefix(pkg.Rel, "internal/") {
		return nil
	}
	g := BuildCallGraph(pkg)
	roots := g.HandlerRoots()
	if len(roots) < 2 {
		// One handler (or none) cannot share state with another; the
		// package is trivially shard-safe today.
		return nil
	}
	var diags []Diagnostic
	diags = append(diags, sharedPackageVars(pkg, g, roots)...)
	diags = append(diags, sharedCaptures(roots)...)
	return diags
}

// sharedPackageVars flags package-level mutable variables reachable from
// two or more handler roots. The diagnostic lands on the variable's
// first reachable access so a //pmlint:allow can sit next to the code
// that shares the state.
func sharedPackageVars(pkg *Package, g *CallGraph, roots []*CGNode) []Diagnostic {
	// Accesses of the same variable from different nodes are distinct
	// *VarAccess values, so aggregate per *types.Var.
	type varInfo struct {
		first   *VarAccess
		roots   []*CGNode
		written bool
	}
	infos := map[interface{}]*varInfo{}
	var order []interface{}
	for _, root := range roots {
		for _, n := range g.Reachable(root) {
			accesses := make([]*VarAccess, 0, len(n.Reads())+len(n.Writes()))
			accesses = append(accesses, n.Reads()...)
			accesses = append(accesses, n.Writes()...)
			for _, a := range accesses {
				info := infos[a.Var]
				if info == nil {
					info = &varInfo{first: a}
					infos[a.Var] = info
					order = append(order, a.Var)
				}
				if less(a.Pos, info.first.Pos) {
					info.first = a
				}
				info.written = info.written || a.Written
				if len(info.roots) == 0 || info.roots[len(info.roots)-1] != root {
					info.roots = append(info.roots, root)
				}
			}
		}
	}
	var diags []Diagnostic
	for _, key := range order {
		info := infos[key]
		if len(info.roots) < 2 || !info.written {
			continue
		}
		names := make([]string, 0, len(info.roots))
		for _, r := range info.roots {
			names = append(names, r.Name)
		}
		diags = append(diags, Diagnostic{
			Pos:      info.first.Pos,
			Analyzer: "sharedstate",
			Message: fmt.Sprintf(
				"package-level var %s is mutable and reachable from %d event-handler roots (%s) without queue mediation: shard-unsafe shared state; route it through the event queue or make it handler-local",
				info.first.Var.Name(), len(info.roots), strings.Join(names, ", ")),
		})
	}
	return diags
}

// sharedCaptures flags a local variable captured by two or more handler
// literals with at least one captured write: loop or setup state the
// handlers would race on once sharded.
func sharedCaptures(roots []*CGNode) []Diagnostic {
	type capInfo struct {
		first   *VarAccess
		roots   []*CGNode
		written bool
	}
	infos := map[interface{}]*capInfo{}
	var order []interface{}
	for _, root := range roots {
		if root.Lit == nil {
			continue
		}
		for _, a := range root.Captures() {
			info := infos[a.Var]
			if info == nil {
				info = &capInfo{first: a}
				infos[a.Var] = info
				order = append(order, a.Var)
			}
			if less(a.Pos, info.first.Pos) {
				info.first = a
			}
			info.written = info.written || a.Written
			info.roots = append(info.roots, root)
		}
	}
	var diags []Diagnostic
	for _, key := range order {
		info := infos[key]
		if len(info.roots) < 2 || !info.written {
			continue
		}
		names := make([]string, 0, len(info.roots))
		for _, r := range info.roots {
			names = append(names, r.Name)
		}
		diags = append(diags, Diagnostic{
			Pos:      info.first.Pos,
			Analyzer: "sharedstate",
			Message: fmt.Sprintf(
				"local %s is captured and written by %d scheduled handlers (%s): handler state must cross shards through the event queue, not a shared closure",
				info.first.Var.Name(), len(info.roots), strings.Join(names, ", ")),
		})
	}
	return diags
}
