package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function as part of the per-message send path,
// opting it into the allocation lint. Like all Go directives it uses the
// no-space comment form and is excluded from godoc.
const hotpathDirective = "//pmlint:hotpath"

// Hotpath is the fourth shard-safety analyzer: an annotation-driven
// allocation lint backing the 9-allocs/op send budget statically. A
// function whose doc group carries //pmlint:hotpath is checked for the
// three allocation sources that have historically crept into the send
// path:
//
//   - interface boxing — a concrete value passed, assigned or returned
//     as an interface allocates (one diagnostic per call/statement,
//     counting the boxed operands, so a single //pmlint:allow covers a
//     cold guard like panic(fmt.Sprintf(...)));
//   - map iteration — hides a runtime hash-iterator allocation and is
//     order-random besides;
//   - capturing closures — a func literal that captures outer variables
//     allocates the closure and moves the captures to the heap.
type Hotpath struct{}

// Name implements Analyzer.
func (Hotpath) Name() string { return "hotpath" }

// Doc implements Analyzer.
func (Hotpath) Doc() string {
	return "flag interface boxing, map iteration and capturing closures in //pmlint:hotpath functions"
}

// Check implements Analyzer.
func (Hotpath) Check(pkg *Package) []Diagnostic {
	if !strings.HasPrefix(pkg.Rel, "internal/") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDirective(fd) {
				continue
			}
			diags = append(diags, checkHotpath(pkg, fd)...)
		}
	}
	return diags
}

// hasHotpathDirective reports whether the function's doc group carries
// the //pmlint:hotpath directive.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// checkHotpath walks one annotated function body.
func checkHotpath(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	name := declName(fd)
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...interface{}) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "hotpath",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	var results *types.Tuple
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if boxed := boxedArgs(pkg, n); boxed > 0 {
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(n.Pos()),
					Analyzer: "hotpath",
					Message: fmt.Sprintf(
						"hot path %s: call boxes %d concrete value(s) into interface parameters (allocates per message; counts against the 9-allocs/op send budget)",
						name, boxed),
				})
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(n.For, "hot path %s: map iteration allocates a hash iterator and is order-random; index a slice instead", name)
				}
			}
		case *ast.FuncLit:
			if captures := litCaptureCount(pkg, n); captures > 0 {
				report(n.Pos(), "hot path %s: closure captures %d outer variable(s), allocating the closure and moving captures to the heap; pass state explicitly", name, captures)
				return false // don't double-report the closure's own body
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			boxed := 0
			for i := range n.Lhs {
				if boxesInto(pkg, pkg.Info.TypeOf(n.Lhs[i]), n.Rhs[i]) {
					boxed++
				}
			}
			if boxed > 0 {
				report(n.Pos(), "hot path %s: assignment boxes %d concrete value(s) into interface variables (allocates per message)", name, boxed)
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, s := range gd.Specs {
				spec, ok := s.(*ast.ValueSpec)
				if !ok || spec.Type == nil {
					continue // no explicit type: the var adopts the value's type, no boxing
				}
				dst := pkg.Info.TypeOf(spec.Type)
				boxed := 0
				for _, v := range spec.Values {
					if boxesInto(pkg, dst, v) {
						boxed++
					}
				}
				if boxed > 0 {
					report(spec.Pos(), "hot path %s: var declaration boxes %d concrete value(s) into interface variables (allocates per message)", name, boxed)
				}
			}
		case *ast.ReturnStmt:
			if results == nil || len(n.Results) != results.Len() {
				return true
			}
			boxed := 0
			for i, r := range n.Results {
				if boxesInto(pkg, results.At(i).Type(), r) {
					boxed++
				}
			}
			if boxed > 0 {
				report(n.Pos(), "hot path %s: return boxes %d concrete value(s) into interface results (allocates per message)", name, boxed)
			}
		}
		return true
	})
	return diags
}

// boxedArgs counts the call's arguments converted from a concrete type
// into an interface parameter (each such conversion allocates). Built-in
// calls and conversions have no *types.Signature and count zero.
func boxedArgs(pkg *Package, call *ast.CallExpr) int {
	t := pkg.Info.TypeOf(call.Fun)
	if t == nil {
		return 0
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return 0
	}
	params := sig.Params()
	if params.Len() == 0 {
		return 0
	}
	boxed := 0
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxesInto(pkg, pt, arg) {
			boxed++
		}
	}
	return boxed
}

// boxesInto reports whether expression e of concrete type would be boxed
// when assigned to target type dst. Untyped nil, interface-to-interface
// assignments and pointer-shaped values (pointers, channels, maps,
// funcs — stored directly in the interface word) do not allocate.
func boxesInto(pkg *Package, dst types.Type, e ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

// litCaptureCount counts the outer variables a func literal captures:
// identifiers resolving to variables declared outside the literal that
// are neither package-level nor struct fields.
func litCaptureCount(pkg *Package, lit *ast.FuncLit) int {
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == pkg.Types.Scope() {
			return true // package-level, not a capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		seen[v] = true
		return true
	})
	return len(seen)
}
