// Package nic is a mechanistic model of the communication path the paper
// argues *against*: a network interface controller on the I/O bus, as in
// Myrinet clusters (Section 6: "Messages have to be additionally
// transferred between the processor and the NI which can be performed
// either via DMA or PIO, but in any case involves extra setup cost.
// Transfers from NI to NI always require setting up a DMA unit because of
// the slow copying performance of the NI processor").
//
// Where internal/comm's BIP/FM baselines are parametric encodings of
// published end-to-end numbers, this package builds the same path from
// its parts — host driver, doorbell write across PCI, DMA descriptor
// setup, the NIC's embedded processor, the wire, and the receive-side
// mirror — so the latency budget can be decomposed stage by stage and
// compared against PowerMANNA's CPU-driven interface. That the assembled
// mechanism lands on the same end-to-end numbers as the published BIP
// measurements is the model's cross-validation (see the tests).
package nic

import (
	"fmt"

	"powermanna/internal/sim"
)

// Config describes a PCI-attached NIC path (era: Myrinet LANai behind
// 32-bit/33 MHz PCI on a 200 MHz Pentium Pro host).
type Config struct {
	// Name labels the model.
	Name string
	// HostClock is the host CPU clock.
	HostClock sim.Clock
	// DriverSendCycles is the user-level send path on the host up to the
	// doorbell: argument checks, descriptor build, pinned-page lookup.
	DriverSendCycles int64
	// DriverRecvCycles is the receive path after data landed in host
	// memory: completion check, return to user.
	DriverRecvCycles int64
	// DoorbellNs is one uncached write crossing the PCI bridge.
	DoorbellNs sim.Time
	// DMASetupNs is the NIC-side cost to parse a descriptor and start a
	// DMA engine.
	DMASetupNs sim.Time
	// PCIBandwidth is the sustained PCI transfer rate (32-bit/33 MHz:
	// 132 MB/s theoretical, ~110 effective).
	PCIBandwidth float64
	// NICProcNs is the embedded processor's per-message work on each
	// side (header build/parse, route lookup) — the "slow copying
	// performance of the NI processor" made polite.
	NICProcNs sim.Time
	// WireBandwidth is the link rate (Myrinet: fast enough that PCI is
	// the real ceiling).
	WireBandwidth float64
	// WireLatencyNs is the switch+cable flight time.
	WireLatencyNs sim.Time
	// HostPollNs is the receiver's average completion-detection delay.
	HostPollNs sim.Time
	// PIOThresholdBytes: below this the driver copies by PIO (cheaper
	// than DMA setup for tiny messages); above it both sides run DMA.
	PIOThresholdBytes int
	// PIOWordNs is one PIO word (4 bytes) across PCI.
	PIOWordNs sim.Time
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.HostClock.Period <= 0:
		return fmt.Errorf("nic %q: zero host clock", c.Name)
	case c.PCIBandwidth <= 0 || c.WireBandwidth <= 0:
		return fmt.Errorf("nic %q: non-positive bandwidth", c.Name)
	case c.DriverSendCycles < 0 || c.DriverRecvCycles < 0:
		return fmt.Errorf("nic %q: negative driver cost", c.Name)
	case c.PIOThresholdBytes < 0:
		return fmt.Errorf("nic %q: negative PIO threshold", c.Name)
	}
	return nil
}

// MyrinetPPro returns the reference configuration: a Myrinet NIC behind
// PCI on a 200 MHz Pentium Pro, the cluster of the paper's Figures 9–12
// (constants calibrated so the assembled path reproduces the published
// BIP user-level numbers).
func MyrinetPPro() Config {
	return Config{
		Name:              "Myrinet-PCI",
		HostClock:         sim.ClockMHz(200),
		DriverSendCycles:  300, // calibrated: BIP's minimal user-level send
		DriverRecvCycles:  260, // calibrated
		DoorbellNs:        150 * sim.Nanosecond,
		DMASetupNs:        700 * sim.Nanosecond,
		PCIBandwidth:      126e6, // effective, post-arbitration
		NICProcNs:         900 * sim.Nanosecond,
		WireBandwidth:     160e6, // Myrinet wire; PCI is the ceiling
		WireLatencyNs:     400 * sim.Nanosecond,
		HostPollNs:        300 * sim.Nanosecond,
		PIOThresholdBytes: 64,
		PIOWordNs:         60 * sim.Nanosecond, // one 4-byte PCI write, write-combined burst
	}
}

// Stage is one leg of the latency budget.
type Stage struct {
	Name string
	Time sim.Time
}

// Breakdown returns the one-way latency budget for an n-byte message,
// stage by stage in path order.
func (c Config) Breakdown(n int) []Stage {
	cyc := func(k int64) sim.Time { return c.HostClock.Cycles(k) }
	bw := func(bytes int, bps float64) sim.Time {
		return sim.Time(float64(bytes) / bps * 1e12)
	}
	var stages []Stage
	add := func(name string, t sim.Time) { stages = append(stages, Stage{name, t}) }

	add("host driver send", cyc(c.DriverSendCycles))
	add("doorbell (PCI write)", c.DoorbellNs)
	if n <= c.PIOThresholdBytes {
		words := (n + 3) / 4
		add("payload PIO over PCI", sim.Time(words)*c.PIOWordNs)
	} else {
		add("DMA setup (NIC)", c.DMASetupNs)
		add("payload DMA over PCI", bw(n, c.PCIBandwidth))
	}
	add("NIC processor (send)", c.NICProcNs)
	add("wire", c.WireLatencyNs+bw(n, c.WireBandwidth))
	add("NIC processor (recv)", c.NICProcNs)
	add("DMA to host memory", c.DMASetupNs/2+bw(n, c.PCIBandwidth))
	add("host poll", c.HostPollNs)
	add("host driver recv", cyc(c.DriverRecvCycles))
	return stages
}

// OneWayLatency sums the budget.
func (c Config) OneWayLatency(n int) sim.Time {
	var t sim.Time
	for _, s := range c.Breakdown(n) {
		t += s.Time
	}
	return t
}

// UniBandwidth is the streaming rate: per-message costs pipelined away,
// the stream is bound by the slowest of PCI (crossed twice but on
// different buses at the two hosts) and the wire.
func (c Config) UniBandwidth(n int) float64 {
	perMsg := c.NICProcNs + c.DMASetupNs
	slowest := c.PCIBandwidth
	if c.WireBandwidth < slowest {
		slowest = c.WireBandwidth
	}
	streamTime := sim.Time(float64(n)/slowest*1e12) + perMsg
	return float64(n) / streamTime.Seconds()
}
