package nic

import (
	"testing"

	"powermanna/internal/comm"
	"powermanna/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := MyrinetPPro().Validate(); err != nil {
		t.Fatalf("reference config rejected: %v", err)
	}
	bad := []Config{
		{},
		{HostClock: sim.ClockMHz(200)},
		{HostClock: sim.ClockMHz(200), PCIBandwidth: 1e8, WireBandwidth: 1e8, DriverSendCycles: -1},
		{HostClock: sim.ClockMHz(200), PCIBandwidth: 1e8, WireBandwidth: 1e8, PIOThresholdBytes: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// Cross-validation: the mechanistic PCI-NIC path, assembled from parts,
// must land on the published end-to-end BIP numbers that the parametric
// baseline in internal/comm encodes.
func TestMechanisticModelMatchesBIP(t *testing.T) {
	m := MyrinetPPro()
	bip := comm.BIP()
	for _, n := range []int{8, 16, 32, 64} {
		mech := m.OneWayLatency(n).Micros()
		pub := bip.OneWayLatency(n).Micros()
		ratio := mech / pub
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("latency(%dB): mechanistic %.2fus vs published %.2fus (ratio %.2f)", n, mech, pub, ratio)
		}
	}
	// Streaming rate: PCI-bound, ~126 MB/s.
	bw := m.UniBandwidth(64 << 10)
	if bw < 110e6 || bw > 132e6 {
		t.Errorf("stream bandwidth = %g, want ~126 MB/s (PCI-bound)", bw)
	}
}

// The paper's Section 3.3 argument, quantified: the PCI-NIC path carries
// stages the CPU-driven interface simply does not have, and they
// dominate the small-message budget.
func TestNICOverheadStagesDominate(t *testing.T) {
	m := MyrinetPPro()
	stages := m.Breakdown(8)
	var overhead, wire sim.Time
	for _, s := range stages {
		switch s.Name {
		case "wire":
			wire += s.Time
		default:
			overhead += s.Time
		}
	}
	if overhead < 5*wire {
		t.Errorf("NIC path overhead %v not dominating wire %v at 8B", overhead, wire)
	}
}

func TestBreakdownSumsToLatency(t *testing.T) {
	m := MyrinetPPro()
	for _, n := range []int{8, 128, 4096} {
		var sum sim.Time
		for _, s := range m.Breakdown(n) {
			sum += s.Time
		}
		if sum != m.OneWayLatency(n) {
			t.Errorf("breakdown sum %v != latency %v at %dB", sum, m.OneWayLatency(n), n)
		}
	}
}

func TestPIOThreshold(t *testing.T) {
	m := MyrinetPPro()
	hasStage := func(n int, name string) bool {
		for _, s := range m.Breakdown(n) {
			if s.Name == name {
				return true
			}
		}
		return false
	}
	if !hasStage(8, "payload PIO over PCI") {
		t.Error("small message should use PIO")
	}
	if !hasStage(1024, "DMA setup (NIC)") {
		t.Error("large message should use DMA")
	}
}

// PowerMANNA's direct interface beats the PCI-NIC at small sizes by the
// margin the paper reports (2.75 vs 6.4 µs), and its budget has no NIC
// stages at all.
func TestDirectInterfaceWinsSmallMessages(t *testing.T) {
	pm := comm.NewPowerMANNA()
	m := MyrinetPPro()
	pmLat := pm.OneWayLatency(8)
	nicLat := m.OneWayLatency(8)
	ratio := float64(nicLat) / float64(pmLat)
	if ratio < 1.8 || ratio > 3.0 {
		t.Errorf("NIC/direct ratio = %.2f, paper reports 6.4/2.75 = 2.33", ratio)
	}
	for _, s := range pm.LatencyBreakdown(8) {
		switch s.Name {
		case "DMA setup (NIC)", "doorbell (PCI write)", "NIC processor (send)":
			t.Errorf("PowerMANNA budget contains NIC stage %q", s.Name)
		}
	}
}
