package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"powermanna/internal/psim"
	"powermanna/internal/stats"
)

var quick = Options{Quick: true}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "fig5", "fig6a", "fig6b", "fig7a", "fig7b",
		"fig8a", "fig8b", "fig9", "fig10", "fig11", "fig12",
		"nodescale", "blocking", "dispatcher", "smartni", "fifosweep", "duallink",
		"faultsweep"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestTable1(t *testing.T) {
	r := Table1(quick)
	if r.Table == nil {
		t.Fatal("no table")
	}
	out := r.Render()
	for _, want := range []string{"PowerMANNA", "MPC620", "180 MHz", "2048 Kbyte", "switched"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestFaultSweep(t *testing.T) {
	r := FaultSweep(quick)
	if r.Table == nil {
		t.Fatal("no table")
	}
	out := r.Render()
	for _, want := range []string{"faults", "retried", "inflation", "no message lost"} {
		if !strings.Contains(out, want) {
			t.Errorf("faultsweep missing %q:\n%s", want, out)
		}
	}
	// The engine knob must not change a single byte (the psim
	// equivalence contract, here at the experiment-harness level).
	par := FaultSweep(Options{Quick: true, Engine: psim.Par})
	if got, want := par.Render(), r.Render(); got != want {
		t.Errorf("faultsweep differs across engines:\nseq:\n%s\npar:\n%s", want, got)
	}
}

func TestFig5(t *testing.T) {
	r := Fig5Topology(quick)
	if r.Table == nil {
		t.Fatal("no table")
	}
	joined := strings.Join(r.Notes, "\n")
	if strings.Contains(joined, "MISMATCH") {
		t.Errorf("topology claim failed: %s", joined)
	}
}

func seriesByName(f *stats.Figure, name string) *stats.Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

func TestFig6Shapes(t *testing.T) {
	r := Fig6a(quick)
	if r.Figure == nil || len(r.Figure.Series) != 4 {
		t.Fatalf("fig6a series = %d, want 4 machines", len(r.Figure.Series))
	}
	// Every machine produced a nonempty, positive curve.
	for _, s := range r.Figure.Series {
		if len(s.Points) < 5 || s.Max() <= 0 {
			t.Errorf("%s: degenerate HINT curve", s.Name)
		}
	}
	// INT: the SUN trails both PowerMANNA and the 180 MHz PC.
	ri := Fig6b(quick)
	sun := seriesByName(ri.Figure, "SUN-Ultra1")
	pm := seriesByName(ri.Figure, "PowerMANNA")
	pc := seriesByName(ri.Figure, "PC-PII-180")
	if sun == nil || pm == nil || pc == nil {
		t.Fatal("missing series")
	}
	if sun.Max() >= pm.Max() || sun.Max() >= pc.Max() {
		t.Errorf("INT peaks: sun %.3g should trail pm %.3g and pc %.3g", sun.Max(), pm.Max(), pc.Max())
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	a := Fig7a(quick)
	b := Fig7b(quick)
	pmA := seriesByName(a.Figure, "PowerMANNA")
	pmB := seriesByName(b.Figure, "PowerMANNA")
	if pmA == nil || pmB == nil {
		t.Fatal("missing PowerMANNA series")
	}
	// Transposed peak clearly above naive at the largest quick size.
	lastA := pmA.Points[len(pmA.Points)-1].Y
	lastB := pmB.Points[len(pmB.Points)-1].Y
	if lastB <= lastA {
		t.Errorf("transposed %.1f not above naive %.1f on PowerMANNA", lastB, lastA)
	}
	// Transposed: PowerMANNA leads the field.
	for _, s := range b.Figure.Series {
		if s.Name == "PowerMANNA" {
			continue
		}
		if s.Max() >= pmB.Max() {
			t.Errorf("fig7b: %s (%.1f) not below PowerMANNA (%.1f)", s.Name, s.Max(), pmB.Max())
		}
	}
}

func TestFig8Speedups(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	for _, r := range []Result{Fig8a(quick), Fig8b(quick)} {
		pm := seriesByName(r.Figure, "PowerMANNA")
		if pm == nil {
			t.Fatal("missing PowerMANNA series")
		}
		for _, p := range pm.Points {
			if p.Y < 1.85 || p.Y > 2.05 {
				t.Errorf("%s: PowerMANNA speedup at N=%g is %.2f, want ~2.0", r.ID, p.X, p.Y)
			}
		}
		pc := seriesByName(r.Figure, "PC-PII-180")
		if pc == nil {
			t.Fatal("missing PC series")
		}
		for _, p := range pc.Points {
			if p.Y >= 2.0 {
				t.Errorf("%s: PC speedup %.2f should stay below 2", r.ID, p.Y)
			}
		}
	}
}

func TestFig9Through12(t *testing.T) {
	for _, r := range []Result{Fig9(quick), Fig10(quick), Fig11(quick), Fig12(quick)} {
		if r.Figure == nil || len(r.Figure.Series) != 3 {
			t.Fatalf("%s: want 3 systems, got %d", r.ID, len(r.Figure.Series))
		}
		for _, n := range r.Notes {
			if strings.Contains(n, "MISMATCH") {
				t.Errorf("%s: %s", r.ID, n)
			}
		}
	}
}

func TestNodeScalability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	r := NodeScalability(quick)
	sp := seriesByName(r.Figure, "speedup")
	if sp == nil || len(sp.Points) != 6 {
		t.Fatal("missing speedup series")
	}
	// Four processors without significant hindrance (Section 2).
	at4 := sp.Points[3].Y
	if at4 < 3.5 {
		t.Errorf("speedup at 4 CPUs = %.2f, want >= 3.5", at4)
	}
	// Beyond four the curve must flatten: marginal gain of CPUs 5 and 6
	// clearly below 1 per added CPU.
	at6 := sp.Points[5].Y
	if at6-at4 > 1.4 {
		t.Errorf("speedup 4->6 gained %.2f, expected saturation", at6-at4)
	}
	// The binding resource is the snoop serialization, not memory.
	snoop := seriesByName(r.Figure, "snoop util x10")
	mem := seriesByName(r.Figure, "mem util x10")
	if snoop.Points[5].Y < mem.Points[5].Y {
		t.Errorf("at 6 CPUs snoop util (%.2f) should exceed memory util (%.2f)",
			snoop.Points[5].Y/10, mem.Points[5].Y/10)
	}
}

func TestFIFOSweepMonotone(t *testing.T) {
	r := FIFOSweep(quick)
	s := r.Figure.Series[0]
	if len(s.Points) < 4 {
		t.Fatal("too few sweep points")
	}
	if s.Points[len(s.Points)-1].Y <= s.Points[1].Y {
		t.Errorf("bigger FIFOs did not help: %v", s.Points)
	}
}

func TestDualLinkDoubles(t *testing.T) {
	r := DualLink(quick)
	single := seriesByName(r.Figure, "PowerMANNA uni")
	dual := seriesByName(r.Figure, "PowerMANNA-dual uni")
	if single == nil || dual == nil {
		t.Fatal("missing series")
	}
	s := single.Points[len(single.Points)-1].Y
	d := dual.Points[len(dual.Points)-1].Y
	if d < 1.7*s {
		t.Errorf("dual link %.1f not ~2x single %.1f", d, s)
	}
}

func TestRenderIncludesExpectation(t *testing.T) {
	r := Fig9(quick)
	out := r.Render()
	if !strings.Contains(out, "Paper:") || !strings.Contains(out, "fig9") {
		t.Error("render missing header")
	}
}

func TestDispatcherAblation(t *testing.T) {
	r := DispatcherAblation(quick)
	ooo := seriesByName(r.Figure, "out-of-order (MPC620)")
	ino := seriesByName(r.Figure, "in-order")
	if ooo == nil || ino == nil {
		t.Fatal("missing series")
	}
	// Deeper pipelines help; out-of-order never loses to in-order.
	if ooo.Points[2].Y >= ooo.Points[0].Y {
		t.Errorf("depth 4 (%.1f) not below depth 1 (%.1f)", ooo.Points[2].Y, ooo.Points[0].Y)
	}
	for i := range ooo.Points {
		if ooo.Points[i].Y > ino.Points[i].Y+0.01 {
			t.Errorf("out-of-order (%.2f) worse than in-order (%.2f) at depth %g",
				ooo.Points[i].Y, ino.Points[i].Y, ooo.Points[i].X)
		}
	}
}

func TestSmartNI(t *testing.T) {
	r := SmartNI(quick)
	if r.Table == nil {
		t.Fatal("no table")
	}
	out := r.Render()
	for _, want := range []string{"doorbell", "NIC processor", "route setup", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("smartni missing %q", want)
		}
	}
	var ratio float64
	for _, n := range r.Notes {
		fmt.Sscanf(n, "PCI-NIC / PowerMANNA latency ratio at 8 bytes: %fx", &ratio)
	}
	if ratio < 1.8 || ratio > 3.0 {
		t.Errorf("ratio = %.2f, want near the paper's 2.33", ratio)
	}
}

func TestBlockingBehavior(t *testing.T) {
	r := BlockingBehavior(quick)
	if r.Table == nil {
		t.Fatal("no table")
	}
	// The paper's claim: mesh blocks, the hierarchy barely does.
	found := false
	for _, n := range r.Notes {
		var ratio float64
		if _, err := fmt.Sscanf(n, "mesh mean latency %fx", &ratio); err == nil {
			found = true
			if ratio < 1.5 {
				t.Errorf("mesh/hierarchy latency ratio = %.2f, want > 1.5", ratio)
			}
		}
	}
	if !found {
		t.Error("latency ratio note missing")
	}
}

func TestJSONOutput(t *testing.T) {
	r := Fig9(quick)
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["id"] != "fig9" {
		t.Errorf("id = %v", decoded["id"])
	}
	if decoded["figure"] == nil {
		t.Error("figure missing")
	}
	// A table experiment round-trips too.
	tb, err := Table1(quick).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tb, &decoded); err != nil || decoded["table"] == nil {
		t.Errorf("table JSON broken: %v", err)
	}
}

func TestBlockingSeedDeterminism(t *testing.T) {
	// The determinism contract: a Result is a pure function of
	// (experiment, Options). Same seed, same bytes.
	a := BlockingBehavior(Options{Quick: true, Seed: 7})
	b := BlockingBehavior(Options{Quick: true, Seed: 7})
	if a.Render() != b.Render() {
		t.Errorf("two runs with seed 7 differ:\n%s\n----\n%s", a.Render(), b.Render())
	}
	// The zero value means DefaultSeed, so published tables reproduce.
	c := BlockingBehavior(Options{Quick: true})
	d := BlockingBehavior(Options{Quick: true, Seed: DefaultSeed})
	if c.Render() != d.Render() {
		t.Error("zero-value Options does not reproduce the DefaultSeed run")
	}
}
