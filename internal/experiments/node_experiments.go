package experiments

import (
	"fmt"

	"powermanna/internal/hint"
	"powermanna/internal/machine"
	"powermanna/internal/matmult"
	"powermanna/internal/node"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
)

// Table1 renders the test-system configuration comparison.
func Table1(Options) Result {
	t := &stats.Table{Title: "Table 1: Configuration of test systems", Columns: []string{"Parameter", "SUN", "PowerMANNA", "PC"}}
	sun, pm, pc := machine.SunUltra(), machine.PowerMANNA(), machine.PentiumII(266)
	row := func(label string, f func(c node.Config) string) {
		t.AddRow(label, f(sun), f(pm), f(pc))
	}
	row("Processor Type", func(c node.Config) string { return c.Core.Name })
	row("Processor Clock", func(c node.Config) string { return fmt.Sprintf("%.0f MHz", c.Core.Clock.MHz()) })
	row("Bus Clock", func(c node.Config) string { return fmt.Sprintf("%.0f MHz", c.Bus.Clock.MHz()) })
	row("Processors", func(c node.Config) string { return fmt.Sprintf("%d", c.CPUs) })
	row("Primary Cache", func(c node.Config) string { return fmt.Sprintf("%d Kbyte", c.L1D.SizeBytes>>10) })
	row("Secondary Cache", func(c node.Config) string { return fmt.Sprintf("%d Kbyte", c.L2.SizeBytes>>10) })
	row("Cache line", func(c node.Config) string { return fmt.Sprintf("%d byte", c.L2.LineBytes) })
	row("Node Memory", func(c node.Config) string { return fmt.Sprintf("%d Mbyte", c.Mem.SizeBytes>>20) })
	row("Node fabric", func(c node.Config) string { return c.Fabric.String() })
	return Result{
		ID:          "table1",
		Description: "configuration of the three test systems",
		Expected:    "matches the paper's Table 1 (plus the modelled fabric kind)",
		Table:       t,
	}
}

// Fig5Topology validates the interconnect structure claims of Section 3.
func Fig5Topology(Options) Result {
	t := &stats.Table{Title: "Figure 5: PowerMANNA topologies", Columns: []string{"Property", "Cluster (5a)", "System256 (5b)"}}
	c8 := topo.Cluster8()
	s256 := topo.System256()
	maxC8, _ := c8.MaxCrossbars()
	maxS256, _ := s256.MaxCrossbars()
	t.AddRow("Nodes", fmt.Sprintf("%d", c8.Nodes()), fmt.Sprintf("%d", s256.Nodes()))
	t.AddRow("Processors", fmt.Sprintf("%d", 2*c8.Nodes()), fmt.Sprintf("%d", 2*s256.Nodes()))
	t.AddRow("Crossbars", fmt.Sprintf("%d", c8.Crossbars()), fmt.Sprintf("%d", s256.Crossbars()))
	t.AddRow("Max crossbars on any route", fmt.Sprintf("%d", maxC8), fmt.Sprintf("%d", maxS256))
	t.AddRow("Free intercluster dual-links", fmt.Sprintf("%d", c8.FreePorts(0)), "0")
	notes := []string{}
	if maxS256 == 3 {
		notes = append(notes, "256-processor system: every pair within 3 crossbars — matches Section 3.2")
	} else {
		notes = append(notes, fmt.Sprintf("MISMATCH: max crossbars = %d, paper says 3", maxS256))
	}
	return Result{
		ID:          "fig5",
		Description: "topology properties of Figure 5a/5b",
		Expected:    "8-node cluster: 1 crossbar per route, 8 free dual-links; 256-CPU system: at most 3 crossbars between any two nodes",
		Table:       t,
		Notes:       notes,
	}
}

func hintFigure(id string, dt hint.DataType, opt Options) Result {
	max := 600_000
	if opt.Quick {
		max = 40_000
	}
	fig := &stats.Figure{
		Title:  fmt.Sprintf("Figure 6%s: HINT %s — QUIPS along time", map[hint.DataType]string{hint.Double: "a", hint.Int: "b"}[dt], dt),
		XLabel: "time [s]",
		YLabel: "QUIPS",
		LogX:   true,
		LogY:   true,
	}
	peaks := map[string]float64{}
	for _, cfg := range machine.All() {
		nd := node.New(cfg)
		r := hint.Run(nd, dt, max)
		s := stats.Series{Name: cfg.Name}
		for _, p := range r.Points {
			s.Add(p.Time.Seconds(), p.QUIPS)
		}
		fig.Add(s)
		peaks[cfg.Name] = r.PeakQUIPS
	}
	notes := []string{}
	for _, k := range sortedKeys(peaks) {
		notes = append(notes, fmt.Sprintf("%s peak %.3g QUIPS", k, peaks[k]))
	}
	expected := "PowerMANNA slightly ahead of the 180 MHz PC while caches are effective, behind in the memory region; its 2 MB L2 keeps the curve flat longest"
	if dt == hint.Int {
		expected = "PowerMANNA and the PC perform almost equally well, both outperforming the SUN"
	}
	return Result{
		ID:          id,
		Description: fmt.Sprintf("HINT %s on all test systems", dt),
		Expected:    expected,
		Figure:      fig,
		Notes:       notes,
	}
}

// Fig6a runs HINT DOUBLE on all machines.
func Fig6a(opt Options) Result { return hintFigure("fig6a", hint.Double, opt) }

// Fig6b runs HINT INT on all machines.
func Fig6b(opt Options) Result { return hintFigure("fig6b", hint.Int, opt) }

func fig7Sizes(opt Options) []int {
	if opt.Quick {
		return []int{65, 101, 201}
	}
	return []int{101, 151, 201, 301, 401, 513}
}

// fig7Machines are the systems of Figure 7: the PC runs at the reduced
// clock rate (Section 5.1: "Here, we used the reduced-clock-rate Pentium
// PC").
func fig7Machines() []node.Config {
	return []node.Config{machine.PowerMANNA(), machine.SunUltra(), machine.PentiumII(180)}
}

func matmultFigure(id string, v matmult.Version, opt Options) Result {
	fig := &stats.Figure{
		Title:  fmt.Sprintf("Figure 7%s: MatMult %s, single processor", map[matmult.Version]string{matmult.Naive: "a", matmult.Transposed: "b"}[v], v),
		XLabel: "N",
		YLabel: "MFLOPS",
	}
	last := map[string]float64{}
	for _, cfg := range fig7Machines() {
		nd := node.New(cfg)
		s := stats.Series{Name: cfg.Name}
		for _, n := range fig7Sizes(opt) {
			r := matmult.Run(nd, n, v, 1)
			s.Add(float64(n), r.MFLOPS())
			last[cfg.Name] = r.MFLOPS()
		}
		fig.Add(s)
	}
	expected := "the Pentium PC performs best (non-blocking loads overlap the strided misses); PowerMANNA's long lines prefetch superfluous data and its misses serialize"
	if v == matmult.Transposed {
		expected = "PowerMANNA clearly outperforms the other machines: long cache lines and the 2 MB L2 pay off on sequential rows"
	}
	notes := []string{}
	for _, k := range sortedKeys(last) {
		notes = append(notes, fmt.Sprintf("%s at largest N: %.1f MFLOPS", k, last[k]))
	}
	return Result{
		ID:          id,
		Description: fmt.Sprintf("MatMult %s sweep, 1 CPU", v),
		Expected:    expected,
		Figure:      fig,
		Notes:       notes,
	}
}

// Fig7a sweeps naive MatMult.
func Fig7a(opt Options) Result { return matmultFigure("fig7a", matmult.Naive, opt) }

// Fig7b sweeps transposed MatMult (including the transposition).
func Fig7b(opt Options) Result { return matmultFigure("fig7b", matmult.Transposed, opt) }

func speedupFigure(id string, v matmult.Version, opt Options) Result {
	sizes := []int{101, 201, 301}
	if opt.Quick {
		sizes = []int{101}
	}
	fig := &stats.Figure{
		Title:  fmt.Sprintf("Figure 8%s: MatMult %s, dual-processor speedup", map[matmult.Version]string{matmult.Naive: "a", matmult.Transposed: "b"}[v], v),
		XLabel: "N",
		YLabel: "speedup",
	}
	lastSpeedup := map[string]float64{}
	for _, cfg := range fig7Machines() {
		nd := node.New(cfg)
		s := stats.Series{Name: cfg.Name}
		for _, n := range sizes {
			one := matmult.Run(nd, n, v, 1)
			two := matmult.Run(nd, n, v, 2)
			sp := one.Time.Seconds() / two.Time.Seconds()
			s.Add(float64(n), sp)
			lastSpeedup[cfg.Name] = sp
		}
		fig.Add(s)
	}
	notes := []string{}
	for _, k := range sortedKeys(lastSpeedup) {
		notes = append(notes, fmt.Sprintf("%s speedup at largest N: %.2f", k, lastSpeedup[k]))
	}
	return Result{
		ID:          id,
		Description: fmt.Sprintf("dual-processor speedup, MatMult %s", v),
		Expected:    "PowerMANNA exactly doubles (no memory-access contention on the switched fabric); the SUN loses ~5%, the PC 15-20%",
		Figure:      fig,
		Notes:       notes,
	}
}

// Fig8a measures naive-version SMP speedup.
func Fig8a(opt Options) Result { return speedupFigure("fig8a", matmult.Naive, opt) }

// Fig8b measures transposed-version SMP speedup.
func Fig8b(opt Options) Result { return speedupFigure("fig8b", matmult.Transposed, opt) }
