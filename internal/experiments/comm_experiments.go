package experiments

import (
	"fmt"

	"powermanna/internal/comm"
	"powermanna/internal/stats"
)

// commSystems are the Figure 9-12 contenders.
func commSystems() []comm.System {
	return []comm.System{comm.NewPowerMANNA(), comm.BIP(), comm.FM()}
}

// Fig9 measures one-way latencies.
func Fig9(Options) Result {
	fig := &stats.Figure{
		Title:  "Figure 9: one-way latency",
		XLabel: "message size [B]",
		YLabel: "latency [us]",
		LogX:   true,
	}
	at8 := map[string]float64{}
	for _, s := range commSystems() {
		series := stats.Series{Name: s.Name()}
		for _, n := range comm.Sizes(4, 4096) {
			series.Add(float64(n), s.OneWayLatency(n).Micros())
		}
		fig.Add(series)
		at8[s.Name()] = s.OneWayLatency(8).Micros()
	}
	notes := []string{}
	for _, k := range sortedKeys(at8) {
		notes = append(notes, fmt.Sprintf("%s: 8 bytes in %.2f us", k, at8[k]))
	}
	return Result{
		ID:          "fig9",
		Description: "one-way latency, PowerMANNA vs BIP and FM",
		Expected:    "PowerMANNA clearly outperforms for short messages: 8 bytes in 2.75 us vs 6.4 us (BIP) and 9.2 us (FM)",
		Figure:      fig,
		Notes:       notes,
	}
}

// Fig10 measures the per-message gap at saturation.
func Fig10(Options) Result {
	fig := &stats.Figure{
		Title:  "Figure 10: message-sending time at the network saturation point",
		XLabel: "message size [B]",
		YLabel: "gap [us]",
		LogX:   true,
	}
	for _, s := range commSystems() {
		series := stats.Series{Name: s.Name()}
		for _, n := range comm.Sizes(4, 4096) {
			series.Add(float64(n), s.Gap(n).Micros())
		}
		fig.Add(series)
	}
	return Result{
		ID:          "fig10",
		Description: "LogP gap along message size",
		Expected:    "PowerMANNA's minimal setup keeps the small-message gap well below BIP and FM; at large sizes the 60 MB/s link dominates",
		Figure:      fig,
	}
}

// Fig11 measures unidirectional bandwidth.
func Fig11(Options) Result {
	fig := &stats.Figure{
		Title:  "Figure 11: unidirectional bandwidth",
		XLabel: "message size [B]",
		YLabel: "MB/s",
		LogX:   true,
	}
	crossNote := ""
	var pmLarge, bipLarge float64
	for _, s := range commSystems() {
		series := stats.Series{Name: s.Name()}
		for _, n := range comm.Sizes(4, 256<<10) {
			bw := s.UniBandwidth(n) / 1e6
			series.Add(float64(n), bw)
			if n == 256<<10 {
				switch s.Name() {
				case "PowerMANNA":
					pmLarge = bw
				case "BIP":
					bipLarge = bw
				}
			}
		}
		fig.Add(series)
	}
	if pmLarge < bipLarge {
		crossNote = fmt.Sprintf("large messages: PowerMANNA %.1f MB/s limited by its link vs BIP %.1f MB/s — matches the paper", pmLarge, bipLarge)
	} else {
		crossNote = fmt.Sprintf("MISMATCH: PowerMANNA %.1f not below BIP %.1f at 256 KB", pmLarge, bipLarge)
	}
	return Result{
		ID:          "fig11",
		Description: "unidirectional stream bandwidth",
		Expected:    "PowerMANNA saturates at the 60 MB/s single-link limit of its network technology; BIP reaches ~126 MB/s on Myrinet",
		Figure:      fig,
		Notes:       []string{crossNote},
	}
}

// Fig12 measures simultaneous bidirectional bandwidth.
func Fig12(Options) Result {
	fig := &stats.Figure{
		Title:  "Figure 12: simultaneous bidirectional bandwidth",
		XLabel: "message size [B]",
		YLabel: "MB/s (total)",
		LogX:   true,
	}
	var pmBi, pmUni float64
	pm := comm.NewPowerMANNA()
	for _, s := range commSystems() {
		series := stats.Series{Name: s.Name()}
		for _, n := range comm.Sizes(4, 256<<10) {
			series.Add(float64(n), s.BiBandwidth(n)/1e6)
		}
		fig.Add(series)
	}
	pmBi = pm.BiBandwidth(256<<10) / 1e6
	pmUni = pm.UniBandwidth(256<<10) / 1e6
	return Result{
		ID:          "fig12",
		Description: "both nodes sending and receiving simultaneously",
		Expected:    "PowerMANNA falls short of 2x unidirectional: the driver must turn around after at most 4 cache lines because of the small link-interface FIFOs",
		Figure:      fig,
		Notes: []string{
			fmt.Sprintf("PowerMANNA at 256 KB: bidirectional %.1f MB/s vs 2 x unidirectional %.1f MB/s (%.0f%% of ideal)",
				pmBi, 2*pmUni, 100*pmBi/(2*pmUni)),
		},
	}
}

// FIFOSweep is the ablation the paper's Section 5.2 suggests: "This
// overhead could be significantly reduced if larger FIFO buffers were
// implemented."
func FIFOSweep(Options) Result {
	fig := &stats.Figure{
		Title:  "Ablation: bidirectional bandwidth vs link-interface FIFO size",
		XLabel: "FIFO size [cache lines]",
		YLabel: "MB/s (total)",
	}
	series := stats.Series{Name: "PowerMANNA bi @64KB"}
	var small, large float64
	for _, linesN := range []int{2, 4, 8, 16, 32, 64} {
		p := comm.DefaultPMParams()
		p.FIFOBytes = linesN * 64
		bw := comm.NewPowerMANNAWith(p).BiBandwidth(64<<10) / 1e6
		series.Add(float64(linesN), bw)
		if linesN == 4 {
			small = bw
		}
		if linesN == 64 {
			large = bw
		}
	}
	fig.Add(series)
	return Result{
		ID:          "fifosweep",
		Description: "link-interface FIFO depth ablation (hardware has 4 lines)",
		Expected:    "larger FIFOs amortize the direction-switch overhead and recover most of the lost bidirectional bandwidth",
		Figure:      fig,
		Notes: []string{
			fmt.Sprintf("4-line FIFO: %.1f MB/s; 64-line FIFO: %.1f MB/s (%.1fx)", small, large, large/small),
		},
	}
}

// DualLink exercises the duplicated network: both links striped for user
// traffic, the configuration Section 4 names as future work.
func DualLink(Options) Result {
	fig := &stats.Figure{
		Title:  "Ablation: single vs dual (duplicated) network links",
		XLabel: "message size [B]",
		YLabel: "MB/s",
		LogX:   true,
	}
	single := comm.NewPowerMANNA()
	p := comm.DefaultPMParams()
	p.Links = 2
	dual := comm.NewPowerMANNAWith(p)
	for _, s := range []comm.System{single, dual} {
		series := stats.Series{Name: s.Name() + " uni"}
		for _, n := range comm.Sizes(64, 256<<10) {
			series.Add(float64(n), s.UniBandwidth(n)/1e6)
		}
		fig.Add(series)
	}
	s1 := single.UniBandwidth(256<<10) / 1e6
	s2 := dual.UniBandwidth(256<<10) / 1e6
	return Result{
		ID:          "duallink",
		Description: "striping user traffic over both links of the duplicated network",
		Expected:    "two links double the stream bandwidth toward the 240 MB/s total the paper quotes for a duplicated dual-link connection",
		Figure:      fig,
		Notes: []string{
			fmt.Sprintf("256 KB stream: single %.1f MB/s, dual %.1f MB/s", s1, s2),
		},
	}
}
