package experiments

import (
	"fmt"
	"math/rand"

	"powermanna/internal/netsim"
	"powermanna/internal/sim"
	"powermanna/internal/stats"
	"powermanna/internal/topo"
)

// BlockingBehavior reproduces the paper's Section 3 motivation:
// "Less expensive mesh topologies, however, as used in the PARAGON or
// Cray T3E systems, exhibit a poor blocking behavior [5]. Communication
// networks based on crossbars are able to provide the favorable blocking
// behavior of the hypercube at much lower cost."
//
// Both networks carry the same load: deterministic random permutations
// where all 128 nodes fire one message simultaneously. Wormhole circuits
// hold every traversed output until the message passes, so long mesh
// paths collide where the three-crossbar hierarchy does not. Reported:
// mean and maximum delivery time and the fraction of circuits that had
// to wait for a busy output.
func BlockingBehavior(opt Options) Result {
	permutations := 20
	if opt.Quick {
		permutations = 5
	}
	const payload = 1024

	type outcome struct {
		name         string
		mean, max    sim.Time
		blockedFrac  float64
		maxRouteHops int
	}
	// Both topologies must carry identical traffic, so each run gets a
	// fresh generator restarted from the same configured seed.
	run := func(t *topo.Topology, rng *rand.Rand) outcome {
		net := netsim.New(t)
		var total sim.Time
		var worst sim.Time
		var msgs int
		maxHops := 0
		for p := 0; p < permutations; p++ {
			net.Reset()
			perm := rng.Perm(t.Nodes())
			for src, dst := range perm {
				if src == dst {
					continue
				}
				path, err := t.Route(src, dst, topo.NetworkA)
				if err != nil {
					panic(err)
				}
				if len(path.Hops) > maxHops {
					maxHops = len(path.Hops)
				}
				//pmlint:allow layering blocking experiment measures the raw wormhole datapath, failover costs would pollute it
				tr, err := net.Send(0, path, payload)
				if err != nil {
					panic(err)
				}
				total += tr.LastByte
				if tr.LastByte > worst {
					worst = tr.LastByte
				}
				msgs++
			}
		}
		// Blocking fraction over the final permutation's crossbars.
		var opened, blocked int64
		for i := 0; i < t.Crossbars(); i++ {
			s := net.Crossbar(i).Stats()
			opened += s.Opened
			blocked += s.Blocked
		}
		frac := 0.0
		if opened > 0 {
			frac = float64(blocked) / float64(opened)
		}
		return outcome{
			name:         t.Name(),
			mean:         total / sim.Time(msgs),
			max:          worst,
			blockedFrac:  frac,
			maxRouteHops: maxHops,
		}
	}

	hier := run(topo.System256(), opt.rng())
	mesh := run(topo.Mesh(16, 8), opt.rng())

	tbl := &stats.Table{
		Title:   "Blocking behavior under permutation traffic (128 nodes, 1 KB messages)",
		Columns: []string{"Metric", hier.name, mesh.name},
	}
	tbl.AddRow("Mean delivery time", hier.mean.String(), mesh.mean.String())
	tbl.AddRow("Worst delivery time", hier.max.String(), mesh.max.String())
	tbl.AddRow("Circuits blocked", fmt.Sprintf("%.1f%%", hier.blockedFrac*100), fmt.Sprintf("%.1f%%", mesh.blockedFrac*100))
	tbl.AddRow("Max switches on a route", fmt.Sprintf("%d", hier.maxRouteHops), fmt.Sprintf("%d", mesh.maxRouteHops))

	notes := []string{
		fmt.Sprintf("mesh mean latency %.2fx the crossbar hierarchy's", float64(mesh.mean)/float64(hier.mean)),
		fmt.Sprintf("mesh blocking %.1f%% vs hierarchy %.1f%%", mesh.blockedFrac*100, hier.blockedFrac*100),
	}
	return Result{
		ID:          "blocking",
		Description: "crossbar hierarchy vs 2D mesh under random permutation traffic",
		Expected:    "the mesh's long wormhole paths collide (poor blocking behavior, ref [5]); the three-crossbar hierarchy delivers with little contention",
		Table:       tbl,
		Notes:       notes,
	}
}
